# CI entry points. `make ci` is what every PR must pass: vet, build, the
# full test suite, and the race detector over the concurrent engine paths
# (internal packages run reduced-scale worlds, so the race pass stays fast).

GO ?= go

.PHONY: all ci vet build test race bench

all: ci

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Perf trajectory of the parallel scan engine and the columnar result
# store; results are recorded in BENCH_parallel.json and
# BENCH_columnar.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStudy|BenchmarkAnalysisPasses' -benchtime 3x -benchmem .
