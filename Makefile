# CI entry points. `make ci` is what every PR must pass: vet, build, the
# full test suite, and the race detector over the concurrent engine paths
# (internal packages run reduced-scale worlds, so the race pass stays fast).

GO ?= go

.PHONY: all ci vet build test race bench bench-telemetry

all: ci

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Perf trajectory of the parallel scan engine and the columnar result
# store; results are recorded in BENCH_parallel.json and
# BENCH_columnar.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStudy|BenchmarkAnalysisPasses' -benchtime 3x -benchmem .

# Telemetry overhead on the sweep hot path: the same full sweep with a nil
# metric bundle vs a live registry. The enabled/nil ratio is the number the
# tentpole budget caps at 5%; results land in BENCH_telemetry.json.
bench-telemetry:
	$(GO) test -run xxx -bench 'BenchmarkSweepTelemetry' -benchtime 2s -benchmem ./internal/zmap/ | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench BenchmarkSweepTelemetry -benchtime 2s ./internal/zmap/" \
	        -note "Full 2^14-address sweep against a null sink. Nil = telemetry disabled (one pointer check per 4096-target batch); Enabled = live registry receiving batched delta flushes. Overhead budget: enabled <= 5% over nil." \
	        -out BENCH_telemetry.json
