# CI entry points. `make ci` is what every PR must pass: vet, build, the
# full test suite, and the race detector over the concurrent engine paths
# (internal packages run reduced-scale worlds, so the race pass stays fast).

GO ?= go

.PHONY: all ci vet build test race bench bench-telemetry bench-sweep

all: ci

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# Perf trajectory of the parallel scan engine and the columnar result
# store; results are recorded in BENCH_parallel.json and
# BENCH_columnar.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStudy|BenchmarkAnalysisPasses' -benchtime 3x -benchmem .

# Telemetry overhead on the sweep hot path: the same full sweep with a nil
# metric bundle vs a live registry. The enabled/nil ratio is the number the
# tentpole budget caps at 5%; results land in BENCH_telemetry.json.
bench-telemetry:
	$(GO) test -run xxx -bench 'BenchmarkSweepTelemetry' -benchtime 2s -benchmem ./internal/zmap/ | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench BenchmarkSweepTelemetry -benchtime 2s ./internal/zmap/" \
	        -note "Full 2^14-address sweep against a null sink. Nil = telemetry disabled (one pointer check per 4096-target batch); Enabled = live registry receiving batched delta flushes. Overhead budget: enabled <= 5% over nil." \
	        -out BENCH_telemetry.json

# Sweep fast path: the flat-FIB destination index, routed-space
# short-circuit, and zero-alloc probe evaluation. BENCH_sweepfast.before.txt
# is the raw benchmark output captured on the pre-FIB tree; re-running this
# target re-measures "after" on the current tree and diffs against that
# fixed baseline, so the delta in BENCH_sweepfast.json stays attributable
# to the fast path rather than to machine drift.
bench-sweep:
	( $(GO) test -run xxx -bench BenchmarkStudySerial -benchtime 3x -benchmem . && \
	  $(GO) test -run xxx -bench BenchmarkFabricSend -benchmem ./internal/fabric/ ) | \
	    $(GO) run ./cmd/benchjson \
	        -before BENCH_sweepfast.before.txt \
	        -command "go test -run xxx -bench BenchmarkStudySerial -benchtime 3x -benchmem . && go test -run xxx -bench BenchmarkFabricSend -benchmem ./internal/fabric/" \
	        -note "Before = radix+map destination lookups with per-probe header and query allocations; after = flat per-/24 FIB resolve, pooled policy queries, stack header decode, the scanner's routed-space short-circuit, and pooled bufio readers on the L7 grab path. BenchmarkFabricSend isolates one probe evaluation (host / routed-empty / unrouted destination); BenchmarkStudySerial is the full end-to-end study. Dataset bytes verified identical via the golden test and TestParallelMatchesSerial. Single-core container; treat absolute numbers as machine-specific and compare ratios." \
	        -out BENCH_sweepfast.json
