# CI entry points. `make ci` is what every PR must pass: vet, build, the
# full test suite, and the race detector over the concurrent engine paths
# (internal packages run reduced-scale worlds, so the race pass stays fast).

GO ?= go

.PHONY: all ci vet build test race test-v6 bench bench-telemetry bench-trace bench-sweep bench-fullspace bench-parallel bench-scale1 bench-v6 bench-grab

all: ci

ci: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# The IPv6 surface under the race detector: the dual-stack address core,
# hitlist iterator, seeded v6 world, v6 packet paths, and the end-to-end v6
# study differentials (deterministic, parallel-vs-serial, hitlist-only).
test-v6:
	$(GO) test -race -run 'V6|Hitlist|ParseFamily|IPv6' ./internal/ip/ ./internal/packet/ ./internal/world/ ./internal/zmap/ ./internal/results/ ./internal/experiment/

# Perf trajectory of the parallel scan engine and the columnar result
# store; results are recorded in BENCH_parallel.json and
# BENCH_columnar.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkStudy|BenchmarkAnalysisPasses' -benchtime 3x -benchmem .

# Telemetry overhead on the sweep hot path: the same full sweep with a nil
# metric bundle vs a live registry. The enabled/nil ratio is the number the
# tentpole budget caps at 5%; results land in BENCH_telemetry.json.
bench-telemetry:
	$(GO) test -run xxx -bench 'BenchmarkSweepTelemetry' -benchtime 2s -benchmem ./internal/zmap/ | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench BenchmarkSweepTelemetry -benchtime 2s ./internal/zmap/" \
	        -note "Full 2^14-address sweep against a null sink. Nil = telemetry disabled (one pointer check per 4096-target batch); Enabled = live registry receiving batched delta flushes. Overhead budget: enabled <= 5% over nil." \
	        -out BENCH_telemetry.json

# Hierarchical tracing overhead on the sweep hot path: the same full sweep
# with tracing disabled (nil registry → inert spans) vs enabled (scan span,
# bounded batch exemplars, span commit). benchjson's ratio gate fails the
# target when the enabled run exceeds nil by more than 5% — the observability
# tentpole's overhead contract, enforced by CI's trace job. Results land in
# BENCH_trace.json.
bench-trace:
	$(GO) test -run xxx -bench 'BenchmarkSweepTrace' -benchtime 2s -count 3 -benchmem ./internal/zmap/ | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench BenchmarkSweepTrace -benchtime 2s -count 3 ./internal/zmap/" \
	        -note "Full 2^14-address sweep against a null sink, min of 3 runs per variant. Nil = tracing disabled (nil registry: inert span, inert batch tracer); Enabled = live registry with a scan span and bounded sweep_batch exemplar sampling (first 32 + every 1024th batch). Gate: enabled/nil ns/op <= 1.05." \
	        -gate-num BenchmarkSweepTraceEnabled -gate-den BenchmarkSweepTraceNil -gate-max 1.05 \
	        -out BENCH_trace.json

# Sweep fast path: the flat-FIB destination index, routed-space
# short-circuit, and zero-alloc probe evaluation. BENCH_sweepfast.before.txt
# is the raw benchmark output captured on the pre-FIB tree; re-running this
# target re-measures "after" on the current tree and diffs against that
# fixed baseline, so the delta in BENCH_sweepfast.json stays attributable
# to the fast path rather than to machine drift.
bench-sweep:
	( $(GO) test -run xxx -bench BenchmarkStudySerial -benchtime 3x -benchmem . && \
	  $(GO) test -run xxx -bench BenchmarkFabricSend -benchmem ./internal/fabric/ ) | \
	    $(GO) run ./cmd/benchjson \
	        -before BENCH_sweepfast.before.txt \
	        -command "go test -run xxx -bench BenchmarkStudySerial -benchtime 3x -benchmem . && go test -run xxx -bench BenchmarkFabricSend -benchmem ./internal/fabric/" \
	        -note "Before = radix+map destination lookups with per-probe header and query allocations; after = flat per-/24 FIB resolve, pooled policy queries, stack header decode, the scanner's routed-space short-circuit, and pooled bufio readers on the L7 grab path. BenchmarkFabricSend isolates one probe evaluation (host / routed-empty / unrouted destination); BenchmarkStudySerial is the full end-to-end study. Dataset bytes verified identical via the golden test and TestParallelMatchesSerial. Single-core container; treat absolute numbers as machine-specific and compare ratios." \
	        -out BENCH_sweepfast.json

# Batched sweep kernel + full-IPv4-scale world. BENCH_fullspace.before.txt is
# the raw serial-study capture from the pre-batching tree (PR 5); re-running
# diffs the batched kernel against that fixed baseline. BenchmarkFullSpaceSweep
# has no "before" -- the 2^32 sweep did not complete on the old tree, which is
# the point: space24/space32 record what full-scale now costs (one sweep per
# size via -benchtime 1x; space32 walks all 4.29B addresses).
bench-fullspace:
	( $(GO) test -run xxx -bench 'BenchmarkStudySerial$$' -benchtime 3x -benchmem . && \
	  $(GO) test -run xxx -bench BenchmarkFullSpaceSweep -benchtime 1x -benchmem -timeout 60m . ) | \
	    $(GO) run ./cmd/benchjson \
	        -before BENCH_fullspace.before.txt \
	        -command "go test -run xxx -bench 'BenchmarkStudySerial' -benchtime 3x -benchmem . && go test -run xxx -bench BenchmarkFullSpaceSweep -benchtime 1x -benchmem -timeout 60m ." \
	        -note "Before = per-address permutation walk (128-bit modmul per step, per-address ctx/telemetry checks) on the pre-batching tree; after = 4096-address batched kernel (Shoup fixed-multiplier modmul, batched FIB routed evaluation, per-batch ctx/flush) with the sparse FIB directory. BenchmarkFullSpaceSweep runs one end-to-end sweep of a forced 2^24 / 2^32 space over a streaming-build world; fib-MiB is the sparse FIB's measured footprint (budget: <= 2 GiB at space32). Batched output is bit-identical to the serial reference (golden dataset, batched-vs-serial differentials incl. sharded and mid-cancel). Single-core container; compare ratios, not absolutes." \
	        -out BENCH_fullspace.json

# Grab fast path vs the goroutine+vconn reference: ns/grab over identical
# per-window target sequences (every host × rotating protocol, 4096-target
# windows). Reference = per-dial policy evaluation, a vconn pipe and a
# dedicated server goroutine per accepted connection; Fast = one
# PredialBatch per window plus pooled inline-served connections, zero
# goroutines. benchjson's ratio gate (min of 3 runs per variant) enforces
# the tentpole's >= 2x bar; results land in BENCH_grabfast.json.
bench-grab:
	$(GO) test -run xxx -bench 'BenchmarkGrabReference|BenchmarkGrabFast' -benchtime 20000x -count 3 -benchmem ./internal/fabric/ | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench 'BenchmarkGrabReference|BenchmarkGrabFast' -benchtime 20000x -count 3 -benchmem ./internal/fabric/" \
	        -note "One L7 grab per host over a quiet Scale=2e-5 world, protocols rotating per 4096-target window so the mix covers accepted handshakes and refused dials. Reference = fabric.Dial per target + vconn pipe + server goroutine per accepted connection; Fast = fabric.PredialBatch per window + zgrab.GrabFast over pooled inline-served connections (fabric.ActiveConns()==0 asserted after the run). Sealed datasets are bit-identical across the two paths (differential tests pin every policy verdict, loss class, and retry). Gate: fast/reference ns/op <= 0.5, i.e. >= 2x. Min of 3 runs per variant; single-core container, compare ratios." \
	        -gate-num BenchmarkGrabFast -gate-den BenchmarkGrabReference -gate-max 0.5 \
	        -out BENCH_grabfast.json

# Scale-0.1 and Scale-1.0 studies under the spill-to-disk result store,
# with the result budget fixed at 128 MiB. Each benchmark fails if its
# scan never spills or if the process peak RSS (recorded as peak-rss-MiB)
# exceeds its ceiling — 3 GiB at Scale=0.1 (raised from PR 7's 2 GiB for
# the 128-bit address widening), 16 GiB at Scale=1.0 where the streamed
# world and the per-scan reply log dominate. One run per scale is the
# measurement (-benchtime 1x; the full-scale study takes on the order of
# an hour on the single-core container).
bench-scale1:
	$(GO) test -run xxx -bench 'BenchmarkScale1Study|BenchmarkScale1FullStudy' -benchtime 1x -benchmem -timeout 150m . | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench 'BenchmarkScale1Study|BenchmarkScale1FullStudy' -benchtime 1x -benchmem -timeout 150m ." \
	        -note "Scale1Study: Scale=0.1 study (US1/HTTP/1 trial, ~5.8M-host streaming world) through the full experiment path with the spill store under a fixed 128 MiB result budget; peak-rss-MiB is the process VmHWM high-water mark (must stay under the 3 GiB ceiling — raised from PR 7's 2 GiB for the 128-bit address widening; the in-memory store would peak well above it). Scale1FullStudy: the same study at Scale=1.0 — the ROADMAP's full-IPv4-scale milestone, ~68.6M hosts and ~53M L7 handshakes on the grab fast path, RSS ceiling 16 GiB with a pinned 14 GiB Go soft memory limit so GC headroom over the ~10 GiB live heap (the ~2.2 GiB per-scan reply log, the FIB host arrays, the sealed output) is deterministic rather than GOGC-timing luck. spill-segments/spilled-MiB/merge-* are the spill store's own counters; sealed bytes are identical to the in-memory path (differential tests pin this). Single-core container." \
	        -out BENCH_scale1.json

# Parallel-engine scaling capture for BENCH_parallel.json. Meaningful only on
# a multi-core runner (the CI bench job uses one); machine.cores in the JSON
# records what the capture ran on, so a 1-core capture is self-describing
# rather than silently flat.
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkStudySerial$$|BenchmarkStudyParallel' -benchtime 3x -benchmem . | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench 'BenchmarkStudySerial|BenchmarkStudyParallel' -benchtime 3x -benchmem ." \
	        -note "Serial vs parallel scan engine (2/4/8 workers, plus 8 workers with 4-way sharded sweeps) on the batched kernel. Check machine.cores before reading the ratios: on a single-core runner the parallel variants measure scheduler overhead, not speedup." \
	        -out BENCH_parallel.json

# IPv6 hitlist study capture, plus the v4 serial study re-measured on the
# dual-stack address core: BenchmarkStudySerial here vs the capture in
# BENCH_fullspace.json is the no-regression check for the 128-bit widening
# (budget: within ~5%). Results land in BENCH_v6.json.
bench-v6:
	$(GO) test -run xxx -bench 'BenchmarkV6HitlistStudy|BenchmarkStudySerial$$' -benchtime 3x -benchmem . | \
	    $(GO) run ./cmd/benchjson \
	        -command "go test -run xxx -bench 'BenchmarkV6HitlistStudy|BenchmarkStudySerial' -benchtime 3x -benchmem ." \
	        -note "V6HitlistStudy = end-to-end IPv6 study (seeded /32-provider world, ~2.9k-target hitlist walk, 2 trials HTTP+SSH, 4 origins) serial and on 4 workers with 4-way sharded walks. StudySerial is the unchanged v4 reference on the widened 128-bit address core; compare against BENCH_fullspace.json's after capture (budget: within ~5%, proving the dual-stack genericization costs the v4 hot path nothing). Single-core container; compare ratios, not absolutes." \
	        -out BENCH_v6.json
