package fabric

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/hostsim"
	"repro/internal/ip"
	"repro/internal/loss"
	"repro/internal/origin"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// quietConfig builds a fabric config over a tiny world with negligible loss
// and no blocking, so tests can layer behaviours explicitly.
func quietConfig(t *testing.T, rules ...policy.Rule) (*Config, *world.World) {
	t.Helper()
	w, err := world.Build(context.Background(), world.Spec{Seed: 5, Scale: 0.00002})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{
		World:  w,
		Engine: policy.NewEngine(rules...),
		Loss: loss.NewMatrix(rng.NewKey(1).Derive("t"), loss.Config{
			BasePacketDrop: 1e-9, VolatileMax: 1e-9,
			VolatileSpreadFrac: 1e-9, VolatileModerateFrac: 1e-9,
		}),
		NumOrigins: 1,
		Hosts:      hostsim.NewServer(rng.NewKey(2)),
	}
	return cfg, w
}

// pickHost returns a host running p and one not running p.
func pickHost(t *testing.T, w *world.World, p proto.Protocol) (with ip.Addr, without ip.Addr) {
	t.Helper()
	var gotWith, gotWithout bool
	for _, h := range w.Hosts() {
		if h.Services.Has(p) && !gotWith {
			with, gotWith = h.Addr, true
		}
		if !h.Services.Has(p) && !gotWithout {
			without, gotWithout = h.Addr, true
		}
		if gotWith && gotWithout {
			return with, without
		}
	}
	t.Fatal("world lacks required hosts")
	return ip.Addr{}, ip.Addr{}
}

func synTo(w *world.World, o origin.ID, dst ip.Addr, port uint16) (src ip.Addr, pkt []byte, seq uint32) {
	src = w.Origins.Get(o).SourceIPs[0]
	seq = 0xdead0000
	return src, packet.MakeSYN(src, dst, 40000, port, seq, 0), seq
}

func TestSendSYNACKForLiveHost(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	host, _ := pickHost(t, w, proto.HTTP)
	src, syn, seq := synTo(w, origin.US1, host, 80)
	resp := fab.Send(src, syn, time.Hour)
	if resp == nil {
		t.Fatal("live host did not answer")
	}
	iph, tcph, _, err := packet.DecodeTCP4(resp)
	if err != nil {
		t.Fatal(err)
	}
	if iph.Src != host || iph.Dst != src {
		t.Errorf("response addressing: %v -> %v", iph.Src, iph.Dst)
	}
	if !tcph.HasFlag(packet.FlagSYN|packet.FlagACK) || tcph.Ack != seq+1 {
		t.Errorf("response not a valid SYN-ACK: flags=%#x ack=%d", tcph.Flags, tcph.Ack)
	}
}

func TestSendRSTForClosedPort(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	_, hostWithoutSSH := pickHost(t, w, proto.SSH)
	src, syn, _ := synTo(w, origin.US1, hostWithoutSSH, 22)
	resp := fab.Send(src, syn, time.Hour)
	if resp == nil {
		t.Fatal("live host with closed port must RST")
	}
	_, tcph, _, err := packet.DecodeTCP4(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !tcph.HasFlag(packet.FlagRST) {
		t.Errorf("expected RST, got flags %#x", tcph.Flags)
	}
}

func TestSendSilenceForEmptySpaceAndUnrouted(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	// An address inside the space but (very likely) not announced:
	// scanner source addresses are outside announced prefixes.
	src := w.Origins.Get(origin.US1).SourceIPs[0]
	syn := packet.MakeSYN(src, src.Add(1), 40000, 80, 1, 0)
	if resp := fab.Send(src, syn, 0); resp != nil {
		t.Error("unrouted space answered")
	}
	// Unannounced empty space inside a prefix: pick an address in an AS
	// prefix that is not a host.
	for _, a := range w.Routes.All() {
		pfx := a.Prefixes[0]
		for i := uint64(0); i < pfx.NumAddrs(); i++ {
			addr := pfx.Nth(i)
			if _, isHost := w.Lookup(addr); !isHost {
				syn := packet.MakeSYN(src, addr, 40000, 80, 1, 0)
				if resp := fab.Send(src, syn, 0); resp != nil {
					t.Fatal("empty routed address answered")
				}
				return
			}
		}
	}
}

func TestSendIgnoresGarbageAndNonSYN(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	if fab.Send(ip.AddrFrom4(1), []byte{1, 2, 3}, 0) != nil {
		t.Error("garbage packet answered")
	}
	host, _ := pickHost(t, w, proto.HTTP)
	src := w.Origins.Get(origin.US1).SourceIPs[0]
	ack := packet.SerializeTCP4(
		&packet.IPv4Header{Src: src, Dst: host, TTL: 64},
		&packet.TCPHeader{SrcPort: 40000, DstPort: 80, Flags: packet.FlagACK},
		nil,
	)
	if fab.Send(src, ack, 0) != nil {
		t.Error("non-SYN packet answered")
	}
}

func TestSendSilentPolicy(t *testing.T) {
	cfg, w := quietConfig(t, &policy.StaticBlock{
		RuleName: "block-all", Action: policy.Silent,
	})
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	host, _ := pickHost(t, w, proto.HTTP)
	src, syn, _ := synTo(w, origin.US1, host, 80)
	if fab.Send(src, syn, time.Hour) != nil {
		t.Error("silently blocked host answered")
	}
}

func TestDialAndGrabThroughFabric(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	host, _ := pickHost(t, w, proto.HTTP)
	g := &zgrab.Grabber{Dialer: fab, Key: rng.NewKey(3), IOTimeout: 5 * time.Second}
	res := g.Grab(context.Background(), proto.HTTP, host, time.Hour)
	if !res.Success {
		t.Fatalf("grab failed: %+v", res)
	}
	if res.Banner == "" {
		t.Error("no banner")
	}
}

func TestDialRefusedForClosedPort(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	_, hostWithoutSSH := pickHost(t, w, proto.SSH)
	_, err := fab.Dial(context.Background(), hostWithoutSSH, 22, time.Hour, 0)
	if !errors.Is(err, zgrab.ErrRefused) {
		t.Errorf("err = %v, want ErrRefused", err)
	}
}

func TestDialResetAfterAcceptBehaviour(t *testing.T) {
	cfg, w := quietConfig(t, &policy.StaticBlock{
		RuleName: "alibaba-like", Action: policy.ResetAfterAccept,
	})
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	host, _ := pickHost(t, w, proto.SSH)
	// L4 still answers (the paper: Alibaba hosts SYN-ACK then reset).
	src, syn, _ := synTo(w, origin.US1, host, 22)
	if fab.Send(src, syn, time.Hour) == nil {
		t.Fatal("ResetAfterAccept host must still SYN-ACK")
	}
	g := &zgrab.Grabber{Dialer: fab, Key: rng.NewKey(4), IOTimeout: 5 * time.Second}
	res := g.Grab(context.Background(), proto.SSH, host, time.Hour)
	if res.Success || res.Fail != zgrab.FailReset {
		t.Errorf("grab = %+v, want FailReset", res)
	}
}

func TestDialCloseAfterAcceptBehaviour(t *testing.T) {
	cfg, w := quietConfig(t, &policy.StaticBlock{
		RuleName: "maxstartups-like", Action: policy.CloseAfterAccept,
	})
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	host, _ := pickHost(t, w, proto.SSH)
	g := &zgrab.Grabber{Dialer: fab, Key: rng.NewKey(5), IOTimeout: 5 * time.Second}
	res := g.Grab(context.Background(), proto.SSH, host, time.Hour)
	if res.Success || res.Fail != zgrab.FailClosed {
		t.Errorf("grab = %+v, want FailClosed", res)
	}
}

func TestIDSBlocksAfterProbeVolume(t *testing.T) {
	cfg, w := quietConfig(t)
	host, _ := pickHost(t, w, proto.HTTP)
	as, _ := w.ASOf(host)
	ids := &policy.IDS{RuleName: "ids", AS: as.Number, Threshold: 5, Action: policy.Silent}
	cfg.IDSes = policy.Detectors([]*policy.IDS{ids})
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	src, syn, _ := synTo(w, origin.US1, host, 80)
	// First probes answered; after threshold, silence.
	answered, silent := 0, 0
	for i := 0; i < 10; i++ {
		if fab.Send(src, syn, time.Hour) != nil {
			answered++
		} else {
			silent++
		}
	}
	if answered == 0 || silent == 0 {
		t.Fatalf("IDS transition not observed: answered=%d silent=%d", answered, silent)
	}
	// Once detected, dialing also fails.
	if _, err := fab.Dial(context.Background(), host, 80, time.Hour, 0); !errors.Is(err, zgrab.ErrTimeout) {
		t.Errorf("dial after detection = %v, want timeout", err)
	}
}

func TestEpisodeKillsProbesAndDial(t *testing.T) {
	cfg, w := quietConfig(t)
	// Rebuild loss with a certain episode everywhere.
	cfg.Loss = loss.NewMatrix(rng.NewKey(9).Derive("t"), loss.Config{
		BasePacketDrop: 1e-9, VolatileMax: 1e-9,
		VolatileSpreadFrac: 1e-9, VolatileModerateFrac: 1e-9,
		StableAlpha: 1,
	})
	host, _ := pickHost(t, w, proto.HTTP)
	as, _ := w.ASOf(host)
	cfg.Loss.Override(origin.US1, as.Number, loss.Params{PacketDrop: 1e-9, EpisodeRate: 0})
	// Force the episode via a 100% episode rate.
	cfg.Loss.Override(origin.US1, as.Number, loss.Params{PacketDrop: 1e-9, EpisodeRate: 0.9999999})
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	src, syn, _ := synTo(w, origin.US1, host, 80)
	if fab.Send(src, syn, time.Hour) != nil {
		t.Error("probe survived a full-loss episode")
	}
	if _, err := fab.Dial(context.Background(), host, 80, time.Hour, 0); !errors.Is(err, zgrab.ErrTimeout) {
		t.Errorf("dial during episode = %v, want timeout", err)
	}
}

func TestDrainWaitsForConnTeardown(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	host, _ := pickHost(t, w, proto.HTTP)
	conn, err := fab.Dial(context.Background(), host, 80, time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	// While the client half is open, the server goroutine is live and a
	// bounded Drain must give up with ErrCanceled rather than hang.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := fab.Drain(ctx); !errors.Is(err, pipeline.ErrCanceled) {
		t.Errorf("Drain with open conn = %v, want ErrCanceled", err)
	}
	conn.Close()
	if err := fab.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after close: %v", err)
	}
	if n := fab.ActiveConns(); n != 0 {
		t.Errorf("ActiveConns = %d after drain, want 0", n)
	}
}

// TestSendZeroAllocs is the probe-evaluation allocation guard, mirroring
// the sweep guard in internal/zmap: Send must allocate nothing for probes
// it answers with silence — unrouted space, routed-but-empty space, and a
// churned-offline host — which is the overwhelming majority of a sweep's
// positions. (An answered probe allocates exactly its response packet.)
func TestSendZeroAllocs(t *testing.T) {
	cfg, w := quietConfig(t)
	cfg.Churn = world.NewChurn(rng.NewKey(7), 0.3, 3)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	src := w.Origins.Get(origin.US1).SourceIPs[0]

	var empty ip.Addr
	for _, a := range w.Routes.All() {
		pfx := a.Prefixes[0]
		for i := uint64(0); i < pfx.NumAddrs() && empty == (ip.Addr{}); i++ {
			if _, isHost := w.Lookup(pfx.Nth(i)); !isHost {
				empty = pfx.Nth(i)
			}
		}
		if empty != (ip.Addr{}) {
			break
		}
	}
	if empty == (ip.Addr{}) {
		t.Fatal("no empty routed address")
	}
	var offline ip.Addr
	for _, h := range w.Hosts() {
		if cfg.Churn.Offline(h.Addr, 0) {
			offline = h.Addr
			break
		}
	}
	if offline == (ip.Addr{}) {
		t.Fatal("churn left every host online")
	}
	for _, tc := range []struct {
		name string
		dst  ip.Addr
	}{
		{"unrouted", src.Add(1)},
		{"routed-empty", empty},
		{"churned-offline-host", offline},
	} {
		syn := packet.MakeSYN(src, tc.dst, 40000, 80, 1, 0)
		// Warm the query pool outside the measured runs so the guard
		// measures the steady state the sweep sees.
		fab.Send(src, syn, time.Hour)
		allocs := testing.AllocsPerRun(100, func() {
			if fab.Send(src, syn, time.Hour) != nil {
				t.Fatal("silent destination answered")
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Send allocates %.1f per probe, want 0", tc.name, allocs)
		}
	}
}

func TestFabricDeterministic(t *testing.T) {
	cfg, w := quietConfig(t)
	host, _ := pickHost(t, w, proto.HTTP)
	src, syn, _ := synTo(w, origin.AU, host, 80)
	fab1 := New(cfg, w.Origins.Get(origin.AU), 1)
	fab2 := New(cfg, w.Origins.Get(origin.AU), 1)
	for i := 0; i < 50; i++ {
		r1 := fab1.Send(src, syn, time.Duration(i)*time.Minute)
		r2 := fab2.Send(src, syn, time.Duration(i)*time.Minute)
		if (r1 == nil) != (r2 == nil) {
			t.Fatal("fabric behaviour not deterministic")
		}
	}
}

// TestFabricRoutedBatchMatchesRouted pins the fabric's batch routability
// (what the batched sweep kernel consults) to the per-address Routed answer
// for every address in the world's scan space.
func TestFabricRoutedBatchMatchesRouted(t *testing.T) {
	cfg, w := quietConfig(t)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	const batch = 4096
	dst := make([]ip.Addr, 0, batch)
	routed := make([]bool, batch)
	flush := func() {
		fab.RoutedBatch(dst, routed[:len(dst)])
		for i, a := range dst {
			if routed[i] != fab.Routed(a) {
				t.Fatalf("RoutedBatch(%v) = %v, Routed = %v", a, routed[i], fab.Routed(a))
			}
		}
		dst = dst[:0]
	}
	for a := uint64(0); a < w.SpaceSize(); a++ {
		dst = append(dst, ip.AddrFrom4(uint32(a)))
		if len(dst) == batch {
			flush()
		}
	}
	flush()
}
