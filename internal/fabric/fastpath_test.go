package fabric

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/loss"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// fastCases are the policy treatments the fast path must replicate: every
// verdict class the engine can produce, plus the probabilistic MaxStartups
// refusal the §6 retry experiment depends on.
func fastCases() []struct {
	name  string
	rules []policy.Rule
} {
	return []struct {
		name  string
		rules []policy.Rule
	}{
		{"allow", nil},
		{"silent", []policy.Rule{&policy.StaticBlock{RuleName: "b", Action: policy.Silent}}},
		{"refuse-tcp", []policy.Rule{&policy.StaticBlock{RuleName: "b", Action: policy.RefuseTCP}}},
		{"reset-after-accept", []policy.Rule{&policy.StaticBlock{RuleName: "b", Action: policy.ResetAfterAccept}}},
		{"close-after-accept", []policy.Rule{&policy.StaticBlock{RuleName: "b", Action: policy.CloseAfterAccept}}},
		{"maxstartups", []policy.Rule{&policy.MaxStartups{
			RuleName: "ms", HostFraction: 1.0,
			Start: 3, Rate: 0.6, Full: 50, MeanLoad: 10,
			Key: rng.NewKey(6).Derive("ms"),
		}}},
	}
}

// diffTargets picks a representative destination mix: every host in the
// small world (services present and absent), one routed-but-empty address,
// and one unrouted address.
func diffTargets(t *testing.T, w *world.World) []ip.Addr {
	t.Helper()
	dsts := make([]ip.Addr, 0, len(w.Hosts())+2)
	for _, h := range w.Hosts() {
		dsts = append(dsts, h.Addr)
	}
	for _, a := range w.Routes.All() {
		pfx := a.Prefixes[0]
		for i := uint64(0); i < pfx.NumAddrs(); i++ {
			if _, isHost := w.Lookup(pfx.Nth(i)); !isHost {
				dsts = append(dsts, pfx.Nth(i))
				break
			}
		}
		break
	}
	return append(dsts, w.Origins.Get(origin.US1).SourceIPs[0].Add(1))
}

// TestPredialMatchesDial pins the connectionless verdict to Dial's
// observable outcome for every policy treatment, destination class, port,
// and attempt number, including churned-offline hosts.
func TestPredialMatchesDial(t *testing.T) {
	ctx := context.Background()
	for _, tc := range fastCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg, w := quietConfig(t, tc.rules...)
			cfg.Churn = world.NewChurn(rng.NewKey(7), 0.3, 3)
			fab := New(cfg, w.Origins.Get(origin.US1), 0)
			for _, dst := range diffTargets(t, w) {
				for _, port := range []uint16{80, 443, 22} {
					for attempt := 0; attempt < 3; attempt++ {
						v := fab.Predial(dst, port, time.Hour, attempt)
						conn, err := fab.Dial(ctx, dst, port, time.Hour, attempt)
						switch {
						case errors.Is(err, zgrab.ErrTimeout):
							if v != zgrab.DialTimeout {
								t.Fatalf("%v:%d attempt %d: Dial timeout, Predial %d", dst, port, attempt, v)
							}
						case errors.Is(err, zgrab.ErrRefused):
							if v != zgrab.DialRefused {
								t.Fatalf("%v:%d attempt %d: Dial refused, Predial %d", dst, port, attempt, v)
							}
						case err == nil:
							if v != zgrab.DialReset && v != zgrab.DialHalfClose && v != zgrab.DialConnect {
								t.Fatalf("%v:%d attempt %d: Dial connected, Predial %d", dst, port, attempt, v)
							}
							conn.Close()
						default:
							t.Fatalf("%v:%d: unexpected dial error %v", dst, port, err)
						}
					}
				}
			}
			if err := fab.Drain(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPredialBatchMatchesPredial pins the batched evaluation (bulk FIB
// resolution + shared scratch) to the per-destination path.
func TestPredialBatchMatchesPredial(t *testing.T) {
	cfg, w := quietConfig(t)
	cfg.Churn = world.NewChurn(rng.NewKey(7), 0.3, 3)
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	dsts := diffTargets(t, w)
	ts := make([]time.Duration, len(dsts))
	for i := range ts {
		ts[i] = time.Duration(i) * time.Minute
	}
	out := make([]zgrab.DialVerdict, len(dsts))
	fab.PredialBatch(dsts, ts, 80, out)
	for i, dst := range dsts {
		if want := fab.Predial(dst, 80, ts[i], 0); out[i] != want {
			t.Errorf("PredialBatch[%d] (%v) = %d, Predial = %d", i, dst, out[i], want)
		}
	}
}

// grabPair builds a reference and a fast fabric over one shared config
// (the engine and loss models are stateless keyed hashes; sharing them is
// exactly what one scan does) with separate connection accounting.
func grabPair(t *testing.T, retries int, lossCfg *loss.Config, rules ...policy.Rule) (*Fabric, *Fabric, *zgrab.Grabber, *zgrab.Grabber, *world.World) {
	t.Helper()
	cfg, w := quietConfig(t, rules...)
	cfg.Churn = world.NewChurn(rng.NewKey(7), 0.2, 3)
	if lossCfg != nil {
		cfg.Loss = loss.NewMatrix(rng.NewKey(1).Derive("t"), *lossCfg)
	}
	fabR := New(cfg, w.Origins.Get(origin.US1), 0)
	fabF := New(cfg, w.Origins.Get(origin.US1), 0)
	gR := &zgrab.Grabber{Dialer: fabR, Retries: retries, Key: rng.NewKey(3), IOTimeout: 5 * time.Second}
	gF := &zgrab.Grabber{Dialer: fabF, Retries: retries, Key: rng.NewKey(3)}
	return fabR, fabF, gR, gF, w
}

// TestGrabFastMatchesReference is the end-to-end differential: for every
// policy treatment and protocol, the fast path's zgrab.Result (success,
// failure mode, banner bytes, attempts) must equal the goroutine+vconn
// reference grab for every host in the world, with zero goroutines live on
// the fast path and identical ConnsOpened accounting.
func TestGrabFastMatchesReference(t *testing.T) {
	ctx := context.Background()
	for _, tc := range fastCases() {
		retries := 0
		if tc.name == "maxstartups" {
			retries = 8 // §6: immediate retries recover MaxStartups hosts
		}
		t.Run(tc.name, func(t *testing.T) {
			fabR, fabF, gR, gF, w := grabPair(t, retries, nil, tc.rules...)
			for _, p := range proto.All() {
				for _, h := range w.Hosts() {
					ref := gR.Grab(ctx, p, h.Addr, time.Hour)
					v := fabF.Predial(h.Addr, p.Port(), time.Hour, 0)
					fast := gF.GrabFast(ctx, p, h.Addr, time.Hour, v)
					if ref != fast {
						t.Fatalf("%v/%v: fast %+v != reference %+v", p, h.Addr, fast, ref)
					}
					if n := fabF.ActiveConns(); n != 0 {
						t.Fatalf("fast path spawned %d goroutines", n)
					}
				}
			}
			if err := fabR.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			if fabR.ConnsOpened() != fabF.ConnsOpened() {
				t.Errorf("ConnsOpened: reference %d, fast %d", fabR.ConnsOpened(), fabF.ConnsOpened())
			}
		})
	}
}

// TestGrabFastMatchesReferenceLossy repeats the differential under heavy
// handshake loss with a retry budget, so attempts fail and recover at
// different attempt numbers on both paths.
func TestGrabFastMatchesReferenceLossy(t *testing.T) {
	ctx := context.Background()
	lossy := &loss.Config{
		BasePacketDrop: 0.15, VolatileMax: 0.4,
		VolatileSpreadFrac: 0.5, VolatileModerateFrac: 0.3,
		StableAlpha: 1,
	}
	fabR, fabF, gR, gF, w := grabPair(t, 3, lossy)
	for _, h := range w.Hosts() {
		ref := gR.Grab(ctx, proto.SSH, h.Addr, time.Hour)
		v := fabF.Predial(h.Addr, proto.SSH.Port(), time.Hour, 0)
		fast := gF.GrabFast(ctx, proto.SSH, h.Addr, time.Hour, v)
		if ref != fast {
			t.Fatalf("%v: fast %+v != reference %+v (lossy)", h.Addr, fast, ref)
		}
	}
	if err := fabR.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if fabR.ConnsOpened() != fabF.ConnsOpened() {
		t.Errorf("ConnsOpened: reference %d, fast %d", fabR.ConnsOpened(), fabF.ConnsOpened())
	}
}

// TestGrabFastParallelWindow drives the fast path the way the grab stage
// does — PredialBatch over a window, concurrent workers grabbing with the
// precomputed verdicts, conns recycled through the pool — and requires the
// exact serial reference results, zero goroutines throughout, and matching
// ConnsOpened. Run under -race this is also the pool-safety proof.
func TestGrabFastParallelWindow(t *testing.T) {
	ctx := context.Background()
	fabR, fabF, gR, gF, w := grabPair(t, 1, nil)
	hosts := w.Hosts()
	dsts := make([]ip.Addr, len(hosts))
	ts := make([]time.Duration, len(hosts))
	for i, h := range hosts {
		dsts[i] = h.Addr
		ts[i] = time.Hour
	}

	refs := make([]zgrab.Result, len(dsts))
	for i, d := range dsts {
		refs[i] = gR.Grab(ctx, proto.HTTP, d, ts[i])
	}
	if err := fabR.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	verdicts := make([]zgrab.DialVerdict, len(dsts))
	fabF.PredialBatch(dsts, ts, proto.HTTP.Port(), verdicts)
	fasts := make([]zgrab.Result, len(dsts))
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	leaked := false
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if fabF.ActiveConns() != 0 {
					leaked = true
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	const workers = 8
	var next int64
	var mu sync.Mutex
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(dsts) {
					return
				}
				fasts[i] = gF.GrabFast(ctx, proto.HTTP, dsts[i], ts[i], verdicts[i])
			}
		}()
	}
	wg.Wait()
	close(stop)
	watcher.Wait()
	if leaked {
		t.Error("fast path had live server goroutines mid-stage")
	}
	for i := range refs {
		if refs[i] != fasts[i] {
			t.Fatalf("%v: parallel fast %+v != serial reference %+v", dsts[i], fasts[i], refs[i])
		}
	}
	if fabR.ConnsOpened() != fabF.ConnsOpened() {
		t.Errorf("ConnsOpened: reference %d, fast %d", fabR.ConnsOpened(), fabF.ConnsOpened())
	}
	if fabF.ActiveConns() != 0 {
		t.Errorf("ActiveConns = %d after fast grab stage, want 0", fabF.ActiveConns())
	}
}

// TestGrabFastCanceledContext pins the cancellation contract: a canceled
// context produces the same timeout-classified, retry-free result on both
// paths.
func TestGrabFastCanceledContext(t *testing.T) {
	fabR, fabF, gR, gF, w := grabPair(t, 4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := w.Hosts()[0].Addr
	ref := gR.Grab(ctx, proto.HTTP, h, time.Hour)
	v := fabF.Predial(h, proto.HTTP.Port(), time.Hour, 0)
	fast := gF.GrabFast(ctx, proto.HTTP, h, time.Hour, v)
	if ref != fast {
		t.Errorf("canceled grab: fast %+v != reference %+v", fast, ref)
	}
	if fast.Fail != zgrab.FailTimeout || fast.Attempts != 1 {
		t.Errorf("canceled grab = %+v, want single timeout attempt", fast)
	}
	_ = fabR.Drain(context.Background())
}

// TestGrabFastIDSDetection: once a stateful IDS has crossed its detection
// threshold during the sweep, grab-time dials from the blocked source must
// time out identically on both paths (the grab-time IDS view is read-only
// — exactly what makes batched pre-dial evaluation safe).
func TestGrabFastIDSDetection(t *testing.T) {
	ctx := context.Background()
	cfg, w := quietConfig(t)
	host, _ := pickHost(t, w, proto.HTTP)
	as, _ := w.ASOf(host)
	ids := &policy.IDS{RuleName: "ids", AS: as.Number, Threshold: 3, Action: policy.Silent}
	cfg.IDSes = policy.Detectors([]*policy.IDS{ids})
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	src, syn, _ := synTo(w, origin.US1, host, 80)
	for i := 0; i < 10; i++ {
		fab.Send(src, syn, time.Hour)
	}
	if _, err := fab.Dial(ctx, host, 80, time.Hour, 0); !errors.Is(err, zgrab.ErrTimeout) {
		t.Fatalf("reference dial after detection = %v, want timeout", err)
	}
	if v := fab.Predial(host, 80, time.Hour, 0); v != zgrab.DialTimeout {
		t.Errorf("Predial after IDS detection = %d, want DialTimeout", v)
	}
}
