// The grab fast path: batched pre-dial evaluation plus inline-served,
// pooled connections. Dial pays per connection for a vconn pipe (two
// windowed buffers, two conn wrappers) and a dedicated server goroutine;
// at Scale=1.0 the grab stage performs ~53M L7 handshakes, so that
// per-connection concurrency tax dominates study wall time. The fast path
// splits the dial in two: Predial/PredialBatch run the entire decision
// chain (routing, protocol, churn, policy, IDS, outages/episodes,
// handshake loss) without touching connection setup — safe because every
// decision is a keyed hash of the event coordinates and the grab-time IDS
// view is read-only — and ConnectFast materializes accepting verdicts as
// pooled fastConns whose server side runs inline in the grabber's
// goroutine (hostsim.ServeInline). Dial remains the reference
// implementation; differential tests pin the two paths bit-identical.
package fabric

import (
	"bytes"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/vconn"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// Predial implements zgrab.FastDialer: evaluate one dial's verdict without
// opening a connection. The decision sequence — including the order policy
// and IDS verdicts, path conditions, and handshake loss are consulted —
// replicates Dial exactly. Safe for concurrent use (pooled queries, no
// shared scratch).
func (f *Fabric) Predial(dst ip.Addr, port uint16, t time.Duration, attempt int) zgrab.DialVerdict {
	return f.predialEval(dst, f.fib.Resolve(dst), port, t, attempt)
}

// PredialBatch implements zgrab.FastDialer: evaluate attempt 0 for a whole
// grab window, resolving the FIB in bulk first (same-/24 neighbors share
// directory ranks). Single-caller by contract: it reuses the fabric's
// resolution scratch.
func (f *Fabric) PredialBatch(dsts []ip.Addr, ts []time.Duration, port uint16, out []zgrab.DialVerdict) {
	if cap(f.preDests) < len(dsts) {
		f.preDests = make([]world.Dest, len(dsts))
	}
	dests := f.preDests[:len(dsts)]
	f.fib.ResolveBatch(dsts, dests)
	for i, dst := range dsts {
		out[i] = f.predialEval(dst, dests[i], port, ts[i], 0)
	}
}

// predialEval is the connectionless dial decision chain. Every branch
// mirrors Dial line for line; the accepting verdicts defer their
// connection effects (reset / half-close / serve) to ConnectFast.
func (f *Fabric) predialEval(dst ip.Addr, d world.Dest, port uint16, t time.Duration, attempt int) zgrab.DialVerdict {
	if !d.Routed {
		return zgrab.DialTimeout
	}
	p, isProto := proto.FromPort(port)
	if !isProto {
		return zgrab.DialRefused
	}
	if d.Host && f.cfg.Churn.Offline(dst, f.trial) {
		return zgrab.DialTimeout
	}
	src := origin.SourceFor(f.org.SourceIPs, dst)
	q := f.query(src, dst, d, p, t, attempt)
	defer f.release(q)

	verdict, _ := f.cfg.Engine.Evaluate(q)
	for _, ids := range f.cfg.IDSes {
		if v, ok := ids.Evaluate(q); ok && v == policy.Silent {
			return zgrab.DialTimeout
		}
	}
	switch verdict {
	case policy.Silent:
		return zgrab.DialTimeout
	case policy.RefuseTCP:
		return zgrab.DialRefused
	}
	if f.pathDown(dst, d.AS, t) {
		return zgrab.DialTimeout
	}
	if !d.Host || !d.Services.Has(p) {
		return zgrab.DialRefused
	}
	if f.cfg.Loss.HandshakeFailed(f.org.ID, dst, d.AS.Number, f.trial, attempt) {
		return zgrab.DialTimeout
	}
	switch verdict {
	case policy.ResetAfterAccept:
		return zgrab.DialReset
	case policy.CloseAfterAccept:
		return zgrab.DialHalfClose
	}
	return zgrab.DialConnect
}

// ConnectFast implements zgrab.FastDialer: turn an accepting verdict into
// a pooled connection. Only served connections count toward ConnsOpened,
// matching Dial (reset/half-closed conns never spawned a server there
// either); nothing counts toward ActiveConns — there is no goroutine.
func (f *Fabric) ConnectFast(dst ip.Addr, port uint16, v zgrab.DialVerdict) net.Conn {
	p, _ := proto.FromPort(port)
	c := fastConns.Get().(*fastConn)
	c.fab = f
	c.host = dst
	c.prot = p
	c.served = false
	c.closed = false
	switch v {
	case zgrab.DialReset:
		c.state = fastReset
	case zgrab.DialHalfClose:
		c.state = fastHalfClosed
	default:
		c.state = fastServe
		f.opened.Add(1)
	}
	return c
}

// fastConns recycles fastConn objects (and their grown in/out buffers)
// across grabs; Close returns the conn to the pool.
var fastConns = sync.Pool{New: func() any { return new(fastConn) }}

const (
	// fastServe: accepted; the host serves inline on the first read.
	fastServe uint8 = iota
	// fastReset: accepted then reset before the client saw the conn
	// (policy.ResetAfterAccept) — reads and writes see vconn.ErrReset,
	// exactly what the reference's synchronous server.Abort produces.
	fastReset
	// fastHalfClosed: accepted then FIN (policy.CloseAfterAccept) —
	// writes are accepted, reads see io.EOF, like the reference's
	// server.CloseWrite.
	fastHalfClosed
)

// fastConn is an inline-served client connection: client writes accumulate
// in `in`; the first read runs the host's whole response flight via
// hostsim.ServeInline and then drains it, followed by io.EOF (the server's
// orderly close). That is byte-identical to the goroutine path for the
// turn-based grabbers, which write their complete opening flight before
// reading — a client that interleaved reads into an unfinished flight
// would see EOF where the goroutine path would block, which no grabber
// does (the experiment layer routes wrapped/unknown dialers to the
// reference path).
type fastConn struct {
	fab    *Fabric
	host   ip.Addr
	prot   proto.Protocol
	state  uint8
	served bool
	closed bool
	in     bytes.Buffer
	outBuf bytes.Buffer
	out    bytes.Reader
}

var _ net.Conn = (*fastConn)(nil)

// Read implements net.Conn. The one-shot inline serve runs on the first
// read of an accepted conn; once the response flight drains, io.EOF.
func (c *fastConn) Read(p []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	switch c.state {
	case fastReset:
		return 0, vconn.ErrReset
	case fastHalfClosed:
		return 0, io.EOF
	}
	if !c.served {
		c.served = true
		c.fab.cfg.Hosts.ServeInline(&c.outBuf, c.in.Bytes(), c.host, c.prot)
		c.out.Reset(c.outBuf.Bytes())
	}
	return c.out.Read(p)
}

// Write implements net.Conn.
func (c *fastConn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, net.ErrClosed
	}
	switch c.state {
	case fastReset:
		return 0, vconn.ErrReset
	case fastHalfClosed:
		// The server half-closed only its direction: client writes are
		// accepted (and, with no reader left, discarded).
		return len(p), nil
	}
	if c.served {
		// The inline server already ran its single flight and closed;
		// writing to a closed reader is an RST, as on the vconn path.
		return 0, vconn.ErrReset
	}
	return c.in.Write(p)
}

// Close returns the conn to the pool. Idempotent, like vconn.Conn.Close.
func (c *fastConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.in.Reset()
	c.outBuf.Reset()
	c.out.Reset(nil)
	c.fab = nil
	fastConns.Put(c)
	return nil
}

// LocalAddr implements net.Conn; the source is derived lazily — grabbers
// never read connection addresses.
func (c *fastConn) LocalAddr() net.Addr {
	return vconn.Addr{IP: origin.SourceFor(c.fab.org.SourceIPs, c.host)}
}

// RemoteAddr implements net.Conn.
func (c *fastConn) RemoteAddr() net.Addr { return vconn.Addr{IP: c.host} }

// SetDeadline implements net.Conn: inline reads never block, so deadlines
// are no-ops.
func (c *fastConn) SetDeadline(time.Time) error      { return nil }
func (c *fastConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fastConn) SetWriteDeadline(time.Time) error { return nil }
