// Package fabric is the simulated network connecting scanners to the
// synthetic Internet. It implements zmap.PacketSink (L4: evaluates real SYN
// packet bytes against routing, policy, outages, and loss, answering with
// real SYN-ACK/RST bytes) and zgrab.Dialer (L7: hands out virtual
// connections served by hostsim, subject to the same path conditions).
//
// Every probabilistic decision is a keyed hash of the event coordinates, so
// a scan through the fabric is deterministic and independent of goroutine
// scheduling.
package fabric

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asn"
	"repro/internal/hostsim"
	"repro/internal/ip"
	"repro/internal/loss"
	"repro/internal/origin"
	"repro/internal/outage"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/vconn"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// Config assembles a fabric for one study.
type Config struct {
	World  *world.World
	Engine *policy.Engine
	// IDSes are the detectors observing this scan's probes: the live
	// stateful *policy.IDS machines when scans run serially, or read-only
	// per-scan *policy.ScheduledIDS views when scans run concurrently.
	IDSes   []policy.Detector
	Loss    *loss.Matrix
	Outages *outage.Schedule
	// Churn marks hosts offline for whole trials (nil = no churn).
	Churn *world.Churn
	// NumOrigins is how many origins scan simultaneously (drives
	// MaxStartups concurrency).
	NumOrigins int
	// Host server personalities.
	Hosts *hostsim.Server
}

// Fabric carries packets between one origin's scanner and the world during
// one trial. Create one per (origin, trial); fabrics share the underlying
// Config (including stateful IDSes).
type Fabric struct {
	cfg   *Config
	org   *origin.Origin
	trial int
	fib   *world.FIB

	// queries recycles policy.Query scratch space: Send and Dial fill a
	// pooled query, hand it to the rules, and release it on return, so
	// probe evaluation allocates nothing. Rules must not retain queries
	// (see policy.Rule). A pool rather than a single per-fabric query
	// because sharded sweeps call Send concurrently.
	queries sync.Pool

	// preDests is PredialBatch's FIB resolution scratch. PredialBatch is
	// single-caller by contract (the grab stage's window loop owns it),
	// so one slice per fabric suffices.
	preDests []world.Dest

	// conns tracks the per-connection server goroutines this fabric
	// spawned, so a scan can Drain them before sealing results.
	conns  sync.WaitGroup
	active atomic.Int64
	// opened counts served connections over the fabric's lifetime (the
	// grab stage's span attribute; active is the instantaneous view).
	opened atomic.Uint64
}

// New returns a fabric for one (origin, trial) scan.
func New(cfg *Config, org *origin.Origin, trial int) *Fabric {
	return &Fabric{
		cfg:     cfg,
		org:     org,
		trial:   trial,
		fib:     cfg.World.FIB(),
		queries: sync.Pool{New: func() any { return new(policy.Query) }},
	}
}

// query fills a pooled policy query for a destination already resolved
// through the FIB. The query is valid until release; every field is
// overwritten, so recycled queries carry no state between probes.
func (f *Fabric) query(srcIP, dst ip.Addr, d world.Dest, p proto.Protocol, t time.Duration, attempt int) *policy.Query {
	q := f.queries.Get().(*policy.Query)
	*q = policy.Query{
		Origin:            f.org.ID,
		SrcIP:             srcIP,
		SrcCountry:        f.org.Country,
		NumSrcIPs:         len(f.org.SourceIPs),
		Rep:               f.org.ScanReputation,
		Dst:               dst,
		DstAS:             d.AS.Number,
		DstCountry:        d.Country,
		Proto:             p,
		Trial:             f.trial,
		Time:              t,
		Attempt:           attempt,
		ConcurrentOrigins: f.cfg.NumOrigins,
	}
	return q
}

// release returns a query to the pool.
func (f *Fabric) release(q *policy.Query) { f.queries.Put(q) }

// Routed implements zmap.Routability: the scanner consults the FIB's routed
// bit before paying for a probe's encode/decode round trip into unannounced
// space (which Send would silently eat anyway).
func (f *Fabric) Routed(dst ip.Addr) bool { return f.fib.Routed(dst) }

// RoutedBatch implements zmap.BatchRoutability: the batched sweep kernel
// evaluates a whole 4096-address batch against the FIB in one call, letting
// the FIB reuse its directory rank across same-/24 neighbors.
func (f *Fabric) RoutedBatch(dst []ip.Addr, routed []bool) { f.fib.RoutedBatch(dst, routed) }

// pathDown reports whether the origin→dst path is unusable at time t due to
// a burst outage or a correlated loss episode. Both probes of a target and
// the follow-up connection share this state — loss is not independent.
func (f *Fabric) pathDown(dst ip.Addr, as *asn.AS, t time.Duration) bool {
	if f.cfg.Outages != nil && f.cfg.Outages.Affected(f.trial, f.org.ID, as.Number, dst, t) {
		return true
	}
	return f.cfg.Loss.EpisodeActive(f.org.ID, dst, as.Number, f.trial)
}

// Send implements zmap.PacketSink: evaluate one SYN probe. The evaluation
// path allocates nothing — headers decode into stack scratch, the FIB
// resolves the destination with array reads, and the policy query comes
// from the fabric's pool — so only an answered probe costs an allocation
// (its response packet).
func (f *Fabric) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	var dst ip.Addr
	var tcph packet.TCPHeader
	var probeIdx uint64
	if packet.Version(pkt) == 6 {
		var ip6 packet.IPv6Header
		if _, err := packet.DecodeTCP6Into(&ip6, &tcph, pkt); err != nil ||
			!tcph.HasFlag(packet.FlagSYN) || tcph.HasFlag(packet.FlagACK) {
			return nil // the network silently eats malformed probes
		}
		dst = ip6.Dst
		probeIdx = uint64(ip6.FlowLabel) // v6 probes stamp the index in FlowLabel
	} else {
		var iph packet.IPv4Header
		if _, err := packet.DecodeTCP4Into(&iph, &tcph, pkt); err != nil ||
			!tcph.HasFlag(packet.FlagSYN) || tcph.HasFlag(packet.FlagACK) {
			return nil // the network silently eats malformed probes
		}
		dst = iph.Dst
		probeIdx = uint64(iph.ID) // scanner stamps the probe index in IP ID
	}
	d := f.fib.Resolve(dst)
	if !d.Routed {
		return nil // unannounced space: no route, no answer
	}
	p, isProto := proto.FromPort(tcph.DstPort)
	if !isProto {
		return nil
	}

	if d.Host && f.cfg.Churn.Offline(dst, f.trial) {
		// The machine is down this trial: silence, from every origin.
		return nil
	}

	q := f.query(src, dst, d, p, t, 0)
	defer f.release(q)
	q.Probe = int(probeIdx)

	// IDSes observe every probe that reaches their AS, even ones that
	// will go unanswered; a blocked source gets silence.
	for _, ids := range f.cfg.IDSes {
		if ids.RecordProbe(q) {
			return nil
		}
	}

	verdict, _ := f.cfg.Engine.Evaluate(q)
	if verdict == policy.Silent {
		return nil
	}

	// Path conditions apply to everything beyond policy drops.
	if f.pathDown(dst, d.AS, t) {
		return nil
	}
	// Independent per-packet loss: the probe (direction 0) and its
	// response (direction 1) can each be dropped.
	if f.cfg.Loss.PacketLost(f.org.ID, dst, d.AS.Number, f.trial, probeIdx*2, t) ||
		f.cfg.Loss.PacketLost(f.org.ID, dst, d.AS.Number, f.trial, probeIdx*2+1, t) {
		return nil
	}

	if verdict == policy.RefuseTCP {
		return packet.MakeRST(dst, src, tcph.DstPort, tcph.SrcPort, 0, tcph.Seq+1)
	}
	if !d.Host || !d.Services.Has(p) {
		// Live networks answer closed ports with RST only when a
		// machine owns the address; empty space stays silent.
		if d.Host {
			return packet.MakeRST(dst, src, tcph.DstPort, tcph.SrcPort, 0, tcph.Seq+1)
		}
		return nil
	}

	// Host answers. ResetAfterAccept/CloseAfterAccept hosts still
	// SYN-ACK (they kill the connection later, as Alibaba's SSH hosts
	// do).
	seq := f.cfg.World.Key.Derive("isn").Uint64(dst.Word64(), uint64(t))
	return packet.MakeSYNACK(dst, src, tcph.DstPort, tcph.SrcPort, uint32(seq), tcph.Seq+1)
}

// Dial implements zgrab.Dialer: attempt a full TCP connection for an
// application-layer grab. A canceled context fails the dial immediately
// with the context's error.
func (f *Fabric) Dial(ctx context.Context, dst ip.Addr, port uint16, t time.Duration, attempt int) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d := f.fib.Resolve(dst)
	if !d.Routed {
		return nil, zgrab.ErrTimeout
	}
	p, isProto := proto.FromPort(port)
	if !isProto {
		return nil, zgrab.ErrRefused
	}
	if d.Host && f.cfg.Churn.Offline(dst, f.trial) {
		return nil, zgrab.ErrTimeout
	}
	src := origin.SourceFor(f.org.SourceIPs, dst)
	q := f.query(src, dst, d, p, t, attempt)
	defer f.release(q)

	verdict, _ := f.cfg.Engine.Evaluate(q)
	for _, ids := range f.cfg.IDSes {
		if v, ok := ids.Evaluate(q); ok && v == policy.Silent {
			return nil, zgrab.ErrTimeout
		}
	}
	switch verdict {
	case policy.Silent:
		return nil, zgrab.ErrTimeout
	case policy.RefuseTCP:
		return nil, zgrab.ErrRefused
	}
	if f.pathDown(dst, d.AS, t) {
		return nil, zgrab.ErrTimeout
	}
	if !d.Host || !d.Services.Has(p) {
		return nil, zgrab.ErrRefused
	}
	// Per-packet loss over the whole handshake exchange: on loss the
	// connection times out mid-handshake.
	if f.cfg.Loss.HandshakeFailed(f.org.ID, dst, d.AS.Number, f.trial, attempt) {
		return nil, zgrab.ErrTimeout
	}

	client, server := vconn.Pipe(src, dst)
	switch verdict {
	// Reset/close-after-accept tear down synchronously, before the client
	// sees the conn: spawned teardown raced the grabber's first write
	// (write-then-close → FIN/EOF, close-then-write → EPIPE/RST), making
	// the recorded FailMode depend on goroutine scheduling. CloseAfterAccept
	// is a half-close so the client's write is accepted either way.
	case policy.ResetAfterAccept:
		server.Abort()
	case policy.CloseAfterAccept:
		server.CloseWrite()
	default:
		f.conns.Add(1)
		f.active.Add(1)
		f.opened.Add(1)
		go func() {
			defer f.active.Add(-1)
			defer f.conns.Done()
			f.cfg.Hosts.Serve(server, dst, p)
		}()
	}
	return client, nil
}

// Drain blocks until every per-connection server goroutine this fabric
// spawned has exited, or ctx is done. A scan seals its results only after a
// successful drain, so no goroutine outlives its scan.
func (f *Fabric) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		f.conns.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return pipeline.Canceled(ctx.Err())
	}
}

// ActiveConns reports how many per-connection server goroutines are live.
func (f *Fabric) ActiveConns() int { return int(f.active.Load()) }

// ConnsOpened reports how many served connections the fabric has opened in
// total (connections refused, reset, or half-closed before serving are not
// counted — they never spawned a server goroutine).
func (f *Fabric) ConnsOpened() uint64 { return f.opened.Load() }
