package fabric

import (
	"context"
	"testing"
	"time"

	"repro/internal/hostsim"
	"repro/internal/ip"
	"repro/internal/loss"
	"repro/internal/origin"
	"repro/internal/packet"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// benchFabric builds a quiet fabric over a small world plus one probe packet
// per destination class: a live host, routed-but-empty space, and unrouted
// space. These are the three Send paths the sweep fast path distinguishes.
func benchFabric(b *testing.B) (fab *Fabric, src ip.Addr, host, empty, unrouted []byte) {
	b.Helper()
	w, err := world.Build(context.Background(), world.Spec{Seed: 5, Scale: 0.00002})
	if err != nil {
		b.Fatal(err)
	}
	cfg := &Config{
		World:  w,
		Engine: policy.NewEngine(),
		Loss: loss.NewMatrix(rng.NewKey(1).Derive("t"), loss.Config{
			BasePacketDrop: 1e-9, VolatileMax: 1e-9,
			VolatileSpreadFrac: 1e-9, VolatileModerateFrac: 1e-9,
		}),
		NumOrigins: 1,
		Hosts:      hostsim.NewServer(rng.NewKey(2)),
	}
	fab = New(cfg, w.Origins.Get(origin.US1), 0)
	src = w.Origins.Get(origin.US1).SourceIPs[0]

	var hostAddr, emptyAddr ip.Addr
	hostAddr = w.Hosts()[0].Addr
	for _, a := range w.Routes.All() {
		pfx := a.Prefixes[0]
		for i := uint64(0); i < pfx.NumAddrs(); i++ {
			if _, isHost := w.Lookup(pfx.Nth(i)); !isHost {
				emptyAddr = pfx.Nth(i)
				break
			}
		}
		if emptyAddr != (ip.Addr{}) {
			break
		}
	}
	if emptyAddr == (ip.Addr{}) {
		b.Fatal("no empty routed address found")
	}
	// The scanner source block is allocated outside announced space.
	unroutedAddr := src.Add(1)
	if _, ok := w.ASOf(unroutedAddr); ok {
		b.Fatal("expected unrouted address")
	}

	mk := func(dst ip.Addr) []byte {
		return packet.MakeSYN(src, dst, 40000, proto.HTTP.Port(), 0xdead0000, 0)
	}
	return fab, src, mk(hostAddr), mk(emptyAddr), mk(unroutedAddr)
}

// BenchmarkFabricSend measures one SYN evaluation per destination class.
// The routed/empty and unrouted cases are the per-probe cost the sweep pays
// for the overwhelming majority of scan positions; the host case includes
// building the SYN-ACK response packet.
func BenchmarkFabricSend(b *testing.B) {
	fab, src, host, empty, unrouted := benchFabric(b)
	for _, bc := range []struct {
		name string
		pkt  []byte
	}{{"host", host}, {"routed-empty", empty}, {"unrouted", unrouted}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fab.Send(src, bc.pkt, time.Hour)
			}
		})
	}
}

// benchGrabFabric builds the grab-stage benchmark fixture: a quiet fabric
// plus the world's full host list. Grabbing every host with every protocol
// walks the mix a real grab stage sees — accepted handshakes on hosts
// running the service, refused dials on hosts that don't.
func benchGrabFabric(b *testing.B) (*Fabric, *zgrab.Grabber, []ip.Addr) {
	b.Helper()
	w, err := world.Build(context.Background(), world.Spec{Seed: 5, Scale: 0.00002})
	if err != nil {
		b.Fatal(err)
	}
	cfg := &Config{
		World:  w,
		Engine: policy.NewEngine(),
		Loss: loss.NewMatrix(rng.NewKey(1).Derive("t"), loss.Config{
			BasePacketDrop: 1e-9, VolatileMax: 1e-9,
			VolatileSpreadFrac: 1e-9, VolatileModerateFrac: 1e-9,
		}),
		NumOrigins: 1,
		Hosts:      hostsim.NewServer(rng.NewKey(2)),
	}
	fab := New(cfg, w.Origins.Get(origin.US1), 0)
	hosts := make([]ip.Addr, len(w.Hosts()))
	for i, h := range w.Hosts() {
		hosts[i] = h.Addr
	}
	g := &zgrab.Grabber{Dialer: fab, Key: rng.NewKey(3), IOTimeout: 5 * time.Second}
	return fab, g, hosts
}

// grabBenchWindow mirrors the experiment layer's grab window size so both
// grab benchmarks walk identical per-window target sequences.
const grabBenchWindow = 4096

// BenchmarkGrabReference measures ns/grab on the reference path: per-dial
// policy evaluation, a vconn pipe and a dedicated server goroutine per
// accepted connection. This is the "before" of the grab fast-path gate.
func BenchmarkGrabReference(b *testing.B) {
	fab, g, hosts := benchGrabFabric(b)
	ps := proto.All()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for base := 0; base < b.N; base += grabBenchWindow {
		n := grabBenchWindow
		if base+n > b.N {
			n = b.N - base
		}
		p := ps[(base/grabBenchWindow)%len(ps)]
		for i := 0; i < n; i++ {
			g.Grab(ctx, p, hosts[(base+i)%len(hosts)], time.Hour)
		}
	}
	b.StopTimer()
	if err := fab.Drain(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGrabFast measures ns/grab on the fast path: batched pre-dial
// verdicts per 4096-target window, pooled inline-served connections, zero
// goroutines. The bench-grab gate requires fast/reference <= 0.5 (>= 2x).
func BenchmarkGrabFast(b *testing.B) {
	fab, g, hosts := benchGrabFabric(b)
	ps := proto.All()
	ctx := context.Background()
	dsts := make([]ip.Addr, grabBenchWindow)
	ts := make([]time.Duration, grabBenchWindow)
	vs := make([]zgrab.DialVerdict, grabBenchWindow)
	b.ReportAllocs()
	b.ResetTimer()
	for base := 0; base < b.N; base += grabBenchWindow {
		n := grabBenchWindow
		if base+n > b.N {
			n = b.N - base
		}
		p := ps[(base/grabBenchWindow)%len(ps)]
		for i := 0; i < n; i++ {
			dsts[i] = hosts[(base+i)%len(hosts)]
			ts[i] = time.Hour
		}
		fab.PredialBatch(dsts[:n], ts[:n], p.Port(), vs[:n])
		for i := 0; i < n; i++ {
			g.GrabFast(ctx, p, dsts[i], ts[i], vs[i])
		}
	}
	b.StopTimer()
	if n := fab.ActiveConns(); n != 0 {
		b.Fatalf("fast path spawned %d goroutines", n)
	}
}
