package origin

import (
	"testing"

	"repro/internal/ip"
)

func TestDirectoryShape(t *testing.T) {
	d := NewDirectory(ip.MustParseAddr("10.255.0.0"))
	us64 := d.Get(US64)
	if len(us64.SourceIPs) != 64 {
		t.Errorf("US64 has %d source IPs", len(us64.SourceIPs))
	}
	for _, o := range d.All() {
		if o != us64 && len(d.Get(o.ID).SourceIPs) != 1 {
			t.Errorf("%v has %d source IPs, want 1", o.ID, len(o.SourceIPs))
		}
	}
	// Source IPs are globally distinct.
	seen := map[ip.Addr]bool{}
	for _, o := range d.All() {
		for _, src := range o.SourceIPs {
			if seen[src] {
				t.Fatalf("source IP %v assigned twice", src)
			}
			seen[src] = true
		}
	}
	if len(seen) > 128 {
		t.Errorf("%d source IPs exceed the reserved /25", len(seen))
	}
}

func TestReputations(t *testing.T) {
	d := NewDirectory(ip.Addr{})
	cases := map[ID]Reputation{
		CEN: RepHeavy, AU: RepUsed, DE: RepUsed,
		BR: RepFresh, JP: RepFresh, US1: RepSubnet, US64: RepSubnet,
		HE: RepFresh, NTTC: RepFresh, TELIA: RepFresh,
	}
	for id, want := range cases {
		if got := d.Get(id).ScanReputation; got != want {
			t.Errorf("%v reputation = %v, want %v", id, got, want)
		}
	}
}

func TestSets(t *testing.T) {
	if len(StudySet()) != 7 || StudySet().Contains(CARINET) {
		t.Error("study set wrong")
	}
	if !StudySet().Contains(CEN) {
		t.Error("study set must include Censys")
	}
	fu := FollowUpSet()
	if len(fu) != 8 || !fu.Contains(HE) || !fu.Contains(TELIA) || fu.Contains(BR) {
		t.Errorf("follow-up set = %v", fu)
	}
}

func TestStrings(t *testing.T) {
	for id, want := range map[ID]string{AU: "AU", US64: "US64", CEN: "CEN", NTTC: "NTT"} {
		if id.String() != want {
			t.Errorf("%d.String() = %q, want %q", id, id.String(), want)
		}
	}
	if ID(200).String() == "" {
		t.Error("out-of-range ID should still format")
	}
}

func TestGetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(unknown) did not panic")
		}
	}()
	NewDirectory(ip.Addr{}).Get(ID(99))
}
