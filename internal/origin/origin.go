// Package origin defines the scan vantage points of the study: the five
// academic origins, Censys, the optional Carinet cloud origin, the 64-IP
// U.S. origin, and the three co-located Tier-1 transit origins from the
// paper's follow-up experiment.
package origin

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/ip"
)

// ID identifies a scan origin.
type ID uint8

// The study's origins, in the order the paper reports them.
const (
	AU      ID = iota // University of Sydney, Australia
	BR                // Universidade Federal de Minas Gerais, Brazil
	DE                // Max Planck Institute for Informatics, Germany
	JP                // Yokohama National University, Japan
	US1               // Stanford University, 1 source IP
	US64              // Stanford University, 64 source IPs
	CEN               // Censys
	CARINET           // Carinet (cloud; one trial only, excluded from aggregates)
	HE                // Hurricane Electric @ Equinix CHI4 (follow-up)
	NTTC              // NTT @ Equinix CHI4 (follow-up)
	TELIA             // Telia Carrier @ Equinix CHI4 (follow-up)
	numIDs
)

var names = [...]string{"AU", "BR", "DE", "JP", "US1", "US64", "CEN", "CARINET", "HE", "NTT", "TELIA"}

// String returns the origin's short name as used in the paper's tables.
func (id ID) String() string {
	if int(id) < len(names) {
		return names[id]
	}
	return fmt.Sprintf("origin(%d)", uint8(id))
}

// Origin describes one vantage point.
type Origin struct {
	ID      ID
	Name    string      // institution, as in the paper
	Country geo.Country // geographic location of the vantage point

	// SourceIPs are the scanner's source addresses. All origins use one
	// except US64 (a contiguous /26). The fabric treats each source IP
	// as an independently detectable scanner identity.
	SourceIPs []ip.Addr

	// Academic marks the five university origins; aggregate statistics
	// in the paper often group these.
	Academic bool

	// ScanReputation models the prior scanning history of the origin's
	// address space, which §4 shows drives long-term blocking:
	// Censys ≫ (AU, US) > (DE) > (BR, JP, fresh follow-up IPs).
	ScanReputation Reputation
}

// Reputation buckets prior scanning history of the origin's IP range.
type Reputation uint8

const (
	// RepFresh: never used for scanning, nor its /24 (BR, JP, HE, NTT,
	// TELIA). Fresh IPs still get blocked by regional/edge policies.
	RepFresh Reputation = iota
	// RepSubnet: the IP is fresh but its /24 commonly scans (US1, US64).
	RepSubnet
	// RepUsed: the IP itself has performed individual scans (AU, DE).
	RepUsed
	// RepHeavy: continuous industrial scanning (Censys: ≥106× more scans
	// in the prior 6 months than any other origin).
	RepHeavy
)

// SourceFor picks the source address an origin uses for a destination:
// round-robin over the origin's source IPs by destination address, so a
// 64-IP origin spreads load evenly and each IP touches 1/64 of targets.
// Both the L4 scanner and the L7 dialer must route through this helper —
// IDS detection is per source IP, and a rotation-policy change that
// desynchronized probe and handshake attribution would corrupt every
// detection-dependent result.
func SourceFor(ips []ip.Addr, dst ip.Addr) ip.Addr {
	return ips[dst.Word32()%uint32(len(ips))]
}

// Set is an ordered list of distinct origins.
type Set []ID

// Contains reports whether the set includes id.
func (s Set) Contains(id ID) bool {
	for _, o := range s {
		if o == id {
			return true
		}
	}
	return false
}

// StudySet returns the seven origins used in the paper's aggregate analyses
// (Carinet excluded, as in the paper).
func StudySet() Set { return Set{AU, BR, DE, JP, US1, US64, CEN} }

// FollowUpSet returns the origins of the September 2020 follow-up
// experiment: AU, DE, JP, US1, Censys, plus the three co-located Tier-1s.
func FollowUpSet() Set { return Set{AU, DE, JP, US1, CEN, HE, NTTC, TELIA} }

// Directory holds the Origin records for a study. Source IPs are allocated
// outside the scanned address space so scanners never probe each other.
type Directory struct {
	byID map[ID]*Origin
}

// NewDirectory builds the canonical directory. srcBase is the first address
// of a reserved block (at least 128 addresses) for scanner source IPs.
func NewDirectory(srcBase ip.Addr) *Directory {
	d := &Directory{byID: make(map[ID]*Origin)}
	next := srcBase
	alloc := func(n int) []ip.Addr {
		ips := make([]ip.Addr, n)
		for i := range ips {
			ips[i] = next
			next = next.Next()
		}
		return ips
	}
	add := func(id ID, name string, c geo.Country, nIPs int, academic bool, rep Reputation) {
		d.byID[id] = &Origin{
			ID: id, Name: name, Country: c,
			SourceIPs: alloc(nIPs), Academic: academic, ScanReputation: rep,
		}
	}
	add(AU, "University of Sydney", "AU", 1, true, RepUsed)
	add(BR, "Universidade Federal de Minas Gerais", "BR", 1, true, RepFresh)
	add(DE, "Max Planck Institute for Informatics", "DE", 1, true, RepUsed)
	add(JP, "Yokohama National University", "JP", 1, true, RepFresh)
	add(US1, "Stanford University (1 IP)", "US", 1, true, RepSubnet)
	add(US64, "Stanford University (64 IPs)", "US", 64, true, RepSubnet)
	add(CEN, "Censys", "US", 1, false, RepHeavy)
	add(CARINET, "Carinet", "US", 1, false, RepFresh)
	add(HE, "Hurricane Electric @ CHI4", "US", 1, false, RepFresh)
	add(NTTC, "NTT @ CHI4", "US", 1, false, RepFresh)
	add(TELIA, "Telia Carrier @ CHI4", "US", 1, false, RepFresh)
	return d
}

// Get returns the origin record for id.
func (d *Directory) Get(id ID) *Origin {
	o, ok := d.byID[id]
	if !ok {
		panic(fmt.Sprintf("origin: unknown id %d", id))
	}
	return o
}

// All returns all origins in ID order.
func (d *Directory) All() []*Origin {
	out := make([]*Origin, 0, len(d.byID))
	for id := ID(0); id < numIDs; id++ {
		if o, ok := d.byID[id]; ok {
			out = append(out, o)
		}
	}
	return out
}
