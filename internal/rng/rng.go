// Package rng provides the deterministic randomness substrate for the whole
// study. Every random decision in the simulation — host placement, path loss,
// outage schedules, per-probe drops, IDS detection times — is derived from a
// single study seed through hierarchical key derivation, so an experiment is
// reproducible bit-for-bit and individual probes can be evaluated in any
// order (or concurrently) without shared RNG state.
//
// Two primitives are provided: SplitMix64, a tiny non-cryptographic PRNG used
// for sequential generation (world building), and SipHash-2-4, a keyed hash
// used both for ZMap validation cookies and for stateless per-event decisions
// keyed by (origin, destination, time, ...) tuples.
package rng

import "math"

// SplitMix64 is a 64-bit splittable PRNG (Steele et al.). The zero value is a
// valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next pseudo-random 32-bit value.
func (s *SplitMix64) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and stddev 1
// using the polar (Marsaglia) method.
func (s *SplitMix64) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		// sqrt(-2 ln q / q) * u
		return u * sqrt(-2*ln(q)/q)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (s *SplitMix64) ExpFloat64() float64 {
	for {
		f := s.Float64()
		if f > 0 {
			return -ln(f)
		}
	}
}

// Shuffle pseudo-randomly permutes the order of n elements using swap.
func (s *SplitMix64) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func ln(x float64) float64   { return math.Log(x) }
func sqrt(x float64) float64 { return math.Sqrt(x) }
