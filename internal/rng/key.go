package rng

// Key is a derivation point in the study's deterministic randomness tree.
// A Key is cheap to copy and safe for concurrent use; derivations never
// mutate the receiver.
//
// The study seed produces the root Key; subsystems derive labelled children
// ("world", "loss", "outage", ...), and per-event values are drawn by hashing
// event coordinates under the Key. Two different labels (or coordinate
// tuples) yield independent streams.
type Key struct {
	k SipKey
}

// NewKey returns the root Key for a study seed.
func NewKey(seed uint64) Key {
	s := NewSplitMix64(seed)
	return Key{k: SipKey{K0: s.Uint64(), K1: s.Uint64()}}
}

// Derive returns a child Key labelled by name. Deriving the same name twice
// yields the same child.
func (k Key) Derive(name string) Key {
	h := SipHash24(k.k, []byte(name))
	s := NewSplitMix64(h)
	return Key{k: SipKey{K0: s.Uint64(), K1: s.Uint64()}}
}

// DeriveN returns a child Key labelled by an integer index, for families of
// subsystems (e.g. one loss process per trial).
func (k Key) DeriveN(name string, n uint64) Key {
	h := SipHash24Words(k.Derive(name).k, n)
	s := NewSplitMix64(h)
	return Key{k: SipKey{K0: s.Uint64(), K1: s.Uint64()}}
}

// Sip exposes the underlying SipHash key, for components (like the ZMap
// validation cookie) that need the raw keyed hash.
func (k Key) Sip() SipKey { return k.k }

// Uint64 hashes the coordinate words to a uniform 64-bit value.
func (k Key) Uint64(words ...uint64) uint64 {
	return SipHash24Words(k.k, words...)
}

// Float64 hashes the coordinate words to a uniform float64 in [0, 1).
func (k Key) Float64(words ...uint64) float64 {
	return float64(k.Uint64(words...)>>11) / (1 << 53)
}

// Bool returns true with probability p for the given coordinates.
func (k Key) Bool(p float64, words ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return k.Float64(words...) < p
}

// Stream returns a sequential PRNG seeded from the coordinate words, for
// generation tasks that need many draws for one event.
func (k Key) Stream(words ...uint64) *SplitMix64 {
	return NewSplitMix64(k.Uint64(words...))
}
