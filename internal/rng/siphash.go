package rng

import (
	"encoding/binary"
	"math/bits"
)

// SipKey is a 128-bit key for SipHash-2-4.
type SipKey struct {
	K0, K1 uint64
}

// SipHash24 computes SipHash-2-4 of data under key k. It is the keyed hash
// used for ZMap validation cookies and for stateless per-event random
// decisions. The implementation follows the reference description by
// Aumasson and Bernstein.
func SipHash24(k SipKey, data []byte) uint64 {
	v0 := k.K0 ^ 0x736f6d6570736575
	v1 := k.K1 ^ 0x646f72616e646f6d
	v2 := k.K0 ^ 0x6c7967656e657261
	v3 := k.K1 ^ 0x7465646279746573

	n := len(data)
	for len(data) >= 8 {
		m := binary.LittleEndian.Uint64(data)
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
		data = data[8:]
	}

	var last uint64
	for i, b := range data {
		last |= uint64(b) << (8 * uint(i))
	}
	last |= uint64(n) << 56

	v3 ^= last
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= last

	v2 ^= 0xff
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}

func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = bits.RotateLeft64(v1, 13)
	v1 ^= v0
	v0 = bits.RotateLeft64(v0, 32)
	v2 += v3
	v3 = bits.RotateLeft64(v3, 16)
	v3 ^= v2
	v0 += v3
	v3 = bits.RotateLeft64(v3, 21)
	v3 ^= v0
	v2 += v1
	v1 = bits.RotateLeft64(v1, 17)
	v1 ^= v2
	v2 = bits.RotateLeft64(v2, 32)
	return v0, v1, v2, v3
}

// SipHash24Words hashes a fixed sequence of 64-bit words without allocating.
// Each word is processed as one SipHash message block; the length tail encodes
// the word count. This is the hot path for per-probe decisions.
func SipHash24Words(k SipKey, words ...uint64) uint64 {
	v0 := k.K0 ^ 0x736f6d6570736575
	v1 := k.K1 ^ 0x646f72616e646f6d
	v2 := k.K0 ^ 0x6c7967656e657261
	v3 := k.K1 ^ 0x7465646279746573

	for _, m := range words {
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
	}

	last := uint64(len(words)*8&0xff) << 56
	v3 ^= last
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= last

	v2 ^= 0xff
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}
