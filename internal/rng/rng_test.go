package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Published reference values for seed 0 (Vigna's splitmix64.c).
	s := NewSplitMix64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("draw %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64Determinism(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitMix64Float64Range(t *testing.T) {
	s := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestSplitMix64IntnBounds(t *testing.T) {
	s := NewSplitMix64(99)
	for i := 0; i < 10000; i++ {
		if v := s.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) out of range: %d", v)
		}
	}
}

func TestSplitMix64IntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestSplitMix64NormFloat64Moments(t *testing.T) {
	s := NewSplitMix64(2024)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestSplitMix64ExpFloat64Mean(t *testing.T) {
	s := NewSplitMix64(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSplitMix64(3)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSipHash24Vectors(t *testing.T) {
	// Official SipHash-2-4 test vectors: key = 000102...0f,
	// input = "" through 00..3e, 64-bit output (Aumasson & Bernstein
	// reference implementation vectors_sip64).
	key := SipKey{K0: 0x0706050403020100, K1: 0x0f0e0d0c0b0a0908}
	want := []uint64{
		0x726fdb47dd0e0e31, 0x74f839c593dc67fd, 0x0d6c8009d9a94f5a,
		0x85676696d7fb7e2d, 0xcf2794e0277187b7, 0x18765564cd99a68d,
		0xcbc9466e58fee3ce, 0xab0200f58b01d137, 0x93f5f5799a932462,
		0x9e0082df0ba9e4b0, 0x7a5dbbc594ddb9f3, 0xf4b32f46226bada7,
	}
	data := make([]byte, 0, len(want))
	for i, w := range want {
		if got := SipHash24(key, data); got != w {
			t.Errorf("len %d: got %#x, want %#x", i, got, w)
		}
		data = append(data, byte(i))
	}
}

func TestSipHash24WordsMatchesBytes(t *testing.T) {
	// SipHash24Words must agree with the byte implementation on
	// 8-byte-aligned input whose length fits in the tail byte.
	key := SipKey{K0: 0xdeadbeefcafebabe, K1: 0x0123456789abcdef}
	f := func(a, b, c uint64) bool {
		buf := make([]byte, 24)
		putLE(buf[0:], a)
		putLE(buf[8:], b)
		putLE(buf[16:], c)
		return SipHash24Words(key, a, b, c) == SipHash24(key, buf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func putLE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
}

func TestKeyDerivationIndependence(t *testing.T) {
	root := NewKey(1)
	a := root.Derive("loss")
	b := root.Derive("outage")
	if a == b {
		t.Fatal("different labels derived the same key")
	}
	if a != root.Derive("loss") {
		t.Fatal("same label derived different keys")
	}
	if root.DeriveN("trial", 0) == root.DeriveN("trial", 1) {
		t.Fatal("different indices derived the same key")
	}
}

func TestKeyFloat64Uniformity(t *testing.T) {
	k := NewKey(77).Derive("uniformity")
	const n = 100000
	buckets := make([]int, 10)
	for i := uint64(0); i < n; i++ {
		f := k.Float64(i)
		buckets[int(f*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d deviates from uniform", i, c)
		}
	}
}

func TestKeyBoolProbability(t *testing.T) {
	k := NewKey(3).Derive("bool")
	const n = 100000
	hits := 0
	for i := uint64(0); i < n; i++ {
		if k.Bool(0.25, i) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate %v", got)
	}
	if k.Bool(0, 1) {
		t.Error("Bool(0) returned true")
	}
	if !k.Bool(1, 1) {
		t.Error("Bool(1) returned false")
	}
}

func TestKeyStreamDeterminism(t *testing.T) {
	k := NewKey(9).Derive("stream")
	s1, s2 := k.Stream(5, 6), k.Stream(5, 6)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatal("stream with same coordinates diverged")
		}
	}
}

func BenchmarkSipHash24Words(b *testing.B) {
	k := NewKey(1).Sip()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += SipHash24Words(k, uint64(i), 42, 7)
	}
	_ = sink
}
