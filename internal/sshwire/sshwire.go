// Package sshwire implements the SSH transport-layer wire format from
// RFC 4253 as far as the study's grab needs it: the identification-string
// exchange ("SSH-2.0-..."), the binary packet protocol (pre-encryption), and
// the SSH_MSG_KEXINIT message. The paper's SSH grab completes the protocol
// version exchange and terminates, so no key exchange or crypto is
// performed, but the bytes on the wire are genuine SSH.
package sshwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/rng"
)

// RFC 4253 message numbers used here.
const (
	MsgDisconnect = 1
	MsgKexInit    = 20
)

// Limits on untrusted input.
const (
	MaxIDLen       = 255   // RFC 4253 §4.2: max identification line incl. CRLF
	MaxBannerLines = 64    // lines a server may send before its ID string
	MaxPacketLen   = 35000 // RFC 4253 §6.1 minimum required supported size
)

// Errors.
var (
	ErrIDTooLong    = errors.New("sshwire: identification string too long")
	ErrNotSSH       = errors.New("sshwire: peer did not send an SSH identification")
	ErrPacketTooBig = errors.New("sshwire: packet exceeds maximum length")
	ErrMalformed    = errors.New("sshwire: malformed packet")
)

// ID is a parsed identification string.
type ID struct {
	ProtoVersion    string // "2.0"
	SoftwareVersion string // e.g. "OpenSSH_7.4"
	Comments        string
}

// String formats the identification line (without CRLF).
func (id ID) String() string {
	s := fmt.Sprintf("SSH-%s-%s", id.ProtoVersion, id.SoftwareVersion)
	if id.Comments != "" {
		s += " " + id.Comments
	}
	return s
}

// WriteID sends an identification string terminated by CRLF.
func WriteID(w io.Writer, id ID) error {
	line := id.String() + "\r\n"
	if len(line) > MaxIDLen {
		return ErrIDTooLong
	}
	_, err := io.WriteString(w, line)
	return err
}

// ReadID reads the peer's identification string, skipping any pre-ID banner
// lines a server is allowed to send (RFC 4253 §4.2).
func ReadID(br *bufio.Reader) (ID, error) {
	for i := 0; i < MaxBannerLines; i++ {
		line, err := readLine(br)
		if err != nil {
			return ID{}, err
		}
		if strings.HasPrefix(line, "SSH-") {
			return parseID(line)
		}
	}
	return ID{}, ErrNotSSH
}

func readLine(br *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		c, err := br.ReadByte()
		if err != nil {
			return "", err
		}
		if c == '\n' {
			return strings.TrimSuffix(b.String(), "\r"), nil
		}
		if b.Len() >= MaxIDLen {
			return "", ErrIDTooLong
		}
		b.WriteByte(c)
	}
}

func parseID(line string) (ID, error) {
	// SSH-protoversion-softwareversion [SP comments]
	rest := strings.TrimPrefix(line, "SSH-")
	dash := strings.IndexByte(rest, '-')
	if dash < 0 {
		return ID{}, ErrNotSSH
	}
	id := ID{ProtoVersion: rest[:dash]}
	swAndComments := rest[dash+1:]
	if sp := strings.IndexByte(swAndComments, ' '); sp >= 0 {
		id.SoftwareVersion = swAndComments[:sp]
		id.Comments = swAndComments[sp+1:]
	} else {
		id.SoftwareVersion = swAndComments
	}
	if id.ProtoVersion == "" || id.SoftwareVersion == "" {
		return ID{}, ErrNotSSH
	}
	return id, nil
}

// WritePacket sends one unencrypted SSH binary packet (RFC 4253 §6):
// uint32 packet_length, byte padding_length, payload, random padding.
// Block size 8 applies before encryption; padding is at least 4 bytes.
func WritePacket(w io.Writer, payload []byte) error {
	const block = 8
	// packet_length covers padding_length byte + payload + padding.
	padLen := block - (5+len(payload))%block
	if padLen < 4 {
		padLen += block
	}
	total := 1 + len(payload) + padLen
	if total+4 > MaxPacketLen {
		return ErrPacketTooBig
	}
	buf := make([]byte, 4+total)
	binary.BigEndian.PutUint32(buf, uint32(total))
	buf[4] = byte(padLen)
	copy(buf[5:], payload)
	// Padding bytes: arbitrary; deterministic here.
	for i := 0; i < padLen; i++ {
		buf[5+len(payload)+i] = byte(i * 37)
	}
	_, err := w.Write(buf)
	return err
}

// ReadPacket reads one unencrypted SSH binary packet and returns its payload.
func ReadPacket(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	pktLen := binary.BigEndian.Uint32(lenBuf[:])
	if pktLen < 5 || pktLen > MaxPacketLen {
		return nil, ErrPacketTooBig
	}
	body := make([]byte, pktLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	padLen := int(body[0])
	if padLen < 4 || 1+padLen > int(pktLen) {
		return nil, ErrMalformed
	}
	return body[1 : int(pktLen)-padLen], nil
}

// KexInit is the SSH_MSG_KEXINIT message (RFC 4253 §7.1).
type KexInit struct {
	Cookie                  [16]byte
	KexAlgorithms           []string
	HostKeyAlgorithms       []string
	CiphersClientServer     []string
	CiphersServerClient     []string
	MACsClientServer        []string
	MACsServerClient        []string
	CompressionClientServer []string
	CompressionServerClient []string
	LanguagesClientServer   []string
	LanguagesServerClient   []string
	FirstKexPacketFollows   bool
}

// DefaultKexInit returns a realistic OpenSSH-flavoured KEXINIT with a cookie
// derived from key.
func DefaultKexInit(key rng.Key) *KexInit {
	k := &KexInit{
		KexAlgorithms:           []string{"curve25519-sha256", "diffie-hellman-group14-sha256"},
		HostKeyAlgorithms:       []string{"ssh-ed25519", "rsa-sha2-256"},
		CiphersClientServer:     []string{"chacha20-poly1305@openssh.com", "aes128-ctr"},
		CiphersServerClient:     []string{"chacha20-poly1305@openssh.com", "aes128-ctr"},
		MACsClientServer:        []string{"hmac-sha2-256"},
		MACsServerClient:        []string{"hmac-sha2-256"},
		CompressionClientServer: []string{"none"},
		CompressionServerClient: []string{"none"},
	}
	s := key.Stream(0x6b6578) // "kex"
	for i := 0; i < 16; i += 8 {
		binary.BigEndian.PutUint64(k.Cookie[i:], s.Uint64())
	}
	return k
}

// Marshal encodes the KEXINIT payload, including the leading message byte.
func (k *KexInit) Marshal() []byte {
	var b []byte
	b = append(b, MsgKexInit)
	b = append(b, k.Cookie[:]...)
	for _, list := range k.nameLists() {
		b = appendNameList(b, *list)
	}
	if k.FirstKexPacketFollows {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, 0, 0, 0, 0) // reserved uint32
	return b
}

// ParseKexInit decodes a KEXINIT payload (starting at the message byte).
func ParseKexInit(payload []byte) (*KexInit, error) {
	if len(payload) < 1+16 || payload[0] != MsgKexInit {
		return nil, ErrMalformed
	}
	k := &KexInit{}
	copy(k.Cookie[:], payload[1:17])
	rest := payload[17:]
	var err error
	for _, list := range k.nameLists() {
		*list, rest, err = readNameList(rest)
		if err != nil {
			return nil, err
		}
	}
	if len(rest) < 5 {
		return nil, ErrMalformed
	}
	k.FirstKexPacketFollows = rest[0] != 0
	return k, nil
}

// nameLists returns pointers to the ten name-list fields in wire order.
func (k *KexInit) nameLists() []*[]string {
	return []*[]string{
		&k.KexAlgorithms, &k.HostKeyAlgorithms,
		&k.CiphersClientServer, &k.CiphersServerClient,
		&k.MACsClientServer, &k.MACsServerClient,
		&k.CompressionClientServer, &k.CompressionServerClient,
		&k.LanguagesClientServer, &k.LanguagesServerClient,
	}
}

func appendNameList(b []byte, names []string) []byte {
	s := strings.Join(names, ",")
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(s)))
	b = append(b, l[:]...)
	return append(b, s...)
}

func readNameList(b []byte) ([]string, []byte, error) {
	if len(b) < 4 {
		return nil, nil, ErrMalformed
	}
	n := binary.BigEndian.Uint32(b)
	if uint32(len(b)-4) < n {
		return nil, nil, ErrMalformed
	}
	s := string(b[4 : 4+n])
	rest := b[4+n:]
	if s == "" {
		return nil, rest, nil
	}
	return strings.Split(s, ","), rest, nil
}
