package sshwire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	id := ID{ProtoVersion: "2.0", SoftwareVersion: "OpenSSH_7.4", Comments: "Debian-10"}
	if err := WriteID(&buf, id); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "SSH-2.0-OpenSSH_7.4 Debian-10\r\n" {
		t.Errorf("wire = %q", got)
	}
	parsed, err := ReadID(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Errorf("parsed = %+v, want %+v", parsed, id)
	}
}

func TestReadIDSkipsBanner(t *testing.T) {
	raw := "Welcome to the machine\r\nUnauthorized access prohibited\r\nSSH-2.0-srv\r\n"
	id, err := ReadID(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if id.SoftwareVersion != "srv" {
		t.Errorf("id = %+v", id)
	}
}

func TestReadIDRejectsNonSSH(t *testing.T) {
	var b strings.Builder
	for i := 0; i < MaxBannerLines+2; i++ {
		b.WriteString("spam\r\n")
	}
	if _, err := ReadID(bufio.NewReader(strings.NewReader(b.String()))); err != ErrNotSSH {
		t.Errorf("err = %v, want ErrNotSSH", err)
	}
}

func TestReadIDRejectsOverlongLine(t *testing.T) {
	raw := strings.Repeat("a", MaxIDLen+50) + "\r\n"
	if _, err := ReadID(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Error("overlong line accepted")
	}
}

func TestParseIDVariants(t *testing.T) {
	id, err := parseID("SSH-1.99-old")
	if err != nil || id.ProtoVersion != "1.99" || id.SoftwareVersion != "old" {
		t.Errorf("parse = %+v, %v", id, err)
	}
	for _, bad := range []string{"SSH-", "SSH-2.0", "SSH--x", "SSH-2.0-"} {
		if _, err := parseID(bad); err == nil {
			t.Errorf("parseID(%q) succeeded", bad)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte{MsgKexInit, 1, 2, 3, 4, 5}
	if err := WritePacket(&buf, payload); err != nil {
		t.Fatal(err)
	}
	// RFC 4253: total length multiple of 8 (pre-encryption block).
	if buf.Len()%8 != 0 {
		t.Errorf("packet length %d not a multiple of 8", buf.Len())
	}
	got, err := ReadPacket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %v, want %v", got, payload)
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 30000 {
			payload = payload[:30000]
		}
		var buf bytes.Buffer
		if err := WritePacket(&buf, payload); err != nil {
			return false
		}
		got, err := ReadPacket(&buf)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadPacketRejectsBadLengths(t *testing.T) {
	// Packet length below minimum.
	if _, err := ReadPacket(bytes.NewReader([]byte{0, 0, 0, 2, 0, 0})); err == nil {
		t.Error("undersized packet accepted")
	}
	// Oversized.
	if _, err := ReadPacket(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err != ErrPacketTooBig {
		t.Error("oversized packet accepted")
	}
	// Padding larger than packet.
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 8, 200, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadPacket(&buf); err != ErrMalformed {
		t.Errorf("bad padding err = %v", err)
	}
}

func TestKexInitRoundTrip(t *testing.T) {
	k := DefaultKexInit(rng.NewKey(5).Derive("host"))
	payload := k.Marshal()
	if payload[0] != MsgKexInit {
		t.Fatalf("message type = %d", payload[0])
	}
	parsed, err := ParseKexInit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Cookie != k.Cookie {
		t.Error("cookie mismatch")
	}
	if strings.Join(parsed.KexAlgorithms, ",") != strings.Join(k.KexAlgorithms, ",") {
		t.Errorf("kex algos = %v", parsed.KexAlgorithms)
	}
	if strings.Join(parsed.CiphersServerClient, ",") != strings.Join(k.CiphersServerClient, ",") {
		t.Errorf("ciphers = %v", parsed.CiphersServerClient)
	}
	if parsed.FirstKexPacketFollows != k.FirstKexPacketFollows {
		t.Error("first_kex_packet_follows mismatch")
	}
}

func TestKexInitOverWire(t *testing.T) {
	var buf bytes.Buffer
	k := DefaultKexInit(rng.NewKey(6).Derive("host"))
	if err := WritePacket(&buf, k.Marshal()); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadPacket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKexInit(payload); err != nil {
		t.Fatal(err)
	}
}

func TestParseKexInitRejectsGarbage(t *testing.T) {
	if _, err := ParseKexInit(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := ParseKexInit([]byte{99, 0, 0}); err == nil {
		t.Error("wrong type accepted")
	}
	// Truncated name-list.
	b := []byte{MsgKexInit}
	b = append(b, make([]byte, 16)...)
	b = append(b, 0, 0, 0, 200) // claims 200 bytes, has none
	if _, err := ParseKexInit(b); err == nil {
		t.Error("truncated name-list accepted")
	}
}

func TestDefaultKexInitDeterministic(t *testing.T) {
	a := DefaultKexInit(rng.NewKey(7))
	b := DefaultKexInit(rng.NewKey(7))
	if a.Cookie != b.Cookie {
		t.Error("same key produced different cookies")
	}
	c := DefaultKexInit(rng.NewKey(8))
	if a.Cookie == c.Cookie {
		t.Error("different keys produced same cookie")
	}
}
