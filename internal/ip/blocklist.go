package ip

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseBlocklist reads a ZMap-style block/allowlist: one CIDR (or bare
// address) per line, with `#` comments and blank lines ignored. The paper's
// study excluded 17.8M addresses collected from opt-out requests via
// exactly such a file.
func ParseBlocklist(r io.Reader) (*Set, error) {
	set := NewSet()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// ZMap also tolerates whitespace-separated trailing fields.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		p, err := ParsePrefix(line)
		if err != nil {
			return nil, fmt.Errorf("blocklist line %d: %w", lineNo, err)
		}
		set.Add(p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}
