package ip

// RadixTree is a binary radix (patricia-style) tree mapping CIDR prefixes to
// values, with longest-prefix-match lookup. It backs the scanner's
// block/allowlists, the routing-table snapshot, and the geolocation database.
//
// The implementation is a simple bit-trie: one node per prefix bit. Inserts
// of the address space in use (tens of thousands of prefixes) build trees of
// a few hundred thousand nodes, and Lookup walks at most 32 nodes, so this is
// both compact and fast without path compression.
type RadixTree[V any] struct {
	root *radixNode[V]
	size int
}

type radixNode[V any] struct {
	child [2]*radixNode[V]
	val   V
	set   bool
}

// NewRadixTree returns an empty tree.
func NewRadixTree[V any]() *RadixTree[V] {
	return &RadixTree[V]{root: &radixNode[V]{}}
}

// Len returns the number of distinct prefixes stored.
func (t *RadixTree[V]) Len() int { return t.size }

// Insert associates val with the prefix, replacing any existing value for
// exactly that prefix.
func (t *RadixTree[V]) Insert(p Prefix, val V) {
	p = p.Canonical()
	n := t.root
	for i := uint8(0); i < p.Bits; i++ {
		b := (p.Base >> (31 - i)) & 1
		if n.child[b] == nil {
			n.child[b] = &radixNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val = val
	n.set = true
}

// Lookup returns the value of the longest prefix containing a.
func (t *RadixTree[V]) Lookup(a Addr) (val V, ok bool) {
	n := t.root
	if n.set {
		val, ok = n.val, true
	}
	for i := uint8(0); i < 32; i++ {
		b := (a >> (31 - i)) & 1
		n = n.child[b]
		if n == nil {
			return val, ok
		}
		if n.set {
			val, ok = n.val, true
		}
	}
	return val, ok
}

// LookupPrefix returns the value and the matched prefix of the longest
// prefix containing a.
func (t *RadixTree[V]) LookupPrefix(a Addr) (p Prefix, val V, ok bool) {
	n := t.root
	if n.set {
		p, val, ok = Prefix{}, n.val, true
	}
	for i := uint8(0); i < 32; i++ {
		b := (a >> (31 - i)) & 1
		n = n.child[b]
		if n == nil {
			return p, val, ok
		}
		if n.set {
			p = MakePrefix(a, i+1)
			val, ok = n.val, true
		}
	}
	return p, val, ok
}

// Get returns the value stored for exactly the given prefix.
func (t *RadixTree[V]) Get(p Prefix) (val V, ok bool) {
	p = p.Canonical()
	n := t.root
	for i := uint8(0); i < p.Bits; i++ {
		b := (p.Base >> (31 - i)) & 1
		n = n.child[b]
		if n == nil {
			var zero V
			return zero, false
		}
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the value stored for exactly the given prefix and reports
// whether it was present. Interior nodes are left in place (deletion is rare
// in this codebase; trees are built once).
func (t *RadixTree[V]) Delete(p Prefix) bool {
	p = p.Canonical()
	n := t.root
	for i := uint8(0); i < p.Bits; i++ {
		b := (p.Base >> (31 - i)) & 1
		n = n.child[b]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Walk visits every stored prefix in address order, shortest prefix first at
// equal bases. It stops early if fn returns false.
func (t *RadixTree[V]) Walk(fn func(p Prefix, val V) bool) {
	var rec func(n *radixNode[V], base Addr, depth uint8) bool
	rec = func(n *radixNode[V], base Addr, depth uint8) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(Prefix{Base: base, Bits: depth}, n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !rec(n.child[0], base, depth+1) {
			return false
		}
		return rec(n.child[1], base|1<<(31-depth), depth+1)
	}
	rec(t.root, 0, 0)
}

// Set is a prefix set with membership-by-containment semantics, used for
// scanner blocklists and allowlists.
type Set struct {
	t *RadixTree[struct{}]
}

// NewSet returns an empty prefix set.
func NewSet() *Set {
	return &Set{t: NewRadixTree[struct{}]()}
}

// Add inserts a prefix into the set.
func (s *Set) Add(p Prefix) { s.t.Insert(p, struct{}{}) }

// AddString parses and inserts a CIDR string, returning any parse error.
func (s *Set) AddString(cidr string) error {
	p, err := ParsePrefix(cidr)
	if err != nil {
		return err
	}
	s.Add(p)
	return nil
}

// Contains reports whether a falls inside any prefix in the set.
func (s *Set) Contains(a Addr) bool {
	_, ok := s.t.Lookup(a)
	return ok
}

// Len returns the number of prefixes in the set.
func (s *Set) Len() int { return s.t.Len() }

// NumAddrs returns the total number of addresses covered, counting
// overlapping prefixes once. It walks covering prefixes in order and skips
// nested ones.
func (s *Set) NumAddrs() uint64 {
	var total uint64
	var haveLast bool
	var last Prefix
	s.t.Walk(func(p Prefix, _ struct{}) bool {
		if haveLast && last.Overlaps(p) {
			// p is nested inside last (walk order guarantees the
			// shorter, earlier prefix comes first).
			return true
		}
		total += p.NumAddrs()
		last, haveLast = p, true
		return true
	})
	return total
}

// Walk visits each prefix in the set in address order.
func (s *Set) Walk(fn func(p Prefix) bool) {
	s.t.Walk(func(p Prefix, _ struct{}) bool { return fn(p) })
}
