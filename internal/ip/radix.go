package ip

// RadixTree is a binary radix (patricia-style) tree mapping CIDR prefixes to
// values, with longest-prefix-match lookup. It backs the scanner's
// block/allowlists, the routing-table snapshot, and the geolocation database.
//
// The implementation is a simple bit-trie: one node per prefix bit, with one
// root per address family. IPv4 prefixes walk at most 32 nodes (exactly the
// v4-only tree of old), IPv6 prefixes at most 128; the two families never
// share nodes, so dual-stack sets cost v4 lookups nothing. Inserts of the
// address space in use (tens of thousands of prefixes) build trees of a few
// hundred thousand nodes, so this is both compact and fast without path
// compression.
type RadixTree[V any] struct {
	root4 *radixNode[V]
	root6 *radixNode[V]
	size  int
}

type radixNode[V any] struct {
	child [2]*radixNode[V]
	val   V
	set   bool
}

// NewRadixTree returns an empty tree.
func NewRadixTree[V any]() *RadixTree[V] {
	return &RadixTree[V]{root4: &radixNode[V]{}, root6: &radixNode[V]{}}
}

// Len returns the number of distinct prefixes stored.
func (t *RadixTree[V]) Len() int { return t.size }

// bit6 returns bit i (0 = most significant) of the 128-bit form of a.
func bit6(a Addr, i uint8) uint64 {
	if i < 64 {
		return (a.hi >> (63 - i)) & 1
	}
	return (a.lo >> (127 - i)) & 1
}

// walkTo descends from the family root along p's bits, creating nodes when
// create is set; it returns nil when a node is missing and create is unset.
func (t *RadixTree[V]) walkTo(p Prefix, create bool) *radixNode[V] {
	if p.Base.Is4() {
		n := t.root4
		v4 := uint32(p.Base.lo)
		for i := uint8(0); i < p.Bits; i++ {
			b := (v4 >> (31 - i)) & 1
			if n.child[b] == nil {
				if !create {
					return nil
				}
				n.child[b] = &radixNode[V]{}
			}
			n = n.child[b]
		}
		return n
	}
	n := t.root6
	for i := uint8(0); i < p.Bits; i++ {
		b := bit6(p.Base, i)
		if n.child[b] == nil {
			if !create {
				return nil
			}
			n.child[b] = &radixNode[V]{}
		}
		n = n.child[b]
	}
	return n
}

// Insert associates val with the prefix, replacing any existing value for
// exactly that prefix.
func (t *RadixTree[V]) Insert(p Prefix, val V) {
	n := t.walkTo(p.Canonical(), true)
	if !n.set {
		t.size++
	}
	n.val = val
	n.set = true
}

// Lookup returns the value of the longest prefix containing a.
func (t *RadixTree[V]) Lookup(a Addr) (val V, ok bool) {
	if a.Is4() {
		n := t.root4
		if n.set {
			val, ok = n.val, true
		}
		v4 := uint32(a.lo)
		for i := uint8(0); i < 32; i++ {
			b := (v4 >> (31 - i)) & 1
			n = n.child[b]
			if n == nil {
				return val, ok
			}
			if n.set {
				val, ok = n.val, true
			}
		}
		return val, ok
	}
	n := t.root6
	if n.set {
		val, ok = n.val, true
	}
	for i := uint8(0); i < 128; i++ {
		b := bit6(a, i)
		n = n.child[b]
		if n == nil {
			return val, ok
		}
		if n.set {
			val, ok = n.val, true
		}
	}
	return val, ok
}

// LookupPrefix returns the value and the matched prefix of the longest
// prefix containing a.
func (t *RadixTree[V]) LookupPrefix(a Addr) (p Prefix, val V, ok bool) {
	is4 := a.Is4()
	n := t.root6
	width := uint8(128)
	if is4 {
		n = t.root4
		width = 32
	}
	if n.set {
		p, val, ok = MakePrefix(a, 0), n.val, true
	}
	for i := uint8(0); i < width; i++ {
		var b uint64
		if is4 {
			b = uint64((uint32(a.lo) >> (31 - i)) & 1)
		} else {
			b = bit6(a, i)
		}
		n = n.child[b]
		if n == nil {
			return p, val, ok
		}
		if n.set {
			p = MakePrefix(a, i+1)
			val, ok = n.val, true
		}
	}
	return p, val, ok
}

// Get returns the value stored for exactly the given prefix.
func (t *RadixTree[V]) Get(p Prefix) (val V, ok bool) {
	n := t.walkTo(p.Canonical(), false)
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the value stored for exactly the given prefix and reports
// whether it was present. Interior nodes are left in place (deletion is rare
// in this codebase; trees are built once).
func (t *RadixTree[V]) Delete(p Prefix) bool {
	n := t.walkTo(p.Canonical(), false)
	if n == nil || !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Walk visits every stored prefix in address order (all IPv4 before all
// IPv6, matching Addr ordering), shortest prefix first at equal bases. It
// stops early if fn returns false.
func (t *RadixTree[V]) Walk(fn func(p Prefix, val V) bool) {
	var rec4 func(n *radixNode[V], base uint32, depth uint8) bool
	rec4 = func(n *radixNode[V], base uint32, depth uint8) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(Prefix{Base: AddrFrom4(base), Bits: depth}, n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !rec4(n.child[0], base, depth+1) {
			return false
		}
		return rec4(n.child[1], base|1<<(31-depth), depth+1)
	}
	if !rec4(t.root4, 0, 0) {
		return
	}
	var rec6 func(n *radixNode[V], base Addr, depth uint8) bool
	rec6 = func(n *radixNode[V], base Addr, depth uint8) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(Prefix{Base: base, Bits: depth}, n.val) {
				return false
			}
		}
		if depth == 128 {
			return true
		}
		if !rec6(n.child[0], base, depth+1) {
			return false
		}
		one := base
		if depth < 64 {
			one.hi |= 1 << (63 - depth)
		} else {
			one.lo |= 1 << (127 - depth)
		}
		return rec6(n.child[1], one, depth+1)
	}
	rec6(t.root6, Addr{}, 0)
}

// Set is a prefix set with membership-by-containment semantics, used for
// scanner blocklists and allowlists.
type Set struct {
	t *RadixTree[struct{}]
}

// NewSet returns an empty prefix set.
func NewSet() *Set {
	return &Set{t: NewRadixTree[struct{}]()}
}

// Add inserts a prefix into the set.
func (s *Set) Add(p Prefix) { s.t.Insert(p, struct{}{}) }

// AddString parses and inserts a CIDR string, returning any parse error.
func (s *Set) AddString(cidr string) error {
	p, err := ParsePrefix(cidr)
	if err != nil {
		return err
	}
	s.Add(p)
	return nil
}

// Contains reports whether a falls inside any prefix in the set.
func (s *Set) Contains(a Addr) bool {
	_, ok := s.t.Lookup(a)
	return ok
}

// Len returns the number of prefixes in the set.
func (s *Set) Len() int { return s.t.Len() }

// NumAddrs returns the total number of addresses covered, counting
// overlapping prefixes once. It walks covering prefixes in order and skips
// nested ones. The count saturates at MaxUint64 (any IPv6 prefix wider
// than /64 alone covers more addresses than a uint64 holds).
func (s *Set) NumAddrs() uint64 {
	var total uint64
	var haveLast bool
	var last Prefix
	s.t.Walk(func(p Prefix, _ struct{}) bool {
		if haveLast && last.Overlaps(p) {
			// p is nested inside last (walk order guarantees the
			// shorter, earlier prefix comes first).
			return true
		}
		n := p.NumAddrs()
		if total+n < total {
			total = ^uint64(0)
		} else {
			total += n
		}
		last, haveLast = p, true
		return true
	})
	return total
}

// Walk visits each prefix in the set in address order.
func (s *Set) Walk(fn func(p Prefix) bool) {
	s.t.Walk(func(p Prefix, _ struct{}) bool { return fn(p) })
}
