// Package ip provides compact IPv4 address and prefix types plus a binary
// radix (patricia) tree for CIDR allow/deny lookups, the representation used
// throughout the scanner and the synthetic Internet.
//
// Addresses are plain uint32 wrappers: the whole study manipulates hundreds
// of millions of them, so they must be word-sized map keys with no heap
// footprint (net.IP / netip.Addr are deliberately not used on hot paths).
package ip

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order (a.b.c.d == a<<24 | ... | d).
type Addr uint32

// MakeAddr assembles an Addr from its four octets.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation.
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ip: invalid address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ip: invalid address %q", s)
		}
		parts[i] = v
	}
	return Addr(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseAddr is ParseAddr that panics on error, for constants in tests
// and world profiles.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns dotted-quad notation.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xff), 10)
	return string(buf)
}

// Octets returns the four octets of the address.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// Slash24 returns the /24 network containing a, the unit of network-level
// analysis in the paper.
func (a Addr) Slash24() Prefix {
	return Prefix{Base: a &^ 0xff, Bits: 24}
}

// Prefix is a CIDR prefix. Base must have its host bits zero; use Canonical
// to normalize.
type Prefix struct {
	Base Addr
	Bits uint8
}

// MakePrefix returns the canonical prefix of the given base and length.
func MakePrefix(base Addr, bits uint8) Prefix {
	return Prefix{Base: base & Mask(bits), Bits: bits}
}

// ParsePrefix parses "a.b.c.d/len" notation. A bare address parses as a /32.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		a, err := ParseAddr(s)
		if err != nil {
			return Prefix{}, err
		}
		return Prefix{Base: a, Bits: 32}, nil
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || bits > 32 {
		return Prefix{}, fmt.Errorf("ip: invalid prefix %q", s)
	}
	return MakePrefix(a, uint8(bits)), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask for a prefix length.
func Mask(bits uint8) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// String returns CIDR notation.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(int(p.Bits))
}

// Contains reports whether a is within the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&Mask(p.Bits) == p.Base
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits > q.Bits {
		p, q = q, p
	}
	return q.Base&Mask(p.Bits) == p.Base
}

// Canonical returns p with host bits cleared.
func (p Prefix) Canonical() Prefix {
	return Prefix{Base: p.Base & Mask(p.Bits), Bits: p.Bits}
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 {
	return uint64(1) << (32 - p.Bits)
}

// First returns the first (network) address of the prefix.
func (p Prefix) First() Addr { return p.Base }

// Last returns the last (broadcast) address of the prefix.
func (p Prefix) Last() Addr {
	return p.Base | ^Mask(p.Bits)
}

// Nth returns the i-th address within the prefix. It panics if i is out of
// range.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic("ip: Nth out of range")
	}
	return p.Base + Addr(i)
}
