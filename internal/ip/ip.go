// Package ip provides compact dual-stack address and prefix types plus a
// binary radix (patricia) tree for CIDR allow/deny lookups, the
// representation used throughout the scanner and the synthetic Internet.
//
// Addr is a two-word (128-bit) comparable value. IPv4 addresses are stored
// in the IPv4-mapped region (::ffff:a.b.c.d), so a one-comparison Is4 test
// gates a zero-cost v4 fast path: V4() is a single truncation, v4 addresses
// sort contiguously in numeric order (and before every global-unicast v6
// address), and v4-only hot paths never pay for the wider form beyond the
// extra word of storage. The whole study manipulates hundreds of millions
// of addresses, so Addr must stay a small comparable struct usable as a map
// key with no heap footprint (net.IP / netip.Addr are deliberately not used
// on hot paths; netip is borrowed only for cold-path v6 parse/format).
package ip

import (
	"fmt"
	"math"
	"math/bits"
	"net/netip"
	"strconv"
	"strings"
)

// v4InLo marks the IPv4-mapped range: lo>>32 == 0xffff (with hi == 0).
const v4InLo = uint64(0xffff) << 32

// Addr is a dual-stack IP address: 128 bits as two big-endian words. IPv4
// addresses are IPv4-mapped (hi == 0, lo == ::ffff:a.b.c.d); everything
// else is treated as IPv6. The zero Addr is "::" and is neither a valid
// IPv4 nor a routable IPv6 address (see IsZero).
type Addr struct {
	hi, lo uint64
}

// AddrFrom4 returns the Addr for an IPv4 address given in host byte order
// (a.b.c.d == a<<24 | ... | d). It is the inverse of V4.
func AddrFrom4(v uint32) Addr {
	return Addr{lo: v4InLo | uint64(v)}
}

// AddrFrom128 assembles an IPv6 address from its two big-endian 64-bit
// words.
func AddrFrom128(hi, lo uint64) Addr {
	return Addr{hi: hi, lo: lo}
}

// MakeAddr assembles an IPv4 Addr from its four octets.
func MakeAddr(a, b, c, d byte) Addr {
	return AddrFrom4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// Is4 reports whether the address is IPv4 (stored IPv4-mapped). This is the
// two-word comparison that gates every v4 fast path.
func (a Addr) Is4() bool {
	return a.hi == 0 && a.lo>>32 == 0xffff
}

// Is6 reports whether the address is IPv6 (anything outside the
// IPv4-mapped range, including the zero Addr "::").
func (a Addr) Is6() bool { return !a.Is4() }

// IsZero reports whether a is the zero Addr ("::"), the not-an-address
// sentinel.
func (a Addr) IsZero() bool { return a.hi == 0 && a.lo == 0 }

// V4 returns the IPv4 address as a host-byte-order uint32. It panics on a
// non-IPv4 address: every caller is a v4-only code path, and silent
// truncation of a v6 address would corrupt scan targets undetectably.
func (a Addr) V4() uint32 {
	if !a.Is4() {
		panic("ip: V4 of non-IPv4 address")
	}
	return uint32(a.lo)
}

// Hi returns the upper 64 bits of the 128-bit form.
func (a Addr) Hi() uint64 { return a.hi }

// Lo returns the lower 64 bits of the 128-bit form.
func (a Addr) Lo() uint64 { return a.lo }

// Word64 projects the address to a uint64 for keyed-hash derivations. For
// IPv4 it is exactly uint64(V4()) — the value the v4-era code fed to every
// seeded hash, preserving all derived streams bit for bit. For IPv6 it is a
// fixed mix of both words, deterministic across runs and platforms.
func (a Addr) Word64() uint64 {
	if a.Is4() {
		return uint64(uint32(a.lo))
	}
	// SplitMix64-style finalizer over both words: cheap, stable, and well
	// distributed for /64-dense hitlists (which vary mostly in lo).
	x := a.hi ^ bits.RotateLeft64(a.lo, 31)
	x ^= a.lo
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x
}

// Word32 is the 32-bit truncation of Word64, for modulo-style selection.
func (a Addr) Word32() uint32 { return uint32(a.Word64()) }

// Compare returns -1, 0, or 1 ordering addresses by their 128-bit value.
// IPv4 addresses keep their numeric order and sort before global-unicast
// IPv6 (2000::/3) addresses.
func (a Addr) Compare(b Addr) int {
	switch {
	case a.hi < b.hi:
		return -1
	case a.hi > b.hi:
		return 1
	case a.lo < b.lo:
		return -1
	case a.lo > b.lo:
		return 1
	}
	return 0
}

// Less reports whether a sorts before b.
func (a Addr) Less(b Addr) bool {
	if a.hi != b.hi {
		return a.hi < b.hi
	}
	return a.lo < b.lo
}

// Next returns the address one above a (with 128-bit carry).
func (a Addr) Next() Addr { return a.Add(1) }

// Add returns the address n above a (with 128-bit carry).
func (a Addr) Add(n uint64) Addr {
	lo, carry := bits.Add64(a.lo, n, 0)
	return Addr{hi: a.hi + carry, lo: lo}
}

// Sub returns the address n below a (with 128-bit borrow).
func (a Addr) Sub(n uint64) Addr {
	lo, borrow := bits.Sub64(a.lo, n, 0)
	return Addr{hi: a.hi - borrow, lo: lo}
}

// ParseAddr parses dotted-quad IPv4 or RFC 4291 IPv6 notation.
func ParseAddr(s string) (Addr, error) {
	if strings.IndexByte(s, ':') >= 0 {
		na, err := netip.ParseAddr(s)
		if err != nil || !na.Is6() || na.Zone() != "" {
			return Addr{}, fmt.Errorf("ip: invalid address %q", s)
		}
		b := na.As16()
		a := Addr{
			hi: beUint64(b[0:8]),
			lo: beUint64(b[8:16]),
		}
		return a, nil
	}
	var parts [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return Addr{}, fmt.Errorf("ip: invalid address %q", s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		v, err := strconv.ParseUint(tok, 10, 8)
		if err != nil {
			return Addr{}, fmt.Errorf("ip: invalid address %q", s)
		}
		parts[i] = v
	}
	return AddrFrom4(uint32(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3])), nil
}

// MustParseAddr is ParseAddr that panics on error, for constants in tests
// and world profiles.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns dotted-quad notation for IPv4 and RFC 5952 canonical form
// for IPv6.
func (a Addr) String() string {
	if a.Is4() {
		v := uint32(a.lo)
		var b [15]byte
		buf := strconv.AppendUint(b[:0], uint64(v>>24), 10)
		buf = append(buf, '.')
		buf = strconv.AppendUint(buf, uint64(v>>16&0xff), 10)
		buf = append(buf, '.')
		buf = strconv.AppendUint(buf, uint64(v>>8&0xff), 10)
		buf = append(buf, '.')
		buf = strconv.AppendUint(buf, uint64(v&0xff), 10)
		return string(buf)
	}
	var b [16]byte
	bePutUint64(b[0:8], a.hi)
	bePutUint64(b[8:16], a.lo)
	return netip.AddrFrom16(b).String()
}

// Octets returns the four octets of an IPv4 address (panics on IPv6).
func (a Addr) Octets() (byte, byte, byte, byte) {
	v := a.V4()
	return byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)
}

// Slash24 returns the network-analysis block containing a: the /24 for
// IPv4 (the unit of network-level analysis in the paper) and the analogous
// /64 subnet for IPv6 (the unit hitlist studies aggregate by).
func (a Addr) Slash24() Prefix {
	if a.Is4() {
		return Prefix{Base: Addr{lo: a.lo &^ 0xff}, Bits: 24}
	}
	return Prefix{Base: Addr{hi: a.hi}, Bits: 64}
}

// Slash64 returns the /64 subnet containing an IPv6 address (panics on
// IPv4, which has no /64 analog).
func (a Addr) Slash64() Prefix {
	if a.Is4() {
		panic("ip: Slash64 of IPv4 address")
	}
	return Prefix{Base: Addr{hi: a.hi}, Bits: 64}
}

// Prefix is a CIDR prefix. Bits is family-relative: 0–32 for an IPv4 base
// (counting from the first of the 32 IPv4 bits, as in "1.2.3.0/24") and
// 0–128 for an IPv6 base. Base must have its host bits zero; use Canonical
// to normalize.
type Prefix struct {
	Base Addr
	Bits uint8
}

// width returns the family-relative address width of the prefix.
func (p Prefix) width() uint8 {
	if p.Base.Is4() {
		return 32
	}
	return 128
}

// mask128 returns the 128-bit network mask words for a family-relative
// prefix length. For IPv4 the mapped bits (::ffff:0:0/96) are part of the
// network, so the mask covers 96+bits leading bits.
func mask128(is4 bool, bitsN uint8) (mhi, mlo uint64) {
	n := uint(bitsN)
	if is4 {
		n += 96
	}
	switch {
	case n == 0:
		return 0, 0
	case n <= 64:
		return ^uint64(0) << (64 - n), 0
	case n >= 128:
		return ^uint64(0), ^uint64(0)
	default:
		return ^uint64(0), ^uint64(0) << (128 - n)
	}
}

// MakePrefix returns the canonical prefix of the given base and length.
// It panics if bits exceeds the base's family width.
func MakePrefix(base Addr, bitsN uint8) Prefix {
	return Prefix{Base: base, Bits: bitsN}.Canonical()
}

// ParsePrefix parses "a.b.c.d/len" or "hhhh::/len" notation. A bare
// address parses as a full-width host prefix (/32 or /128).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		a, err := ParseAddr(s)
		if err != nil {
			return Prefix{}, err
		}
		if a.Is4() {
			return Prefix{Base: a, Bits: 32}, nil
		}
		return Prefix{Base: a, Bits: 128}, nil
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	width := uint64(32)
	if !a.Is4() {
		width = 128
	}
	bitsN, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || bitsN > width {
		return Prefix{}, fmt.Errorf("ip: invalid prefix %q", s)
	}
	return MakePrefix(a, uint8(bitsN)), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns CIDR notation.
func (p Prefix) String() string {
	return p.Base.String() + "/" + strconv.Itoa(int(p.Bits))
}

// Contains reports whether a is within the prefix. Families never mix: an
// IPv4 prefix contains only IPv4 addresses, an IPv6 prefix only IPv6.
func (p Prefix) Contains(a Addr) bool {
	is4 := p.Base.Is4()
	if a.Is4() != is4 {
		return false
	}
	mhi, mlo := mask128(is4, p.Bits)
	return a.hi&mhi == p.Base.hi && a.lo&mlo == p.Base.lo
}

// Overlaps reports whether the two prefixes share any address. Prefixes of
// different families never overlap.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Base.Is4() != q.Base.Is4() {
		return false
	}
	if p.Bits > q.Bits {
		p, q = q, p
	}
	mhi, mlo := mask128(p.Base.Is4(), p.Bits)
	return q.Base.hi&mhi == p.Base.hi && q.Base.lo&mlo == p.Base.lo
}

// Canonical returns p with host bits cleared. It panics if Bits exceeds
// the base's family width.
func (p Prefix) Canonical() Prefix {
	if p.Bits > p.width() {
		panic("ip: prefix length exceeds family width")
	}
	// For IPv4 the mask always spans the mapped marker (96+Bits leading
	// bits), so masking never changes the base's family.
	mhi, mlo := mask128(p.Base.Is4(), p.Bits)
	return Prefix{Base: Addr{hi: p.Base.hi & mhi, lo: p.Base.lo & mlo}, Bits: p.Bits}
}

// NumAddrs returns the number of addresses covered by the prefix,
// saturating at MaxUint64 for IPv6 prefixes wider than /64.
func (p Prefix) NumAddrs() uint64 {
	host := uint(p.width() - p.Bits)
	if host >= 64 {
		return math.MaxUint64
	}
	return uint64(1) << host
}

// First returns the first (network) address of the prefix.
func (p Prefix) First() Addr { return p.Base }

// Last returns the last (broadcast) address of the prefix.
func (p Prefix) Last() Addr {
	mhi, mlo := mask128(p.Base.Is4(), p.Bits)
	return Addr{hi: p.Base.hi | ^mhi, lo: p.Base.lo | ^mlo}
}

// Nth returns the i-th address within the prefix. It panics if i is out of
// range (an IPv6 prefix wider than /64 accepts any uint64 i).
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic("ip: Nth out of range")
	}
	return p.Base.Add(i)
}

// beUint64 / bePutUint64 are local big-endian codecs so the cold parse and
// format paths avoid an encoding/binary import in this leaf package.
func beUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func bePutUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}
