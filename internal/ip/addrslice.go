package ip

// AddrSlice is a sorted, duplicate-free slice of addresses: the column
// format of the results store and the shared currency of the analyses'
// merge-join set algebra. All operations assume (and preserve) strictly
// ascending order; Union/Intersect/Diff run as linear merges, never
// rebuilding hash sets.
//
// The sortedness precondition is not checked on the merge paths: passing
// an unsorted or duplicated slice to Search, Union, Intersect, or Diff
// yields silently wrong (not panicking) results, because the merge
// cursors only ever advance. Slices produced by ScanResult's sealed
// columns or by these helpers themselves always satisfy the invariant;
// hand-built slices can be validated with IsSorted.
type AddrSlice []Addr

// Search returns the smallest index i with s[i] >= a (len(s) when none).
func (s AddrSlice) Search(a Addr) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].Less(a) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether a is in the slice.
func (s AddrSlice) Contains(a Addr) bool {
	i := s.Search(a)
	return i < len(s) && s[i] == a
}

// IsSorted reports whether the slice is strictly ascending (sorted with no
// duplicates) — the sealed-column invariant.
func (s AddrSlice) IsSorted() bool {
	for i := 1; i < len(s); i++ {
		if !s[i-1].Less(s[i]) {
			return false
		}
	}
	return true
}

// Union returns the sorted union of the given sorted slices as a k-way
// merge. The inputs are not modified; the result is freshly allocated.
// Every input must be strictly ascending (see the AddrSlice invariant).
func Union(lists ...AddrSlice) AddrSlice {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append(AddrSlice(nil), lists[0]...)
	}
	size := 0
	for _, l := range lists {
		if len(l) > size {
			size = len(l)
		}
	}
	out := make(AddrSlice, 0, size)
	pos := make([]int, len(lists))
	for {
		var min Addr
		found := false
		for i, l := range lists {
			if pos[i] < len(l) && (!found || l[pos[i]].Less(min)) {
				min, found = l[pos[i]], true
			}
		}
		if !found {
			return out
		}
		out = append(out, min)
		for i, l := range lists {
			for pos[i] < len(l) && l[pos[i]] == min {
				pos[i]++
			}
		}
	}
}

// Intersect returns the sorted intersection of two sorted slices. Both
// receiver and argument must be strictly ascending.
func (s AddrSlice) Intersect(o AddrSlice) AddrSlice {
	var out AddrSlice
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch s[i].Compare(o[j]) {
		case -1:
			i++
		case 1:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// IntersectAll returns the sorted intersection of all the given sorted
// slices (nil when called with no lists).
func IntersectAll(lists ...AddrSlice) AddrSlice {
	if len(lists) == 0 {
		return nil
	}
	out := append(AddrSlice(nil), lists[0]...)
	for _, l := range lists[1:] {
		if len(out) == 0 {
			return out
		}
		out = out.intersectInto(l)
	}
	return out
}

// intersectInto filters s in place to the elements also present in o.
func (s AddrSlice) intersectInto(o AddrSlice) AddrSlice {
	n, j := 0, 0
	for i := 0; i < len(s); i++ {
		for j < len(o) && o[j].Less(s[i]) {
			j++
		}
		if j < len(o) && o[j] == s[i] {
			s[n] = s[i]
			n++
		}
	}
	return s[:n]
}

// Diff returns the sorted elements of s not present in o. Both slices
// must be strictly ascending.
func (s AddrSlice) Diff(o AddrSlice) AddrSlice {
	var out AddrSlice
	j := 0
	for _, a := range s {
		for j < len(o) && o[j].Less(a) {
			j++
		}
		if j >= len(o) || o[j] != a {
			out = append(out, a)
		}
	}
	return out
}
