package ip

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRadixInsertLookup(t *testing.T) {
	tr := NewRadixTree[string]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "ten-one")
	tr.Insert(MustParsePrefix("192.0.2.0/24"), "doc")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.2.3.4", "ten", true},
		{"10.1.3.4", "ten-one", true}, // longest match wins
		{"192.0.2.9", "doc", true},
		{"11.0.0.1", "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestRadixDefaultRoute(t *testing.T) {
	tr := NewRadixTree[int]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 1)
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 2)
	if v, ok := tr.Lookup(MustParseAddr("1.1.1.1")); !ok || v != 1 {
		t.Errorf("default route lookup = %d,%v", v, ok)
	}
	if v, ok := tr.Lookup(MustParseAddr("10.0.0.1")); !ok || v != 2 {
		t.Errorf("more-specific lookup = %d,%v", v, ok)
	}
}

func TestRadixLookupPrefix(t *testing.T) {
	tr := NewRadixTree[string]()
	tr.Insert(MustParsePrefix("172.16.0.0/12"), "a")
	tr.Insert(MustParsePrefix("172.16.5.0/24"), "b")
	p, v, ok := tr.LookupPrefix(MustParseAddr("172.16.5.200"))
	if !ok || v != "b" || p != MustParsePrefix("172.16.5.0/24") {
		t.Errorf("LookupPrefix = %v,%q,%v", p, v, ok)
	}
	p, v, ok = tr.LookupPrefix(MustParseAddr("172.17.0.1"))
	if !ok || v != "a" || p != MustParsePrefix("172.16.0.0/12") {
		t.Errorf("LookupPrefix = %v,%q,%v", p, v, ok)
	}
}

func TestRadixGetExact(t *testing.T) {
	tr := NewRadixTree[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 7)
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/9")); ok {
		t.Error("Get matched a prefix that was never inserted")
	}
	if v, ok := tr.Get(MustParsePrefix("10.0.0.0/8")); !ok || v != 7 {
		t.Errorf("Get = %d,%v", v, ok)
	}
}

func TestRadixReplaceAndDelete(t *testing.T) {
	tr := NewRadixTree[int]()
	p := MustParsePrefix("198.18.0.0/15")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d", tr.Len())
	}
	if v, _ := tr.Get(p); v != 2 {
		t.Errorf("value after replace = %d", v)
	}
	if !tr.Delete(p) {
		t.Error("Delete returned false for present prefix")
	}
	if tr.Delete(p) {
		t.Error("Delete returned true for absent prefix")
	}
	if _, ok := tr.Lookup(p.First()); ok {
		t.Error("Lookup found deleted prefix")
	}
}

func TestRadixWalkOrder(t *testing.T) {
	tr := NewRadixTree[int]()
	ins := []string{"10.0.0.0/8", "10.0.0.0/16", "9.0.0.0/8", "10.128.0.0/9", "0.0.0.0/0"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16", "10.128.0.0/9"}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order %v, want %v", got, want)
		}
	}
}

func TestRadixWalkEarlyStop(t *testing.T) {
	tr := NewRadixTree[int]()
	for i := 0; i < 10; i++ {
		tr.Insert(MakePrefix(MakeAddr(byte(i), 0, 0, 0), 8), i)
	}
	n := 0
	tr.Walk(func(Prefix, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Walk visited %d nodes after early stop", n)
	}
}

// TestRadixAgainstLinearScan cross-checks longest-prefix match against a
// brute-force scan over random prefixes and addresses.
func TestRadixAgainstLinearScan(t *testing.T) {
	s := rng.NewSplitMix64(42)
	tr := NewRadixTree[int]()
	var prefixes []Prefix
	for i := 0; i < 500; i++ {
		p := MakePrefix(AddrFrom4(s.Uint32()), uint8(s.Intn(33)))
		tr.Insert(p, i)
		prefixes = append(prefixes, p)
	}
	// Re-inserting a duplicate prefix replaces; track final values.
	final := map[Prefix]int{}
	for i, p := range prefixes {
		final[p] = i
	}
	for trial := 0; trial < 2000; trial++ {
		a := AddrFrom4(s.Uint32())
		bestBits := -1
		bestVal := 0
		for p, v := range final {
			if p.Contains(a) && int(p.Bits) > bestBits {
				bestBits, bestVal = int(p.Bits), v
			}
		}
		got, ok := tr.Lookup(a)
		if bestBits < 0 {
			if ok {
				t.Fatalf("Lookup(%v) = %d, want miss", a, got)
			}
			continue
		}
		if !ok || got != bestVal {
			t.Fatalf("Lookup(%v) = %d,%v, want %d", a, got, ok, bestVal)
		}
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet()
	if err := s.AddString("10.0.0.0/8"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddString("192.0.2.0/24"); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(MustParseAddr("10.200.1.1")) {
		t.Error("set should contain 10.200.1.1")
	}
	if s.Contains(MustParseAddr("11.0.0.1")) {
		t.Error("set should not contain 11.0.0.1")
	}
	if err := s.AddString("not-a-cidr"); err == nil {
		t.Error("AddString accepted garbage")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSetNumAddrs(t *testing.T) {
	s := NewSet()
	s.Add(MustParsePrefix("10.0.0.0/8"))
	s.Add(MustParsePrefix("10.1.0.0/16")) // nested: must not double count
	s.Add(MustParsePrefix("192.0.2.0/24"))
	want := uint64(1<<24 + 1<<8)
	if got := s.NumAddrs(); got != want {
		t.Errorf("NumAddrs = %d, want %d", got, want)
	}
}

func TestSetNumAddrsDisjoint(t *testing.T) {
	s := NewSet()
	s.Add(MustParsePrefix("1.0.0.0/24"))
	s.Add(MustParsePrefix("2.0.0.0/24"))
	s.Add(MustParsePrefix("3.0.0.0/32"))
	if got := s.NumAddrs(); got != 513 {
		t.Errorf("NumAddrs = %d, want 513", got)
	}
}

func TestRadixPropertyInsertedAlwaysFound(t *testing.T) {
	f := func(base uint32, bits uint8) bool {
		p := MakePrefix(AddrFrom4(base), bits%33)
		tr := NewRadixTree[bool]()
		tr.Insert(p, true)
		v, ok := tr.Lookup(p.First())
		return ok && v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRadixLookup(b *testing.B) {
	s := rng.NewSplitMix64(1)
	tr := NewRadixTree[int]()
	for i := 0; i < 10000; i++ {
		tr.Insert(MakePrefix(AddrFrom4(s.Uint32()), uint8(8+s.Intn(17))), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(AddrFrom4(uint32(i) * 2654435761))
	}
}

func TestSetNumAddrsProperty(t *testing.T) {
	// NumAddrs never exceeds the naive sum and never undercounts any
	// single member prefix.
	f := func(bases []uint32, lens []uint8) bool {
		s := NewSet()
		var sum uint64
		maxSingle := uint64(0)
		n := len(bases)
		if len(lens) < n {
			n = len(lens)
		}
		if n == 0 {
			return s.NumAddrs() == 0
		}
		for i := 0; i < n; i++ {
			p := MakePrefix(AddrFrom4(bases[i]), 8+lens[i]%25)
			s.Add(p)
			sum += p.NumAddrs()
			if p.NumAddrs() > maxSingle {
				maxSingle = p.NumAddrs()
			}
		}
		got := s.NumAddrs()
		return got <= sum && got >= maxSingle
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetContainsMatchesMembersProperty(t *testing.T) {
	// Any address inside an added prefix is contained.
	f := func(base uint32, bits uint8, off uint64) bool {
		p := MakePrefix(AddrFrom4(base), bits%33)
		s := NewSet()
		s.Add(p)
		return s.Contains(p.Nth(off % p.NumAddrs()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- dual-stack tests ---

func TestRadixDualStack(t *testing.T) {
	tr := NewRadixTree[string]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "v4-ten")
	tr.Insert(MustParsePrefix("2001:db8::/32"), "v6-db8")
	tr.Insert(MustParsePrefix("2001:db8:5::/48"), "v6-db8-5")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "v4-ten", true},
		{"2001:db8::1", "v6-db8", true},
		{"2001:db8:5::9", "v6-db8-5", true}, // longest match wins
		{"2001:db9::1", "", false},
		{"32.1.13.184", "", false}, // v4 alias of 2001:db8 first bytes: families don't mix
	}
	for _, c := range cases {
		got, ok := tr.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v want %q,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
	p, v, ok := tr.LookupPrefix(MustParseAddr("2001:db8:5::9"))
	if !ok || v != "v6-db8-5" || p != MustParsePrefix("2001:db8:5::/48") {
		t.Errorf("LookupPrefix = %v,%q,%v", p, v, ok)
	}
}

func TestRadixWalkOrderDualStack(t *testing.T) {
	tr := NewRadixTree[int]()
	ins := []string{"2001:db8::/32", "10.0.0.0/8", "2001:db8::/64", "9.0.0.0/8"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "2001:db8::/32", "2001:db8::/64"}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order %v, want %v", got, want)
		}
	}
}

// TestRadix6AgainstLinearScan cross-checks v6 longest-prefix match against
// a brute-force scan, mirroring the v4 differential test.
func TestRadix6AgainstLinearScan(t *testing.T) {
	s := rng.NewSplitMix64(77)
	tr := NewRadixTree[int]()
	final := map[Prefix]int{}
	for i := 0; i < 300; i++ {
		base := AddrFrom128(0x2001_0db8_0000_0000|s.Uint64()&0xff, s.Uint64()&0xf)
		p := MakePrefix(base, uint8(48+s.Intn(81)))
		tr.Insert(p, i)
		final[p] = i
	}
	for trial := 0; trial < 2000; trial++ {
		a := AddrFrom128(0x2001_0db8_0000_0000|s.Uint64()&0xff, s.Uint64()&0xf)
		bestBits, bestVal := -1, 0
		for p, v := range final {
			if p.Contains(a) && int(p.Bits) > bestBits {
				bestBits, bestVal = int(p.Bits), v
			}
		}
		got, ok := tr.Lookup(a)
		if bestBits < 0 {
			if ok {
				t.Fatalf("Lookup(%v) = %d, want miss", a, got)
			}
			continue
		}
		if !ok || got != bestVal {
			t.Fatalf("Lookup(%v) = %d,%v, want %d", a, got, ok, bestVal)
		}
	}
}

func TestSetNumAddrs6Saturates(t *testing.T) {
	s := NewSet()
	s.Add(MustParsePrefix("2001:db8::/32"))
	s.Add(MustParsePrefix("10.0.0.0/8"))
	if got := s.NumAddrs(); got != ^uint64(0) {
		t.Errorf("NumAddrs = %d, want saturation at MaxUint64", got)
	}
}
