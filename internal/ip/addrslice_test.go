package ip

import (
	"math/rand"
	"sort"
	"testing"
)

func randSet(rng *rand.Rand, n, space int) (AddrSlice, map[Addr]bool) {
	m := map[Addr]bool{}
	for i := 0; i < n; i++ {
		m[Addr(rng.Intn(space))] = true
	}
	s := make(AddrSlice, 0, len(m))
	for a := range m {
		s = append(s, a)
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s, m
}

func TestAddrSliceSearchContains(t *testing.T) {
	s := AddrSlice{2, 5, 9, 40}
	for i, a := range s {
		if got := s.Search(a); got != i {
			t.Errorf("Search(%v) = %d, want %d", a, got, i)
		}
		if !s.Contains(a) {
			t.Errorf("Contains(%v) = false", a)
		}
	}
	if got := s.Search(6); got != 2 {
		t.Errorf("Search(6) = %d, want 2", got)
	}
	if got := s.Search(100); got != len(s) {
		t.Errorf("Search(100) = %d, want %d", got, len(s))
	}
	if s.Contains(3) {
		t.Error("Contains(3) = true")
	}
}

func TestIsSorted(t *testing.T) {
	for _, tc := range []struct {
		s    AddrSlice
		want bool
	}{
		{nil, true},
		{AddrSlice{1}, true},
		{AddrSlice{1, 2, 3}, true},
		{AddrSlice{1, 1}, false}, // duplicates violate strict order
		{AddrSlice{2, 1}, false},
	} {
		if got := tc.s.IsSorted(); got != tc.want {
			t.Errorf("IsSorted(%v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

// TestSetAlgebraMatchesMaps checks Union, Intersect, IntersectAll, and Diff
// against hash-set reference implementations on random inputs.
func TestSetAlgebraMatchesMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(5)
		lists := make([]AddrSlice, k)
		sets := make([]map[Addr]bool, k)
		for i := range lists {
			lists[i], sets[i] = randSet(rng, rng.Intn(40), 64)
		}

		wantUnion := map[Addr]bool{}
		for _, m := range sets {
			for a := range m {
				wantUnion[a] = true
			}
		}
		checkSet(t, "Union", Union(lists...), wantUnion)

		wantInter := map[Addr]bool{}
		for a := range sets[0] {
			all := true
			for _, m := range sets[1:] {
				if !m[a] {
					all = false
					break
				}
			}
			if all {
				wantInter[a] = true
			}
		}
		checkSet(t, "IntersectAll", IntersectAll(lists...), wantInter)

		if k >= 2 {
			wantPair := map[Addr]bool{}
			wantDiff := map[Addr]bool{}
			for a := range sets[0] {
				if sets[1][a] {
					wantPair[a] = true
				} else {
					wantDiff[a] = true
				}
			}
			checkSet(t, "Intersect", lists[0].Intersect(lists[1]), wantPair)
			checkSet(t, "Diff", lists[0].Diff(lists[1]), wantDiff)
		}
	}
}

func checkSet(t *testing.T, op string, got AddrSlice, want map[Addr]bool) {
	t.Helper()
	if !got.IsSorted() {
		t.Fatalf("%s: result not strictly sorted: %v", op, got)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d elements, want %d", op, len(got), len(want))
	}
	for _, a := range got {
		if !want[a] {
			t.Fatalf("%s: unexpected element %v", op, a)
		}
	}
}

// TestUnionMaxAddr guards the k-way merge's found-flag against the
// largest address: a sentinel-based merge would loop or drop 0xffffffff.
func TestUnionMaxAddr(t *testing.T) {
	const max = Addr(1<<32 - 1)
	got := Union(AddrSlice{1, max}, AddrSlice{max})
	if len(got) != 2 || got[0] != 1 || got[1] != max {
		t.Fatalf("Union with max address = %v", got)
	}
}

func TestIntersectAllEmpty(t *testing.T) {
	if got := IntersectAll(); got != nil {
		t.Errorf("IntersectAll() = %v, want nil", got)
	}
	if got := IntersectAll(AddrSlice{1, 2}, nil, AddrSlice{2}); len(got) != 0 {
		t.Errorf("IntersectAll with empty list = %v, want empty", got)
	}
}
