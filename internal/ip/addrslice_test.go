package ip

import (
	"math/rand"
	"sort"
	"testing"
)

// a4 is shorthand for the low-valued IPv4 addresses the small-set tests use.
func a4(v uint32) Addr { return AddrFrom4(v) }

// randAddr128 draws an address from a mixed dual-stack pool: small v4
// values (which collide often, exercising the merge cursors) and v6
// addresses from a handful of /64s whose hi/lo words force true 128-bit
// comparisons (equal hi, differing lo, and vice versa).
func randAddr128(rng *rand.Rand, space int) Addr {
	switch rng.Intn(3) {
	case 0:
		return AddrFrom4(uint32(rng.Intn(space)))
	case 1:
		// Same hi word, small lo: ordering decided by lo alone.
		return AddrFrom128(0x20010db8_0000_0001, uint64(rng.Intn(space)))
	default:
		// Varying hi word, constant lo: ordering decided by hi alone.
		return AddrFrom128(0x20010db8_0000_0000+uint64(rng.Intn(space)), 42)
	}
}

func randSetFrom(rng *rand.Rand, n int, draw func() Addr) (AddrSlice, map[Addr]bool) {
	m := map[Addr]bool{}
	for i := 0; i < n; i++ {
		m[draw()] = true
	}
	s := make(AddrSlice, 0, len(m))
	for a := range m {
		s = append(s, a)
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
	return s, m
}

func TestAddrSliceSearchContains(t *testing.T) {
	s := AddrSlice{a4(2), a4(5), a4(9), a4(40)}
	for i, a := range s {
		if got := s.Search(a); got != i {
			t.Errorf("Search(%v) = %d, want %d", a, got, i)
		}
		if !s.Contains(a) {
			t.Errorf("Contains(%v) = false", a)
		}
	}
	if got := s.Search(a4(6)); got != 2 {
		t.Errorf("Search(6) = %d, want 2", got)
	}
	if got := s.Search(a4(100)); got != len(s) {
		t.Errorf("Search(100) = %d, want %d", got, len(s))
	}
	if s.Contains(a4(3)) {
		t.Error("Contains(3) = true")
	}
}

func TestIsSorted(t *testing.T) {
	for _, tc := range []struct {
		s    AddrSlice
		want bool
	}{
		{nil, true},
		{AddrSlice{a4(1)}, true},
		{AddrSlice{a4(1), a4(2), a4(3)}, true},
		{AddrSlice{a4(1), a4(1)}, false}, // duplicates violate strict order
		{AddrSlice{a4(2), a4(1)}, false},
		// v4 sorts before v6; the reverse order is unsorted.
		{AddrSlice{a4(0xffffffff), AddrFrom128(0x2001, 0)}, true},
		{AddrSlice{AddrFrom128(0x2001, 0), a4(0)}, false},
		// 128-bit ordering: hi word dominates lo word.
		{AddrSlice{AddrFrom128(1, ^uint64(0)), AddrFrom128(2, 0)}, true},
		{AddrSlice{AddrFrom128(2, 0), AddrFrom128(1, ^uint64(0))}, false},
	} {
		if got := tc.s.IsSorted(); got != tc.want {
			t.Errorf("IsSorted(%v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

// checkAlgebra cross-checks Union, Intersect, IntersectAll, and Diff
// against hash-set reference implementations on random inputs drawn by
// draw.
func checkAlgebra(t *testing.T, rng *rand.Rand, draw func() Addr) {
	t.Helper()
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(5)
		lists := make([]AddrSlice, k)
		sets := make([]map[Addr]bool, k)
		for i := range lists {
			lists[i], sets[i] = randSetFrom(rng, rng.Intn(40), draw)
		}

		wantUnion := map[Addr]bool{}
		for _, m := range sets {
			for a := range m {
				wantUnion[a] = true
			}
		}
		checkSet(t, "Union", Union(lists...), wantUnion)

		wantInter := map[Addr]bool{}
		for a := range sets[0] {
			all := true
			for _, m := range sets[1:] {
				if !m[a] {
					all = false
					break
				}
			}
			if all {
				wantInter[a] = true
			}
		}
		checkSet(t, "IntersectAll", IntersectAll(lists...), wantInter)

		if k >= 2 {
			wantPair := map[Addr]bool{}
			wantDiff := map[Addr]bool{}
			for a := range sets[0] {
				if sets[1][a] {
					wantPair[a] = true
				} else {
					wantDiff[a] = true
				}
			}
			checkSet(t, "Intersect", lists[0].Intersect(lists[1]), wantPair)
			checkSet(t, "Diff", lists[0].Diff(lists[1]), wantDiff)
		}

		// Search/Contains agree with the reference membership for both
		// present and randomly drawn (mostly absent) addresses.
		for a := range sets[0] {
			if !lists[0].Contains(a) {
				t.Fatalf("Contains(%v) = false for present element", a)
			}
		}
		for i := 0; i < 10; i++ {
			a := draw()
			if got := lists[0].Contains(a); got != sets[0][a] {
				t.Fatalf("Contains(%v) = %v, want %v", a, got, sets[0][a])
			}
		}
	}
}

// TestSetAlgebraMatchesMaps checks the merge algebra over IPv4 addresses.
func TestSetAlgebraMatchesMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checkAlgebra(t, rng, func() Addr { return AddrFrom4(uint32(rng.Intn(64))) })
}

// TestSetAlgebraMatchesMaps128 re-runs the differential check over mixed
// dual-stack inputs: the merge algebra must order and deduplicate by the
// full 128-bit comparator, not a truncated word.
func TestSetAlgebraMatchesMaps128(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checkAlgebra(t, rng, func() Addr { return randAddr128(rng, 24) })
}

func checkSet(t *testing.T, op string, got AddrSlice, want map[Addr]bool) {
	t.Helper()
	if !got.IsSorted() {
		t.Fatalf("%s: result not strictly sorted: %v", op, got)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d elements, want %d", op, len(got), len(want))
	}
	for _, a := range got {
		if !want[a] {
			t.Fatalf("%s: unexpected element %v", op, a)
		}
	}
}

// TestUnionMaxAddr guards the k-way merge's found-flag against the largest
// addresses of both families: a sentinel-based merge would loop on or drop
// them.
func TestUnionMaxAddr(t *testing.T) {
	max4 := AddrFrom4(1<<32 - 1)
	got := Union(AddrSlice{a4(1), max4}, AddrSlice{max4})
	if len(got) != 2 || got[0] != a4(1) || got[1] != max4 {
		t.Fatalf("Union with max v4 address = %v", got)
	}
	max6 := AddrFrom128(^uint64(0), ^uint64(0))
	got = Union(AddrSlice{max4, max6}, AddrSlice{max6})
	if len(got) != 2 || got[0] != max4 || got[1] != max6 {
		t.Fatalf("Union with max v6 address = %v", got)
	}
}

func TestIntersectAllEmpty(t *testing.T) {
	if got := IntersectAll(); got != nil {
		t.Errorf("IntersectAll() = %v, want nil", got)
	}
	if got := IntersectAll(AddrSlice{a4(1), a4(2)}, nil, AddrSlice{a4(2)}); len(got) != 0 {
		t.Errorf("IntersectAll with empty list = %v, want empty", got)
	}
}

// FuzzIsSorted fuzzes the sortedness check against a reference
// re-implementation over raw 128-bit words, seeding the corpus with the
// family boundary and both word-order edge cases.
func FuzzIsSorted(f *testing.F) {
	f.Add(uint64(0), uint64(0xffff00000001), uint64(0), uint64(0xffff00000002))  // v4 pair, sorted
	f.Add(uint64(0), uint64(0xffffffffffff), uint64(0x2001), uint64(0))          // v4 then v6
	f.Add(uint64(2), uint64(0), uint64(1), uint64(^uint64(0)))                   // hi word reversed
	f.Add(uint64(1), uint64(1), uint64(1), uint64(1))                            // duplicate
	f.Fuzz(func(t *testing.T, hi1, lo1, hi2, lo2 uint64) {
		s := AddrSlice{AddrFrom128(hi1, lo1), AddrFrom128(hi2, lo2)}
		want := hi1 < hi2 || (hi1 == hi2 && lo1 < lo2)
		if got := s.IsSorted(); got != want {
			t.Errorf("IsSorted(%v) = %v, want %v", s, got, want)
		}
	})
}
