package proto

import "testing"

func TestPortsAndNames(t *testing.T) {
	cases := []struct {
		p    Protocol
		name string
		port uint16
	}{
		{HTTP, "HTTP", 80},
		{HTTPS, "HTTPS", 443},
		{SSH, "SSH", 22},
	}
	for _, c := range cases {
		if c.p.String() != c.name || c.p.Port() != c.port {
			t.Errorf("%v: name %q port %d", c.p, c.p.String(), c.p.Port())
		}
		got, ok := FromPort(c.port)
		if !ok || got != c.p {
			t.Errorf("FromPort(%d) = %v,%v", c.port, got, ok)
		}
	}
	if _, ok := FromPort(8080); ok {
		t.Error("FromPort(8080) should miss")
	}
	if Protocol(9).String() == "" || Protocol(9).Port() != 0 {
		t.Error("out-of-range protocol should still format")
	}
	if len(All()) != N {
		t.Errorf("All() has %d entries, N = %d", len(All()), N)
	}
}

func TestMask(t *testing.T) {
	var m Mask
	if m.Has(HTTP) || m.Count() != 0 {
		t.Error("zero mask should be empty")
	}
	m = m.With(HTTP).With(SSH)
	if !m.Has(HTTP) || !m.Has(SSH) || m.Has(HTTPS) {
		t.Errorf("mask = %b", m)
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d", m.Count())
	}
	if Bit(HTTPS) == Bit(SSH) {
		t.Error("bits collide")
	}
	// With is idempotent.
	if m.With(HTTP) != m {
		t.Error("With not idempotent")
	}
}
