// Package proto enumerates the application protocols scanned in the study.
package proto

import "fmt"

// Protocol is one of the three scanned protocols.
type Protocol uint8

const (
	HTTP  Protocol = iota // TCP/80, GET /
	HTTPS                 // TCP/443, TLS 1.2 handshake
	SSH                   // TCP/22, version exchange
	numProtocols
)

// All lists the protocols in the paper's reporting order.
func All() []Protocol { return []Protocol{HTTP, HTTPS, SSH} }

// N is the number of protocols.
const N = int(numProtocols)

var names = [...]string{"HTTP", "HTTPS", "SSH"}
var ports = [...]uint16{80, 443, 22}

// String returns the protocol name as used in the paper.
func (p Protocol) String() string {
	if int(p) < len(names) {
		return names[p]
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// Port returns the protocol's well-known TCP port.
func (p Protocol) Port() uint16 {
	if int(p) < len(ports) {
		return ports[p]
	}
	return 0
}

// FromPort returns the protocol scanned on a TCP port.
func FromPort(port uint16) (Protocol, bool) {
	switch port {
	case 80:
		return HTTP, true
	case 443:
		return HTTPS, true
	case 22:
		return SSH, true
	}
	return 0, false
}

// Mask is a bitmask of protocols, used to describe which services a host
// runs.
type Mask uint8

// Bit returns the mask bit for a protocol.
func Bit(p Protocol) Mask { return 1 << p }

// Has reports whether the mask includes p.
func (m Mask) Has(p Protocol) bool { return m&Bit(p) != 0 }

// With returns the mask with p added.
func (m Mask) With(p Protocol) Mask { return m | Bit(p) }

// Count returns the number of protocols in the mask.
func (m Mask) Count() int {
	n := 0
	for _, p := range All() {
		if m.Has(p) {
			n++
		}
	}
	return n
}
