package world

// Tests for the full-IPv4-scale build features: batch FIB evaluation,
// forced scan-space sizing, and the streaming (no retained host slice)
// build mode. The streaming differential is the load-bearing one — the FIB
// is the only host record a streaming build keeps, so it must be
// bit-identical to the one a retained build produces.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/ip"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// TestFIBResolveBatchMatchesResolve pins the batch resolver, including its
// last-block cache, to the per-address path: sequential runs (cache hits),
// pseudorandom sweeps (cache misses), and out-of-space addresses.
func TestFIBResolveBatchMatchesResolve(t *testing.T) {
	w := buildTest(t, 5)
	f := w.FIB()
	var addrs []ip.Addr
	// Sequential span crossing many /24s: exercises the cache-hit path.
	for a := uint64(0); a < w.SpaceSize() && a < 1<<14; a++ {
		addrs = append(addrs, ip.AddrFrom4(uint32(a)))
	}
	// Pseudorandom addresses, some outside the space.
	stream := rng.NewKey(7).Derive("batch-sample").Stream(0)
	for i := 0; i < 1<<14; i++ {
		addrs = append(addrs, ip.AddrFrom4(uint32(stream.Uint64()&(2*w.SpaceSize()-1))))
	}
	out := make([]Dest, len(addrs))
	f.ResolveBatch(addrs, out)
	routed := make([]bool, len(addrs))
	f.RoutedBatch(addrs, routed)
	for i, a := range addrs {
		want := f.Resolve(a)
		if out[i] != want {
			t.Fatalf("ResolveBatch[%d] (%v) = %+v, Resolve = %+v", i, a, out[i], want)
		}
		if routed[i] != want.Routed {
			t.Fatalf("RoutedBatch[%d] (%v) = %v, Resolve.Routed = %v", i, a, routed[i], want.Routed)
		}
	}
}

// TestWorldForcedSpaceBits checks Spec.SpaceBits both ways: a forced space
// larger than the allocation is honored exactly (with everything above the
// allocation unrouted), and one too small to cover the allocation fails
// with a config error instead of silently truncating the world.
func TestWorldForcedSpaceBits(t *testing.T) {
	spec := TestSpec(3)
	base, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	forced := spec
	forced.SpaceBits = base.SpaceBits + 4
	w, err := Build(context.Background(), forced)
	if err != nil {
		t.Fatal(err)
	}
	if w.SpaceBits != base.SpaceBits+4 {
		t.Fatalf("SpaceBits = %d, want forced %d", w.SpaceBits, base.SpaceBits+4)
	}
	// The annotated space is unchanged; the added space is dark.
	if err := w.FIB().Validate(w); err != nil {
		t.Fatal(err)
	}
	stream := rng.NewKey(9).Derive("dark").Stream(0)
	for i := 0; i < 1000; i++ {
		a := ip.AddrFrom4(uint32(base.SpaceSize() + stream.Uint64()%(w.SpaceSize()-base.SpaceSize())))
		if w.FIB().Routed(a) {
			t.Fatalf("address %v in the forced-dark region reported routed", a)
		}
		if d := w.FIB().Resolve(a); d != (Dest{}) {
			t.Fatalf("Resolve(%v) in the forced-dark region = %+v, want zero", a, d)
		}
	}

	tooSmall := spec
	tooSmall.SpaceBits = base.SpaceBits - 1
	if _, err := Build(context.Background(), tooSmall); !errors.Is(err, pipeline.ErrBadConfig) {
		t.Fatalf("undersized forced space: err = %v, want ErrBadConfig", err)
	}
}

// TestWorldStreamingMatchesRetained is the streaming build's differential:
// with StreamHosts set the build must keep no host slice or per-AS index,
// yet produce a FIB that resolves every address in the space to exactly
// the Dest the retained build's FIB resolves, with identical counters.
func TestWorldStreamingMatchesRetained(t *testing.T) {
	spec := TestSpec(11)
	retained, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sspec := spec
	sspec.StreamHosts = true
	streaming, err := Build(context.Background(), sspec)
	if err != nil {
		t.Fatal(err)
	}

	if streaming.Hosts() != nil {
		t.Error("streaming build retained a host slice")
	}
	if streaming.NumHosts() != retained.NumHosts() {
		t.Errorf("NumHosts: streaming %d, retained %d", streaming.NumHosts(), retained.NumHosts())
	}
	if streaming.SpaceBits != retained.SpaceBits {
		t.Fatalf("SpaceBits: streaming %d, retained %d", streaming.SpaceBits, retained.SpaceBits)
	}
	for a := uint64(0); a < retained.SpaceSize(); a++ {
		addr := ip.AddrFrom4(uint32(a))
		if got, want := streaming.Resolve(addr), retained.Resolve(addr); got.Routed != want.Routed ||
			got.Country != want.Country || got.Services != want.Services || got.Host != want.Host ||
			(got.AS == nil) != (want.AS == nil) || (got.AS != nil && got.AS.Number != want.AS.Number) {
			t.Fatalf("Resolve(%v): streaming %+v, retained %+v", addr, got, want)
		}
	}

	// Aggregate counters answer identically without the host slice.
	nums1, w1 := retained.ASWeights()
	nums2, w2 := streaming.ASWeights()
	if len(nums1) != len(nums2) {
		t.Fatalf("ASWeights length: %d vs %d", len(nums1), len(nums2))
	}
	for i := range nums1 {
		if nums1[i] != nums2[i] || w1[i] != w2[i] {
			t.Fatalf("ASWeights[%d]: retained (%v, %d), streaming (%v, %d)",
				i, nums1[i], w1[i], nums2[i], w2[i])
		}
	}
}

// TestASWeightsMatchHostIndex pins the placement-time per-AS counters that
// ASWeights now answers from to the retained per-AS host index they
// replaced on the streaming path.
func TestASWeightsMatchHostIndex(t *testing.T) {
	w := buildTest(t, 2020)
	nums, weights := w.ASWeights()
	for i, n := range nums {
		if got := uint64(len(w.HostsInAS(n))); weights[i] != got {
			t.Errorf("AS %v: counter %d, host index %d", n, weights[i], got)
		}
	}
}
