package world

import (
	"repro/internal/ip"
	"repro/internal/rng"
)

// Churn models temporal host churn between trials: the paper's three trials
// span eight weeks, so hosts are deployed and decommissioned between them
// (this is what makes its per-trial ground-truth sizes differ and produces
// the "unknown" classification for hosts seen in only one trial).
//
// Churn is a lifecycle, not random blinking: each host gets a stable birth
// trial and death trial drawn from its address. With rate r, a host is
// "new" (born after trial 1) with probability r and "retired" (dead before
// the last trial) with probability r; the specific birth/death trials are
// uniform over the remaining trials. A host whose drawn death precedes its
// birth lives exactly its birth trial — the single-trial hosts the paper
// labels unknown when missed.
type Churn struct {
	key rng.Key
	// Rate is the probability a host's lifecycle is clipped at either
	// end of the study.
	Rate float64
	// Trials is the study length the lifecycle spans.
	Trials int
}

// NewChurn returns a churn model over the given number of trials.
func NewChurn(key rng.Key, rate float64, trials int) *Churn {
	if trials < 1 {
		trials = 1
	}
	return &Churn{key: key.Derive("churn"), Rate: rate, Trials: trials}
}

// lifecycle returns the host's first and last live trials.
func (c *Churn) lifecycle(dst ip.Addr) (birth, death int) {
	birth, death = 0, c.Trials-1
	if c.Trials == 1 {
		return 0, 0
	}
	if c.key.Bool(c.Rate, dst.Word64(), 1) {
		birth = 1 + int(c.key.Uint64(dst.Word64(), 2)%uint64(c.Trials-1))
	}
	if c.key.Bool(c.Rate, dst.Word64(), 3) {
		death = int(c.key.Uint64(dst.Word64(), 4) % uint64(c.Trials-1))
	}
	if death < birth {
		death = birth
	}
	return birth, death
}

// Offline reports whether the host is down for the whole trial.
//
// Offline is explicitly nil-receiver safe: a nil *Churn models a world with
// no churn, and every host is always online. The fabric relies on this — it
// calls Offline unconditionally on the probe hot path without checking
// whether its config carries a churn model.
func (c *Churn) Offline(dst ip.Addr, trial int) bool {
	if c == nil || c.Rate <= 0 {
		return false
	}
	birth, death := c.lifecycle(dst)
	return trial < birth || trial > death
}
