//go:build !race

package world

// raceEnabled reports whether the race detector is compiled in; the
// full-scale audit test skips under it (a 68M-host build under the race
// runtime takes tens of minutes for no extra coverage — the build is
// single-goroutine).
const raceEnabled = false
