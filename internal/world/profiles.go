package world

import (
	"repro/internal/asn"
	"repro/internal/geo"
)

// Profile AS names, used by the scenario builder and analyses to attach the
// paper's policies and loss overrides to the right networks.
const (
	ProfDXTL        = "DXTL Tseung Kwan O Service"
	ProfEGI         = "EGI Hosting"
	ProfEnzu        = "Enzu"
	ProfAkamai      = "Akamai"
	ProfTelecomIT   = "Telecom Italia"
	ProfSparkle     = "Telecom Italia Sparkle"
	ProfABCDE       = "ABCDE Group"
	ProfAlibabaHZ   = "HZ Alibaba Advertising"
	ProfAlibabaCN   = "Alibaba CN"
	ProfTencent     = "Tencent"
	ProfChinaTel    = "China Telecom"
	ProfPsychz      = "Psychz Networks"
	ProfBekkoame    = "Bekkoame Internet"
	ProfNTTJP       = "NTT Communications JP"
	ProfGatewayInc  = "Gateway Inc"
	ProfWebCentral  = "WebCentral"
	ProfCloudflare  = "Cloudflare"
	ProfAmazon      = "Amazon"
	ProfGoogle      = "Google"
	ProfDigitalOcn  = "Digital Ocean"
	ProfOVH         = "OVH"
	ProfHetzner     = "Hetzner"
	ProfSKBroadband = "SK Broadband"
	ProfRuhrUni     = "Ruhr-Universitaet Bochum"
	ProfTegna       = "Tegna Inc"
	ProfJackBox     = "Jack in the Box"
	ProfWAK20       = "WA K-20 Telecommunications"
	ProfSantaPlus   = "SantaPlus"
	ProfEEHost      = "Estonia Hosting"
	ProfUAHost      = "Ukraine Hosting"
	ProfROHost      = "Romania Hosting"
	ProfKazTel      = "Kazakhtelecom"
	ProfRostelecom  = "Rostelecom"
	ProfRUNet2      = "RU-Net Backbone"
	ProfLibya1      = "Libya Telecom"
	ProfLibya2      = "Libya Hosting One"
	ProfLibya3      = "Libya Hosting Two"
)

// Prefixes for small policy-bearing AS families generated in bulk.
const (
	ProfUSGovPrefix      = "US Government Network" // block Censys
	ProfUSFinPrefix      = "US Financial Services" // block Brazil
	ProfUSHealthPrefix   = "US Healthcare Group"   // block Brazil
	ProfUSConsumerPrefix = "US Consumer Business"  // block Censys
)

// Counts of the bulk families.
const (
	NumUSGov      = 14
	NumUSFin      = 12
	NumUSHealth   = 10
	NumUSConsumer = 8
)

// DefaultProfiles returns the named ASes with per-protocol global host
// shares chosen to reproduce the paper's size relationships (e.g. the three
// Censys blockers hold <4% of HTTP hosts; Akamai and the clouds are top-10;
// Bekkoame holds 0.9% of HTTP).
func DefaultProfiles() []Profile {
	ps := []Profile{
		// --- The three heavy Censys blockers (§4.1). ---
		{Name: ProfDXTL, ASN: 134121, Country: "HK", Kind: asn.KindHosting,
			HTTPShare: 0.015, HTTPSShare: 0.005, SSHShare: 0.008,
			GeoMix: []GeoFrac{{"HK", 0.60}, {"ZA", 0.28}, {"BD", 0.12}}},
		{Name: ProfEGI, ASN: 32181, Country: "US", Kind: asn.KindHosting,
			HTTPShare: 0.010, HTTPSShare: 0.003, SSHShare: 0.012},
		{Name: ProfEnzu, ASN: 18978, Country: "US", Kind: asn.KindHosting,
			HTTPShare: 0.010, HTTPSShare: 0.002, SSHShare: 0.002},

		// --- Large CDNs / clouds (§5.1 best-origin flips). ---
		{Name: ProfAkamai, ASN: 20940, Country: "US", Kind: asn.KindCDN,
			HTTPShare: 0.050, HTTPSShare: 0.060, SSHShare: 0.001},
		{Name: ProfCloudflare, ASN: 13335, Country: "US", Kind: asn.KindCDN,
			HTTPShare: 0.040, HTTPSShare: 0.050, SSHShare: 0.0005,
			GeoMix: []GeoFrac{{"US", 0.40}, {"DE", 0.15}, {"GB", 0.15}, {"NL", 0.15}, {"FR", 0.15}}},
		{Name: ProfAmazon, ASN: 16509, Country: "US", Kind: asn.KindCloud,
			HTTPShare: 0.050, HTTPSShare: 0.060, SSHShare: 0.080},
		{Name: ProfGoogle, ASN: 15169, Country: "US", Kind: asn.KindCloud,
			HTTPShare: 0.030, HTTPSShare: 0.040, SSHShare: 0.020},
		{Name: ProfDigitalOcn, ASN: 14061, Country: "US", Kind: asn.KindCloud,
			HTTPShare: 0.020, HTTPSShare: 0.020, SSHShare: 0.060},
		{Name: ProfOVH, ASN: 16276, Country: "FR", Kind: asn.KindHosting,
			HTTPShare: 0.020, HTTPSShare: 0.020, SSHShare: 0.030},
		{Name: ProfHetzner, ASN: 24940, Country: "DE", Kind: asn.KindHosting,
			HTTPShare: 0.015, HTTPSShare: 0.015, SSHShare: 0.025},

		// --- Italy: Germany's pathological paths (§4.2, §5.2). ---
		{Name: ProfTelecomIT, ASN: 3269, Country: "IT", Kind: asn.KindISP,
			HTTPShare: 0.005, HTTPSShare: 0.0030, SSHShare: 0.003},
		{Name: ProfSparkle, ASN: 6762, Country: "IT", Kind: asn.KindISP,
			HTTPShare: 0.0025, HTTPSShare: 0.0020, SSHShare: 0.0015},

		// --- Hong Kong / China (§5.2 lossy paths, §6 Alibaba). ---
		{Name: ProfABCDE, ASN: 133201, Country: "HK", Kind: asn.KindCloud,
			HTTPShare: 0.005, HTTPSShare: 0.002, SSHShare: 0.002},
		{Name: ProfAlibabaHZ, ASN: 37963, Country: "CN", Kind: asn.KindCloud,
			HTTPShare: 0.015, HTTPSShare: 0.010, SSHShare: 0.030},
		{Name: ProfAlibabaCN, ASN: 45102, Country: "CN", Kind: asn.KindCloud,
			HTTPShare: 0.010, HTTPSShare: 0.008, SSHShare: 0.030},
		{Name: ProfTencent, ASN: 45090, Country: "CN", Kind: asn.KindCloud,
			HTTPShare: 0.012, HTTPSShare: 0.008, SSHShare: 0.015},
		{Name: ProfChinaTel, ASN: 4134, Country: "CN", Kind: asn.KindISP,
			HTTPShare: 0.025, HTTPSShare: 0.012, SSHShare: 0.020},

		// --- SSH probabilistic blockers (§6, Figure 13). ---
		{Name: ProfPsychz, ASN: 40676, Country: "US", Kind: asn.KindHosting,
			HTTPShare: 0.008, HTTPSShare: 0.004, SSHShare: 0.010},

		// --- Regional exclusives (§4.4). ---
		{Name: ProfBekkoame, ASN: 2514, Country: "JP", Kind: asn.KindHosting,
			HTTPShare: 0.009, HTTPSShare: 0.003, SSHShare: 0.001},
		{Name: ProfNTTJP, ASN: 4713, Country: "JP", Kind: asn.KindISP,
			HTTPShare: 0.0055, HTTPSShare: 0.004, SSHShare: 0.003},
		{Name: ProfGatewayInc, ASN: 132827, Country: "JP", Kind: asn.KindHosting,
			HTTPShare: 0.0015, HTTPSShare: 0.0005, SSHShare: 0.0002,
			GeoMix: []GeoFrac{{"US", 1.0}}},
		{Name: ProfWebCentral, ASN: 7496, Country: "AU", Kind: asn.KindHosting,
			HTTPShare: 0.0025, HTTPSShare: 0.0015, SSHShare: 0.0005},
		{Name: ProfWAK20, ASN: 101, Country: "US", Kind: asn.KindAcademic,
			HTTPShare: 0.0008, HTTPSShare: 0.0004, SSHShare: 0.0002},

		// --- IDS-protected networks (§4.3). ---
		{Name: ProfSKBroadband, ASN: 9318, Country: "KR", Kind: asn.KindISP,
			HTTPShare: 0.010, HTTPSShare: 0.005, SSHShare: 0.015},
		{Name: ProfRuhrUni, ASN: 29484, Country: "DE", Kind: asn.KindAcademic,
			HTTPShare: 0.0005, HTTPSShare: 0.0005, SSHShare: 0.0005},

		// --- US enterprise blockers (§4.2). ---
		{Name: ProfTegna, ASN: 13443, Country: "US", Kind: asn.KindMedia,
			HTTPShare: 0.0005, HTTPSShare: 0.0003, SSHShare: 0.0001},
		{Name: ProfJackBox, ASN: 46603, Country: "US", Kind: asn.KindConsumer,
			HTTPShare: 0.0002, HTTPSShare: 0.0001},

		// --- Eastern-European hosting that blocks Brazil and Japan. ---
		{Name: ProfSantaPlus, ASN: 57523, Country: "RU", Kind: asn.KindHosting,
			HTTPShare: 0.0020, HTTPSShare: 0.0008, SSHShare: 0.0008},
		{Name: ProfEEHost, ASN: 61307, Country: "EE", Kind: asn.KindHosting,
			HTTPShare: 0.0004, HTTPSShare: 0.0002, SSHShare: 0.0002},
		{Name: ProfUAHost, ASN: 61308, Country: "UA", Kind: asn.KindHosting,
			HTTPShare: 0.0004, HTTPSShare: 0.0002, SSHShare: 0.0002},
		{Name: ProfROHost, ASN: 61309, Country: "RO", Kind: asn.KindHosting,
			HTTPShare: 0.0004, HTTPSShare: 0.0002, SSHShare: 0.0002},

		// --- Australia's consistently lossy destinations (§5.1). ---
		{Name: ProfKazTel, ASN: 9198, Country: "KZ", Kind: asn.KindISP,
			HTTPShare: 0.0030, HTTPSShare: 0.0015, SSHShare: 0.0010},
		{Name: ProfRostelecom, ASN: 12389, Country: "RU", Kind: asn.KindISP,
			HTTPShare: 0.0120, HTTPSShare: 0.0060, SSHShare: 0.0050},
		{Name: ProfRUNet2, ASN: 3216, Country: "RU", Kind: asn.KindISP,
			HTTPShare: 0.0080, HTTPSShare: 0.0040, SSHShare: 0.0030},

		// --- Libya: the one >30%-inaccessible country with no single
		// dominant ISP (§4.4, Table 2). ---
		{Name: ProfLibya1, ASN: 21003, Country: "LY", Kind: asn.KindISP,
			HTTPShare: 0.0002, HTTPSShare: 0.0001, SSHShare: 0.0001},
		{Name: ProfLibya2, ASN: 37558, Country: "LY", Kind: asn.KindHosting,
			HTTPShare: 0.00015, HTTPSShare: 0.0001, SSHShare: 0.00005},
		{Name: ProfLibya3, ASN: 328137, Country: "LY", Kind: asn.KindHosting,
			HTTPShare: 0.00015, HTTPSShare: 0.00005, SSHShare: 0.00005},
	}

	// Bulk families of small US enterprise networks carrying the paper's
	// policies: government and consumer networks block Censys; financial
	// and healthcare networks block Brazil.
	next := asn.ASN(394000)
	bulk := func(prefix string, n int, kind asn.Kind, httpShare, httpsShare, sshShare float64) {
		for i := 0; i < n; i++ {
			ps = append(ps, Profile{
				Name:      bulkName(prefix, i),
				ASN:       next,
				Country:   "US",
				Kind:      kind,
				HTTPShare: httpShare, HTTPSShare: httpsShare, SSHShare: sshShare,
			})
			next++
		}
	}
	bulk(ProfUSGovPrefix, NumUSGov, asn.KindGovernment, 0.00030, 0.00020, 0.00008)
	bulk(ProfUSFinPrefix, NumUSFin, asn.KindFinancial, 0.00025, 0.00020, 0.00005)
	bulk(ProfUSHealthPrefix, NumUSHealth, asn.KindHealthcare, 0.00022, 0.00015, 0.00005)
	bulk(ProfUSConsumerPrefix, NumUSConsumer, asn.KindConsumer, 0.00020, 0.00010, 0.00003)
	return ps
}

// bulkName names the i-th member of a bulk profile family.
func bulkName(prefix string, i int) string {
	return prefix + " " + string(rune('A'+i%26)) + string(rune('0'+i/26))
}

// bulkFamily reports whether name belongs to the given bulk family.
func bulkFamily(name, prefix string) bool {
	return len(name) > len(prefix) && name[:len(prefix)] == prefix
}

// IsUSGov reports whether a profile name is in the US-government family.
func IsUSGov(name string) bool { return bulkFamily(name, ProfUSGovPrefix) }

// IsUSFinancial reports whether a profile name is in the financial family.
func IsUSFinancial(name string) bool { return bulkFamily(name, ProfUSFinPrefix) }

// IsUSHealthcare reports whether a profile name is in the healthcare family.
func IsUSHealthcare(name string) bool { return bulkFamily(name, ProfUSHealthPrefix) }

// IsUSConsumer reports whether a profile name is in the consumer family.
func IsUSConsumer(name string) bool { return bulkFamily(name, ProfUSConsumerPrefix) }

// geoCountryOrDefault resolves a profile's geo mix, defaulting to its
// registration country.
func (p *Profile) geoMix() []GeoFrac {
	if len(p.GeoMix) > 0 {
		return p.GeoMix
	}
	return []GeoFrac{{Country: geo.Country(p.Country), Frac: 1.0}}
}
