package world

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/proto"
)

// The IPv6 side of the FIB.
//
// The per-/24 directory that makes the v4 FIB flat is meaningless over a
// 2^128 universe: announced v6 space is a handful of variable-length
// prefixes (a few /32s in the seeded world) whose interiors are almost
// entirely dark, and the hosts inside them cluster into dense /64 islands.
// So the v6 resolve path is keyed on the prefixes themselves: a sorted,
// disjoint list of [first, last] address spans carrying the interned
// AS/country indices, binary-searched per lookup, plus a sorted host
// address column with a parallel service-mask column for the exact-match
// host test. Both searches are O(log n) over tiny n — the v6 world has
// tens of spans and thousands of hosts — and allocation-free, preserving
// the probe-path contract the v4 side set.

// fib6Span is one announced IPv6 prefix flattened to an address interval.
type fib6Span struct {
	first, last ip.Addr
	asIdx       int32 // index into FIB.ases
	ctryIdx     int32 // index into FIB.countries, or -1
}

// span6Of returns the span containing a, or nil.
func (f *FIB) span6Of(a ip.Addr) *fib6Span {
	// First span whose last >= a; it contains a iff its first <= a.
	i := sort.Search(len(f.spans6), func(i int) bool { return !f.spans6[i].last.Less(a) })
	if i == len(f.spans6) || a.Less(f.spans6[i].first) {
		return nil
	}
	return &f.spans6[i]
}

// resolve6 is Resolve for non-v4 addresses: span search for routedness and
// annotations, host-column search for services.
func (f *FIB) resolve6(a ip.Addr) Dest {
	var d Dest
	sp := f.span6Of(a)
	if sp == nil {
		return d
	}
	d.Routed = true
	d.AS = f.ases[sp.asIdx]
	if sp.ctryIdx >= 0 {
		d.Country = f.countries[sp.ctryIdx]
	}
	if i := f.hosts6.Search(a); i < len(f.hosts6) && f.hosts6[i] == a {
		d.Services = f.masks6[i]
		d.Host = true
	}
	return d
}

// routed6 is Routed for non-v4 addresses.
func (f *FIB) routed6(a ip.Addr) bool { return f.span6Of(a) != nil }

// buildFIB6 constructs a FIB whose v4 side is empty (every v4 lookup
// resolves to the zero Dest) and whose v6 side indexes the world's
// announced prefixes and host list. Hosts must be sorted by address;
// every host must sit inside an announced prefix.
func buildFIB6(w *World, hosts []Host) *FIB {
	f := &FIB{ases: w.Routes.All()}
	ctryIdxOf := make(map[geo.Country]int32)
	for ai, a := range f.ases {
		for _, pfx := range a.Prefixes {
			ci := int32(-1)
			if c, ok := w.Countries.Lookup(pfx.First()); ok {
				if idx, seen := ctryIdxOf[c]; seen {
					ci = idx
				} else {
					ci = int32(len(f.countries))
					f.countries = append(f.countries, c)
					ctryIdxOf[c] = ci
				}
			}
			f.spans6 = append(f.spans6, fib6Span{
				first: pfx.First(), last: pfx.Last(),
				asIdx: int32(ai), ctryIdx: ci,
			})
		}
	}
	sort.Slice(f.spans6, func(i, j int) bool { return f.spans6[i].first.Less(f.spans6[j].first) })
	for i := 1; i < len(f.spans6); i++ {
		if !f.spans6[i-1].last.Less(f.spans6[i].first) {
			panic("world: overlapping IPv6 announcements")
		}
	}
	f.hosts6 = make(ip.AddrSlice, len(hosts))
	f.masks6 = make([]proto.Mask, len(hosts))
	for i, h := range hosts {
		f.hosts6[i] = h.Addr
		f.masks6[i] = h.Services
	}
	if !f.hosts6.IsSorted() {
		panic("world: IPv6 hosts not sorted")
	}
	return f
}
