package world

import (
	"context"
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/proto"
	"repro/internal/rng"
)

func buildTest(t *testing.T, seed uint64) *World {
	t.Helper()
	w, err := Build(context.Background(), TestSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildDeterministic(t *testing.T) {
	w1, w2 := buildTest(t, 7), buildTest(t, 7)
	if w1.NumHosts() != w2.NumHosts() {
		t.Fatalf("host counts differ: %d vs %d", w1.NumHosts(), w2.NumHosts())
	}
	h1, h2 := w1.Hosts(), w2.Hosts()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("host %d differs: %+v vs %+v", i, h1[i], h2[i])
		}
	}
	if w1.SpaceBits != w2.SpaceBits {
		t.Error("space bits differ")
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	w1, w2 := buildTest(t, 1), buildTest(t, 2)
	same := 0
	h1, h2 := w1.Hosts(), w2.Hosts()
	n := len(h1)
	if len(h2) < n {
		n = len(h2)
	}
	for i := 0; i < n; i++ {
		if h1[i].Addr == h2[i].Addr {
			same++
		}
	}
	if same == n {
		t.Error("different seeds produced identical host placements")
	}
}

func TestHostCountsNearTargets(t *testing.T) {
	w := buildTest(t, 3)
	wantH, wantS, wantSSH := w.Spec.Targets()
	for _, c := range []struct {
		p    proto.Protocol
		want int
	}{{proto.HTTP, wantH}, {proto.HTTPS, wantS}, {proto.SSH, wantSSH}} {
		got := w.HostCount(c.p)
		// Profile minimums inflate small worlds a bit; allow 25%.
		if math.Abs(float64(got-c.want)) > 0.25*float64(c.want) {
			t.Errorf("%v hosts = %d, want ≈%d", c.p, got, c.want)
		}
	}
	// Paper ordering: HTTP > HTTPS > SSH.
	if !(w.HostCount(proto.HTTP) > w.HostCount(proto.HTTPS) && w.HostCount(proto.HTTPS) > w.HostCount(proto.SSH)) {
		t.Error("protocol population ordering violated")
	}
}

func TestHostsSortedAndUnique(t *testing.T) {
	w := buildTest(t, 4)
	hosts := w.Hosts()
	for i := 1; i < len(hosts); i++ {
		if !hosts[i-1].Addr.Less(hosts[i].Addr) {
			t.Fatalf("hosts not sorted/unique at %d: %v >= %v", i, hosts[i-1].Addr, hosts[i].Addr)
		}
	}
}

func TestEveryHostRoutedAndGeolocated(t *testing.T) {
	w := buildTest(t, 5)
	for _, h := range w.Hosts() {
		if h.Services == 0 {
			t.Fatalf("host %v has no services", h.Addr)
		}
		if _, ok := w.ASOf(h.Addr); !ok {
			t.Fatalf("host %v has no AS", h.Addr)
		}
		if _, ok := w.CountryOf(h.Addr); !ok {
			t.Fatalf("host %v has no country", h.Addr)
		}
	}
}

func TestLookupMatchesHostList(t *testing.T) {
	w := buildTest(t, 6)
	for _, h := range w.Hosts()[:100] {
		m, ok := w.Lookup(h.Addr)
		if !ok || m != h.Services {
			t.Fatalf("Lookup(%v) = %v,%v want %v", h.Addr, m, ok, h.Services)
		}
	}
	if _, ok := w.Lookup(ip.AddrFrom4(0xFFFFFFFF)); ok {
		t.Error("Lookup found a host outside the world")
	}
}

func TestProfilesPresent(t *testing.T) {
	w := buildTest(t, 8)
	for _, name := range []string{
		ProfDXTL, ProfEGI, ProfEnzu, ProfAkamai, ProfTelecomIT, ProfSparkle,
		ProfABCDE, ProfAlibabaHZ, ProfAlibabaCN, ProfBekkoame, ProfWebCentral,
		ProfCloudflare, ProfRuhrUni, ProfSKBroadband, ProfTegna, ProfWAK20,
	} {
		n, ok := w.ProfileASN(name)
		if !ok {
			t.Errorf("profile %q missing", name)
			continue
		}
		a, ok := w.Routes.Get(n)
		if !ok {
			t.Errorf("profile %q AS%d not registered", name, n)
			continue
		}
		if len(w.HostsInAS(n)) == 0 {
			t.Errorf("profile %q (AS%d, %s) has no hosts", name, n, a.Name)
		}
	}
}

func TestBulkFamiliesPresent(t *testing.T) {
	w := buildTest(t, 8)
	gov, fin, health, consumer := 0, 0, 0, 0
	for _, name := range w.ProfileNames() {
		switch {
		case IsUSGov(name):
			gov++
		case IsUSFinancial(name):
			fin++
		case IsUSHealthcare(name):
			health++
		case IsUSConsumer(name):
			consumer++
		}
	}
	if gov != NumUSGov || fin != NumUSFin || health != NumUSHealth || consumer != NumUSConsumer {
		t.Errorf("bulk families: gov=%d fin=%d health=%d consumer=%d", gov, fin, health, consumer)
	}
}

func TestDXTLGeoMix(t *testing.T) {
	w := buildTest(t, 9)
	n := w.MustProfileASN(ProfDXTL)
	byCountry := map[geo.Country]int{}
	for _, i := range w.HostsInAS(n) {
		h := w.Hosts()[i]
		c, _ := w.CountryOf(h.Addr)
		byCountry[c]++
	}
	if byCountry["HK"] == 0 || byCountry["ZA"] == 0 || byCountry["BD"] == 0 {
		t.Errorf("DXTL geo mix missing countries: %v", byCountry)
	}
	if byCountry["HK"] <= byCountry["BD"] {
		t.Errorf("DXTL HK portion should dominate BD: %v", byCountry)
	}
}

func TestGatewayIncGeolocatesUS(t *testing.T) {
	w := buildTest(t, 9)
	n := w.MustProfileASN(ProfGatewayInc)
	a, _ := w.Routes.Get(n)
	if a.Country != "JP" {
		t.Errorf("Gateway Inc registration country = %v, want JP", a.Country)
	}
	for _, i := range w.HostsInAS(n) {
		c, _ := w.CountryOf(w.Hosts()[i].Addr)
		if c != "US" {
			t.Fatalf("Gateway Inc host geolocates to %v, want US", c)
		}
	}
}

func TestSourceIPsOutsideAnnouncedSpace(t *testing.T) {
	w := buildTest(t, 10)
	for _, o := range w.Origins.All() {
		for _, src := range o.SourceIPs {
			if _, ok := w.ASOf(src); ok {
				t.Fatalf("source IP %v of %v is inside an announced prefix", src, o.ID)
			}
			if uint64(src.V4()) >= w.SpaceSize() {
				t.Fatalf("source IP %v outside scan space 2^%d", src, w.SpaceBits)
			}
		}
	}
}

func TestSpaceCoversAllHosts(t *testing.T) {
	w := buildTest(t, 11)
	for _, h := range w.Hosts() {
		if uint64(h.Addr.V4()) >= w.SpaceSize() {
			t.Fatalf("host %v outside scan space 2^%d", h.Addr, w.SpaceBits)
		}
	}
	// The space should not be wildly oversized: at least 1/8 occupancy of
	// announced prefixes is implied by density; just check the space is
	// within 2 doublings of the last host.
	last := w.Hosts()[w.NumHosts()-1].Addr
	if w.SpaceSize() > 8*uint64(last.V4()) {
		t.Errorf("space 2^%d much larger than last host %v", w.SpaceBits, last)
	}
}

func TestSlash24sHaveMultipleHosts(t *testing.T) {
	w := buildTest(t, 12)
	by24 := map[ip.Prefix]int{}
	for _, h := range w.Hosts() {
		by24[h.Addr.Slash24()]++
	}
	multi, single := 0, 0
	for _, n := range by24 {
		if n >= 2 {
			multi++
		} else {
			single++
		}
	}
	if multi < single {
		t.Errorf("/24 support too thin: %d multi-host vs %d single-host /24s", multi, single)
	}
}


func TestCountryPopulationsFollowWeights(t *testing.T) {
	w, err := Build(context.Background(), Spec{Seed: 1, Scale: 0.0002})
	if err != nil {
		t.Fatal(err)
	}
	us := w.CountryHostCount("US", proto.HTTP)
	mw := w.CountryHostCount("MW", proto.HTTP)
	if us < 10*mw {
		t.Errorf("US HTTP hosts %d should dwarf Malawi %d", us, mw)
	}
	cn := w.CountryHostCount("CN", proto.HTTP)
	if cn == 0 {
		t.Error("China has no hosts")
	}
}

func TestASWeights(t *testing.T) {
	w := buildTest(t, 13)
	nums, weights := w.ASWeights()
	if len(nums) != len(weights) || len(nums) == 0 {
		t.Fatalf("ASWeights returned %d/%d", len(nums), len(weights))
	}
	var total uint64
	for _, wt := range weights {
		total += wt
	}
	if total != uint64(w.NumHosts()) {
		t.Errorf("AS weights sum %d != hosts %d", total, w.NumHosts())
	}
}

func TestInvalidSpecs(t *testing.T) {
	if _, err := Build(context.Background(), Spec{Seed: 1, Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Build(context.Background(), Spec{Seed: 1, Scale: 2}); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := Build(context.Background(), Spec{Seed: 1, Scale: 0.0001, HostDensity: 1.5}); err == nil {
		t.Error("density > 1 accepted")
	}
}

func TestSSHOverlapRoughlyHalf(t *testing.T) {
	w := buildTest(t, 14)
	onWeb, alone := 0, 0
	for _, h := range w.Hosts() {
		if !h.Services.Has(proto.SSH) {
			continue
		}
		if h.Services.Has(proto.HTTP) || h.Services.Has(proto.HTTPS) {
			onWeb++
		} else {
			alone++
		}
	}
	if onWeb == 0 || alone == 0 {
		t.Errorf("SSH overlap degenerate: onWeb=%d alone=%d", onWeb, alone)
	}
}

func BenchmarkBuildTestWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(context.Background(), TestSpec(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestChurnLifecycle(t *testing.T) {
	c := NewChurn(rngKeyForTest(), 0.10, 3)
	const n = 50000
	var never, single, full, partial int
	for i := 0; i < n; i++ {
		addr := ip.AddrFrom4(uint32(i) * 977)
		live := 0
		prevOff := false
		gap := false
		sawLive := false
		for trial := 0; trial < 3; trial++ {
			off := c.Offline(addr, trial)
			if !off {
				if sawLive && prevOff {
					gap = true // lifecycle must be contiguous
				}
				live++
				sawLive = true
			}
			prevOff = off
		}
		if gap {
			t.Fatalf("host %v has a non-contiguous lifecycle", addr)
		}
		switch live {
		case 0:
			never++
		case 1:
			single++
		case 3:
			full++
		default:
			partial++
		}
	}
	if never != 0 {
		t.Errorf("%d hosts never live; lifecycle clamps should prevent that", never)
	}
	if single == 0 || partial == 0 {
		t.Errorf("churn produced no single-trial (%d) or partial (%d) hosts", single, partial)
	}
	if full < n*3/4 {
		t.Errorf("only %d/%d hosts live all trials at rate 0.10", full, n)
	}
	// Stability: repeated queries agree.
	if c.Offline(ip.AddrFrom4(977), 1) != c.Offline(ip.AddrFrom4(977), 1) {
		t.Error("churn not deterministic")
	}
}

func TestChurnDisabled(t *testing.T) {
	var c *Churn
	if c.Offline(ip.AddrFrom4(5), 0) {
		t.Error("nil churn marked a host offline")
	}
	c = NewChurn(rngKeyForTest(), 0, 3)
	for trial := 0; trial < 3; trial++ {
		if c.Offline(ip.AddrFrom4(5), trial) {
			t.Error("zero-rate churn marked a host offline")
		}
	}
}

func rngKeyForTest() rng.Key { return rng.NewKey(123) }
