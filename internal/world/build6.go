package world

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/rng"
)

// Family names the address family a world (and the studies run over it)
// lives in. The zero value is IPv4, so every existing v4 build is
// unchanged.
type Family uint8

const (
	FamilyIPv4 Family = iota
	FamilyIPv6
)

// String returns the telemetry-label spelling of the family.
func (f Family) String() string {
	if f == FamilyIPv6 {
		return "ipv6"
	}
	return "ipv4"
}

// ParseFamily parses "ipv4"/"ipv6" (the -family flag values).
func ParseFamily(s string) (Family, error) {
	switch s {
	case "", "ipv4", "4":
		return FamilyIPv4, nil
	case "ipv6", "6":
		return FamilyIPv6, nil
	}
	return FamilyIPv4, fmt.Errorf("world: unknown address family %q", s)
}

// V6Spec configures the seeded IPv6 world. Unlike the v4 spec there is no
// notion of covering a scan space: announced space is a handful of routed
// /32s whose hosts cluster into dense /64 islands, mirroring how real v6
// deployments concentrate into subnets that hitlists discover (Richter et
// al.; see DESIGN.md § 12). The zero value is not valid; use DefaultV6Spec
// or TestV6Spec.
type V6Spec struct {
	// Seed drives all randomness in the world.
	Seed uint64
	// Providers is the number of routed /32s (default 6). Each gets its
	// own AS and registration country.
	Providers int
	// IslandsPerProvider is the number of dense /64 islands inside each
	// /32 (default 8).
	IslandsPerProvider int
	// HostsPerIsland is the number of live machines per island
	// (default 48), scattered over a small low-IID range so islands are
	// dense the way DHCPv6/static server subnets are.
	HostsPerIsland int
	// StaleFrac sizes the hitlist's stale entries — routed addresses with
	// no machine behind them, the decayed fraction every real hitlist
	// carries — as a fraction of the live host count (default 0.15).
	StaleFrac float64
	// UnroutedFrac sizes the hitlist's entries outside announced space
	// (default 0.10); the v6 analog of scanning into dark space.
	UnroutedFrac float64
}

// DefaultV6Spec returns the v6 world used by cmd/originscan -family=ipv6:
// ≈2.3k live hosts across 48 islands.
func DefaultV6Spec(seed uint64) V6Spec {
	return V6Spec{Seed: seed}
}

// TestV6Spec returns a small v6 world for unit tests (≈290 hosts).
func TestV6Spec(seed uint64) V6Spec {
	return V6Spec{Seed: seed, Providers: 3, IslandsPerProvider: 4, HostsPerIsland: 24}
}

func (s V6Spec) withDefaults() (V6Spec, error) {
	if s.Providers == 0 {
		s.Providers = 6
	}
	if s.IslandsPerProvider == 0 {
		s.IslandsPerProvider = 8
	}
	if s.HostsPerIsland == 0 {
		s.HostsPerIsland = 48
	}
	if s.StaleFrac == 0 {
		s.StaleFrac = 0.15
	}
	if s.UnroutedFrac == 0 {
		s.UnroutedFrac = 0.10
	}
	if s.Providers < 1 || s.Providers > 256 {
		return s, fmt.Errorf("world: providers %d out of [1, 256]", s.Providers)
	}
	if s.IslandsPerProvider < 1 || s.HostsPerIsland < 1 {
		return s, fmt.Errorf("world: islands/hosts per island must be positive")
	}
	if s.StaleFrac < 0 || s.UnroutedFrac < 0 {
		return s, fmt.Errorf("world: negative hitlist fractions")
	}
	return s, nil
}

// v6ProviderBase returns the /32 announced by provider i: 2a0i::/32-style
// well-separated documentation-flavored space.
func v6ProviderBase(i int) ip.Addr {
	return ip.AddrFrom128(uint64(0x2a00_0000|uint32(i)<<8)<<32, 0)
}

// v6SourceBase is where origin scanner source addresses live: inside
// 2001:db8::/32, deliberately outside every provider /32 so sources are
// unrouted space exactly like the v4 world's source block.
var v6SourceBase = ip.AddrFrom128(0x2001_0db8_5ca0_0000, 1)

// BuildV6 generates a seeded sparse IPv6 world: Providers routed /32s,
// each with an AS, a registration country, and IslandsPerProvider dense
// /64 islands of HostsPerIsland machines; plus a deterministic hitlist of
// live, stale, and unrouted addresses (Hitlist) that stands in for the
// external target lists real v6 scanning starts from. Generation is
// deterministic: the same spec yields the same world and hitlist, bit for
// bit.
func BuildV6(ctx context.Context, spec V6Spec) (*World, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, pipeline.Tag(pipeline.ErrBadConfig, err)
	}
	w := &World{
		Family:      FamilyIPv6,
		Spec:        Spec{Seed: spec.Seed},
		Key:         rng.NewKey(spec.Seed).Derive("world6"),
		Countries:   geo.NewRegistry(geo.DefaultCountries()),
		Routes:      asn.NewTable(),
		byAS:        make(map[asn.ASN][]int32),
		asHostCount: make(map[asn.ASN]uint64),
		profileASN:  make(map[string]asn.ASN),
	}

	// --- 1. Providers: one AS + /32 each, countries drawn from the
	// registry's weight distribution. ---
	countries := w.Countries.Countries()
	totalW := w.Countries.TotalWeight()
	provStream := w.Key.Derive("v6providers").Stream()
	type provider struct {
		as   *asn.AS
		base ip.Addr
	}
	provs := make([]provider, spec.Providers)
	for i := range provs {
		u := provStream.Float64() * totalW
		c := countries[len(countries)-1].Code
		for _, ci := range countries {
			if u -= ci.Weight; u <= 0 {
				c = ci.Code
				break
			}
		}
		base := v6ProviderBase(i)
		pfx := ip.MakePrefix(base, 32)
		a := &asn.AS{
			Number:   asn.ASN(200000 + i),
			Name:     fmt.Sprintf("%s v6 Provider %d", c, 200000+i),
			Country:  c,
			Kind:     genericKind(provStream, c),
			Prefixes: []ip.Prefix{pfx},
		}
		if err := w.Routes.Register(a); err != nil {
			return nil, err
		}
		if err := w.Countries.Assign(pfx, c); err != nil {
			return nil, err
		}
		provs[i] = provider{as: a, base: base}
	}
	if err := ctx.Err(); err != nil {
		return nil, pipeline.Canceled(err)
	}

	// --- 2. Islands and hosts. Each island is a /64 at a keyed random
	// subnet ID; its machines sit on low interface IDs drawn without
	// replacement from a window 4× the host count, so occupancy is ~25% —
	// dense enough that /64-level analyses have support, sparse enough
	// that stale hitlist entries have somewhere to point. ---
	for pi := range provs {
		p := &provs[pi]
		stream := w.Key.Derive("v6islands").Stream(uint64(p.as.Number))
		subnets := make(map[uint64]bool, spec.IslandsPerProvider)
		for len(subnets) < spec.IslandsPerProvider {
			subnets[stream.Uint64n(1<<32)] = true
		}
		ids := make([]uint64, 0, len(subnets))
		for s := range subnets {
			ids = append(ids, s)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, sub := range ids {
			islandHi := p.base.Hi() | sub
			window := 4 * spec.HostsPerIsland
			for _, off := range samplePerm(stream, window, spec.HostsPerIsland) {
				addr := ip.AddrFrom128(islandHi, uint64(off)+1)
				w.addHost(addr, v6Mask(stream))
			}
			w.asHostCount[p.as.Number] += uint64(spec.HostsPerIsland)
		}
		if err := ctx.Err(); err != nil {
			return nil, pipeline.Canceled(err)
		}
	}
	// Hosts were generated per island, not globally ordered; v6 worlds are
	// small enough to sort in place (no streaming build).
	sort.Slice(w.hosts, func(i, j int) bool { return w.hosts[i].Addr.Less(w.hosts[j].Addr) })

	// --- 3. Per-AS index, origins, destination index. ---
	for i := range w.hosts {
		if a, ok := w.Routes.Lookup(w.hosts[i].Addr); ok {
			w.byAS[a.Number] = append(w.byAS[a.Number], int32(i))
		}
	}
	w.Origins = origin.NewDirectory(v6SourceBase)
	w.fib = buildFIB6(w, w.hosts)

	// --- 4. Hitlist: every live host, plus stale entries (routed islands,
	// dead IIDs above the occupancy window) and unrouted entries, in a
	// keyed shuffle — the order a target list arrives in has nothing to do
	// with address order. ---
	hl := make([]ip.Addr, 0, w.numHosts)
	for i := range w.hosts {
		hl = append(hl, w.hosts[i].Addr)
	}
	hlStream := w.Key.Derive("v6hitlist").Stream()
	nStale := int(spec.StaleFrac * float64(w.numHosts))
	for i := 0; i < nStale; i++ {
		p := &provs[hlStream.Intn(len(provs))]
		// Reuse an existing island's /64 when possible so stale entries
		// sit beside live machines the way decayed hitlist entries do.
		hostIdx := w.byAS[p.as.Number]
		islandHi := p.base.Hi() | hlStream.Uint64n(1<<32)
		if len(hostIdx) > 0 {
			islandHi = w.hosts[hostIdx[hlStream.Intn(len(hostIdx))]].Addr.Hi()
		}
		hl = append(hl, ip.AddrFrom128(islandHi, 1<<16+hlStream.Uint64n(1<<20)))
	}
	nUnrouted := int(spec.UnroutedFrac * float64(w.numHosts))
	for i := 0; i < nUnrouted; i++ {
		hl = append(hl, ip.AddrFrom128(0x2001_0db8_0000_0000|hlStream.Uint64n(1<<32),
			hlStream.Uint64()))
	}
	hlStream.Shuffle(len(hl), func(i, j int) { hl[i], hl[j] = hl[j], hl[i] })
	w.hitlist = hl
	w.V6Spec = spec
	return w, nil
}

// v6Mask draws one host's service mask: web-heavy like the v4 worlds,
// with an SSH overlay.
func v6Mask(s *rng.SplitMix64) proto.Mask {
	var m proto.Mask
	switch u := s.Float64(); {
	case u < 0.40:
		m = proto.Bit(proto.HTTP) | proto.Bit(proto.HTTPS)
	case u < 0.70:
		m = proto.Bit(proto.HTTP)
	case u < 0.90:
		m = proto.Bit(proto.HTTPS)
	default:
		m = proto.Bit(proto.SSH)
	}
	if !m.Has(proto.SSH) && s.Float64() < 0.20 {
		m = m.With(proto.SSH)
	}
	return m
}

// Hitlist returns the world's scan target list (nil for v4 worlds): the
// deterministic stand-in for the externally gathered hitlists real IPv6
// scanning is driven by. The slice is shared; callers must not modify it.
func (w *World) Hitlist() []ip.Addr { return w.hitlist }
