package world

import (
	"context"
	"testing"

	"repro/internal/ip"
	"repro/internal/rng"
)

// TestFIBDifferentialFullSpace is the FIB's correctness proof: for every
// address in the scan space, the flat index must agree with the radix
// routing table, the radix geolocation database, and the host map it was
// built from. The fast path is always on, so any disagreement here would
// silently change scan results.
func TestFIBDifferentialFullSpace(t *testing.T) {
	for _, seed := range []uint64{3, 7, 2020} {
		w := buildTest(t, seed)
		if err := w.FIB().Validate(w); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestFIBDifferentialLargeSpaceSampled spot-checks a bigger world (too
// large to sweep exhaustively in a unit test) at deterministically sampled
// addresses: uniform random positions plus every host address and the
// boundaries of every announced prefix, where block-granularity bugs hide.
func TestFIBDifferentialLargeSpaceSampled(t *testing.T) {
	if testing.Short() {
		t.Skip("large world build")
	}
	w, err := Build(context.Background(), Spec{Seed: 11, Scale: 0.0005})
	if err != nil {
		t.Fatal(err)
	}
	if w.SpaceBits <= 16 {
		t.Fatalf("SpaceBits = %d, want a larger space than the exhaustive test covers", w.SpaceBits)
	}
	f := w.FIB()
	check := func(a ip.Addr) {
		t.Helper()
		if err := f.ValidateAddr(w, a); err != nil {
			t.Fatal(err)
		}
	}
	stream := rng.NewKey(99).Derive("fib-sample").Stream(0, 0)
	for i := 0; i < 200000; i++ {
		check(ip.AddrFrom4(uint32(stream.Uint64() & (w.SpaceSize() - 1))))
	}
	for _, h := range w.Hosts() {
		check(h.Addr)
	}
	for _, as := range w.Routes.All() {
		for _, pfx := range as.Prefixes {
			check(pfx.First())
			check(pfx.Last())
			check(pfx.First().Sub(1)) // the unrouted (or neighbouring) edge
			check(pfx.Last().Add(1))
		}
	}
}

// TestFIBRoutedMatchesResolve pins the cheap Routed accessor to the full
// Resolve path.
func TestFIBRoutedMatchesResolve(t *testing.T) {
	w := buildTest(t, 5)
	f := w.FIB()
	for a := uint64(0); a < w.SpaceSize(); a++ {
		addr := ip.AddrFrom4(uint32(a))
		if got, want := f.Routed(addr), f.Resolve(addr).Routed; got != want {
			t.Fatalf("Routed(%v) = %v, Resolve.Routed = %v", addr, got, want)
		}
	}
	// Outside the space: never routed, zero Dest.
	outside := ip.AddrFrom4(uint32(w.SpaceSize() + 12345))
	if f.Routed(outside) {
		t.Error("address outside the space reported routed")
	}
	if d := f.Resolve(outside); d != (Dest{}) {
		t.Errorf("Resolve outside the space = %+v, want zero", d)
	}
}

// TestChurnOfflineNilReceiver pins the documented contract that a nil
// *Churn means "no churn": the fabric calls Offline unconditionally on the
// probe hot path, so a nil receiver must answer false, not panic.
func TestChurnOfflineNilReceiver(t *testing.T) {
	var c *Churn
	for trial := 0; trial < 3; trial++ {
		if c.Offline(ip.MustParseAddr("10.0.0.1"), trial) {
			t.Fatalf("nil churn reported a host offline in trial %d", trial)
		}
	}
	// And a zero-rate model behaves the same as nil.
	zero := NewChurn(rng.NewKey(1), 0, 3)
	if zero.Offline(ip.MustParseAddr("10.0.0.1"), 1) {
		t.Error("zero-rate churn reported a host offline")
	}
}
