// Package world generates the deterministic synthetic Internet the study
// scans: countries, autonomous systems, announced prefixes, and hosts
// running HTTP/HTTPS/SSH services. The generated topology mirrors the
// structural skew of the real Internet as the paper reports it — a handful
// of very large providers, heavy-tailed AS sizes, country host populations
// proportional to the paper's tables — and includes a named profile AS for
// every actor the paper calls out (Alibaba, Telecom Italia, DXTL, EGI,
// Enzu, ABCDE Group, Akamai, Bekkoame, WebCentral, Cloudflare, ...).
package world

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/geo"
)

// Paper-reported mean ground-truth host counts (Appendix A, Table 4a ∪
// column means), which Scale multiplies.
const (
	PaperHTTPHosts  = 58_141_932
	PaperHTTPSHosts = 41_000_118
	PaperSSHHosts   = 19_649_192
)

// Spec configures world generation. The zero value is not valid; use
// DefaultSpec or TestSpec.
type Spec struct {
	// Seed drives all randomness in the world.
	Seed uint64
	// Scale is the fraction of the paper's Internet to generate
	// (1.0 ≈ 58M HTTP hosts). DefaultSpec uses 1/1000.
	Scale float64
	// HostDensity is the fraction of addresses inside announced
	// prefixes that are live machines (default 0.35, so a /24 holds
	// ~90 hosts and network-level /24 analysis has support).
	HostDensity float64
	// SSHWebOverlap is the fraction of SSH hosts co-located on web
	// machines (default 0.5).
	SSHWebOverlap float64
	// GenericASHosts scales the machine count of generic (non-profile)
	// ASes (default 25, producing a heavy-tailed size distribution with
	// a median near 10 machines and rare giants). Smaller values create
	// more ASes.
	GenericASHosts int
	// SpaceBits, when non-zero, forces the scan space to 2^SpaceBits
	// addresses instead of deriving it from the top of allocated space.
	// SpaceBits=32 sizes the world for a full-IPv4 sweep: the announced
	// prefixes stay wherever the allocator put them and the rest of the
	// space is unrouted, exactly like the real Internet's dark space.
	// Build fails if the forced space does not cover the allocation.
	SpaceBits uint8
	// StreamHosts builds the world without retaining the per-host slice
	// or the per-AS host index: placement streams each chunk into the
	// FIB and drops it. Hosts() and HostsInAS then return nil — the FIB
	// is the only host record — while NumHosts, HostCount, and ASWeights
	// still answer from counters maintained during placement. This is
	// what large-scale sweeps use; analyses that walk the host list need
	// a retained build.
	StreamHosts bool
}

// DefaultSpec returns the spec used by cmd/originscan: a 1/1000-scale
// Internet (≈58k HTTP, 41k HTTPS, 20k SSH hosts).
func DefaultSpec(seed uint64) Spec {
	return Spec{Seed: seed, Scale: 0.001}
}

// TestSpec returns a small world for unit tests (≈3k HTTP hosts).
func TestSpec(seed uint64) Spec {
	return Spec{Seed: seed, Scale: 0.00005}
}

func (s Spec) withDefaults() (Spec, error) {
	if s.Scale <= 0 || s.Scale > 1 {
		return s, fmt.Errorf("world: scale %v out of (0, 1]", s.Scale)
	}
	if s.HostDensity == 0 {
		s.HostDensity = 0.35
	}
	if s.HostDensity <= 0 || s.HostDensity > 1 {
		return s, fmt.Errorf("world: host density %v out of (0, 1]", s.HostDensity)
	}
	if s.SSHWebOverlap == 0 {
		s.SSHWebOverlap = 0.5
	}
	if s.GenericASHosts == 0 {
		s.GenericASHosts = 25
	}
	if s.SpaceBits > 32 {
		return s, fmt.Errorf("world: space bits %d out of [0, 32]", s.SpaceBits)
	}
	return s, nil
}

// Targets returns the per-protocol host-count targets for the spec.
func (s Spec) Targets() (http, https, ssh int) {
	return int(float64(PaperHTTPHosts) * s.Scale),
		int(float64(PaperHTTPSHosts) * s.Scale),
		int(float64(PaperSSHHosts) * s.Scale)
}

// GeoFrac assigns a fraction of a profile AS's address space to a country
// (hosting providers announce space that geolocates far from their
// registration, e.g. DXTL's South African and Bangladeshi ranges).
type GeoFrac struct {
	Country geo.Country
	Frac    float64
}

// Profile describes one named AS from the paper. Shares are fractions of
// the world's global per-protocol host counts.
type Profile struct {
	Name    string
	ASN     asn.ASN
	Country geo.Country // registration country
	Kind    asn.Kind

	HTTPShare, HTTPSShare, SSHShare float64

	// GeoMix distributes the AS's prefixes across countries; empty
	// means everything geolocates to Country.
	GeoMix []GeoFrac
}
