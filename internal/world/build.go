package world

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/rng"
)

// Host is one live machine in the world.
type Host struct {
	Addr     ip.Addr
	Services proto.Mask
}

// World is the generated synthetic Internet.
type World struct {
	Spec Spec
	// V6Spec is set instead of Spec for IPv6 worlds (BuildV6).
	V6Spec V6Spec
	// Family is the world's address family (zero value: IPv4).
	Family Family
	Key    rng.Key

	Countries *geo.Registry
	Routes    *asn.Table
	Origins   *origin.Directory

	hosts       []Host // sorted by address; nil when Spec.StreamHosts
	byAS        map[asn.ASN][]int32
	asHostCount map[asn.ASN]uint64 // hosts per AS, maintained during placement
	numHosts    int
	fib         *FIB // sparse per-/24 destination index (hot-path lookups)

	profileASN map[string]asn.ASN

	// SpaceBits is the number of address bits covering every announced
	// prefix and the scanner source block: the ZMap scan space. Zero for
	// IPv6 worlds, which are scanned by hitlist, not by space sweep.
	SpaceBits uint8

	// hitlist is the v6 world's scan target list (see Hitlist).
	hitlist []ip.Addr

	counts [proto.N]int
}

// hostAccum collects what the FIB needs to know about hosts as placement
// streams them chunk by chunk: the flat service-mask array and per-/24
// presence bitmaps, both in address order. It is the only per-host state a
// streaming build (Spec.StreamHosts) retains — one byte per host plus one
// 44-byte entry per occupied /24 — which is what lets worldgen run without
// materializing the full host slice or any address-keyed map.
type hostAccum struct {
	masks  []proto.Mask
	blocks []hostBlockAccum
	last   ip.Addr
}

// hostBlockAccum is the accumulated host presence of one /24.
type hostBlockAccum struct {
	block   uint32
	maskOff uint32
	present [4]uint64
}

// add records one host. Addresses must arrive in strictly increasing
// order; placement guarantees this (the allocator hands out prefixes
// bottom-up and each chunk is sorted before streaming).
func (h *hostAccum) add(addr ip.Addr, m proto.Mask) {
	if len(h.masks) > 0 && !h.last.Less(addr) {
		panic(fmt.Sprintf("world: host %v placed out of order after %v", addr, h.last))
	}
	h.last = addr
	b := addr.V4() >> 8
	if len(h.blocks) == 0 || h.blocks[len(h.blocks)-1].block != b {
		h.blocks = append(h.blocks, hostBlockAccum{block: b, maskOff: uint32(len(h.masks))})
	}
	lo := uint(addr.V4()) & 0xff
	h.blocks[len(h.blocks)-1].present[lo>>6] |= 1 << (lo & 63)
	h.masks = append(h.masks, m)
}

// allocator hands out aligned, disjoint prefixes from the bottom of the
// address space.
type allocator struct {
	next uint64
}

// alloc returns a prefix covering at least want addresses (rounded up to a
// power of two, base aligned to its size).
func (a *allocator) alloc(want uint64) (ip.Prefix, error) {
	size := uint64(1)
	bits := uint8(32)
	for size < want {
		size <<= 1
		bits--
	}
	// Align.
	base := (a.next + size - 1) &^ (size - 1)
	if base+size > 1<<32 {
		return ip.Prefix{}, fmt.Errorf("world: address space exhausted")
	}
	a.next = base + size
	return ip.MakePrefix(ip.AddrFrom4(uint32(base)), bits), nil
}

// portion is one (AS, country) slice of hosts to place.
type portion struct {
	as      *asn.AS
	country geo.Country
	nHTTP   int
	nHTTPS  int
	nSSH    int
}

// Build generates a world from the spec. Generation is deterministic: the
// same spec yields the same world, bit for bit. The context is checked
// between generation phases and per placed portion, so canceling a large
// build returns promptly with pipeline.ErrCanceled; spec validation
// failures are tagged pipeline.ErrBadConfig.
func Build(ctx context.Context, spec Spec) (*World, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, pipeline.Tag(pipeline.ErrBadConfig, err)
	}
	w := &World{
		Spec:        spec,
		Key:         rng.NewKey(spec.Seed).Derive("world"),
		Countries:   geo.NewRegistry(geo.DefaultCountries()),
		Routes:      asn.NewTable(),
		byAS:        make(map[asn.ASN][]int32),
		asHostCount: make(map[asn.ASN]uint64),
		profileASN:  make(map[string]asn.ASN),
	}
	totalHTTP, totalHTTPS, totalSSH := spec.Targets()

	// --- 1. Profile portions. ---
	var portions []portion
	profiles := DefaultProfiles()
	profByCountry := map[geo.Country][3]int{} // host mass per country from profiles
	for i := range profiles {
		p := &profiles[i]
		a := &asn.AS{Number: p.ASN, Name: p.Name, Country: p.Country, Kind: p.Kind}
		w.profileASN[p.Name] = p.ASN
		for _, gm := range p.geoMix() {
			nH := scaleCount(float64(totalHTTP)*p.HTTPShare*gm.Frac, 3)
			nS := scaleCount(float64(totalHTTPS)*p.HTTPSShare*gm.Frac, 2)
			nSSH := scaleCount(float64(totalSSH)*p.SSHShare*gm.Frac, 0)
			portions = append(portions, portion{as: a, country: gm.Country, nHTTP: nH, nHTTPS: nS, nSSH: nSSH})
			acc := profByCountry[gm.Country]
			acc[0] += nH
			acc[1] += nS
			acc[2] += nSSH
			profByCountry[gm.Country] = acc
		}
	}

	// --- 2. Generic AS portions filling each country's budget. ---
	countries := w.Countries.Countries()
	totalW := w.Countries.TotalWeight()
	// Generic ASNs count up from 100000 but must never collide with a
	// profile ASN: a collision makes Routes.Register drop one of the two
	// ASes, leaving its hosts unannounced (buildFIB then fails on the
	// unpainted block). Small worlds never reach the first profile number
	// above 100000 (132827), so skipping keeps them bit-identical; large
	// worlds (Scale >= ~0.07, where genASN crosses it) need the skip.
	profileNums := make(map[asn.ASN]bool, len(profiles))
	for i := range profiles {
		profileNums[profiles[i].ASN] = true
	}
	genASN := asn.ASN(100000)
	nextGenASN := func() asn.ASN {
		for profileNums[genASN] {
			genASN++
		}
		n := genASN
		genASN++
		return n
	}
	for _, c := range countries {
		share := c.Weight / totalW
		remH := int(float64(totalHTTP)*share) - profByCountry[c.Code][0]
		remS := int(float64(totalHTTPS)*share) - profByCountry[c.Code][1]
		remSSH := int(float64(totalSSH)*share) - profByCountry[c.Code][2]
		stream := w.Key.Derive("generic").Stream(uint64(len(c.Code)), uint64(c.Code[0])<<8|uint64(c.Code[1]))
		for remH > 0 || remS > 0 || remSSH > 0 {
			// AS size: heavy-tailed. Most ASes are small (the real
			// Internet's AS size distribution has a long light tail
			// of tiny networks), with occasional giants beyond the
			// named profile ASes.
			u := stream.Float64()
			f := 0.15 + 5*u*u*u*u*u
			if stream.Float64() < 0.02 {
				f *= 25
			}
			m := int(float64(spec.GenericASHosts) * f)
			if m < 8 {
				m = 8
			}
			tot := remH + remS + remSSH
			nH := min(remH, max(0, m*remH/max(tot, 1)))
			nS := min(remS, max(0, m*remS/max(tot, 1)))
			nSSH := min(remSSH, max(0, m-nH-nS))
			if nH == 0 && nS == 0 && nSSH == 0 {
				// Remainders too small to split: dump them.
				nH, nS, nSSH = remH, remS, remSSH
			}
			num := nextGenASN()
			a := &asn.AS{
				Number:  num,
				Name:    fmt.Sprintf("%s Network %d", c.Code, num),
				Country: c.Code,
				Kind:    genericKind(stream, c.Code),
			}
			portions = append(portions, portion{as: a, country: c.Code, nHTTP: nH, nHTTPS: nS, nSSH: nSSH})
			remH -= nH
			remS -= nS
			remSSH -= nSSH
		}
	}

	// --- 3. Place hosts, streaming chunk by chunk into the FIB host
	// accumulator. Each chunk (at most a /16) is generated, sorted by
	// address, streamed, and dropped; the allocator hands out prefixes
	// bottom-up, so the concatenation of sorted chunks is globally sorted
	// and no post-placement sort or address-keyed index is needed. ---
	var alloc allocator
	var acc hostAccum
	for i := range portions {
		if err := ctx.Err(); err != nil {
			return nil, pipeline.Canceled(err)
		}
		if err := w.place(&alloc, &portions[i], &acc); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, pipeline.Canceled(err)
	}

	// --- 4. Register ASes (prefixes accumulated during placement). ---
	for i := range portions {
		p := &portions[i]
		if _, done := w.Routes.Get(p.as.Number); done {
			continue
		}
		if err := w.Routes.Register(p.as); err != nil {
			return nil, err
		}
	}

	// --- 5. Scanner source block, outside announced space. ---
	srcPrefix, err := alloc.alloc(128)
	if err != nil {
		return nil, err
	}
	w.Origins = origin.NewDirectory(srcPrefix.First())

	// --- 6. Scan space size: forced by the spec (SpaceBits=32 sizes the
	// full-IPv4 sweep) or derived from the top of allocated space. ---
	if spec.SpaceBits != 0 {
		if alloc.next > uint64(1)<<spec.SpaceBits {
			return nil, pipeline.Tag(pipeline.ErrBadConfig, fmt.Errorf(
				"world: forced space 2^%d does not cover allocated space (top %d)", spec.SpaceBits, alloc.next))
		}
		w.SpaceBits = spec.SpaceBits
	} else {
		w.SpaceBits = bitsFor(alloc.next)
	}

	// --- 7. Per-AS host index (hosts are sorted by construction). A
	// streaming build retains no host slice, so the index stays empty. ---
	for i := range w.hosts {
		if a, ok := w.Routes.Lookup(w.hosts[i].Addr); ok {
			w.byAS[a.Number] = append(w.byAS[a.Number], int32(i))
		}
	}

	// --- 8. Sparse destination index over the finished topology. ---
	w.fib = buildFIB(w, &acc)
	return w, nil
}

// place allocates prefixes for one portion and creates its hosts,
// streaming each chunk into the accumulator in address order.
func (w *World) place(alloc *allocator, p *portion, acc *hostAccum) error {
	web := max(p.nHTTP, p.nHTTPS)
	both := min(p.nHTTP, p.nHTTPS)
	sshOnWeb := int(w.Spec.SSHWebOverlap * float64(p.nSSH))
	if sshOnWeb > web {
		sshOnWeb = web
	}
	machines := web + (p.nSSH - sshOnWeb)
	if machines == 0 {
		return nil
	}

	// Masks, in machine order.
	bigger := proto.HTTP
	if p.nHTTPS > p.nHTTP {
		bigger = proto.HTTPS
	}
	mask := func(i int) proto.Mask {
		var m proto.Mask
		switch {
		case i < both:
			m = proto.Bit(proto.HTTP) | proto.Bit(proto.HTTPS)
		case i < web:
			m = proto.Bit(bigger)
		default:
			m = proto.Bit(proto.SSH)
		}
		// SSH overlay on web machines: spread evenly.
		if i < web && sshOnWeb > 0 {
			stride := web / sshOnWeb
			if stride == 0 {
				stride = 1
			}
			if i%stride == 0 && i/stride < sshOnWeb {
				m = m.With(proto.SSH)
			}
		}
		return m
	}

	// Allocate chunks of at most /16 and scatter machines inside.
	placed := 0
	const maxChunk = 1 << 16
	for placed < machines {
		left := machines - placed
		want := uint64(float64(left) / w.Spec.HostDensity)
		if want > maxChunk {
			want = maxChunk
		}
		if want < 8 {
			want = 8
		}
		pfx, err := alloc.alloc(want)
		if err != nil {
			return err
		}
		p.as.Prefixes = append(p.as.Prefixes, pfx)
		if err := w.Countries.Assign(pfx, p.country); err != nil {
			return err
		}
		capacity := int(float64(pfx.NumAddrs()) * w.Spec.HostDensity)
		if capacity < 1 {
			capacity = 1
		}
		n := min(left, capacity)
		// Scatter: keyed permutation of offsets within the prefix. Masks
		// are assigned in scatter order — the order `placed` advances in —
		// BEFORE the chunk is sorted, so each address keeps exactly the
		// mask the unsorted generator gave it and worlds stay bit-identical
		// across the streaming refactor.
		stream := w.Key.Derive("scatter").Stream(uint64(p.as.Number), uint64(pfx.Base.V4()))
		offsets := samplePerm(stream, int(pfx.NumAddrs()), n)
		chunk := make([]Host, 0, n)
		for _, off := range offsets {
			addr := pfx.Nth(uint64(off))
			chunk = append(chunk, Host{Addr: addr, Services: mask(placed)})
			placed++
		}
		sort.Slice(chunk, func(i, j int) bool { return chunk[i].Addr.Less(chunk[j].Addr) })
		for _, h := range chunk {
			acc.add(h.Addr, h.Services)
			w.addHost(h.Addr, h.Services)
		}
		w.asHostCount[p.as.Number] += uint64(len(chunk))
	}
	return nil
}

// samplePerm returns n distinct values in [0, size) via a partial
// Fisher-Yates on a dense index slice.
func samplePerm(s *rng.SplitMix64, size, n int) []int {
	if n > size {
		n = size
	}
	idx := make([]int, size)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		j := i + s.Intn(size-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

func (w *World) addHost(addr ip.Addr, m proto.Mask) {
	if !w.Spec.StreamHosts {
		w.hosts = append(w.hosts, Host{Addr: addr, Services: m})
	}
	w.numHosts++
	for _, p := range proto.All() {
		if m.Has(p) {
			w.counts[p]++
		}
	}
}

// scaleCount rounds a fractional host count, enforcing a minimum for
// non-zero shares so small-scale worlds keep every profile observable.
func scaleCount(f float64, minNonZero int) int {
	if f <= 0 {
		return 0
	}
	n := int(f + 0.5)
	if n < minNonZero {
		n = minNonZero
	}
	return n
}

// genericKind draws an AS kind appropriate for the country.
func genericKind(s *rng.SplitMix64, c geo.Country) asn.Kind {
	u := s.Float64()
	switch {
	case u < 0.40:
		return asn.KindISP
	case u < 0.70:
		return asn.KindHosting
	case u < 0.80:
		return asn.KindCloud
	case u < 0.86:
		return asn.KindAcademic
	case u < 0.90:
		return asn.KindConsumer
	case u < 0.94:
		return asn.KindFinancial
	case u < 0.97:
		return asn.KindGovernment
	default:
		return asn.KindMedia
	}
}

func bitsFor(n uint64) uint8 {
	b := uint8(0)
	for (uint64(1) << b) < n {
		b++
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
