package world

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/proto"
)

// FIB is the flat forwarding/annotation table the scan hot path reads: one
// packed entry per /24 of the scan space resolving any address to its
// routedness, announcing AS, geolocated country, and (via a per-/24 host
// presence bitmap ranking into a flat side array) the service mask of the
// host living there. It is precomputed once at Build time from the same
// prefix lists that feed the radix structures, so a destination lookup on
// the probe path costs two array indexes and a popcount instead of two
// radix walks and a map hash.
//
// The radix tables (World.Routes, World.Countries) and the host map remain
// the reference representation; Validate proves the FIB agrees with them
// for every address in the space, and the world accessors (ASOf, CountryOf,
// Lookup) answer from the FIB.
type FIB struct {
	blocks    []fibBlock
	mixed     []fibAddr    // per-address overflow for non-uniform /24s
	ases      []*asn.AS    // interned AS list, sorted by AS number
	countries []geo.Country // interned country list, first-seen order
	masks     []proto.Mask // service masks of all hosts, in address order
	spaceBits uint8
}

// Sentinel values for fibBlock.asIdx.
const (
	fibUnrouted = -1 // the whole /24 is unannounced space
	fibMixed    = -2 // AS/country vary inside the /24: consult FIB.mixed
)

// fibBlock is the FIB's entry for one /24 of the scan space.
type fibBlock struct {
	// present has bit i set when base+i is a live host; the rank of a set
	// bit indexes the block's span of FIB.masks.
	present [4]uint64
	// maskOff is the offset of this block's first host in FIB.masks
	// (meaningless when the block has no hosts).
	maskOff uint32
	// asIdx is the uniform AS index for every address in the block, or
	// fibUnrouted / fibMixed.
	asIdx int32
	// ctryIdx is the uniform country index, or -1 for no geolocation.
	ctryIdx int32
	// mixedOff is the block's offset into FIB.mixed (256 entries per
	// mixed block); valid only when asIdx == fibMixed.
	mixedOff int32
}

// fibAddr is the per-address overflow entry of a mixed block.
type fibAddr struct {
	as   int32 // index into FIB.ases, or fibUnrouted
	ctry int32 // index into FIB.countries, or -1
}

// Dest is the FIB's resolution of one destination address. It is returned
// by value so the probe hot path stays allocation-free.
type Dest struct {
	// AS is the announcing AS (nil when the address is unrouted).
	AS *asn.AS
	// Country is the geolocation ("" when the address has none).
	Country geo.Country
	// Services is the host's service mask (0 when no host lives here).
	Services proto.Mask
	// Host reports whether a live machine owns the address.
	Host bool
	// Routed reports whether the address is inside announced space.
	Routed bool
}

// buildFIB constructs the FIB from the world's AS prefix lists, country
// assignments, and sorted host slice. Construction is deterministic: ASes
// are walked in number order and prefixes in announcement order, so the
// same world yields the same FIB layout bit for bit.
func buildFIB(w *World) *FIB {
	space := uint64(1) << w.SpaceBits
	nBlocks := (space + 255) >> 8
	f := &FIB{
		blocks:    make([]fibBlock, nBlocks),
		ases:      w.Routes.All(),
		spaceBits: w.SpaceBits,
	}
	for i := range f.blocks {
		f.blocks[i].asIdx = fibUnrouted
		f.blocks[i].ctryIdx = -1
	}

	ctryIdxOf := make(map[geo.Country]int32)
	internCountry := func(c geo.Country, ok bool) int32 {
		if !ok {
			return -1
		}
		if i, seen := ctryIdxOf[c]; seen {
			return i
		}
		i := int32(len(f.countries))
		f.countries = append(f.countries, c)
		ctryIdxOf[c] = i
		return i
	}

	// Paint blocks. Prefixes of /24 or shorter cover whole blocks; finer
	// prefixes (the generator allocates chunks as small as 8 addresses)
	// share their /24 with other prefixes or unrouted gaps, so those
	// blocks get per-address entries first and collapse back to uniform
	// when every address agrees.
	fine := make(map[uint32]*[256]fibAddr)
	for ai, a := range f.ases {
		for _, pfx := range a.Prefixes {
			ci := internCountry(w.Countries.Lookup(pfx.First()))
			if pfx.Bits <= 24 {
				for b := uint64(pfx.Base) >> 8; b <= uint64(pfx.Last())>>8; b++ {
					f.blocks[b].asIdx = int32(ai)
					f.blocks[b].ctryIdx = ci
				}
				continue
			}
			bi := uint32(pfx.Base) >> 8
			pa := fine[bi]
			if pa == nil {
				pa = new([256]fibAddr)
				for i := range pa {
					pa[i] = fibAddr{as: fibUnrouted, ctry: -1}
				}
				fine[bi] = pa
			}
			lo := uint32(pfx.Base) & 0xff
			for off := uint64(0); off < pfx.NumAddrs(); off++ {
				pa[lo+uint32(off)] = fibAddr{as: int32(ai), ctry: ci}
			}
		}
	}
	fineIdx := make([]uint32, 0, len(fine))
	for bi := range fine {
		fineIdx = append(fineIdx, bi)
	}
	sort.Slice(fineIdx, func(i, j int) bool { return fineIdx[i] < fineIdx[j] })
	for _, bi := range fineIdx {
		pa := fine[bi]
		uniform := true
		for i := 1; i < 256; i++ {
			if pa[i] != pa[0] {
				uniform = false
				break
			}
		}
		blk := &f.blocks[bi]
		if uniform {
			blk.asIdx = pa[0].as
			blk.ctryIdx = pa[0].ctry
			continue
		}
		blk.asIdx = fibMixed
		blk.mixedOff = int32(len(f.mixed))
		f.mixed = append(f.mixed, pa[:]...)
	}

	// Hosts: presence bits plus the flat mask array. Hosts are sorted by
	// address, so each block's masks are contiguous and maskOff is just
	// the index of the block's first host.
	f.masks = make([]proto.Mask, len(w.hosts))
	for i, h := range w.hosts {
		blk := &f.blocks[uint32(h.Addr)>>8]
		if blk.present == ([4]uint64{}) {
			blk.maskOff = uint32(i)
		}
		lo := uint(h.Addr) & 0xff
		blk.present[lo>>6] |= 1 << (lo & 63)
		f.masks[i] = h.Services
	}
	return f
}

// Resolve answers everything the fabric needs to know about a destination
// in one pass: two array indexes plus a popcount when a host is present.
// Addresses outside the scan space resolve to the zero Dest.
func (f *FIB) Resolve(a ip.Addr) Dest {
	bi := uint64(a) >> 8
	if bi >= uint64(len(f.blocks)) {
		return Dest{}
	}
	blk := &f.blocks[bi]
	var d Dest
	ai, ci := blk.asIdx, blk.ctryIdx
	if ai == fibMixed {
		e := &f.mixed[uint32(blk.mixedOff)+uint32(a&0xff)]
		ai, ci = e.as, e.ctry
	}
	if ai >= 0 {
		d.AS = f.ases[ai]
		d.Routed = true
	}
	if ci >= 0 {
		d.Country = f.countries[ci]
	}
	lo := uint(a) & 0xff
	word := lo >> 6
	bit := uint64(1) << (lo & 63)
	if blk.present[word]&bit != 0 {
		rank := bits.OnesCount64(blk.present[word] & (bit - 1))
		for w := uint(0); w < word; w++ {
			rank += bits.OnesCount64(blk.present[w])
		}
		d.Services = f.masks[blk.maskOff+uint32(rank)]
		d.Host = true
	}
	return d
}

// Routed reports whether the address is inside announced space: the routed
// bit the sweep's short-circuit consults before paying for a probe.
func (f *FIB) Routed(a ip.Addr) bool {
	bi := uint64(a) >> 8
	if bi >= uint64(len(f.blocks)) {
		return false
	}
	blk := &f.blocks[bi]
	if blk.asIdx == fibMixed {
		return f.mixed[uint32(blk.mixedOff)+uint32(a&0xff)].as >= 0
	}
	return blk.asIdx >= 0
}

// Validate walks the whole scan space comparing the FIB against the radix
// and map structures it was built from: Routes.Lookup for routedness and
// AS, Countries.Lookup for geolocation, and the host index for service
// masks. Any disagreement is a world-construction bug.
func (f *FIB) Validate(w *World) error {
	for a := uint64(0); a < w.SpaceSize(); a++ {
		if err := f.ValidateAddr(w, ip.Addr(a)); err != nil {
			return err
		}
	}
	return nil
}

// ValidateAddr checks the FIB against the reference structures for one
// address.
func (f *FIB) ValidateAddr(w *World, addr ip.Addr) error {
	d := f.Resolve(addr)
	as, routed := w.Routes.Lookup(addr)
	if d.Routed != routed {
		return fmt.Errorf("world: fib %v routed=%v, radix routed=%v", addr, d.Routed, routed)
	}
	if routed && d.AS != as {
		return fmt.Errorf("world: fib %v AS=%v, radix AS=%v", addr, d.AS.Number, as.Number)
	}
	country, hasCountry := w.Countries.Lookup(addr)
	if (d.Country != "") != hasCountry || d.Country != country && hasCountry {
		return fmt.Errorf("world: fib %v country=%q, radix country=%q (present=%v)", addr, d.Country, country, hasCountry)
	}
	i, isHost := w.hostIdx[addr]
	if d.Host != isHost {
		return fmt.Errorf("world: fib %v host=%v, index host=%v", addr, d.Host, isHost)
	}
	if isHost && d.Services != w.hosts[i].Services {
		return fmt.Errorf("world: fib %v services=%v, index services=%v", addr, d.Services, w.hosts[i].Services)
	}
	if !isHost && d.Services != 0 {
		return fmt.Errorf("world: fib %v services=%v for a non-host", addr, d.Services)
	}
	return nil
}
