package world

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/proto"
)

// FIB is the sparse forwarding/annotation table the scan hot path reads:
// a packed entry per *painted* /24 of the scan space resolving any address
// to its routedness, announcing AS, geolocated country, and (via a per-/24
// host presence bitmap ranking into a flat side array) the service mask of
// the host living there. It is precomputed once at Build time from the
// same prefix lists that feed the radix structures, so a destination
// lookup on the probe path costs a bitmap test, a popcount rank, and an
// array index instead of two radix walks and a map hash.
//
// Sparsity is what makes the SpaceBits=32 world affordable: full IPv4 has
// 16.7M /24 blocks but only the announced ones carry information, so the
// FIB keeps a directory bitmap (one bit per /24, 2 MiB for the full
// space), a per-word rank prefix (1 MiB), and a dense array of only the
// painted blocks. An absent directory bit IS the answer — unrouted, no
// country, no host — with no struct behind it.
//
// The radix tables (World.Routes, World.Countries) and the host slice
// remain the reference representation; Validate proves the FIB agrees with
// them for every address in the space, and the world accessors (ASOf,
// CountryOf, Lookup) answer from the FIB.
type FIB struct {
	dir       []uint64      // directory: bit b set when /24 block b is painted
	dirRank   []uint32      // exclusive prefix popcount of dir per word
	blocks    []fibBlock    // painted blocks only, in block-number order
	mixed     []fibAddr     // per-address overflow for non-uniform /24s
	ases      []*asn.AS     // interned AS list, sorted by AS number
	countries []geo.Country // interned country list, first-seen order
	masks     []proto.Mask  // service masks of all hosts, in address order
	spaceBits uint8

	// IPv6 side: announced space is a handful of variable-length prefixes
	// over a 2^128 universe, so instead of per-/24 blocks the v6 resolver
	// binary-searches sorted disjoint spans and a sorted host column. See
	// fib6.go.
	spans6 []fib6Span
	hosts6 ip.AddrSlice
	masks6 []proto.Mask
}

// Sentinel values for fibBlock.asIdx.
const (
	fibUnrouted = -1 // the whole /24 is unannounced space
	fibMixed    = -2 // AS/country vary inside the /24: consult FIB.mixed
)

// fibBlock is the FIB's entry for one /24 of the scan space.
type fibBlock struct {
	// present has bit i set when base+i is a live host; the rank of a set
	// bit indexes the block's span of FIB.masks.
	present [4]uint64
	// maskOff is the offset of this block's first host in FIB.masks
	// (meaningless when the block has no hosts).
	maskOff uint32
	// asIdx is the uniform AS index for every address in the block, or
	// fibUnrouted / fibMixed.
	asIdx int32
	// ctryIdx is the uniform country index, or -1 for no geolocation.
	ctryIdx int32
	// mixedOff is the block's offset into FIB.mixed (256 entries per
	// mixed block); valid only when asIdx == fibMixed.
	mixedOff int32
}

// fibAddr is the per-address overflow entry of a mixed block.
type fibAddr struct {
	as   int32 // index into FIB.ases, or fibUnrouted
	ctry int32 // index into FIB.countries, or -1
}

// Dest is the FIB's resolution of one destination address. It is returned
// by value so the probe hot path stays allocation-free.
type Dest struct {
	// AS is the announcing AS (nil when the address is unrouted).
	AS *asn.AS
	// Country is the geolocation ("" when the address has none).
	Country geo.Country
	// Services is the host's service mask (0 when no host lives here).
	Services proto.Mask
	// Host reports whether a live machine owns the address.
	Host bool
	// Routed reports whether the address is inside announced space.
	Routed bool
}

// buildFIB constructs the sparse FIB from the world's AS prefix lists,
// country assignments, and the host accumulator filled during placement.
// Construction is deterministic: ASes are walked in number order and
// prefixes in announcement order, so the same world yields the same FIB
// layout bit for bit. Two passes: the first marks every painted /24 in the
// directory bitmap and sizes the dense block array from the ranks; the
// second paints annotations into the dense blocks. Unpainted space — the
// overwhelming majority at SpaceBits=32 — costs one directory bit.
func buildFIB(w *World, hosts *hostAccum) *FIB {
	space := uint64(1) << w.SpaceBits
	nBlocks := (space + 255) >> 8
	nWords := (nBlocks + 63) >> 6
	f := &FIB{
		dir:       make([]uint64, nWords),
		ases:      w.Routes.All(),
		spaceBits: w.SpaceBits,
	}

	// Pass 1: directory bits for every block any prefix touches.
	for _, a := range f.ases {
		for _, pfx := range a.Prefixes {
			for b := uint64(pfx.Base.V4()) >> 8; b <= uint64(pfx.Last().V4())>>8; b++ {
				f.dir[b>>6] |= 1 << (b & 63)
			}
		}
	}
	f.dirRank = make([]uint32, nWords)
	total := uint32(0)
	for i, wd := range f.dir {
		f.dirRank[i] = total
		total += uint32(bits.OnesCount64(wd))
	}
	f.blocks = make([]fibBlock, total)
	for i := range f.blocks {
		f.blocks[i].asIdx = fibUnrouted
		f.blocks[i].ctryIdx = -1
	}

	ctryIdxOf := make(map[geo.Country]int32)
	internCountry := func(c geo.Country, ok bool) int32 {
		if !ok {
			return -1
		}
		if i, seen := ctryIdxOf[c]; seen {
			return i
		}
		i := int32(len(f.countries))
		f.countries = append(f.countries, c)
		ctryIdxOf[c] = i
		return i
	}

	// Pass 2: paint blocks. Prefixes of /24 or shorter cover whole blocks;
	// finer prefixes (the generator allocates chunks as small as 8
	// addresses) share their /24 with other prefixes or unrouted gaps, so
	// those blocks get per-address entries first and collapse back to
	// uniform when every address agrees.
	fine := make(map[uint32]*[256]fibAddr)
	for ai, a := range f.ases {
		for _, pfx := range a.Prefixes {
			ci := internCountry(w.Countries.Lookup(pfx.First()))
			if pfx.Bits <= 24 {
				for b := uint64(pfx.Base.V4()) >> 8; b <= uint64(pfx.Last().V4())>>8; b++ {
					blk := &f.blocks[f.blockIndex(b)]
					blk.asIdx = int32(ai)
					blk.ctryIdx = ci
				}
				continue
			}
			bi := pfx.Base.V4() >> 8
			pa := fine[bi]
			if pa == nil {
				pa = new([256]fibAddr)
				for i := range pa {
					pa[i] = fibAddr{as: fibUnrouted, ctry: -1}
				}
				fine[bi] = pa
			}
			lo := pfx.Base.V4() & 0xff
			for off := uint64(0); off < pfx.NumAddrs(); off++ {
				pa[lo+uint32(off)] = fibAddr{as: int32(ai), ctry: ci}
			}
		}
	}
	fineIdx := make([]uint32, 0, len(fine))
	for bi := range fine {
		fineIdx = append(fineIdx, bi)
	}
	sort.Slice(fineIdx, func(i, j int) bool { return fineIdx[i] < fineIdx[j] })
	for _, bi := range fineIdx {
		pa := fine[bi]
		uniform := true
		for i := 1; i < 256; i++ {
			if pa[i] != pa[0] {
				uniform = false
				break
			}
		}
		blk := &f.blocks[f.blockIndex(uint64(bi))]
		if uniform {
			blk.asIdx = pa[0].as
			blk.ctryIdx = pa[0].ctry
			continue
		}
		blk.asIdx = fibMixed
		blk.mixedOff = int32(len(f.mixed))
		f.mixed = append(f.mixed, pa[:]...)
	}

	// Hosts: presence bits plus the flat mask array, accumulated per /24
	// during placement (hosts arrive in address order, so each block's
	// masks are contiguous and maskOff is the block's first host). Every
	// host lives inside an announced prefix, so its block is painted.
	f.masks = hosts.masks
	for i := range hosts.blocks {
		hb := &hosts.blocks[i]
		blk := &f.blocks[f.blockIndex(uint64(hb.block))]
		blk.present = hb.present
		blk.maskOff = hb.maskOff
	}
	return f
}

// blockIndex returns the dense index of /24 block bi, or -1 when the block
// is unpainted: a directory word bounds check, a bit test, and a popcount
// rank.
func (f *FIB) blockIndex(bi uint64) int32 {
	word := bi >> 6
	if word >= uint64(len(f.dir)) {
		return -1
	}
	wd := f.dir[word]
	bit := uint64(1) << (bi & 63)
	if wd&bit == 0 {
		return -1
	}
	return int32(f.dirRank[word]) + int32(bits.OnesCount64(wd&(bit-1)))
}

// Resolve answers everything the fabric needs to know about a destination
// in one pass: a directory rank, an array index, and a popcount when a
// host is present. Addresses outside the scan space — and inside it but in
// unpainted blocks — resolve to the zero Dest.
func (f *FIB) Resolve(a ip.Addr) Dest {
	if !a.Is4() {
		return f.resolve6(a)
	}
	idx := f.blockIndex(uint64(a.V4()) >> 8)
	if idx < 0 {
		return Dest{}
	}
	return f.resolveIn(&f.blocks[idx], a)
}

// resolveIn resolves an address within its already-located block.
func (f *FIB) resolveIn(blk *fibBlock, a ip.Addr) Dest {
	var d Dest
	ai, ci := blk.asIdx, blk.ctryIdx
	if ai == fibMixed {
		e := &f.mixed[uint32(blk.mixedOff)+a.V4()&0xff]
		ai, ci = e.as, e.ctry
	}
	if ai >= 0 {
		d.AS = f.ases[ai]
		d.Routed = true
	}
	if ci >= 0 {
		d.Country = f.countries[ci]
	}
	lo := uint(a.V4()) & 0xff
	word := lo >> 6
	bit := uint64(1) << (lo & 63)
	if blk.present[word]&bit != 0 {
		rank := bits.OnesCount64(blk.present[word] & (bit - 1))
		for w := uint(0); w < word; w++ {
			rank += bits.OnesCount64(blk.present[w])
		}
		d.Services = f.masks[blk.maskOff+uint32(rank)]
		d.Host = true
	}
	return d
}

// ResolveBatch resolves a whole batch of destinations into out
// (len(out) == len(dst)), reusing the directory rank when consecutive
// addresses share a /24 — the block-locality win the batched sweep kernel
// is shaped around.
func (f *FIB) ResolveBatch(dst []ip.Addr, out []Dest) {
	lastBi := uint64(1) << 63 // sentinel: no block cached
	var lastBlk *fibBlock
	for i, a := range dst {
		if !a.Is4() {
			out[i] = f.resolve6(a)
			continue
		}
		bi := uint64(a.V4()) >> 8
		if bi != lastBi {
			lastBi = bi
			lastBlk = nil
			if idx := f.blockIndex(bi); idx >= 0 {
				lastBlk = &f.blocks[idx]
			}
		}
		if lastBlk == nil {
			out[i] = Dest{}
			continue
		}
		out[i] = f.resolveIn(lastBlk, a)
	}
}

// Routed reports whether the address is inside announced space: the routed
// bit the sweep's short-circuit consults before paying for a probe. An
// unpainted block is unrouted by construction.
func (f *FIB) Routed(a ip.Addr) bool {
	if !a.Is4() {
		return f.routed6(a)
	}
	idx := f.blockIndex(uint64(a.V4()) >> 8)
	if idx < 0 {
		return false
	}
	blk := &f.blocks[idx]
	if blk.asIdx == fibMixed {
		return f.mixed[uint32(blk.mixedOff)+a.V4()&0xff].as >= 0
	}
	return blk.asIdx >= 0
}

// RoutedBatch implements zmap.BatchRoutability's contract for the fabric:
// fill routed[i] with Routed(dst[i]) for the whole batch, caching the last
// block decode so consecutive same-/24 addresses cost one bit test.
func (f *FIB) RoutedBatch(dst []ip.Addr, routed []bool) {
	lastBi := uint64(1) << 63 // sentinel: no block cached
	lastRouted := false
	var lastBlk *fibBlock
	for i, a := range dst {
		if !a.Is4() {
			routed[i] = f.routed6(a)
			continue
		}
		bi := uint64(a.V4()) >> 8
		if bi != lastBi {
			lastBi = bi
			lastBlk = nil
			lastRouted = false
			if idx := f.blockIndex(bi); idx >= 0 {
				lastBlk = &f.blocks[idx]
				lastRouted = lastBlk.asIdx >= 0
			}
		}
		if lastBlk != nil && lastBlk.asIdx == fibMixed {
			routed[i] = f.mixed[uint32(lastBlk.mixedOff)+a.V4()&0xff].as >= 0
			continue
		}
		routed[i] = lastRouted
	}
}

// NumBlocks returns the number of painted /24 blocks — the dense entries
// behind the directory bitmap. By construction it equals the number of
// distinct /24s any announced prefix touches; the streaming-worldgen audit
// recomputes that count from the prefix lists and checks the two agree.
func (f *FIB) NumBlocks() int { return len(f.blocks) }

// MemFootprint returns the FIB's resident size in bytes by component sum —
// the number the ≤2 GiB full-IPv4 budget in DESIGN.md is checked against.
// At SpaceBits=32 the directory and rank arrays are 2 MiB + 1 MiB fixed;
// everything else scales with painted blocks, not with the space.
func (f *FIB) MemFootprint() uint64 {
	const blockBytes = 48 // [4]uint64 + 4×4-byte fields
	const spanBytes = 40  // two 16-byte Addrs + 2×4-byte indices
	return uint64(len(f.dir))*8 +
		uint64(len(f.dirRank))*4 +
		uint64(len(f.blocks))*blockBytes +
		uint64(len(f.mixed))*8 +
		uint64(len(f.ases))*8 +
		uint64(len(f.masks)) +
		uint64(len(f.spans6))*spanBytes +
		uint64(len(f.hosts6))*16 +
		uint64(len(f.masks6))
}

// Validate walks the whole scan space comparing the FIB against the radix
// and map structures it was built from: Routes.Lookup for routedness and
// AS, Countries.Lookup for geolocation, and the host index for service
// masks. Any disagreement is a world-construction bug.
func (f *FIB) Validate(w *World) error {
	for a := uint64(0); a < w.SpaceSize(); a++ {
		if err := f.ValidateAddr(w, ip.AddrFrom4(uint32(a))); err != nil {
			return err
		}
	}
	return nil
}

// ValidateAddr checks the FIB against the reference structures for one
// address.
func (f *FIB) ValidateAddr(w *World, addr ip.Addr) error {
	d := f.Resolve(addr)
	as, routed := w.Routes.Lookup(addr)
	if d.Routed != routed {
		return fmt.Errorf("world: fib %v routed=%v, radix routed=%v", addr, d.Routed, routed)
	}
	if routed && d.AS != as {
		return fmt.Errorf("world: fib %v AS=%v, radix AS=%v", addr, d.AS.Number, as.Number)
	}
	country, hasCountry := w.Countries.Lookup(addr)
	if (d.Country != "") != hasCountry || d.Country != country && hasCountry {
		return fmt.Errorf("world: fib %v country=%q, radix country=%q (present=%v)", addr, d.Country, country, hasCountry)
	}
	if w.hosts == nil {
		// Streaming build: the host slice was not retained, so the FIB's
		// presence bits are the only host record and there is no reference
		// to differ from.
		return nil
	}
	i := sort.Search(len(w.hosts), func(i int) bool { return !w.hosts[i].Addr.Less(addr) })
	isHost := i < len(w.hosts) && w.hosts[i].Addr == addr
	if d.Host != isHost {
		return fmt.Errorf("world: fib %v host=%v, index host=%v", addr, d.Host, isHost)
	}
	if isHost && d.Services != w.hosts[i].Services {
		return fmt.Errorf("world: fib %v services=%v, index services=%v", addr, d.Services, w.hosts[i].Services)
	}
	if !isHost && d.Services != 0 {
		return fmt.Errorf("world: fib %v services=%v for a non-host", addr, d.Services)
	}
	return nil
}
