//go:build race

package world

// raceEnabled: see race_off.go.
const raceEnabled = true
