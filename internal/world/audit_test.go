package world

import (
	"context"
	"testing"

	"repro/internal/ip"
	"repro/internal/proto"
	"repro/internal/rng"
)

// TestStreamingFullScaleAudit builds the paper-scale world (Scale 1.0,
// ≈58M HTTP hosts) in streaming mode and audits the placement counters the
// streaming path relies on — with no retained host slice, these counters
// and the FIB are the only record of what was placed, so they must be
// provably consistent with each other and with the spec's analytic
// targets. Skipped in -short mode (the build takes ≈1–2 minutes and a few
// GiB) and under the race detector (single-goroutine build, no extra
// coverage, ~10× slower).
func TestStreamingFullScaleAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale world build in -short mode")
	}
	if raceEnabled {
		t.Skip("full-scale world build under the race detector")
	}
	spec := Spec{Seed: 2020, Scale: 1.0, StreamHosts: true}
	w, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if w.Hosts() != nil {
		t.Fatal("streaming build retained a host slice")
	}

	// Host counters vs the analytic targets: placement apportions each
	// protocol's paper-reported total across profile shares and generic
	// ASes, so per-protocol counts must land within rounding slack of
	// Scale × paper totals.
	httpT, httpsT, sshT := spec.Targets()
	for _, tc := range []struct {
		p      proto.Protocol
		target int
	}{{proto.HTTP, httpT}, {proto.HTTPS, httpsT}, {proto.SSH, sshT}} {
		got := w.HostCount(tc.p)
		lo, hi := tc.target*99/100, tc.target*101/100
		if got < lo || got > hi {
			t.Errorf("%v host count %d outside ±1%% of target %d", tc.p, got, tc.target)
		}
	}
	// Machines are fewer than service instances (SSH co-locates on web
	// hosts) but at least the largest single-protocol population.
	if n := w.NumHosts(); n < httpT || n > httpT+httpsT+sshT {
		t.Errorf("NumHosts %d outside [%d, %d]", n, httpT, httpT+httpsT+sshT)
	}

	// AS placement counters: the per-AS machine counts (what ASWeights
	// answers from, and what burst-outage sampling weights by) must sum to
	// exactly the machine total — a streaming build has no host index to
	// recount from, so a drifting counter would silently skew analyses.
	nums, weights := w.ASWeights()
	if len(nums) != w.Routes.Len() {
		t.Fatalf("ASWeights covers %d ASes, table has %d", len(nums), w.Routes.Len())
	}
	var sum uint64
	for _, wt := range weights {
		sum += wt
	}
	if sum != uint64(w.NumHosts()) {
		t.Errorf("Σ per-AS machine counts = %d, NumHosts = %d", sum, w.NumHosts())
	}

	// FIB block count: the directory must paint exactly the distinct /24s
	// the announced prefixes touch — recomputed here from the prefix lists
	// the FIB was built from.
	painted := make(map[uint64]struct{})
	for _, a := range w.Routes.All() {
		for _, pfx := range a.Prefixes {
			for b := uint64(pfx.Base.V4()) >> 8; b <= uint64(pfx.Last().V4())>>8; b++ {
				painted[b] = struct{}{}
			}
		}
	}
	if got := w.FIB().NumBlocks(); got != len(painted) {
		t.Errorf("FIB paints %d blocks, prefixes touch %d distinct /24s", got, len(painted))
	}

	// Sampled FIB validation: the full-space walk Validate does is too slow
	// at this scale, so spot-check a pseudorandom sample plus the space
	// edges against the radix reference structures.
	stream := rng.NewKey(spec.Seed).Derive("audit-sample").Stream(0)
	for i := 0; i < 1<<16; i++ {
		addr := ip.AddrFrom4(uint32(stream.Uint64() % w.SpaceSize()))
		if err := w.FIB().ValidateAddr(w, addr); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range []ip.Addr{ip.AddrFrom4(0), ip.AddrFrom4(uint32(w.SpaceSize() - 1))} {
		if err := w.FIB().ValidateAddr(w, a); err != nil {
			t.Fatal(err)
		}
	}

	// Footprint sanity: the FIB must stay within the same order as the
	// DESIGN budget (≤2 GiB for full IPv4) — a regression that starts
	// retaining per-address state for uniform blocks would blow far past
	// this.
	if fp := w.FIB().MemFootprint(); fp == 0 || fp > 2<<30 {
		t.Errorf("FIB footprint %d bytes outside (0, 2 GiB]", fp)
	}
}
