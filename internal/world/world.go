package world

import (
	"fmt"
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/proto"
)

// Hosts returns all hosts sorted by address, or nil for a streaming build
// (Spec.StreamHosts), which retains no host slice. The slice is shared;
// callers must not modify it.
func (w *World) Hosts() []Host { return w.hosts }

// NumHosts returns the number of distinct live machines. It answers from a
// placement-time counter, so it works in streaming builds too.
func (w *World) NumHosts() int { return w.numHosts }

// HostCount returns the number of hosts running the given protocol.
func (w *World) HostCount(p proto.Protocol) int { return w.counts[p] }

// Lookup returns the service mask of the host at addr.
func (w *World) Lookup(addr ip.Addr) (proto.Mask, bool) {
	d := w.fib.Resolve(addr)
	return d.Services, d.Host
}

// ASOf returns the AS announcing addr.
func (w *World) ASOf(addr ip.Addr) (*asn.AS, bool) {
	d := w.fib.Resolve(addr)
	return d.AS, d.Routed
}

// CountryOf returns the geolocation of addr.
func (w *World) CountryOf(addr ip.Addr) (geo.Country, bool) {
	d := w.fib.Resolve(addr)
	return d.Country, d.Country != ""
}

// FIB returns the world's flat destination index. The fabric resolves probe
// destinations through it directly.
func (w *World) FIB() *FIB { return w.fib }

// Resolve answers routedness, AS, country, and host services for an address
// in one flat-index pass.
func (w *World) Resolve(addr ip.Addr) Dest { return w.fib.Resolve(addr) }

// ProfileASN returns the AS number of a named profile.
func (w *World) ProfileASN(name string) (asn.ASN, bool) {
	n, ok := w.profileASN[name]
	return n, ok
}

// MustProfileASN returns the AS number of a named profile, panicking if the
// profile does not exist (programming error).
func (w *World) MustProfileASN(name string) asn.ASN {
	n, ok := w.profileASN[name]
	if !ok {
		panic(fmt.Sprintf("world: no profile %q", name))
	}
	return n
}

// ProfileNames returns all profile names sorted.
func (w *World) ProfileNames() []string {
	out := make([]string, 0, len(w.profileASN))
	for name := range w.profileASN {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HostsInAS returns the indices (into Hosts()) of the AS's hosts, or nil
// for a streaming build (no host slice, no index).
func (w *World) HostsInAS(n asn.ASN) []int32 { return w.byAS[n] }

// ASHostCount returns the number of hosts in the AS running p.
func (w *World) ASHostCount(n asn.ASN, p proto.Protocol) int {
	c := 0
	for _, i := range w.byAS[n] {
		if w.hosts[i].Services.Has(p) {
			c++
		}
	}
	return c
}

// ASWeights returns all AS numbers and their total host counts, in AS
// order; used to weight burst-outage sampling and analyses. The counts
// come from placement-time counters, so streaming builds answer too.
func (w *World) ASWeights() ([]asn.ASN, []uint64) {
	ases := w.Routes.All()
	nums := make([]asn.ASN, len(ases))
	weights := make([]uint64, len(ases))
	for i, a := range ases {
		nums[i] = a.Number
		weights[i] = w.asHostCount[a.Number]
	}
	return nums, weights
}

// SpaceSize returns the number of addresses in the scan space.
func (w *World) SpaceSize() uint64 { return 1 << w.SpaceBits }

// CountryHostCount returns the number of hosts running p geolocated to c.
func (w *World) CountryHostCount(c geo.Country, p proto.Protocol) int {
	n := 0
	for _, h := range w.hosts {
		if !h.Services.Has(p) {
			continue
		}
		if hc, ok := w.CountryOf(h.Addr); ok && hc == c {
			n++
		}
	}
	return n
}
