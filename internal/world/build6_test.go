package world

import (
	"context"
	"testing"

	"repro/internal/proto"
)

func buildV6(t *testing.T, spec V6Spec) *World {
	t.Helper()
	w, err := BuildV6(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestBuildV6Deterministic pins that the same spec yields the same world:
// hosts, hitlist order, and AS table.
func TestBuildV6Deterministic(t *testing.T) {
	a := buildV6(t, TestV6Spec(42))
	b := buildV6(t, TestV6Spec(42))
	if a.NumHosts() != b.NumHosts() {
		t.Fatalf("host counts differ: %d vs %d", a.NumHosts(), b.NumHosts())
	}
	ha, hb := a.Hitlist(), b.Hitlist()
	if len(ha) != len(hb) {
		t.Fatalf("hitlist lengths differ: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i] != hb[i] {
			t.Fatalf("hitlist diverges at %d: %v vs %v", i, ha[i], hb[i])
		}
	}
	if a.Routes.Len() != b.Routes.Len() {
		t.Fatalf("AS counts differ: %d vs %d", a.Routes.Len(), b.Routes.Len())
	}
}

// TestBuildV6Shape checks the world's structure: the configured number of
// providers and hosts, all-v6 addresses, and a hitlist holding every live
// host plus the stale and unrouted tails.
func TestBuildV6Shape(t *testing.T) {
	spec := TestV6Spec(7)
	w := buildV6(t, spec)
	if w.Family != FamilyIPv6 {
		t.Fatalf("family = %v, want ipv6", w.Family)
	}
	wantHosts := spec.Providers * spec.IslandsPerProvider * spec.HostsPerIsland
	if w.NumHosts() != wantHosts {
		t.Fatalf("%d hosts, want %d", w.NumHosts(), wantHosts)
	}
	if w.Routes.Len() != spec.Providers {
		t.Fatalf("%d ASes, want %d", w.Routes.Len(), spec.Providers)
	}
	if n := w.HostCount(proto.HTTP); n == 0 || n > wantHosts {
		t.Fatalf("HTTP host count %d out of range", n)
	}

	// Default stale/unrouted fractions: 15% + 10% on top of live hosts.
	hl := w.Hitlist()
	want := wantHosts + int(0.15*float64(wantHosts)) + int(0.10*float64(wantHosts))
	if len(hl) != want {
		t.Fatalf("hitlist has %d entries, want %d", len(hl), want)
	}
	onList := map[string]bool{}
	for _, a := range hl {
		if a.Is4() {
			t.Fatalf("hitlist entry %v is IPv4", a)
		}
		onList[a.String()] = true
	}
	fib := w.FIB()
	live, unrouted := 0, 0
	for i := range w.hosts {
		a := w.hosts[i].Addr
		if !onList[a.String()] {
			t.Fatalf("live host %v missing from hitlist", a)
		}
		if !fib.Routed(a) {
			t.Fatalf("live host %v not routed", a)
		}
		live++
	}
	for _, a := range hl {
		if !fib.Routed(a) {
			unrouted++
		}
	}
	if unrouted == 0 {
		t.Fatal("no unrouted hitlist entries; want a dark-space tail")
	}
	if live != wantHosts {
		t.Fatalf("checked %d live hosts, want %d", live, wantHosts)
	}
}

// TestBuildV6SeedsDiffer checks different seeds give different worlds (the
// hitlist shuffle and island placement must actually consume the seed).
func TestBuildV6SeedsDiffer(t *testing.T) {
	a := buildV6(t, TestV6Spec(1))
	b := buildV6(t, TestV6Spec(2))
	ha, hb := a.Hitlist(), b.Hitlist()
	if len(ha) == len(hb) {
		same := true
		for i := range ha {
			if ha[i] != hb[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical hitlists")
		}
	}
}

// TestParseFamily pins the -family flag values.
func TestParseFamily(t *testing.T) {
	for s, want := range map[string]Family{
		"": FamilyIPv4, "ipv4": FamilyIPv4, "4": FamilyIPv4,
		"ipv6": FamilyIPv6, "6": FamilyIPv6,
	} {
		got, err := ParseFamily(s)
		if err != nil || got != want {
			t.Errorf("ParseFamily(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFamily("ipv5"); err == nil {
		t.Error("ParseFamily accepted ipv5")
	}
}
