package results

// Dual-stack spill coverage: the ORSEG002 segment format carries 128-bit
// addresses, refuses the retired 32-bit ORSEG001 format loudly, and
// round-trips IPv6 records bit-exactly through spill → merge → seal and
// through the JSON encoding (v4 rows keep the historical bare-integer
// form; v6 rows are canonical-text strings).

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
)

// TestOpenSegmentRejectsOldMagic pins the upgrade story for spill
// directories: a segment written by the retired 32-bit ORSEG001 format
// must fail with an explicit version error — never decode (the address
// column width changed, so decoding would corrupt every row) and never
// report a generic bad-magic (the file WAS one of ours).
func TestOpenSegmentRejectsOldMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "old.seg")
	if err := os.WriteFile(path, []byte("ORSEG001\x00\x00\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := openSegment(path)
	if err == nil {
		t.Fatal("openSegment accepted an ORSEG001 segment")
	}
	if !strings.Contains(err.Error(), "ORSEG001") || !strings.Contains(err.Error(), "no longer readable") {
		t.Errorf("old-magic error %q does not name the retired version", err)
	}

	// A genuinely foreign file still gets the generic bad-magic error.
	alien := filepath.Join(dir, "alien.seg")
	if err := os.WriteFile(alien, []byte("NOTASEGM"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openSegment(alien); err == nil || !strings.Contains(err.Error(), "bad segment magic") {
		t.Errorf("foreign magic error = %v, want bad segment magic", err)
	}
}

// TestOpenSegmentRejectsWrongWidth checks the explicit address-width field:
// a current-magic segment claiming a different width is refused before any
// frame is decoded.
func TestOpenSegmentRejectsWrongWidth(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w4.seg")
	if err := os.WriteFile(path, append([]byte(segMagic), 4), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := openSegment(path)
	if err == nil || !strings.Contains(err.Error(), "address width") {
		t.Errorf("wrong-width error = %v, want address-width mismatch", err)
	}
}

// v6RandRecord draws records from a mixed v4/v6 pool so segment frames
// interleave both families and the merge path orders across them.
func v6RandRecord(rng *rand.Rand) HostRecord {
	r := randRecord(rng)
	if rng.Intn(2) == 0 {
		r.Addr = ip.AddrFrom128(0x2a00_0000_0000_0000|uint64(rng.Intn(32)), uint64(1+rng.Intn(512)))
	} else {
		r.Addr = ip.AddrFrom4(uint32(rng.Intn(2048)))
	}
	if r.L7 && rng.Intn(8) == 0 {
		r.Banner = strings.Repeat("v6banner-", 1+rng.Intn(20))
	}
	return r
}

// TestSpillDifferentialDualStack replays one mixed-family record stream
// into the in-memory store and spill stores at adversarial budgets: rows
// must match exactly and the sealed JSON bytes must be identical, proving
// the 128-bit segment encode/decode and the k-way merge order v6 keys the
// same way the in-memory sort does.
func TestSpillDifferentialDualStack(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		var script [][]HostRecord
		for i := 0; i < 40; i++ {
			n := 1 + rng.Intn(60)
			batch := make([]HostRecord, n)
			for j := range batch {
				batch[j] = v6RandRecord(rng)
			}
			script = append(script, batch)
		}

		mem := NewScanResult(origin.AU, proto.HTTP, 0)
		for _, b := range script {
			mem.AddBatch(b)
		}
		memJSON := sealedJSON(t, mem)

		for _, budget := range []int64{1, 4 * spillRowBytes, 64 << 10} {
			dir := t.TempDir()
			sp, err := NewSpilledScanResult(origin.AU, proto.HTTP, 0, 0, SpillConfig{Dir: dir, Budget: budget})
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range script {
				sp.AddBatch(b)
			}
			if d := mem.DiffAgainst(sp); d != "" {
				t.Fatalf("seed %d budget %d: %s", seed, budget, d)
			}
			if got := sealedJSON(t, sp); !bytes.Equal(got, memJSON) {
				t.Fatalf("seed %d budget %d: sealed JSON bytes differ", seed, budget)
			}
		}
	}
}

// TestJSONRoundTripIPv6 pins the dual-form record encoding: v6 addresses
// come back from ReadJSON exactly, and the emitted text really is a quoted
// canonical string (not a number), so external consumers can tell the
// families apart.
func TestJSONRoundTripIPv6(t *testing.T) {
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	v6 := ip.AddrFrom128(0x2a00_0001_0000_0000, 0x2b)
	s.Add(HostRecord{Addr: ip.AddrFrom4(10), ProbeMask: 0b01, L7: true})
	s.Add(HostRecord{Addr: v6, ProbeMask: 0b11, Attempts: 2})
	raw := sealedJSON(t, s)
	if !bytes.Contains(raw, []byte(`["`+v6.String()+`",`)) {
		t.Fatalf("JSON %s does not contain quoted v6 address %q", raw, v6.String())
	}
	ds, err := ReadJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	got := ds.MustScan(origin.AU, proto.HTTP, 0)
	r, ok := got.Get(v6)
	if !ok || r.ProbeMask != 0b11 || r.Attempts != 2 {
		t.Fatalf("v6 record after round trip = %+v, %v", r, ok)
	}
	if _, ok := got.Get(ip.AddrFrom4(10)); !ok {
		t.Fatal("v4 record lost in round trip")
	}
}
