package results

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/zgrab"
)

// Spill-to-disk store strategy. A ScanResult normally keeps its columns in
// RAM until Seal; at Scale ≥ 0.1 a single (origin, proto, trial) scan is
// hundreds of MiB of columns, and a full study holds many such scans in
// flight. The spill store bounds the append path instead: records buffer in
// the ordinary columns up to a memory budget, then the buffered run is
// stable-sorted, deduplicated keep-last, and flushed to disk as a sorted
// binary columnar segment file. Seal becomes a k-way external merge over
// the on-disk segments plus the live run.
//
// Determinism argument (why the sealed bytes are identical to the
// in-memory path at any threshold): the in-memory Seal is a stable sort
// followed by keep-last dedup, i.e. for every address the record of the
// LAST Add wins. The spill store cuts the same Add sequence into
// consecutive runs. Within a run, flush applies the same stable sort +
// keep-last, so a run keeps its own last Add per address. Across runs, the
// merge resolves an address appearing in several runs by keeping the
// record from the newest run (the highest run sequence number; the live
// run is newest of all). Newest-run-wins composed with last-within-run is
// exactly global last-Add-wins, so the merged columns equal the in-memory
// sealed columns row for row — and the JSON encoder is a pure function of
// the sealed columns and the scan stats.
//
// Segment file layout ("sorted binary columnar segment"): an 8-byte magic,
// a u8 address width (bytes per address; 16 since ORSEG002 — addresses are
// the 128-bit dual-stack form), then a sequence of frames until EOF. Each
// frame holds up to spillFrameRows records as little-endian column
// sections:
//
//	magic   "ORSEG002"
//	width   u8 (= 16)
//	frame:  u32 rows, u32 bannerBytes,
//	        rows×u64 addrHi, rows×u64 addrLo,
//	        rows×u8 probeMask, rows×u8 flags, rows×u8 fail,
//	        rows×u32 attempts, rows×u64 t, rows×u32 bannerLen, bannerData
//
// A reader refuses other magics — including the retired 32-bit ORSEG001 —
// and other widths loudly: a spill directory can survive a binary upgrade,
// and decoding a 4-byte address column as 16-byte keys would corrupt every
// record past the first row, so a version mismatch must be an error, never a guess.
//
// Frames keep both ends streaming: the writer never seeks (a merge's row
// count is unknown until it finishes), and a reader decodes one frame at a
// time into small column buffers, so an open segment costs O(frame) memory
// regardless of its size.

const (
	segMagic = "ORSEG002"
	// segMagicV1 is the retired 32-bit-address format, recognized only to
	// fail with a version error instead of a generic bad-magic one.
	segMagicV1 = "ORSEG001"
	// segAddrWidth is the bytes-per-address the current format encodes.
	segAddrWidth = 16
	// spillFrameRows caps rows per segment frame: the unit of reader
	// memory and writer buffering.
	spillFrameRows = 4096
	// spillMergeFanIn caps segments merged in one pass (bounds open file
	// handles and reader buffers); more segments merge hierarchically,
	// oldest group first, which preserves run ordering.
	spillMergeFanIn = 64
	// spillRowBytes estimates the in-memory cost of one buffered record
	// (column elements plus the banner string header); the banner bytes
	// themselves are accounted separately. Used for both the budget
	// accounting and the capacity-hint clamp.
	spillRowBytes = 40
	// DefaultSpillBudget is the per-result live-run budget when
	// SpillConfig.Budget is unset: large enough that Scale ≤ 0.001
	// studies never spill, small enough that a Scale 0.1 scan stays
	// bounded.
	DefaultSpillBudget = 64 << 20
)

// SpillConfig configures a spill-backed ScanResult.
type SpillConfig struct {
	// Dir is the directory segment files are created under (one
	// temporary subdirectory per result). It must exist.
	Dir string
	// Budget is the live-run memory budget in bytes: once the buffered
	// columns exceed it, the run is flushed to a segment. <= 0 means
	// DefaultSpillBudget. A tiny budget (even 1) is valid and only
	// costs more segments — the sealed bytes do not change.
	Budget int64
}

func (c SpillConfig) budget() int64 {
	if c.Budget <= 0 {
		return DefaultSpillBudget
	}
	return c.Budget
}

// maxRows is the capacity-hint clamp: the largest row count worth
// pre-allocating columns for under the budget (one extra row so the
// threshold check, which runs after the append, has room).
func (c SpillConfig) maxRows() int {
	n := c.budget()/spillRowBytes + 1
	if n > int64(1)<<31 {
		n = int64(1) << 31
	}
	return int(n)
}

// SpillStats reports a spill-backed result's disk and merge activity.
type SpillStats struct {
	// Segments is the number of segment files flushed over the result's
	// lifetime (they are deleted again as merges consume them).
	Segments int
	// SpilledBytes is the total bytes written to segment files.
	SpilledBytes int64
	// MergeFanIn is the fan-in of the final Seal merge: on-disk segments
	// plus the live run. 0 when the result never spilled.
	MergeFanIn int
	// MergePasses counts merge passes (1 unless hierarchical merging
	// was needed because segments exceeded the fan-in cap).
	MergePasses int
	// MergeDuration is the wall time of the Seal merge.
	MergeDuration time.Duration
	// FlushDuration is the cumulative wall time spent writing segment
	// files (run flushes; merge passes are in MergeDuration). With
	// MergeDuration it attributes spill cost: wide merges vs slow disk.
	FlushDuration time.Duration
}

// spillState is the spill store's bookkeeping hung off a ScanResult.
type spillState struct {
	cfg       SpillConfig
	dir       string // per-result temp dir, created on first flush
	liveBytes int64  // estimated bytes buffered in the live columns
	segments  []spillSegment
	err       error // sticky first I/O failure; disables further spilling
	stats     SpillStats
}

// spillSegment is one on-disk sorted run. Sequence order is the slice
// order: segments[i] is older than segments[i+1], and the live run is
// newer than all of them.
type spillSegment struct {
	path string
	rows int
}

// NewSpilledScanResult returns a result whose append path spills to disk:
// records buffer in the columns until cfg's budget, then flush as sorted
// segment files under cfg.Dir, and Seal externally merges them. The
// capacity hint n is clamped by the budget (see NewScanResultSized), so a
// mis-sized hint cannot pre-allocate past the memory ceiling. The sealed
// result is byte-identical to an in-memory result fed the same records.
//
// Spill-backed results report I/O failures: prefer SealErr over Seal (which
// panics on merge failure), and call Discard to delete segments when the
// scan is abandoned.
func NewSpilledScanResult(o origin.ID, p proto.Protocol, trial int, n int, cfg SpillConfig) (*ScanResult, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("results: spill dir not set")
	}
	if fi, err := os.Stat(cfg.Dir); err != nil {
		return nil, fmt.Errorf("results: spill dir: %w", err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("results: spill dir %s is not a directory", cfg.Dir)
	}
	if max := cfg.maxRows(); n > max {
		n = max
	}
	s := NewScanResultSized(o, p, trial, n)
	s.spill = &spillState{cfg: cfg}
	return s, nil
}

// SpillStats returns the result's spill activity. Zero for in-memory
// results.
func (s *ScanResult) SpillStats() SpillStats {
	if s.spill == nil {
		return SpillStats{}
	}
	return s.spill.stats
}

// SealErr is Seal with an error return: it merges any on-disk segments
// with the live run, deletes the segments, and seals the columns. For a
// spill-backed result this is the preferred form — Seal panics where
// SealErr reports. A sticky I/O failure from an earlier flush is returned
// here even though the columns themselves seal correctly (the failed run
// stayed buffered in RAM), so operators learn the spill device broke.
func (s *ScanResult) SealErr() error {
	if s.spill == nil {
		s.sealMem()
		return nil
	}
	if !s.sealed {
		if len(s.spill.segments) > 0 {
			if err := s.mergeSpilled(); err != nil {
				return err
			}
		}
		s.sealMem()
		// Estimate what the sealed columns occupy so a later Add →
		// flush cycle accounts for re-spilling them as one run.
		s.spill.liveBytes = s.liveColumnBytes()
		s.spill.cleanupDir()
	}
	return s.spill.err
}

// Discard deletes the result's on-disk segments without sealing. The
// result remains usable (the live columns are untouched), but spilled
// records are gone; use it only when abandoning the scan.
func (s *ScanResult) Discard() error {
	if s.spill == nil {
		return nil
	}
	s.spill.segments = nil
	if s.spill.dir == "" {
		return nil
	}
	err := os.RemoveAll(s.spill.dir)
	s.spill.dir = ""
	return err
}

func (sp *spillState) cleanupDir() {
	for _, seg := range sp.segments {
		os.Remove(seg.path)
	}
	sp.segments = nil
	if sp.dir != "" {
		os.Remove(sp.dir) // best-effort: empty after segment removal
		sp.dir = ""
	}
}

// liveColumnBytes estimates the memory the current columns occupy, in the
// same units the Add-path accounting uses.
func (s *ScanResult) liveColumnBytes() int64 {
	b := int64(len(s.addrs)) * spillRowBytes
	for _, banner := range s.banner {
		b += int64(len(banner))
	}
	return b
}

// maybeSpill flushes the live run once the budget is exceeded. Called
// from Add; a no-op for in-memory results (s.spill == nil is checked by
// the caller).
func (s *ScanResult) maybeSpill() {
	sp := s.spill
	if sp.err != nil || sp.liveBytes < sp.cfg.budget() || len(s.addrs) == 0 {
		return
	}
	if err := s.flushRun(); err != nil {
		// Sticky degradation: stop spilling, keep buffering in RAM so no
		// record is lost, and surface the failure at SealErr.
		sp.err = err
	}
}

// flushRun sorts + dedups the live columns (the same stable keep-last the
// in-memory Seal applies) and writes them as a new segment, then resets
// the columns for the next run.
func (s *ScanResult) flushRun() error {
	sp := s.spill
	if sp.dir == "" {
		dir, err := os.MkdirTemp(sp.cfg.Dir, fmt.Sprintf("scan-%d-%d-%d-*", uint8(s.Origin), uint8(s.Proto), s.Trial))
		if err != nil {
			return fmt.Errorf("results: creating spill dir: %w", err)
		}
		sp.dir = dir
	}
	if !s.addrs.IsSorted() {
		sort.Stable((*byAddr)(s))
		s.dedup()
	}
	path := filepath.Join(sp.dir, fmt.Sprintf("run-%06d.seg", sp.stats.Segments))
	flushBegin := time.Now()
	n, bytes, err := writeSegment(path, func(emit func(spillRow)) {
		for i := range s.addrs {
			emit(s.rowAt(i))
		}
	})
	if err != nil {
		os.Remove(path)
		return err
	}
	sp.segments = append(sp.segments, spillSegment{path: path, rows: n})
	sp.stats.Segments++
	sp.stats.SpilledBytes += bytes
	sp.stats.FlushDuration += time.Since(flushBegin)
	s.resetColumns()
	sp.liveBytes = 0
	return nil
}

// resetColumns empties the columns, keeping their capacity (bounded by the
// budget clamp) for the next run.
func (s *ScanResult) resetColumns() {
	s.addrs = s.addrs[:0]
	s.probeMask = s.probeMask[:0]
	s.flags = s.flags[:0]
	s.fail = s.fail[:0]
	s.attempts = s.attempts[:0]
	s.t = s.t[:0]
	s.banner = s.banner[:0]
}

// spillRow is one record in segment-file terms: the raw column values,
// flags already packed.
type spillRow struct {
	addr      ip.Addr
	probeMask uint8
	flags     uint8
	fail      zgrab.FailMode
	attempts  int32
	t         time.Duration
	banner    string
}

func (s *ScanResult) rowAt(i int) spillRow {
	return spillRow{
		addr:      s.addrs[i],
		probeMask: s.probeMask[i],
		flags:     s.flags[i],
		fail:      s.fail[i],
		attempts:  s.attempts[i],
		t:         s.t[i],
		banner:    s.banner[i],
	}
}

func (s *ScanResult) appendRow(r spillRow) {
	s.addrs = append(s.addrs, r.addr)
	s.probeMask = append(s.probeMask, r.probeMask)
	s.flags = append(s.flags, r.flags)
	s.fail = append(s.fail, r.fail)
	s.attempts = append(s.attempts, r.attempts)
	s.t = append(s.t, r.t)
	s.banner = append(s.banner, r.banner)
}

// mergeSpilled replaces the columns with the keep-last merge of every
// on-disk segment plus the live run, hierarchically when the segment count
// exceeds the fan-in cap. On success the columns are sorted and duplicate
// free, so the subsequent sealMem skips its sort.
func (s *ScanResult) mergeSpilled() error {
	sp := s.spill
	begin := time.Now()
	// The live run becomes the newest sorted run, in memory.
	if !s.addrs.IsSorted() {
		sort.Stable((*byAddr)(s))
		s.dedup()
	}
	live := *s // snapshot of the live columns for the memory reader
	s.addrs, s.probeMask, s.flags, s.fail = nil, nil, nil, nil
	s.attempts, s.t, s.banner = nil, nil, nil

	// Hierarchical pre-merges: reduce the oldest segments first so run
	// ordering (and therefore keep-last) is preserved; the live run only
	// ever joins the final pass, where it is newest.
	passes := 1
	for len(sp.segments)+1 > spillMergeFanIn {
		group := sp.segments[:spillMergeFanIn]
		merged, err := s.mergeToSegment(group)
		if err != nil {
			return err
		}
		for _, seg := range group {
			os.Remove(seg.path)
		}
		sp.segments = append([]spillSegment{merged}, sp.segments[spillMergeFanIn:]...)
		passes++
	}

	readers := make([]runReader, 0, len(sp.segments)+1)
	defer func() {
		for _, r := range readers {
			r.close()
		}
	}()
	total := len(live.addrs)
	for _, seg := range sp.segments {
		sr, err := openSegment(seg.path)
		if err != nil {
			return err
		}
		readers = append(readers, sr)
		total += seg.rows
	}
	readers = append(readers, &memRunReader{s: &live, i: -1})

	out := NewScanResultSized(s.Origin, s.Proto, s.Trial, total)
	dropped, err := mergeRuns(readers, out.appendRow)
	if err != nil {
		return err
	}
	s.addrs, s.probeMask, s.flags = out.addrs, out.probeMask, out.flags
	s.fail, s.attempts, s.t, s.banner = out.fail, out.attempts, out.t, out.banner
	s.dedupDropped += dropped
	sp.stats.MergeFanIn = len(readers)
	sp.stats.MergePasses = passes
	sp.stats.MergeDuration = time.Since(begin)
	return nil
}

// mergeToSegment merges a group of segments into one new segment file (an
// intermediate pass of the hierarchical merge).
func (s *ScanResult) mergeToSegment(group []spillSegment) (spillSegment, error) {
	sp := s.spill
	readers := make([]runReader, 0, len(group))
	defer func() {
		for _, r := range readers {
			r.close()
		}
	}()
	for _, seg := range group {
		sr, err := openSegment(seg.path)
		if err != nil {
			return spillSegment{}, err
		}
		readers = append(readers, sr)
	}
	path := filepath.Join(sp.dir, fmt.Sprintf("run-%06d.seg", sp.stats.Segments))
	var dropped int
	n, bytes, err := writeSegmentErr(path, func(emit func(spillRow)) error {
		var err error
		dropped, err = mergeRuns(readers, emit)
		return err
	})
	if err != nil {
		os.Remove(path)
		return spillSegment{}, err
	}
	sp.stats.Segments++
	sp.stats.SpilledBytes += bytes
	s.dedupDropped += dropped
	return spillSegment{path: path, rows: n}, nil
}

// mergeRuns streams the keep-last k-way merge: readers are ordered oldest
// to newest; for each distinct address, the newest run holding it wins and
// every older duplicate is dropped. Each run is internally sorted and
// duplicate free, so each reader advances at most once per output address.
func mergeRuns(readers []runReader, emit func(spillRow)) (dropped int, err error) {
	rows := make([]spillRow, len(readers))
	alive := make([]bool, len(readers))
	for i, r := range readers {
		alive[i], err = r.next(&rows[i])
		if err != nil {
			return dropped, err
		}
	}
	for {
		min := -1
		for i := range readers {
			if alive[i] && (min < 0 || rows[i].addr.Less(rows[min].addr)) {
				min = i
			}
		}
		if min < 0 {
			return dropped, nil
		}
		addr := rows[min].addr
		// Newest run with this address wins; advance every run holding it.
		winner := -1
		for i := range readers {
			if alive[i] && rows[i].addr == addr {
				winner = i
			}
		}
		emit(rows[winner])
		for i := range readers {
			if alive[i] && rows[i].addr == addr {
				if i != winner {
					dropped++
				}
				alive[i], err = readers[i].next(&rows[i])
				if err != nil {
					return dropped, err
				}
			}
		}
	}
}

// runReader yields one sorted run's rows in address order.
type runReader interface {
	// next fills *row with the next record, reporting false at end.
	next(row *spillRow) (bool, error)
	close() error
}

// memRunReader serves the live run straight from a column snapshot.
type memRunReader struct {
	s *ScanResult
	i int
}

func (m *memRunReader) next(row *spillRow) (bool, error) {
	m.i++
	if m.i >= len(m.s.addrs) {
		return false, nil
	}
	*row = m.s.rowAt(m.i)
	return true, nil
}

func (m *memRunReader) close() error { return nil }

// Segment file writer.

type segmentWriter struct {
	bw    *bufio.Writer
	frame []spillRow
	rows  int
	err   error
}

// writeSegment streams rows produced by fill into a new segment file at
// path, returning the row count and file size.
func writeSegment(path string, fill func(emit func(spillRow))) (rows int, size int64, err error) {
	return writeSegmentErr(path, func(emit func(spillRow)) error {
		fill(emit)
		return nil
	})
}

func writeSegmentErr(path string, fill func(emit func(spillRow)) error) (rows int, size int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, fmt.Errorf("results: creating segment: %w", err)
	}
	w := &segmentWriter{
		bw:    bufio.NewWriterSize(f, 1<<16),
		frame: make([]spillRow, 0, spillFrameRows),
	}
	w.bw.WriteString(segMagic)
	w.bw.WriteByte(segAddrWidth)
	fillErr := fill(w.emit)
	w.flushFrame()
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	closeErr := f.Close()
	switch {
	case fillErr != nil:
		return 0, 0, fillErr
	case w.err != nil:
		return 0, 0, fmt.Errorf("results: writing segment: %w", w.err)
	case closeErr != nil:
		return 0, 0, fmt.Errorf("results: closing segment: %w", closeErr)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, 0, fmt.Errorf("results: sizing segment: %w", err)
	}
	return w.rows, fi.Size(), nil
}

func (w *segmentWriter) emit(r spillRow) {
	w.frame = append(w.frame, r)
	w.rows++
	if len(w.frame) == spillFrameRows {
		w.flushFrame()
	}
}

// flushFrame encodes the buffered rows as one columnar frame.
func (w *segmentWriter) flushFrame() {
	if w.err != nil || len(w.frame) == 0 {
		w.frame = w.frame[:0]
		return
	}
	var scratch [8]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		w.bw.Write(scratch[:4])
	}
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		w.bw.Write(scratch[:8])
	}
	bannerBytes := 0
	for i := range w.frame {
		bannerBytes += len(w.frame[i].banner)
	}
	u32(uint32(len(w.frame)))
	u32(uint32(bannerBytes))
	for i := range w.frame {
		u64(w.frame[i].addr.Hi())
	}
	for i := range w.frame {
		u64(w.frame[i].addr.Lo())
	}
	for i := range w.frame {
		w.bw.WriteByte(w.frame[i].probeMask)
	}
	for i := range w.frame {
		w.bw.WriteByte(w.frame[i].flags)
	}
	for i := range w.frame {
		w.bw.WriteByte(uint8(w.frame[i].fail))
	}
	for i := range w.frame {
		u32(uint32(w.frame[i].attempts))
	}
	for i := range w.frame {
		u64(uint64(w.frame[i].t))
	}
	for i := range w.frame {
		u32(uint32(len(w.frame[i].banner)))
	}
	for i := range w.frame {
		w.bw.WriteString(w.frame[i].banner)
	}
	w.frame = w.frame[:0]
	// bufio.Writer latches its first error; record it once per frame.
	if _, err := w.bw.Write(nil); err != nil && w.err == nil {
		w.err = err
	}
}

// Segment file reader: decodes one frame at a time into column buffers, so
// an open segment costs O(spillFrameRows) memory.

type segmentReader struct {
	f   *os.File
	br  *bufio.Reader
	buf []spillRow
	i   int
}

func openSegment(path string) (*segmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("results: opening segment: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segMagic {
		f.Close()
		if err == nil && string(magic) == segMagicV1 {
			return nil, fmt.Errorf("results: %s: segment version %s (32-bit addresses) is no longer readable; current format is %s", path, segMagicV1, segMagic)
		}
		return nil, fmt.Errorf("results: %s: bad segment magic", path)
	}
	width, err := br.ReadByte()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("results: %s: reading address width: %w", path, err)
	}
	if width != segAddrWidth {
		f.Close()
		return nil, fmt.Errorf("results: %s: segment address width %d, want %d", path, width, segAddrWidth)
	}
	return &segmentReader{f: f, br: br}, nil
}

func (r *segmentReader) next(row *spillRow) (bool, error) {
	if r.i >= len(r.buf) {
		ok, err := r.readFrame()
		if !ok || err != nil {
			return false, err
		}
	}
	*row = r.buf[r.i]
	r.i++
	return true, nil
}

func (r *segmentReader) readFrame() (bool, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if err == io.EOF {
			return false, nil // clean end: no more frames
		}
		return false, fmt.Errorf("results: reading segment frame: %w", err)
	}
	rows := int(binary.LittleEndian.Uint32(hdr[:4]))
	bannerBytes := int(binary.LittleEndian.Uint32(hdr[4:]))
	if rows <= 0 || rows > spillFrameRows {
		return false, fmt.Errorf("results: corrupt segment frame (%d rows)", rows)
	}
	if cap(r.buf) < rows {
		r.buf = make([]spillRow, rows)
	}
	r.buf = r.buf[:rows]
	r.i = 0
	var err error
	u32s := make([]byte, 4*rows)
	readU32s := func(dst func(i int, v uint32)) {
		if err != nil {
			return
		}
		if _, err = io.ReadFull(r.br, u32s); err != nil {
			return
		}
		for i := 0; i < rows; i++ {
			dst(i, binary.LittleEndian.Uint32(u32s[4*i:]))
		}
	}
	readU8s := func(dst func(i int, v byte)) {
		if err != nil {
			return
		}
		b := u32s[:rows]
		if _, err = io.ReadFull(r.br, b); err != nil {
			return
		}
		for i := 0; i < rows; i++ {
			dst(i, b[i])
		}
	}
	readAddrWord := func(dst func(i int, v uint64)) {
		if err != nil {
			return
		}
		b := make([]byte, 8*rows)
		if _, err = io.ReadFull(r.br, b); err != nil {
			return
		}
		for i := 0; i < rows; i++ {
			dst(i, binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	his := make([]uint64, rows)
	readAddrWord(func(i int, v uint64) { his[i] = v })
	readAddrWord(func(i int, v uint64) { r.buf[i].addr = ip.AddrFrom128(his[i], v) })
	readU8s(func(i int, v byte) { r.buf[i].probeMask = v })
	readU8s(func(i int, v byte) { r.buf[i].flags = v })
	readU8s(func(i int, v byte) { r.buf[i].fail = zgrab.FailMode(v) })
	readU32s(func(i int, v uint32) { r.buf[i].attempts = int32(v) })
	if err == nil {
		u64s := make([]byte, 8*rows)
		if _, err = io.ReadFull(r.br, u64s); err == nil {
			for i := 0; i < rows; i++ {
				r.buf[i].t = time.Duration(binary.LittleEndian.Uint64(u64s[8*i:]))
			}
		}
	}
	lens := make([]uint32, rows)
	readU32s(func(i int, v uint32) { lens[i] = v })
	if err == nil {
		data := make([]byte, bannerBytes)
		if _, err = io.ReadFull(r.br, data); err == nil {
			off := uint32(0)
			for i := 0; i < rows; i++ {
				if int(off+lens[i]) > len(data) {
					err = fmt.Errorf("banner lengths exceed frame data")
					break
				}
				r.buf[i].banner = string(data[off : off+lens[i]])
				off += lens[i]
			}
		}
	}
	if err != nil {
		return false, fmt.Errorf("results: reading segment frame: %w", err)
	}
	return true, nil
}

func (r *segmentReader) close() error { return r.f.Close() }
