package results

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/zgrab"
)

// mapModel is the reference the columnar store is checked against: the
// map-of-structs storage the store replaced, with its "Add replaces"
// semantics.
type mapModel struct {
	recs map[ip.Addr]HostRecord
}

func (m *mapModel) Add(r HostRecord) {
	if m.recs == nil {
		m.recs = map[ip.Addr]HostRecord{}
	}
	m.recs[r.Addr] = r
}

func (m *mapModel) sorted() []HostRecord {
	out := make([]HostRecord, 0, len(m.recs))
	for _, r := range m.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

func randRecord(rng *rand.Rand) HostRecord {
	r := HostRecord{
		// A small address pool forces duplicate Adds, exercising the
		// replace-on-seal path.
		Addr:      ip.AddrFrom4(uint32(rng.Intn(64))),
		ProbeMask: uint8(rng.Intn(4)),
		RST:       rng.Intn(4) == 0,
		L7:        rng.Intn(2) == 0,
		Fail:      zgrab.FailMode(rng.Intn(4)),
		Attempts:  rng.Intn(3),
		T:         time.Duration(rng.Intn(1000)) * time.Second,
	}
	if r.L7 && rng.Intn(2) == 0 {
		r.Banner = "srv/" + string(rune('a'+rng.Intn(26)))
	}
	return r
}

// TestColumnarMatchesMapModel drives the columnar store and the map
// reference through random interleavings of Add, Get, Each, Success, and
// Seal, checking every observable after every operation batch.
func TestColumnarMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := NewScanResult(origin.AU, proto.HTTP, 0)
		model := &mapModel{}
		ops := rng.Intn(200)
		for i := 0; i < ops; i++ {
			switch rng.Intn(10) {
			case 0: // explicit mid-stream Seal; Add after re-opens
				s.Seal()
			case 1, 2: // Get on a random address
				a := ip.AddrFrom4(uint32(rng.Intn(64)))
				got, ok := s.Get(a)
				want, wantOK := model.recs[a]
				if ok != wantOK || got != want {
					t.Fatalf("trial %d op %d: Get(%v) = %+v,%v want %+v,%v",
						trial, i, a, got, ok, want, wantOK)
				}
			case 3: // Success under both probe policies
				a := ip.AddrFrom4(uint32(rng.Intn(64)))
				w := model.recs[a]
				if got := s.Success(a, false); got != w.L7 {
					t.Fatalf("trial %d op %d: Success(%v,false)=%v", trial, i, a, got)
				}
				if got := s.Success(a, true); got != (w.L7 && w.ProbeMask&1 != 0) {
					t.Fatalf("trial %d op %d: Success(%v,true)=%v", trial, i, a, got)
				}
			default:
				r := randRecord(rng)
				s.Add(r)
				model.Add(r)
			}
		}
		want := model.sorted()
		if s.Len() != len(want) {
			t.Fatalf("trial %d: Len=%d want %d", trial, s.Len(), len(want))
		}
		var got []HostRecord
		s.Each(func(r HostRecord) { got = append(got, r) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Each[%d]=%+v want %+v", trial, i, got[i], want[i])
			}
		}
		wantL7 := 0
		for _, r := range want {
			if r.L7 {
				wantL7++
			}
		}
		if s.L7Count() != wantL7 {
			t.Fatalf("trial %d: L7Count=%d want %d", trial, s.L7Count(), wantL7)
		}
		if !ip.AddrSlice(s.Addrs()).IsSorted() {
			t.Fatalf("trial %d: sealed address column not strictly sorted", trial)
		}
	}
}

// TestEachSealedDoesNotAllocate asserts the satellite fix: iterating a
// sealed result reads the columns in place, with zero allocations (the map
// store sorted and allocated a fresh address slice on every call).
func TestEachSealedDoesNotAllocate(t *testing.T) {
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		s.Add(randRecord(rng))
	}
	s.Seal()
	var n int
	allocs := testing.AllocsPerRun(10, func() {
		n = 0
		s.Each(func(r HostRecord) { n++ })
	})
	if allocs != 0 {
		t.Errorf("Each on sealed result allocates %.1f times per run, want 0", allocs)
	}
	if n != s.Len() {
		t.Errorf("Each visited %d records, want %d", n, s.Len())
	}
}

// TestSealKeepsLastDuplicate pins the map-replacement semantics: of several
// Adds for one address, the latest wins.
func TestSealKeepsLastDuplicate(t *testing.T) {
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	s.Add(HostRecord{Addr: ip.AddrFrom4(9), Attempts: 1})
	s.Add(HostRecord{Addr: ip.AddrFrom4(5), Attempts: 1})
	s.Add(HostRecord{Addr: ip.AddrFrom4(9), Attempts: 2, L7: true})
	s.Add(HostRecord{Addr: ip.AddrFrom4(9), Attempts: 3})
	s.Seal()
	if s.Len() != 2 {
		t.Fatalf("Len=%d want 2", s.Len())
	}
	r, ok := s.Get(ip.AddrFrom4(9))
	if !ok || r.Attempts != 3 || r.L7 {
		t.Fatalf("Get(9) = %+v, %v; want the last Add", r, ok)
	}
}

// TestCountSuccessInMatchesPointLookups checks the two-pointer coverage
// walk against per-host Success queries.
func TestCountSuccessInMatchesPointLookups(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	for i := 0; i < 500; i++ {
		s.Add(randRecord(rng))
	}
	var gt []ip.Addr
	for a := uint32(0); a < 80; a += uint32(1 + rng.Intn(3)) {
		gt = append(gt, ip.AddrFrom4(a))
	}
	for _, single := range []bool{false, true} {
		want := 0
		for _, a := range gt {
			if s.Success(a, single) {
				want++
			}
		}
		if got := s.CountSuccessIn(gt, single); got != want {
			t.Errorf("CountSuccessIn(single=%v) = %d, want %d", single, got, want)
		}
	}
}

// TestGetBeforeSealIsSafe pins the lazy-sealing contract for the classic
// misuse — reading before calling Seal. Get (and every other reader) seals
// on first use, so the caller who forgets Seal still observes sorted,
// deduplicated, last-write-wins records; and an Add after a read unseals,
// so the next read re-seals and sees the new write. SealStats counts every
// duplicate dropped across those re-seals.
func TestGetBeforeSealIsSafe(t *testing.T) {
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	s.Add(HostRecord{Addr: ip.AddrFrom4(9), Attempts: 1})
	s.Add(HostRecord{Addr: ip.AddrFrom4(5), Attempts: 1})
	s.Add(HostRecord{Addr: ip.AddrFrom4(9), Attempts: 2})

	// Misuse: no Seal call before reading. The read must behave exactly
	// as if Seal had been called.
	r, ok := s.Get(ip.AddrFrom4(9))
	if !ok || r.Attempts != 2 {
		t.Fatalf("Get(9) before Seal = %+v, %v; want the last Add via lazy seal", r, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (deduplicated)", s.Len())
	}

	// Writing after a read unseals; the next read sees the new record.
	s.Add(HostRecord{Addr: ip.AddrFrom4(9), Attempts: 7})
	r, ok = s.Get(ip.AddrFrom4(9))
	if !ok || r.Attempts != 7 {
		t.Fatalf("Get(9) after post-seal Add = %+v, %v; want the newest record", r, ok)
	}

	rows, deduped := s.SealStats()
	if rows != 2 {
		t.Errorf("SealStats rows = %d, want 2", rows)
	}
	if deduped != 2 {
		t.Errorf("SealStats deduped = %d, want 2 (one per re-sealed duplicate)", deduped)
	}
}
