package results

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/zgrab"
)

func sample() *Dataset {
	ds := NewDataset(origin.Set{origin.AU, origin.BR}, 2)
	for _, o := range []origin.ID{origin.AU, origin.BR} {
		for t := 0; t < 2; t++ {
			s := NewScanResult(o, proto.HTTP, t)
			s.Targets, s.ProbesSent = 100, 200
			s.Add(HostRecord{Addr: ip.AddrFrom4(10), ProbeMask: 0b11, L7: true, T: time.Hour})
			s.Add(HostRecord{Addr: ip.AddrFrom4(20), ProbeMask: 0b01, L7: o == origin.AU, Fail: zgrab.FailTimeout, Attempts: 1, T: 2 * time.Hour})
			s.Add(HostRecord{Addr: ip.AddrFrom4(30), RST: true})
			ds.Put(s)
		}
	}
	return ds
}

func TestScanResultBasics(t *testing.T) {
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	s.Add(HostRecord{Addr: ip.AddrFrom4(5), ProbeMask: 0b10, L7: true})
	if s.Len() != 1 || s.L7Count() != 1 {
		t.Errorf("len=%d l7=%d", s.Len(), s.L7Count())
	}
	r, ok := s.Get(ip.AddrFrom4(5))
	if !ok || !r.L4() {
		t.Error("Get/L4 wrong")
	}
	if !s.Success(ip.AddrFrom4(5), false) {
		t.Error("2-probe success wrong")
	}
	// Probe 0 was lost: single-probe simulation excludes this host.
	if s.Success(ip.AddrFrom4(5), true) {
		t.Error("1-probe success should require probe 0")
	}
	if s.Success(ip.AddrFrom4(6), false) {
		t.Error("missing host reported successful")
	}
}

func TestGroundTruthAndCoverage(t *testing.T) {
	ds := sample()
	gt := ds.GroundTruth(proto.HTTP, 0)
	if len(gt) != 2 || gt[0] != ip.AddrFrom4(10) || gt[1] != ip.AddrFrom4(20) {
		t.Fatalf("ground truth = %v", gt)
	}
	if got := ds.Coverage(origin.AU, proto.HTTP, 0, false); got != 1.0 {
		t.Errorf("AU coverage = %v", got)
	}
	if got := ds.Coverage(origin.BR, proto.HTTP, 0, false); got != 0.5 {
		t.Errorf("BR coverage = %v", got)
	}
	if n := ds.Intersection(proto.HTTP, 0); n != 1 {
		t.Errorf("intersection = %d", n)
	}
	if got := ds.CoverageOfSet(origin.Set{origin.AU, origin.BR}, proto.HTTP, 0, false); got != 1.0 {
		t.Errorf("set coverage = %v", got)
	}
}

func TestEachIsSorted(t *testing.T) {
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	for _, a := range []ip.Addr{ip.AddrFrom4(30), ip.AddrFrom4(10), ip.AddrFrom4(20)} {
		s.Add(HostRecord{Addr: a})
	}
	var order []ip.Addr
	s.Each(func(r HostRecord) { order = append(order, r.Addr) })
	if order[0] != ip.AddrFrom4(10) || order[1] != ip.AddrFrom4(20) || order[2] != ip.AddrFrom4(30) {
		t.Errorf("order = %v", order)
	}
}

func TestMustScanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustScan on missing scan did not panic")
		}
	}()
	sample().MustScan(origin.CEN, proto.SSH, 0)
}

func TestJSONRoundTrip(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trials != 2 || len(got.Origins) != 2 {
		t.Fatalf("shape: trials=%d origins=%v", got.Trials, got.Origins)
	}
	for _, o := range ds.Origins {
		for tr := 0; tr < 2; tr++ {
			a := ds.MustScan(o, proto.HTTP, tr)
			b := got.MustScan(o, proto.HTTP, tr)
			if a.Len() != b.Len() || a.Targets != b.Targets {
				t.Fatalf("scan %v/%d mismatch", o, tr)
			}
			a.Each(func(r HostRecord) {
				r2, ok := b.Get(r.Addr)
				if !ok || r2 != r {
					t.Fatalf("record mismatch: %+v vs %+v", r, r2)
				}
			})
		}
	}
	// Analyses behave identically on the round-tripped dataset.
	if ds.Coverage(origin.BR, proto.HTTP, 0, false) != got.Coverage(origin.BR, proto.HTTP, 0, false) {
		t.Error("coverage differs after round trip")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"trials":0}`)); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"trials":1000}`)); err == nil {
		t.Error("huge trials accepted")
	}
}

func TestGroundTruthCacheInvalidation(t *testing.T) {
	ds := NewDataset(origin.Set{origin.AU}, 1)
	s := NewScanResult(origin.AU, proto.HTTP, 0)
	s.Add(HostRecord{Addr: ip.AddrFrom4(1), ProbeMask: 0b11, L7: true})
	if err := ds.Put(s); err != nil {
		t.Fatalf("Put into empty slot: %v", err)
	}
	if len(ds.GroundTruth(proto.HTTP, 0)) != 1 {
		t.Fatal("gt != 1")
	}
	// Re-putting the identical sealed scan is an idempotent no-op.
	if err := ds.Put(s); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
	s2 := NewScanResult(origin.AU, proto.HTTP, 0)
	s2.Add(HostRecord{Addr: ip.AddrFrom4(1), ProbeMask: 0b11, L7: true})
	s2.Add(HostRecord{Addr: ip.AddrFrom4(2), ProbeMask: 0b11, L7: true})
	// Putting a *different* scan at a sealed key must refuse with
	// ErrSealConflict; Replace is the explicit overwrite.
	if err := ds.Put(s2); !errors.Is(err, pipeline.ErrSealConflict) {
		t.Fatalf("Put over sealed scan = %v, want ErrSealConflict", err)
	}
	if len(ds.GroundTruth(proto.HTTP, 0)) != 1 {
		t.Error("refused Put mutated the dataset")
	}
	ds.Replace(s2)
	if len(ds.GroundTruth(proto.HTTP, 0)) != 2 {
		t.Error("Replace did not invalidate ground-truth cache")
	}
}
