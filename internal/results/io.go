package results

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/zgrab"
)

// The JSON wire format is compact: one record array per scan, host records
// as fixed-order tuples. It exists so cmd/originscan can persist a study's
// raw results and cmd/report can re-run analyses without re-scanning.

type datasetJSON struct {
	Origins []uint8    `json:"origins"`
	Trials  int        `json:"trials"`
	Scans   []scanJSON `json:"scans"`
}

type scanJSON struct {
	Origin  uint8       `json:"origin"`
	Proto   uint8       `json:"proto"`
	Trial   int         `json:"trial"`
	Targets uint64      `json:"targets"`
	Probes  uint64      `json:"probes"`
	SynAcks uint64      `json:"synacks"`
	Rsts    uint64      `json:"rsts"`
	Invalid uint64      `json:"invalid"`
	Records [][6]uint64 `json:"records"`
	// Banners[i] is the banner of Records[i] ("" omitted collectively
	// when no scan captured banners).
	Banners []string `json:"banners,omitempty"`
}

// record tuple layout: [addr, probeMask, flags(rst|l7), fail, attempts, tNanos]

const (
	flagRST = 1 << 0
	flagL7  = 1 << 1
)

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	dj := datasetJSON{Trials: d.Trials}
	for _, o := range d.Origins {
		dj.Origins = append(dj.Origins, uint8(o))
	}
	for _, o := range d.Origins {
		for _, p := range proto.All() {
			for t := 0; t < d.Trials; t++ {
				s := d.Scan(o, p, t)
				if s == nil {
					continue
				}
				sj := scanJSON{
					Origin: uint8(o), Proto: uint8(p), Trial: t,
					Targets: s.Targets, Probes: s.ProbesSent,
					SynAcks: s.SynAcks, Rsts: s.Rsts, Invalid: s.Invalid,
				}
				hasBanner := false
				s.Each(func(r HostRecord) {
					var flags uint64
					if r.RST {
						flags |= flagRST
					}
					if r.L7 {
						flags |= flagL7
					}
					sj.Records = append(sj.Records, [6]uint64{
						uint64(r.Addr), uint64(r.ProbeMask), flags,
						uint64(r.Fail), uint64(r.Attempts), uint64(r.T),
					})
					sj.Banners = append(sj.Banners, r.Banner)
					if r.Banner != "" {
						hasBanner = true
					}
				})
				if !hasBanner {
					sj.Banners = nil
				}
				dj.Scans = append(dj.Scans, sj)
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&dj)
}

// ReadJSON deserializes a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var dj datasetJSON
	if err := json.NewDecoder(r).Decode(&dj); err != nil {
		return nil, fmt.Errorf("results: decoding dataset: %w", err)
	}
	if dj.Trials <= 0 || dj.Trials > 64 {
		return nil, fmt.Errorf("results: implausible trial count %d", dj.Trials)
	}
	var origins origin.Set
	for _, o := range dj.Origins {
		origins = append(origins, origin.ID(o))
	}
	d := NewDataset(origins, dj.Trials)
	for _, sj := range dj.Scans {
		s := NewScanResult(origin.ID(sj.Origin), proto.Protocol(sj.Proto), sj.Trial)
		s.Targets, s.ProbesSent = sj.Targets, sj.Probes
		s.SynAcks, s.Rsts, s.Invalid = sj.SynAcks, sj.Rsts, sj.Invalid
		for i, rec := range sj.Records {
			hr := HostRecord{
				Addr:      ip.Addr(rec[0]),
				ProbeMask: uint8(rec[1]),
				RST:       rec[2]&flagRST != 0,
				L7:        rec[2]&flagL7 != 0,
				Fail:      zgrab.FailMode(rec[3]),
				Attempts:  int(rec[4]),
				T:         time.Duration(rec[5]),
			}
			if i < len(sj.Banners) {
				hr.Banner = sj.Banners[i]
			}
			s.Add(hr)
		}
		d.Put(s)
	}
	return d, nil
}
