package results

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/zgrab"
)

// The JSON wire format is compact: one record array per scan, host records
// as fixed-order tuples. It exists so cmd/originscan can persist a study's
// raw results and cmd/report can re-run analyses without re-scanning.
//
// Both directions stream over the columnar store: the encoder walks the
// sealed columns and writes tuples straight to the output buffer, and the
// decoder appends tokens straight into fresh columns — neither side
// materializes per-row structs or an intermediate records slice. The bytes
// produced are identical to the earlier reflection-based encoder
// (json.Encoder over a dataset struct): field order, null vs [] for empty
// slices, banners omitted when none captured, HTML-escaped strings, and
// the trailing newline are all preserved, which the golden-dataset test
// locks in.
//
// Wire layout:
//
//	{"origins":"<base64 origin ids>","trials":N,"scans":[
//	  {"origin":O,"proto":P,"trial":T,
//	   "targets":..,"probes":..,"synacks":..,"rsts":..,"invalid":..,
//	   "records":[[addr,probeMask,flags(rst|l7),fail,attempts,tNanos],...],
//	   "banners":[...]}   // omitted when no banner was captured
//	]}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var num []byte // scratch for number formatting
	bw.WriteString(`{"origins":`)
	if len(d.Origins) == 0 {
		bw.WriteString("null")
	} else {
		// The wire type is a byte slice, which JSON encodes as base64.
		ids := make([]byte, len(d.Origins))
		for i, o := range d.Origins {
			ids[i] = uint8(o)
		}
		bw.WriteByte('"')
		bw.WriteString(base64.StdEncoding.EncodeToString(ids))
		bw.WriteByte('"')
	}
	bw.WriteString(`,"trials":`)
	num = strconv.AppendInt(num[:0], int64(d.Trials), 10)
	bw.Write(num)
	bw.WriteString(`,"scans":`)
	wroteScan := false
	for _, o := range d.Origins {
		for _, p := range proto.All() {
			for t := 0; t < d.Trials; t++ {
				s := d.Scan(o, p, t)
				if s == nil {
					continue
				}
				if !wroteScan {
					bw.WriteByte('[')
					wroteScan = true
				} else {
					bw.WriteByte(',')
				}
				if err := s.writeJSON(bw, num); err != nil {
					return err
				}
			}
		}
	}
	if !wroteScan {
		bw.WriteString("null")
	} else {
		bw.WriteByte(']')
	}
	bw.WriteString("}\n")
	return bw.Flush()
}

// writeJSON streams one scan object from the sealed columns.
func (s *ScanResult) writeJSON(bw *bufio.Writer, num []byte) error {
	s.seal()
	writeField := func(name string, v uint64, first bool) {
		if !first {
			bw.WriteByte(',')
		}
		bw.WriteByte('"')
		bw.WriteString(name)
		bw.WriteString(`":`)
		num = strconv.AppendUint(num[:0], v, 10)
		bw.Write(num)
	}
	bw.WriteByte('{')
	writeField("origin", uint64(uint8(s.Origin)), true)
	writeField("proto", uint64(uint8(s.Proto)), false)
	bw.WriteString(`,"trial":`)
	num = strconv.AppendInt(num[:0], int64(s.Trial), 10)
	bw.Write(num)
	writeField("targets", s.Targets, false)
	writeField("probes", s.ProbesSent, false)
	writeField("synacks", s.SynAcks, false)
	writeField("rsts", s.Rsts, false)
	writeField("invalid", s.Invalid, false)
	bw.WriteString(`,"records":`)
	if len(s.addrs) == 0 {
		bw.WriteString("null")
	} else {
		bw.WriteByte('[')
		for i := range s.addrs {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteByte('[')
			// IPv4 addresses keep the historical bare-integer encoding
			// (byte-identity with every pre-dual-stack file); IPv6 is a
			// JSON string in canonical text form.
			if a := s.addrs[i]; a.Is4() {
				num = strconv.AppendUint(num[:0], uint64(a.V4()), 10)
			} else {
				num = append(num[:0], '"')
				num = append(num, a.String()...)
				num = append(num, '"')
			}
			num = append(num, ',')
			num = strconv.AppendUint(num, uint64(s.probeMask[i]), 10)
			num = append(num, ',')
			num = strconv.AppendUint(num, uint64(s.flags[i]), 10)
			num = append(num, ',')
			num = strconv.AppendUint(num, uint64(s.fail[i]), 10)
			num = append(num, ',')
			num = strconv.AppendUint(num, uint64(s.attempts[i]), 10)
			num = append(num, ',')
			num = strconv.AppendUint(num, uint64(s.t[i]), 10)
			bw.Write(num)
			bw.WriteByte(']')
		}
		bw.WriteByte(']')
	}
	hasBanner := false
	for _, b := range s.banner {
		if b != "" {
			hasBanner = true
			break
		}
	}
	if hasBanner {
		// json.Marshal keeps the default HTML escaping the old
		// struct-based encoder applied to banner strings.
		enc, err := json.Marshal(s.banner)
		if err != nil {
			return err
		}
		bw.WriteString(`,"banners":`)
		bw.Write(enc)
	}
	bw.WriteByte('}')
	return nil
}

// ReadJSON deserializes a dataset written by WriteJSON, streaming tokens
// straight into columnar scans. Unknown fields are ignored and records may
// arrive unsorted (Seal at Put time sorts them).
func ReadJSON(r io.Reader) (*Dataset, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var (
		origins origin.Set
		trials  int
		scans   []*ScanResult
	)
	err := func() error {
		if err := expectDelim(dec, '{'); err != nil {
			return err
		}
		for dec.More() {
			key, err := readKey(dec)
			if err != nil {
				return err
			}
			switch key {
			case "origins":
				// Byte slice on the wire: base64 string (or null).
				var tok json.Token
				tok, err = dec.Token()
				if err != nil {
					return err
				}
				if tok == nil {
					break
				}
				str, ok := tok.(string)
				if !ok {
					return fmt.Errorf("expected base64 origins, got %v", tok)
				}
				var ids []byte
				ids, err = base64.StdEncoding.DecodeString(str)
				for _, id := range ids {
					origins = append(origins, origin.ID(id))
				}
			case "trials":
				var u uint64
				u, err = readUint(dec, 32)
				trials = int(u)
			case "scans":
				err = readArray(dec, func() error {
					s, err := readScan(dec)
					if err != nil {
						return err
					}
					scans = append(scans, s)
					return nil
				})
			default:
				err = skipValue(dec)
			}
			if err != nil {
				return err
			}
		}
		_, err := dec.Token() // closing '}'
		return err
	}()
	if err != nil {
		return nil, fmt.Errorf("results: decoding dataset: %w", err)
	}
	if trials <= 0 || trials > 64 {
		return nil, fmt.Errorf("results: implausible trial count %d", trials)
	}
	d := NewDataset(origins, trials)
	for _, s := range scans {
		if err := d.Put(s); err != nil {
			return nil, fmt.Errorf("results: decoding dataset: %w", err)
		}
	}
	return d, nil
}

// readScan consumes one scan object, appending records directly onto the
// columns of a fresh ScanResult.
func readScan(dec *json.Decoder) (*ScanResult, error) {
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	s := &ScanResult{}
	var banners []string
	for dec.More() {
		key, err := readKey(dec)
		if err != nil {
			return nil, err
		}
		switch key {
		case "origin":
			var u uint64
			u, err = readUint(dec, 8)
			s.Origin = origin.ID(u)
		case "proto":
			var u uint64
			u, err = readUint(dec, 8)
			s.Proto = proto.Protocol(u)
		case "trial":
			var u uint64
			u, err = readUint(dec, 32)
			s.Trial = int(u)
		case "targets":
			s.Targets, err = readUint(dec, 64)
		case "probes":
			s.ProbesSent, err = readUint(dec, 64)
		case "synacks":
			s.SynAcks, err = readUint(dec, 64)
		case "rsts":
			s.Rsts, err = readUint(dec, 64)
		case "invalid":
			s.Invalid, err = readUint(dec, 64)
		case "records":
			err = readArray(dec, func() error { return s.readRecord(dec) })
		case "banners":
			err = readArray(dec, func() error {
				b, err := readString(dec)
				if err != nil {
					return err
				}
				banners = append(banners, b)
				return nil
			})
		default:
			err = skipValue(dec)
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return nil, err
	}
	for i := range s.banner {
		if i < len(banners) {
			s.banner[i] = banners[i]
		}
	}
	return s, nil
}

// readRecord consumes one [addr, probeMask, flags, fail, attempts, tNanos]
// tuple into the scan's columns. Like the former fixed-array decode, short
// tuples zero-fill and extra elements are discarded.
func (s *ScanResult) readRecord(dec *json.Decoder) error {
	if err := expectDelim(dec, '['); err != nil {
		return err
	}
	var addr ip.Addr
	var rec [6]uint64
	n := 0
	for dec.More() {
		if n == 0 {
			// The address element is a bare uint32 for IPv4 (historical
			// encoding) or a canonical-text JSON string for IPv6.
			tok, err := dec.Token()
			if err != nil {
				return err
			}
			switch v := tok.(type) {
			case json.Number:
				u, err := strconv.ParseUint(v.String(), 10, 32)
				if err != nil {
					return fmt.Errorf("bad address %q: %w", v, err)
				}
				addr = ip.AddrFrom4(uint32(u))
			case string:
				a, err := ip.ParseAddr(v)
				if err != nil {
					return err
				}
				addr = a
			default:
				return fmt.Errorf("expected address, got %v", tok)
			}
			n++
			continue
		}
		u, err := readUint(dec, 64)
		if err != nil {
			return err
		}
		if n < len(rec) {
			rec[n] = u
		}
		n++
	}
	if _, err := dec.Token(); err != nil { // closing ']'
		return err
	}
	s.addrs = append(s.addrs, addr)
	s.probeMask = append(s.probeMask, uint8(rec[1]))
	s.flags = append(s.flags, uint8(rec[2])&(flagRST|flagL7))
	s.fail = append(s.fail, zgrab.FailMode(rec[3]))
	s.attempts = append(s.attempts, int32(rec[4]))
	s.t = append(s.t, time.Duration(rec[5]))
	s.banner = append(s.banner, "")
	return nil
}

// Token-stream helpers.

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("expected %q, got %v", want, tok)
	}
	return nil
}

func readKey(dec *json.Decoder) (string, error) {
	tok, err := dec.Token()
	if err != nil {
		return "", err
	}
	key, ok := tok.(string)
	if !ok {
		return "", fmt.Errorf("expected object key, got %v", tok)
	}
	return key, nil
}

func readUint(dec *json.Decoder, bits int) (uint64, error) {
	tok, err := dec.Token()
	if err != nil {
		return 0, err
	}
	num, ok := tok.(json.Number)
	if !ok {
		return 0, fmt.Errorf("expected number, got %v", tok)
	}
	u, err := strconv.ParseUint(num.String(), 10, bits)
	if err != nil {
		return 0, fmt.Errorf("bad number %q: %w", num, err)
	}
	return u, nil
}

func readString(dec *json.Decoder) (string, error) {
	tok, err := dec.Token()
	if err != nil {
		return "", err
	}
	str, ok := tok.(string)
	if !ok {
		return "", fmt.Errorf("expected string, got %v", tok)
	}
	return str, nil
}

// readArray consumes "null" or an array, calling elem before each element.
func readArray(dec *json.Decoder, elem func() error) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok == nil {
		return nil // JSON null: empty
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("expected array, got %v", tok)
	}
	for dec.More() {
		if err := elem(); err != nil {
			return err
		}
	}
	_, err = dec.Token() // closing ']'
	return err
}

// skipValue discards the next JSON value (unknown fields).
func skipValue(dec *json.Decoder) error {
	var raw json.RawMessage
	return dec.Decode(&raw)
}
