// Package results holds the measurement data a study produces: for every
// (origin, protocol, trial), the per-host probe and handshake outcomes, plus
// the set algebra the paper's analyses run on top (ground-truth unions,
// per-origin misses, intersections).
//
// Storage is columnar: a ScanResult keeps parallel columns ("struct of
// arrays") sorted by address. Records append during the scan; Seal sorts and
// deduplicates once when the scan commits, after which every read — point
// lookup, in-order iteration, set algebra — works on the sorted columns with
// no per-call allocation. The Dataset's set operations (ground truth,
// intersection, coverage) are merge-joins over the sealed address columns
// rather than per-call hash sets, which is what lets the analyses scale to
// Censys-sized result sets.
package results

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/zgrab"
)

// HostRecord is one host's outcome in one scan.
type HostRecord struct {
	Addr ip.Addr
	// ProbeMask has bit i set when ZMap probe i elicited a valid SYN-ACK.
	ProbeMask uint8
	// RST is set when the host answered probes with RST.
	RST bool
	// L7 is set when the application-layer handshake succeeded.
	L7 bool
	// Fail records why the L7 grab failed (FailNone when L7).
	Fail zgrab.FailMode
	// Banner is the captured application banner: HTTP Server header,
	// negotiated TLS cipher suite, or SSH software version.
	Banner string
	// Attempts is the number of connection attempts the grab used.
	Attempts int
	// T is the virtual time the host was probed.
	T time.Duration
}

// L4 reports whether the host was L4-responsive (any SYN-ACK).
func (r *HostRecord) L4() bool { return r.ProbeMask != 0 }

// Host flag bits, packed per record (also the JSON wire encoding).
const (
	flagRST = 1 << 0
	flagL7  = 1 << 1
)

// ScanResult is one origin's scan of one protocol in one trial.
//
// The record storage is append-mostly columnar: Add appends to the parallel
// columns, Seal sorts them by address (deduplicating repeated Adds of the
// same host, last write wins, matching the map semantics it replaced) and
// every reader operates on the sealed columns. Readers seal lazily, so the
// zero-cost fast path is Add…Add → Seal → read; a sealed result is safe for
// concurrent reads (the parallel analyses rely on this — Dataset.Put seals).
type ScanResult struct {
	Origin origin.ID
	Proto  proto.Protocol
	Trial  int

	// Scan statistics from the scanner.
	Targets, ProbesSent, SynAcks, Rsts, Invalid uint64

	// Parallel columns, sorted by addrs once sealed.
	addrs     ip.AddrSlice
	probeMask []uint8
	flags     []uint8
	fail      []zgrab.FailMode
	attempts  []int32
	t         []time.Duration
	banner    []string

	sealed bool
	// spill, when non-nil, backs the append path with the spill-to-disk
	// store strategy (see spill.go): Add flushes budget-exceeding runs as
	// sorted segment files and Seal externally merges them. nil keeps the
	// all-in-memory fast path.
	spill *spillState
	// dedupDropped counts rows discarded by Seal's keep-last dedup —
	// repeat Adds for one host. Telemetry reads it through SealStats.
	dedupDropped int
	// l7Addrs caches the sorted addresses with successful handshakes,
	// the merge-join input of ground-truth and intersection queries.
	l7Addrs ip.AddrSlice
}

// ResultSink is the append half of a result store: the interface the grab
// hand-off writes records through, so the experiment layer is agnostic to
// whether the store behind it is the in-memory fast path or the
// spill-to-disk store. Appends must arrive in deterministic order (the
// windowed grab hand-off guarantees reply order); the store may flush to
// disk mid-batch without changing the sealed bytes.
type ResultSink interface {
	Add(HostRecord)
	AddBatch([]HostRecord)
}

// NewScanResult returns an empty in-memory result set.
func NewScanResult(o origin.ID, p proto.Protocol, trial int) *ScanResult {
	return NewScanResultSized(o, p, trial, 0)
}

// NewScanResultSized returns an empty in-memory result set with column
// storage sized for n hosts, avoiding regrowth when the caller knows the
// reply count. The hint is trusted as given here — an in-memory result has
// no memory ceiling; NewSpilledScanResult applies the same hint but clamps
// it by the spill budget, so callers sizing from a population estimate
// cannot pre-allocate past the ceiling the budget promises.
func NewScanResultSized(o origin.ID, p proto.Protocol, trial int, n int) *ScanResult {
	s := &ScanResult{Origin: o, Proto: p, Trial: trial}
	if n > 0 {
		s.addrs = make(ip.AddrSlice, 0, n)
		s.probeMask = make([]uint8, 0, n)
		s.flags = make([]uint8, 0, n)
		s.fail = make([]zgrab.FailMode, 0, n)
		s.attempts = make([]int32, 0, n)
		s.t = make([]time.Duration, 0, n)
		s.banner = make([]string, 0, n)
	}
	return s
}

// Add records a host outcome, replacing any existing record for the host
// (the replacement is resolved at Seal time; Add itself only appends).
func (s *ScanResult) Add(r HostRecord) {
	s.sealed = false
	s.l7Addrs = nil
	s.addrs = append(s.addrs, r.Addr)
	s.probeMask = append(s.probeMask, r.ProbeMask)
	var f uint8
	if r.RST {
		f |= flagRST
	}
	if r.L7 {
		f |= flagL7
	}
	s.flags = append(s.flags, f)
	s.fail = append(s.fail, r.Fail)
	s.attempts = append(s.attempts, int32(r.Attempts))
	s.t = append(s.t, r.T)
	s.banner = append(s.banner, r.Banner)
	if s.spill != nil {
		s.spill.liveBytes += spillRowBytes + int64(len(r.Banner))
		s.maybeSpill()
	}
}

// AddBatch appends a block of records — the batched grab hand-off writes
// its per-reply slots straight into the columns in reply order.
func (s *ScanResult) AddBatch(rs []HostRecord) {
	for i := range rs {
		s.Add(rs[i])
	}
}

// Seal sorts the columns by address and resolves duplicate Adds (last
// wins). It is idempotent; readers call it lazily, and Dataset.Put calls it
// eagerly so stored scans are immutable, concurrency-safe views. Scan
// results arriving already sorted (decoded datasets) seal without sorting.
//
// For a spill-backed result Seal runs the external merge and panics if the
// merge itself fails (readers have no error channel); callers that can
// handle I/O failure should prefer SealErr.
func (s *ScanResult) Seal() {
	if s.sealed {
		return
	}
	if s.spill != nil {
		if err := s.SealErr(); err != nil && !s.sealed {
			panic(fmt.Sprintf("results: sealing spilled result: %v", err))
		}
		return
	}
	s.sealMem()
}

// sealMem is the in-memory seal: one stable sort + keep-last dedup over
// the columns, then the L7 cache. The spill store's Seal ends here too,
// after the external merge has already left the columns sorted.
func (s *ScanResult) sealMem() {
	if s.sealed {
		return
	}
	if !s.addrs.IsSorted() {
		sort.Stable((*byAddr)(s))
		s.dedup()
	}
	n := 0
	for _, f := range s.flags {
		if f&flagL7 != 0 {
			n++
		}
	}
	l7 := make(ip.AddrSlice, 0, n)
	for i, f := range s.flags {
		if f&flagL7 != 0 {
			l7 = append(l7, s.addrs[i])
		}
	}
	s.l7Addrs = l7
	s.sealed = true
}

func (s *ScanResult) seal() {
	if !s.sealed {
		s.Seal()
	}
}

// byAddr sorts all columns together by the address column. The sort must be
// stable so that, of several Adds for one host, the latest stays last and
// dedup can keep it (map-replacement semantics).
type byAddr ScanResult

func (s *byAddr) Len() int           { return len(s.addrs) }
func (s *byAddr) Less(i, j int) bool { return s.addrs[i].Less(s.addrs[j]) }
func (s *byAddr) Swap(i, j int) {
	s.addrs[i], s.addrs[j] = s.addrs[j], s.addrs[i]
	s.probeMask[i], s.probeMask[j] = s.probeMask[j], s.probeMask[i]
	s.flags[i], s.flags[j] = s.flags[j], s.flags[i]
	s.fail[i], s.fail[j] = s.fail[j], s.fail[i]
	s.attempts[i], s.attempts[j] = s.attempts[j], s.attempts[i]
	s.t[i], s.t[j] = s.t[j], s.t[i]
	s.banner[i], s.banner[j] = s.banner[j], s.banner[i]
}

// dedup compacts sorted columns, keeping the last row of each address run.
func (s *ScanResult) dedup() {
	before := len(s.addrs)
	out := 0
	for i := 0; i < len(s.addrs); {
		j := i
		for j+1 < len(s.addrs) && s.addrs[j+1] == s.addrs[i] {
			j++
		}
		if out != j {
			s.addrs[out] = s.addrs[j]
			s.probeMask[out] = s.probeMask[j]
			s.flags[out] = s.flags[j]
			s.fail[out] = s.fail[j]
			s.attempts[out] = s.attempts[j]
			s.t[out] = s.t[j]
			s.banner[out] = s.banner[j]
		}
		out++
		i = j + 1
	}
	s.addrs = s.addrs[:out]
	s.probeMask = s.probeMask[:out]
	s.flags = s.flags[:out]
	s.fail = s.fail[:out]
	s.attempts = s.attempts[:out]
	s.t = s.t[:out]
	s.banner = s.banner[:out]
	s.dedupDropped += before - out
}

// Len returns the number of recorded hosts.
func (s *ScanResult) Len() int {
	s.seal()
	return len(s.addrs)
}

// SealStats seals the result and reports the committed row count and the
// number of duplicate rows Seal's keep-last dedup discarded. Telemetry
// records both when a scan commits to the dataset.
func (s *ScanResult) SealStats() (rows, deduped int) {
	s.seal()
	return len(s.addrs), s.dedupDropped
}

// Addrs returns the sealed, sorted address column. Callers must not modify
// it; it is the merge-join spine the analyses iterate against.
func (s *ScanResult) Addrs() ip.AddrSlice {
	s.seal()
	return s.addrs
}

// L7Addrs returns the sorted addresses with successful L7 handshakes
// (cached at Seal). Callers must not modify it.
func (s *ScanResult) L7Addrs() ip.AddrSlice {
	s.seal()
	return s.l7Addrs
}

// Find returns the row index of addr in the sealed columns.
func (s *ScanResult) Find(addr ip.Addr) (int, bool) {
	s.seal()
	i := s.addrs.Search(addr)
	if i < len(s.addrs) && s.addrs[i] == addr {
		return i, true
	}
	return i, false
}

// RecordAt materializes row i of the sealed columns. Indices come from
// Find or from iterating Addrs.
func (s *ScanResult) RecordAt(i int) HostRecord {
	return HostRecord{
		Addr:      s.addrs[i],
		ProbeMask: s.probeMask[i],
		RST:       s.flags[i]&flagRST != 0,
		L7:        s.flags[i]&flagL7 != 0,
		Fail:      s.fail[i],
		Banner:    s.banner[i],
		Attempts:  int(s.attempts[i]),
		T:         s.t[i],
	}
}

// SuccessAt reports whether row i is an L7 success, optionally requiring a
// response to probe 0 (the single-probe simulation).
func (s *ScanResult) SuccessAt(i int, singleProbe bool) bool {
	if s.flags[i]&flagL7 == 0 {
		return false
	}
	if singleProbe && s.probeMask[i]&1 == 0 {
		return false
	}
	return true
}

// Get returns the record for addr.
func (s *ScanResult) Get(addr ip.Addr) (HostRecord, bool) {
	if i, ok := s.Find(addr); ok {
		return s.RecordAt(i), true
	}
	return HostRecord{}, false
}

// L7Count returns the number of hosts with successful handshakes.
func (s *ScanResult) L7Count() int {
	s.seal()
	return len(s.l7Addrs)
}

// Success reports whether the scan completed an L7 handshake with addr,
// optionally requiring a response to probe 0 (the single-probe simulation
// the paper uses: "we simulate scanning with one probe by requiring
// successful responses to both of our ZMap probes" — in our direction,
// requiring probe 0's response).
func (s *ScanResult) Success(addr ip.Addr, singleProbe bool) bool {
	i, ok := s.Find(addr)
	return ok && s.SuccessAt(i, singleProbe)
}

// CountSuccessIn counts how many of the addresses in gt the scan
// successfully handshaked with — a two-pointer merge-join over the sealed
// address column.
//
// Precondition: gt must be sorted ascending with no duplicates (the shape
// GroundTruth and the ip.Union/Intersect helpers produce). The merge
// cursor only moves forward, so an unsorted gt silently undercounts —
// it is not detected.
func (s *ScanResult) CountSuccessIn(gt []ip.Addr, singleProbe bool) int {
	s.seal()
	n, j := 0, 0
	for _, a := range gt {
		for j < len(s.addrs) && s.addrs[j].Less(a) {
			j++
		}
		if j < len(s.addrs) && s.addrs[j] == a && s.SuccessAt(j, singleProbe) {
			n++
		}
	}
	return n
}

// Each visits every record in ascending address order. Iteration seals the
// result first, so the columns fn observes are sorted and deduplicated; it
// reads them in place and performs no per-call allocation. fn must not
// call Add on the same result mid-iteration — that unseals the columns
// under the running loop.
func (s *ScanResult) Each(fn func(HostRecord)) {
	s.seal()
	for i := range s.addrs {
		fn(s.RecordAt(i))
	}
}

// DiffAgainst compares two scans row-by-row, returning "" when identical or
// a description of the first difference. It is the one record comparator:
// Equal and Dataset.Diff both delegate here.
func (s *ScanResult) DiffAgainst(o *ScanResult) string {
	if s.Origin != o.Origin || s.Proto != o.Proto || s.Trial != o.Trial {
		return fmt.Sprintf("identity %v/%v/trial %d vs %v/%v/trial %d",
			s.Origin, s.Proto, s.Trial, o.Origin, o.Proto, o.Trial)
	}
	s.seal()
	o.seal()
	if len(s.addrs) != len(o.addrs) {
		return fmt.Sprintf("%d vs %d records", len(s.addrs), len(o.addrs))
	}
	for i := range s.addrs {
		if s.addrs[i] != o.addrs[i] {
			return fmt.Sprintf("row %d: host %v vs %v", i, s.addrs[i], o.addrs[i])
		}
		if r, or := s.RecordAt(i), o.RecordAt(i); r != or {
			return fmt.Sprintf("host %v: %+v vs %+v", s.addrs[i], r, or)
		}
	}
	if s.Targets != o.Targets || s.ProbesSent != o.ProbesSent ||
		s.SynAcks != o.SynAcks || s.Rsts != o.Rsts || s.Invalid != o.Invalid {
		return fmt.Sprintf("stats differ: %+v vs %+v",
			[5]uint64{s.Targets, s.ProbesSent, s.SynAcks, s.Rsts, s.Invalid},
			[5]uint64{o.Targets, o.ProbesSent, o.SynAcks, o.Rsts, o.Invalid})
	}
	return ""
}

// Equal reports whether two scans hold identical records and statistics.
func (s *ScanResult) Equal(o *ScanResult) bool { return s.DiffAgainst(o) == "" }

// Dataset is the full study output: results indexed by origin, protocol,
// and trial.
type Dataset struct {
	Origins origin.Set
	Trials  int
	scans   map[key]*ScanResult

	gtMu    sync.Mutex // guards gtCache (analyses may run concurrently)
	gtCache map[gtKey][]ip.Addr
}

type key struct {
	o origin.ID
	p proto.Protocol
	t int
}

type gtKey struct {
	p proto.Protocol
	t int
}

// NewDataset returns an empty dataset for the given origins and trials.
func NewDataset(origins origin.Set, trials int) *Dataset {
	return &Dataset{
		Origins: origins,
		Trials:  trials,
		scans:   make(map[key]*ScanResult),
		gtCache: make(map[gtKey][]ip.Addr),
	}
}

// Put stores a completed scan, sealing it: stored scans are sorted,
// immutable views safe for the concurrent analyses. Putting a scan at an
// occupied (origin, proto, trial) key is an error tagged
// pipeline.ErrSealConflict unless the new scan is identical to the sealed
// one (an idempotent re-put is a no-op); use Replace to overwrite
// deliberately.
func (d *Dataset) Put(s *ScanResult) error {
	s.Seal()
	k := key{s.Origin, s.Proto, s.Trial}
	if old := d.scans[k]; old != nil && old != s {
		if diff := old.DiffAgainst(s); diff != "" {
			return pipeline.Tag(pipeline.ErrSealConflict,
				fmt.Errorf("results: %v/%v/trial %d already sealed (%s)", s.Origin, s.Proto, s.Trial, diff))
		}
		return nil
	}
	d.store(k, s)
	return nil
}

// Replace stores a sealed scan at its key, overwriting any existing scan
// and invalidating the ground-truth cache. It is the explicit-overwrite
// counterpart to Put for callers that recompute a scan on purpose.
func (d *Dataset) Replace(s *ScanResult) {
	s.Seal()
	d.store(key{s.Origin, s.Proto, s.Trial}, s)
}

func (d *Dataset) store(k key, s *ScanResult) {
	d.scans[k] = s
	d.gtMu.Lock()
	delete(d.gtCache, gtKey{s.Proto, s.Trial})
	d.gtMu.Unlock()
}

// Len returns the number of stored scans.
func (d *Dataset) Len() int { return len(d.scans) }

// Scan returns the result for (origin, proto, trial), or nil when absent.
func (d *Dataset) Scan(o origin.ID, p proto.Protocol, trial int) *ScanResult {
	return d.scans[key{o, p, trial}]
}

// MustScan is Scan that panics on absence (programming error in analyses).
func (d *Dataset) MustScan(o origin.ID, p proto.Protocol, trial int) *ScanResult {
	s := d.Scan(o, p, trial)
	if s == nil {
		panic(fmt.Sprintf("results: no scan for %v/%v/trial %d", o, p, trial))
	}
	return s
}

// GroundTruth returns the sorted set of hosts that completed an L7
// handshake with at least one origin in the trial — the paper's working
// definition of live hosts. It is a k-way merge union of the scans' sealed
// L7 address columns, cached per (protocol, trial).
func (d *Dataset) GroundTruth(p proto.Protocol, trial int) []ip.Addr {
	gk := gtKey{p, trial}
	d.gtMu.Lock()
	gt, ok := d.gtCache[gk]
	d.gtMu.Unlock()
	if ok {
		return gt
	}
	lists := make([]ip.AddrSlice, 0, len(d.Origins))
	for _, o := range d.Origins {
		if s := d.Scan(o, p, trial); s != nil {
			lists = append(lists, s.L7Addrs())
		}
	}
	gt = ip.Union(lists...)
	d.gtMu.Lock()
	d.gtCache[gk] = gt
	d.gtMu.Unlock()
	return gt
}

// Diff compares two datasets scan-by-scan and record-by-record, returning
// "" when they are identical or a description of the first difference. The
// parallel engine's determinism test relies on this to prove a parallel run
// bit-identical to a serial one.
func (d *Dataset) Diff(o *Dataset) string {
	if len(d.scans) != len(o.scans) {
		return fmt.Sprintf("scan count %d vs %d", len(d.scans), len(o.scans))
	}
	for k, s := range d.scans {
		os, ok := o.scans[k]
		if !ok {
			return fmt.Sprintf("scan %v/%v/trial %d missing from other", k.o, k.p, k.t)
		}
		if msg := s.DiffAgainst(os); msg != "" {
			return fmt.Sprintf("scan %v/%v/trial %d: %s", k.o, k.p, k.t, msg)
		}
	}
	return ""
}

// Equal reports whether two datasets are record-for-record identical.
func (d *Dataset) Equal(o *Dataset) bool { return d.Diff(o) == "" }

// Intersection returns the number of ground-truth hosts every origin saw in
// the trial (the ∩ column of Table 4a): a k-way merge intersection of the
// scans' L7 columns. Origins that did not scan the trial (Carinet outside
// trial 1) are skipped, as in the paper.
func (d *Dataset) Intersection(p proto.Protocol, trial int) int {
	lists := make([]ip.AddrSlice, 0, len(d.Origins))
	for _, o := range d.Origins {
		if s := d.Scan(o, p, trial); s != nil {
			lists = append(lists, s.L7Addrs())
		}
	}
	return len(ip.IntersectAll(lists...))
}

// Coverage returns the fraction of the trial's ground truth the origin saw.
func (d *Dataset) Coverage(o origin.ID, p proto.Protocol, trial int, singleProbe bool) float64 {
	gt := d.GroundTruth(p, trial)
	if len(gt) == 0 {
		return 0
	}
	s := d.Scan(o, p, trial)
	if s == nil {
		return 0
	}
	return float64(s.CountSuccessIn(gt, singleProbe)) / float64(len(gt))
}

// CoverageOfSet returns the fraction of the trial's ground truth seen by
// any origin in the set — multi-origin coverage (§7, Figure 15). One merge
// pass with a cursor per scan replaces the per-host hash probes of the map
// store; it is the hot path of the 2^n-combination multi-origin analysis.
func (d *Dataset) CoverageOfSet(origins origin.Set, p proto.Protocol, trial int, singleProbe bool) float64 {
	gt := d.GroundTruth(p, trial)
	if len(gt) == 0 {
		return 0
	}
	scans := make([]*ScanResult, 0, len(origins))
	for _, o := range origins {
		if s := d.Scan(o, p, trial); s != nil {
			s.seal()
			scans = append(scans, s)
		}
	}
	cursors := make([]int, len(scans))
	n := 0
	for _, a := range gt {
		for si, s := range scans {
			j := cursors[si]
			for j < len(s.addrs) && s.addrs[j].Less(a) {
				j++
			}
			cursors[si] = j
			if j < len(s.addrs) && s.addrs[j] == a && s.SuccessAt(j, singleProbe) {
				n++
				break
			}
		}
	}
	return float64(n) / float64(len(gt))
}
