// Package results holds the measurement data a study produces: for every
// (origin, protocol, trial), the per-host probe and handshake outcomes, plus
// the set algebra the paper's analyses run on top (ground-truth unions,
// per-origin misses, intersections).
package results

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/zgrab"
)

// HostRecord is one host's outcome in one scan.
type HostRecord struct {
	Addr ip.Addr
	// ProbeMask has bit i set when ZMap probe i elicited a valid SYN-ACK.
	ProbeMask uint8
	// RST is set when the host answered probes with RST.
	RST bool
	// L7 is set when the application-layer handshake succeeded.
	L7 bool
	// Fail records why the L7 grab failed (FailNone when L7).
	Fail zgrab.FailMode
	// Banner is the captured application banner: HTTP Server header,
	// negotiated TLS cipher suite, or SSH software version.
	Banner string
	// Attempts is the number of connection attempts the grab used.
	Attempts int
	// T is the virtual time the host was probed.
	T time.Duration
}

// L4 reports whether the host was L4-responsive (any SYN-ACK).
func (r *HostRecord) L4() bool { return r.ProbeMask != 0 }

// ScanResult is one origin's scan of one protocol in one trial.
type ScanResult struct {
	Origin origin.ID
	Proto  proto.Protocol
	Trial  int

	// Scan statistics from the scanner.
	Targets, ProbesSent, SynAcks, Rsts, Invalid uint64

	records map[ip.Addr]HostRecord
}

// NewScanResult returns an empty result set.
func NewScanResult(o origin.ID, p proto.Protocol, trial int) *ScanResult {
	return NewScanResultSized(o, p, trial, 0)
}

// NewScanResultSized returns an empty result set with record storage sized
// for n hosts, avoiding map regrowth when the caller knows the reply count.
func NewScanResultSized(o origin.ID, p proto.Protocol, trial int, n int) *ScanResult {
	return &ScanResult{
		Origin: o, Proto: p, Trial: trial,
		records: make(map[ip.Addr]HostRecord, n),
	}
}

// Equal reports whether two scans hold identical records and statistics.
func (s *ScanResult) Equal(o *ScanResult) bool {
	if s.Origin != o.Origin || s.Proto != o.Proto || s.Trial != o.Trial ||
		s.Targets != o.Targets || s.ProbesSent != o.ProbesSent ||
		s.SynAcks != o.SynAcks || s.Rsts != o.Rsts || s.Invalid != o.Invalid ||
		len(s.records) != len(o.records) {
		return false
	}
	for a, r := range s.records {
		if or, ok := o.records[a]; !ok || or != r {
			return false
		}
	}
	return true
}

// Add records a host outcome, replacing any existing record for the host.
func (s *ScanResult) Add(r HostRecord) { s.records[r.Addr] = r }

// Get returns the record for addr.
func (s *ScanResult) Get(addr ip.Addr) (HostRecord, bool) {
	r, ok := s.records[addr]
	return r, ok
}

// Len returns the number of recorded hosts.
func (s *ScanResult) Len() int { return len(s.records) }

// L7Count returns the number of hosts with successful handshakes.
func (s *ScanResult) L7Count() int {
	n := 0
	for _, r := range s.records {
		if r.L7 {
			n++
		}
	}
	return n
}

// Success reports whether the scan completed an L7 handshake with addr,
// optionally requiring a response to probe 0 (the single-probe simulation
// the paper uses: "we simulate scanning with one probe by requiring
// successful responses to both of our ZMap probes" — in our direction,
// requiring probe 0's response).
func (s *ScanResult) Success(addr ip.Addr, singleProbe bool) bool {
	r, ok := s.records[addr]
	if !ok || !r.L7 {
		return false
	}
	if singleProbe && r.ProbeMask&1 == 0 {
		return false
	}
	return true
}

// Each visits every record in address order.
func (s *ScanResult) Each(fn func(HostRecord)) {
	addrs := make([]ip.Addr, 0, len(s.records))
	for a := range s.records {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fn(s.records[a])
	}
}

// Dataset is the full study output: results indexed by origin, protocol,
// and trial.
type Dataset struct {
	Origins origin.Set
	Trials  int
	scans   map[key]*ScanResult

	gtMu    sync.Mutex // guards gtCache (analyses may run concurrently)
	gtCache map[gtKey][]ip.Addr
}

type key struct {
	o origin.ID
	p proto.Protocol
	t int
}

type gtKey struct {
	p proto.Protocol
	t int
}

// NewDataset returns an empty dataset for the given origins and trials.
func NewDataset(origins origin.Set, trials int) *Dataset {
	return &Dataset{
		Origins: origins,
		Trials:  trials,
		scans:   make(map[key]*ScanResult),
		gtCache: make(map[gtKey][]ip.Addr),
	}
}

// Put stores a completed scan.
func (d *Dataset) Put(s *ScanResult) {
	d.scans[key{s.Origin, s.Proto, s.Trial}] = s
	d.gtMu.Lock()
	delete(d.gtCache, gtKey{s.Proto, s.Trial})
	d.gtMu.Unlock()
}

// Len returns the number of stored scans.
func (d *Dataset) Len() int { return len(d.scans) }

// Scan returns the result for (origin, proto, trial), or nil when absent.
func (d *Dataset) Scan(o origin.ID, p proto.Protocol, trial int) *ScanResult {
	return d.scans[key{o, p, trial}]
}

// MustScan is Scan that panics on absence (programming error in analyses).
func (d *Dataset) MustScan(o origin.ID, p proto.Protocol, trial int) *ScanResult {
	s := d.Scan(o, p, trial)
	if s == nil {
		panic(fmt.Sprintf("results: no scan for %v/%v/trial %d", o, p, trial))
	}
	return s
}

// GroundTruth returns the sorted set of hosts that completed an L7
// handshake with at least one origin in the trial — the paper's working
// definition of live hosts.
func (d *Dataset) GroundTruth(p proto.Protocol, trial int) []ip.Addr {
	gk := gtKey{p, trial}
	d.gtMu.Lock()
	gt, ok := d.gtCache[gk]
	d.gtMu.Unlock()
	if ok {
		return gt
	}
	set := make(map[ip.Addr]bool)
	for _, o := range d.Origins {
		s := d.Scan(o, p, trial)
		if s == nil {
			continue
		}
		for a, r := range s.records {
			if r.L7 {
				set[a] = true
			}
		}
	}
	gt = make([]ip.Addr, 0, len(set))
	for a := range set {
		gt = append(gt, a)
	}
	sort.Slice(gt, func(i, j int) bool { return gt[i] < gt[j] })
	d.gtMu.Lock()
	d.gtCache[gk] = gt
	d.gtMu.Unlock()
	return gt
}

// Diff compares two datasets scan-by-scan and record-by-record, returning
// "" when they are identical or a description of the first difference. The
// parallel engine's determinism test relies on this to prove a parallel run
// bit-identical to a serial one.
func (d *Dataset) Diff(o *Dataset) string {
	if len(d.scans) != len(o.scans) {
		return fmt.Sprintf("scan count %d vs %d", len(d.scans), len(o.scans))
	}
	for k, s := range d.scans {
		os, ok := o.scans[k]
		if !ok {
			return fmt.Sprintf("scan %v/%v/trial %d missing from other", k.o, k.p, k.t)
		}
		if !s.Equal(os) {
			if s.Len() != os.Len() {
				return fmt.Sprintf("scan %v/%v/trial %d: %d vs %d records", k.o, k.p, k.t, s.Len(), os.Len())
			}
			for a, r := range s.records {
				or, ok := os.records[a]
				if !ok {
					return fmt.Sprintf("scan %v/%v/trial %d: host %v missing from other", k.o, k.p, k.t, a)
				}
				if or != r {
					return fmt.Sprintf("scan %v/%v/trial %d: host %v: %+v vs %+v", k.o, k.p, k.t, a, r, or)
				}
			}
			return fmt.Sprintf("scan %v/%v/trial %d: stats differ: %+v vs %+v",
				k.o, k.p, k.t,
				[5]uint64{s.Targets, s.ProbesSent, s.SynAcks, s.Rsts, s.Invalid},
				[5]uint64{os.Targets, os.ProbesSent, os.SynAcks, os.Rsts, os.Invalid})
		}
	}
	return ""
}

// Equal reports whether two datasets are record-for-record identical.
func (d *Dataset) Equal(o *Dataset) bool { return d.Diff(o) == "" }

// Intersection returns the number of ground-truth hosts every origin saw in
// the trial (the ∩ column of Table 4a). Origins that did not scan the trial
// (Carinet outside trial 1) are skipped, as in the paper.
func (d *Dataset) Intersection(p proto.Protocol, trial int) int {
	var scans []*ScanResult
	for _, o := range d.Origins {
		if s := d.Scan(o, p, trial); s != nil {
			scans = append(scans, s)
		}
	}
	n := 0
	for _, a := range d.GroundTruth(p, trial) {
		all := true
		for _, s := range scans {
			if !s.Success(a, false) {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of the trial's ground truth the origin saw.
func (d *Dataset) Coverage(o origin.ID, p proto.Protocol, trial int, singleProbe bool) float64 {
	gt := d.GroundTruth(p, trial)
	if len(gt) == 0 {
		return 0
	}
	s := d.Scan(o, p, trial)
	if s == nil {
		return 0
	}
	n := 0
	for _, a := range gt {
		if s.Success(a, singleProbe) {
			n++
		}
	}
	return float64(n) / float64(len(gt))
}

// CoverageOfSet returns the fraction of the trial's ground truth seen by
// any origin in the set — multi-origin coverage (§7, Figure 15).
func (d *Dataset) CoverageOfSet(origins origin.Set, p proto.Protocol, trial int, singleProbe bool) float64 {
	gt := d.GroundTruth(p, trial)
	if len(gt) == 0 {
		return 0
	}
	n := 0
	for _, a := range gt {
		for _, o := range origins {
			if s := d.Scan(o, p, trial); s != nil && s.Success(a, singleProbe) {
				n++
				break
			}
		}
	}
	return float64(n) / float64(len(gt))
}
