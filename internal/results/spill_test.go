package results

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
)

// spillTestBudgets are the adversarial thresholds the differential runs:
// 1 byte (every Add flushes a one-row segment, maximizing run count and
// forcing hierarchical merges), a threshold smaller than one AddBatch (so
// flushes land mid-batch), a frame-ish threshold, and one large enough to
// never spill (the spill store must degrade to the memory path). The
// RESULTS_SPILL_BUDGET env knob (used by the CI spill job) appends an
// extra threshold.
func spillTestBudgets(t *testing.T) []int64 {
	budgets := []int64{1, 4 * spillRowBytes, 64 << 10, 1 << 40}
	if v := os.Getenv("RESULTS_SPILL_BUDGET"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("RESULTS_SPILL_BUDGET=%q: %v", v, err)
		}
		budgets = append(budgets, b)
	}
	return budgets
}

// sealedJSON wraps one scan in a dataset and returns its WriteJSON bytes —
// the byte-identity oracle the golden dataset also pins.
func sealedJSON(t *testing.T, s *ScanResult) []byte {
	t.Helper()
	d := NewDataset(origin.Set{s.Origin}, s.Trial+1)
	if err := d.Put(s); err != nil {
		t.Fatalf("Put: %v", err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// countFiles walks dir counting regular files (leaked segments).
func countFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.Walk(dir, func(_ string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return n
}

// spillRandRecord widens randRecord's address pool so runs hold a mix of
// unique and duplicated hosts, and occasionally grows the banner past the
// tiny-budget thresholds so flush boundaries land inside banner-heavy rows.
func spillRandRecord(rng *rand.Rand) HostRecord {
	r := randRecord(rng)
	r.Addr = ip.AddrFrom4(uint32(rng.Intn(2048)))
	if rng.Intn(16) == 0 {
		r.Addr = ip.AddrFrom4(uint32(rng.Intn(8))) // heavy-duplicate pocket
	}
	if r.L7 && rng.Intn(8) == 0 {
		r.Banner = strings.Repeat("banner-", 1+rng.Intn(40))
	}
	return r
}

// TestSpillDifferential is the determinism proof in test form: identical
// record streams through the in-memory store and spill stores at every
// adversarial threshold must produce an empty DiffAgainst, identical
// sealed JSON bytes, identical SealStats, and no leftover segment files.
// The stream interleaves Add, AddBatch (larger than the tiny thresholds,
// so spills trigger mid-batch), and mid-stream Seal (forcing merge →
// re-open → re-spill cycles).
func TestSpillDifferential(t *testing.T) {
	budgets := spillTestBudgets(t)
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// One scripted random stream per seed, replayed into every store.
		type op struct {
			batch []HostRecord // nil = Seal
		}
		var script []op
		nops := 20 + rng.Intn(40)
		for i := 0; i < nops; i++ {
			switch rng.Intn(8) {
			case 0:
				script = append(script, op{}) // mid-stream Seal
			case 1, 2, 3:
				batch := make([]HostRecord, 1+rng.Intn(200))
				for j := range batch {
					batch[j] = spillRandRecord(rng)
				}
				script = append(script, op{batch: batch})
			default:
				script = append(script, op{batch: []HostRecord{spillRandRecord(rng)}})
			}
		}
		stats := [5]uint64{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}

		run := func(s *ScanResult) {
			for _, o := range script {
				if o.batch == nil {
					s.Seal()
					continue
				}
				if len(o.batch) == 1 {
					s.Add(o.batch[0])
				} else {
					s.AddBatch(o.batch)
				}
			}
			s.Targets, s.ProbesSent, s.SynAcks, s.Rsts, s.Invalid =
				stats[0], stats[1], stats[2], stats[3], stats[4]
		}

		mem := NewScanResult(origin.US1, proto.HTTP, 0)
		run(mem)
		wantJSON := sealedJSON(t, mem)
		wantRows, wantDeduped := mem.SealStats()

		for _, budget := range budgets {
			dir := t.TempDir()
			sp, err := NewSpilledScanResult(origin.US1, proto.HTTP, 0, 0, SpillConfig{Dir: dir, Budget: budget})
			if err != nil {
				t.Fatalf("seed %d budget %d: %v", seed, budget, err)
			}
			run(sp)
			if err := sp.SealErr(); err != nil {
				t.Fatalf("seed %d budget %d: SealErr: %v", seed, budget, err)
			}
			if diff := mem.DiffAgainst(sp); diff != "" {
				t.Fatalf("seed %d budget %d: mem vs spill: %s", seed, budget, diff)
			}
			if diff := sp.DiffAgainst(mem); diff != "" {
				t.Fatalf("seed %d budget %d: spill vs mem: %s", seed, budget, diff)
			}
			if got := sealedJSON(t, sp); !bytes.Equal(got, wantJSON) {
				t.Fatalf("seed %d budget %d: sealed JSON differs (%d vs %d bytes)",
					seed, budget, len(got), len(wantJSON))
			}
			rows, deduped := sp.SealStats()
			if rows != wantRows || deduped != wantDeduped {
				t.Fatalf("seed %d budget %d: SealStats=(%d,%d) want (%d,%d)",
					seed, budget, rows, deduped, wantRows, wantDeduped)
			}
			if n := countFiles(t, dir); n != 0 {
				t.Fatalf("seed %d budget %d: %d segment files leaked after seal", seed, budget, n)
			}
			st := sp.SpillStats()
			if budget == 1 && st.Segments == 0 {
				t.Fatalf("seed %d: threshold-1 store never spilled", seed)
			}
			if budget == 1<<40 && st.Segments != 0 {
				t.Fatalf("seed %d: huge-threshold store spilled %d segments", seed, st.Segments)
			}
			if st.Segments > 0 && st.SpilledBytes == 0 {
				t.Fatalf("seed %d budget %d: segments without bytes", seed, budget)
			}
		}
	}
}

// TestSpillHierarchicalMerge pins the fan-in cap path: more runs than
// spillMergeFanIn must merge in multiple passes and still match the
// memory store.
func TestSpillHierarchicalMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mem := NewScanResult(origin.DE, proto.SSH, 2)
	sp, err := NewSpilledScanResult(origin.DE, proto.SSH, 2, 0, SpillConfig{Dir: t.TempDir(), Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Budget 1 flushes a segment per Add: 3×fan-in Adds → 3×fan-in runs.
	for i := 0; i < 3*spillMergeFanIn; i++ {
		r := spillRandRecord(rng)
		mem.Add(r)
		sp.Add(r)
	}
	if err := sp.SealErr(); err != nil {
		t.Fatalf("SealErr: %v", err)
	}
	st := sp.SpillStats()
	if st.MergePasses < 2 {
		t.Fatalf("expected hierarchical merge, got %d pass(es) over %d segments",
			st.MergePasses, st.Segments)
	}
	if st.MergeFanIn > spillMergeFanIn {
		t.Fatalf("final fan-in %d exceeds cap %d", st.MergeFanIn, spillMergeFanIn)
	}
	if diff := mem.DiffAgainst(sp); diff != "" {
		t.Fatalf("hierarchical merge diverged: %s", diff)
	}
}

// TestSpillDiscard asserts an abandoned result deletes its segments.
func TestSpillDiscard(t *testing.T) {
	dir := t.TempDir()
	sp, err := NewSpilledScanResult(origin.US1, proto.HTTP, 0, 0, SpillConfig{Dir: dir, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 32; i++ {
		sp.Add(spillRandRecord(rng))
	}
	if n := countFiles(t, dir); n == 0 {
		t.Fatal("expected segment files before Discard")
	}
	if err := sp.Discard(); err != nil {
		t.Fatalf("Discard: %v", err)
	}
	if n := countFiles(t, dir); n != 0 {
		t.Fatalf("%d files leaked after Discard", n)
	}
}

// TestSpillFlushErrorIsStickyButLossless: when the spill device breaks
// mid-scan, the store stops spilling, keeps buffering in RAM (no record
// lost — the sealed columns still match the memory store), and SealErr
// reports the failure so the scan is not silently trusted to a broken
// disk.
func TestSpillFlushErrorIsStickyButLossless(t *testing.T) {
	dir := t.TempDir()
	spillDir := filepath.Join(dir, "spill")
	if err := os.Mkdir(spillDir, 0o755); err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpilledScanResult(origin.US1, proto.HTTP, 0, 0, SpillConfig{Dir: spillDir, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	mem := NewScanResult(origin.US1, proto.HTTP, 0)
	rng := rand.New(rand.NewSource(13))
	// Break the device before the first flush.
	if err := os.RemoveAll(spillDir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		r := spillRandRecord(rng)
		sp.Add(r)
		mem.Add(r)
	}
	if err := sp.SealErr(); err == nil {
		t.Fatal("SealErr: expected sticky flush error")
	}
	if diff := mem.DiffAgainst(sp); diff != "" {
		t.Fatalf("degraded store lost records: %s", diff)
	}
}

// TestSpilledConstructorClampsHint asserts the sizing fix: a capacity hint
// beyond what the budget allows must not pre-allocate past the ceiling.
func TestSpilledConstructorClampsHint(t *testing.T) {
	cfg := SpillConfig{Dir: t.TempDir(), Budget: 100 * spillRowBytes}
	sp, err := NewSpilledScanResult(origin.US1, proto.HTTP, 0, 1<<20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, max := cap(sp.addrs), cfg.maxRows(); got > max {
		t.Fatalf("hint pre-allocated %d rows, budget ceiling is %d", got, max)
	}
	// The in-memory constructor trusts the hint (documented asymmetry).
	mem := NewScanResultSized(origin.US1, proto.HTTP, 0, 1<<12)
	if cap(mem.addrs) != 1<<12 {
		t.Fatalf("in-memory hint not honored: cap %d", cap(mem.addrs))
	}
}

// TestSpilledConstructorRejectsBadDir: a missing spill dir is a config
// error at construction, not a mid-scan surprise.
func TestSpilledConstructorRejectsBadDir(t *testing.T) {
	if _, err := NewSpilledScanResult(origin.US1, proto.HTTP, 0, 0,
		SpillConfig{Dir: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Fatal("expected error for missing dir")
	}
	if _, err := NewSpilledScanResult(origin.US1, proto.HTTP, 0, 0, SpillConfig{}); err == nil {
		t.Fatal("expected error for empty dir")
	}
}
