// Package httpwire implements the minimal HTTP/1.1 client and server wire
// exchange used by the study's HTTP grabs: the client sends GET / and reads
// the status line, headers, and a bounded body; the server parses a request
// and writes a response. It deliberately implements the wire format directly
// (rather than net/http) so the grab works over any net.Conn — including the
// simulation fabric's virtual connections — with strict bounds on what is
// read from untrusted peers.
package httpwire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Limits on untrusted input.
const (
	MaxLineLen     = 8 << 10  // max request/status/header line
	MaxHeaderLen   = 32 << 10 // max total header block
	MaxHeaders     = 100
	DefaultMaxBody = 64 << 10
)

// Errors.
var (
	ErrLineTooLong    = errors.New("httpwire: line too long")
	ErrTooManyHeaders = errors.New("httpwire: too many headers")
	ErrMalformed      = errors.New("httpwire: malformed message")
)

// Request is a parsed HTTP request (server side).
type Request struct {
	Method  string
	Target  string
	Proto   string
	Headers []Header
}

// Response is a parsed HTTP response (client side).
type Response struct {
	Proto      string
	StatusCode int
	Status     string
	Headers    []Header
	Body       []byte // bounded; may be truncated at the configured cap
}

// Header is one header field.
type Header struct {
	Name, Value string
}

// Get returns the first header with the given name, case-insensitively.
func getHeader(hs []Header, name string) (string, bool) {
	for _, h := range hs {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// Get returns the first value of a response header.
func (r *Response) Get(name string) (string, bool) { return getHeader(r.Headers, name) }

// Get returns the first value of a request header.
func (r *Request) Get(name string) (string, bool) { return getHeader(r.Headers, name) }

// WriteRequest sends a GET-style request. host appears in the Host header,
// as ZGrab sends the target IP.
func WriteRequest(w io.Writer, method, target, host, userAgent string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, target)
	fmt.Fprintf(&b, "Host: %s\r\n", host)
	if userAgent != "" {
		fmt.Fprintf(&b, "User-Agent: %s\r\n", userAgent)
	}
	b.WriteString("Accept: */*\r\nConnection: close\r\n\r\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ReadRequest parses a request head from r (server side).
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, ErrMalformed
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	req.Headers, err = readHeaders(br)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// WriteResponse sends a complete response with the given body and headers.
func WriteResponse(w io.Writer, statusCode int, status string, headers []Header, body []byte) error {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", statusCode, status)
	hasLen := false
	for _, h := range headers {
		if strings.EqualFold(h.Name, "Content-Length") {
			hasLen = true
		}
		fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
	}
	if !hasLen {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
	}
	b.WriteString("Connection: close\r\n\r\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadResponse parses a response from r, reading at most maxBody bytes of
// body (0 means DefaultMaxBody).
func ReadResponse(br *bufio.Reader, maxBody int) (*Response, error) {
	if maxBody <= 0 {
		maxBody = DefaultMaxBody
	}
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, ErrMalformed
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 999 {
		return nil, ErrMalformed
	}
	resp := &Response{Proto: parts[0], StatusCode: code}
	if len(parts) == 3 {
		resp.Status = parts[2]
	}
	resp.Headers, err = readHeaders(br)
	if err != nil {
		return nil, err
	}

	// Body: honor Content-Length if present and sane, else read to EOF,
	// always bounded by maxBody.
	limit := maxBody
	if v, ok := resp.Get("Content-Length"); ok {
		if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 0 && n < limit {
			limit = n
		}
	}
	body := make([]byte, 0, min(limit, 4096))
	buf := make([]byte, 4096)
	for len(body) < limit {
		n, err := br.Read(buf[:min(len(buf), limit-len(body))])
		body = append(body, buf[:n]...)
		if err != nil {
			if err == io.EOF {
				break
			}
			// Connection errors after the head still yield the
			// head: a grab that got the status line succeeded.
			if isConnError(err) {
				break
			}
			return nil, err
		}
	}
	resp.Body = body
	return resp, nil
}

func isConnError(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) || errors.Is(err, io.ErrUnexpectedEOF)
}

func readLine(br *bufio.Reader) (string, error) {
	var b strings.Builder
	for {
		chunk, isPrefix, err := br.ReadLine()
		if err != nil {
			return "", err
		}
		if b.Len()+len(chunk) > MaxLineLen {
			return "", ErrLineTooLong
		}
		b.Write(chunk)
		if !isPrefix {
			return b.String(), nil
		}
	}
}

func readHeaders(br *bufio.Reader) ([]Header, error) {
	var hs []Header
	total := 0
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, err
		}
		if line == "" {
			return hs, nil
		}
		total += len(line)
		if total > MaxHeaderLen {
			return nil, ErrTooManyHeaders
		}
		if len(hs) >= MaxHeaders {
			return nil, ErrTooManyHeaders
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, ErrMalformed
		}
		hs = append(hs, Header{
			Name:  strings.TrimSpace(line[:colon]),
			Value: strings.TrimSpace(line[colon+1:]),
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
