package httpwire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, "GET", "/", "192.0.2.7", "Mozilla/5.0 zgrab/0.x"); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Target != "/" || req.Proto != "HTTP/1.1" {
		t.Errorf("request line: %+v", req)
	}
	if host, ok := req.Get("host"); !ok || host != "192.0.2.7" {
		t.Errorf("Host = %q,%v", host, ok)
	}
	if ua, ok := req.Get("User-Agent"); !ok || !strings.Contains(ua, "zgrab") {
		t.Errorf("User-Agent = %q,%v", ua, ok)
	}
	if _, ok := req.Get("Connection"); !ok {
		t.Error("Connection header missing")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("<html><title>Index</title></html>")
	err := WriteResponse(&buf, 200, "OK", []Header{{"Server", "nginx"}, {"Content-Type", "text/html"}}, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(&buf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || resp.Status != "OK" {
		t.Errorf("status: %d %q", resp.StatusCode, resp.Status)
	}
	if sv, _ := resp.Get("server"); sv != "nginx" {
		t.Errorf("Server = %q", sv)
	}
	if !bytes.Equal(resp.Body, body) {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestResponseBodyCapped(t *testing.T) {
	var buf bytes.Buffer
	big := bytes.Repeat([]byte("x"), 100<<10)
	if err := WriteResponse(&buf, 200, "OK", nil, big); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(&buf), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != 1024 {
		t.Errorf("body len = %d, want capped at 1024", len(resp.Body))
	}
}

func TestResponseWithoutContentLengthReadsToEOF(t *testing.T) {
	raw := "HTTP/1.1 301 Moved Permanently\r\nLocation: https://example.org/\r\n\r\nmoved"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 301 {
		t.Errorf("code = %d", resp.StatusCode)
	}
	if string(resp.Body) != "moved" {
		t.Errorf("body = %q", resp.Body)
	}
}

func TestMalformedResponses(t *testing.T) {
	bad := []string{
		"",                          // empty
		"garbage\r\n\r\n",           // no HTTP/
		"HTTP/1.1\r\n\r\n",          // no status code
		"HTTP/1.1 abc Oops\r\n\r\n", // non-numeric code
		"HTTP/1.1 99 Tiny\r\n\r\n",  // out-of-range code
		"HTTP/1.1 200 OK\r\nBadHeaderNoColon\r\n\r\n",
	}
	for _, raw := range bad {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 0); err == nil {
			t.Errorf("ReadResponse(%q) succeeded", raw)
		}
	}
}

func TestMalformedRequests(t *testing.T) {
	bad := []string{
		"GET /\r\n\r\n",               // missing proto
		"GET / FTP/1.0\r\n\r\n",       // wrong proto
		"GET / HTTP/1.1\r\nX\r\n\r\n", // header without colon
	}
	for _, raw := range bad {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadRequest(%q) succeeded", raw)
		}
	}
}

func TestHeaderLimits(t *testing.T) {
	var b strings.Builder
	b.WriteString("HTTP/1.1 200 OK\r\n")
	for i := 0; i < MaxHeaders+10; i++ {
		b.WriteString("X-H: v\r\n")
	}
	b.WriteString("\r\n")
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(b.String())), 0); err == nil {
		t.Error("unbounded header count accepted")
	}

	long := "HTTP/1.1 200 OK\r\nX-Long: " + strings.Repeat("a", MaxLineLen+10) + "\r\n\r\n"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(long)), 0); err == nil {
		t.Error("oversized header line accepted")
	}
}

func TestContentLengthIgnoredWhenInsane(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\nbody"
	resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "body" {
		t.Errorf("body = %q", resp.Body)
	}
}
