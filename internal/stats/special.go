// Package stats implements the statistical machinery the paper uses:
// McNemar's test with Bonferroni correction (§3), Cochran's Q, Spearman
// rank correlation with significance (§4.4, §5.2), empirical CDFs and
// summary statistics, and the rolling-window burst-outage detector (§5.3).
package stats

import "math"

// gammaIncLower returns the regularized lower incomplete gamma function
// P(a, x), via the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes approach, stdlib-only).
func gammaIncLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gser(a, x)
	}
	return 1 - gcf(a, x)
}

// gser computes P(a,x) by series expansion.
func gser(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gcf computes Q(a,x) by continued fraction.
func gcf(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareSurvival returns P(X >= x) for a chi-square distribution with
// df degrees of freedom.
func ChiSquareSurvival(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - gammaIncLower(float64(df)/2, x/2)
}

// betaInc returns the regularized incomplete beta function I_x(a, b).
func betaInc(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	bt := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for betaInc.
func betacf(a, b, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= itmax; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TDistSurvival2Sided returns the two-sided p-value for a t statistic with
// df degrees of freedom: P(|T| >= |t|).
func TDistSurvival2Sided(t float64, df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := float64(df) / (float64(df) + t*t)
	return betaInc(float64(df)/2, 0.5, x)
}
