package stats

import (
	"math"
	"sort"
)

// --- summary statistics ---

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation; xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	F float64 // cumulative fraction ≤ X
}

// CDF returns the empirical CDF of xs, optionally weighted (weights nil
// means uniform). The paper's Figure 9 plots both a plain and an
// AS-size-weighted CDF of the same values.
func CDF(xs []float64, weights []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	type pair struct{ x, w float64 }
	ps := make([]pair, len(xs))
	var total float64
	for i, x := range xs {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		ps[i] = pair{x, w}
		total += w
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].x < ps[j].x })
	out := make([]CDFPoint, 0, len(ps))
	var cum float64
	for i, p := range ps {
		cum += p.w
		if i+1 < len(ps) && ps[i+1].x == p.x {
			continue // collapse ties to the last point
		}
		out = append(out, CDFPoint{X: p.x, F: cum / total})
	}
	return out
}

// --- McNemar's test (§3) ---

// McNemarResult reports the paired test between two origins.
type McNemarResult struct {
	// B counts hosts seen by the first origin only; C by the second only.
	B, C uint64
	Chi2 float64
	P    float64
}

// McNemar runs McNemar's chi-square test (with continuity correction) on
// the discordant pair counts. The paper applies this to every pair of scan
// origins over the ground-truth host set.
func McNemar(b, c uint64) McNemarResult {
	r := McNemarResult{B: b, C: c}
	if b+c == 0 {
		r.P = 1
		return r
	}
	d := math.Abs(float64(b) - float64(c))
	// Continuity correction.
	if d > 1 {
		d--
	} else {
		d = 0
	}
	r.Chi2 = d * d / float64(b+c)
	r.P = ChiSquareSurvival(r.Chi2, 1)
	return r
}

// Bonferroni adjusts a p-value for m comparisons (capped at 1).
func Bonferroni(p float64, m int) float64 {
	adj := p * float64(m)
	if adj > 1 {
		return 1
	}
	return adj
}

// --- Cochran's Q (§3 discusses and rejects it in favour of pairwise
// McNemar; implemented for completeness and the library's users) ---

// CochranQ tests whether k binary treatments (origins) have identical
// success proportions over n blocks (hosts). rows[i] is block i's outcomes
// across the k treatments.
func CochranQ(rows [][]bool) (q float64, df int, p float64) {
	if len(rows) == 0 || len(rows[0]) < 2 {
		return 0, 0, 1
	}
	k := len(rows[0])
	colSums := make([]float64, k)
	var totalSum, rowSqSum float64
	for _, row := range rows {
		rowSum := 0.0
		for j, v := range row {
			if v {
				colSums[j]++
				rowSum++
			}
		}
		totalSum += rowSum
		rowSqSum += rowSum * rowSum
	}
	var colSqSum float64
	for _, c := range colSums {
		colSqSum += c * c
	}
	den := float64(k)*totalSum - rowSqSum
	if den == 0 {
		return 0, k - 1, 1
	}
	q = float64(k-1) * (float64(k)*colSqSum - totalSum*totalSum) / den
	df = k - 1
	return q, df, ChiSquareSurvival(q, df)
}

// --- Spearman rank correlation (§4.4: ρ=0.92 between host count and
// inaccessible count; §5.2: ρ=0.40–0.52 drop↔transient) ---

// SpearmanResult is a rank correlation with its two-sided p-value.
type SpearmanResult struct {
	Rho float64
	P   float64
	N   int
}

// Spearman computes the rank correlation of paired samples with average
// ranks for ties and a t-distribution significance test.
func Spearman(xs, ys []float64) SpearmanResult {
	n := len(xs)
	if n != len(ys) || n < 3 {
		return SpearmanResult{Rho: math.NaN(), P: math.NaN(), N: n}
	}
	rx, ry := ranks(xs), ranks(ys)
	rho := pearson(rx, ry)
	res := SpearmanResult{Rho: rho, N: n}
	if math.Abs(rho) >= 1 {
		res.P = 0
		return res
	}
	t := rho * math.Sqrt(float64(n-2)/(1-rho*rho))
	res.P = TDistSurvival2Sided(t, n-2)
	return res
}

// ranks assigns average ranks with tie handling.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

func pearson(xs, ys []float64) float64 {
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// --- burst detection (§5.3) ---

// RollingMean smooths xs with a centered window of the given width.
func RollingMean(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	half := window / 2
	for i := range xs {
		lo := i - half
		hi := i + (window - 1 - half)
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var s float64
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// DetectBursts finds indices whose noise component (series minus the
// rolling mean) exceeds threshSigma standard deviations of the noise —
// the paper's §5.3 procedure with a 4-hour window and 2σ threshold over
// hourly host-loss series.
func DetectBursts(series []float64, window int, threshSigma float64) []int {
	if len(series) == 0 {
		return nil
	}
	smooth := RollingMean(series, window)
	noise := make([]float64, len(series))
	for i := range series {
		noise[i] = series[i] - smooth[i]
	}
	sigma := StdDev(noise)
	if sigma == 0 {
		return nil
	}
	mean := Mean(noise)
	var bursts []int
	for i, v := range noise {
		if v-mean > threshSigma*sigma {
			bursts = append(bursts, i)
		}
	}
	return bursts
}
