package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "stddev", StdDev(xs), 2, 1e-12)
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should return 0")
	}
}

func TestQuantileAndMedian(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	approx(t, "median", Median(xs), 3, 1e-12)
	approx(t, "q0", Quantile(xs, 0), 1, 1e-12)
	approx(t, "q1", Quantile(xs, 1), 5, 1e-12)
	approx(t, "q25", Quantile(xs, 0.25), 2, 1e-12)
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty should be NaN")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{1, 2, 2, 3}, nil)
	if len(pts) != 3 {
		t.Fatalf("CDF points = %v", pts)
	}
	approx(t, "F(1)", pts[0].F, 0.25, 1e-12)
	approx(t, "F(2)", pts[1].F, 0.75, 1e-12)
	approx(t, "F(3)", pts[2].F, 1.0, 1e-12)

	// Weighted: weight mass shifts the curve (Figure 9's dashed line).
	w := CDF([]float64{0, 10}, []float64{9, 1})
	approx(t, "weighted F(0)", w[0].F, 0.9, 1e-12)
}

func TestChiSquareSurvival(t *testing.T) {
	// Known critical values: P(X^2_1 >= 3.841) ≈ 0.05,
	// P(X^2_6 >= 12.592) ≈ 0.05, P(X^2_1 >= 6.635) ≈ 0.01.
	approx(t, "chi2(3.841,1)", ChiSquareSurvival(3.841, 1), 0.05, 1e-3)
	approx(t, "chi2(12.592,6)", ChiSquareSurvival(12.592, 6), 0.05, 1e-3)
	approx(t, "chi2(6.635,1)", ChiSquareSurvival(6.635, 1), 0.01, 1e-3)
	if ChiSquareSurvival(0, 3) != 1 {
		t.Error("survival at 0 should be 1")
	}
}

func TestMcNemar(t *testing.T) {
	// Classic textbook example: b=59, c=6 → strongly significant.
	r := McNemar(59, 6)
	if r.P > 1e-8 {
		t.Errorf("p = %v, want tiny", r.P)
	}
	// Symmetric discordance: not significant.
	r = McNemar(10, 10)
	if r.P < 0.5 {
		t.Errorf("p = %v for b=c, want large", r.P)
	}
	// Degenerate.
	if McNemar(0, 0).P != 1 {
		t.Error("no discordance should give p=1")
	}
}

func TestBonferroni(t *testing.T) {
	approx(t, "bonferroni", Bonferroni(0.01, 21), 0.21, 1e-12)
	if Bonferroni(0.2, 10) != 1 {
		t.Error("should cap at 1")
	}
}

func TestCochranQ(t *testing.T) {
	// Three treatments where the third fails for most blocks: significant.
	var rows [][]bool
	for i := 0; i < 40; i++ {
		rows = append(rows, []bool{true, true, i%10 == 0})
	}
	q, df, p := CochranQ(rows)
	if df != 2 {
		t.Errorf("df = %d", df)
	}
	if q <= 0 || p > 0.001 {
		t.Errorf("q=%v p=%v, want significant", q, p)
	}
	// Identical treatments: not significant.
	rows = rows[:0]
	for i := 0; i < 40; i++ {
		v := i%2 == 0
		rows = append(rows, []bool{v, v, v})
	}
	_, _, p = CochranQ(rows)
	if p < 0.99 {
		t.Errorf("identical treatments p = %v", p)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{10, 20, 30, 40, 50, 60}
	r := Spearman(xs, ys)
	approx(t, "rho", r.Rho, 1, 1e-12)
	if r.P > 1e-6 {
		t.Errorf("p = %v for perfect correlation", r.P)
	}
	// Perfect anti-correlation.
	zs := []float64{6, 5, 4, 3, 2, 1}
	r = Spearman(xs, zs)
	approx(t, "rho", r.Rho, -1, 1e-12)
}

func TestSpearmanMonotonicNonlinear(t *testing.T) {
	// Spearman is rank-based: any monotone transform gives rho=1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	r := Spearman(xs, ys)
	approx(t, "rho", r.Rho, 1, 1e-12)
}

func TestSpearmanNoise(t *testing.T) {
	s := rng.NewSplitMix64(5)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = s.Float64()
		ys[i] = s.Float64()
	}
	r := Spearman(xs, ys)
	if math.Abs(r.Rho) > 0.12 {
		t.Errorf("independent data rho = %v", r.Rho)
	}
	if r.P < 0.01 {
		t.Errorf("independent data p = %v, should not be significant", r.P)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3}
	ys := []float64{1, 1, 2, 2, 3, 3}
	r := Spearman(xs, ys)
	approx(t, "rho with ties", r.Rho, 1, 1e-12)
}

func TestSpearmanDegenerate(t *testing.T) {
	if r := Spearman([]float64{1, 2}, []float64{1, 2}); !math.IsNaN(r.Rho) {
		t.Error("n<3 should be NaN")
	}
}

func TestRanks(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestRollingMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	sm := RollingMean(xs, 3)
	approx(t, "middle", sm[2], 3, 1e-12)
	approx(t, "edge", sm[0], 1.5, 1e-12) // window truncated at the edge
	if len(RollingMean(nil, 4)) != 0 {
		t.Error("empty input")
	}
}

func TestDetectBursts(t *testing.T) {
	// Flat series with one big spike at hour 12 (the Brazil trial-3
	// pattern): the spike must be detected, the noise must not.
	series := make([]float64, 21)
	s := rng.NewSplitMix64(3)
	for i := range series {
		series[i] = 10 + 2*s.Float64()
	}
	series[12] = 100
	bursts := DetectBursts(series, 4, 2)
	found := false
	for _, b := range bursts {
		if b == 12 {
			found = true
		}
	}
	if !found {
		t.Errorf("spike at 12 not detected: %v", bursts)
	}
	if len(bursts) > 3 {
		t.Errorf("too many false positives: %v", bursts)
	}
}

func TestDetectBurstsQuietSeries(t *testing.T) {
	series := make([]float64, 21)
	for i := range series {
		series[i] = 5
	}
	if b := DetectBursts(series, 4, 2); len(b) != 0 {
		t.Errorf("constant series produced bursts: %v", b)
	}
	if b := DetectBursts(nil, 4, 2); b != nil {
		t.Error("empty series should give nil")
	}
}

func TestTDistSurvival(t *testing.T) {
	// t=2.086, df=20 → two-sided p ≈ 0.05 (t-table).
	approx(t, "t(2.086,20)", TDistSurvival2Sided(2.086, 20), 0.05, 2e-3)
	// t=0 → p=1.
	approx(t, "t(0,10)", TDistSurvival2Sided(0, 10), 1, 1e-9)
}

func TestBetaIncBounds(t *testing.T) {
	if betaInc(2, 3, 0) != 0 || betaInc(2, 3, 1) != 1 {
		t.Error("betaInc bounds wrong")
	}
	// I_0.5(2,2) = 0.5 by symmetry.
	approx(t, "betaInc(2,2,0.5)", betaInc(2, 2, 0.5), 0.5, 1e-9)
}

func TestCDFPropertyMonotoneAndComplete(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pts := CDF(xs, nil)
		last := math.Inf(-1)
		lastF := 0.0
		for _, p := range pts {
			if p.X <= last && len(pts) > 1 {
				return false // x strictly increasing
			}
			if p.F < lastF {
				return false // F non-decreasing
			}
			last, lastF = p.X, p.F
		}
		return math.Abs(pts[len(pts)-1].F-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q = math.Mod(math.Abs(q), 1)
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanPropertySymmetricAndBounded(t *testing.T) {
	f := func(pairs [][2]float64) bool {
		if len(pairs) < 3 {
			return true
		}
		var xs, ys []float64
		for _, p := range pairs {
			if math.IsNaN(p[0]) || math.IsNaN(p[1]) || math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
				return true
			}
			xs = append(xs, p[0])
			ys = append(ys, p[1])
		}
		a := Spearman(xs, ys)
		b := Spearman(ys, xs)
		if math.IsNaN(a.Rho) {
			return math.IsNaN(b.Rho) // degenerate (constant input)
		}
		return math.Abs(a.Rho-b.Rho) < 1e-9 && a.Rho >= -1.0000001 && a.Rho <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
