// Package hostsim implements the simulated edge hosts: small servers that
// speak genuine HTTP/1.1, TLS 1.2, and SSH transport bytes over a net.Conn.
// The simulation fabric spawns one of these per accepted connection; the
// ZGrab grabbers on the other end of the pipe cannot tell them from real
// servers, which is the point — the grab code path is fully exercised.
package hostsim

import (
	"bytes"
	"fmt"
	"net"
	"time"

	"repro/internal/bufpool"
	"repro/internal/httpwire"
	"repro/internal/ip"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sshwire"
	"repro/internal/tlslite"
)

// Server serves host personalities derived from a key: server software
// banners, certificate blobs, and SSH versions vary per host but are stable
// across trials, as real hosts are.
type Server struct {
	key rng.Key
}

// NewServer returns a host simulator deriving personalities from key.
func NewServer(key rng.Key) *Server {
	return &Server{key: key.Derive("hostsim")}
}

// Serve handles one accepted connection to host for the given protocol and
// closes conn when done. It is designed to run in its own goroutine.
func (s *Server) Serve(conn net.Conn, host ip.Addr, p proto.Protocol) {
	defer conn.Close()
	switch p {
	case proto.HTTP:
		s.serveHTTP(conn, host)
	case proto.HTTPS:
		s.serveTLS(conn, host)
	case proto.SSH:
		s.serveSSH(conn, host)
	}
}

// ServeInline handles one connection's exchange synchronously in the
// caller's goroutine: in holds every byte the client has written so far,
// and the server's whole response flight is appended to out. All three
// protocols are turn-based single-flight exchanges — the client writes its
// complete opening flight before reading, and the server's flight depends
// only on that flight (SSH's server ID/KEXINIT not even on that) — so
// reads past the client bytes see io.EOF exactly where a Serve goroutine
// would see the client's half-close, and the bytes appended to out are
// identical to what Serve would have streamed through a vconn pipe. This
// is the grab fast path's server side: zero goroutines, zero
// synchronization, no per-connection allocation beyond out's growth.
func (s *Server) ServeInline(out *bytes.Buffer, in []byte, host ip.Addr, p proto.Protocol) {
	var conn inlineConn
	conn.in.Reset(in)
	conn.out = out
	switch p {
	case proto.HTTP:
		s.serveHTTP(&conn, host)
	case proto.HTTPS:
		s.serveTLS(&conn, host)
	case proto.SSH:
		s.serveSSH(&conn, host)
	}
}

// inlineConn adapts a fully-buffered exchange to net.Conn for the serve
// functions: reads drain the client's flight (then io.EOF, the half-close
// a goroutine server sees once the client stops writing), writes append
// to the response buffer. Stack-allocatable: ServeInline's conn never
// escapes the serve call.
type inlineConn struct {
	in  bytes.Reader
	out *bytes.Buffer
}

func (c *inlineConn) Read(p []byte) (int, error)       { return c.in.Read(p) }
func (c *inlineConn) Write(p []byte) (int, error)      { return c.out.Write(p) }
func (c *inlineConn) Close() error                     { return nil }
func (c *inlineConn) LocalAddr() net.Addr              { return inlineAddr{} }
func (c *inlineConn) RemoteAddr() net.Addr             { return inlineAddr{} }
func (c *inlineConn) SetDeadline(time.Time) error      { return nil }
func (c *inlineConn) SetReadDeadline(time.Time) error  { return nil }
func (c *inlineConn) SetWriteDeadline(time.Time) error { return nil }

// inlineAddr is the placeholder endpoint for inline exchanges; the serve
// functions never read connection addresses.
type inlineAddr struct{}

func (inlineAddr) Network() string { return "inline" }
func (inlineAddr) String() string  { return "inline" }

var httpServers = []string{
	"nginx", "nginx/1.14.0", "Apache", "Apache/2.4.29 (Ubuntu)",
	"Microsoft-IIS/10.0", "lighttpd/1.4.45", "openresty",
}

// serveHTTP answers one GET with a small page.
func (s *Server) serveHTTP(conn net.Conn, host ip.Addr) {
	br := bufpool.Reader(conn)
	defer bufpool.PutReader(br)
	req, err := httpwire.ReadRequest(br)
	if err != nil {
		return
	}
	software := httpServers[int(s.key.Uint64(host.Word64(), 1)%uint64(len(httpServers)))]
	body := fmt.Sprintf("<html><head><title>%s</title></head><body>host %s says hello to %s %s</body></html>",
		host, host, req.Method, req.Target)
	_ = httpwire.WriteResponse(conn, 200, "OK",
		[]httpwire.Header{
			{Name: "Server", Value: software},
			{Name: "Content-Type", Value: "text/html"},
		}, []byte(body))
}

// serveTLS completes the server's first handshake flight: ServerHello,
// Certificate, ServerHelloDone. The grab terminates there, as the paper's
// TLS handshake capture does.
func (s *Server) serveTLS(conn net.Conn, host ip.Addr) {
	hr := tlslite.NewHandshakeReader(conn)
	typ, body, err := hr.Next()
	if err != nil || typ != tlslite.TypeClientHello {
		return
	}
	ch, err := tlslite.ParseClientHello(body)
	if err != nil || len(ch.CipherSuites) == 0 {
		_ = tlslite.WriteAlert(conn, 2, 40) // fatal handshake_failure
		return
	}
	// Pick the client's highest-preference suite we "support": first
	// offered, like a server honoring client preference.
	sh := &tlslite.ServerHello{
		Version:     tlslite.VersionTLS12,
		CipherSuite: ch.CipherSuites[0],
	}
	stream := s.key.Stream(host.Word64(), 2)
	for i := 0; i < 32; i += 8 {
		v := stream.Uint64()
		for j := 0; j < 8; j++ {
			sh.Random[i+j] = byte(v >> (8 * uint(j)))
		}
	}
	if err := sh.Write(conn); err != nil {
		return
	}
	cert := &tlslite.Certificate{Chain: [][]byte{s.certBlob(host)}}
	if err := cert.Write(conn); err != nil {
		return
	}
	_ = tlslite.WriteServerHelloDone(conn)
}

// certBlob synthesizes a stable pseudo-DER certificate for the host. It is
// opaque bytes with a DER-ish SEQUENCE framing, unique per host.
func (s *Server) certBlob(host ip.Addr) []byte {
	stream := s.key.Stream(host.Word64(), 3)
	n := 600 + int(stream.Uint64()%400)
	blob := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := stream.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			blob[i+j] = byte(v >> (8 * uint(j)))
		}
	}
	blob[0] = 0x30 // SEQUENCE
	blob[1] = 0x82 // long form, 2 length bytes
	blob[2] = byte((n - 4) >> 8)
	blob[3] = byte(n - 4)
	return blob
}

var sshVersions = []string{
	"OpenSSH_7.4", "OpenSSH_7.9p1", "OpenSSH_8.2p1", "dropbear_2019.78",
	"OpenSSH_6.6.1", "OpenSSH_8.0",
}

// serveSSH performs the identification exchange and sends KEXINIT, then
// reads the client's ID and KEXINIT before closing. The grab terminates
// after the version exchange per the paper's methodology.
func (s *Server) serveSSH(conn net.Conn, host ip.Addr) {
	version := sshVersions[int(s.key.Uint64(host.Word64(), 4)%uint64(len(sshVersions)))]
	if err := sshwire.WriteID(conn, sshwire.ID{ProtoVersion: "2.0", SoftwareVersion: version}); err != nil {
		return
	}
	kex := sshwire.DefaultKexInit(s.key.Derive("kex").DeriveN("host", host.Word64()))
	if err := sshwire.WritePacket(conn, kex.Marshal()); err != nil {
		return
	}
	br := bufpool.Reader(conn)
	defer bufpool.PutReader(br)
	if _, err := sshwire.ReadID(br); err != nil {
		return
	}
	// Client may send its KEXINIT; read and discard if so.
	_, _ = sshwire.ReadPacket(br)
}
