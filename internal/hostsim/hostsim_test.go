package hostsim

import (
	"bufio"
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/httpwire"
	"repro/internal/ip"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sshwire"
	"repro/internal/tlslite"
	"repro/internal/vconn"
)

// serve runs the host end of a pipe and returns the client side plus a
// waiter for server completion.
func serve(s *Server, host ip.Addr, p proto.Protocol) (client *vconn.Conn, wait func()) {
	client, server := vconn.PipeLabeled("client", host.String())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Serve(server, host, p)
	}()
	return client, wg.Wait
}

func TestServeHTTPAnswersGet(t *testing.T) {
	s := NewServer(rng.NewKey(1))
	client, wait := serve(s, ip.MustParseAddr("10.0.0.1"), proto.HTTP)
	defer client.Close()
	if err := httpwire.WriteRequest(client, "GET", "/", "10.0.0.1", "test"); err != nil {
		t.Fatal(err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(client), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if sv, ok := resp.Get("Server"); !ok || sv == "" {
		t.Error("no Server header")
	}
	if len(resp.Body) == 0 {
		t.Error("empty body")
	}
	wait()
}

func TestServeHTTPIgnoresGarbage(t *testing.T) {
	s := NewServer(rng.NewKey(2))
	client, wait := serve(s, ip.MustParseAddr("10.0.0.2"), proto.HTTP)
	client.Write([]byte("NONSENSE\r\n\r\n"))
	client.Close()
	wait() // must terminate without hanging or panicking
}

func TestServeTLSFlight(t *testing.T) {
	s := NewServer(rng.NewKey(3))
	host := ip.MustParseAddr("10.0.0.3")
	client, wait := serve(s, host, proto.HTTPS)
	defer client.Close()
	ch := tlslite.NewClientHello(rng.NewKey(4), host.String())
	if err := ch.Write(client); err != nil {
		t.Fatal(err)
	}
	hr := tlslite.NewHandshakeReader(client)
	typ, body, err := hr.Next()
	if err != nil || typ != tlslite.TypeServerHello {
		t.Fatalf("first message: %d, %v", typ, err)
	}
	sh, err := tlslite.ParseServerHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if sh.CipherSuite != ch.CipherSuites[0] {
		t.Errorf("server picked %#x, want client's first preference %#x", sh.CipherSuite, ch.CipherSuites[0])
	}
	typ, body, err = hr.Next()
	if err != nil || typ != tlslite.TypeCertificate {
		t.Fatalf("second message: %d, %v", typ, err)
	}
	cert, err := tlslite.ParseCertificate(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Chain) != 1 || cert.Chain[0][0] != 0x30 {
		t.Error("certificate blob not DER-framed")
	}
	if typ, _, err = hr.Next(); err != nil || typ != tlslite.TypeServerHelloDone {
		t.Fatalf("third message: %d, %v", typ, err)
	}
	wait()
}

func TestServeTLSAlertsOnEmptySuites(t *testing.T) {
	s := NewServer(rng.NewKey(5))
	host := ip.MustParseAddr("10.0.0.4")
	client, wait := serve(s, host, proto.HTTPS)
	defer client.Close()
	ch := tlslite.NewClientHello(rng.NewKey(6), "")
	ch.CipherSuites = nil
	if err := ch.Write(client); err != nil {
		t.Fatal(err)
	}
	hr := tlslite.NewHandshakeReader(client)
	if _, _, err := hr.Next(); err != tlslite.ErrAlert {
		t.Errorf("err = %v, want ErrAlert", err)
	}
	wait()
}

func TestServeSSHVersionExchange(t *testing.T) {
	s := NewServer(rng.NewKey(7))
	host := ip.MustParseAddr("10.0.0.5")
	client, wait := serve(s, host, proto.SSH)
	defer client.Close()
	br := bufio.NewReader(client)
	id, err := sshwire.ReadID(br)
	if err != nil {
		t.Fatal(err)
	}
	if id.ProtoVersion != "2.0" || id.SoftwareVersion == "" {
		t.Errorf("server id = %+v", id)
	}
	// Server's KEXINIT follows.
	payload, err := sshwire.ReadPacket(br)
	if err != nil {
		t.Fatal(err)
	}
	kex, err := sshwire.ParseKexInit(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(kex.KexAlgorithms) == 0 {
		t.Error("empty kex algorithm list")
	}
	// Complete our side so the server returns cleanly.
	sshwire.WriteID(client, sshwire.ID{ProtoVersion: "2.0", SoftwareVersion: "test"})
	sshwire.WritePacket(client, sshwire.DefaultKexInit(rng.NewKey(8)).Marshal())
	wait()
}

func TestPersonalitiesStableAndDiverse(t *testing.T) {
	s := NewServer(rng.NewKey(9))
	banner := func(host ip.Addr) string {
		client, wait := serve(s, host, proto.SSH)
		defer client.Close()
		id, err := sshwire.ReadID(bufio.NewReader(client))
		if err != nil {
			t.Fatal(err)
		}
		client.Close()
		wait()
		return id.SoftwareVersion
	}
	a1 := banner(ip.MustParseAddr("10.1.0.1"))
	a2 := banner(ip.MustParseAddr("10.1.0.1"))
	if a1 != a2 {
		t.Error("same host changed SSH version across connections")
	}
	versions := map[string]bool{}
	for i := 0; i < 20; i++ {
		versions[banner(ip.AddrFrom4(0x0a020000+uint32(i)))] = true
	}
	if len(versions) < 2 {
		t.Error("SSH versions not diverse across hosts")
	}
}

func TestCertBlobStablePerHost(t *testing.T) {
	s := NewServer(rng.NewKey(10))
	a := s.certBlob(ip.MustParseAddr("10.0.0.9"))
	b := s.certBlob(ip.MustParseAddr("10.0.0.9"))
	if string(a) != string(b) {
		t.Error("certificate changed between handshakes")
	}
	c := s.certBlob(ip.MustParseAddr("10.0.0.10"))
	if string(a) == string(c) {
		t.Error("different hosts share a certificate")
	}
	if len(a) < 500 {
		t.Errorf("cert suspiciously small: %d bytes", len(a))
	}
}

// TestServeInlineMatchesGoroutineServe is the inline-serve byte proof: for
// each protocol, the response flight ServeInline appends for a complete
// client opening flight must be byte-identical to what a goroutine Serve
// streams through a vconn pipe for the same flight. (The grab fast path
// rides on this equivalence; the grabbers' parsers are insensitive to
// chunking, so identical bytes mean identical zgrab.Results.)
func TestServeInlineMatchesGoroutineServe(t *testing.T) {
	s := NewServer(rng.NewKey(77))
	for _, host := range []ip.Addr{
		ip.MustParseAddr("10.1.2.3"),
		ip.MustParseAddr("172.16.9.200"),
		ip.MustParseAddr("192.0.2.41"),
	} {
		httpFlight := &bytes.Buffer{}
		if err := httpwire.WriteRequest(httpFlight, "GET", "/", host.String(), "Mozilla/5.0 zgrab/0.x"); err != nil {
			t.Fatal(err)
		}
		tlsFlight := &bytes.Buffer{}
		ch := tlslite.NewClientHello(rng.NewKey(5).DeriveN("ch", host.Word64()), host.String())
		if err := ch.Write(tlsFlight); err != nil {
			t.Fatal(err)
		}
		sshFlight := &bytes.Buffer{}
		if err := sshwire.WriteID(sshFlight, sshwire.ID{ProtoVersion: "2.0", SoftwareVersion: "zgrab_ssh_0.x"}); err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			p      proto.Protocol
			flight []byte
		}{
			{proto.HTTP, httpFlight.Bytes()},
			{proto.HTTPS, tlsFlight.Bytes()},
			{proto.SSH, sshFlight.Bytes()},
		} {
			t.Run(host.String()+"/"+tc.p.String(), func(t *testing.T) {
				client, wait := serve(s, host, tc.p)
				if _, err := client.Write(tc.flight); err != nil {
					t.Fatal(err)
				}
				client.CloseWrite()
				ref, err := io.ReadAll(client)
				if err != nil {
					t.Fatalf("reading reference flight: %v", err)
				}
				wait()
				client.Close()

				var out bytes.Buffer
				s.ServeInline(&out, tc.flight, host, tc.p)
				if !bytes.Equal(out.Bytes(), ref) {
					t.Errorf("inline flight (%d bytes) differs from goroutine flight (%d bytes)",
						out.Len(), len(ref))
				}
				if len(ref) == 0 {
					t.Error("reference server sent nothing")
				}
			})
		}
	}
}

// TestServeInlineGarbage: a non-protocol flight must leave the inline
// server silent for HTTP/TLS parse failures without hanging or panicking,
// like the goroutine server.
func TestServeInlineGarbage(t *testing.T) {
	s := NewServer(rng.NewKey(78))
	host := ip.MustParseAddr("10.9.9.9")
	for _, p := range []proto.Protocol{proto.HTTP, proto.HTTPS, proto.SSH} {
		client, wait := serve(s, host, p)
		client.Write([]byte("NONSENSE\r\n\r\n"))
		client.CloseWrite()
		ref, _ := io.ReadAll(client)
		wait()
		client.Close()
		var out bytes.Buffer
		s.ServeInline(&out, []byte("NONSENSE\r\n\r\n"), host, p)
		if !bytes.Equal(out.Bytes(), ref) {
			t.Errorf("%v: inline garbage response (%d bytes) differs from goroutine (%d bytes)",
				p, out.Len(), len(ref))
		}
	}
}
