package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/packet"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw)
	if err != nil {
		t.Fatal(err)
	}
	pkts := [][]byte{
		packet.MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 40000, 80, 7, 0),
		packet.MakeSYNACK(ip.AddrFrom4(2), ip.AddrFrom4(1), 80, 40000, 9, 8),
		packet.MakeRST(ip.AddrFrom4(2), ip.AddrFrom4(1), 80, 40000, 0, 8),
	}
	for i, p := range pkts {
		ts := time.Duration(i)*time.Hour + 123456*time.Microsecond
		if err := w.WritePacket(ts, p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeRaw {
		t.Errorf("link type = %d", r.LinkType)
	}
	for i, want := range pkts {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got.Data, want) {
			t.Errorf("packet %d data mismatch", i)
		}
		wantTS := time.Duration(i)*time.Hour + 123456*time.Microsecond
		if got.TS != wantTS {
			t.Errorf("packet %d ts = %v, want %v", i, got.TS, wantTS)
		}
		// Captured bytes decode as valid IPv4/TCP.
		if _, _, _, err := packet.DecodeTCP4(got.Data); err != nil {
			t.Errorf("packet %d does not decode: %v", i, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last packet err = %v, want EOF", err)
	}
}

func TestGlobalHeaderShape(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, LinkTypeRaw); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header length %d", len(hdr))
	}
	// Little-endian magic 0xa1b2c3d4 → d4 c3 b2 a1 on the wire.
	if hdr[0] != 0xd4 || hdr[1] != 0xc3 || hdr[2] != 0xb2 || hdr[3] != 0xa1 {
		t.Errorf("magic bytes = % x", hdr[:4])
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("hello world, not a pcap!"))); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestReaderRejectsTruncatedPacket(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeRaw)
	w.WritePacket(0, []byte{1, 2, 3, 4, 5})
	data := buf.Bytes()[:buf.Len()-2] // chop the packet body
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

// echoSink answers every probe with a RST for testing the tee.
type echoSink struct{ sent int }

func (e *echoSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	e.sent++
	iph, tcph, _, err := packet.DecodeTCP4(pkt)
	if err != nil {
		return nil
	}
	return packet.MakeRST(iph.Dst, iph.Src, tcph.DstPort, tcph.SrcPort, 0, tcph.Seq+1)
}

func TestSinkTee(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeRaw)
	inner := &echoSink{}
	sink := NewSink(inner, w)

	probe := packet.MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 40000, 80, 5, 0)
	resp := sink.Send(ip.AddrFrom4(1), probe, time.Minute)
	if resp == nil {
		t.Fatal("tee swallowed the response")
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	if w.Count() != 2 {
		t.Fatalf("captured %d packets, want probe+response", w.Count())
	}
	r, _ := NewReader(&buf)
	p1, _ := r.Next()
	p2, _ := r.Next()
	if !bytes.Equal(p1.Data, probe) || !bytes.Equal(p2.Data, resp) {
		t.Error("captured bytes differ from wire bytes")
	}
}
