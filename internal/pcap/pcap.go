// Package pcap implements the classic libpcap capture file format
// (pcap-savefile(5)): enough to write the scanner's probe and response
// packets to a file that Wireshark/tcpdump open directly, and to read such
// files back. The scanner records raw IPv4 packets, so captures use the
// LINKTYPE_RAW link layer.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers and format constants.
const (
	magicMicros = 0xa1b2c3d4 // microsecond-resolution, native byte order
	versionMaj  = 2
	versionMin  = 4
	// LinkTypeRaw is LINKTYPE_RAW: packets begin with the IPv4/IPv6
	// header.
	LinkTypeRaw = 101
	// MaxSnapLen is the capture length written to the global header.
	MaxSnapLen = 65535
)

// Errors.
var (
	ErrBadMagic  = errors.New("pcap: not a pcap file (bad magic)")
	ErrTruncated = errors.New("pcap: truncated file")
)

// Writer emits a pcap stream.
type Writer struct {
	w     io.Writer
	count int
}

// NewWriter writes the global header and returns a packet writer.
func NewWriter(w io.Writer, linkType uint32) (*Writer, error) {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magicMicros)
	le.PutUint16(hdr[4:], versionMaj)
	le.PutUint16(hdr[6:], versionMin)
	// thiszone, sigfigs zero.
	le.PutUint32(hdr[16:], MaxSnapLen)
	le.PutUint32(hdr[20:], linkType)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// WritePacket appends one packet captured at ts.
func (pw *Writer) WritePacket(ts time.Duration, data []byte) error {
	if len(data) > MaxSnapLen {
		data = data[:MaxSnapLen]
	}
	var hdr [16]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(ts/time.Second))
	le.PutUint32(hdr[4:], uint32(ts%time.Second/time.Microsecond))
	le.PutUint32(hdr[8:], uint32(len(data)))
	le.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(data); err != nil {
		return err
	}
	pw.count++
	return nil
}

// Count returns the number of packets written.
func (pw *Writer) Count() int { return pw.count }

// Packet is one record read from a capture.
type Packet struct {
	TS   time.Duration
	Data []byte
}

// Reader parses a pcap stream written by Writer (little-endian microsecond
// format only, which is what we emit).
type Reader struct {
	r        io.Reader
	LinkType uint32
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, ErrTruncated
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != magicMicros {
		return nil, ErrBadMagic
	}
	if maj := le.Uint16(hdr[4:]); maj != versionMaj {
		return nil, fmt.Errorf("pcap: unsupported version %d", maj)
	}
	return &Reader{r: r, LinkType: le.Uint32(hdr[20:])}, nil
}

// Next returns the next packet, or io.EOF at the end of the capture.
func (pr *Reader) Next() (Packet, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, ErrTruncated
	}
	le := binary.LittleEndian
	caplen := le.Uint32(hdr[8:])
	if caplen > MaxSnapLen {
		return Packet{}, fmt.Errorf("pcap: implausible caplen %d", caplen)
	}
	data := make([]byte, caplen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Packet{}, ErrTruncated
	}
	ts := time.Duration(le.Uint32(hdr[0:]))*time.Second +
		time.Duration(le.Uint32(hdr[4:]))*time.Microsecond
	return Packet{TS: ts, Data: data}, nil
}
