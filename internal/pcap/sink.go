package pcap

import (
	"time"

	"repro/internal/ip"
	"repro/internal/zmap"
)

// Sink wraps a zmap.PacketSink and records every probe and response into a
// pcap stream, so a simulated scan's traffic can be inspected with
// tcpdump/Wireshark exactly like a real one's.
type Sink struct {
	inner zmap.PacketSink
	w     *Writer
	err   error
}

// NewSink returns a tee around inner writing LINKTYPE_RAW packets to pw.
func NewSink(inner zmap.PacketSink, pw *Writer) *Sink {
	return &Sink{inner: inner, w: pw}
}

// Send implements zmap.PacketSink.
func (s *Sink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	if s.err == nil {
		s.err = s.w.WritePacket(t, pkt)
	}
	resp := s.inner.Send(src, pkt, t)
	if resp != nil && s.err == nil {
		s.err = s.w.WritePacket(t, resp)
	}
	return resp
}

// Err returns the first write error encountered (the tee keeps the scan
// going regardless; capture loss must not abort a scan).
func (s *Sink) Err() error { return s.err }
