// Package core is the library's high-level entry point: it ties the world
// generator, scenario, scanner, and analyses together into the paper's
// study, and exposes one accessor per table and figure of the evaluation.
package core

import (
	"context"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/geo"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/stats"
	"repro/internal/world"
)

// Study is a completed (or ready-to-run) reproduction study.
type Study struct {
	Exp *experiment.Study
	DS  *results.Dataset

	complete    bool
	classifiers map[proto.Protocol]*analysis.Classifier
}

// New prepares a study from an experiment config. World generation honours
// ctx; see experiment.NewStudy.
func New(ctx context.Context, cfg experiment.Config) (*Study, error) {
	exp, err := experiment.NewStudy(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &Study{Exp: exp, classifiers: map[proto.Protocol]*analysis.Classifier{}}, nil
}

// Run executes all scans. It is idempotent: a second call after a complete
// run reuses the existing dataset. A canceled or failed run stores (and
// returns an error alongside) the partial dataset — every scan sealed
// before the interruption — and a later Run call retries from scratch.
func (s *Study) Run(ctx context.Context) error {
	if s.complete {
		return nil
	}
	ds, err := s.Exp.Run(ctx)
	s.DS = ds
	s.classifiers = map[proto.Protocol]*analysis.Classifier{}
	if err != nil {
		return err
	}
	s.complete = true
	return nil
}

// UseDataset attaches a previously collected dataset (e.g. loaded from
// disk) instead of running the scans.
func (s *Study) UseDataset(ds *results.Dataset) {
	s.DS = ds
	s.complete = true
	s.classifiers = map[proto.Protocol]*analysis.Classifier{}
}

// World returns the study's synthetic Internet.
func (s *Study) World() *world.World { return s.Exp.World }

// Topo returns the topology view used by the analyses.
func (s *Study) Topo() analysis.Topology { return analysis.WorldTopo{W: s.Exp.World} }

// Classifier returns (and caches) the per-protocol accessibility
// classification.
func (s *Study) Classifier(p proto.Protocol) *analysis.Classifier {
	if c, ok := s.classifiers[p]; ok {
		return c
	}
	c := analysis.NewClassifier(s.DS, p)
	s.classifiers[p] = c
	return c
}

// OriginCountries maps each origin to its country, for the geographic
// analyses.
func (s *Study) OriginCountries() map[origin.ID]geo.Country {
	m := map[origin.ID]geo.Country{}
	for _, o := range s.Exp.World.Origins.All() {
		m[o.ID] = o.Country
	}
	return m
}

// --- one accessor per table/figure ---

// Fig1Coverage returns per-origin mean coverage (Figure 1).
func (s *Study) Fig1Coverage(p proto.Protocol) analysis.CoverageTable {
	return analysis.Coverage(s.DS, p)
}

// Fig2MissingBreakdown returns the missing-host breakdown (Figure 2).
func (s *Study) Fig2MissingBreakdown(p proto.Protocol) []analysis.Breakdown {
	return analysis.MissingBreakdown(s.Classifier(p))
}

// Fig3LongTermOverlap returns the long-term overlap histogram (Figure 3).
func (s *Study) Fig3LongTermOverlap(p proto.Protocol, exclude origin.Set) []int {
	return analysis.OverlapHistogram(s.Classifier(p), analysis.ClassLongTerm, exclude)
}

// Fig4ASDistribution returns long-term AS concentration (Figure 4).
func (s *Study) Fig4ASDistribution(p proto.Protocol) []analysis.ASConcentration {
	return analysis.ASDistribution(s.Classifier(p), s.Topo())
}

// Fig5LostASes returns the inaccessible-AS counts (Figure 5).
func (s *Study) Fig5LostASes(p proto.Protocol) []analysis.LostASRow {
	return analysis.InaccessibleASes(s.Classifier(p), s.Topo(), 2)
}

// Fig6ExclusiveByCountry returns the exclusive-access country matrix
// (Figure 6 for HTTP; Figure 16 for HTTPS/SSH).
func (s *Study) Fig6ExclusiveByCountry(p proto.Protocol) []analysis.CountryCell {
	return analysis.ExclusiveByCountry(s.Classifier(p), s.Topo(), s.OriginCountries())
}

// Fig7ExclusiveByAS returns the exclusive-access AS shares (Figure 7).
func (s *Study) Fig7ExclusiveByAS(p proto.Protocol, topN int) []analysis.ASShare {
	return analysis.ExclusiveByAS(s.Classifier(p), s.Topo(), topN)
}

// Fig8TransientOverlap returns the transient overlap histogram (Figure 8).
func (s *Study) Fig8TransientOverlap(p proto.Protocol) []int {
	return analysis.OverlapHistogram(s.Classifier(p), analysis.ClassTransient, nil)
}

// Fig9LossSpread returns per-AS transient spreads and their CDFs (Fig 9).
func (s *Study) Fig9LossSpread(p proto.Protocol) ([]analysis.ASLossSpread, []stats.CDFPoint, []stats.CDFPoint) {
	spreads := analysis.TransientLossSpread(s.Classifier(p), s.Topo(), 2)
	plain, weighted := analysis.SpreadCDF(spreads)
	return spreads, plain, weighted
}

// Fig10LossVsDrop returns Figure 10's per-origin points for a profile AS.
func (s *Study) Fig10LossVsDrop(p proto.Protocol, profile string) []analysis.OriginASPoint {
	as := s.Exp.World.MustProfileASN(profile)
	return analysis.LossVsDropForAS(s.Classifier(p), s.Topo(), as)
}

// Fig11BestWorst returns origin-rank stability (Figure 11, §5.1).
func (s *Study) Fig11BestWorst(p proto.Protocol) analysis.StabilityReport {
	return analysis.BestWorstStability(s.Classifier(p), s.Topo(), 5)
}

// Fig12AlibabaTimeline returns the temporal-blocking timeline (Figure 12).
func (s *Study) Fig12AlibabaTimeline(o origin.ID, trial int) []analysis.HourlyOutcome {
	return analysis.TemporalTimeline(s.DS, s.Topo(), s.Exp.Scenario.Alibaba.ASes, o, trial, 21)
}

// Fig13SSHRetry runs the retry sub-experiment (Figure 13).
func (s *Study) Fig13SSHRetry(ctx context.Context, topASes, maxRetries int) ([]experiment.RetryCurve, error) {
	return s.Exp.SSHRetry(ctx, s.DS, topASes, maxRetries)
}

// Fig14SSHCauses returns the SSH cause breakdown (Figure 14).
func (s *Study) Fig14SSHCauses() []analysis.SSHBreakdown {
	return analysis.SSHCauses(s.Classifier(proto.SSH), s.Topo(), s.Exp.Scenario.Alibaba.ASes)
}

// Fig15MultiOrigin returns multi-origin coverage levels (Figures 15/17).
func (s *Study) Fig15MultiOrigin(ctx context.Context, p proto.Protocol, singleProbe bool) ([]analysis.MultiOriginLevel, error) {
	return analysis.MultiOrigin(ctx, s.DS, p, studyOriginsOf(s.DS), singleProbe)
}

// Tab1ExclusiveShare returns Table 1's attribution rows.
func (s *Study) Tab1ExclusiveShare(p proto.Protocol) []analysis.ShareRow {
	ex := analysis.Exclusive(s.Classifier(p))
	return analysis.ExclusiveShare(ex, studyOriginsOf(s.DS))
}

// Tab2Countries returns Tables 2/5: country-level long-term loss.
func (s *Study) Tab2Countries(p proto.Protocol) []analysis.CountryRow {
	return analysis.CountryInaccessibility(s.Classifier(p), s.Topo())
}

// McNemar returns §3's pairwise significance tests.
func (s *Study) McNemar(p proto.Protocol, trial int) []analysis.McNemarPair {
	return analysis.PairwiseMcNemar(s.DS, p, trial)
}

// CountryCorrelation returns §4.4's Spearman ρ.
func (s *Study) CountryCorrelation(p proto.Protocol) stats.SpearmanResult {
	return analysis.CountrySizeCorrelation(s.Classifier(p), s.Topo())
}

// PacketLoss returns the §5.2 estimator for one origin and trial.
func (s *Study) PacketLoss(p proto.Protocol, o origin.ID, trial int) analysis.PacketLossEstimate {
	return analysis.PacketLoss(s.DS, s.Topo(), p, o, trial, 5)
}

// DropVsTransient returns §5.2's per-origin correlation between packet
// drop and transient loss.
func (s *Study) DropVsTransient(p proto.Protocol) map[origin.ID]stats.SpearmanResult {
	return analysis.DropVsTransient(s.Classifier(p), s.Topo(), 5)
}

// Bursts returns §5.3's burst-outage attribution.
func (s *Study) Bursts(p proto.Protocol) analysis.BurstReport {
	return analysis.Bursts(s.Classifier(p), s.Topo(), 21)
}

// Probes returns §7's probe-level statistics.
func (s *Study) Probes(p proto.Protocol, o origin.ID, trial int) analysis.ProbeStats {
	return analysis.Probes(s.DS, p, o, trial)
}

// Banners returns the top application banners one origin captured — the
// Censys-style census ZGrab's handshakes exist to produce.
func (s *Study) Banners(p proto.Protocol, o origin.ID, trial, topN int) ([]analysis.BannerCount, int) {
	return analysis.BannerCensus(s.DS, p, o, trial, topN)
}

// Agreement returns the §8 Heidemann-style /24 response-rate agreement
// (the paper: 87%% of /24s within 5%% across its origin pairs).
func (s *Study) Agreement(p proto.Protocol, trial int) analysis.Slash24Agreement {
	return analysis.AgreementWithin(s.DS, p, trial, 2, 0.05)
}

// ProbeSweep re-scans one origin with 1..maxProbes probes per target and an
// optional inter-probe delay, returning the coverage curve (§7/§8's
// single-origin multi-probe estimate).
func (s *Study) ProbeSweep(ctx context.Context, o origin.ID, p proto.Protocol, trial, maxProbes int, delay time.Duration) ([]experiment.ProbeSweepPoint, error) {
	return s.Exp.MultiProbeSweep(ctx, s.DS, o, p, trial, maxProbes, delay)
}

// studyOriginsOf returns the dataset's origins excluding Carinet, which
// the paper leaves out of aggregate statistics.
func studyOriginsOf(ds *results.Dataset) origin.Set {
	var out origin.Set
	for _, o := range ds.Origins {
		if o != origin.CARINET {
			out = append(out, o)
		}
	}
	return out
}
