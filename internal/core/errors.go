package core

import "repro/internal/pipeline"

// The typed error layer lives in the leaf package internal/pipeline (so
// every layer below core can use it without an import cycle); core
// re-exports it as the public classification surface. The values are the
// same errors, so errors.Is(err, core.ErrCanceled) and
// errors.Is(err, pipeline.ErrCanceled) are interchangeable.
var (
	// ErrCanceled: the run's context was canceled or its deadline passed.
	// A canceled study still carries the sealed partial dataset.
	ErrCanceled = pipeline.ErrCanceled
	// ErrScanFailed: one or more (origin, protocol, trial) scans failed;
	// the chain holds a *ScanError per failed tuple.
	ErrScanFailed = pipeline.ErrScanFailed
	// ErrSealConflict: an attempt to overwrite a sealed scan with
	// different records.
	ErrSealConflict = pipeline.ErrSealConflict
	// ErrBadConfig: invalid scanner, world, or study configuration.
	ErrBadConfig = pipeline.ErrBadConfig
	// ErrWorldGen: synthetic-Internet generation failed.
	ErrWorldGen = pipeline.ErrWorldGen
)

// Stage identifies a lifecycle stage (worldgen → sweep → grab → seal →
// analyze → report); StageError and ScanError are the wrappers run errors
// arrive in. See the pipeline package for the full contract.
type (
	Stage      = pipeline.Stage
	StageError = pipeline.StageError
	ScanError  = pipeline.ScanError
	Hooks      = pipeline.Hooks
)

// Re-exported stage constants, for matching InterruptedStage results.
const (
	StageWorldgen = pipeline.StageWorldgen
	StageSweep    = pipeline.StageSweep
	StageGrab     = pipeline.StageGrab
	StageSeal     = pipeline.StageSeal
	StageAnalyze  = pipeline.StageAnalyze
	StageReport   = pipeline.StageReport
)

// InterruptedStage reports which lifecycle stage err interrupted, when err
// (or anything it wraps) is a *StageError.
func InterruptedStage(err error) (Stage, bool) { return pipeline.InterruptedStage(err) }
