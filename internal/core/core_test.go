package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/world"
)

var (
	coreOnce sync.Once
	coreStu  *Study
	coreErr  error
)

func study(t *testing.T) *Study {
	t.Helper()
	coreOnce.Do(func() {
		coreStu, coreErr = New(context.Background(), experiment.Config{WorldSpec: world.TestSpec(42)})
		if coreErr == nil {
			coreErr = coreStu.Run(context.Background())
		}
	})
	if coreErr != nil {
		t.Fatal(coreErr)
	}
	return coreStu
}

func TestRunIsIdempotent(t *testing.T) {
	s := study(t)
	ds := s.DS
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.DS != ds {
		t.Error("second Run replaced the dataset")
	}
}

func TestClassifierCached(t *testing.T) {
	s := study(t)
	a := s.Classifier(proto.HTTP)
	b := s.Classifier(proto.HTTP)
	if a != b {
		t.Error("classifier not cached")
	}
	if s.Classifier(proto.SSH) == a {
		t.Error("protocols share a classifier")
	}
}

func TestEveryAccessorProducesData(t *testing.T) {
	s := study(t)
	if len(s.Fig1Coverage(proto.HTTP).Cells) == 0 {
		t.Error("Fig1 empty")
	}
	if len(s.Fig2MissingBreakdown(proto.HTTP)) == 0 {
		t.Error("Fig2 empty")
	}
	if sum(s.Fig3LongTermOverlap(proto.HTTP, nil)) == 0 {
		t.Error("Fig3 empty")
	}
	if len(s.Fig4ASDistribution(proto.HTTP)) == 0 {
		t.Error("Fig4 empty")
	}
	if len(s.Fig5LostASes(proto.HTTP)) == 0 {
		t.Error("Fig5 empty")
	}
	if len(s.Fig6ExclusiveByCountry(proto.HTTP)) == 0 {
		t.Error("Fig6 empty")
	}
	if len(s.Fig7ExclusiveByAS(proto.HTTP, 3)) == 0 {
		t.Error("Fig7 empty")
	}
	if sum(s.Fig8TransientOverlap(proto.HTTP)) == 0 {
		t.Error("Fig8 empty")
	}
	spreads, plain, weighted := s.Fig9LossSpread(proto.HTTP)
	if len(spreads) == 0 || len(plain) == 0 || len(weighted) == 0 {
		t.Error("Fig9 empty")
	}
	if len(s.Fig10LossVsDrop(proto.HTTP, world.ProfTelecomIT)) == 0 {
		t.Error("Fig10 empty")
	}
	if s.Fig11BestWorst(proto.HTTP).ASesConsidered == 0 {
		t.Error("Fig11 empty")
	}
	if len(s.Fig12AlibabaTimeline(origin.US1, 0)) != 21 {
		t.Error("Fig12 wrong length")
	}
	if len(s.Fig14SSHCauses()) == 0 {
		t.Error("Fig14 empty")
	}
	if lvls, err := s.Fig15MultiOrigin(context.Background(), proto.HTTP, false); err != nil || len(lvls) != len(origin.StudySet()) {
		t.Errorf("Fig15 levels = %d (err %v)", len(lvls), err)
	}
	if len(s.Tab1ExclusiveShare(proto.HTTP)) == 0 {
		t.Error("Tab1 empty")
	}
	if len(s.Tab2Countries(proto.HTTP)) == 0 {
		t.Error("Tab2 empty")
	}
	if len(s.McNemar(proto.HTTP, 0)) == 0 {
		t.Error("McNemar empty")
	}
	if s.CountryCorrelation(proto.HTTP).N < 3 {
		t.Error("country correlation degenerate")
	}
	if s.PacketLoss(proto.HTTP, origin.AU, 0).Rate <= 0 {
		t.Error("packet loss estimator returned zero for AU")
	}
	if len(s.DropVsTransient(proto.HTTP)) == 0 {
		t.Error("drop-vs-transient empty")
	}
	if s.Probes(proto.HTTP, origin.AU, 0).Coverage2Probe <= 0 {
		t.Error("probe stats empty")
	}
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func TestUseDatasetRoundTrip(t *testing.T) {
	s := study(t)
	var buf bytes.Buffer
	if err := s.DS.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := results.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A second study over the same world must produce identical analyses
	// from the loaded dataset.
	s2, err := New(context.Background(), experiment.Config{WorldSpec: world.TestSpec(42)})
	if err != nil {
		t.Fatal(err)
	}
	s2.UseDataset(ds)
	a := s.Fig1Coverage(proto.HTTP)
	b := s2.Fig1Coverage(proto.HTTP)
	if a.Mean(origin.CEN, false) != b.Mean(origin.CEN, false) {
		t.Error("analyses differ after dataset round trip")
	}
	h1 := s.Fig3LongTermOverlap(proto.SSH, nil)
	h2 := s2.Fig3LongTermOverlap(proto.SSH, nil)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("overlap histograms differ after round trip")
		}
	}
}
