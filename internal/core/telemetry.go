package core

import "repro/internal/telemetry"

// Telemetry is the metrics registry the study layers report into; set it
// on experiment.Config.Telemetry (nil disables all instrumentation). Like
// the error layer, the implementation lives in a leaf package and core
// re-exports it as the public surface.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Progress is the periodic stderr status reporter; a nil Progress's Stop
// is a no-op, so callers can start it conditionally.
type Progress = telemetry.Progress

// StartProgress launches the periodic one-line status report; see
// telemetry.StartProgress.
var StartProgress = telemetry.StartProgress
