package core

import "repro/internal/telemetry"

// Telemetry is the metrics registry the study layers report into; set it
// on experiment.Config.Telemetry (nil disables all instrumentation). Like
// the error layer, the implementation lives in a leaf package and core
// re-exports it as the public surface.
type Telemetry = telemetry.Registry

// NewTelemetry returns an empty registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// Progress is the periodic stderr status reporter; a nil Progress's Stop
// is a no-op, so callers can start it conditionally.
type Progress = telemetry.Progress

// StartProgress launches the periodic one-line status report; see
// telemetry.StartProgress.
var StartProgress = telemetry.StartProgress

// Recorder is the on-disk flight recorder: attach one to a registry with
// Telemetry.AttachRecorder and every finished span (plus a final metrics
// snapshot) streams to an append-only JSONL journal that cmd/tracestat
// and telemetry.ReadJournal consume.
type Recorder = telemetry.Recorder

// NewRecorder opens a flight-recorder journal at path, creating parent
// directories as needed.
var NewRecorder = telemetry.NewRecorder

// JournalFile is the conventional journal filename inside a trace
// directory.
const JournalFile = telemetry.JournalFile
