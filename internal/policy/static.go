package policy

import (
	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/rng"
)

// OriginMatch selects which origins a rule applies to. Zero value matches
// every origin; set fields narrow the match (all set fields must hold).
type OriginMatch struct {
	// IDs, when non-empty, restricts the match to these origins.
	IDs origin.Set
	// ExcludeIDs, when non-empty, exempts these origins.
	ExcludeIDs origin.Set
	// Countries, when non-empty, restricts to origins located in these
	// countries (used by geographic fences).
	Countries []geo.Country
	// ExcludeCountries exempts origins in these countries ("blocks all
	// non-US origins").
	ExcludeCountries []geo.Country
	// MinReputation, when non-zero, matches only origins whose scan
	// reputation is at least this level (reputation-driven blocking:
	// Censys is RepHeavy).
	MinReputation origin.Reputation
	// MaxSrcIPs, when non-zero, matches only origins scanning with at
	// most this many source IPs (IDS-style detection that 64-IP origins
	// evade).
	MaxSrcIPs int
}

// Matches reports whether the query's origin is selected.
func (m *OriginMatch) Matches(q *Query) bool {
	if len(m.IDs) > 0 && !m.IDs.Contains(q.Origin) {
		return false
	}
	if m.ExcludeIDs.Contains(q.Origin) {
		return false
	}
	if len(m.Countries) > 0 && !containsCountry(m.Countries, q.SrcCountry) {
		return false
	}
	if containsCountry(m.ExcludeCountries, q.SrcCountry) {
		return false
	}
	if m.MinReputation != 0 && q.Rep < m.MinReputation {
		return false
	}
	if m.MaxSrcIPs != 0 && q.NumSrcIPs > m.MaxSrcIPs {
		return false
	}
	return true
}

func containsCountry(cs []geo.Country, c geo.Country) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// DestMatch selects which destinations a rule covers. Zero value matches
// everything; set fields narrow the match.
type DestMatch struct {
	ASes      []asn.ASN
	Countries []geo.Country
	Protocols proto.Mask // zero means all protocols
}

// Matches reports whether the query's destination is covered.
func (m *DestMatch) Matches(q *Query) bool {
	if len(m.ASes) > 0 && !containsAS(m.ASes, q.DstAS) {
		return false
	}
	if len(m.Countries) > 0 && !containsCountry(m.Countries, q.DstCountry) {
		return false
	}
	if m.Protocols != 0 && !m.Protocols.Has(q.Proto) {
		return false
	}
	return true
}

func containsAS(as []asn.ASN, a asn.ASN) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

// StaticBlock is long-term blocking: a set of destinations that always
// denies a set of origins. HostFraction restricts the block to a stable
// subset of hosts (e.g. "90% of EGI hosts block Censys in trial 1");
// FractionByTrial optionally overrides the fraction per trial.
type StaticBlock struct {
	RuleName     string
	Origins      OriginMatch
	Dests        DestMatch
	Action       Verdict
	HostFraction float64 // 0 or 1 mean "all hosts"
	// FractionByTrial[i], when set (non-nil and i in range), replaces
	// HostFraction for trial i. Models EGI's 90% → 100% progression.
	FractionByTrial []float64
	// Key scopes the host-fraction hash so different rules select
	// independent host subsets.
	Key rng.Key
}

// Name implements Rule.
func (b *StaticBlock) Name() string { return b.RuleName }

// Evaluate implements Rule.
func (b *StaticBlock) Evaluate(q *Query) (Verdict, bool) {
	if !b.Origins.Matches(q) || !b.Dests.Matches(q) {
		return 0, false
	}
	frac := b.HostFraction
	if q.Trial >= 0 && q.Trial < len(b.FractionByTrial) {
		frac = b.FractionByTrial[q.Trial]
	}
	if frac > 0 && frac < 1 && !hostFraction(b.Key, q.Dst, frac) {
		return 0, false
	}
	return b.Action, true
}

// GeoFence is regional access control: only origins matching Allowed can
// reach the destinations; everyone else receives Action. The paper finds
// JP-only (Bekkoame, NTT, Gateway), AU-only (WebCentral, Cloudflare
// misconfiguration), and BR-only (WA K-20) networks.
type GeoFence struct {
	RuleName     string
	Allowed      OriginMatch
	Dests        DestMatch
	Action       Verdict
	HostFraction float64
	Key          rng.Key
}

// Name implements Rule.
func (g *GeoFence) Name() string { return g.RuleName }

// Evaluate implements Rule.
func (g *GeoFence) Evaluate(q *Query) (Verdict, bool) {
	if !g.Dests.Matches(q) {
		return 0, false
	}
	if g.HostFraction > 0 && g.HostFraction < 1 && !hostFraction(g.Key, q.Dst, g.HostFraction) {
		return 0, false
	}
	if g.Allowed.Matches(q) {
		return 0, false
	}
	return g.Action, true
}

// ReputationScatter models the diffuse blocking that scales with an
// origin's scanning reputation: beyond the handful of big blockers, Censys
// still misses ~1.5× more hosts than the second-worst origin, spread thinly
// across many networks; fresh-but-unlucky origins (BR, JP) hit regional
// blocklists. Each (origin, /24) pair is blocked with a probability chosen
// by reputation tier.
type ReputationScatter struct {
	RuleName string
	// FracByRep[rep] is the fraction of /24s that long-term block an
	// origin of that reputation.
	FracByRep map[origin.Reputation]float64
	Dests     DestMatch
	Action    Verdict
	Key       rng.Key
}

// Name implements Rule.
func (r *ReputationScatter) Name() string { return r.RuleName }

// Evaluate implements Rule.
func (r *ReputationScatter) Evaluate(q *Query) (Verdict, bool) {
	if !r.Dests.Matches(q) {
		return 0, false
	}
	frac := r.FracByRep[q.Rep]
	if frac <= 0 {
		return 0, false
	}
	// Key by the origin and the destination /24: network-level blocking
	// decisions, stable across trials and probes.
	s24 := q.Dst.Slash24()
	if !r.Key.Bool(frac, uint64(q.Origin), s24.Base.Word64()) {
		return 0, false
	}
	return r.Action, true
}
