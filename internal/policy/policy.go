// Package policy implements the destination-side filtering behaviours that
// the paper identifies as root causes of missing hosts: static per-origin
// blocking (Censys's blockers), geographic allow/deny fences, rate-triggered
// intrusion-detection blocking (evaded by 64-IP scanning), Alibaba-style
// temporal network-wide SSH resets, and OpenSSH MaxStartups probabilistic
// connection refusal.
//
// Each behaviour is an independent Rule; an Engine composes them in priority
// order. All probabilistic decisions are keyed hashes of the query
// coordinates, so evaluation is deterministic, order-independent, and safe
// for concurrent use (except the IDS, which is inherently stateful and
// synchronizes internally).
package policy

import (
	"time"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/rng"
)

// Verdict is the destination's treatment of a connection attempt.
type Verdict uint8

const (
	// Allow lets the connection proceed normally.
	Allow Verdict = iota
	// Silent drops all packets (firewall DROP): no SYN-ACK, L4-dead.
	Silent
	// RefuseTCP answers the SYN with a RST: L4 explicitly refused.
	RefuseTCP
	// ResetAfterAccept completes the TCP handshake, then resets the
	// connection before any application data (Alibaba's SSH behaviour).
	ResetAfterAccept
	// CloseAfterAccept completes the TCP handshake, then closes with
	// FIN before the application banner (MaxStartups-style refusal).
	CloseAfterAccept
)

var verdictNames = [...]string{"allow", "silent", "refuse-tcp", "reset-after-accept", "close-after-accept"}

// String returns a short verdict name.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "verdict(?)"
}

// L4Responsive reports whether a ZMap SYN probe elicits a SYN-ACK under
// this verdict. ResetAfterAccept and CloseAfterAccept hosts are L4-alive;
// the paper notes Alibaba's blocked SSH hosts still complete TCP handshakes.
func (v Verdict) L4Responsive() bool {
	return v == Allow || v == ResetAfterAccept || v == CloseAfterAccept
}

// Query carries the coordinates of one connection attempt.
//
// Callers on the probe hot path recycle queries (the fabric fills one from
// a pool per Send/Dial and releases it on return), so a *Query is only
// valid for the duration of the Rule/Detector call it is passed to. Rules
// that need any of its coordinates later must copy the field values, never
// the pointer.
type Query struct {
	Origin     origin.ID
	SrcIP      ip.Addr
	SrcCountry geo.Country
	NumSrcIPs  int // how many source IPs the origin scans with
	Rep        origin.Reputation

	Dst        ip.Addr
	DstAS      asn.ASN
	DstCountry geo.Country
	Proto      proto.Protocol

	Trial   int           // 0-based trial index
	Time    time.Duration // virtual time since trial start (base probe time)
	Probe   int           // 0-based L4 probe index for this target (0 on L7)
	Attempt int           // 0-based L7 retry number

	// ConcurrentOrigins is how many origins are attempting an L7
	// handshake with this host at approximately the same time
	// (synchronized scans probe the same target simultaneously), which
	// drives MaxStartups refusal probability.
	ConcurrentOrigins int
}

// Rule is one destination-side behaviour. Evaluate returns (verdict, true)
// when the rule has an opinion about the query, or (_, false) to defer.
// Evaluate must not retain q: the caller may reuse it for the next probe
// the moment Evaluate returns (see Query).
type Rule interface {
	// Name identifies the rule in diagnostics and cause attribution.
	Name() string
	Evaluate(q *Query) (Verdict, bool)
}

// Engine composes rules; the first rule with an opinion wins.
type Engine struct {
	rules []Rule
}

// NewEngine returns an engine evaluating the given rules in order.
func NewEngine(rules ...Rule) *Engine {
	return &Engine{rules: rules}
}

// Add appends a rule at the lowest priority.
func (e *Engine) Add(r Rule) { e.rules = append(e.rules, r) }

// Evaluate returns the effective verdict and the deciding rule's name
// ("" when allowed by default).
func (e *Engine) Evaluate(q *Query) (Verdict, string) {
	for _, r := range e.rules {
		if v, ok := r.Evaluate(q); ok {
			return v, r.Name()
		}
	}
	return Allow, ""
}

// Rules returns the engine's rules in priority order.
func (e *Engine) Rules() []Rule { return e.rules }

// hostFraction deterministically selects a stable fraction of destination
// hosts: host dst is "selected" iff a keyed hash of (dst) falls below frac.
// The same host is selected for every origin, trial, and probe, which is
// what makes the resulting inaccessibility long-term.
func hostFraction(key rng.Key, dst ip.Addr, frac float64) bool {
	return key.Bool(frac, dst.Word64())
}
