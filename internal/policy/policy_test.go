package policy

import (
	"math"
	"testing"
	"time"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/rng"
)

func baseQuery() *Query {
	return &Query{
		Origin:     origin.CEN,
		SrcIP:      ip.MustParseAddr("203.0.113.1"),
		SrcCountry: "US",
		NumSrcIPs:  1,
		Rep:        origin.RepHeavy,
		Dst:        ip.MustParseAddr("10.1.2.3"),
		DstAS:      100,
		DstCountry: "HK",
		Proto:      proto.HTTP,
		Trial:      0,
	}
}

func TestVerdictL4Responsive(t *testing.T) {
	cases := map[Verdict]bool{
		Allow:            true,
		Silent:           false,
		RefuseTCP:        false,
		ResetAfterAccept: true,
		CloseAfterAccept: true,
	}
	for v, want := range cases {
		if got := v.L4Responsive(); got != want {
			t.Errorf("%v.L4Responsive() = %v, want %v", v, got, want)
		}
	}
}

func TestStaticBlockMatchesOriginAndDest(t *testing.T) {
	b := &StaticBlock{
		RuleName: "dxtl-blocks-censys",
		Origins:  OriginMatch{IDs: origin.Set{origin.CEN}},
		Dests:    DestMatch{ASes: []asn.ASN{100}},
		Action:   Silent,
	}
	q := baseQuery()
	if v, ok := b.Evaluate(q); !ok || v != Silent {
		t.Errorf("Censys to AS100 = %v,%v, want Silent", v, ok)
	}
	q.Origin = origin.AU
	q.Rep = origin.RepUsed
	if _, ok := b.Evaluate(q); ok {
		t.Error("AU should not match a Censys-only block")
	}
	q = baseQuery()
	q.DstAS = 200
	if _, ok := b.Evaluate(q); ok {
		t.Error("other AS should not match")
	}
}

func TestStaticBlockHostFraction(t *testing.T) {
	b := &StaticBlock{
		RuleName:     "egi-blocks-censys",
		Origins:      OriginMatch{IDs: origin.Set{origin.CEN}},
		Dests:        DestMatch{ASes: []asn.ASN{100}},
		Action:       Silent,
		HostFraction: 0.9,
		Key:          rng.NewKey(1).Derive("egi"),
	}
	blocked := 0
	const n = 20000
	for i := 0; i < n; i++ {
		q := baseQuery()
		q.Dst = ip.AddrFrom4(0x0a000000 + uint32(i))
		if _, ok := b.Evaluate(q); ok {
			blocked++
		}
	}
	frac := float64(blocked) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("blocked fraction %v, want ~0.9", frac)
	}
	// Same host always gets the same decision across trials and probes.
	q := baseQuery()
	q.Dst = ip.MustParseAddr("10.0.0.77")
	_, first := b.Evaluate(q)
	for trial := 1; trial < 3; trial++ {
		q.Trial = trial
		if _, got := b.Evaluate(q); got != first {
			t.Error("host-fraction decision changed across trials")
		}
	}
}

func TestStaticBlockFractionByTrial(t *testing.T) {
	b := &StaticBlock{
		RuleName:        "egi-escalates",
		Origins:         OriginMatch{IDs: origin.Set{origin.CEN}},
		Action:          Silent,
		HostFraction:    0.9,
		FractionByTrial: []float64{0.9, 0.95, 1.0},
		Key:             rng.NewKey(1).Derive("egi2"),
	}
	// Trial 3 blocks everyone.
	q := baseQuery()
	q.Trial = 2
	misses := 0
	for i := 0; i < 1000; i++ {
		q.Dst = ip.AddrFrom4(uint32(i) * 1000)
		if _, ok := b.Evaluate(q); !ok {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("trial 3 fraction 1.0 should block all; %d escaped", misses)
	}
}

func TestOriginMatchReputationAndSrcIPs(t *testing.T) {
	m := OriginMatch{MinReputation: origin.RepHeavy}
	q := baseQuery()
	if !m.Matches(q) {
		t.Error("heavy reputation should match MinReputation=RepHeavy")
	}
	q.Rep = origin.RepUsed
	if m.Matches(q) {
		t.Error("used reputation should not match MinReputation=RepHeavy")
	}

	m = OriginMatch{MaxSrcIPs: 1}
	q = baseQuery()
	q.NumSrcIPs = 64
	if m.Matches(q) {
		t.Error("64-IP origin should evade MaxSrcIPs=1 match")
	}
	q.NumSrcIPs = 1
	if !m.Matches(q) {
		t.Error("single-IP origin should match MaxSrcIPs=1")
	}
}

func TestOriginMatchCountries(t *testing.T) {
	// Tegna: blocks all non-US origins.
	b := &StaticBlock{
		RuleName: "tegna",
		Origins:  OriginMatch{ExcludeCountries: []geo.Country{"US"}},
		Action:   Silent,
	}
	q := baseQuery()
	q.SrcCountry = "BR"
	if _, ok := b.Evaluate(q); !ok {
		t.Error("non-US origin should be blocked")
	}
	q.SrcCountry = "US"
	if _, ok := b.Evaluate(q); ok {
		t.Error("US origin should be allowed")
	}
}

func TestGeoFence(t *testing.T) {
	// WebCentral: only reachable from inside Australia.
	g := &GeoFence{
		RuleName: "webcentral-au-only",
		Allowed:  OriginMatch{Countries: []geo.Country{"AU"}},
		Dests:    DestMatch{ASes: []asn.ASN{7496}},
		Action:   Silent,
	}
	q := baseQuery()
	q.DstAS = 7496
	q.SrcCountry = "US"
	if v, ok := g.Evaluate(q); !ok || v != Silent {
		t.Errorf("US to AU-only network = %v,%v", v, ok)
	}
	q.SrcCountry = "AU"
	if _, ok := g.Evaluate(q); ok {
		t.Error("AU origin should pass the fence")
	}
	q.SrcCountry = "US"
	q.DstAS = 1
	if _, ok := g.Evaluate(q); ok {
		t.Error("fence should only cover its destinations")
	}
}

func TestReputationScatterScalesWithReputation(t *testing.T) {
	r := &ReputationScatter{
		RuleName: "scatter",
		FracByRep: map[origin.Reputation]float64{
			origin.RepHeavy: 0.02,
			origin.RepFresh: 0.005,
		},
		Action: Silent,
		Key:    rng.NewKey(2).Derive("scatter"),
	}
	count := func(rep origin.Reputation) int {
		blocked := 0
		for i := 0; i < 30000; i++ {
			q := baseQuery()
			q.Rep = rep
			q.Dst = ip.AddrFrom4(uint32(i) << 8) // distinct /24s
			if _, ok := r.Evaluate(q); ok {
				blocked++
			}
		}
		return blocked
	}
	heavy, fresh := count(origin.RepHeavy), count(origin.RepFresh)
	if heavy < 3*fresh {
		t.Errorf("heavy=%d fresh=%d: heavy reputation should be blocked far more", heavy, fresh)
	}
	used := count(origin.RepUsed)
	if used != 0 {
		t.Errorf("reputation with no configured fraction blocked %d", used)
	}
	// Same /24 blocks all hosts in it or none.
	q1, q2 := baseQuery(), baseQuery()
	q1.Rep, q2.Rep = origin.RepHeavy, origin.RepHeavy
	q1.Dst = ip.MustParseAddr("10.9.9.1")
	q2.Dst = ip.MustParseAddr("10.9.9.200")
	_, ok1 := r.Evaluate(q1)
	_, ok2 := r.Evaluate(q2)
	if ok1 != ok2 {
		t.Error("scatter blocking must be network-level (/24) not host-level")
	}
}

func TestEngineFirstOpinionWins(t *testing.T) {
	high := &StaticBlock{RuleName: "high", Origins: OriginMatch{IDs: origin.Set{origin.CEN}}, Action: Silent}
	low := &StaticBlock{RuleName: "low", Action: RefuseTCP}
	e := NewEngine(high, low)
	v, name := e.Evaluate(baseQuery())
	if v != Silent || name != "high" {
		t.Errorf("Evaluate = %v,%q; want Silent from high", v, name)
	}
	q := baseQuery()
	q.Origin = origin.AU
	q.Rep = origin.RepUsed
	v, name = e.Evaluate(q)
	if v != RefuseTCP || name != "low" {
		t.Errorf("Evaluate = %v,%q; want RefuseTCP from low", v, name)
	}
}

func TestEngineDefaultAllow(t *testing.T) {
	e := NewEngine()
	if v, name := e.Evaluate(baseQuery()); v != Allow || name != "" {
		t.Errorf("empty engine = %v,%q", v, name)
	}
	e.Add(&StaticBlock{RuleName: "x", Origins: OriginMatch{IDs: origin.Set{origin.JP}}, Action: Silent})
	if v, _ := e.Evaluate(baseQuery()); v != Allow {
		t.Errorf("non-matching rule should allow, got %v", v)
	}
}

func TestIDSDetectsAfterThreshold(t *testing.T) {
	d := &IDS{RuleName: "ruhr", AS: 29484, Threshold: 100, Persistent: true, Action: Silent}
	q := baseQuery()
	q.DstAS = 29484
	for i := 0; i < 99; i++ {
		if d.RecordProbe(q) {
			t.Fatalf("detected early at probe %d", i)
		}
		if _, ok := d.Evaluate(q); ok {
			t.Fatal("Evaluate blocked before detection")
		}
	}
	if !d.RecordProbe(q) {
		t.Fatal("not detected at threshold")
	}
	if v, ok := d.Evaluate(q); !ok || v != Silent {
		t.Errorf("after detection = %v,%v", v, ok)
	}
	// Persistent: still blocked in the next trial.
	q.Trial = 1
	if v, ok := d.Evaluate(q); !ok || v != Silent {
		t.Errorf("next trial = %v,%v; want persistent block", v, ok)
	}
}

func TestIDSPerSourceIP(t *testing.T) {
	d := &IDS{RuleName: "ids", AS: 1, Threshold: 10, Action: Silent}
	// Spread probes over 64 source IPs: no single source crosses.
	for i := 0; i < 300; i++ {
		q := baseQuery()
		q.DstAS = 1
		q.SrcIP = ip.AddrFrom4(uint32(0xC0000200) + uint32(i%64))
		if d.RecordProbe(q) {
			t.Fatal("64-IP origin should evade per-source threshold")
		}
	}
	// Single source crosses quickly.
	for i := 0; i < 10; i++ {
		q := baseQuery()
		q.DstAS = 1
		d.RecordProbe(q)
	}
	q := baseQuery()
	q.DstAS = 1
	if _, ok := d.Evaluate(q); !ok {
		t.Error("single-IP origin should be detected")
	}
}

func TestIDSNonPersistentResetsAcrossTrials(t *testing.T) {
	d := &IDS{RuleName: "ids", AS: 1, Threshold: 5, Action: Silent}
	q := baseQuery()
	q.DstAS = 1
	for i := 0; i < 5; i++ {
		d.RecordProbe(q)
	}
	if _, ok := d.Evaluate(q); !ok {
		t.Fatal("should be blocked in trial 0")
	}
	q.Trial = 1
	if _, ok := d.Evaluate(q); ok {
		t.Error("non-persistent IDS should not carry over to the next trial")
	}
	d.Reset()
	q.Trial = 0
	if _, ok := d.Evaluate(q); ok {
		t.Error("Reset did not clear detection state")
	}
}

func TestIDSIgnoresOtherAS(t *testing.T) {
	d := &IDS{RuleName: "ids", AS: 1, Threshold: 1, Action: Silent}
	q := baseQuery()
	q.DstAS = 2
	if d.RecordProbe(q) {
		t.Error("probe to other AS must not count")
	}
	if _, ok := d.Evaluate(q); ok {
		t.Error("other AS must not be blocked")
	}
}

func TestTemporalRSTDetection(t *testing.T) {
	tr := &TemporalRST{
		RuleName:     "alibaba",
		ASes:         []asn.ASN{37963},
		Proto:        proto.SSH,
		MaxSrcIPs:    1,
		ScanDuration: 21 * time.Hour,
		DetectMin:    0.5, DetectMax: 0.8,
		Key: rng.NewKey(3).Derive("alibaba"),
	}
	q := baseQuery()
	q.DstAS = 37963
	q.Proto = proto.SSH

	// Before any possible detection time: allowed.
	q.Time = time.Hour
	if _, ok := tr.Evaluate(q); ok {
		t.Error("blocked before detection window")
	}
	// After the latest detection time: blocked (no intermittency config).
	q.Time = 20 * time.Hour
	v, ok := tr.Evaluate(q)
	if !ok || v != ResetAfterAccept {
		t.Errorf("after detection = %v,%v; want ResetAfterAccept", v, ok)
	}
	// 64-IP origin evades.
	q.NumSrcIPs = 64
	if _, ok := tr.Evaluate(q); ok {
		t.Error("64-IP origin should evade temporal blocking")
	}
	q.NumSrcIPs = 1
	// Wrong protocol: no opinion.
	q.Proto = proto.HTTP
	if _, ok := tr.Evaluate(q); ok {
		t.Error("HTTP must not trigger the SSH blocker")
	}
}

func TestTemporalRSTDetectionTimeVariesByTrial(t *testing.T) {
	tr := &TemporalRST{
		RuleName:     "alibaba",
		ASes:         []asn.ASN{37963},
		Proto:        proto.SSH,
		ScanDuration: 21 * time.Hour,
		DetectMin:    0.3, DetectMax: 0.9,
		Key: rng.NewKey(4).Derive("alibaba"),
	}
	q := baseQuery()
	q.DstAS = 37963
	q.Proto = proto.SSH
	times := map[time.Duration]bool{}
	for trial := 0; trial < 3; trial++ {
		q.Trial = trial
		dt, ok := tr.detectTime(q)
		if !ok {
			t.Fatal("detection should fire for single-IP origin")
		}
		lo := time.Duration(0.3 * float64(21*time.Hour))
		hi := time.Duration(0.9 * float64(21*time.Hour))
		if dt < lo || dt > hi {
			t.Errorf("trial %d detection %v outside [%v,%v]", trial, dt, lo, hi)
		}
		times[dt] = true
	}
	if len(times) < 2 {
		t.Error("detection time should vary across trials")
	}
}

func TestTemporalRSTIntermittent(t *testing.T) {
	tr := &TemporalRST{
		RuleName:     "alibaba",
		ASes:         []asn.ASN{37963},
		Proto:        proto.SSH,
		ScanDuration: 21 * time.Hour,
		DetectMin:    0.1, DetectMax: 0.1,
		BlockedWindow: 2 * time.Hour, ClearWindow: time.Hour,
		Key: rng.NewKey(5).Derive("a"),
	}
	q := baseQuery()
	q.DstAS = 37963
	q.Proto = proto.SSH
	blockedHours, clearHours := 0, 0
	for h := 3; h < 21; h++ {
		q.Time = time.Duration(h) * time.Hour
		if tr.Blocked(q) {
			blockedHours++
		} else {
			clearHours++
		}
	}
	if blockedHours == 0 || clearHours == 0 {
		t.Errorf("intermittent blocking should alternate; blocked=%d clear=%d", blockedHours, clearHours)
	}
}

func TestMaxStartupsRetriesEventuallySucceed(t *testing.T) {
	m := &MaxStartups{
		RuleName:     "maxstartups",
		HostFraction: 1.0,
		Start:        3, Rate: 0.6, Full: 50,
		MeanLoad: 10,
		Key:      rng.NewKey(6).Derive("ms"),
	}
	q := baseQuery()
	q.Proto = proto.SSH
	q.ConcurrentOrigins = 1

	// Count hosts that succeed within k attempts, for growing k: the
	// success rate must increase with retries (Figure 13).
	succWithin := func(maxAttempts int) int {
		succ := 0
		for h := 0; h < 2000; h++ {
			q.Dst = ip.AddrFrom4(0x0b000000 + uint32(h))
			for a := 0; a < maxAttempts; a++ {
				q.Attempt = a
				if _, refused := m.Evaluate(q); !refused {
					succ++
					break
				}
			}
		}
		return succ
	}
	s1, s4, s8 := succWithin(1), succWithin(4), succWithin(8)
	if !(s1 < s4 && s4 < s8) {
		t.Errorf("success should grow with retries: %d, %d, %d", s1, s4, s8)
	}
	if s8 < 1500 {
		t.Errorf("8 retries should recover most hosts, got %d/2000", s8)
	}
}

func TestMaxStartupsConcurrencyIncreasesRefusal(t *testing.T) {
	m := &MaxStartups{
		RuleName:     "maxstartups",
		HostFraction: 1.0,
		Start:        5, Rate: 0.3, Full: 30,
		MeanLoad: 4,
		Key:      rng.NewKey(7).Derive("ms"),
	}
	q := baseQuery()
	q.Proto = proto.SSH
	refusals := func(concurrent int) int {
		n := 0
		for h := 0; h < 5000; h++ {
			q.Dst = ip.AddrFrom4(0x0c000000 + uint32(h))
			q.ConcurrentOrigins = concurrent
			if _, refused := m.Evaluate(q); refused {
				n++
			}
		}
		return n
	}
	if r1, r7 := refusals(1), refusals(7); r7 <= r1 {
		t.Errorf("more concurrent origins should refuse more: 1->%d, 7->%d", r1, r7)
	}
}

func TestMaxStartupsOnlySSH(t *testing.T) {
	m := &MaxStartups{RuleName: "ms", HostFraction: 1, Start: 0, Rate: 1, Full: 1, MeanLoad: 100, Key: rng.NewKey(8)}
	q := baseQuery()
	q.Proto = proto.HTTP
	if _, ok := m.Evaluate(q); ok {
		t.Error("MaxStartups must only affect SSH")
	}
}
