package policy

import (
	"sync"

	"repro/internal/asn"
	"repro/internal/ip"
)

// IDS models a destination network's intrusion detection system that counts
// probes per scanner source IP and, once a source crosses the detection
// threshold, blocks that source for the remainder of the study (the paper
// confirms Ruhr-Universität Bochum blocked all single-IP origins two hours
// into the first HTTPS scan and kept them blocked in all later scans).
//
// Detection is per source IP, which is exactly why 64-IP scanning evades it:
// each of US64's addresses sends 1/64th of the probes and stays under the
// threshold.
//
// The IDS is stateful; RecordProbe must be called for every probe reaching
// the protected AS (the fabric does this). State is shared across trials
// when Persistent is true.
type IDS struct {
	RuleName string
	// AS is the protected network.
	AS asn.ASN
	// Threshold is the number of probes from a single source IP that
	// triggers detection.
	Threshold int
	// Protos restricts which scans trigger and are blocked (zero = all).
	Protos DestMatch
	// Persistent keeps a detected source blocked in subsequent trials.
	Persistent bool
	// Action is the treatment of blocked sources (typically Silent).
	Action Verdict

	mu      sync.Mutex
	counts  map[idsKey]int
	blocked map[idsBlockKey]bool
}

type idsKey struct {
	src   ip.Addr
	trial int
}

type idsBlockKey struct {
	src   ip.Addr
	trial int // -1 when Persistent
}

// Name implements Rule.
func (d *IDS) Name() string { return d.RuleName }

func (d *IDS) blockKey(src ip.Addr, trial int) idsBlockKey {
	if d.Persistent {
		return idsBlockKey{src: src, trial: -1}
	}
	return idsBlockKey{src: src, trial: trial}
}

// RecordProbe counts a probe from src toward the protected AS and returns
// true if the source is (now) blocked. The triggering probe itself is
// already dropped: real IDSes fire mid-scan, and the paper observes
// networks going dark partway into a trial.
func (d *IDS) RecordProbe(q *Query) bool {
	if q.DstAS != d.AS || !d.Protos.Matches(q) {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.counts == nil {
		d.counts = make(map[idsKey]int)
		d.blocked = make(map[idsBlockKey]bool)
	}
	bk := d.blockKey(q.SrcIP, q.Trial)
	if d.blocked[bk] {
		return true
	}
	k := idsKey{src: q.SrcIP, trial: q.Trial}
	d.counts[k]++
	if d.counts[k] >= d.Threshold {
		d.blocked[bk] = true
		return true
	}
	return false
}

// Evaluate implements Rule: it reports the verdict for already-detected
// sources. It does not count the probe; the fabric calls RecordProbe for
// that on the L4 path.
func (d *IDS) Evaluate(q *Query) (Verdict, bool) {
	if q.DstAS != d.AS || !d.Protos.Matches(q) {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.blocked[d.blockKey(q.SrcIP, q.Trial)] {
		return d.Action, true
	}
	return 0, false
}

// Reset clears all detection state (between independent experiments).
func (d *IDS) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.counts = nil
	d.blocked = nil
}
