package policy

import (
	"sync"

	"repro/internal/asn"
	"repro/internal/ip"
)

// IDS models a destination network's intrusion detection system that counts
// probes per scanner source IP and, once a source crosses the detection
// threshold, blocks that source for the remainder of the study (the paper
// confirms Ruhr-Universität Bochum blocked all single-IP origins two hours
// into the first HTTPS scan and kept them blocked in all later scans).
//
// Detection is per source IP, which is exactly why 64-IP scanning evades it:
// each of US64's addresses sends 1/64th of the probes and stays under the
// threshold.
//
// The IDS is stateful; RecordProbe must be called for every probe reaching
// the protected AS (the fabric does this). State is shared across trials
// when Persistent is true.
type IDS struct {
	RuleName string
	// AS is the protected network.
	AS asn.ASN
	// Threshold is the number of probes from a single source IP that
	// triggers detection.
	Threshold int
	// Protos restricts which scans trigger and are blocked (zero = all).
	Protos DestMatch
	// Persistent keeps a detected source blocked in subsequent trials.
	Persistent bool
	// Action is the treatment of blocked sources (typically Silent).
	Action Verdict

	mu      sync.Mutex
	counts  map[idsKey]int
	blocked map[idsBlockKey]bool
}

type idsKey struct {
	src   ip.Addr
	trial int
}

type idsBlockKey struct {
	src   ip.Addr
	trial int // -1 when Persistent
}

// Name implements Rule.
func (d *IDS) Name() string { return d.RuleName }

// Covers reports whether the query targets this IDS's protected AS with a
// protocol the IDS monitors. RecordProbe, Evaluate, and the parallel
// engine's detection planner all share this gate.
func (d *IDS) Covers(q *Query) bool {
	return q.DstAS == d.AS && d.Protos.Matches(q)
}

func (d *IDS) blockKey(src ip.Addr, trial int) idsBlockKey {
	if d.Persistent {
		return idsBlockKey{src: src, trial: -1}
	}
	return idsBlockKey{src: src, trial: trial}
}

// RecordProbe counts a probe from src toward the protected AS and returns
// true if the source is (now) blocked. The triggering probe itself is
// already dropped: real IDSes fire mid-scan, and the paper observes
// networks going dark partway into a trial.
func (d *IDS) RecordProbe(q *Query) bool {
	if !d.Covers(q) {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.counts == nil {
		d.counts = make(map[idsKey]int)
		d.blocked = make(map[idsBlockKey]bool)
	}
	bk := d.blockKey(q.SrcIP, q.Trial)
	if d.blocked[bk] {
		return true
	}
	k := idsKey{src: q.SrcIP, trial: q.Trial}
	d.counts[k]++
	if d.counts[k] >= d.Threshold {
		d.blocked[bk] = true
		return true
	}
	return false
}

// Evaluate implements Rule: it reports the verdict for already-detected
// sources. It does not count the probe; the fabric calls RecordProbe for
// that on the L4 path.
func (d *IDS) Evaluate(q *Query) (Verdict, bool) {
	if !d.Covers(q) {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.blocked[d.blockKey(q.SrcIP, q.Trial)] {
		return d.Action, true
	}
	return 0, false
}

// Reset clears all detection state (between independent experiments).
func (d *IDS) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.counts = nil
	d.blocked = nil
}

// BlockedState reports whether src is currently blocked for trial, without
// counting anything. The detection planner uses it to snapshot state at the
// start of a simulated scan.
func (d *IDS) BlockedState(src ip.Addr, trial int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocked[d.blockKey(src, trial)]
}

// CloneEmpty returns an IDS with the same rule parameters and no detection
// state. The detection planner drives clones through simulated scans so the
// live IDS's counting logic — not a reimplementation — decides when each
// source crosses the threshold.
func (d *IDS) CloneEmpty() *IDS {
	return &IDS{
		RuleName:   d.RuleName,
		AS:         d.AS,
		Threshold:  d.Threshold,
		Protos:     d.Protos,
		Persistent: d.Persistent,
		Action:     d.Action,
	}
}

// MergeStateFrom folds other's counts and blocks into d. Sources are
// disjoint across the planner's per-origin simulations (detection is
// per-source-IP and origins never share addresses), so merging the
// simulations reproduces the exact state a serial run would have left.
func (d *IDS) MergeStateFrom(other *IDS) {
	other.mu.Lock()
	defer other.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.counts == nil {
		d.counts = make(map[idsKey]int)
		d.blocked = make(map[idsBlockKey]bool)
	}
	for k, n := range other.counts {
		d.counts[k] += n
	}
	for k, b := range other.blocked {
		if b {
			d.blocked[k] = true
		}
	}
}

// Detector is the fabric's view of an IDS: something that counts L4 probes
// and renders verdicts on L7 connections. The live *IDS implements it by
// mutating shared state; ScheduledIDS implements it from a precomputed
// per-scan detection schedule, which is what lets scans sharing an IDS run
// concurrently yet behave exactly as if they had run serially.
type Detector interface {
	Name() string
	// RecordProbe observes one L4 probe and reports whether the source is
	// blocked for it (the probe is then dropped).
	RecordProbe(q *Query) bool
	// Evaluate reports the verdict for an L7 connection attempt.
	Evaluate(q *Query) (Verdict, bool)
}

// Detectors adapts live IDSes to the Detector interface.
func Detectors(idses []*IDS) []Detector {
	out := make([]Detector, len(idses))
	for i, d := range idses {
		out[i] = d
	}
	return out
}
