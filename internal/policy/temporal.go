package policy

import (
	"time"

	"repro/internal/asn"
	"repro/internal/proto"
	"repro/internal/rng"
)

// TemporalRST models Alibaba's network-wide SSH scan detection (§6): partway
// into a scan the network detects a single-IP scanner and causes *all* SSH
// hosts in the AS to reset connections immediately after the TCP handshake.
// Detection is non-deterministic — it fires at different times in different
// trials and origins (about two-thirds into trial 1) — and intermittent:
// blocked windows alternate with clear windows (Figure 12).
//
// Origins scanning with many source IPs dilute per-IP rates below the
// detector's trigger and are not blocked (US64 sees 64.4% of the hosts that
// are exclusively accessible on SSH).
type TemporalRST struct {
	RuleName string
	ASes     []asn.ASN
	Proto    proto.Protocol
	// MaxSrcIPs: origins scanning with more source IPs evade detection.
	MaxSrcIPs int
	// ScanDuration is the trial length on the virtual clock.
	ScanDuration time.Duration
	// DetectFraction brackets when detection fires, as fractions of the
	// scan duration; the actual time is drawn per (origin, trial).
	DetectMin, DetectMax float64
	// BlockedWindow / ClearWindow are mean durations of the alternating
	// intermittent phases after detection.
	BlockedWindow time.Duration
	ClearWindow   time.Duration
	Key           rng.Key
}

// Name implements Rule.
func (t *TemporalRST) Name() string { return t.RuleName }

// detectTime returns when detection fires for this origin and trial, or
// false if this origin is never detected.
func (t *TemporalRST) detectTime(q *Query) (time.Duration, bool) {
	if t.MaxSrcIPs != 0 && q.NumSrcIPs > t.MaxSrcIPs {
		return 0, false
	}
	span := t.DetectMax - t.DetectMin
	u := t.Key.Float64(uint64(q.Origin), uint64(q.Trial))
	frac := t.DetectMin + span*u
	return time.Duration(frac * float64(t.ScanDuration)), true
}

// Blocked reports whether the network is in a blocked window for this
// origin at the query's time.
func (t *TemporalRST) Blocked(q *Query) bool {
	detect, ok := t.detectTime(q)
	if !ok || q.Time < detect {
		return false
	}
	if t.BlockedWindow <= 0 {
		return true
	}
	cycle := t.BlockedWindow + t.ClearWindow
	if cycle <= 0 {
		return true
	}
	// Alternate blocked/clear windows after detection; jitter the phase
	// per (origin, trial) so timelines differ across trials as observed.
	since := q.Time - detect
	phase := time.Duration(t.Key.Float64(uint64(q.Origin), uint64(q.Trial), 1) * float64(cycle))
	pos := (since + phase) % cycle
	return pos < t.BlockedWindow
}

// Evaluate implements Rule.
func (t *TemporalRST) Evaluate(q *Query) (Verdict, bool) {
	if q.Proto != t.Proto || !containsAS(t.ASes, q.DstAS) {
		return 0, false
	}
	if !t.Blocked(q) {
		return 0, false
	}
	return ResetAfterAccept, true
}

// MaxStartups models OpenSSH's MaxStartups start:rate:full setting (§6): a
// host with pending unauthenticated connections refuses new ones
// probabilistically — with probability rate% once `start` connections are
// pending, scaling linearly to 100% at `full`. The affected host closes the
// TCP connection before the SSH banner. Retrying the handshake (the paper
// retries up to 8×) eventually wins unless the host is saturated.
//
// In the simulation, each affected host has a background load level (its
// typical number of pending unauthenticated connections, drawn per host),
// and each simultaneous scanning origin adds one more.
type MaxStartups struct {
	RuleName string
	// HostFraction is the fraction of SSH hosts (per covered dest) that
	// run a restrictive MaxStartups configuration.
	HostFraction float64
	Dests        DestMatch
	// Start, Rate, Full mirror sshd_config MaxStartups (e.g. 10:30:100).
	Start int
	Rate  float64 // refusal probability at Start pending connections
	Full  int
	// MeanLoad is the mean background pending-connection count for
	// affected hosts (per-host level drawn in [0, 2×MeanLoad]).
	MeanLoad float64
	Key      rng.Key
}

// Name implements Rule.
func (m *MaxStartups) Name() string { return m.RuleName }

// Affected reports whether dst is one of the restrictive-config hosts.
func (m *MaxStartups) Affected(q *Query) bool {
	if q.Proto != proto.SSH || !m.Dests.Matches(q) {
		return false
	}
	return hostFraction(m.Key.Derive("hosts"), q.Dst, m.HostFraction)
}

// RefusalProbability returns the probability this host refuses one more
// unauthenticated connection given the query's concurrency.
func (m *MaxStartups) RefusalProbability(q *Query) float64 {
	// Per-host stable background load.
	load := m.Key.Derive("load").Float64(q.Dst.Word64()) * 2 * m.MeanLoad
	pending := load + float64(maxInt(q.ConcurrentOrigins, 1))
	if pending < float64(m.Start) {
		return 0
	}
	if pending >= float64(m.Full) {
		return 1
	}
	// Linear scale from Rate at Start to 1.0 at Full, per sshd_config(5).
	span := float64(m.Full - m.Start)
	return m.Rate + (1-m.Rate)*(pending-float64(m.Start))/span
}

// Evaluate implements Rule. Refusal is drawn independently per attempt, so
// immediate retries succeed with increasing cumulative probability
// (Figure 13).
func (m *MaxStartups) Evaluate(q *Query) (Verdict, bool) {
	if !m.Affected(q) {
		return 0, false
	}
	p := m.RefusalProbability(q)
	if p <= 0 {
		return 0, false
	}
	refuse := m.Key.Derive("draw").Bool(p,
		q.Dst.Word64(), uint64(q.Origin), uint64(q.Trial), uint64(q.Attempt))
	if !refuse {
		return 0, false
	}
	return CloseAfterAccept, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
