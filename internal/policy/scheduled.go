package policy

import (
	"time"

	"repro/internal/asn"
	"repro/internal/ip"
	"repro/internal/telemetry"
)

// SrcSchedule is the precomputed IDS fate of one scanner source IP during
// one scan: either already blocked when the scan starts, or detected at a
// specific (virtual time, probe index) point mid-scan, or never detected.
type SrcSchedule struct {
	// BlockedAtStart marks sources a Persistent IDS had already blocked
	// before this scan began (e.g. detected in an earlier trial).
	BlockedAtStart bool
	// Detected marks sources that cross the threshold during this scan,
	// at virtual base time T on probe index Probe of that target.
	Detected bool
	T        time.Duration
	Probe    int
}

// ScheduledIDS is a read-only Detector for one (origin, protocol, trial)
// scan, derived by replaying the study's canonical scan order against
// clones of the live IDS before any scan runs. Because ZMap's probe order
// and times are fully seed-determined, "the source crosses the threshold at
// probe k of target visited at time t" is computable in advance; the
// schedule then answers RecordProbe/Evaluate without any shared mutable
// state, which is what lets scans that share an IDS run concurrently and
// still drop exactly the probes a serial run would have dropped.
type ScheduledIDS struct {
	RuleName   string
	AS         asn.ASN
	Protos     DestMatch
	Action     Verdict
	ProbeDelay time.Duration
	// Schedules maps each of the scan's source IPs to its fate; sources
	// absent from the map are never detected.
	Schedules map[ip.Addr]*SrcSchedule
	// Metrics, when set, counts block activations and dropped probes.
	// The detector itself stays read-only — the counters are atomic and
	// nil-safe, and an activation is counted exactly when a probe lands
	// on its source's precomputed detection point.
	Metrics *telemetry.IDSMetrics
}

// NewScheduledIDS builds the per-scan view of live, with the given
// detection schedules.
func NewScheduledIDS(live *IDS, probeDelay time.Duration, schedules map[ip.Addr]*SrcSchedule) *ScheduledIDS {
	return &ScheduledIDS{
		RuleName:   live.RuleName,
		AS:         live.AS,
		Protos:     live.Protos,
		Action:     live.Action,
		ProbeDelay: probeDelay,
		Schedules:  schedules,
	}
}

// Name implements Detector.
func (d *ScheduledIDS) Name() string { return d.RuleName }

func (d *ScheduledIDS) covers(q *Query) bool {
	return q.DstAS == d.AS && d.Protos.Matches(q)
}

// RecordProbe implements Detector: the probe is dropped iff it lies at or
// after the source's precomputed detection point. Query.Time includes the
// probe's delay offset, so the target's base time is recovered first;
// ordering is then lexicographic on (base time, probe index), matching the
// order the serial scan would have counted probes in.
func (d *ScheduledIDS) RecordProbe(q *Query) bool {
	if !d.covers(q) {
		return false
	}
	s := d.Schedules[q.SrcIP]
	if s == nil {
		return false
	}
	if s.BlockedAtStart {
		if m := d.Metrics; m != nil {
			m.Drops.Inc()
		}
		return true
	}
	if !s.Detected {
		return false
	}
	tBase := q.Time - time.Duration(q.Probe)*d.ProbeDelay
	if tBase > s.T || (tBase == s.T && q.Probe >= s.Probe) {
		if m := d.Metrics; m != nil {
			if tBase == s.T && q.Probe == s.Probe {
				// This probe is the one that crossed the threshold: the
				// moment the dynamic block activates for this source.
				m.Activations.Inc()
			}
			m.Drops.Inc()
		}
		return true
	}
	return false
}

// Evaluate implements Detector. L7 grabs run after the L4 sweep completes,
// so a source detected at any point during the scan is blocked for all of
// the scan's L7 connections — exactly the state a serial run's live IDS
// would hold by grab time.
func (d *ScheduledIDS) Evaluate(q *Query) (Verdict, bool) {
	if !d.covers(q) {
		return 0, false
	}
	if s := d.Schedules[q.SrcIP]; s != nil && (s.BlockedAtStart || s.Detected) {
		return d.Action, true
	}
	return 0, false
}
