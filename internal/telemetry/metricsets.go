// Pre-resolved metric bundles for the scanner's hot paths. A bundle looks
// up its labeled children once, when a scan starts, so the inner loops pay
// one atomic add per event — never a family or label lookup. Every
// constructor returns nil when the registry is nil, and the instruments'
// methods are nil-safe, so instrumented code needs no enable/disable
// branches.
package telemetry

import "strconv"

// Metric family names shared between the instrumentation sites and the
// sinks/progress line. Keeping them in one place is what lets the progress
// line aggregate across scans without the experiment layer threading
// totals around.
const (
	// L4 sweep (internal/zmap), labeled origin/proto/trial. Unrouted
	// counts targets the FIB short-circuited as unrouted space (their
	// probes are sent-and-lost on the wire but never individually
	// evaluated); Targets-Unrouted is the routed share, the
	// routed/unrouted split tracestat and the sweep span attrs surface.
	MetricProbesSent = "zmap_probes_sent_total"
	MetricTargets    = "zmap_targets_total"
	MetricUnrouted   = "zmap_targets_unrouted_total"
	MetricBlocked    = "zmap_blocked_total"
	MetricSynAcks    = "zmap_synacks_total"
	MetricRsts       = "zmap_rsts_total"
	MetricInvalid    = "zmap_invalid_total"
	MetricDuplicates = "zmap_duplicates_total"
	MetricLost       = "zmap_probes_unanswered_total"

	// L7 grabs (internal/zgrab), labeled origin/proto/trial.
	MetricGrabDials      = "zgrab_dials_total"
	MetricGrabHandshakes = "zgrab_handshakes_total"
	MetricGrabRetries    = "zgrab_retries_total"
	MetricGrabFails      = "zgrab_failures_total" // + mode label

	// L7 latency split (internal/zgrab): where one grab's wall time goes
	// — TCP dial vs application handshake vs retry back-off attempts.
	MetricGrabDialSeconds      = "zgrab_dial_seconds"
	MetricGrabHandshakeSeconds = "zgrab_handshake_seconds"
	MetricGrabRetrySeconds     = "zgrab_retry_seconds"

	// Grab worker pool (internal/experiment), labeled origin/proto/trial.
	// QueueWait is how long a host's reply sat in the window before a
	// worker claimed it; Service is the worker's grab wall time; the
	// split tells batching work whether the pool is starved (service-
	// bound) or clogged (queue-bound). WorkerBusyNS carries a worker
	// label; WindowAppend times the sink's window hand-off.
	// Predial times the fast path's batched pre-dial evaluation — one
	// observation per grab window, covering every destination's verdict.
	MetricGrabPredial      = "zgrab_predial_seconds"
	MetricGrabQueueWait    = "zgrab_queue_wait_seconds"
	MetricGrabService      = "zgrab_service_seconds"
	MetricGrabWorkerBusyNS = "zgrab_worker_busy_ns_total"
	MetricGrabHosts        = "zgrab_hosts_total"
	MetricGrabHostsDone    = "zgrab_hosts_done_total"
	MetricWindowAppend     = "results_window_append_seconds"

	// IDS detection (internal/policy), labeled ids/origin/proto/trial.
	MetricIDSActivations = "ids_activations_total"
	MetricIDSDrops       = "ids_dropped_probes_total"

	// Result sealing (internal/results), labeled origin/proto/trial.
	MetricRowsSealed  = "results_rows_sealed_total"
	MetricRowsDeduped = "results_rows_deduped_total"

	// Result spilling (the spill-to-disk store), labeled
	// origin/proto/trial. Fan-in is a gauge — the final merge's input run
	// count for that scan; the duration histogram aggregates merge wall
	// time across scans.
	MetricSpillSegments     = "results_spill_segments_total"
	MetricSpillBytes        = "results_spill_bytes_total"
	MetricSpillFlushSeconds = "results_spill_flush_seconds"
	MetricMergeFanIn        = "results_merge_fanin"
	MetricMergePasses       = "results_merge_passes"
	MetricMergeSeconds      = "results_merge_duration_seconds"

	// Study orchestration (internal/experiment).
	MetricScansTotal   = "experiment_scans_total"
	MetricScansDone    = "experiment_scans_done_total"
	MetricQueueDepth   = "experiment_queue_depth"
	MetricWorkerBusyNS = "experiment_worker_busy_ns_total"
	MetricWorkerScans  = "experiment_worker_scans_total"
)

// SweepMetrics are one scan's L4 sweep counters, mirroring zmap.Stats
// field-for-field. The sweep accumulates into its private Stats struct as
// before and flushes deltas here once per sweep batch (see
// zmap.Scanner.Run), so the per-probe path is untouched and the counters
// stay live to within one batch.
type SweepMetrics struct {
	Targets    *Counter
	Blocked    *Counter
	ProbesSent *Counter
	SynAcks    *Counter
	Rsts       *Counter
	Invalid    *Counter
	Duplicates *Counter
	// Lost counts probes that elicited no valid response at all — the
	// scanner-visible loss class (policy drop, path loss, dead address,
	// and IDS block are indistinguishable on the wire).
	Lost *Counter
	// Unrouted counts targets short-circuited by the FIB's routability
	// check. It is not a zmap.Stats field — the reference per-address
	// path never computes it — so the scanner flushes it separately
	// from the Stats deltas.
	Unrouted *Counter
}

// NewSweepMetrics resolves the sweep counter children for one scan's
// labels. Returns nil (a no-op bundle) when r is nil.
func NewSweepMetrics(r *Registry, labels ...Label) *SweepMetrics {
	if r == nil {
		return nil
	}
	return &SweepMetrics{
		Targets:    r.Counter(MetricTargets, labels...),
		Blocked:    r.Counter(MetricBlocked, labels...),
		ProbesSent: r.Counter(MetricProbesSent, labels...),
		SynAcks:    r.Counter(MetricSynAcks, labels...),
		Rsts:       r.Counter(MetricRsts, labels...),
		Invalid:    r.Counter(MetricInvalid, labels...),
		Duplicates: r.Counter(MetricDuplicates, labels...),
		Lost:       r.Counter(MetricLost, labels...),
		Unrouted:   r.Counter(MetricUnrouted, labels...),
	}
}

// LatencyBuckets are the histogram bounds for per-event latencies (dial,
// handshake, queue wait), in seconds: finer than DurationBuckets at the
// microsecond end, where a simulated in-process dial lands.
var LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1, 5, 30}

// GrabMetrics are one scan's L7 handshake counters. The grab path is
// per-host (not per-probe), so it updates these directly.
type GrabMetrics struct {
	Dials      *Counter
	Handshakes *Counter
	Retries    *Counter
	// Failure modes, matching zgrab.FailMode: Refused counts refused TCP
	// connections (the MaxStartups signature under synchronized scans),
	// Resets counts connections reset after establishment (the Alibaba
	// RST-block path), Timeouts silent drops, Closed FIN-before-banner,
	// ProtoErrs non-protocol peers.
	Refused   *Counter
	Resets    *Counter
	Timeouts  *Counter
	Closed    *Counter
	ProtoErrs *Counter
	// Latency split: DialSeconds times the TCP connect alone,
	// HandshakeSeconds the application exchange on an established
	// connection, RetrySeconds whole failed attempts that led to a
	// retry. Together they attribute a grab's service time.
	DialSeconds      *Histogram
	HandshakeSeconds *Histogram
	RetrySeconds     *Histogram
}

// NewGrabMetrics resolves the grab counter children for one scan's labels.
// Returns nil (a no-op bundle) when r is nil.
func NewGrabMetrics(r *Registry, labels ...Label) *GrabMetrics {
	if r == nil {
		return nil
	}
	mode := func(m string) *Counter {
		ls := append(append(make([]Label, 0, len(labels)+1), labels...), L("mode", m))
		return r.Counter(MetricGrabFails, ls...)
	}
	return &GrabMetrics{
		Dials:      r.Counter(MetricGrabDials, labels...),
		Handshakes: r.Counter(MetricGrabHandshakes, labels...),
		Retries:    r.Counter(MetricGrabRetries, labels...),
		Refused:    mode("refused"),
		Resets:     mode("reset"),
		Timeouts:   mode("timeout"),
		Closed:     mode("closed"),
		ProtoErrs:  mode("proto"),

		DialSeconds:      r.Histogram(MetricGrabDialSeconds, LatencyBuckets, labels...),
		HandshakeSeconds: r.Histogram(MetricGrabHandshakeSeconds, LatencyBuckets, labels...),
		RetrySeconds:     r.Histogram(MetricGrabRetrySeconds, LatencyBuckets, labels...),
	}
}

// GrabPoolMetrics observe one scan's grab worker pool: the queue-wait vs
// service-time split, the window hand-off to the result sink, per-worker
// busy time, and host progress (the progress line's grab-phase rate
// source). Resolved once per scan; nil when telemetry is off.
type GrabPoolMetrics struct {
	QueueWait    *Histogram
	Service      *Histogram
	WindowAppend *Histogram
	// Predial times the fast path's per-window batched verdict
	// evaluation, so the dial work moved out of the workers stays
	// attributable.
	Predial   *Histogram
	Hosts     *Gauge
	HostsDone *Counter
	// WorkerBusyNS is indexed by worker id; each child carries a worker
	// label so utilization is visible per worker in the exposition.
	WorkerBusyNS []*Counter
}

// NewGrabPoolMetrics resolves the grab-pool instruments for one scan's
// labels and worker count. Returns nil (a no-op bundle) when r is nil.
func NewGrabPoolMetrics(r *Registry, workers int, labels ...Label) *GrabPoolMetrics {
	if r == nil {
		return nil
	}
	m := &GrabPoolMetrics{
		QueueWait:    r.Histogram(MetricGrabQueueWait, LatencyBuckets, labels...),
		Service:      r.Histogram(MetricGrabService, LatencyBuckets, labels...),
		WindowAppend: r.Histogram(MetricWindowAppend, LatencyBuckets, labels...),
		Predial:      r.Histogram(MetricGrabPredial, LatencyBuckets, labels...),
		Hosts:        r.Gauge(MetricGrabHosts, labels...),
		HostsDone:    r.Counter(MetricGrabHostsDone, labels...),
		WorkerBusyNS: make([]*Counter, workers),
	}
	for w := range m.WorkerBusyNS {
		ls := append(append(make([]Label, 0, len(labels)+1), labels...), L("worker", strconv.Itoa(w)))
		m.WorkerBusyNS[w] = r.Counter(MetricGrabWorkerBusyNS, ls...)
	}
	return m
}

// IDSMetrics count one scan's IDS treatment: Activations is the number of
// (source IP) dynamic-block activations that fired mid-scan (a source
// crossing the detection threshold), Drops the probes discarded because
// their source was blocked. Labeled per IDS rule and scan.
type IDSMetrics struct {
	Activations *Counter
	Drops       *Counter
}

// NewIDSMetrics resolves the IDS counter children. Returns nil when r is
// nil.
func NewIDSMetrics(r *Registry, labels ...Label) *IDSMetrics {
	if r == nil {
		return nil
	}
	return &IDSMetrics{
		Activations: r.Counter(MetricIDSActivations, labels...),
		Drops:       r.Counter(MetricIDSDrops, labels...),
	}
}

// SealMetrics count result-store commits: rows sealed into sorted columns
// and duplicate rows dropped by Seal's keep-last dedup.
type SealMetrics struct {
	Rows    *Counter
	Deduped *Counter
}

// NewSealMetrics resolves the seal counters. Returns nil when r is nil.
func NewSealMetrics(r *Registry, labels ...Label) *SealMetrics {
	if r == nil {
		return nil
	}
	return &SealMetrics{
		Rows:    r.Counter(MetricRowsSealed, labels...),
		Deduped: r.Counter(MetricRowsDeduped, labels...),
	}
}

// SpillMetrics observe the spill-to-disk result store: segment files
// flushed, bytes spilled, the Seal merge's fan-in, and merge wall time.
// Like SealStats, the experiment layer pushes these after sealing — the
// results package stays telemetry-free.
type SpillMetrics struct {
	Segments *Counter
	Bytes    *Counter
	FanIn    *Gauge
	Passes   *Gauge
	Merge    *Histogram
	// Flush aggregates segment-write wall time (the spill store's
	// cumulative FlushDuration), distinguishing runs that are slow
	// because they merge wide from runs that are slow because the disk
	// is slow.
	Flush *Histogram
}

// NewSpillMetrics resolves the spill instruments for one scan's labels.
// Returns nil (a no-op bundle) when r is nil.
func NewSpillMetrics(r *Registry, labels ...Label) *SpillMetrics {
	if r == nil {
		return nil
	}
	return &SpillMetrics{
		Segments: r.Counter(MetricSpillSegments, labels...),
		Bytes:    r.Counter(MetricSpillBytes, labels...),
		FanIn:    r.Gauge(MetricMergeFanIn, labels...),
		Passes:   r.Gauge(MetricMergePasses, labels...),
		Merge:    r.Histogram(MetricMergeSeconds, DurationBuckets, labels...),
		Flush:    r.Histogram(MetricSpillFlushSeconds, DurationBuckets, labels...),
	}
}
