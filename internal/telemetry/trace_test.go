package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// findSpan returns the last retained record with the given name.
func findSpan(t *testing.T, recs []SpanRecord, name string) SpanRecord {
	t.Helper()
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Name == name {
			return recs[i]
		}
	}
	t.Fatalf("no %q span in %d records", name, len(recs))
	return SpanRecord{}
}

func TestSpanHierarchy(t *testing.T) {
	r := New()
	study := r.StartSpan("study", L("family", "ipv4"))
	scan := study.StartChild("scan", L("origin", "US1"))
	stage := scan.StartChild("scan_stage", L("stage", "sweep"))
	stage.SetAttr("targets", 1024)
	stage.End(nil)
	scan.End(nil)
	study.End(errors.New("boom"))

	recs := r.Spans()
	st := findSpan(t, recs, "study")
	sc := findSpan(t, recs, "scan")
	sg := findSpan(t, recs, "scan_stage")
	if st.ID == 0 || sc.ID == 0 || sg.ID == 0 {
		t.Fatalf("span IDs not allocated: study=%d scan=%d stage=%d", st.ID, sc.ID, sg.ID)
	}
	if st.Parent != 0 {
		t.Errorf("study parent = %d, want 0 (root)", st.Parent)
	}
	if sc.Parent != st.ID {
		t.Errorf("scan parent = %d, want study id %d", sc.Parent, st.ID)
	}
	if sg.Parent != sc.ID {
		t.Errorf("stage parent = %d, want scan id %d", sg.Parent, sc.ID)
	}
	if st.Children != 1 || st.Dropped != 0 {
		t.Errorf("study children/dropped = %d/%d, want 1/0", st.Children, st.Dropped)
	}
	if st.Err != "boom" {
		t.Errorf("study err = %q", st.Err)
	}
	if len(sg.Attrs) != 1 || sg.Attrs[0] != (Attr{Key: "targets", Value: 1024}) {
		t.Errorf("stage attrs = %+v", sg.Attrs)
	}
	// The monotonic offsets order the tree on one timeline: a child starts
	// at or after its parent, and no span starts before the registry epoch.
	if st.StartNS < 0 || sc.StartNS < st.StartNS || sg.StartNS < sc.StartNS {
		t.Errorf("StartNS not monotonic down the tree: study=%d scan=%d stage=%d",
			st.StartNS, sc.StartNS, sg.StartNS)
	}
	// Ending a span feeds the metric families derived from its name.
	if got := r.Counter("study_errors_total", L("family", "ipv4")).Value(); got != 1 {
		t.Errorf("study_errors_total = %d, want 1", got)
	}
	if got := r.Counter("scan_total", L("origin", "US1")).Value(); got != 1 {
		t.Errorf("scan_total = %d, want 1", got)
	}
}

func TestChildTracerBoundedSampling(t *testing.T) {
	r := New()
	parent := r.StartSpan("scan_stage", L("stage", "sweep"))
	tr := parent.ChildTracer("sweep_batch")
	const units = 100_000
	for i := 0; i < units; i++ {
		tr.Begin()
		tr.End(A("targets", int64(i)))
	}
	parent.End(nil)

	// live when n < sampleFirst or n % sampleEvery == 0 over n = 0..99999:
	// 32 startup exemplars plus 1024,2048,...,99328.
	const wantLive = sampleFirst + (units-1)/sampleEvery
	if got := tr.Count(); got != units {
		t.Errorf("Count = %d, want %d", got, units)
	}
	p := findSpan(t, r.Spans(), "scan_stage")
	if p.Children != units {
		t.Errorf("parent children = %d, want %d", p.Children, units)
	}
	if p.Dropped != units-wantLive {
		t.Errorf("parent dropped = %d, want %d (=%d recorded)", p.Dropped, units-wantLive, wantLive)
	}
	live := 0
	for _, rec := range r.Spans() {
		if rec.Name == "sweep_batch" {
			live++
			if rec.Parent != p.ID {
				t.Fatalf("exemplar parent = %d, want %d", rec.Parent, p.ID)
			}
		}
	}
	if live != wantLive {
		t.Errorf("%d exemplar spans recorded, want %d", live, wantLive)
	}
}

func TestNilRegistryTracingIsInert(t *testing.T) {
	var r *Registry
	sp := r.StartSpan("study")
	if sp != nil {
		t.Fatal("nil registry returned a non-nil span")
	}
	// Every method must be a safe no-op on the nil span and everything
	// derived from it.
	sp.SetAttr("k", 1)
	sp.End(nil)
	if id := sp.ID(); id != 0 {
		t.Errorf("nil span ID = %d", id)
	}
	if child := sp.StartChild("scan"); child != nil {
		t.Error("nil span produced a non-nil child")
	}
	ct := sp.ChildTracer("batch")
	if ct != nil {
		t.Error("nil span produced a non-nil ChildTracer")
	}
	ct.Begin()
	ct.End(A("k", 1))
	if n := ct.Count(); n != 0 {
		t.Errorf("nil tracer Count = %d", n)
	}
	if st := NewStageTrace(nil, nil); st != nil {
		t.Error("NewStageTrace(nil, ...) != nil")
	}
	var st *StageTrace
	if got := st.Span(0); got != nil {
		t.Error("nil StageTrace handed out a non-nil span")
	}
	if drops := r.SpanDrops(); drops != 0 {
		t.Errorf("nil registry SpanDrops = %d", drops)
	}
}

// TestConcurrentSpanCreation exercises the span tree under -race: many
// goroutines opening children, attaching attributes, and running child
// tracers against one shared parent.
func TestConcurrentSpanCreation(t *testing.T) {
	r := New()
	root := r.StartSpan("study")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.StartChild("scan", L("origin", fmt.Sprintf("o%d", w)))
				sp.SetAttr("i", int64(i))
				root.SetAttr("touch", int64(w))
				sp.End(nil)
			}
		}(w)
	}
	wg.Wait()
	root.End(nil)
	rec := findSpan(t, r.Spans(), "study")
	if rec.Children != workers*perWorker {
		t.Errorf("root children = %d, want %d", rec.Children, workers*perWorker)
	}
	ids := map[SpanID]bool{}
	for _, s := range r.Spans() {
		if ids[s.ID] && s.ID != 0 {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestSpanRingDrops(t *testing.T) {
	r := New()
	const n = spanRingCap + 88
	for i := 0; i < n; i++ {
		r.StartSpan("s").End(nil)
	}
	if got := len(r.Spans()); got != spanRingCap {
		t.Errorf("ring retained %d spans, cap %d", got, spanRingCap)
	}
	if got := r.SpanDrops(); got != 88 {
		t.Errorf("SpanDrops = %d, want 88", got)
	}
	if snap := r.Snapshot(); snap.SpanDrops != 88 {
		t.Errorf("Snapshot.SpanDrops = %d, want 88", snap.SpanDrops)
	}
}

// TestChromeTraceSchema locks the trace_event export shape: complete
// events with pid/tid/ts/dur, microsecond timestamps, and children mapped
// onto their scan-level ancestor's track.
func TestChromeTraceSchema(t *testing.T) {
	r := New()
	study := r.StartSpan("study")
	scanA := study.StartChild("scan", L("origin", "US1"))
	stage := scanA.StartChild("scan_stage", L("stage", "sweep"))
	time.Sleep(time.Millisecond)
	stage.End(nil)
	scanA.End(nil)
	scanB := study.StartChild("scan", L("origin", "AU"))
	scanB.End(nil)
	study.End(nil)

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(trace.TraceEvents) != 4 {
		t.Fatalf("%d trace events, want 4", len(trace.TraceEvents))
	}
	tracks := map[string]uint64{}
	for _, ev := range trace.TraceEvents {
		if ev.Name == "" || ev.Ph != "X" || ev.Pid != 1 || ev.Tid == 0 {
			t.Errorf("malformed event %+v", ev)
		}
		if ev.Ts == nil || ev.Dur == nil || *ev.Ts < 0 || *ev.Dur < 0 {
			t.Errorf("event %q missing or negative ts/dur", ev.Name)
		}
		key := ev.Name
		if lb, ok := ev.Args["labels"].(string); ok {
			key += "{" + lb + "}"
		}
		tracks[key] = ev.Tid
	}
	// The stage span renders on its scan's track, and the two scans get
	// distinct tracks.
	if tracks[`scan_stage{stage="sweep"}`] != tracks[`scan{origin="US1"}`] {
		t.Errorf("stage not on its scan's track: %v", tracks)
	}
	if tracks[`scan{origin="US1"}`] == tracks[`scan{origin="AU"}`] {
		t.Errorf("distinct scans share a track: %v", tracks)
	}
	// The stage slept ≥1ms; ts/dur are microseconds, so dur must be ≥1000.
	var stageDur float64
	for _, ev := range trace.TraceEvents {
		if ev.Name == "scan_stage" {
			stageDur = *ev.Dur
		}
	}
	if stageDur < 1000 {
		t.Errorf("stage dur = %vµs, want ≥1000 (timestamps must be microseconds)", stageDur)
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := New()
	rec, err := NewRecorder(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	r.AttachRecorder(rec)

	study := r.StartSpan("study")
	scan := study.StartChild("scan", L("origin", "US1"))
	tr := scan.ChildTracer("sweep_batch")
	tr.Begin()
	tr.End(A("targets", 4096))
	scan.End(nil)
	study.End(nil)
	r.Counter("probes_total", L("origin", "US1")).Add(7)
	r.Histogram(MetricGrabQueueWait, LatencyBuckets).Observe(0.002)
	if err := r.CloseRecorder(); err != nil {
		t.Fatal(err)
	}

	// ReadJournal accepts the directory (it finds JournalFile inside).
	evs, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 || evs[0].Ev != "meta" || evs[0].Meta == nil {
		t.Fatalf("journal does not open with a meta event: %+v", evs)
	}
	if !evs[0].Meta.Start.Equal(r.Start()) {
		t.Errorf("meta start %v, want registry epoch %v", evs[0].Meta.Start, r.Start())
	}
	spans := JournalSpans(evs)
	if len(spans) != 3 {
		t.Fatalf("%d journaled spans, want 3", len(spans))
	}
	// Journal order is commit order: exemplar, scan, study — and the ID
	// linkage survives the round trip.
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["scan"].Parent != byName["study"].ID {
		t.Errorf("scan parent %d, want %d", byName["scan"].Parent, byName["study"].ID)
	}
	if byName["sweep_batch"].Parent != byName["scan"].ID {
		t.Errorf("batch parent %d, want %d", byName["sweep_batch"].Parent, byName["scan"].ID)
	}
	snap := JournalSnapshot(evs)
	if snap == nil {
		t.Fatal("journal has no final snapshot")
	}
	foundCounter, foundHist := false, false
	for _, c := range snap.Counters {
		if c.Name == "probes_total" && c.Value == 7 {
			foundCounter = true
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == MetricGrabQueueWait && h.Count == 1 {
			foundHist = true
		}
	}
	if !foundCounter || !foundHist {
		t.Errorf("snapshot missing counter/histogram: counter=%v hist=%v", foundCounter, foundHist)
	}

	// CloseRecorder with nothing attached is a no-op.
	if err := r.CloseRecorder(); err != nil {
		t.Errorf("second CloseRecorder: %v", err)
	}
}

// TestProgressGrabPhase pins the readout switch: once the sweep's probe
// counters go quiet while grab completions climb, the rate and ETA are
// reported in grab-host completions.
func TestProgressGrabPhase(t *testing.T) {
	r := New()
	r.Gauge(MetricScansTotal).Set(4)
	r.Counter(MetricProbesSent, L("origin", "US1")).Add(1_000_000)
	p := &Progress{reg: r, lastT: r.Start(), w: nil}

	// Sweep running: probes rising, readout in probes/s.
	line := p.line(r.Start().Add(1 * time.Second))
	if !contains(line, "probes/s") || contains(line, "grabs") {
		t.Errorf("sweep-phase line = %q", line)
	}

	// Sweep done, grab stage working through its backlog.
	r.Gauge(MetricGrabHosts, L("origin", "US1")).Set(1000)
	r.Counter(MetricGrabHostsDone, L("origin", "US1")).Add(500)
	line = p.line(r.Start().Add(2 * time.Second))
	for _, want := range []string{"grabs 500/1.0k", "500 grabs/s", "ETA 1s"} {
		if !contains(line, want) {
			t.Errorf("grab-phase line missing %q: %q", want, line)
		}
	}
	if contains(line, "probes/s") {
		t.Errorf("grab-phase line still reports probe rate: %q", line)
	}

	// Grabs finished too: both rates zero, back to the scan-count ETA path.
	r.Counter(MetricScansDone).Add(4)
	line = p.line(r.Start().Add(3 * time.Second))
	if !contains(line, "done") || contains(line, "grabs ") {
		t.Errorf("completed line = %q", line)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
