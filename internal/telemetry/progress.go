// The progress sink: a periodic single-line status report on stderr (or
// any writer) summarizing a running study — scans done/total, cumulative
// probes, the current rate and an ETA, plus peak RSS and (when any) the
// count of spans the ring dropped. While a sweep is driving the probe
// counters the rate/ETA read out in probes; once the sweep completes and
// the grab stage takes over (probe rate zero, grab completions rising)
// the readout switches to grab-host completions, which is what actually
// bounds the remaining wall time. It reads only the registry's aggregate
// counters, so it works for serial and parallel runs alike, and `-quiet`
// simply never starts it.
package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress periodically renders a one-line status to w until stopped.
type Progress struct {
	reg   *Registry
	w     io.Writer
	every time.Duration

	mu        sync.Mutex
	lastT     time.Time
	lastSent  uint64
	lastGrabs uint64
	maxLen    int
	stop      chan struct{}
	done      chan struct{}
	wroteLine bool
}

// StartProgress launches the progress loop, emitting a line every interval
// (default 2s when interval <= 0). Returns nil — and starts nothing — when
// reg or w is nil, so callers can unconditionally defer Stop.
func StartProgress(reg *Registry, w io.Writer, interval time.Duration) *Progress {
	if reg == nil || w == nil {
		return nil
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := &Progress{
		reg:   reg,
		w:     w,
		every: interval,
		lastT: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	t := time.NewTicker(p.every)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case now := <-t.C:
			p.emit(now)
		}
	}
}

func (p *Progress) emit(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	line := p.line(now)
	// Carriage return keeps the live status to one terminal line; each
	// emission overwrites the last, padded to the longest line written so
	// far so a shorter line leaves no residue.
	if len(line) > p.maxLen {
		p.maxLen = len(line)
	}
	fmt.Fprintf(p.w, "\r%-*s", p.maxLen, line)
	p.wroteLine = true
}

// line renders the status for the given instant, updating the rate window.
// Exposed to tests through direct calls in telemetry_test.go.
func (p *Progress) line(now time.Time) string {
	sent := p.reg.CounterSum(MetricProbesSent)
	grabs := p.reg.CounterSum(MetricGrabHostsDone)
	rate, grabRate := float64(0), float64(0)
	if dt := now.Sub(p.lastT).Seconds(); dt > 0 {
		rate = float64(sent-p.lastSent) / dt
		grabRate = float64(grabs-p.lastGrabs) / dt
	}
	p.lastT, p.lastSent, p.lastGrabs = now, sent, grabs

	done := p.reg.CounterSum(MetricScansDone)
	total := p.reg.GaugeSum(MetricScansTotal)
	elapsed := now.Sub(p.reg.Start())

	// The sweep went quiet while grab completions are still climbing: the
	// grab stage owns the remaining wall time, so rate and ETA read out in
	// grab-host completions instead of probes.
	grabPhase := rate == 0 && grabRate > 0

	var b strings.Builder
	fmt.Fprintf(&b, "scans %d/%d", done, total)
	fmt.Fprintf(&b, " · %s probes", siCount(sent))
	if grabPhase {
		grabTotal := p.reg.GaugeSum(MetricGrabHosts)
		fmt.Fprintf(&b, " · grabs %s/%s · %s grabs/s",
			siCount(grabs), siCount(uint64(grabTotal)), siCount(uint64(grabRate)))
	} else {
		fmt.Fprintf(&b, " · %s probes/s", siCount(uint64(rate)))
	}
	switch {
	case grabPhase:
		if backlog := p.reg.GaugeSum(MetricGrabHosts) - int64(grabs); backlog > 0 {
			remaining := time.Duration(float64(backlog) / grabRate * float64(time.Second))
			fmt.Fprintf(&b, " · ETA %s", remaining.Round(time.Second))
		}
	case total > 0 && done > 0 && int64(done) < total:
		remaining := time.Duration(float64(elapsed) * float64(total-int64(done)) / float64(done))
		fmt.Fprintf(&b, " · ETA %s", remaining.Round(time.Second))
	case total > 0 && int64(done) >= total:
		b.WriteString(" · done")
	}
	if rss, ok := PeakRSSBytes(); ok {
		fmt.Fprintf(&b, " · rss %s", siBytes(rss))
	}
	if d := p.reg.SpanDrops(); d > 0 {
		fmt.Fprintf(&b, " · %d spans dropped", d)
	}
	return b.String()
}

// Stop halts the loop and, if any status line was written, terminates it
// with a newline so subsequent output starts clean. Safe on nil.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
	p.mu.Lock()
	if p.wroteLine {
		fmt.Fprintln(p.w)
	}
	p.mu.Unlock()
}

// siCount renders a count with an SI suffix (12.3M), keeping the progress
// line narrow at production probe volumes.
func siCount(n uint64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// siBytes renders a byte count with a binary suffix (123.4MiB), matching
// the -mem-budget flag's units.
func siBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
