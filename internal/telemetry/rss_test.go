package telemetry

import "testing"

func TestPeakRSSBytes(t *testing.T) {
	b, ok := PeakRSSBytes()
	if !ok {
		t.Skip("no peak-RSS source on this platform")
	}
	// Any live Go process has resident at least a few hundred KiB; treat a
	// tiny or zero reading as a parse bug.
	if b < 100<<10 {
		t.Fatalf("peak RSS %d bytes is implausibly small", b)
	}
}
