// Hierarchical tracing for scan lifecycles. Spans form a tree — a study
// span owns scan spans (one per origin/proto/trial), each scan owns stage
// spans, and a stage owns sampled batch/window exemplars — linked by span
// IDs and stamped with a monotonic start offset so a trace can be replayed
// on one timeline. Ending a span records the duration into a histogram
// family, bumps completion/error counters, appends the record to a bounded
// in-memory ring (the /spans sink), and tees it to the flight recorder when
// one is attached. Spans are observational only — they never alter control
// flow — and all entry points are no-ops on a nil registry or nil span.
package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
)

// spanRingCap bounds the completed-span ring. At production scale a study
// runs ~63 scans × 3 stages plus study-level spans and a bounded set of
// batch exemplars, so 512 keeps the interesting tail; the flight recorder
// (journal) is the lossless record, and SpanDrops counts what the ring
// overwrote.
const spanRingCap = 512

// SpanID identifies one span within a registry's trace. IDs are allocated
// from a per-registry counter starting at 1; 0 means "no span" (a root's
// Parent).
type SpanID uint64

// Attr is one integer-valued span attribute (targets swept, rows sealed,
// spill bytes, ...). Attributes are deliberately int64-only: they are
// written on hot-path exemplars and must not drag fmt or interface boxing
// into the scan loop.
type Attr struct {
	Key   string `json:"k"`
	Value int64  `json:"v"`
}

// A is shorthand for constructing an Attr.
func A(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is one completed span, as exposed by Spans, the JSON sink,
// and the flight-recorder journal.
type SpanRecord struct {
	ID     SpanID `json:"id,omitempty"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Start  time.Time `json:"start"`
	// StartNS is the span's start as monotonic nanoseconds since the
	// registry epoch (Registry.Start). Unlike the wall-clock Start it is
	// immune to clock steps, so trace viewers and tracestat order and
	// nest spans by (StartNS, StartNS+Duration).
	StartNS  int64         `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	// Children counts every child unit started under this span; Dropped
	// is how many of those were not recorded as spans because of bounded
	// sampling (ChildTracer). Children-Dropped exemplar records exist.
	Children uint64 `json:"children,omitempty"`
	Dropped  uint64 `json:"dropped,omitempty"`
}

// spanRing is a fixed-capacity ring of completed spans.
type spanRing struct {
	mu    sync.Mutex
	buf   [spanRingCap]SpanRecord
	next  int
	n     int
	drops uint64
}

func (sr *spanRing) push(rec SpanRecord) {
	sr.mu.Lock()
	if sr.n == spanRingCap {
		sr.drops++
	}
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % spanRingCap
	if sr.n < spanRingCap {
		sr.n++
	}
	sr.mu.Unlock()
}

// snapshot returns the retained spans oldest-first.
func (sr *spanRing) snapshot() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, sr.n)
	start := (sr.next - sr.n + spanRingCap) % spanRingCap
	for i := 0; i < sr.n; i++ {
		out = append(out, sr.buf[(start+i)%spanRingCap])
	}
	return out
}

func (sr *spanRing) dropped() uint64 {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return sr.drops
}

// Span is an in-flight timed operation, a node in the trace tree. A nil
// *Span (from a nil registry, or a child of a nil span) is inert: every
// method is a no-op, so instrumented code needs no enable checks.
type Span struct {
	reg     *Registry
	id      SpanID
	parent  SpanID
	name    string
	labels  []Label
	start   time.Time
	startNS int64

	mu    sync.Mutex // guards attrs (SetAttr may race with exemplar writers)
	attrs []Attr

	children atomic.Uint64
	recorded atomic.Uint64
}

// StartSpan begins a root span. On a nil registry the returned span is nil
// and inert.
func (r *Registry) StartSpan(name string, labels ...Label) *Span {
	if r == nil {
		return nil
	}
	return r.startSpan(0, name, labels)
}

// StartChild begins a span under s. Nil-safe: a nil parent yields a nil
// (inert) child, so a disabled trace tree stays disabled all the way down.
func (s *Span) StartChild(name string, labels ...Label) *Span {
	if s == nil || s.reg == nil {
		return nil
	}
	s.children.Add(1)
	s.recorded.Add(1)
	return s.reg.startSpan(s.id, name, labels)
}

func (r *Registry) startSpan(parent SpanID, name string, labels []Label) *Span {
	now := time.Now()
	return &Span{
		reg:     r,
		id:      SpanID(r.spanIDs.Add(1)),
		parent:  parent,
		name:    name,
		labels:  labels,
		start:   now,
		startNS: int64(now.Sub(r.start)),
	}
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches an integer attribute to the span, recorded when the
// span ends. Later sets of the same key append (tracestat keeps the last).
// Safe on nil and safe for concurrent use.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.mu.Unlock()
}

// End completes the span: it observes the duration in the
// "<name>_duration_seconds" histogram, increments "<name>_total" (and
// "<name>_errors_total" when err != nil), and commits the record to the
// span ring and the flight recorder. Safe on nil. End must be called at
// most once.
func (s *Span) End(err error) {
	if s == nil || s.reg == nil {
		return
	}
	d := time.Since(s.start)
	s.reg.observeSpan(s.name, s.labels, d, err)
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name, Labels: labelKey(s.labels),
		Start: s.start, StartNS: s.startNS, Duration: d,
	}
	if err != nil {
		rec.Err = err.Error()
	}
	children, recorded := s.children.Load(), s.recorded.Load()
	rec.Children = children
	rec.Dropped = children - recorded
	s.mu.Lock()
	rec.Attrs = s.attrs
	s.attrs = nil
	s.mu.Unlock()
	s.reg.commitSpan(rec)
}

// observeSpan updates the metric families derived from a span's name.
func (r *Registry) observeSpan(name string, labels []Label, d time.Duration, err error) {
	r.Histogram(name+"_duration_seconds", DurationBuckets, labels...).Observe(d.Seconds())
	r.Counter(name+"_total", labels...).Inc()
	if err != nil {
		r.Counter(name+"_errors_total", labels...).Inc()
	}
}

// commitSpan is the shared span-commit path: ring plus flight recorder.
func (r *Registry) commitSpan(rec SpanRecord) {
	r.spans.push(rec)
	if rc := r.recorder.Load(); rc != nil {
		rc.writeSpan(rec)
	}
}

// recordSpan keeps the flat-span commit path used before the trace tree
// existed: one metrics+ring commit with no ID linkage. Retained for
// callers that time an operation without wanting a node in the tree.
func (r *Registry) recordSpan(name string, labels []Label, start time.Time, d time.Duration, err error) {
	if r == nil {
		return
	}
	r.observeSpan(name, labels, d, err)
	rec := SpanRecord{Name: name, Labels: labelKey(labels), Start: start, StartNS: int64(start.Sub(r.start)), Duration: d}
	if err != nil {
		rec.Err = err.Error()
	}
	r.commitSpan(rec)
}

// Spans returns the retained completed spans, oldest first (nil on a nil
// registry).
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	return r.spans.snapshot()
}

// SpanDrops reports how many completed spans the bounded ring has
// overwritten since the registry was created (0 on nil). A non-zero value
// with no flight recorder attached means /spans is showing a truncated
// trace.
func (r *Registry) SpanDrops() uint64 {
	if r == nil {
		return 0
	}
	return r.spans.dropped()
}

// Bounded child sampling. A full-space sweep walks 2^32 addresses in ~1M
// batches; recording each as a span would swamp the ring, journal, and
// collection overhead budget. ChildTracer records the first sampleFirst
// children (startup behaviour: cold caches, first spill flush) and then
// every sampleEvery-th (steady state), counting the rest only in the
// parent's Children/Dropped totals — ~1K exemplars for a full sweep.
const (
	sampleFirst = 32
	sampleEvery = 1024
)

// ChildTracer batches exemplar child spans under a parent with bounded
// sampling. It is single-goroutine state (like the sweep's statsFlusher):
// create one per worker/shard, call Begin/End around each unit. Skipped
// units cost two atomic adds and no clock read, no allocation — cheap
// enough for the sweep's per-batch loop. A nil tracer (nil parent or nil
// registry) is inert.
type ChildTracer struct {
	reg    *Registry
	parent *Span
	name   string
	labels string
	n      uint64
	start  time.Time
	live   bool
}

// ChildTracer returns a bounded-sampling tracer for child units of s.
// Returns nil (inert) when s is nil.
func (s *Span) ChildTracer(name string, labels ...Label) *ChildTracer {
	if s == nil || s.reg == nil {
		return nil
	}
	return &ChildTracer{reg: s.reg, parent: s, name: name, labels: labelKey(labels)}
}

// Begin marks the start of one child unit. Only sampled units read the
// clock. Safe on nil.
func (t *ChildTracer) Begin() {
	if t == nil {
		return
	}
	t.live = t.n < sampleFirst || t.n%sampleEvery == 0
	t.n++
	if t.live {
		t.start = time.Now()
	}
}

// End completes the unit started by the last Begin. Unsampled units bump
// the parent's child count and return without touching the clock or
// heap; sampled units commit an exemplar span record (attrs are copied
// only then, so the caller's variadic slice does not escape on the skip
// path). Safe on nil.
func (t *ChildTracer) End(attrs ...Attr) {
	if t == nil {
		return
	}
	t.parent.children.Add(1)
	if !t.live {
		return
	}
	t.parent.recorded.Add(1)
	rec := SpanRecord{
		ID:       SpanID(t.reg.spanIDs.Add(1)),
		Parent:   t.parent.id,
		Name:     t.name,
		Labels:   t.labels,
		Start:    t.start,
		StartNS:  int64(t.start.Sub(t.reg.start)),
		Duration: time.Since(t.start),
	}
	if len(attrs) > 0 {
		rec.Attrs = append([]Attr(nil), attrs...)
	}
	t.reg.commitSpan(rec)
}

// Count reports how many units this tracer has begun (sampled or not).
// Safe on nil.
func (t *ChildTracer) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// StageTrace records one pipeline run's stages as spans under a parent
// scan span. Build one per pipeline.Runner — stages within one runner
// execute sequentially in the caller's goroutine, so the per-stage span
// slots need no locking; concurrent scans each get their own StageTrace.
// A nil StageTrace (nil registry) passes hooks through and hands out nil
// spans.
type StageTrace struct {
	reg    *Registry
	parent *Span
	labels []Label
	spans  [pipeline.NumStages]*Span
}

// NewStageTrace builds a stage tracer whose stage spans are children of
// parent (roots when parent is nil). Returns nil when r is nil.
func NewStageTrace(r *Registry, parent *Span, labels ...Label) *StageTrace {
	if r == nil {
		return nil
	}
	return &StageTrace{reg: r, parent: parent, labels: labels}
}

// Span returns the in-flight span for stage s — the handle instrumented
// stage bodies use to attach attributes and batch exemplars. Nil before
// the stage starts, after a nil tracer, or for out-of-range stages.
func (st *StageTrace) Span(s pipeline.Stage) *Span {
	if st == nil || int(s) >= len(st.spans) {
		return nil
	}
	return st.spans[s]
}

// Hooks wraps next with per-stage span recording: Before opens a
// "scan_stage" span labeled with the stage name (plus the trace's labels —
// origin/proto/trial for a scan runner), After ends it with the stage's
// error. With a nil StageTrace next is returned unchanged.
func (st *StageTrace) Hooks(next pipeline.Hooks) pipeline.Hooks {
	if st == nil {
		return next
	}
	return pipeline.Hooks{
		Before: func(ctx context.Context, s pipeline.Stage) {
			if int(s) < len(st.spans) {
				ls := append(append(make([]Label, 0, len(st.labels)+1), st.labels...), L("stage", s.String()))
				if st.parent != nil {
					st.spans[s] = st.parent.StartChild("scan_stage", ls...)
				} else {
					st.spans[s] = st.reg.StartSpan("scan_stage", ls...)
				}
			}
			if next.Before != nil {
				next.Before(ctx, s)
			}
		},
		After: func(ctx context.Context, s pipeline.Stage, err error) {
			if int(s) < len(st.spans) && st.spans[s] != nil {
				st.spans[s].End(err)
			}
			if next.After != nil {
				next.After(ctx, s, err)
			}
		},
	}
}

// ScanHooks wraps next with per-stage span recording rooted at the
// registry (no parent span). Kept as the convenience form of
// NewStageTrace(r, nil, ...).Hooks(next) for callers that don't need the
// stage span handles. With a nil registry next is returned unchanged.
func ScanHooks(r *Registry, next pipeline.Hooks, labels ...Label) pipeline.Hooks {
	return NewStageTrace(r, nil, labels...).Hooks(next)
}
