// Span-style tracing for scan lifecycles. A span times one named unit of
// work (a lifecycle stage, a sub-experiment, a whole study); ending it
// records the duration into a histogram family, bumps completion/error
// counters, and appends a record to a bounded in-memory ring the /spans
// sink exposes. Spans are observational only — they never alter control
// flow — and all entry points are no-ops on a nil registry.
package telemetry

import (
	"context"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// spanRingCap bounds the completed-span ring. At production scale a study
// runs ~63 scans × 3 stages plus study-level spans, so 512 keeps the full
// run; a longer campaign simply retains the most recent spans.
const spanRingCap = 512

// SpanRecord is one completed span, as exposed by Spans and the JSON sink.
type SpanRecord struct {
	Name     string        `json:"name"`
	Labels   string        `json:"labels,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// spanRing is a fixed-capacity ring of completed spans.
type spanRing struct {
	mu   sync.Mutex
	buf  [spanRingCap]SpanRecord
	next int
	n    int
}

func (sr *spanRing) push(rec SpanRecord) {
	sr.mu.Lock()
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % spanRingCap
	if sr.n < spanRingCap {
		sr.n++
	}
	sr.mu.Unlock()
}

// snapshot returns the retained spans oldest-first.
func (sr *spanRing) snapshot() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, sr.n)
	start := (sr.next - sr.n + spanRingCap) % spanRingCap
	for i := 0; i < sr.n; i++ {
		out = append(out, sr.buf[(start+i)%spanRingCap])
	}
	return out
}

// Span is an in-flight timed operation. The zero Span (from a nil registry)
// is inert: End does nothing.
type Span struct {
	reg    *Registry
	name   string
	labels []Label
	start  time.Time
}

// StartSpan begins a span. On a nil registry the returned span is inert.
func (r *Registry) StartSpan(name string, labels ...Label) Span {
	if r == nil {
		return Span{}
	}
	return Span{reg: r, name: name, labels: labels, start: time.Now()}
}

// End completes the span: it observes the duration in the
// "<name>_duration_seconds" histogram, increments "<name>_total" (and
// "<name>_errors_total" when err != nil), and appends the record to the
// span ring.
func (s Span) End(err error) {
	if s.reg == nil {
		return
	}
	s.reg.recordSpan(s.name, s.labels, s.start, time.Since(s.start), err)
}

// recordSpan is the shared span-commit path for Span.End and ScanHooks.
func (r *Registry) recordSpan(name string, labels []Label, start time.Time, d time.Duration, err error) {
	if r == nil {
		return
	}
	r.Histogram(name+"_duration_seconds", DurationBuckets, labels...).Observe(d.Seconds())
	r.Counter(name+"_total", labels...).Inc()
	rec := SpanRecord{Name: name, Labels: labelKey(labels), Start: start, Duration: d}
	if err != nil {
		r.Counter(name+"_errors_total", labels...).Inc()
		rec.Err = err.Error()
	}
	r.spans.push(rec)
}

// Spans returns the retained completed spans, oldest first (nil on a nil
// registry).
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	return r.spans.snapshot()
}

// ScanHooks wraps next with per-stage span recording: Before stamps the
// stage's start, After commits a "scan_stage" span labeled with the stage
// name (plus the caller's labels — origin/proto/trial for a scan runner)
// and the stage's error. The returned Hooks carry per-call state, so build
// one ScanHooks per pipeline.Runner (stages within one runner execute
// sequentially; concurrent scans each get their own). With a nil registry
// next is returned unchanged.
func ScanHooks(r *Registry, next pipeline.Hooks, labels ...Label) pipeline.Hooks {
	if r == nil {
		return next
	}
	var starts [pipeline.NumStages]time.Time
	return pipeline.Hooks{
		Before: func(ctx context.Context, s pipeline.Stage) {
			if int(s) < len(starts) {
				starts[s] = time.Now()
			}
			if next.Before != nil {
				next.Before(ctx, s)
			}
		},
		After: func(ctx context.Context, s pipeline.Stage, err error) {
			if int(s) < len(starts) && !starts[s].IsZero() {
				start := starts[s]
				ls := append(append(make([]Label, 0, len(labels)+1), labels...), L("stage", s.String()))
				r.recordSpan("scan_stage", ls, start, time.Since(start), err)
			}
			if next.After != nil {
				next.After(ctx, s, err)
			}
		},
	}
}
