package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	// Every lookup on a nil registry must return a usable nil instrument.
	c := r.Counter("x_total", L("a", "b"))
	c.Inc()
	c.Add(10)
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("x")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	h := r.Histogram("x_seconds", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if _, _, count := h.Snapshot(); count != 0 {
		t.Errorf("nil histogram count = %d", count)
	}
	r.StartSpan("scan").End(nil)
	if r.Spans() != nil {
		t.Error("nil registry has spans")
	}
	if NewSweepMetrics(r) != nil || NewGrabMetrics(r) != nil || NewIDSMetrics(r) != nil || NewSealMetrics(r) != nil {
		t.Error("nil registry produced non-nil metric bundles")
	}
	var sm *SweepMetrics
	sm.flushNothing() // method set below; ensures nil bundle pattern compiles
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteProm = %v, %d bytes", err, buf.Len())
	}
	if r.CounterSum("x_total") != 0 || r.GaugeSum("x") != 0 {
		t.Error("nil sums non-zero")
	}
}

// flushNothing exists only to prove nil method receivers are safe for
// bundle types used from instrumented packages.
func (m *SweepMetrics) flushNothing() {
	if m == nil {
		return
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("probes_total", L("origin", "US1"), L("proto", "http"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) in any order resolves to the same child.
	c2 := r.Counter("probes_total", L("proto", "http"), L("origin", "US1"))
	if c2 != c {
		t.Error("label order produced a different child")
	}
	other := r.Counter("probes_total", L("origin", "AU"), L("proto", "http"))
	other.Add(7)
	if got := r.CounterSum("probes_total"); got != 12 {
		t.Errorf("CounterSum = %d, want 12", got)
	}
	g := r.Gauge("depth")
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Errorf("gauge = %d, want 40", g.Value())
	}
	if got := r.GaugeSum("depth"); got != 40 {
		t.Errorf("GaugeSum = %d, want 40", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter family did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	buckets, sum, count := h.Snapshot()
	// 0.05 and 0.1 land in le=0.1 (upper bounds are inclusive), 0.5 in
	// le=1, 2 in le=10, 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v", buckets)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, buckets[i], want[i])
		}
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if sum < 102.64 || sum > 102.66 {
		t.Errorf("sum = %v, want 102.65", sum)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total", L("k", "v"))
			h := r.Histogram("h_seconds", []float64{1})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", L("k", "v")).Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if _, sum, count := r.Histogram("h_seconds", []float64{1}).Snapshot(); count != 8000 || sum != 4000 {
		t.Errorf("histogram = %v/%v, want 4000/8000", sum, count)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := New()
	r.Counter("probes_total", L("origin", "US1")).Add(3)
	r.Describe("probes_total", "probes sent")
	r.Gauge("depth").Set(2)
	r.Histogram("dur_seconds", []float64{1, 10}, L("stage", "sweep")).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP probes_total probes sent",
		"# TYPE probes_total counter",
		`probes_total{origin="US1"} 3`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{stage="sweep",le="1"} 1`,
		`dur_seconds_bucket{stage="sweep",le="10"} 1`,
		`dur_seconds_bucket{stage="sweep",le="+Inf"} 1`,
		`dur_seconds_sum{stage="sweep"} 0.5`,
		`dur_seconds_count{stage="sweep"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic output: a second write of unchanged state is identical.
	var buf2 bytes.Buffer
	_ = r.WriteProm(&buf2)
	if buf.String() != buf2.String() {
		t.Error("two expositions of the same state differ")
	}
}

func TestJSONSnapshotRoundTrips(t *testing.T) {
	r := New()
	r.Counter("c_total", L("origin", "AU")).Add(9)
	r.Gauge("g").Set(-4)
	r.Histogram("h_seconds", []float64{1}).Observe(2)
	r.StartSpan("scan", L("origin", "AU")).End(errors.New("boom"))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Counters) < 2 { // c_total plus the span's counters
		t.Errorf("counters = %+v", snap.Counters)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Err != "boom" {
		t.Errorf("spans = %+v", snap.Spans)
	}
}

func TestSpanRecords(t *testing.T) {
	r := New()
	sp := r.StartSpan("scan_stage", L("stage", "sweep"))
	time.Sleep(time.Millisecond)
	sp.End(nil)
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Name != "scan_stage" || spans[0].Duration <= 0 {
		t.Errorf("span = %+v", spans[0])
	}
	if got := r.Counter("scan_stage_total", L("stage", "sweep")).Value(); got != 1 {
		t.Errorf("scan_stage_total = %d", got)
	}
	if _, _, count := r.Histogram("scan_stage_duration_seconds", DurationBuckets, L("stage", "sweep")).Snapshot(); count != 1 {
		t.Errorf("duration histogram count = %d", count)
	}
	// Error spans also bump the error counter.
	r.StartSpan("scan_stage", L("stage", "grab")).End(errors.New("x"))
	if got := r.Counter("scan_stage_errors_total", L("stage", "grab")).Value(); got != 1 {
		t.Errorf("errors_total = %d", got)
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := New()
	for i := 0; i < spanRingCap+10; i++ {
		r.StartSpan("s").End(nil)
	}
	spans := r.Spans()
	if len(spans) != spanRingCap {
		t.Errorf("ring holds %d, want %d", len(spans), spanRingCap)
	}
}

func TestScanHooksRecordStages(t *testing.T) {
	r := New()
	var nextBefore, nextAfter int
	hooks := ScanHooks(r, pipeline.Hooks{
		Before: func(_ context.Context, _ pipeline.Stage) { nextBefore++ },
		After:  func(_ context.Context, _ pipeline.Stage, _ error) { nextAfter++ },
	}, L("origin", "US1"))
	err := pipeline.Runner{Hooks: hooks}.Run(context.Background(),
		pipeline.StageFunc{Stage: pipeline.StageSweep, Run: func(context.Context) error { return nil }},
		pipeline.StageFunc{Stage: pipeline.StageGrab, Run: func(context.Context) error { return errors.New("boom") }},
	)
	if err == nil {
		t.Fatal("expected stage failure")
	}
	if nextBefore != 2 || nextAfter != 2 {
		t.Errorf("wrapped hooks fired %d/%d, want 2/2", nextBefore, nextAfter)
	}
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if !strings.Contains(spans[0].Labels, `stage="sweep"`) || spans[0].Err != "" {
		t.Errorf("sweep span = %+v", spans[0])
	}
	// The failing stage still records its span, with the error attached.
	if !strings.Contains(spans[1].Labels, `stage="grab"`) || spans[1].Err != "boom" {
		t.Errorf("grab span = %+v", spans[1])
	}
	// Nil registry passes hooks through untouched.
	var nilReg *Registry
	passthrough := pipeline.Hooks{Before: func(context.Context, pipeline.Stage) {}}
	if got := ScanHooks(nilReg, passthrough); got.Before == nil || got.After != nil {
		t.Error("nil-registry ScanHooks did not pass hooks through")
	}
}

func TestServeMuxEndpoints(t *testing.T) {
	r := New()
	r.Counter("probes_total", L("origin", "US1")).Add(5)
	r.StartSpan("scan").End(nil)
	srv := httptest.NewServer(r.ServeMux())
	defer srv.Close()
	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return buf.String()
	}
	if out := get("/metrics"); !strings.Contains(out, `probes_total{origin="US1"} 5`) {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"probes_total"`) {
		t.Errorf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/spans"); !strings.Contains(out, `"scan"`) {
		t.Errorf("/spans missing span:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "cmdline") {
		t.Errorf("/debug/vars not mounted:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/ not mounted:\n%s", out)
	}
}

func TestProgressLine(t *testing.T) {
	r := New()
	r.Gauge(MetricScansTotal).Set(9)
	r.Counter(MetricScansDone).Add(3)
	r.Counter(MetricProbesSent, L("origin", "US1")).Add(2_500_000)
	p := &Progress{reg: r, lastT: r.Start(), w: nil}
	line := p.line(r.Start().Add(30 * time.Second))
	for _, want := range []string{"scans 3/9", "2.5M probes", "ETA 1m0s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
	// Rate window: 2.5M more probes one second later = 2.5M probes/s.
	r.Counter(MetricProbesSent, L("origin", "US1")).Add(2_500_000)
	line = p.line(r.Start().Add(31 * time.Second))
	if !strings.Contains(line, "2.5M probes/s") {
		t.Errorf("progress rate wrong: %q", line)
	}
	// Completed runs say done instead of an ETA.
	r.Counter(MetricScansDone).Add(6)
	line = p.line(r.Start().Add(32 * time.Second))
	if !strings.Contains(line, "done") || strings.Contains(line, "ETA") {
		t.Errorf("completed line = %q", line)
	}
}

func TestProgressStartStop(t *testing.T) {
	r := New()
	var buf syncBuffer
	p := StartProgress(r, &buf, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	p.Stop()
	if out := buf.String(); !strings.Contains(out, "scans 0/0") {
		t.Errorf("progress wrote %q", out)
	}
	if out := buf.String(); !strings.HasSuffix(out, "\n") {
		t.Error("Stop did not terminate the status line")
	}
	// Nil cases: no goroutine, Stop safe.
	StartProgress(nil, &buf, time.Millisecond).Stop()
	StartProgress(r, nil, time.Millisecond).Stop()
}

// syncBuffer is a mutex-guarded bytes.Buffer (Progress writes from its own
// goroutine).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
