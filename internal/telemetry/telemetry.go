// Package telemetry is the scanner's observability layer: a lock-cheap
// metrics registry (atomic counters, gauges, and fixed-bucket histograms,
// organized into labeled families keyed by origin/protocol/trial/stage), a
// span-style tracer for scan lifecycles, and three sinks — Prometheus-style
// text exposition, a JSON snapshot writer, and a periodic stderr progress
// line.
//
// Telemetry is a pure observer. Nothing in this package feeds back into a
// scan's behaviour: the golden-dataset and parallel-equivalence tests run
// with a live registry attached and must stay bit-identical. Every
// instrument method is safe on a nil receiver and does nothing, so
// instrumented code paths need no "is telemetry on" branches — a nil
// *Registry propagates nil *Counter/*Gauge/*Histogram handles whose calls
// cost one nil check. Hot loops additionally batch their updates (the zmap
// sweep flushes its counters once per sweep batch), so a disabled registry
// costs ~zero on the probe path; internal/zmap's allocation assert and the
// `make bench-telemetry` comparison guard that claim.
//
// Hot-path callers pre-resolve their labeled children once per scan
// (SweepMetrics, GrabMetrics, IDSMetrics bundles) so the per-event cost is
// a single atomic add, never a map lookup.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one key=value dimension of a metric family child.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// labelKey canonicalizes a label set: sorted by key, rendered k="v",...
// The result doubles as the Prometheus exposition form.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// kind discriminates the instrument types a family can hold.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing atomic counter. All methods are
// no-ops on a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. All methods are no-ops on a nil
// receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram: counts per upper bound
// plus a running sum and count, all atomics. Bounds are set at family
// creation and never change, so Observe is lock-free. All methods are
// no-ops on a nil receiver.
type Histogram struct {
	bounds []float64       // sorted upper bounds; implicit +Inf after
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot returns the bucket counts (one per bound, plus +Inf last), the
// running sum, and the total count.
func (h *Histogram) Snapshot() (buckets []uint64, sum float64, count uint64) {
	if h == nil {
		return nil, 0, 0
	}
	buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
	}
	return buckets, math.Float64frombits(h.sum.Load()), h.count.Load()
}

// DurationBuckets are the default histogram bounds for stage and span
// durations, in seconds: wide enough for a sub-millisecond test sweep and a
// 21-hour production scan alike.
var DurationBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120, 600, 3600, 21600}

// child is one labeled instrument inside a family.
type child struct {
	labels string // canonical exposition form
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is a named set of instruments of one kind sharing a label schema.
type family struct {
	name    string
	help    string
	kind    kind
	bounds  []float64 // histograms only
	mu      sync.Mutex
	byLabel map[string]*child
}

func (f *family) get(labels []Label) *child {
	lk := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.byLabel[lk]; ok {
		return ch
	}
	ch := &child{labels: lk}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		ch.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
	}
	f.byLabel[lk] = ch
	return ch
}

// children returns the family's children sorted by label key.
func (f *family) children() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*child, 0, len(f.byLabel))
	for _, ch := range f.byLabel {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// Registry owns the metric families and the span trace. The zero value is
// not usable; call New. A nil *Registry is the disabled state: every lookup
// returns a nil instrument and every recording call is a no-op.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	spans    spanRing
	spanIDs  atomic.Uint64
	recorder atomic.Pointer[Recorder]
	start    time.Time
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family), start: time.Now()}
}

// Start returns when the registry was created (the run epoch the progress
// line and ETA measure from). Zero on nil.
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// lookup finds or creates the named family, checking kind agreement.
// Registering one name as two different kinds is a programming error.
func (r *Registry) lookup(name string, k kind, bounds []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, kind: k, bounds: bounds, byLabel: make(map[string]*child)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

// Counter returns the counter for (name, labels), creating it on first use.
// Nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindCounter, nil).get(labels).c
}

// Gauge returns the gauge for (name, labels). Nil registry returns nil.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, kindGauge, nil).get(labels).g
}

// Histogram returns the histogram for (name, labels) with the given bucket
// upper bounds (the family's first caller fixes them; nil = DurationBuckets).
// Nil registry returns nil.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DurationBuckets
	}
	return r.lookup(name, kindHistogram, bounds).get(labels).h
}

// Describe attaches a help string to a family, emitted as # HELP in the
// Prometheus exposition. No-op on nil or for unknown names until created.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f != nil {
		f.mu.Lock()
		f.help = help
		f.mu.Unlock()
	}
}

// CounterSum returns the sum of a counter family across all label children
// (0 when absent or nil): the progress line's whole-run totals.
func (r *Registry) CounterSum(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != kindCounter {
		return 0
	}
	var sum uint64
	for _, ch := range f.children() {
		sum += ch.c.Value()
	}
	return sum
}

// GaugeSum returns the sum of a gauge family across all label children.
func (r *Registry) GaugeSum(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil || f.kind != kindGauge {
		return 0
	}
	var sum int64
	for _, ch := range f.children() {
		sum += ch.g.Value()
	}
	return sum
}

// sortedFamilies snapshots the family set sorted by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
