// Chrome trace_event export: renders completed spans as "X" (complete)
// events in the JSON format chrome://tracing, Perfetto, and Speedscope
// load. Timestamps come from each span's monotonic StartNS, so the
// rendered timeline is exactly the run's internal clock regardless of
// wall-clock steps.
//
// Track layout: pid is always 1 (one process); tid groups spans by their
// nearest scan-level ancestor — the span whose parent is a root — so each
// (origin, proto, trial) scan renders as its own horizontal track with its
// stage spans and batch exemplars nested inside, and root spans (the study)
// get their own track.
package telemetry

import (
	"encoding/json"
	"io"
)

// chromeEvent is one trace_event entry. ts and dur are microseconds, per
// the format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes spans as a Chrome trace_event JSON document
// ({"traceEvents":[...]}).
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	byID := make(map[SpanID]SpanRecord, len(spans))
	for _, s := range spans {
		if s.ID != 0 {
			byID[s.ID] = s
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "scan",
			Ph:   "X",
			Ts:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  int64(trackFor(byID, s)),
		}
		args := make(map[string]any)
		if s.Labels != "" {
			args["labels"] = s.Labels
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		if s.Children > 0 {
			args["children"] = s.Children
		}
		if s.Dropped > 0 {
			args["dropped"] = s.Dropped
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// trackFor picks the rendering track for a span: itself when it is a root
// or a direct child of a root, otherwise its highest non-root ancestor
// (the scan-level span). When the ancestry chain is broken — the ring
// dropped the parent, or the span predates the trace tree (ID 0) — the
// deepest reachable ancestor stands in.
func trackFor(byID map[SpanID]SpanRecord, s SpanRecord) SpanID {
	id, parent := s.ID, s.Parent
	for parent != 0 {
		p, ok := byID[parent]
		if !ok {
			break
		}
		if p.Parent == 0 {
			return id
		}
		id, parent = p.ID, p.Parent
	}
	return id
}

// WriteChrome exports the registry's retained spans (the in-memory ring;
// for a lossless export convert a flight-recorder journal instead — see
// cmd/tracestat -chrome). Nil registry writes an empty trace.
func (r *Registry) WriteChrome(w io.Writer) error {
	return WriteChromeTrace(w, r.Spans())
}
