//go:build linux

package telemetry

import "syscall"

// peakRSSFallback asks getrusage for the peak RSS; ru_maxrss is KiB on
// Linux.
func peakRSSFallback() (int64, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return ru.Maxrss << 10, true
}
