package telemetry

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// PeakRSSBytes reports the process's peak resident set size — the
// high-water mark the kernel tracked since process start, not the current
// footprint. Benchmarks record it to prove a memory budget actually held
// (a point-in-time HeapAlloc sample can miss a transient spike; VmHWM
// cannot). It reads /proc/self/status VmHWM and falls back to getrusage
// where procfs is unavailable; ok is false only when neither source works.
func PeakRSSBytes() (bytes int64, ok bool) {
	if b, ok := procStatusHWM(); ok {
		return b, true
	}
	return peakRSSFallback()
}

// procStatusHWM parses the VmHWM line ("VmHWM:     1234 kB") from
// /proc/self/status.
func procStatusHWM() (int64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0, false
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, false
		}
		return kb << 10, true
	}
	return 0, false
}
