//go:build !linux

package telemetry

// peakRSSFallback has no portable source outside Linux (ru_maxrss units
// differ per platform); callers see ok=false and skip the RSS column.
func peakRSSFallback() (int64, bool) { return 0, false }
