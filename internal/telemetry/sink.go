// Sinks: Prometheus-style text exposition, a JSON snapshot writer, and an
// http.ServeMux mounting both plus pprof and expvar. The sinks read the
// registry with the same atomics the hot paths write, so they can be
// scraped mid-run; values within one exposition are per-metric consistent
// (each child is read once) but not a cross-metric atomic snapshot, which
// is the standard Prometheus contract.
package telemetry

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// WriteProm writes the registry in the Prometheus text exposition format
// (families sorted by name, children by label set — stable output for
// diffing two scrapes). A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		help := f.help
		f.mu.Unlock()
		if help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, ch := range f.children() {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", ch.labels, "", float64(ch.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", ch.labels, "", float64(ch.g.Value()))
			case kindHistogram:
				buckets, sum, count := ch.h.Snapshot()
				cum := uint64(0)
				for i, b := range buckets {
					cum += b
					le := "+Inf"
					if i < len(f.bounds) {
						le = formatFloat(f.bounds[i])
					}
					writeSample(bw, f.name, "_bucket", ch.labels, `le="`+le+`"`, float64(cum))
				}
				writeSample(bw, f.name, "_sum", ch.labels, "", sum)
				writeSample(bw, f.name, "_count", ch.labels, "", float64(count))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one exposition line, merging the child's canonical
// label string with an extra label (histogram le).
func writeSample(w io.Writer, name, suffix, labels, extra string, v float64) {
	lb := labels
	if extra != "" {
		if lb != "" {
			lb += ","
		}
		lb += extra
	}
	if lb != "" {
		lb = "{" + lb + "}"
	}
	fmt.Fprintf(w, "%s%s%s %s\n", name, suffix, lb, formatFloat(v))
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot is the JSON form of the registry: every family's children with
// their current values, plus the retained spans. Families and children are
// sorted, so two snapshots of identical state encode identically.
type Snapshot struct {
	// PeakRSSBytes is the process's peak resident set (VmHWM) at snapshot
	// time, 0 where unavailable; SpanDrops counts spans the bounded ring
	// overwrote. Both make memory pressure and trace truncation visible
	// in a scrape without a separate endpoint.
	PeakRSSBytes int64           `json:"peak_rss_bytes,omitempty"`
	SpanDrops    uint64          `json:"span_drops,omitempty"`
	Counters     []SampleJSON    `json:"counters"`
	Gauges       []SampleJSON    `json:"gauges"`
	Histograms   []HistogramJSON `json:"histograms"`
	Spans        []SpanRecord    `json:"spans"`
}

// SampleJSON is one counter or gauge child.
type SampleJSON struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  int64  `json:"value"`
}

// HistogramJSON is one histogram child: cumulative bucket counts aligned
// with Bounds (the final bucket is +Inf).
type HistogramJSON struct {
	Name    string    `json:"name"`
	Labels  string    `json:"labels,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
}

// Snapshot captures the registry's current state. Nil registry returns an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	if r == nil {
		return snap
	}
	if b, ok := PeakRSSBytes(); ok {
		snap.PeakRSSBytes = b
	}
	snap.SpanDrops = r.SpanDrops()
	for _, f := range r.sortedFamilies() {
		for _, ch := range f.children() {
			switch f.kind {
			case kindCounter:
				snap.Counters = append(snap.Counters, SampleJSON{Name: f.name, Labels: ch.labels, Value: int64(ch.c.Value())})
			case kindGauge:
				snap.Gauges = append(snap.Gauges, SampleJSON{Name: f.name, Labels: ch.labels, Value: ch.g.Value()})
			case kindHistogram:
				buckets, sum, count := ch.h.Snapshot()
				snap.Histograms = append(snap.Histograms, HistogramJSON{
					Name: f.name, Labels: ch.labels, Bounds: f.bounds,
					Buckets: buckets, Sum: sum, Count: count,
				})
			}
		}
	}
	snap.Spans = r.Spans()
	return snap
}

// WriteJSON writes the snapshot as indented JSON. Nil registry writes an
// empty snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ServeMux returns an http mux exposing the registry and the process
// debug surfaces:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot (counters, gauges, histograms, spans)
//	/spans         completed-span trace, newest last
//	/trace         retained spans as Chrome trace_event JSON
//	/debug/vars    expvar
//	/debug/pprof/  pprof index (profile, heap, goroutine, trace, ...)
//
// cmd/originscan serves this on -telemetry-addr.
func (r *Registry) ServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Spans())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteChrome(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
