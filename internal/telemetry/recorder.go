// The flight recorder: an append-only JSONL event journal written beside
// the sealed dataset. Where the in-memory span ring keeps only the most
// recent spanRingCap records, the journal is the lossless trace — every
// committed span is teed to it the moment it ends, so a crashed or killed
// run still leaves a readable record up to its last completed span.
// cmd/tracestat loads a journal and prints the wall-time breakdown; the
// same file converts to Chrome trace_event JSON (WriteChromeTrace).
//
// Format: one JSON object per line, discriminated by "ev":
//
//	{"ev":"meta","meta":{...}}        run header, written at attach
//	{"ev":"span","span":{...}}        one SpanRecord, written at span end
//	{"ev":"snapshot","metrics":{...}} full metrics Snapshot, written at close
//
// The final snapshot is what carries the histogram families (queue-wait,
// service time, dial/handshake split) into offline analysis — spans alone
// cannot reconstruct distributions that were recorded straight into
// histograms.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// JournalMeta is the run header event payload.
type JournalMeta struct {
	Start time.Time `json:"start"` // registry epoch, wall clock
	PID   int       `json:"pid"`
}

// JournalEvent is one line of the flight-recorder journal. Exactly one of
// Span, Meta, Metrics is set, matching Ev.
type JournalEvent struct {
	Ev      string       `json:"ev"`
	Span    *SpanRecord  `json:"span,omitempty"`
	Meta    *JournalMeta `json:"meta,omitempty"`
	Metrics *Snapshot    `json:"metrics,omitempty"`
}

// JournalFile is the journal's filename inside a -trace-dir.
const JournalFile = "journal.jsonl"

// Recorder appends journal events to a file. Safe for concurrent use; a
// nil Recorder is inert.
type Recorder struct {
	mu   sync.Mutex
	f    *os.File
	bw   *bufio.Writer
	path string
	err  error // first write error, reported at Close
}

// NewRecorder creates (or truncates) the journal file at path, creating
// parent directories as needed.
func NewRecorder(path string) (*Recorder, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Recorder{f: f, bw: bufio.NewWriterSize(f, 64<<10), path: path}, nil
}

// Path returns the journal file's path ("" on nil).
func (rc *Recorder) Path() string {
	if rc == nil {
		return ""
	}
	return rc.path
}

func (rc *Recorder) writeEvent(ev JournalEvent) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.f == nil {
		return
	}
	enc, err := json.Marshal(ev)
	if err == nil {
		_, err = rc.bw.Write(append(enc, '\n'))
	}
	if err != nil && rc.err == nil {
		rc.err = err
	}
}

func (rc *Recorder) writeSpan(rec SpanRecord) {
	rc.writeEvent(JournalEvent{Ev: "span", Span: &rec})
}

// Close flushes and closes the journal, reporting the first deferred
// write error if any. Safe on nil and idempotent.
func (rc *Recorder) Close() error {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.f == nil {
		return rc.err
	}
	if err := rc.bw.Flush(); err != nil && rc.err == nil {
		rc.err = err
	}
	if err := rc.f.Close(); err != nil && rc.err == nil {
		rc.err = err
	}
	rc.f = nil
	if rc.err != nil {
		return fmt.Errorf("telemetry: flight recorder %s: %w", rc.path, rc.err)
	}
	return nil
}

// AttachRecorder starts teeing every committed span to rc and writes the
// run-header event. At most one recorder is active at a time; attaching
// replaces (but does not close) a previous one. No-op on a nil registry.
func (r *Registry) AttachRecorder(rc *Recorder) {
	if r == nil || rc == nil {
		return
	}
	rc.writeEvent(JournalEvent{Ev: "meta", Meta: &JournalMeta{Start: r.start, PID: os.Getpid()}})
	r.recorder.Store(rc)
}

// CloseRecorder writes the final metrics snapshot event, detaches the
// recorder, and closes the journal. Safe when no recorder is attached (and
// on nil): returns nil.
func (r *Registry) CloseRecorder() error {
	if r == nil {
		return nil
	}
	rc := r.recorder.Swap(nil)
	if rc == nil {
		return nil
	}
	snap := r.Snapshot()
	rc.writeEvent(JournalEvent{Ev: "snapshot", Metrics: &snap})
	return rc.Close()
}

// ReadJournal parses a flight-recorder journal back into its events. It
// accepts either the journal file itself or a directory containing
// JournalFile. Unknown event kinds are skipped (forward compatibility);
// malformed lines are an error with their line number.
func ReadJournal(path string) ([]JournalEvent, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, JournalFile)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var evs []JournalEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20) // snapshot lines can be large
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev JournalEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("telemetry: %s:%d: %w", path, line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %s: %w", path, err)
	}
	return evs, nil
}

// JournalSpans extracts the span records from a parsed journal, in commit
// order.
func JournalSpans(evs []JournalEvent) []SpanRecord {
	var out []SpanRecord
	for _, ev := range evs {
		if ev.Ev == "span" && ev.Span != nil {
			out = append(out, *ev.Span)
		}
	}
	return out
}

// JournalSnapshot returns the journal's final metrics snapshot, or nil if
// the run ended before one was written (crash, kill -9).
func JournalSnapshot(evs []JournalEvent) *Snapshot {
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Ev == "snapshot" && evs[i].Metrics != nil {
			return evs[i].Metrics
		}
	}
	return nil
}
