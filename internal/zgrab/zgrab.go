// Package zgrab implements the application-layer handshake grabbers the
// study runs against every L4-responsive host: an HTTP GET /, a TLS 1.2
// handshake with Chrome's cipher suites, and an SSH handshake that
// terminates after the protocol version exchange — the same three grabs the
// paper performs with ZGrab. Grabbers speak real protocol bytes over any
// net.Conn and classify failures the way the paper's analysis needs them
// (timeout vs refused vs reset vs closed-before-banner).
package zgrab

import (
	"context"
	"errors"
	"io"
	"net"
	"time"

	"repro/internal/bufpool"
	"repro/internal/httpwire"
	"repro/internal/ip"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/sshwire"
	"repro/internal/telemetry"
	"repro/internal/tlslite"
	"repro/internal/vconn"
)

// FailMode classifies why a grab failed; §6 of the paper distinguishes
// hosts that drop connections from hosts that explicitly close or reset.
type FailMode uint8

const (
	FailNone    FailMode = iota
	FailTimeout          // connection or read timed out / silently dropped
	FailRefused          // TCP connection refused (RST to SYN)
	FailReset            // connection reset after establishment
	FailClosed           // closed (FIN) before the protocol banner
	FailProto            // peer spoke, but not the protocol
)

var failNames = [...]string{"none", "timeout", "refused", "reset", "closed", "proto"}

// String returns the failure-mode name.
func (f FailMode) String() string {
	if int(f) < len(failNames) {
		return failNames[f]
	}
	return "fail(?)"
}

// Result is the outcome of one grab.
type Result struct {
	Proto    proto.Protocol
	Success  bool
	Fail     FailMode
	Banner   string // server software: HTTP Server header, SSH version, TLS suite
	Attempts int    // connection attempts used (≥1)
}

// Dialer abstracts the transport: the simulation fabric implements it, and
// netDialer adapts real TCP for tests/tools.
type Dialer interface {
	// Dial opens a connection to dst:port for the attempt-th try at
	// virtual time t. Implementations must respect ctx cancellation: a
	// canceled context fails the dial (the grabber classifies it as a
	// timeout and stops retrying).
	Dial(ctx context.Context, dst ip.Addr, port uint16, t time.Duration, attempt int) (net.Conn, error)
}

// Sentinel errors a Dialer can return to signal L4 failure modes.
var (
	ErrTimeout = errors.New("zgrab: connection timed out")
	ErrRefused = errors.New("zgrab: connection refused")
)

// DialVerdict is a dial decision computed without opening a connection:
// the batched fast path evaluates a whole grab window's routing, churn,
// policy/IDS, path, and handshake-loss checks up front, so the ~80% of
// attempts that die at L4 never touch connection setup.
type DialVerdict uint8

const (
	// DialTimeout: the connection would hang (unrouted, offline, silent
	// policy, IDS block, path down, or handshake loss).
	DialTimeout DialVerdict = iota
	// DialRefused: the SYN would draw an RST (refusing policy or closed
	// port on a live host).
	DialRefused
	// DialReset: accepted, then reset before the application speaks
	// (policy.ResetAfterAccept — the Alibaba SSH signature).
	DialReset
	// DialHalfClose: accepted, then FIN before the application speaks
	// (policy.CloseAfterAccept — the MaxStartups signature).
	DialHalfClose
	// DialConnect: accepted and served.
	DialConnect
)

// FastDialer is the batched fast path a Dialer may additionally support:
// verdicts are precomputed per window (PredialBatch) or per retry attempt
// (Predial), and ConnectFast turns a would-accept verdict into a pooled,
// inline-served connection with no goroutine behind it. Implementations
// must guarantee Predial+ConnectFast observe exactly the decision sequence
// Dial observes, so GrabFast results are bit-identical to Grab.
type FastDialer interface {
	Dialer
	// Predial evaluates one dial without connecting. Safe for concurrent
	// use (the grab worker pool retries concurrently).
	Predial(dst ip.Addr, port uint16, t time.Duration, attempt int) DialVerdict
	// PredialBatch evaluates attempt 0 for a whole window of
	// destinations into out (len(out) == len(dsts) == len(ts)). Batching
	// lets the implementation resolve routing in bulk. NOT safe for
	// concurrent use with itself — one caller owns the window.
	PredialBatch(dsts []ip.Addr, ts []time.Duration, port uint16, out []DialVerdict)
	// ConnectFast materializes a connection for an accepting verdict
	// (DialReset, DialHalfClose, or DialConnect).
	ConnectFast(dst ip.Addr, port uint16, v DialVerdict) net.Conn
}

// Grabber runs grabs through a Dialer with a retry budget.
type Grabber struct {
	Dialer Dialer
	// Retries is the number of additional connection attempts after a
	// failed handshake (0 = single attempt). The paper's §6 experiment
	// retries SSH up to 8 times.
	Retries int
	// Key derives the client randoms for TLS.
	Key rng.Key
	// IOTimeout bounds each read/write on real connections (default 10s;
	// virtual connections complete instantly so it rarely matters).
	IOTimeout time.Duration
	// Metrics, when set, counts dials, handshakes, retries, and failure
	// modes for this grabber's scan. The grab path is per-host, so each
	// attempt updates the (atomic, nil-safe) counters directly.
	Metrics *telemetry.GrabMetrics
}

// count records one attempt's outcome into the grabber's metric bundle.
// All instrument methods are nil-safe, so a disabled bundle costs one nil
// check here.
func (g *Grabber) count(res *Result, attempt int) {
	m := g.Metrics
	if m == nil {
		return
	}
	m.Dials.Inc()
	if attempt > 0 {
		m.Retries.Inc()
	}
	if res.Success {
		m.Handshakes.Inc()
		return
	}
	switch res.Fail {
	case FailRefused:
		m.Refused.Inc()
	case FailReset:
		m.Resets.Inc()
	case FailTimeout:
		m.Timeouts.Inc()
	case FailClosed:
		m.Closed.Inc()
	case FailProto:
		m.ProtoErrs.Inc()
	}
}

// Grab performs the grab for p against dst at virtual time t, retrying per
// the grabber's budget. A canceled context stops the retry loop after the
// in-flight attempt; the last attempt's (failed) result is returned so the
// caller, which is being torn down anyway, still sees a well-formed value.
func (g *Grabber) Grab(ctx context.Context, p proto.Protocol, dst ip.Addr, t time.Duration) Result {
	var last Result
	for attempt := 0; attempt <= g.Retries; attempt++ {
		var began time.Time
		if g.Metrics != nil {
			began = time.Now()
		}
		last = g.grabOnce(ctx, p, dst, t, attempt)
		last.Attempts = attempt + 1
		g.count(&last, attempt)
		if last.Success || ctx.Err() != nil {
			return last
		}
		// Refused and timed-out connections are retried like any
		// other failure: §6 shows immediate retries recover
		// MaxStartups hosts. RetrySeconds attributes the wall time
		// those extra attempts cost a grab worker.
		if g.Metrics != nil && attempt < g.Retries {
			g.Metrics.RetrySeconds.ObserveDuration(time.Since(began))
		}
	}
	return last
}

func (g *Grabber) grabOnce(ctx context.Context, p proto.Protocol, dst ip.Addr, t time.Duration, attempt int) Result {
	res := Result{Proto: p}
	// The dial vs handshake latency split reads the clock only with a
	// live bundle: a disabled grabber pays two nil checks per attempt.
	var dialStart time.Time
	if g.Metrics != nil {
		dialStart = time.Now()
	}
	conn, err := g.Dialer.Dial(ctx, dst, p.Port(), t, attempt)
	if g.Metrics != nil {
		g.Metrics.DialSeconds.ObserveDuration(time.Since(dialStart))
	}
	if err != nil {
		res.Fail = classifyDialError(err)
		return res
	}
	defer conn.Close()
	if g.IOTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(g.IOTimeout))
	}
	g.exchange(conn, p, dst, &res)
	return res
}

// exchange runs the application-layer handshake on an established
// connection, shared by the reference and fast grab paths.
func (g *Grabber) exchange(conn net.Conn, p proto.Protocol, dst ip.Addr, res *Result) {
	var hsStart time.Time
	if g.Metrics != nil {
		hsStart = time.Now()
	}
	switch p {
	case proto.HTTP:
		grabHTTP(conn, dst, res)
	case proto.HTTPS:
		grabTLS(conn, dst, g.Key, res)
	case proto.SSH:
		grabSSH(conn, res)
	}
	if g.Metrics != nil {
		g.Metrics.HandshakeSeconds.ObserveDuration(time.Since(hsStart))
	}
}

// GrabFast performs the grab for p against dst on the batched fast path:
// v is attempt 0's verdict, precomputed by PredialBatch over the grab
// window; retry attempts re-evaluate through Predial (verdicts depend on
// the attempt number — MaxStartups hosts admit immediate retries). The
// retry loop, metric accounting, and failure classification mirror Grab
// exactly; the Dialer must implement FastDialer. Results are bit-identical
// to Grab (enforced by the fabric and experiment differential tests).
func (g *Grabber) GrabFast(ctx context.Context, p proto.Protocol, dst ip.Addr, t time.Duration, v DialVerdict) Result {
	fd := g.Dialer.(FastDialer)
	var last Result
	for attempt := 0; attempt <= g.Retries; attempt++ {
		var began time.Time
		if g.Metrics != nil {
			began = time.Now()
		}
		last = g.grabOnceFast(ctx, fd, p, dst, t, attempt, v)
		last.Attempts = attempt + 1
		g.count(&last, attempt)
		if last.Success || ctx.Err() != nil {
			return last
		}
		if g.Metrics != nil && attempt < g.Retries {
			g.Metrics.RetrySeconds.ObserveDuration(time.Since(began))
		}
	}
	return last
}

func (g *Grabber) grabOnceFast(ctx context.Context, fd FastDialer, p proto.Protocol, dst ip.Addr, t time.Duration, attempt int, v DialVerdict) Result {
	res := Result{Proto: p}
	var dialStart time.Time
	if g.Metrics != nil {
		dialStart = time.Now()
	}
	// The reference dial fails a canceled context immediately, classified
	// as a timeout; re-checked per attempt, like Dial is called per
	// attempt.
	if ctx.Err() != nil {
		res.Fail = FailTimeout
		if g.Metrics != nil {
			g.Metrics.DialSeconds.ObserveDuration(time.Since(dialStart))
		}
		return res
	}
	if attempt > 0 {
		v = fd.Predial(dst, p.Port(), t, attempt)
	}
	if v == DialTimeout || v == DialRefused {
		if v == DialTimeout {
			res.Fail = FailTimeout
		} else {
			res.Fail = FailRefused
		}
		if g.Metrics != nil {
			g.Metrics.DialSeconds.ObserveDuration(time.Since(dialStart))
		}
		return res
	}
	conn := fd.ConnectFast(dst, p.Port(), v)
	if g.Metrics != nil {
		g.Metrics.DialSeconds.ObserveDuration(time.Since(dialStart))
	}
	defer conn.Close()
	// No deadline: fast-path connections are fully in-memory, reads never
	// block, so the IOTimeout clock reads would be pure overhead.
	g.exchange(conn, p, dst, &res)
	return res
}

func classifyDialError(err error) FailMode {
	switch {
	case errors.Is(err, ErrRefused):
		return FailRefused
	case errors.Is(err, ErrTimeout):
		return FailTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// A dial aborted by run cancellation: the connection never
		// completed, which on the wire is indistinguishable from a
		// timeout. (The record is discarded with the canceled scan.)
		return FailTimeout
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return FailTimeout
		}
		return FailRefused
	}
}

// classifyIOError maps a mid-handshake error to a failure mode.
func classifyIOError(err error, sawBytes bool) FailMode {
	switch {
	case err == nil:
		return FailNone
	case errors.Is(err, vconn.ErrReset):
		return FailReset
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		if sawBytes {
			return FailProto
		}
		return FailClosed
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return FailTimeout
		}
		return FailReset
	}
}

// countingReader tracks whether any bytes were received, distinguishing a
// peer that closed before speaking (FailClosed) from one that spoke a
// different protocol (FailProto).
type countingReader struct {
	r io.Reader
	n int
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += n
	return n, err
}

// grabHTTP sends GET / and requires a parseable status line.
func grabHTTP(conn net.Conn, dst ip.Addr, res *Result) {
	if err := httpwire.WriteRequest(conn, "GET", "/", dst.String(), "Mozilla/5.0 zgrab/0.x"); err != nil {
		res.Fail = classifyIOError(err, false)
		return
	}
	br := bufpool.Reader(conn)
	defer bufpool.PutReader(br)
	resp, err := httpwire.ReadResponse(br, 16<<10)
	if err != nil {
		if errors.Is(err, httpwire.ErrMalformed) || errors.Is(err, httpwire.ErrLineTooLong) {
			res.Fail = FailProto
			return
		}
		res.Fail = classifyIOError(err, br.Buffered() > 0)
		return
	}
	res.Success = true
	if sv, ok := resp.Get("Server"); ok {
		res.Banner = sv
	}
}

// grabTLS sends a Chrome-shaped ClientHello and requires a parseable
// ServerHello (the paper's handshake capture).
func grabTLS(conn net.Conn, dst ip.Addr, key rng.Key, res *Result) {
	ch := tlslite.NewClientHello(key.DeriveN("ch", dst.Word64()), dst.String())
	if err := ch.Write(conn); err != nil {
		res.Fail = classifyIOError(err, false)
		return
	}
	hr := tlslite.NewHandshakeReader(conn)
	typ, body, err := hr.Next()
	if err != nil {
		if errors.Is(err, tlslite.ErrAlert) || errors.Is(err, tlslite.ErrMalformed) {
			res.Fail = FailProto
			return
		}
		res.Fail = classifyIOError(err, false)
		return
	}
	if typ != tlslite.TypeServerHello {
		res.Fail = FailProto
		return
	}
	sh, err := tlslite.ParseServerHello(body)
	if err != nil {
		res.Fail = FailProto
		return
	}
	res.Success = true
	res.Banner = cipherName(sh.CipherSuite)
	// Drain the rest of the server flight (Certificate, HelloDone) so
	// the server sees an orderly close; errors here don't matter.
	for i := 0; i < 4; i++ {
		if typ, _, err := hr.Next(); err != nil || typ == tlslite.TypeServerHelloDone {
			break
		}
	}
}

func cipherName(cs uint16) string {
	switch cs {
	case 0xc02b:
		return "ECDHE-ECDSA-AES128-GCM-SHA256"
	case 0xc02f:
		return "ECDHE-RSA-AES128-GCM-SHA256"
	case 0xcca8:
		return "ECDHE-RSA-CHACHA20-POLY1305"
	default:
		return "suite-" + itoa16(cs)
	}
}

func itoa16(v uint16) string {
	const hex = "0123456789abcdef"
	return string([]byte{hex[v>>12&0xf], hex[v>>8&0xf], hex[v>>4&0xf], hex[v&0xf]})
}

// grabSSH performs the version exchange: write our ID, read the server's.
// Success is a parsed server identification, per the paper's methodology
// ("a partial SSH handshake that terminates after the protocol version
// exchange").
func grabSSH(conn net.Conn, res *Result) {
	if err := sshwire.WriteID(conn, sshwire.ID{ProtoVersion: "2.0", SoftwareVersion: "zgrab_ssh_0.x"}); err != nil {
		res.Fail = classifyIOError(err, false)
		return
	}
	cr := &countingReader{r: conn}
	br := bufpool.Reader(cr)
	defer bufpool.PutReader(br)
	id, err := sshwire.ReadID(br)
	if err != nil {
		if errors.Is(err, sshwire.ErrNotSSH) || errors.Is(err, sshwire.ErrIDTooLong) {
			res.Fail = FailProto
			return
		}
		res.Fail = classifyIOError(err, cr.n > 0)
		return
	}
	res.Success = true
	res.Banner = id.SoftwareVersion
}
