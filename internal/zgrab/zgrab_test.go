package zgrab

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/hostsim"
	"repro/internal/ip"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/vconn"
)

// pipeDialer serves every dial with a hostsim instance over a vconn pipe,
// with optional misbehaviour injected per dial.
type pipeDialer struct {
	server *hostsim.Server
	proto  proto.Protocol
	// behaviour hooks
	refuse     bool
	silent     bool
	abortAfter bool // accept then immediately RST (Alibaba)
	closeAfter bool // accept then immediately FIN (MaxStartups)
	garbage    bool // speak a non-protocol banner
	// refuseFirstN refuses the first N attempts, then serves (retry test).
	refuseFirstN int
	dials        int
}

func (d *pipeDialer) Dial(ctx context.Context, dst ip.Addr, port uint16, t time.Duration, attempt int) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.dials++
	switch {
	case d.refuse:
		return nil, ErrRefused
	case d.silent:
		return nil, ErrTimeout
	}
	client, server := vconn.PipeLabeled("scanner", dst.String())
	switch {
	case d.abortAfter:
		go server.Abort()
	case d.closeAfter:
		go server.Close()
	case d.garbage:
		go func() {
			server.Write([]byte("220 FTP ready\r\n"))
			server.Close()
		}()
	case d.refuseFirstN > 0 && attempt < d.refuseFirstN:
		go server.Close()
	default:
		go d.server.Serve(server, dst, d.proto)
	}
	return client, nil
}

func newGrabber(d Dialer) *Grabber {
	return &Grabber{Dialer: d, Key: rng.NewKey(9).Derive("grab"), IOTimeout: 5 * time.Second}
}

func TestGrabHTTPSuccess(t *testing.T) {
	d := &pipeDialer{server: hostsim.NewServer(rng.NewKey(1)), proto: proto.HTTP}
	res := newGrabber(d).Grab(context.Background(), proto.HTTP, ip.MustParseAddr("10.0.0.1"), 0)
	if !res.Success {
		t.Fatalf("grab failed: %+v", res)
	}
	if res.Banner == "" {
		t.Error("no Server banner captured")
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d", res.Attempts)
	}
}

func TestGrabHTTPSSuccess(t *testing.T) {
	d := &pipeDialer{server: hostsim.NewServer(rng.NewKey(2)), proto: proto.HTTPS}
	res := newGrabber(d).Grab(context.Background(), proto.HTTPS, ip.MustParseAddr("10.0.0.2"), 0)
	if !res.Success {
		t.Fatalf("grab failed: %+v", res)
	}
	if !strings.Contains(res.Banner, "AES") && !strings.Contains(res.Banner, "CHACHA") {
		t.Errorf("banner = %q, want a cipher suite", res.Banner)
	}
}

func TestGrabSSHSuccess(t *testing.T) {
	d := &pipeDialer{server: hostsim.NewServer(rng.NewKey(3)), proto: proto.SSH}
	res := newGrabber(d).Grab(context.Background(), proto.SSH, ip.MustParseAddr("10.0.0.3"), 0)
	if !res.Success {
		t.Fatalf("grab failed: %+v", res)
	}
	if !strings.Contains(res.Banner, "SSH") && !strings.Contains(res.Banner, "dropbear") && !strings.Contains(res.Banner, "Open") {
		t.Errorf("banner = %q", res.Banner)
	}
}

func TestBannerVariesByHost(t *testing.T) {
	d := &pipeDialer{server: hostsim.NewServer(rng.NewKey(4)), proto: proto.SSH}
	g := newGrabber(d)
	banners := map[string]bool{}
	for i := 0; i < 30; i++ {
		res := g.Grab(context.Background(), proto.SSH, ip.AddrFrom4(0x0a000000+uint32(i)), 0)
		if res.Success {
			banners[res.Banner] = true
		}
	}
	if len(banners) < 2 {
		t.Errorf("host personalities too uniform: %v", banners)
	}
}

func TestBannerStablePerHost(t *testing.T) {
	d := &pipeDialer{server: hostsim.NewServer(rng.NewKey(5)), proto: proto.HTTP}
	g := newGrabber(d)
	a := g.Grab(context.Background(), proto.HTTP, ip.MustParseAddr("10.0.0.9"), 0)
	b := g.Grab(context.Background(), proto.HTTP, ip.MustParseAddr("10.0.0.9"), time.Hour)
	if a.Banner != b.Banner {
		t.Errorf("same host changed banner: %q vs %q", a.Banner, b.Banner)
	}
}

func TestGrabFailureModes(t *testing.T) {
	base := hostsim.NewServer(rng.NewKey(6))
	cases := []struct {
		name string
		d    *pipeDialer
		want FailMode
	}{
		{"refused", &pipeDialer{server: base, proto: proto.SSH, refuse: true}, FailRefused},
		{"timeout", &pipeDialer{server: base, proto: proto.SSH, silent: true}, FailTimeout},
		{"reset", &pipeDialer{server: base, proto: proto.SSH, abortAfter: true}, FailReset},
		{"closed", &pipeDialer{server: base, proto: proto.SSH, closeAfter: true}, FailClosed},
		{"garbage", &pipeDialer{server: base, proto: proto.SSH, garbage: true}, FailProto},
	}
	for _, c := range cases {
		res := newGrabber(c.d).Grab(context.Background(), proto.SSH, ip.MustParseAddr("10.1.0.1"), 0)
		if res.Success || res.Fail != c.want {
			t.Errorf("%s: result %+v, want fail=%v", c.name, res, c.want)
		}
	}
}

func TestRetriesRecoverFlakyHost(t *testing.T) {
	// Host closes the first 3 connection attempts then serves —
	// the §6 MaxStartups pattern recovered by retries.
	d := &pipeDialer{server: hostsim.NewServer(rng.NewKey(7)), proto: proto.SSH, refuseFirstN: 3}
	g := newGrabber(d)
	g.Retries = 8
	res := g.Grab(context.Background(), proto.SSH, ip.MustParseAddr("10.2.0.1"), 0)
	if !res.Success {
		t.Fatalf("retries did not recover: %+v", res)
	}
	if res.Attempts != 4 {
		t.Errorf("attempts = %d, want 4", res.Attempts)
	}

	// Without retries the same host fails closed.
	d2 := &pipeDialer{server: hostsim.NewServer(rng.NewKey(7)), proto: proto.SSH, refuseFirstN: 3}
	g2 := newGrabber(d2)
	res2 := g2.Grab(context.Background(), proto.SSH, ip.MustParseAddr("10.2.0.1"), 0)
	if res2.Success || res2.Fail != FailClosed {
		t.Errorf("no-retry grab = %+v, want FailClosed", res2)
	}
}

func TestGrabCanceledContextStopsRetries(t *testing.T) {
	// Cancellation must stop the retry loop instead of burning the full
	// budget: a flaky host that would be recovered by 8 retries is
	// abandoned after the first attempt when the context is canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &pipeDialer{server: hostsim.NewServer(rng.NewKey(7)), proto: proto.SSH, refuseFirstN: 3}
	g := newGrabber(d)
	g.Retries = 8
	res := g.Grab(ctx, proto.SSH, ip.MustParseAddr("10.2.0.1"), 0)
	if res.Success {
		t.Fatalf("grab succeeded under canceled context: %+v", res)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (retry loop must stop on cancellation)", res.Attempts)
	}
	if d.dials != 0 {
		t.Errorf("%d dials reached the network after cancellation", d.dials)
	}
}

func TestGrabHTTPOverRealTCP(t *testing.T) {
	// The grabbers must also work over the real network stack: serve one
	// hostsim HTTP connection on a loopback listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv := hostsim.NewServer(rng.NewKey(8))
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		srv.Serve(conn, ip.MustParseAddr("127.0.0.1"), proto.HTTP)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var res Result
	res.Proto = proto.HTTP
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	grabHTTP(conn, ip.MustParseAddr("127.0.0.1"), &res)
	if !res.Success {
		t.Fatalf("real-TCP grab failed: %+v", res)
	}
}

func TestFailModeStrings(t *testing.T) {
	for f, want := range map[FailMode]string{
		FailNone: "none", FailTimeout: "timeout", FailRefused: "refused",
		FailReset: "reset", FailClosed: "closed", FailProto: "proto",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q", f, f.String())
		}
	}
}
