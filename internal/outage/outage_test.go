package outage

import (
	"testing"
	"time"

	"repro/internal/asn"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/rng"
)

func genSchedule(t *testing.T, cfg Config) *Schedule {
	t.Helper()
	ases := make([]asn.ASN, 50)
	weights := make([]uint64, 50)
	for i := range ases {
		ases[i] = asn.ASN(i + 1)
		weights[i] = uint64(100 * (i + 1))
	}
	return Generate(rng.NewKey(1).Derive("outage"), cfg, 3, origin.StudySet(), ases, weights)
}

func TestGenerateDeterministic(t *testing.T) {
	s1 := genSchedule(t, Config{})
	s2 := genSchedule(t, Config{})
	if len(s1.Events()) != len(s2.Events()) {
		t.Fatal("schedules differ in size")
	}
	for i := range s1.Events() {
		e1, e2 := s1.Events()[i], s2.Events()[i]
		if e1.AS != e2.AS || e1.Start != e2.Start || e1.Trial != e2.Trial {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestEventsWithinScanWindow(t *testing.T) {
	s := genSchedule(t, Config{})
	for _, e := range s.Events() {
		if e.Start < 0 || e.Start+e.Duration > 21*time.Hour {
			t.Errorf("event outside scan window: %+v", e)
		}
		if e.Trial < 0 || e.Trial > 2 {
			t.Errorf("bad trial: %+v", e)
		}
		if e.Severity <= 0 || e.Severity > 1 {
			t.Errorf("bad severity: %+v", e)
		}
		if len(e.Origins) == 0 {
			t.Errorf("event with no origins: %+v", e)
		}
	}
}

func TestOriginCountDistribution(t *testing.T) {
	// ~60% of bursts single-origin, >=91% within three origins (paper).
	s := genSchedule(t, Config{EventsPerTrial: 1000})
	single, within3, total := 0, 0, 0
	for _, e := range s.Events() {
		total++
		if len(e.Origins) == 1 {
			single++
		}
		if len(e.Origins) <= 3 {
			within3++
		}
	}
	if total == 0 {
		t.Fatal("no events generated")
	}
	fSingle := float64(single) / float64(total)
	f3 := float64(within3) / float64(total)
	if fSingle < 0.5 || fSingle > 0.7 {
		t.Errorf("single-origin fraction %v, want ~0.6", fSingle)
	}
	if f3 < 0.88 {
		t.Errorf("within-3 fraction %v, want >=0.91-ish", f3)
	}
}

func TestAffectedRespectsWindowAndOrigin(t *testing.T) {
	s := genSchedule(t, Config{EventsPerTrial: 200})
	evs := s.Events()
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	// Find a high-severity event and check inside/outside behaviour.
	var ev Event
	found := false
	for _, e := range evs {
		if e.Severity > 0.9 {
			ev, found = e, true
			break
		}
	}
	if !found {
		t.Skip("no high-severity event in sample")
	}
	mid := ev.Start + ev.Duration/2
	o := ev.Origins[0]
	hits := 0
	for dst := uint32(0); dst < 2000; dst++ {
		if s.Affected(ev.Trial, o, ev.AS, ip.AddrFrom4(dst), mid) {
			hits++
		}
	}
	if hits < 1000 {
		t.Errorf("high-severity event hit only %d/2000 hosts", hits)
	}
	// Outside the window: nothing (unless another event overlaps; use
	// a time far away and verify the count drops dramatically).
	before := ev.Start - time.Minute
	if before > 0 {
		miss := 0
		for dst := uint32(0); dst < 2000; dst++ {
			if s.Affected(ev.Trial, o, ev.AS, ip.AddrFrom4(dst), before) {
				miss++
			}
		}
		if miss >= hits {
			t.Errorf("outside window affected %d >= inside %d", miss, hits)
		}
	}
	// Wrong trial: never affected by this event's window.
	otherTrial := (ev.Trial + 1) % 3
	_ = otherTrial // trial independence is covered by ActiveEvents below.
	if got := s.ActiveEvents(ev.Trial, ev.AS, mid); len(got) == 0 {
		t.Error("ActiveEvents missed the active event")
	}
}

func TestWideEvent(t *testing.T) {
	cfg := Config{
		EventsPerTrial: 1, // keep ordinary noise minimal
		WideEvents: []WideEvent{{
			Trial: 2, Origin: origin.BR,
			Start: 10 * time.Hour, Duration: time.Hour,
			ASFraction: 0.4, Severity: 0.9,
		}},
	}
	s := genSchedule(t, cfg)
	// Count affected ASes for BR at 10.5h in trial 2.
	affectedASes := 0
	for as := asn.ASN(1); as <= 50; as++ {
		hit := false
		for dst := uint32(0); dst < 200 && !hit; dst++ {
			if s.Affected(2, origin.BR, as, ip.AddrFrom4(dst), 10*time.Hour+30*time.Minute) {
				hit = true
			}
		}
		if hit {
			affectedASes++
		}
	}
	if affectedASes < 10 || affectedASes > 35 {
		t.Errorf("wide event affected %d/50 ASes, want ~20", affectedASes)
	}
	// Other origins must be untouched by the wide event at that time.
	for as := asn.ASN(1); as <= 50; as++ {
		for dst := uint32(0); dst < 50; dst++ {
			if s.Affected(2, origin.JP, as, ip.AddrFrom4(dst), 10*time.Hour+30*time.Minute) {
				// Could be an ordinary event; verify it is.
				if len(s.ActiveEvents(2, as, 10*time.Hour+30*time.Minute)) == 0 {
					t.Fatalf("wide event leaked to JP (AS%d)", as)
				}
			}
		}
	}
}

func TestEmptyASListYieldsEmptySchedule(t *testing.T) {
	s := Generate(rng.NewKey(2), Config{}, 3, origin.StudySet(), nil, nil)
	if len(s.Events()) != 0 {
		t.Error("schedule should be empty with no ASes")
	}
	if s.Affected(0, origin.AU, 1, ip.AddrFrom4(1), time.Hour) {
		t.Error("empty schedule affected a host")
	}
}

func TestLargeASesAttractMoreEvents(t *testing.T) {
	s := genSchedule(t, Config{EventsPerTrial: 2000})
	countSmall, countLarge := 0, 0
	for _, e := range s.Events() {
		if e.AS <= 10 {
			countSmall++
		}
		if e.AS > 40 {
			countLarge++
		}
	}
	if countLarge <= countSmall {
		t.Errorf("weighted sampling: large ASes got %d events vs small %d", countLarge, countSmall)
	}
}
