// Package outage models localized burst outages (§5.3): short windows in
// which a destination AS is unreachable from a subset of origins. The paper
// finds that 14–36% of transient loss coincides with such bursts, that ~60%
// of bursts affect a single origin and ≥91% affect three or fewer, and that
// one extreme event (Brazil, HTTPS trial 3) lost 8% of all transiently
// missing hosts in a single hour across 39% of scanned ASes.
package outage

import (
	"sort"
	"time"

	"repro/internal/asn"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/rng"
)

// Event is one burst outage: origins in Origins cannot reach a fraction
// Severity of hosts in AS during [Start, Start+Duration).
type Event struct {
	Trial    int
	Origins  origin.Set
	AS       asn.ASN
	Start    time.Duration
	Duration time.Duration
	// Severity is the fraction of the AS's hosts affected while the
	// event is active.
	Severity float64
}

// Active reports whether the event covers time t in the given trial.
func (e *Event) Active(trial int, t time.Duration) bool {
	return trial == e.Trial && t >= e.Start && t < e.Start+e.Duration
}

// Config tunes schedule generation.
type Config struct {
	// ScanDuration is the trial length (default 21h, as in the paper).
	ScanDuration time.Duration
	// EventsPerTrial is the mean number of ordinary burst events per
	// trial (default 40).
	EventsPerTrial int
	// MeanDuration is the mean event duration (default 45m; the paper
	// detects bursts at hour granularity).
	MeanDuration time.Duration
	// OriginCountWeights[i] is the relative probability an event affects
	// i+1 origins (default {60, 20, 11, 5, 3, 1}: 60% single-origin,
	// ≥91% within three origins).
	OriginCountWeights []float64
	// WideEvents injects paper-style extreme events that affect one
	// origin across a large fraction of all ASes for about an hour
	// (Brazil HTTPS trial 3).
	WideEvents []WideEvent
}

// WideEvent is an extreme event affecting many ASes at once from one origin.
type WideEvent struct {
	Trial    int
	Origin   origin.ID
	Start    time.Duration
	Duration time.Duration
	// ASFraction is the fraction of all ASes affected.
	ASFraction float64
	Severity   float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ScanDuration == 0 {
		out.ScanDuration = 21 * time.Hour
	}
	if out.EventsPerTrial == 0 {
		out.EventsPerTrial = 40
	}
	if out.MeanDuration == 0 {
		out.MeanDuration = 45 * time.Minute
	}
	if len(out.OriginCountWeights) == 0 {
		out.OriginCountWeights = []float64{60, 20, 11, 5, 3, 1}
	}
	return out
}

// Schedule is the set of burst events of a study, indexed for fast lookup.
type Schedule struct {
	cfg    Config
	events []Event
	wide   []WideEvent
	key    rng.Key
	// byTrialAS indexes ordinary events.
	byTrialAS map[trialAS][]int
}

type trialAS struct {
	trial int
	as    asn.ASN
}

// Generate builds a deterministic schedule for the given trials, origins,
// and AS population. Event ASes are picked proportionally to weight (host
// count), matching the paper's observation that large providers (Akamai,
// Amazon) appear in bursts.
func Generate(key rng.Key, cfg Config, trials int, origins origin.Set, ases []asn.ASN, weights []uint64) *Schedule {
	cfg = cfg.withDefaults()
	s := &Schedule{cfg: cfg, key: key, byTrialAS: make(map[trialAS][]int)}
	if len(ases) == 0 {
		return s
	}

	// Cumulative weights for proportional AS sampling.
	cum := make([]uint64, len(ases))
	var total uint64
	for i := range ases {
		w := uint64(1)
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		total += w
		cum[i] = total
	}
	pickAS := func(r *rng.SplitMix64) asn.ASN {
		x := r.Uint64n(total)
		i := sort.Search(len(cum), func(i int) bool { return cum[i] > x })
		return ases[i]
	}

	var wTotal float64
	for _, w := range cfg.OriginCountWeights {
		wTotal += w
	}

	for trial := 0; trial < trials; trial++ {
		r := key.Stream(uint64(trial))
		n := cfg.EventsPerTrial/2 + r.Intn(cfg.EventsPerTrial+1) // ~mean EventsPerTrial
		for e := 0; e < n; e++ {
			// How many origins does this event touch?
			x := r.Float64() * wTotal
			count := 1
			for i, w := range cfg.OriginCountWeights {
				if x < w {
					count = i + 1
					break
				}
				x -= w
			}
			if count > len(origins) {
				count = len(origins)
			}
			perm := r.Perm(len(origins))
			var who origin.Set
			for _, idx := range perm[:count] {
				who = append(who, origins[idx])
			}
			dur := time.Duration((0.25 + 1.5*r.Float64()) * float64(cfg.MeanDuration))
			start := time.Duration(r.Float64() * float64(cfg.ScanDuration-dur))
			ev := Event{
				Trial:    trial,
				Origins:  who,
				AS:       pickAS(r),
				Start:    start,
				Duration: dur,
				Severity: 0.5 + 0.5*r.Float64(),
			}
			s.add(ev)
		}
	}
	s.wide = cfg.WideEvents
	return s
}

func (s *Schedule) add(ev Event) {
	s.events = append(s.events, ev)
	k := trialAS{ev.Trial, ev.AS}
	s.byTrialAS[k] = append(s.byTrialAS[k], len(s.events)-1)
}

// Events returns all ordinary events (for tests and reporting).
func (s *Schedule) Events() []Event { return s.events }

// Affected reports whether origin o's path to host dst in AS as is inside a
// burst outage at time t, considering both ordinary and wide events.
// Severity is applied per host with a stable keyed draw.
func (s *Schedule) Affected(trial int, o origin.ID, as asn.ASN, dst ip.Addr, t time.Duration) bool {
	for _, idx := range s.byTrialAS[trialAS{trial, as}] {
		ev := &s.events[idx]
		if !ev.Active(trial, t) || !ev.Origins.Contains(o) {
			continue
		}
		if s.key.Derive("sev").Bool(ev.Severity, uint64(idx), dst.Word64()) {
			return true
		}
	}
	for i := range s.wide {
		w := &s.wide[i]
		if w.Trial != trial || w.Origin != o || t < w.Start || t >= w.Start+w.Duration {
			continue
		}
		// Is this AS in the affected fraction?
		if !s.key.Derive("wide-as").Bool(w.ASFraction, uint64(i), uint64(as)) {
			continue
		}
		if s.key.Derive("wide-sev").Bool(w.Severity, uint64(i), dst.Word64()) {
			return true
		}
	}
	return false
}

// ActiveEvents returns the ordinary events covering (trial, as, t) for any
// origin; used by analysis ground-truthing in tests.
func (s *Schedule) ActiveEvents(trial int, as asn.ASN, t time.Duration) []Event {
	var out []Event
	for _, idx := range s.byTrialAS[trialAS{trial, as}] {
		if s.events[idx].Active(trial, t) {
			out = append(out, s.events[idx])
		}
	}
	return out
}
