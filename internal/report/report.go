// Package report renders every table and figure of the paper as text, in
// the same rows/series the paper reports, from a completed core.Study.
package report

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/world"
)

// All renders every table and figure to w. It runs as the lifecycle's
// Report stage (the study config's Hooks observe it); ctx is checked
// between sections, so canceling mid-report stops after the section in
// flight with an error matching core.ErrCanceled.
func All(ctx context.Context, w io.Writer, s *core.Study) error {
	runner := pipeline.Runner{Hooks: s.Exp.Config.Hooks}
	return runner.Run(ctx, pipeline.StageFunc{
		Stage: pipeline.StageReport,
		Run:   func(ctx context.Context) error { return all(ctx, w, s) },
	})
}

func all(ctx context.Context, w io.Writer, s *core.Study) error {
	plain := func(fn func(io.Writer, *core.Study)) func() error {
		return func() error { fn(w, s); return nil }
	}
	sections := []func() error{
		plain(Tab4Coverage),
		plain(Fig1),
		plain(Fig2),
		plain(Fig3),
		plain(Fig4),
		plain(Fig5),
		func() error { Fig6(w, s, proto.HTTP); return nil },
		plain(Fig7),
		plain(Fig8),
		plain(Fig9),
		plain(Fig10),
		plain(Fig11),
		plain(Fig12),
		func() error { return Fig13(ctx, w, s) },
		plain(Fig14),
		func() error { return Fig15(ctx, w, s, proto.HTTP) },
		plain(Fig16),
		func() error { return Fig17(ctx, w, s) },
		plain(Tab1),
		func() error { Tab2(w, s, proto.HTTP); return nil },
		plain(Tab3),
		plain(Tab5),
		plain(Sec3McNemar),
		plain(Sec44Spearman),
		plain(Sec52PacketLoss),
		plain(Sec53Bursts),
		plain(Sec7Probes),
		plain(Sec8Agreement),
		plain(BannerCensus),
	}
	for _, fn := range sections {
		if err := ctx.Err(); err != nil {
			return err // the Runner normalizes this to ErrCanceled
		}
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func pct(f float64) string { return fmt.Sprintf("%6.2f%%", 100*f) }

// Tab4Coverage renders Table 4a: ground-truth coverage per origin/trial.
func Tab4Coverage(w io.Writer, s *core.Study) {
	header(w, "Table 4a: Ground-truth coverage by origin and trial (2 probes)")
	for _, p := range proto.All() {
		tab := s.Fig1Coverage(p)
		fmt.Fprintf(w, "\n[%s]\n%-6s", p, "trial")
		origins := originsOf(tab)
		for _, o := range origins {
			fmt.Fprintf(w, "%9s", o)
		}
		fmt.Fprintf(w, "%10s%12s\n", "∩", "∪")
		for trial := range tab.Union {
			fmt.Fprintf(w, "%-6d", trial+1)
			for _, o := range origins {
				v := -1.0
				for _, c := range tab.Cells {
					if c.Origin == o && c.Trial == trial {
						v = c.Coverage
					}
				}
				if v < 0 {
					fmt.Fprintf(w, "%9s", "-")
				} else {
					fmt.Fprintf(w, "%9s", pct(v))
				}
			}
			fmt.Fprintf(w, "%10s%12d\n", pct(tab.Intersection[trial]), tab.Union[trial])
		}
		fmt.Fprintf(w, "%-6s", "mean")
		for _, o := range origins {
			fmt.Fprintf(w, "%9s", pct(tab.Mean(o, false)))
		}
		fmt.Fprintln(w)
	}
}

func originsOf(tab analysis.CoverageTable) origin.Set {
	seen := map[origin.ID]bool{}
	var out origin.Set
	for _, c := range tab.Cells {
		if !seen[c.Origin] {
			seen[c.Origin] = true
			out = append(out, c.Origin)
		}
	}
	return out
}

// Fig1 renders Figure 1: mean coverage by origin per protocol.
func Fig1(w io.Writer, s *core.Study) {
	header(w, "Figure 1: IPv4 host coverage by scan origin (2 probes)")
	for _, p := range proto.All() {
		tab := s.Fig1Coverage(p)
		fmt.Fprintf(w, "%-6s", p)
		for _, o := range originsOf(tab) {
			fmt.Fprintf(w, "  %s=%s", o, strings.TrimSpace(pct(tab.Mean(o, false))))
		}
		fmt.Fprintln(w)
	}
}

// Fig2 renders Figure 2: missing-host breakdown by origin and trial.
func Fig2(w io.Writer, s *core.Study) {
	header(w, "Figure 2: Breakdown of missing hosts by scan origin and trial")
	for _, p := range proto.All() {
		fmt.Fprintf(w, "\n[%s]  (%% of ground truth)\n", p)
		fmt.Fprintf(w, "%-7s%-7s%15s%15s%15s%15s%12s\n",
			"origin", "trial", "transient-host", "transient-net", "longterm-host", "longterm-net", "unknown")
		for _, b := range s.Fig2MissingBreakdown(p) {
			fmt.Fprintf(w, "%-7s%-7d%15s%15s%15s%15s%12s\n",
				b.Origin, b.Trial+1,
				pct(b.Frac(analysis.CatTransientHost)), pct(b.Frac(analysis.CatTransientNet)),
				pct(b.Frac(analysis.CatLongTermHost)), pct(b.Frac(analysis.CatLongTermNet)),
				pct(b.Frac(analysis.CatUnknown)))
		}
	}
}

// Fig3 renders Figure 3: long-term inaccessibility overlap among origins.
func Fig3(w io.Writer, s *core.Study) {
	header(w, "Figure 3: Long-term inaccessibility among origins")
	for _, p := range proto.All() {
		hist := s.Fig3LongTermOverlap(p, nil)
		histNoCEN := s.Fig3LongTermOverlap(p, origin.Set{origin.CEN})
		fmt.Fprintf(w, "[%s] hosts long-term inaccessible from exactly k origins:\n", p)
		fmt.Fprintf(w, "  all origins:     %v\n", hist)
		fmt.Fprintf(w, "  excluding CEN:   %v\n", histNoCEN)
	}
}

// Fig4 renders Figure 4: AS concentration of long-term inaccessible hosts.
func Fig4(w io.Writer, s *core.Study) {
	header(w, "Figure 4: Distribution of long-term inaccessible hosts by AS")
	for _, p := range proto.All() {
		fmt.Fprintf(w, "\n[%s] cumulative share held by top-k ASes (k=1,3,10):\n", p)
		for _, conc := range s.Fig4ASDistribution(p) {
			share := func(k int) float64 {
				if k > len(conc.TopShares) {
					if len(conc.TopShares) == 0 {
						return 0
					}
					return conc.TopShares[len(conc.TopShares)-1]
				}
				return conc.TopShares[k-1]
			}
			fmt.Fprintf(w, "  %-6s total=%-7d top1=%s top3=%s top10=%s\n",
				conc.Origin, conc.Total, pct(share(1)), pct(share(3)), pct(share(10)))
		}
	}
}

// Fig5 renders Figure 5: long-term inaccessible ASes.
func Fig5(w io.Writer, s *core.Study) {
	header(w, "Figure 5: Long-term inaccessible ASes (count by threshold)")
	for _, p := range proto.All() {
		fmt.Fprintf(w, "\n[%s]\n%-7s%8s%8s%8s\n", p, "origin", "100%", ">=75%", ">=50%")
		for _, r := range s.Fig5LostASes(p) {
			fmt.Fprintf(w, "%-7s%8d%8d%8d\n", r.Origin, r.Full, r.AtLeast75, r.AtLeast50)
		}
	}
}

// Fig6 renders Figure 6: exclusively accessible hosts by country.
func Fig6(w io.Writer, s *core.Study, p proto.Protocol) {
	header(w, fmt.Sprintf("Figure 6: Exclusively accessible %s hosts by country", p))
	cells := s.Fig6ExclusiveByCountry(p)
	fmt.Fprintf(w, "%-7s%-9s%8s%12s%12s\n", "origin", "country", "hosts", "ctry-frac", "in-country")
	for _, c := range cells {
		if c.Hosts == 0 {
			continue
		}
		mark := ""
		if c.InCountry {
			mark = "   <== within-country"
		}
		fmt.Fprintf(w, "%-7s%-9s%8d%12s%12v%s\n", c.Origin, c.DestCountry, c.Hosts, pct(c.CountryFrac), c.InCountry, mark)
	}
}

// Fig7 renders Figure 7: AS distribution of exclusively accessible hosts.
func Fig7(w io.Writer, s *core.Study) {
	header(w, "Figure 7: AS distribution of exclusively accessible HTTP hosts")
	for _, sh := range s.Fig7ExclusiveByAS(proto.HTTP, 3) {
		fmt.Fprintf(w, "  %-6s AS%-7d %-34s %6d hosts (%s of origin's exclusives)\n",
			sh.Origin, sh.AS, sh.ASName, sh.Hosts, pct(sh.Share))
	}
}

// Fig8 renders Figure 8: transient inaccessibility overlap.
func Fig8(w io.Writer, s *core.Study) {
	header(w, "Figure 8: Transient inaccessibility among origins")
	for _, p := range proto.All() {
		fmt.Fprintf(w, "[%s] hosts transiently inaccessible from exactly k origins: %v\n",
			p, s.Fig8TransientOverlap(p))
	}
}

// Fig9 renders Figure 9: CDF of transient-loss-rate differences.
func Fig9(w io.Writer, s *core.Study) {
	header(w, "Figure 9: Distribution of differences in transient loss rate among origins")
	for _, p := range proto.All() {
		_, plain, weighted := s.Fig9LossSpread(p)
		fmt.Fprintf(w, "\n[%s] CDF of max pairwise transient-loss difference per AS:\n", p)
		for _, x := range []float64{0.0, 0.01, 0.05, 0.10, 0.25} {
			fmt.Fprintf(w, "  P(Δ <= %4.0f%%): plain=%s weighted=%s\n",
				100*x, pct(cdfAt(plain, x)), pct(cdfAt(weighted, x)))
		}
	}
}

func cdfAt(points []stats.CDFPoint, x float64) float64 {
	f := 0.0
	for _, p := range points {
		if p.X <= x {
			f = p.F
		} else {
			break
		}
	}
	return f
}

// Fig10 renders Figure 10: transient host loss vs packet loss for the
// paper's three spotlight ASes.
func Fig10(w io.Writer, s *core.Study) {
	header(w, "Figure 10: Transient host loss vs packet loss")
	for _, spotlight := range []struct {
		profile string
		p       proto.Protocol
	}{
		{world.ProfAlibabaHZ, proto.HTTP},
		{world.ProfTelecomIT, proto.HTTP},
		{world.ProfABCDE, proto.HTTP},
	} {
		fmt.Fprintf(w, "\n[%s / %s]\n", spotlight.profile, spotlight.p)
		for _, pt := range s.Fig10LossVsDrop(spotlight.p, spotlight.profile) {
			fmt.Fprintf(w, "  %-6s transient=%s packet-drop=%s\n", pt.Origin, pct(pt.Transient), pct(pt.Drop))
		}
	}
}

// Fig11 renders Figure 11: consistent best and worst scan origins.
func Fig11(w io.Writer, s *core.Study) {
	header(w, "Figure 11: Consistent best and worst scan origins per destination AS")
	for _, p := range proto.All() {
		rep := s.Fig11BestWorst(p)
		fmt.Fprintf(w, "\n[%s] ASes considered: %d, best-to-worst flips: %d (%.1f%%)\n",
			p, rep.ASesConsidered, rep.Flips, 100*float64(rep.Flips)/float64(max(rep.ASesConsidered, 1)))
		fmt.Fprintf(w, "  consistent best:  %v\n", fmtOriginCounts(rep.ConsistentBest))
		fmt.Fprintf(w, "  consistent worst: %v\n", fmtOriginCounts(rep.ConsistentWorst))
	}
}

func fmtOriginCounts(m map[origin.ID]int) string {
	type kv struct {
		o origin.ID
		n int
	}
	var kvs []kv
	for o, n := range m {
		kvs = append(kvs, kv{o, n})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].n > kvs[j].n })
	var b strings.Builder
	for _, e := range kvs {
		fmt.Fprintf(&b, "%v:%d ", e.o, e.n)
	}
	if b.Len() == 0 {
		return "(none)"
	}
	return b.String()
}

// Fig12 renders Figure 12: Alibaba's temporal SSH blocking timeline.
func Fig12(w io.Writer, s *core.Study) {
	header(w, "Figure 12: Temporal blocking by SSH hosts in Alibaba networks (trial 1)")
	for _, o := range []origin.ID{origin.US1, origin.US64, origin.AU, origin.CEN} {
		tl := s.Fig12AlibabaTimeline(o, 0)
		fmt.Fprintf(w, "  %-5s |", o)
		for _, h := range tl {
			c := "."
			if h.Attempted > 0 {
				frac := float64(h.Reset) / float64(h.Attempted)
				switch {
				case frac > 0.8:
					c = "#"
				case frac > 0.3:
					c = "+"
				case frac > 0.05:
					c = "-"
				}
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w, "|  (hour 0..20; # = network-wide RSTs)")
	}
}

// Fig13 renders Figure 13: SSH retry success curves.
func Fig13(ctx context.Context, w io.Writer, s *core.Study) error {
	header(w, "Figure 13: Scanning probabilistic temporarily blocking hosts (SSH retries)")
	curves, err := s.Fig13SSHRetry(ctx, 5, 8)
	if err != nil {
		return err
	}
	for _, c := range curves {
		fmt.Fprintf(w, "  AS%-7d %-30s hosts=%-4d success by retries:", c.AS, c.ASName, c.Hosts)
		for r, f := range c.Success {
			fmt.Fprintf(w, " %d:%s", r, strings.TrimSpace(pct(f)))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig14 renders Figure 14: SSH missing-host cause breakdown.
func Fig14(w io.Writer, s *core.Study) {
	header(w, "Figure 14: Further breakdown of missing SSH hosts")
	fmt.Fprintf(w, "%-7s%12s%18s%22s%10s\n", "origin", "missing", "alibaba-temporal", "probabilistic-block", "other")
	for _, b := range s.Fig14SSHCauses() {
		if b.Missing == 0 {
			continue
		}
		f := func(c analysis.SSHCause) string {
			return pct(float64(b.Counts[c]) / float64(b.Missing))
		}
		fmt.Fprintf(w, "%-7s%12d%18s%22s%10s\n", b.Origin, b.Missing,
			f(analysis.CauseAlibabaTemporal), f(analysis.CauseProbabilistic), f(analysis.CauseOther))
	}
}

// Fig15 renders Figure 15/17/18: multi-origin coverage.
func Fig15(ctx context.Context, w io.Writer, s *core.Study, p proto.Protocol) error {
	header(w, fmt.Sprintf("Figure 15: Multi-origin coverage of %s hosts", p))
	var twoProbe []analysis.MultiOriginLevel
	for _, single := range []bool{true, false} {
		probes := "2 probes"
		if single {
			probes = "1 probe"
		}
		lvls, err := s.Fig15MultiOrigin(ctx, p, single)
		if err != nil {
			return err
		}
		if !single {
			twoProbe = lvls
		}
		fmt.Fprintf(w, "\n[%s]\n%-4s%10s%10s%10s%10s%10s\n", probes, "k", "median", "mean", "min", "max", "sigma")
		for _, lvl := range lvls {
			fmt.Fprintf(w, "%-4d%10s%10s%10s%10s%9.3f%%\n", lvl.K,
				pct(lvl.Median), pct(lvl.Mean), pct(lvl.Min), pct(lvl.Max), 100*lvl.Sigma)
		}
	}
	if len(twoProbe) >= 3 && len(twoProbe[2].All) > 0 {
		fmt.Fprintf(w, "best triad: %v %s; worst triad: %v %s\n",
			twoProbe[2].Best.Origins, pct(twoProbe[2].Best.Coverage),
			twoProbe[2].Worst.Origins, pct(twoProbe[2].Worst.Coverage))
	}
	return nil
}

// Fig16 renders Figure 16: exclusive accessibility for HTTPS and SSH.
func Fig16(w io.Writer, s *core.Study) {
	Fig6(w, s, proto.HTTPS)
	Fig6(w, s, proto.SSH)
}

// Fig17 renders Figure 17: multi-origin coverage for HTTPS and SSH.
func Fig17(ctx context.Context, w io.Writer, s *core.Study) error {
	if err := Fig15(ctx, w, s, proto.HTTPS); err != nil {
		return err
	}
	return Fig15(ctx, w, s, proto.SSH)
}

// Tab1 renders Table 1: exclusive (in)accessibility attribution.
func Tab1(w io.Writer, s *core.Study) {
	header(w, "Table 1: Hosts exclusively (in)accessible from a single origin")
	for _, p := range proto.All() {
		rows := s.Tab1ExclusiveShare(p)
		fmt.Fprintf(w, "\n[%s]\n%-7s%14s%16s\n", p, "origin", "acc. share", "inacc. share")
		for _, r := range rows {
			fmt.Fprintf(w, "%-7s%13.1f%%%15.1f%%\n", r.Origin, r.AccessiblePct, r.InaccessiblePct)
		}
	}
}

// Tab2 renders Table 2 (HTTP) / Table 5 (other protocols): countries with
// the most long-term inaccessible hosts.
func Tab2(w io.Writer, s *core.Study, p proto.Protocol) {
	header(w, fmt.Sprintf("Table 2/5: Countries with most long-term inaccessible %s hosts", p))
	rows := s.Tab2Countries(p)
	fmt.Fprintf(w, "%-7s%-9s%10s%14s%14s\n", "origin", "country", "inacc.", "ctry hosts", "dominant ASes")
	n := 0
	for _, r := range rows {
		if r.Pct < 1 || r.CountryHosts < 5 {
			continue
		}
		fmt.Fprintf(w, "%-7s%-9s%9.1f%%%14d%14d\n", r.Origin, r.Country, r.Pct, r.CountryHosts, r.DominantASes)
		n++
		if n >= 40 {
			break
		}
	}
}

// Tab3 renders Table 3: ASes with the largest transient-loss spread.
func Tab3(w io.Writer, s *core.Study) {
	header(w, "Table 3: ASes with the largest range of transient host loss rates")
	for _, p := range proto.All() {
		spreads, _, _ := s.Fig9LossSpread(p)
		fmt.Fprintf(w, "\n[%s]\n%-36s%8s%8s%8s\n", p, "AS", "Δ(%)", "Diff", "Ratio")
		for i, sp := range spreads {
			if i >= 6 {
				break
			}
			fmt.Fprintf(w, "%-36s%7.1f%%%8d%8.1f\n", fmt.Sprintf("%s (AS%d)", sp.ASName, sp.AS), 100*sp.Delta, sp.Diff, sp.Ratio)
		}
	}
}

// Tab5 renders the HTTPS and SSH country tables.
func Tab5(w io.Writer, s *core.Study) {
	Tab2(w, s, proto.HTTPS)
	Tab2(w, s, proto.SSH)
}

// Sec3McNemar renders §3's pairwise significance summary.
func Sec3McNemar(w io.Writer, s *core.Study) {
	header(w, "§3: McNemar's test between origin pairs (trial 1, Bonferroni-corrected)")
	for _, p := range proto.All() {
		pairs := s.McNemar(p, 0)
		sig := 0
		for _, pr := range pairs {
			if pr.PAdjusted < 0.001 {
				sig++
			}
		}
		fmt.Fprintf(w, "[%s] %d/%d pairs significant at p<0.001\n", p, sig, len(pairs))
	}
}

// Sec44Spearman renders §4.4's country-size correlation.
func Sec44Spearman(w io.Writer, s *core.Study) {
	header(w, "§4.4: Spearman correlation, country host count vs long-term inaccessible count")
	for _, p := range proto.All() {
		r := s.CountryCorrelation(p)
		fmt.Fprintf(w, "[%s] rho=%.2f p=%.2g n=%d (paper: rho=0.92, p<0.001)\n", p, r.Rho, r.P, r.N)
	}
}

// Sec52PacketLoss renders §5.2's estimator and correlation.
func Sec52PacketLoss(w io.Writer, s *core.Study) {
	header(w, "§5.2: Packet drop estimates and correlation with transient loss")
	for _, p := range proto.All() {
		fmt.Fprintf(w, "\n[%s]\n", p)
		corr := s.DropVsTransient(p)
		for _, o := range studyOrigins(s) {
			var rates []string
			for t := 0; t < s.DS.Trials; t++ {
				est := s.PacketLoss(p, o, t)
				rates = append(rates, strings.TrimSpace(pct(est.Rate)))
			}
			c := corr[o]
			fmt.Fprintf(w, "  %-6s drop by trial: %-28v drop↔transient rho=%.2f\n",
				o, rates, c.Rho)
		}
	}
}

// Sec53Bursts renders §5.3's burst attribution.
func Sec53Bursts(w io.Writer, s *core.Study) {
	header(w, "§5.3: Burst outages")
	for _, p := range proto.All() {
		rep := s.Bursts(p)
		fmt.Fprintf(w, "\n[%s] ASes with ≥1 burst: %s; single-origin bursts: %s; within 3 origins: %s\n",
			p, pct(rep.ASesWithBurst), pct(rep.SingleOriginBursts), pct(rep.WithinThree))
		fmt.Fprintf(w, "  single-origin burst counts: %v\n", fmtOriginCounts(rep.SingleOriginByOrigin))
		for _, o := range studyOrigins(s) {
			fmt.Fprintf(w, "  %-6s transient loss in bursts by trial:", o)
			for _, f := range rep.PerOriginTrial[o] {
				fmt.Fprintf(w, " %s", strings.TrimSpace(pct(f)))
			}
			fmt.Fprintln(w)
		}
	}
}

// Sec7Probes renders §7's probe-level statistics.
func Sec7Probes(w io.Writer, s *core.Study) {
	header(w, "§7: Single- vs double-probe coverage and probe-loss correlation")
	for _, p := range proto.All() {
		fmt.Fprintf(w, "\n[%s]\n", p)
		for _, o := range studyOrigins(s) {
			ps := s.Probes(p, o, 0)
			fmt.Fprintf(w, "  %-6s 1-probe=%s 2-probe=%s both-lost|any-lost=%s\n",
				o, pct(ps.Coverage1Probe), pct(ps.Coverage2Probe), pct(ps.BothLostPortion))
		}
	}
}

// Sec8Agreement renders the §8 comparison with Heidemann et al.: /24
// response-rate agreement between origin pairs.
func Sec8Agreement(w io.Writer, s *core.Study) {
	header(w, "§8: /24 response-rate agreement between origin pairs (tolerance 5%)")
	for _, p := range proto.All() {
		agg := s.Agreement(p, 0)
		fmt.Fprintf(w, "[%s] mean agreement %s over %d /24 blocks (paper: 87%%; Heidemann '08: 96%% for two US origins)\n",
			p, pct(agg.Mean), agg.Blocks)
	}
}

// BannerCensus renders the captured-banner tallies (the search-engine view
// of the scan data).
func BannerCensus(w io.Writer, s *core.Study) {
	header(w, "Banner census (US1, trial 1)")
	for _, p := range proto.All() {
		counts, total := s.Banners(p, origin.US1, 0, 6)
		fmt.Fprintf(w, "\n[%s] %d hosts with banners\n", p, total)
		for _, c := range counts {
			fmt.Fprintf(w, "  %-40s %7d hosts (%s)\n", c.Banner, c.Hosts, pct(c.Share))
		}
	}
}

func studyOrigins(s *core.Study) origin.Set {
	var out origin.Set
	for _, o := range s.DS.Origins {
		if o != origin.CARINET {
			out = append(out, o)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
