package report

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/origin"
	"repro/internal/world"
)

var (
	repOnce sync.Once
	repStu  *core.Study
	repErr  error
)

func study(t *testing.T) *core.Study {
	t.Helper()
	repOnce.Do(func() {
		repStu, repErr = core.New(context.Background(), experiment.Config{WorldSpec: world.TestSpec(42)})
		if repErr == nil {
			repErr = repStu.Run(context.Background())
		}
	})
	if repErr != nil {
		t.Fatal(repErr)
	}
	return repStu
}

func TestAllRendersEverySection(t *testing.T) {
	var b strings.Builder
	if err := All(context.Background(), &b, study(t)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 4a", "Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9",
		"Figure 10", "Figure 11", "Figure 12", "Figure 13", "Figure 14",
		"Figure 15", "Table 1", "Table 2", "Table 3",
		"§3", "§4.4", "§5.2", "§5.3", "§7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	// Every study origin appears somewhere.
	for _, o := range origin.StudySet() {
		if !strings.Contains(out, o.String()) {
			t.Errorf("report never mentions origin %v", o)
		}
	}
	// The report carries real percentages, not stubs.
	if strings.Count(out, "%") < 200 {
		t.Error("report suspiciously empty of numbers")
	}
}

func TestCoverageTableHasAllTrials(t *testing.T) {
	var b strings.Builder
	Tab4Coverage(&b, study(t))
	out := b.String()
	for _, p := range []string{"[HTTP]", "[HTTPS]", "[SSH]"} {
		if !strings.Contains(out, p) {
			t.Errorf("coverage table missing %s", p)
		}
	}
	if !strings.Contains(out, "mean") {
		t.Error("coverage table missing the mean row")
	}
}

func TestFig12TimelineShape(t *testing.T) {
	var b strings.Builder
	Fig12(&b, study(t))
	out := b.String()
	// US1's timeline line should contain late-scan blocking marks.
	lines := strings.Split(out, "\n")
	var us1 string
	for _, l := range lines {
		if strings.Contains(l, "US1") {
			us1 = l
		}
	}
	if us1 == "" {
		t.Fatal("no US1 timeline")
	}
	if !strings.ContainsAny(us1, "#+-") {
		t.Errorf("US1 timeline shows no blocking: %q", us1)
	}
}

func TestFig13RetrySection(t *testing.T) {
	var b strings.Builder
	if err := Fig13(context.Background(), &b, study(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "success by retries") {
		t.Error("retry curves missing")
	}
}

func TestCSVExporters(t *testing.T) {
	s := study(t)
	cases := []struct {
		name string
		fn   func() (string, error)
	}{
		{"coverage", func() (string, error) {
			var b strings.Builder
			err := CSVCoverage(&b, s)
			return b.String(), err
		}},
		{"breakdown", func() (string, error) {
			var b strings.Builder
			err := CSVMissingBreakdown(&b, s)
			return b.String(), err
		}},
		{"spread", func() (string, error) {
			var b strings.Builder
			err := CSVSpreadCDF(&b, s)
			return b.String(), err
		}},
		{"multiorigin", func() (string, error) {
			var b strings.Builder
			err := CSVMultiOrigin(context.Background(), &b, s)
			return b.String(), err
		}},
		{"timeline", func() (string, error) {
			var b strings.Builder
			err := CSVTimeline(&b, s, []origin.ID{origin.US1, origin.US64}, 0)
			return b.String(), err
		}},
		{"countries", func() (string, error) {
			var b strings.Builder
			err := CSVCountryTable(&b, s)
			return b.String(), err
		}},
	}
	for _, c := range cases {
		out, err := c.fn()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		lines := strings.Count(out, "\n")
		if lines < 3 {
			t.Errorf("%s: only %d rows", c.name, lines)
		}
		header := out[:strings.IndexByte(out, '\n')]
		if !strings.Contains(header, ",") {
			t.Errorf("%s: no CSV header: %q", c.name, header)
		}
	}
}
