package report

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/origin"
	"repro/internal/proto"
)

// CSV writers: each figure/table as machine-readable rows, so the study's
// outputs can be plotted or diffed outside Go. Column layouts mirror the
// data the paper's figures plot.

// CSVCoverage writes Figure 1 / Table 4a rows:
// protocol,origin,trial,coverage2probe,coverage1probe.
func CSVCoverage(w io.Writer, s *core.Study) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"protocol", "origin", "trial", "coverage_2probe", "coverage_1probe"}); err != nil {
		return err
	}
	for _, p := range proto.All() {
		tab := s.Fig1Coverage(p)
		for _, c := range tab.Cells {
			if err := cw.Write([]string{
				p.String(), c.Origin.String(), strconv.Itoa(c.Trial + 1),
				f(c.Coverage), f(c.Single),
			}); err != nil {
				return err
			}
		}
	}
	return cw.Error()
}

// CSVMissingBreakdown writes Figure 2 rows:
// protocol,origin,trial,category,count,fraction.
func CSVMissingBreakdown(w io.Writer, s *core.Study) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"protocol", "origin", "trial", "category", "count", "fraction"}); err != nil {
		return err
	}
	for _, p := range proto.All() {
		for _, b := range s.Fig2MissingBreakdown(p) {
			for cat := analysis.Category(0); int(cat) < len(b.Counts); cat++ {
				if err := cw.Write([]string{
					p.String(), b.Origin.String(), strconv.Itoa(b.Trial + 1),
					cat.String(), strconv.Itoa(b.Counts[cat]), f(b.Frac(cat)),
				}); err != nil {
					return err
				}
			}
		}
	}
	return cw.Error()
}

// CSVSpreadCDF writes Figure 9 rows: protocol,series,x,f.
func CSVSpreadCDF(w io.Writer, s *core.Study) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"protocol", "series", "delta", "cdf"}); err != nil {
		return err
	}
	for _, p := range proto.All() {
		_, plain, weighted := s.Fig9LossSpread(p)
		for _, pt := range plain {
			if err := cw.Write([]string{p.String(), "plain", f(pt.X), f(pt.F)}); err != nil {
				return err
			}
		}
		for _, pt := range weighted {
			if err := cw.Write([]string{p.String(), "weighted", f(pt.X), f(pt.F)}); err != nil {
				return err
			}
		}
	}
	return cw.Error()
}

// CSVMultiOrigin writes Figure 15/17 rows:
// protocol,probes,k,median,mean,min,max,sigma.
func CSVMultiOrigin(ctx context.Context, w io.Writer, s *core.Study) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"protocol", "probes", "k", "median", "mean", "min", "max", "sigma"}); err != nil {
		return err
	}
	for _, p := range proto.All() {
		for _, single := range []bool{true, false} {
			probes := "2"
			if single {
				probes = "1"
			}
			lvls, err := s.Fig15MultiOrigin(ctx, p, single)
			if err != nil {
				return err
			}
			for _, lvl := range lvls {
				if err := cw.Write([]string{
					p.String(), probes, strconv.Itoa(lvl.K),
					f(lvl.Median), f(lvl.Mean), f(lvl.Min), f(lvl.Max), f(lvl.Sigma),
				}); err != nil {
					return err
				}
			}
		}
	}
	return cw.Error()
}

// CSVTimeline writes Figure 12 rows: origin,trial,hour,attempted,reset.
func CSVTimeline(w io.Writer, s *core.Study, origins []origin.ID, trial int) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"origin", "trial", "hour", "attempted", "reset"}); err != nil {
		return err
	}
	for _, o := range origins {
		for _, h := range s.Fig12AlibabaTimeline(o, trial) {
			if err := cw.Write([]string{
				o.String(), strconv.Itoa(trial + 1), strconv.Itoa(h.Hour),
				strconv.Itoa(h.Attempted), strconv.Itoa(h.Reset),
			}); err != nil {
				return err
			}
		}
	}
	return cw.Error()
}

// CSVCountryTable writes Table 2/5 rows:
// protocol,origin,country,pct,country_hosts,dominant_ases.
func CSVCountryTable(w io.Writer, s *core.Study) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"protocol", "origin", "country", "pct_inaccessible", "country_hosts", "dominant_ases"}); err != nil {
		return err
	}
	for _, p := range proto.All() {
		for _, r := range s.Tab2Countries(p) {
			if err := cw.Write([]string{
				p.String(), r.Origin.String(), string(r.Country),
				fmt.Sprintf("%.3f", r.Pct), strconv.Itoa(r.CountryHosts), strconv.Itoa(r.DominantASes),
			}); err != nil {
				return err
			}
		}
	}
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
