// Package packet implements IPv4 and TCP header wire formats with real
// checksums, plus a gopacket-style layered serializer/decoder. The ZMap
// scanner core builds genuine SYN probes through this package and validates
// genuine SYN-ACK bytes coming back; the simulation fabric is just the
// transport that carries them.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ip"
)

// Protocol numbers used by the study.
const (
	ProtoTCP = 6
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// IPv4Header is a decoded IPv4 header (no options support needed by the
// scanner; options presence is tolerated on decode).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16 // filled by serialization; verified on decode
	Src, Dst ip.Addr
	HdrLen   int // bytes, >= 20
}

// TCPHeader is a decoded TCP header.
type TCPHeader struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          int // header length in bytes, >= 20
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte
}

// HasFlag reports whether the header has all the given flag bits set.
func (t *TCPHeader) HasFlag(f uint8) bool { return t.Flags&f == f }

// Errors returned by decoding.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrNotTCP      = errors.New("packet: not TCP")
)

// Checksum computes the Internet checksum (RFC 1071) over data with an
// initial partial sum.
func Checksum(data []byte, initial uint32) uint16 {
	sum := initial
	i := 0
	for ; i+1 < len(data); i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < len(data) {
		sum += uint32(data[i]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderSum4 computes the IPv4 TCP pseudo-header partial sum over
// host-order address words.
func pseudoHeaderSum4(src, dst uint32, tcpLen int) uint32 {
	var sum uint32
	sum += src >> 16
	sum += src & 0xffff
	sum += dst >> 16
	sum += dst & 0xffff
	sum += ProtoTCP
	sum += uint32(tcpLen)
	return sum
}

// pseudoHeaderSum6 computes the IPv6 TCP pseudo-header partial sum
// (RFC 8200 §8.1): both 128-bit addresses, the upper-layer length, and the
// next-header value, as 16-bit words.
func pseudoHeaderSum6(src, dst ip.Addr, tcpLen int) uint32 {
	var sum uint32
	for _, w := range [...]uint64{src.Hi(), src.Lo(), dst.Hi(), dst.Lo()} {
		sum += uint32(w>>48) + uint32(w>>32&0xffff) + uint32(w>>16&0xffff) + uint32(w&0xffff)
	}
	sum += ProtoTCP
	sum += uint32(tcpLen)
	return sum
}

// SerializeTCP4 builds a complete IPv4+TCP packet with correct checksums.
// It is the single-call layered serializer (the analog of gopacket's
// SerializeLayers for the one stack this scanner sends).
func SerializeTCP4(iph *IPv4Header, tcph *TCPHeader, payload []byte) []byte {
	return SerializeTCP4Into(nil, iph, tcph, payload)
}

// SerializeTCP4Into is SerializeTCP4 writing into buf's storage when it has
// the capacity, allocating only when it doesn't. A scanner sending millions
// of probes reuses one buffer instead of allocating per probe; the returned
// slice aliases buf and is valid until the next reuse.
func SerializeTCP4Into(buf []byte, iph *IPv4Header, tcph *TCPHeader, payload []byte) []byte {
	tcpLen := 20 + len(tcph.Options) + len(payload)
	if len(tcph.Options)%4 != 0 {
		panic("packet: TCP options must be padded to 4 bytes")
	}
	totalLen := 20 + tcpLen
	if cap(buf) >= totalLen {
		buf = buf[:totalLen]
	} else {
		buf = make([]byte, totalLen)
	}

	// IPv4 header.
	buf[0] = 0x45 // version 4, IHL 5
	buf[1] = iph.TOS
	binary.BigEndian.PutUint16(buf[2:], uint16(totalLen))
	binary.BigEndian.PutUint16(buf[4:], iph.ID)
	binary.BigEndian.PutUint16(buf[6:], uint16(iph.Flags)<<13|iph.FragOff&0x1fff)
	ttl := iph.TTL
	if ttl == 0 {
		ttl = 64
	}
	buf[8] = ttl
	buf[9] = ProtoTCP
	binary.BigEndian.PutUint32(buf[12:], iph.Src.V4())
	binary.BigEndian.PutUint32(buf[16:], iph.Dst.V4())
	buf[10], buf[11] = 0, 0 // checksum field must be zero while summing
	binary.BigEndian.PutUint16(buf[10:], Checksum(buf[:20], 0))

	// TCP header.
	t := buf[20:]
	binary.BigEndian.PutUint16(t[0:], tcph.SrcPort)
	binary.BigEndian.PutUint16(t[2:], tcph.DstPort)
	binary.BigEndian.PutUint32(t[4:], tcph.Seq)
	binary.BigEndian.PutUint32(t[8:], tcph.Ack)
	dataOff := (20 + len(tcph.Options)) / 4
	t[12] = byte(dataOff << 4)
	t[13] = tcph.Flags
	win := tcph.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(t[14:], win)
	binary.BigEndian.PutUint16(t[18:], tcph.Urgent)
	copy(t[20:], tcph.Options)
	copy(t[20+len(tcph.Options):], payload)
	t[16], t[17] = 0, 0 // checksum field must be zero while summing
	binary.BigEndian.PutUint16(t[16:], Checksum(t[:tcpLen], pseudoHeaderSum4(iph.Src.V4(), iph.Dst.V4(), tcpLen)))

	return buf
}

// DecodeTCP4 parses and validates an IPv4+TCP packet, returning both
// headers and the payload. Checksums are verified; a packet that fails
// verification is rejected exactly as a kernel or ZMap would drop it.
func DecodeTCP4(data []byte) (*IPv4Header, *TCPHeader, []byte, error) {
	iph, tcph := new(IPv4Header), new(TCPHeader)
	payload, err := DecodeTCP4Into(iph, tcph, data)
	if err != nil {
		if iph.HdrLen == 0 {
			return nil, nil, nil, err
		}
		return iph, nil, nil, err
	}
	return iph, tcph, payload, nil
}

// DecodeTCP4Into is DecodeTCP4 decoding into caller-provided headers, so a
// hot loop evaluating millions of probes keeps both on the stack instead of
// allocating per packet. Both structs are reset first; iph is filled as far
// as parsing got (its HdrLen stays 0 until the IPv4 header verified), tcph
// only on full success. The payload and tcph.Options alias data.
func DecodeTCP4Into(iph *IPv4Header, tcph *TCPHeader, data []byte) ([]byte, error) {
	*iph = IPv4Header{}
	*tcph = TCPHeader{}
	if len(data) < 20 {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return nil, ErrTruncated
	}
	if Checksum(data[:ihl], 0) != 0 {
		return nil, ErrBadChecksum
	}
	*iph = IPv4Header{
		TOS:      data[1],
		TotalLen: binary.BigEndian.Uint16(data[2:]),
		ID:       binary.BigEndian.Uint16(data[4:]),
		Flags:    data[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(data[6:]) & 0x1fff,
		TTL:      data[8],
		Protocol: data[9],
		Checksum: binary.BigEndian.Uint16(data[10:]),
		Src:      ip.AddrFrom4(binary.BigEndian.Uint32(data[12:])),
		Dst:      ip.AddrFrom4(binary.BigEndian.Uint32(data[16:])),
		HdrLen:   ihl,
	}
	if iph.Protocol != ProtoTCP {
		return nil, ErrNotTCP
	}
	if int(iph.TotalLen) > len(data) || int(iph.TotalLen) < ihl+20 {
		return nil, ErrTruncated
	}
	seg := data[ihl:iph.TotalLen]
	if len(seg) < 20 {
		return nil, ErrTruncated
	}
	dataOff := int(seg[12]>>4) * 4
	if dataOff < 20 || dataOff > len(seg) {
		return nil, ErrTruncated
	}
	if Checksum(seg, pseudoHeaderSum4(iph.Src.V4(), iph.Dst.V4(), len(seg))) != 0 {
		return nil, ErrBadChecksum
	}
	*tcph = TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(seg[0:]),
		DstPort:  binary.BigEndian.Uint16(seg[2:]),
		Seq:      binary.BigEndian.Uint32(seg[4:]),
		Ack:      binary.BigEndian.Uint32(seg[8:]),
		DataOff:  dataOff,
		Flags:    seg[13],
		Window:   binary.BigEndian.Uint16(seg[14:]),
		Checksum: binary.BigEndian.Uint16(seg[16:]),
		Urgent:   binary.BigEndian.Uint16(seg[18:]),
	}
	if dataOff > 20 {
		tcph.Options = seg[20:dataOff]
	}
	return seg[dataOff:], nil
}

// MakeSYN builds a SYN probe packet (the ZMap probe): MSS option included,
// as real ZMap sends. The IP layer follows the address family; mixed
// families panic (via V4) rather than emit a corrupt probe.
func MakeSYN(src, dst ip.Addr, srcPort, dstPort uint16, seq uint32, ipID uint16) []byte {
	return MakeSYNInto(nil, src, dst, srcPort, dstPort, seq, ipID)
}

// MakeSYNInto is MakeSYN reusing buf's storage (see SerializeTCP4Into).
func MakeSYNInto(buf []byte, src, dst ip.Addr, srcPort, dstPort uint16, seq uint32, ipID uint16) []byte {
	tcph := TCPHeader{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Flags: FlagSYN,
		Options: mssOption[:],
	}
	if dst.Is4() {
		return SerializeTCP4Into(buf,
			&IPv4Header{Src: src, Dst: dst, ID: ipID, TTL: 64}, &tcph, nil)
	}
	// IPv6 has no IP-level ID field; the probe index rides in FlowLabel so
	// captures can still distinguish retransmissions.
	return SerializeTCP6Into(buf,
		&IPv6Header{Src: src, Dst: dst, FlowLabel: uint32(ipID), HopLimit: 64}, &tcph, nil)
}

// mssOption is the MSS 1460 TCP option every SYN carries; a package-level
// array keeps MakeSYNInto allocation-free.
var mssOption = [4]byte{2, 4, 0x05, 0xb4}

// MakeSYNACK builds the SYN-ACK a listening host answers with, in the
// family of the addresses.
func MakeSYNACK(src, dst ip.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	tcph := TCPHeader{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Ack: ack, Flags: FlagSYN | FlagACK,
		Options: []byte{2, 4, 0x05, 0xb4},
	}
	if dst.Is4() {
		return SerializeTCP4(&IPv4Header{Src: src, Dst: dst, TTL: 64}, &tcph, nil)
	}
	return SerializeTCP6(&IPv6Header{Src: src, Dst: dst, HopLimit: 64}, &tcph, nil)
}

// MakeRST builds the RST a closed port answers with, in the family of the
// addresses.
func MakeRST(src, dst ip.Addr, srcPort, dstPort uint16, seq, ack uint32) []byte {
	tcph := TCPHeader{
		SrcPort: srcPort, DstPort: dstPort,
		Seq: seq, Ack: ack, Flags: FlagRST | FlagACK,
	}
	if dst.Is4() {
		return SerializeTCP4(&IPv4Header{Src: src, Dst: dst, TTL: 64}, &tcph, nil)
	}
	return SerializeTCP6(&IPv6Header{Src: src, Dst: dst, HopLimit: 64}, &tcph, nil)
}

// Summary formats a one-line description for diagnostics, sniffing the IP
// version to pick the decoder.
func Summary(data []byte) string {
	var src, dst ip.Addr
	var tcph *TCPHeader
	var payload []byte
	var err error
	if Version(data) == 6 {
		var ip6 *IPv6Header
		ip6, tcph, payload, err = DecodeTCP6(data)
		if err == nil {
			src, dst = ip6.Src, ip6.Dst
		}
	} else {
		var iph *IPv4Header
		iph, tcph, payload, err = DecodeTCP4(data)
		if err == nil {
			src, dst = iph.Src, iph.Dst
		}
	}
	if err != nil {
		return fmt.Sprintf("invalid packet: %v", err)
	}
	flags := ""
	for _, f := range []struct {
		bit  uint8
		name string
	}{{FlagSYN, "S"}, {FlagACK, "A"}, {FlagRST, "R"}, {FlagFIN, "F"}, {FlagPSH, "P"}} {
		if tcph.HasFlag(f.bit) {
			flags += f.name
		}
	}
	return fmt.Sprintf("%v:%d > %v:%d [%s] seq=%d ack=%d len=%d",
		src, tcph.SrcPort, dst, tcph.DstPort, flags, tcph.Seq, tcph.Ack, len(payload))
}
