package packet

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ip"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 materials:
	// 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Errorf("Checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	got := Checksum(data, 0)
	// Manually: 0x0102 + 0x0300 = 0x0402 -> ^0x0402 = 0xfbfd.
	if got != 0xfbfd {
		t.Errorf("Checksum = %#x, want 0xfbfd", got)
	}
}

func TestSerializeDecodeRoundTrip(t *testing.T) {
	src, dst := ip.MustParseAddr("192.0.2.1"), ip.MustParseAddr("198.51.100.2")
	pkt := SerializeTCP4(
		&IPv4Header{Src: src, Dst: dst, ID: 4321, TTL: 64},
		&TCPHeader{
			SrcPort: 54321, DstPort: 443,
			Seq: 0xdeadbeef, Ack: 0x12345678,
			Flags: FlagSYN | FlagACK, Window: 29200,
			Options: []byte{2, 4, 5, 180},
		},
		[]byte("hello"),
	)
	iph, tcph, payload, err := DecodeTCP4(pkt)
	if err != nil {
		t.Fatalf("DecodeTCP4: %v", err)
	}
	if iph.Src != src || iph.Dst != dst || iph.ID != 4321 {
		t.Errorf("IP header mismatch: %+v", iph)
	}
	if tcph.SrcPort != 54321 || tcph.DstPort != 443 || tcph.Seq != 0xdeadbeef || tcph.Ack != 0x12345678 {
		t.Errorf("TCP header mismatch: %+v", tcph)
	}
	if !tcph.HasFlag(FlagSYN) || !tcph.HasFlag(FlagACK) || tcph.HasFlag(FlagRST) {
		t.Errorf("flags mismatch: %#x", tcph.Flags)
	}
	if string(payload) != "hello" {
		t.Errorf("payload = %q", payload)
	}
	if len(tcph.Options) != 4 || tcph.Options[0] != 2 {
		t.Errorf("options = %v", tcph.Options)
	}
}

func TestDecodeRejectsCorruptedIPChecksum(t *testing.T) {
	pkt := MakeSYN(1, 2, 1000, 80, 42, 7)
	pkt[12] ^= 0xff // corrupt src address without fixing checksum
	if _, _, _, err := DecodeTCP4(pkt); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsCorruptedTCPChecksum(t *testing.T) {
	pkt := MakeSYN(1, 2, 1000, 80, 42, 7)
	pkt[len(pkt)-1] ^= 0xff // corrupt last TCP option byte
	if _, _, _, err := DecodeTCP4(pkt); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	pkt := MakeSYN(1, 2, 1000, 80, 42, 7)
	for _, n := range []int{0, 10, 19, 25, len(pkt) - 1} {
		if _, _, _, err := DecodeTCP4(pkt[:n]); err == nil {
			t.Errorf("decode of %d bytes succeeded", n)
		}
	}
}

func TestDecodeRejectsNonIPv4(t *testing.T) {
	pkt := MakeSYN(1, 2, 1000, 80, 42, 7)
	pkt[0] = 0x65 // version 6
	if _, _, _, err := DecodeTCP4(pkt); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsNonTCP(t *testing.T) {
	pkt := MakeSYN(1, 2, 1000, 80, 42, 7)
	pkt[9] = 17 // UDP
	// Fix the IP checksum so the protocol check is reached.
	pkt[10], pkt[11] = 0, 0
	ck := Checksum(pkt[:20], 0)
	pkt[10], pkt[11] = byte(ck>>8), byte(ck)
	if _, _, _, err := DecodeTCP4(pkt); err != ErrNotTCP {
		t.Errorf("err = %v, want ErrNotTCP", err)
	}
}

func TestMakeSYNShape(t *testing.T) {
	src, dst := ip.MustParseAddr("10.0.0.1"), ip.MustParseAddr("10.0.0.2")
	pkt := MakeSYN(src, dst, 40000, 80, 0xcafebabe, 99)
	iph, tcph, payload, err := DecodeTCP4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !tcph.HasFlag(FlagSYN) || tcph.HasFlag(FlagACK) {
		t.Error("SYN probe must be SYN-only")
	}
	if tcph.Seq != 0xcafebabe {
		t.Errorf("seq = %#x", tcph.Seq)
	}
	if iph.ID != 99 || iph.TTL == 0 {
		t.Errorf("ip header: %+v", iph)
	}
	if len(payload) != 0 {
		t.Error("SYN probe must carry no payload")
	}
	// MSS option present.
	if len(tcph.Options) != 4 || tcph.Options[0] != 2 || tcph.Options[1] != 4 {
		t.Errorf("MSS option missing: %v", tcph.Options)
	}
}

func TestMakeSYNACKAcksSeqPlusOne(t *testing.T) {
	probe := MakeSYN(1, 2, 40000, 443, 1000, 0)
	_, p, _, _ := DecodeTCP4(probe)
	resp := MakeSYNACK(2, 1, 443, 40000, 77, p.Seq+1)
	_, r, _, err := DecodeTCP4(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasFlag(FlagSYN | FlagACK) {
		t.Error("response must be SYN+ACK")
	}
	if r.Ack != 1001 {
		t.Errorf("ack = %d, want 1001", r.Ack)
	}
}

func TestMakeRSTFlags(t *testing.T) {
	pkt := MakeRST(2, 1, 22, 40000, 0, 1001)
	_, tcph, _, err := DecodeTCP4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !tcph.HasFlag(FlagRST) || tcph.HasFlag(FlagSYN) {
		t.Errorf("flags = %#x", tcph.Flags)
	}
}

func TestSerializeDecodePropertyRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		pkt := SerializeTCP4(
			&IPv4Header{Src: ip.Addr(src), Dst: ip.Addr(dst), TTL: 64},
			&TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags},
			payload,
		)
		iph, tcph, pl, err := DecodeTCP4(pkt)
		if err != nil {
			return false
		}
		return iph.Src == ip.Addr(src) && iph.Dst == ip.Addr(dst) &&
			tcph.SrcPort == sp && tcph.DstPort == dp &&
			tcph.Seq == seq && tcph.Ack == ack && tcph.Flags == flags &&
			string(pl) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	pkt := MakeSYN(ip.MustParseAddr("1.2.3.4"), ip.MustParseAddr("5.6.7.8"), 40000, 80, 7, 0)
	s := Summary(pkt)
	for _, want := range []string{"1.2.3.4:40000", "5.6.7.8:80", "[S]"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
	if s := Summary([]byte{1, 2, 3}); !strings.Contains(s, "invalid") {
		t.Errorf("Summary of garbage = %q", s)
	}
}

func TestSerializePanicsOnUnpaddedOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unpadded options did not panic")
		}
	}()
	SerializeTCP4(&IPv4Header{}, &TCPHeader{Options: []byte{1, 2, 3}}, nil)
}

func BenchmarkMakeSYN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MakeSYN(ip.Addr(i), ip.Addr(i*7), 40000, 80, uint32(i), uint16(i))
	}
}

func BenchmarkDecodeTCP4(b *testing.B) {
	pkt := MakeSYNACK(1, 2, 80, 40000, 5, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeTCP4(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
