package packet

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ip"
)

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 materials:
	// 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data, 0); got != 0x220d {
		t.Errorf("Checksum = %#x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	data := []byte{0x01, 0x02, 0x03}
	got := Checksum(data, 0)
	// Manually: 0x0102 + 0x0300 = 0x0402 -> ^0x0402 = 0xfbfd.
	if got != 0xfbfd {
		t.Errorf("Checksum = %#x, want 0xfbfd", got)
	}
}

func TestSerializeDecodeRoundTrip(t *testing.T) {
	src, dst := ip.MustParseAddr("192.0.2.1"), ip.MustParseAddr("198.51.100.2")
	pkt := SerializeTCP4(
		&IPv4Header{Src: src, Dst: dst, ID: 4321, TTL: 64},
		&TCPHeader{
			SrcPort: 54321, DstPort: 443,
			Seq: 0xdeadbeef, Ack: 0x12345678,
			Flags: FlagSYN | FlagACK, Window: 29200,
			Options: []byte{2, 4, 5, 180},
		},
		[]byte("hello"),
	)
	iph, tcph, payload, err := DecodeTCP4(pkt)
	if err != nil {
		t.Fatalf("DecodeTCP4: %v", err)
	}
	if iph.Src != src || iph.Dst != dst || iph.ID != 4321 {
		t.Errorf("IP header mismatch: %+v", iph)
	}
	if tcph.SrcPort != 54321 || tcph.DstPort != 443 || tcph.Seq != 0xdeadbeef || tcph.Ack != 0x12345678 {
		t.Errorf("TCP header mismatch: %+v", tcph)
	}
	if !tcph.HasFlag(FlagSYN) || !tcph.HasFlag(FlagACK) || tcph.HasFlag(FlagRST) {
		t.Errorf("flags mismatch: %#x", tcph.Flags)
	}
	if string(payload) != "hello" {
		t.Errorf("payload = %q", payload)
	}
	if len(tcph.Options) != 4 || tcph.Options[0] != 2 {
		t.Errorf("options = %v", tcph.Options)
	}
}

func TestDecodeRejectsCorruptedIPChecksum(t *testing.T) {
	pkt := MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 1000, 80, 42, 7)
	pkt[12] ^= 0xff // corrupt src address without fixing checksum
	if _, _, _, err := DecodeTCP4(pkt); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsCorruptedTCPChecksum(t *testing.T) {
	pkt := MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 1000, 80, 42, 7)
	pkt[len(pkt)-1] ^= 0xff // corrupt last TCP option byte
	if _, _, _, err := DecodeTCP4(pkt); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	pkt := MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 1000, 80, 42, 7)
	for _, n := range []int{0, 10, 19, 25, len(pkt) - 1} {
		if _, _, _, err := DecodeTCP4(pkt[:n]); err == nil {
			t.Errorf("decode of %d bytes succeeded", n)
		}
	}
}

func TestDecodeRejectsNonIPv4(t *testing.T) {
	pkt := MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 1000, 80, 42, 7)
	pkt[0] = 0x65 // version 6
	if _, _, _, err := DecodeTCP4(pkt); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsNonTCP(t *testing.T) {
	pkt := MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 1000, 80, 42, 7)
	pkt[9] = 17 // UDP
	// Fix the IP checksum so the protocol check is reached.
	pkt[10], pkt[11] = 0, 0
	ck := Checksum(pkt[:20], 0)
	pkt[10], pkt[11] = byte(ck>>8), byte(ck)
	if _, _, _, err := DecodeTCP4(pkt); err != ErrNotTCP {
		t.Errorf("err = %v, want ErrNotTCP", err)
	}
}

func TestMakeSYNShape(t *testing.T) {
	src, dst := ip.MustParseAddr("10.0.0.1"), ip.MustParseAddr("10.0.0.2")
	pkt := MakeSYN(src, dst, 40000, 80, 0xcafebabe, 99)
	iph, tcph, payload, err := DecodeTCP4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !tcph.HasFlag(FlagSYN) || tcph.HasFlag(FlagACK) {
		t.Error("SYN probe must be SYN-only")
	}
	if tcph.Seq != 0xcafebabe {
		t.Errorf("seq = %#x", tcph.Seq)
	}
	if iph.ID != 99 || iph.TTL == 0 {
		t.Errorf("ip header: %+v", iph)
	}
	if len(payload) != 0 {
		t.Error("SYN probe must carry no payload")
	}
	// MSS option present.
	if len(tcph.Options) != 4 || tcph.Options[0] != 2 || tcph.Options[1] != 4 {
		t.Errorf("MSS option missing: %v", tcph.Options)
	}
}

func TestMakeSYNACKAcksSeqPlusOne(t *testing.T) {
	probe := MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 40000, 443, 1000, 0)
	_, p, _, _ := DecodeTCP4(probe)
	resp := MakeSYNACK(ip.AddrFrom4(2), ip.AddrFrom4(1), 443, 40000, 77, p.Seq+1)
	_, r, _, err := DecodeTCP4(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasFlag(FlagSYN | FlagACK) {
		t.Error("response must be SYN+ACK")
	}
	if r.Ack != 1001 {
		t.Errorf("ack = %d, want 1001", r.Ack)
	}
}

func TestMakeRSTFlags(t *testing.T) {
	pkt := MakeRST(ip.AddrFrom4(2), ip.AddrFrom4(1), 22, 40000, 0, 1001)
	_, tcph, _, err := DecodeTCP4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !tcph.HasFlag(FlagRST) || tcph.HasFlag(FlagSYN) {
		t.Errorf("flags = %#x", tcph.Flags)
	}
}

func TestSerializeDecodePropertyRoundTrip(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		pkt := SerializeTCP4(
			&IPv4Header{Src: ip.AddrFrom4(src), Dst: ip.AddrFrom4(dst), TTL: 64},
			&TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags},
			payload,
		)
		iph, tcph, pl, err := DecodeTCP4(pkt)
		if err != nil {
			return false
		}
		return iph.Src == ip.AddrFrom4(src) && iph.Dst == ip.AddrFrom4(dst) &&
			tcph.SrcPort == sp && tcph.DstPort == dp &&
			tcph.Seq == seq && tcph.Ack == ack && tcph.Flags == flags &&
			string(pl) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummary(t *testing.T) {
	pkt := MakeSYN(ip.MustParseAddr("1.2.3.4"), ip.MustParseAddr("5.6.7.8"), 40000, 80, 7, 0)
	s := Summary(pkt)
	for _, want := range []string{"1.2.3.4:40000", "5.6.7.8:80", "[S]"} {
		if !strings.Contains(s, want) {
			t.Errorf("Summary %q missing %q", s, want)
		}
	}
	if s := Summary([]byte{1, 2, 3}); !strings.Contains(s, "invalid") {
		t.Errorf("Summary of garbage = %q", s)
	}
}

func TestSerializePanicsOnUnpaddedOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unpadded options did not panic")
		}
	}()
	SerializeTCP4(&IPv4Header{Src: ip.AddrFrom4(1), Dst: ip.AddrFrom4(2)}, &TCPHeader{Options: []byte{1, 2, 3}}, nil)
}

func BenchmarkMakeSYN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MakeSYN(ip.AddrFrom4(uint32(i)), ip.AddrFrom4(uint32(i*7)), 40000, 80, uint32(i), uint16(i))
	}
}

func BenchmarkDecodeTCP4(b *testing.B) {
	pkt := MakeSYNACK(ip.AddrFrom4(1), ip.AddrFrom4(2), 80, 40000, 5, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeTCP4(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- IPv6 tests ---

func TestSerializeDecode6RoundTrip(t *testing.T) {
	src, dst := ip.MustParseAddr("2001:db8::1"), ip.MustParseAddr("2001:db8:5::9")
	pkt := SerializeTCP6(
		&IPv6Header{Src: src, Dst: dst, FlowLabel: 0x2345, HopLimit: 64},
		&TCPHeader{
			SrcPort: 54321, DstPort: 443,
			Seq: 0xdeadbeef, Ack: 0x12345678,
			Flags: FlagSYN | FlagACK, Window: 29200,
			Options: []byte{2, 4, 5, 180},
		},
		[]byte("hello"),
	)
	ip6, tcph, payload, err := DecodeTCP6(pkt)
	if err != nil {
		t.Fatalf("DecodeTCP6: %v", err)
	}
	if ip6.Src != src || ip6.Dst != dst || ip6.FlowLabel != 0x2345 {
		t.Errorf("IPv6 header mismatch: %+v", ip6)
	}
	if tcph.SrcPort != 54321 || tcph.DstPort != 443 || tcph.Seq != 0xdeadbeef {
		t.Errorf("TCP header mismatch: %+v", tcph)
	}
	if string(payload) != "hello" {
		t.Errorf("payload = %q", payload)
	}
}

func TestDecode6RejectsCorruptedTCPChecksum(t *testing.T) {
	pkt := MakeSYN(ip.MustParseAddr("2001:db8::1"), ip.MustParseAddr("2001:db8::2"), 1000, 80, 42, 7)
	pkt[len(pkt)-1] ^= 0xff
	if _, _, _, err := DecodeTCP6(pkt); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
	// Corrupting an address breaks the pseudo-header sum even though IPv6
	// has no IP-level checksum.
	pkt2 := MakeSYN(ip.MustParseAddr("2001:db8::1"), ip.MustParseAddr("2001:db8::2"), 1000, 80, 42, 7)
	pkt2[9] ^= 0xff
	if _, _, _, err := DecodeTCP6(pkt2); err != ErrBadChecksum {
		t.Errorf("addr corruption: err = %v, want ErrBadChecksum", err)
	}
}

func TestDecode6RejectsTruncatedAndVersion(t *testing.T) {
	pkt := MakeSYN(ip.MustParseAddr("2001:db8::1"), ip.MustParseAddr("2001:db8::2"), 1000, 80, 42, 7)
	for _, n := range []int{0, 10, 39, 45, len(pkt) - 1} {
		if _, _, _, err := DecodeTCP6(pkt[:n]); err == nil {
			t.Errorf("decode of %d bytes succeeded", n)
		}
	}
	v4pkt := MakeSYN(ip.AddrFrom4(1), ip.AddrFrom4(2), 1000, 80, 42, 7)
	if _, _, _, err := DecodeTCP6(v4pkt); err != ErrBadVersion {
		t.Errorf("v4 into DecodeTCP6: err = %v, want ErrBadVersion", err)
	}
	if _, _, _, err := DecodeTCP4(pkt); err != ErrBadVersion {
		t.Errorf("v6 into DecodeTCP4: err = %v, want ErrBadVersion", err)
	}
}

func TestMakeSYN6FollowsFamily(t *testing.T) {
	src, dst := ip.MustParseAddr("2001:db8::1"), ip.MustParseAddr("2001:db8::2")
	pkt := MakeSYN(src, dst, 40000, 80, 0xcafebabe, 99)
	if Version(pkt) != 6 {
		t.Fatalf("Version = %d, want 6", Version(pkt))
	}
	ip6, tcph, _, err := DecodeTCP6(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if ip6.Src != src || ip6.Dst != dst || ip6.FlowLabel != 99 {
		t.Errorf("header: %+v", ip6)
	}
	if !tcph.HasFlag(FlagSYN) || tcph.Seq != 0xcafebabe {
		t.Errorf("tcp: %+v", tcph)
	}
	// SYN-ACK and RST follow the family too, and Summary sniffs it.
	resp := MakeSYNACK(dst, src, 80, 40000, 7, tcph.Seq+1)
	if Version(resp) != 6 {
		t.Error("MakeSYNACK did not follow family")
	}
	if s := Summary(resp); !strings.Contains(s, "2001:db8::2:80") {
		t.Errorf("Summary = %q", s)
	}
	rst := MakeRST(dst, src, 80, 40000, 7, tcph.Seq+1)
	if _, r, _, err := DecodeTCP6(rst); err != nil || !r.HasFlag(FlagRST) {
		t.Errorf("v6 RST: %v", err)
	}
}

func TestSerializeDecode6PropertyRoundTrip(t *testing.T) {
	f := func(hi1, lo1, hi2, lo2 uint64, sp, dp uint16, seq uint32, flags uint8, payload []byte) bool {
		src, dst := ip.AddrFrom128(hi1, lo1), ip.AddrFrom128(hi2, lo2)
		if src.Is4() || dst.Is4() {
			return true // mapped range would serialize as v6 but compare as v4
		}
		pkt := SerializeTCP6(
			&IPv6Header{Src: src, Dst: dst},
			&TCPHeader{SrcPort: sp, DstPort: dp, Seq: seq, Flags: flags},
			payload,
		)
		ip6, tcph, pl, err := DecodeTCP6(pkt)
		if err != nil {
			return false
		}
		return ip6.Src == src && ip6.Dst == dst &&
			tcph.SrcPort == sp && tcph.DstPort == dp &&
			tcph.Seq == seq && tcph.Flags == flags &&
			string(pl) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeTCP6(b *testing.B) {
	pkt := MakeSYNACK(ip.MustParseAddr("2001:db8::1"), ip.MustParseAddr("2001:db8::2"), 80, 40000, 5, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := DecodeTCP6(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
