package packet

import (
	"encoding/binary"

	"repro/internal/ip"
)

// IPv6Header is a decoded IPv6 fixed header (RFC 8200). Extension headers
// are not used by the scanner and are rejected on decode (NextHeader must
// be TCP); IPv6 has no header checksum — integrity rides on the TCP
// pseudo-header sum.
type IPv6Header struct {
	TrafficClass uint8
	FlowLabel    uint32 // 20 bits
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     ip.Addr
}

// SerializeTCP6 builds a complete IPv6+TCP packet with a correct TCP
// checksum, the v6 analog of SerializeTCP4.
func SerializeTCP6(ip6 *IPv6Header, tcph *TCPHeader, payload []byte) []byte {
	return SerializeTCP6Into(nil, ip6, tcph, payload)
}

// SerializeTCP6Into is SerializeTCP6 writing into buf's storage when it has
// the capacity (see SerializeTCP4Into); the returned slice aliases buf.
func SerializeTCP6Into(buf []byte, ip6 *IPv6Header, tcph *TCPHeader, payload []byte) []byte {
	tcpLen := 20 + len(tcph.Options) + len(payload)
	if len(tcph.Options)%4 != 0 {
		panic("packet: TCP options must be padded to 4 bytes")
	}
	totalLen := 40 + tcpLen
	if cap(buf) >= totalLen {
		buf = buf[:totalLen]
	} else {
		buf = make([]byte, totalLen)
	}

	// IPv6 fixed header.
	binary.BigEndian.PutUint32(buf[0:],
		6<<28|uint32(ip6.TrafficClass)<<20|ip6.FlowLabel&0xfffff)
	binary.BigEndian.PutUint16(buf[4:], uint16(tcpLen))
	buf[6] = ProtoTCP
	hop := ip6.HopLimit
	if hop == 0 {
		hop = 64
	}
	buf[7] = hop
	binary.BigEndian.PutUint64(buf[8:], ip6.Src.Hi())
	binary.BigEndian.PutUint64(buf[16:], ip6.Src.Lo())
	binary.BigEndian.PutUint64(buf[24:], ip6.Dst.Hi())
	binary.BigEndian.PutUint64(buf[32:], ip6.Dst.Lo())

	// TCP header: identical layout to the v4 path, different pseudo-sum.
	t := buf[40:]
	binary.BigEndian.PutUint16(t[0:], tcph.SrcPort)
	binary.BigEndian.PutUint16(t[2:], tcph.DstPort)
	binary.BigEndian.PutUint32(t[4:], tcph.Seq)
	binary.BigEndian.PutUint32(t[8:], tcph.Ack)
	dataOff := (20 + len(tcph.Options)) / 4
	t[12] = byte(dataOff << 4)
	t[13] = tcph.Flags
	win := tcph.Window
	if win == 0 {
		win = 65535
	}
	binary.BigEndian.PutUint16(t[14:], win)
	binary.BigEndian.PutUint16(t[18:], tcph.Urgent)
	copy(t[20:], tcph.Options)
	copy(t[20+len(tcph.Options):], payload)
	t[16], t[17] = 0, 0 // checksum field must be zero while summing
	binary.BigEndian.PutUint16(t[16:], Checksum(t[:tcpLen], pseudoHeaderSum6(ip6.Src, ip6.Dst, tcpLen)))

	return buf
}

// DecodeTCP6 parses and validates an IPv6+TCP packet, returning both
// headers and the payload.
func DecodeTCP6(data []byte) (*IPv6Header, *TCPHeader, []byte, error) {
	ip6, tcph := new(IPv6Header), new(TCPHeader)
	payload, err := DecodeTCP6Into(ip6, tcph, data)
	if err != nil {
		if ip6.NextHeader == 0 {
			return nil, nil, nil, err
		}
		return ip6, nil, nil, err
	}
	return ip6, tcph, payload, nil
}

// DecodeTCP6Into is DecodeTCP6 decoding into caller-provided headers so the
// hot reply-validation loop keeps both on the stack (see DecodeTCP4Into).
// The payload and tcph.Options alias data.
func DecodeTCP6Into(ip6 *IPv6Header, tcph *TCPHeader, data []byte) ([]byte, error) {
	*ip6 = IPv6Header{}
	*tcph = TCPHeader{}
	if len(data) < 40 {
		return nil, ErrTruncated
	}
	if data[0]>>4 != 6 {
		return nil, ErrBadVersion
	}
	vtf := binary.BigEndian.Uint32(data[0:])
	*ip6 = IPv6Header{
		TrafficClass: uint8(vtf >> 20),
		FlowLabel:    vtf & 0xfffff,
		PayloadLen:   binary.BigEndian.Uint16(data[4:]),
		NextHeader:   data[6],
		HopLimit:     data[7],
		Src:          ip.AddrFrom128(binary.BigEndian.Uint64(data[8:]), binary.BigEndian.Uint64(data[16:])),
		Dst:          ip.AddrFrom128(binary.BigEndian.Uint64(data[24:]), binary.BigEndian.Uint64(data[32:])),
	}
	if ip6.NextHeader != ProtoTCP {
		return nil, ErrNotTCP
	}
	if int(ip6.PayloadLen) > len(data)-40 || int(ip6.PayloadLen) < 20 {
		return nil, ErrTruncated
	}
	seg := data[40 : 40+int(ip6.PayloadLen)]
	dataOff := int(seg[12]>>4) * 4
	if dataOff < 20 || dataOff > len(seg) {
		return nil, ErrTruncated
	}
	if Checksum(seg, pseudoHeaderSum6(ip6.Src, ip6.Dst, len(seg))) != 0 {
		return nil, ErrBadChecksum
	}
	*tcph = TCPHeader{
		SrcPort:  binary.BigEndian.Uint16(seg[0:]),
		DstPort:  binary.BigEndian.Uint16(seg[2:]),
		Seq:      binary.BigEndian.Uint32(seg[4:]),
		Ack:      binary.BigEndian.Uint32(seg[8:]),
		DataOff:  dataOff,
		Flags:    seg[13],
		Window:   binary.BigEndian.Uint16(seg[14:]),
		Checksum: binary.BigEndian.Uint16(seg[16:]),
		Urgent:   binary.BigEndian.Uint16(seg[18:]),
	}
	if dataOff > 20 {
		tcph.Options = seg[20:dataOff]
	}
	return seg[dataOff:], nil
}

// Version returns the IP version nibble of a raw packet (0 when data is
// empty) — the one-byte sniff the fabric uses to route a frame to the
// right decoder.
func Version(data []byte) int {
	if len(data) == 0 {
		return 0
	}
	return int(data[0] >> 4)
}
