package experiment

import (
	"context"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/scenario"
	"repro/internal/world"
)

// The full-study fixture is expensive (~6s); build it once per test binary.
var (
	fixOnce sync.Once
	fixStu  *Study
	fixDS   *results.Dataset
	fixErr  error
)

func fixture(t *testing.T) (*Study, *results.Dataset) {
	t.Helper()
	fixOnce.Do(func() {
		fixStu, fixErr = NewStudy(context.Background(), Config{WorldSpec: world.TestSpec(42), IncludeCarinet: true})
		if fixErr != nil {
			return
		}
		fixDS, fixErr = fixStu.Run(context.Background())
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixStu, fixDS
}

func TestStudyProducesAllScans(t *testing.T) {
	_, ds := fixture(t)
	for _, p := range proto.All() {
		for trial := 0; trial < 3; trial++ {
			for _, o := range origin.StudySet() {
				if ds.Scan(o, p, trial) == nil {
					t.Fatalf("missing scan %v/%v/%d", o, p, trial)
				}
			}
		}
	}
	// Carinet scanned trial 0 only.
	if ds.Scan(origin.CARINET, proto.HTTP, 0) == nil {
		t.Error("Carinet trial 0 missing")
	}
	if ds.Scan(origin.CARINET, proto.HTTP, 1) != nil {
		t.Error("Carinet should not scan trial 1")
	}
}

func TestGroundTruthNearWorldPopulation(t *testing.T) {
	st, ds := fixture(t)
	for _, p := range proto.All() {
		for trial := 0; trial < 3; trial++ {
			gt := len(ds.GroundTruth(p, trial))
			pop := st.World.HostCount(p)
			// Churn keeps a slice of hosts offline each trial.
			if gt < pop*85/100 || gt > pop {
				t.Errorf("%v trial %d: ground truth %d vs population %d", p, trial, gt, pop)
			}
		}
	}
}

func TestNoOriginAchievesFullCoverage(t *testing.T) {
	// §3: "No single origin ... achieves greater coverage than 98% of
	// HTTP, 99% of HTTPS, or 92% of SSH hosts in any trial" — at our
	// scale, assert every origin misses something and coverage is sane.
	_, ds := fixture(t)
	for _, p := range proto.All() {
		for trial := 0; trial < 3; trial++ {
			for _, o := range origin.StudySet() {
				cov := ds.Coverage(o, p, trial, false)
				if cov >= 1.0 {
					t.Errorf("%v/%v/%d coverage = 1.0: nothing missed", o, p, trial)
				}
				if cov < 0.70 {
					t.Errorf("%v/%v/%d coverage = %v: implausibly low", o, p, trial, cov)
				}
			}
		}
	}
}

func TestCensysSeesFewerHTTPHostsThanAcademics(t *testing.T) {
	// Figure 1 / §4.1: Censys's blocking makes it the worst HTTP origin.
	_, ds := fixture(t)
	tab := analysis.Coverage(ds, proto.HTTP)
	cen := tab.Mean(origin.CEN, false)
	for _, o := range []origin.ID{origin.AU, origin.BR, origin.DE, origin.JP, origin.US1, origin.US64} {
		if m := tab.Mean(o, false); m <= cen {
			t.Errorf("%v mean %.4f should exceed Censys %.4f", o, m, cen)
		}
	}
}

func TestSSHCoverageLowerThanHTTP(t *testing.T) {
	// Figure 1: origins see ~10% fewer SSH hosts than HTTP(S).
	_, ds := fixture(t)
	http := analysis.Coverage(ds, proto.HTTP)
	ssh := analysis.Coverage(ds, proto.SSH)
	lower := 0
	for _, o := range origin.StudySet() {
		if ssh.Mean(o, false) < http.Mean(o, false) {
			lower++
		}
	}
	if lower < 6 {
		t.Errorf("only %d/7 origins have lower SSH coverage than HTTP", lower)
	}
}

func TestUS64BestLongTermCoverage(t *testing.T) {
	// §4.3: US64 consistently has the fewest long-term inaccessible
	// hosts (IDS evasion + ABCDE notwithstanding).
	_, ds := fixture(t)
	c := analysis.NewClassifier(ds, proto.HTTP)
	us64 := len(c.HostsOfClass(origin.US64, analysis.ClassLongTerm))
	cen := len(c.HostsOfClass(origin.CEN, analysis.ClassLongTerm))
	if cen <= us64 {
		t.Errorf("Censys long-term (%d) should far exceed US64 (%d)", cen, us64)
	}
	worse := 0
	for _, o := range []origin.ID{origin.AU, origin.BR, origin.DE, origin.JP, origin.CEN} {
		if len(c.HostsOfClass(o, analysis.ClassLongTerm)) > us64 {
			worse++
		}
	}
	if worse < 4 {
		t.Errorf("US64 should have near-minimal long-term loss (%d worse origins)", worse)
	}
}

func TestTransientDominatesMissingHosts(t *testing.T) {
	// §3: transient issues account for about half of missing hosts and
	// mostly affect individual hosts, not whole /24s.
	_, ds := fixture(t)
	c := analysis.NewClassifier(ds, proto.HTTP)
	bds := analysis.MissingBreakdown(c)
	var trans, transNet, total int
	for _, b := range bds {
		if b.Origin == origin.CEN || b.Origin == origin.CARINET {
			continue // Censys's blocking dwarfs transience, as in the paper
		}
		trans += b.Counts[analysis.CatTransientHost] + b.Counts[analysis.CatTransientNet]
		transNet += b.Counts[analysis.CatTransientNet]
		total += b.TotalMissing()
	}
	if total == 0 {
		t.Fatal("no missing hosts at all")
	}
	if frac := float64(trans) / float64(total); frac < 0.30 {
		t.Errorf("transient fraction %.2f, want dominant (paper: ~52%%)", frac)
	}
	if transNet > trans/2 {
		t.Errorf("network-level transient %d of %d: should be mostly host-level", transNet, trans)
	}
}

func TestMcNemarSignificantBetweenOrigins(t *testing.T) {
	// §3: statistically significant differences between all origin pairs.
	_, ds := fixture(t)
	pairs := analysis.PairwiseMcNemar(ds, proto.HTTP, 0)
	significant := 0
	for _, pr := range pairs {
		if pr.PAdjusted < 0.001 {
			significant++
		}
	}
	// The paper's dataset has 58M hosts; at the ~3k-host test scale many
	// origin pairs have too few discordant hosts for statistical power,
	// so require only that a solid fraction of pairs separate clearly.
	if significant < len(pairs)/3 {
		t.Errorf("only %d/%d pairs significant", significant, len(pairs))
	}
}

func TestBothProbesLostCorrelated(t *testing.T) {
	// §7: in ≥93% of loss cases both probes are lost. Assert strong
	// correlation (>2/3) for most origins at our scale.
	_, ds := fixture(t)
	good := 0
	for _, o := range origin.StudySet() {
		ps := analysis.Probes(ds, proto.HTTP, o, 0)
		if ps.LostAtLeastOne == 0 {
			continue
		}
		if ps.BothLostPortion > 0.66 {
			good++
		}
	}
	if good < 5 {
		t.Errorf("probe loss not correlated enough: %d/7 origins above 2/3", good)
	}
}

func TestMultiOriginRecoversCoverage(t *testing.T) {
	// §7 / Figure 15: 2–3 origins recover most loss with low variance.
	_, ds := fixture(t)
	levels, err := analysis.MultiOrigin(context.Background(), ds, proto.HTTP, origin.StudySet(), false)
	if err != nil {
		t.Fatal(err)
	}
	if levels[1].Median <= levels[0].Median {
		t.Errorf("2-origin median %.4f should beat 1-origin %.4f", levels[1].Median, levels[0].Median)
	}
	if levels[2].Median <= levels[1].Median {
		t.Errorf("3-origin median should beat 2-origin")
	}
	if levels[2].Sigma >= levels[0].Sigma {
		t.Errorf("3-origin σ %.5f should be far below 1-origin σ %.5f", levels[2].Sigma, levels[0].Sigma)
	}
	if levels[2].Median < 0.985 {
		t.Errorf("3-origin median coverage %.4f, want ≥ 0.985", levels[2].Median)
	}
}

func TestAlibabaTemporalBlockingSSH(t *testing.T) {
	// §6 / Figure 12: single-IP origins see Alibaba SSH resets late in
	// the scan; US64 does not.
	st, ds := fixture(t)
	topo := analysis.WorldTopo{W: st.World}
	ases := st.Scenario.Alibaba.ASes
	tl := analysis.TemporalTimeline(ds, topo, ases, origin.US1, 0, 21)
	early, late := 0, 0
	for _, h := range tl {
		if h.Hour < 9 {
			early += h.Reset
		} else {
			late += h.Reset
		}
	}
	if late == 0 {
		t.Error("US1 saw no late-scan Alibaba resets")
	}
	if early > late {
		t.Errorf("resets should concentrate after detection: early=%d late=%d", early, late)
	}
	tl64 := analysis.TemporalTimeline(ds, topo, ases, origin.US64, 0, 21)
	resets64 := 0
	for _, h := range tl64 {
		resets64 += h.Reset
	}
	if resets64 > late/4 {
		t.Errorf("US64 should largely evade temporal blocking: %d resets", resets64)
	}
}

func TestSSHCausesIncludeProbabilisticBlocking(t *testing.T) {
	// §6 / Figure 14: MaxStartups-style probabilistic blocking is a
	// major cause of missing SSH hosts.
	st, ds := fixture(t)
	c := analysis.NewClassifier(ds, proto.SSH)
	bks := analysis.SSHCauses(c, analysis.WorldTopo{W: st.World}, st.Scenario.Alibaba.ASes)
	for _, b := range bks {
		if b.Origin != origin.US1 {
			continue
		}
		if b.Missing == 0 {
			t.Fatal("US1 missed no SSH hosts")
		}
		frac := float64(b.Counts[analysis.CauseProbabilistic]) / float64(b.Missing)
		if frac < 0.15 {
			t.Errorf("probabilistic cause fraction %.2f, want substantial (paper: 32–63%%)", frac)
		}
	}
}

func TestSSHRetryCurvesIncrease(t *testing.T) {
	// §6 / Figure 13: retrying the SSH handshake raises success.
	st, ds := fixture(t)
	curves, err := st.SSHRetry(context.Background(), ds, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) == 0 {
		t.Fatal("no retry curves")
	}
	improved := 0
	for _, c := range curves {
		if len(c.Success) != 9 {
			t.Fatalf("curve has %d points", len(c.Success))
		}
		if c.Success[8] >= c.Success[0] {
			improved++
		}
		if c.Success[8] < c.Success[0] {
			t.Logf("AS %v (%s): %v", c.AS, c.ASName, c.Success)
		}
	}
	if improved < len(curves)-1 {
		t.Errorf("retries helped in only %d/%d ASes", improved, len(curves))
	}
}

func TestDeterministicStudy(t *testing.T) {
	// Same seed → identical coverage numbers.
	run := func() float64 {
		st, err := NewStudy(context.Background(), Config{
			WorldSpec: world.TestSpec(7), Trials: 1,
			Protocols: []proto.Protocol{proto.HTTP},
			Origins:   origin.Set{origin.AU, origin.CEN},
		})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := st.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return ds.Coverage(origin.AU, proto.HTTP, 0, false)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestFollowUpFreshCensysImproves(t *testing.T) {
	// §7 / Table 4b: Censys with a fresh IP gains >5% HTTP coverage.
	_, mainDS := fixture(t)
	mainTab := analysis.Coverage(mainDS, proto.HTTP)
	mainCov := mainTab.Mean(origin.CEN, false)

	_, fuDS, err := FollowUp(context.Background(), world.TestSpec(42))
	if err != nil {
		t.Fatal(err)
	}
	fuTab := analysis.Coverage(fuDS, proto.HTTP)
	fuCov := fuTab.Mean(origin.CEN, false)
	if fuCov <= mainCov+0.02 {
		t.Errorf("fresh-IP Censys %.4f should clearly beat blocked Censys %.4f", fuCov, mainCov)
	}
	// Co-located Tier-1 triad: worst (or near-worst) among 3-subsets.
	levels, err := analysis.MultiOrigin(context.Background(), fuDS, proto.HTTP, origin.FollowUpSet(), false)
	if err != nil {
		t.Fatal(err)
	}
	triad := analysis.CoverageOfCombo(fuDS, proto.HTTP,
		origin.Set{origin.HE, origin.NTTC, origin.TELIA}, false)
	k3 := levels[2]
	if triad > k3.Median {
		t.Errorf("co-located triad %.4f should be below the k=3 median %.4f", triad, k3.Median)
	}
	// But still within a respectable band of the median (paper: −0.4%).
	if k3.Median-triad > 0.03 {
		t.Errorf("triad %.4f too far below median %.4f", triad, k3.Median)
	}
}

func TestShardedScansPartitionAndMerge(t *testing.T) {
	// Two shards of the same scan cover disjoint target sets whose union
	// equals the unsharded scan's targets — ZMap sharding semantics.
	mk := func(shard, shards int) *results.ScanResult {
		st, err := NewStudy(context.Background(), Config{
			WorldSpec: world.TestSpec(13), Trials: 1,
			Protocols: []proto.Protocol{proto.HTTP},
			Origins:   origin.Set{origin.US1},
			Shard:     shard, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := st.ScanOne(context.Background(), origin.US1, proto.HTTP, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := mk(0, 1)
	s0, s1 := mk(0, 2), mk(1, 2)
	if s0.Targets+s1.Targets != full.Targets {
		t.Errorf("shard targets %d+%d != full %d", s0.Targets, s1.Targets, full.Targets)
	}
	// No host appears in both shards, and the union covers the full scan.
	merged := map[ip.Addr]bool{}
	s0.Each(func(r results.HostRecord) { merged[r.Addr] = true })
	overlap := 0
	s1.Each(func(r results.HostRecord) {
		if merged[r.Addr] {
			overlap++
		}
		merged[r.Addr] = true
	})
	if overlap != 0 {
		t.Errorf("%d hosts appear in both shards", overlap)
	}
	fullCount := 0
	missing := 0
	full.Each(func(r results.HostRecord) {
		fullCount++
		if !merged[r.Addr] {
			missing++
		}
	})
	// Loss draws depend on probe timing, which shifts slightly under
	// sharding; allow a small fringe but demand near-complete agreement.
	if missing > fullCount/50 {
		t.Errorf("merged shards miss %d/%d hosts of the full scan", missing, fullCount)
	}
}

func TestChurnProducesUnknownHosts(t *testing.T) {
	// With between-trial churn, some hosts are live in only one trial
	// and classify as unknown when missed (§2: temporal churn; §3:
	// hosts present in only one trial are labeled unknown), and the
	// per-trial ground-truth sizes differ as in Table 4a.
	_, ds := fixture(t)
	sizes := map[int]bool{}
	for trial := 0; trial < 3; trial++ {
		sizes[len(ds.GroundTruth(proto.HTTP, trial))] = true
	}
	if len(sizes) < 2 {
		t.Error("ground-truth sizes identical across trials despite churn")
	}
	c := analysis.NewClassifier(ds, proto.HTTP)
	unknown := 0
	for _, o := range origin.StudySet() {
		unknown += len(c.HostsOfClass(o, analysis.ClassUnknown))
	}
	if unknown == 0 {
		t.Error("churn produced no unknown classifications")
	}
}

func TestChurnDisableable(t *testing.T) {
	st, err := NewStudy(context.Background(), Config{
		WorldSpec: world.TestSpec(3), Trials: 2,
		Protocols:      []proto.Protocol{proto.HTTP},
		Origins:        origin.Set{origin.US1},
		ScenarioConfig: scenario.Config{ChurnRate: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Scenario.Churn.Rate != 0 {
		t.Errorf("churn rate = %v, want disabled", st.Scenario.Churn.Rate)
	}
	_ = ds
}
