package experiment

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/world"
	"repro/internal/zmap"
)

// cancelSink counts probe sends and cancels the run once armed and the
// send budget is spent — a deterministic way to interrupt a sweep mid-space.
type cancelSink struct {
	inner  zmap.PacketSink
	armed  *atomic.Bool
	sends  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c cancelSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	if c.armed.Load() && c.sends.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Send(src, pkt, t)
}

// TestCancelMidSweepSealsPartialDataset is the lifecycle acceptance test:
// canceling the context during the second scan's sweep stops the run with
// an ErrCanceled chain naming the interrupted (origin, proto, trial) and
// stage, while the dataset keeps every scan sealed before the cancellation.
func TestCancelMidSweepSealsPartialDataset(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var armed atomic.Bool
	var sends atomic.Int64
	cfg := Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols:   []proto.Protocol{proto.HTTP},
		Origins:     origin.Set{origin.US1, origin.CEN},
		Parallelism: 1,
		Hooks: pipeline.Hooks{
			After: func(_ context.Context, stage pipeline.Stage, err error) {
				if stage == pipeline.StageSeal && err == nil {
					// First scan sealed: cancel during the next sweep.
					armed.Store(true)
				}
			},
		},
		SinkWrapper: func(inner zmap.PacketSink) zmap.PacketSink {
			return cancelSink{inner: inner, armed: &armed, sends: &sends, after: 64, cancel: cancel}
		},
	}
	st, err := NewStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := st.Run(ctx)
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var serr *pipeline.ScanError
	if !errors.As(err, &serr) {
		t.Fatalf("err %v carries no ScanError", err)
	}
	if serr.Origin != origin.CEN || serr.Proto != proto.HTTP || serr.Trial != 0 {
		t.Errorf("interrupted tuple = %v/%v/%d, want CEN/http/0", serr.Origin, serr.Proto, serr.Trial)
	}
	if stage, ok := pipeline.InterruptedStage(err); !ok || stage != pipeline.StageSweep {
		t.Errorf("interrupted stage = %v (found=%v), want sweep", stage, ok)
	}
	if ds == nil {
		t.Fatal("canceled run returned no dataset")
	}
	if ds.Len() != 1 {
		t.Fatalf("partial dataset has %d scans, want 1", ds.Len())
	}
	if ds.Scan(origin.US1, proto.HTTP, 0) == nil {
		t.Error("the scan sealed before cancellation is missing from the dataset")
	}
}

// TestCancelParallelRunReturnsPartial exercises the same contract on the
// parallel engine: completed scans are sealed into the returned dataset and
// the error matches ErrCanceled.
func TestCancelParallelRunReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sealed atomic.Int64
	cfg := Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 2,
		Protocols:   []proto.Protocol{proto.HTTP},
		Origins:     origin.Set{origin.US1, origin.US64, origin.CEN},
		Parallelism: 2, ScanShards: 2,
		Hooks: pipeline.Hooks{
			After: func(_ context.Context, stage pipeline.Stage, err error) {
				if stage == pipeline.StageSeal && err == nil && sealed.Add(1) == 2 {
					cancel()
				}
			},
		},
	}
	st, err := NewStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := st.Run(ctx)
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ds == nil {
		t.Fatal("canceled run returned no dataset")
	}
	if ds.Len() < 2 {
		t.Errorf("partial dataset has %d scans, want >= 2 sealed before cancel", ds.Len())
	}
	if ds.Len() == 6 {
		t.Error("all scans completed: cancellation did not interrupt the run")
	}
}

// TestUncanceledRunIdenticalUnderLiveContext verifies the determinism
// contract: a run under a cancelable-but-never-canceled context is
// bit-identical to one under the background context (the cancellation
// checks must be pure reads).
func TestUncanceledRunIdenticalUnderLiveContext(t *testing.T) {
	run := func(ctx context.Context) *Study {
		st, err := NewStudy(ctx, Config{
			WorldSpec: world.Spec{Seed: 11, Scale: 0.00003}, Trials: 1,
			Protocols: []proto.Protocol{proto.HTTP},
			Origins:   origin.Set{origin.US1, origin.CEN},
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	bg := run(context.Background())
	dsBG, err := bg.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live := run(ctx)
	dsLive, err := live.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if diff := dsBG.Diff(dsLive); diff != "" {
		t.Errorf("live-context run differs from background run: %s", diff)
	}
}
