package experiment

// End-to-end IPv6 hitlist study: the same origins, the seeded v6 world,
// and scans that walk the hitlist instead of sweeping a space. These tests
// pin determinism (two identical configs → byte-identical datasets),
// serial/parallel equivalence, and the study outputs the v6 mode exists
// for — per-origin coverage and exclusivity over hitlist targets.

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/world"
)

func v6Config(seed uint64) Config {
	return Config{
		WorldSpec: world.Spec{Seed: seed},
		Family:    world.FamilyIPv6,
		V6Spec:    world.TestV6Spec(seed),
		Trials:    2,
		Protocols: []proto.Protocol{proto.HTTP, proto.SSH},
	}
}

var (
	v6Once sync.Once
	v6Stu  *Study
	v6DS   *results.Dataset
	v6Err  error
)

func v6Fixture(t *testing.T) (*Study, *results.Dataset) {
	t.Helper()
	v6Once.Do(func() {
		v6Stu, v6Err = NewStudy(context.Background(), v6Config(99))
		if v6Err != nil {
			return
		}
		v6DS, v6Err = v6Stu.Run(context.Background())
	})
	if v6Err != nil {
		t.Fatal(v6Err)
	}
	return v6Stu, v6DS
}

func TestV6StudyScansHitlistOnly(t *testing.T) {
	stu, ds := v6Fixture(t)
	hl := stu.World.Hitlist()
	inList := map[string]bool{}
	for _, a := range hl {
		inList[a.String()] = true
	}
	for _, o := range origin.StudySet() {
		s := ds.Scan(o, proto.HTTP, 0)
		if s == nil {
			t.Fatalf("missing v6 scan %v/HTTP/0", o)
		}
		if s.Targets != uint64(len(hl)) {
			t.Errorf("%v scanned %d targets, hitlist has %d", o, s.Targets, len(hl))
		}
		s.Each(func(r results.HostRecord) {
			if r.Addr.Is4() {
				t.Fatalf("%v recorded IPv4 address %v in a v6 scan", o, r.Addr)
			}
			if !inList[r.Addr.String()] {
				t.Fatalf("%v recorded %v, which is not on the hitlist", o, r.Addr)
			}
		})
	}
}

// TestV6StudyDeterministic is the v6 golden test: two independent studies
// from the same config produce byte-identical datasets — worldgen, hitlist
// shuffle, sweep, grab, and seal all included.
func TestV6StudyDeterministic(t *testing.T) {
	_, ds := v6Fixture(t)
	var a bytes.Buffer
	if err := ds.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	stu2, err := NewStudy(context.Background(), v6Config(99))
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := stu2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := ds2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical v6 studies produced different dataset bytes")
	}
}

// TestV6ParallelMatchesSerial is the v6 variant of the parallel-engine
// differential: the precomputed-schedule concurrent run must be
// bit-identical to the serial reference over the hitlist walk.
func TestV6ParallelMatchesSerial(t *testing.T) {
	_, serialDS := v6Fixture(t)
	cfg := v6Config(99)
	cfg.Parallelism = 4
	cfg.ScanShards = 3
	stu, err := NewStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	parDS, err := stu.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serialDS.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parDS.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("parallel v6 study diverged from the serial reference")
	}
}

// TestV6CoverageAndExclusivity checks the study answers the paper's
// question in v6 form: every origin sees a meaningful fraction of the
// hitlist's live hosts, no origin sees everything (origin bias exists),
// and exclusivity attribution sums over the same union the coverage uses.
func TestV6CoverageAndExclusivity(t *testing.T) {
	_, ds := v6Fixture(t)
	gt := ds.GroundTruth(proto.HTTP, 0)
	if len(gt) == 0 {
		t.Fatal("v6 ground truth empty")
	}
	for _, a := range gt {
		if a.Is4() {
			t.Fatalf("v6 ground truth contains IPv4 address %v", a)
		}
	}
	tab := analysis.Coverage(ds, proto.HTTP)
	for _, o := range origin.StudySet() {
		m := tab.Mean(o, false)
		if m <= 0.2 || m > 1 {
			t.Errorf("origin %v mean HTTP coverage %.3f outside (0.2, 1]", o, m)
		}
	}
	cls := analysis.NewClassifier(ds, proto.HTTP)
	ex := analysis.Exclusive(cls)
	total := 0
	for _, hosts := range ex.Accessible {
		total += len(hosts)
	}
	if total > len(cls.Union()) {
		t.Errorf("exclusive hosts %d exceed union %d", total, len(cls.Union()))
	}
}

// TestV6ExternalHitlist pins the Config.Hitlist override: a study scanning
// a caller-supplied subset of the world's hitlist targets exactly that
// subset.
func TestV6ExternalHitlist(t *testing.T) {
	stu, _ := v6Fixture(t)
	sub := stu.World.Hitlist()[:64]
	cfg := v6Config(99)
	cfg.Trials = 1
	cfg.Protocols = []proto.Protocol{proto.HTTP}
	cfg.Hitlist = sub
	stu2, err := NewStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := stu2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range origin.StudySet() {
		s := ds.Scan(o, proto.HTTP, 0)
		if s.Targets != uint64(len(sub)) {
			t.Errorf("%v scanned %d targets, want %d", o, s.Targets, len(sub))
		}
	}
}
