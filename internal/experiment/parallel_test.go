package experiment

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// equivalenceStudy runs one full study at the given parallelism and shard
// count. The origin set deliberately mixes the IDS-relevant identities:
// single-IP origins that cross detection thresholds, the 64-IP origin that
// evades them, and Carinet's trial-0-only scan (an ordering edge case).
// Every run carries a telemetry registry, so the equivalence it proves
// covers instrumented scans: telemetry must not perturb any result.
func equivalenceStudy(t *testing.T, par, shards int) (*Study, *results.Dataset) {
	t.Helper()
	// Tracing runs at full tilt — hierarchy, batch exemplars, and a live
	// flight recorder streaming spans to disk — so the equivalence also
	// proves the whole observability stack is a pure observer.
	reg := telemetry.New()
	rec, err := telemetry.NewRecorder(filepath.Join(t.TempDir(), telemetry.JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	reg.AttachRecorder(rec)
	t.Cleanup(func() {
		if err := reg.CloseRecorder(); err != nil {
			t.Errorf("closing flight recorder: %v", err)
		}
	})
	st, err := NewStudy(context.Background(), Config{
		WorldSpec:      world.Spec{Seed: 11, Scale: 0.00005},
		Trials:         2,
		Protocols:      []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:        origin.Set{origin.US1, origin.US64, origin.CEN},
		IncludeCarinet: true,
		Parallelism:    par,
		ScanShards:     shards,
		Telemetry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return st, ds
}

// TestParallelMatchesSerial is the parallel engine's core invariant: the
// same study config run serially (live stateful IDSes, one scan at a time,
// unsharded sweeps) and in parallel (precomputed IDS schedules, concurrent
// scans, sharded sweeps) must produce bit-for-bit identical datasets, and
// must leave the live IDS machines in identical end states.
func TestParallelMatchesSerial(t *testing.T) {
	stSerial, serial := equivalenceStudy(t, 1, 1)
	stPar, par := equivalenceStudy(t, 8, 1)
	_, sharded := equivalenceStudy(t, 8, 4)

	if serial.Len() == 0 {
		t.Fatal("serial study produced no scans")
	}
	if diff := serial.Diff(par); diff != "" {
		t.Errorf("Parallelism 8 differs from serial: %s", diff)
	}
	if diff := serial.Diff(sharded); diff != "" {
		t.Errorf("Parallelism 8 + ScanShards 4 differs from serial: %s", diff)
	}

	// Sub-experiments read the live IDS state after Run; the parallel
	// engine's committed state must match the serially-mutated one.
	for i, ser := range stSerial.Scenario.IDSes {
		parIDS := stPar.Scenario.IDSes[i]
		for _, o := range stSerial.World.Origins.All() {
			for _, src := range o.SourceIPs {
				for trial := 0; trial < stSerial.Config.Trials; trial++ {
					if got, want := parIDS.BlockedState(src, trial), ser.BlockedState(src, trial); got != want {
						t.Errorf("IDS %s: blocked(%v, trial %d) = %v after parallel run, %v after serial",
							ser.RuleName, src, trial, got, want)
					}
				}
			}
		}
	}
}
