package experiment

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// grabPathStudy runs the equivalence-shaped study (mixed IDS-relevant
// origins, HTTP+SSH so both banner families and the MaxStartups retry path
// are exercised, Carinet's trial-0 edge) with the grab path and execution
// mode under test. Retries > 0 makes the per-attempt Predial re-evaluation
// load-bearing.
func grabPathStudy(t *testing.T, reference bool, par, shards int) *results.Dataset {
	t.Helper()
	st, err := NewStudy(context.Background(), Config{
		WorldSpec:      world.Spec{Seed: 11, Scale: 0.00005},
		Trials:         2,
		Protocols:      []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:        origin.Set{origin.US1, origin.US64, origin.CEN},
		IncludeCarinet: true,
		Retries:        2,
		Parallelism:    par,
		ScanShards:     shards,
		GrabReference:  reference,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestGrabFastStudyMatchesReference is the sealed-dataset differential for
// the grab fast path: the same study run through the goroutine+vconn
// reference path and through the batched/inline fast path — serial and
// parallel+sharded — must seal bit-identical datasets.
func TestGrabFastStudyMatchesReference(t *testing.T) {
	ref := grabPathStudy(t, true, 1, 1)
	if ref.Len() == 0 {
		t.Fatal("reference study produced no scans")
	}
	fast := grabPathStudy(t, false, 1, 1)
	if diff := ref.Diff(fast); diff != "" {
		t.Errorf("fast path differs from reference (serial): %s", diff)
	}
	fastPar := grabPathStudy(t, false, 8, 4)
	if diff := ref.Diff(fastPar); diff != "" {
		t.Errorf("fast path differs from reference (parallel+sharded): %s", diff)
	}
}

// TestDialWrapperForcesReferencePath pins the fallback rule: a wrapped
// dialer does not satisfy zgrab.FastDialer, so every grab goes through the
// wrapper's Dial — wrappers observe the complete dial stream, and the
// wrapped run still seals the identical dataset.
func TestDialWrapperForcesReferencePath(t *testing.T) {
	var dials atomic.Int64
	st, err := NewStudy(context.Background(), Config{
		WorldSpec: world.Spec{Seed: 11, Scale: 0.00005},
		Trials:    1,
		Protocols: []proto.Protocol{proto.HTTP},
		Origins:   origin.Set{origin.US1},
		DialWrapper: func(d zgrab.Dialer) zgrab.Dialer {
			return countingDialer{inner: d, n: &dials}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if dials.Load() == 0 {
		t.Error("wrapped dialer saw no Dials: fast path bypassed the wrapper")
	}
	st2, err := NewStudy(context.Background(), Config{
		WorldSpec: world.Spec{Seed: 11, Scale: 0.00005},
		Trials:    1,
		Protocols: []proto.Protocol{proto.HTTP},
		Origins:   origin.Set{origin.US1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := st2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if diff := ds.Diff(ds2); diff != "" {
		t.Errorf("wrapped (reference-path) run differs from fast-path run: %s", diff)
	}
}

type countingDialer struct {
	inner zgrab.Dialer
	n     *atomic.Int64
}

func (c countingDialer) Dial(ctx context.Context, dst ip.Addr, port uint16, t time.Duration, attempt int) (net.Conn, error) {
	c.n.Add(1)
	return c.inner.Dial(ctx, dst, port, t, attempt)
}
