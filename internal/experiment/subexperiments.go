package experiment

import (
	"context"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/asn"
	"repro/internal/fabric"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/rng"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// RetryCurve is Figure 13's output for one AS: the fraction of responding
// IPs that completed an SSH handshake within each retry budget.
type RetryCurve struct {
	AS      asn.ASN
	ASName  string
	Hosts   int
	Success []float64 // Success[r]: success fraction with r retries allowed
}

// SSHRetry reproduces the §6 retry experiment: from US1, iteratively grab
// all SSH hosts in a candidate sub-network of each of the top ASes by
// transiently missed SSH hosts, increasing the retry budget each pass.
// Cancellation is checked between retry-budget passes; a canceled run
// returns the curves completed so far with pipeline.ErrCanceled.
func (st *Study) SSHRetry(ctx context.Context, ds *results.Dataset, topASes int, maxRetries int) ([]RetryCurve, error) {
	cls := analysis.NewClassifier(ds, proto.SSH)
	topo := analysis.WorldTopo{W: st.World}
	spreads := analysis.TransientLossSpread(cls, topo, 3)
	// Rank ASes by transiently missed SSH hosts from US1.
	sort.Slice(spreads, func(i, j int) bool {
		ti := spreads[i].Rate[origin.US1] * float64(spreads[i].Hosts)
		tj := spreads[j].Rate[origin.US1] * float64(spreads[j].Hosts)
		return ti > tj
	})
	if topASes > len(spreads) {
		topASes = len(spreads)
	}

	org := st.World.Origins.Get(origin.US1)
	// The sub-experiment runs after the main study; use a fresh trial
	// index past the main trials so the draws are independent.
	trial := st.Config.Trials
	fab := fabric.New(&fabric.Config{
		World:      st.World,
		Engine:     st.Scenario.Engine,
		IDSes:      policy.Detectors(st.Scenario.IDSes),
		Loss:       st.Scenario.Loss,
		Outages:    st.Scenario.Outages[proto.SSH],
		NumOrigins: 1, // the retry experiment scans alone
		Hosts:      st.Scenario.Hosts,
	}, org, trial)

	var curves []RetryCurve
	for _, sp := range spreads[:topASes] {
		// Candidate sub-network: the AS's busiest /24 by SSH hosts.
		hosts := st.sshHostsOfBusiest24(sp.AS)
		if len(hosts) == 0 {
			continue
		}
		curve := RetryCurve{AS: sp.AS, ASName: sp.ASName, Hosts: len(hosts)}
		for r := 0; r <= maxRetries; r++ {
			if err := ctx.Err(); err != nil {
				return curves, pipeline.Canceled(err)
			}
			grabber := &zgrab.Grabber{
				Dialer:  fab,
				Retries: r,
				Key:     rng.NewKey(st.World.Spec.Seed).Derive("ssh-retry").DeriveN("r", uint64(r)),
			}
			succ := 0
			for _, h := range hosts {
				// Mid-scan probe time, away from temporal-blocking
				// windows' detection edges.
				if g := grabber.Grab(ctx, proto.SSH, h, 5*time.Hour); g.Success {
					succ++
				}
			}
			curve.Success = append(curve.Success, float64(succ)/float64(len(hosts)))
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// sshHostsOfBusiest24 returns the SSH hosts of the AS's /24 with the most
// SSH hosts.
func (st *Study) sshHostsOfBusiest24(as asn.ASN) []ip.Addr {
	by24 := map[ip.Prefix][]ip.Addr{}
	for _, idx := range st.World.HostsInAS(as) {
		h := st.World.Hosts()[idx]
		if !h.Services.Has(proto.SSH) {
			continue
		}
		k := h.Addr.Slash24()
		by24[k] = append(by24[k], h.Addr)
	}
	var best []ip.Addr
	var bestKey ip.Prefix
	for k, hs := range by24 {
		if len(hs) > len(best) || (len(hs) == len(best) && k.First().Less(bestKey.First())) {
			best, bestKey = hs, k
		}
	}
	return best
}

// FollowUp runs the September 2020 follow-up experiment (§7, Table 4b,
// Figure 18): two HTTP trials from AU, DE, JP, US1, Censys (with a fresh
// IP), and three co-located Tier-1 transits at Equinix CHI4.
func FollowUp(ctx context.Context, spec world.Spec) (*Study, *results.Dataset, error) {
	st, err := NewStudy(ctx, Config{
		WorldSpec:     spec,
		Trials:        2,
		Origins:       origin.FollowUpSet(),
		Protocols:     []proto.Protocol{proto.HTTP},
		Probes:        2,
		FreshCensysIP: true,
	})
	if err != nil {
		return nil, nil, err
	}
	ds, err := st.Run(ctx)
	if err != nil {
		return st, ds, err
	}
	return st, ds, nil
}
