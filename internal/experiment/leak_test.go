package experiment

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/world"
	"repro/internal/zgrab"
	"repro/internal/zmap"
)

// waitNoLeak polls until the goroutine count returns to the pre-test
// baseline (plus scheduler slack) or the deadline passes.
func waitNoLeak(t *testing.T, before int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Errorf("goroutines before=%d after=%d: leaked %s", before, runtime.NumGoroutine(), what)
}

// TestNoGoroutineLeak verifies that a complete study — thousands of virtual
// connections served by per-connection goroutines — leaves no goroutines
// behind: every hostsim server must terminate when its grab closes or
// aborts the pipe.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	st, err := NewStudy(context.Background(), Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols: []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:   origin.Set{origin.US1, origin.CEN},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitNoLeak(t, before, "servers")
}

// TestNoGoroutineLeakParallel is the same check against the parallel engine:
// the scan worker pool, per-scan sweep shards, and batched grab workers must
// all drain when the study completes.
func TestNoGoroutineLeakParallel(t *testing.T) {
	before := runtime.NumGoroutine()
	st, err := NewStudy(context.Background(), Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols:   []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:     origin.Set{origin.US1, origin.CEN},
		Parallelism: 4, ScanShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitNoLeak(t, before, "workers")
}

// leakCancelSink cancels the run after a fixed number of probe sends.
type leakCancelSink struct {
	inner  zmap.PacketSink
	sends  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c leakCancelSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	if c.sends.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Send(src, pkt, t)
}

// TestNoGoroutineLeakCancelMidSweep cancels the study while a sharded sweep
// is mid-space under the parallel engine: the scan worker pool, the sweep
// shard goroutines, and any live hostsim servers must all drain.
func TestNoGoroutineLeakCancelMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sends atomic.Int64
	st, err := NewStudy(ctx, Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols:   []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:     origin.Set{origin.US1, origin.CEN},
		Parallelism: 4, ScanShards: 2,
		SinkWrapper: func(inner zmap.PacketSink) zmap.PacketSink {
			return leakCancelSink{inner: inner, sends: &sends, after: 200, cancel: cancel}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(ctx); !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	waitNoLeak(t, before, "sweep shards or workers after cancellation")
}

// leakCancelDialer cancels the run after a fixed number of L7 dials.
type leakCancelDialer struct {
	inner  zgrab.Dialer
	dials  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c leakCancelDialer) Dial(ctx context.Context, dst ip.Addr, port uint16, t time.Duration, attempt int) (net.Conn, error) {
	if c.dials.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Dial(ctx, dst, port, t, attempt)
}

// TestNoGoroutineLeakCancelMidGrab cancels the study while the grab worker
// pool is mid-pass: grab workers and the per-connection hostsim server
// goroutines behind in-flight dials must all terminate.
func TestNoGoroutineLeakCancelMidGrab(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var dials atomic.Int64
	st, err := NewStudy(ctx, Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols:   []proto.Protocol{proto.HTTP},
		Origins:     origin.Set{origin.US1, origin.CEN},
		Parallelism: 1,
		DialWrapper: func(inner zgrab.Dialer) zgrab.Dialer {
			return leakCancelDialer{inner: inner, dials: &dials, after: 5, cancel: cancel}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Run(ctx)
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stage, ok := pipeline.InterruptedStage(err); !ok || stage != pipeline.StageGrab {
		t.Errorf("interrupted stage = %v (found=%v), want grab", stage, ok)
	}
	waitNoLeak(t, before, "grab workers or servers after cancellation")
}
