package experiment

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/world"
)

// TestNoGoroutineLeak verifies that a complete study — thousands of virtual
// connections served by per-connection goroutines — leaves no goroutines
// behind: every hostsim server must terminate when its grab closes or
// aborts the pipe.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	st, err := NewStudy(Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols: []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:   origin.Set{origin.US1, origin.CEN},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Errorf("goroutines before=%d after=%d: leaked servers", before, runtime.NumGoroutine())
}

// TestNoGoroutineLeakParallel is the same check against the parallel engine:
// the scan worker pool, per-scan sweep shards, and batched grab workers must
// all drain when the study completes.
func TestNoGoroutineLeakParallel(t *testing.T) {
	before := runtime.NumGoroutine()
	st, err := NewStudy(Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols:   []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:     origin.Set{origin.US1, origin.CEN},
		Parallelism: 4, ScanShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Errorf("goroutines before=%d after=%d: leaked workers", before, runtime.NumGoroutine())
}
