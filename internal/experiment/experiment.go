// Package experiment orchestrates the paper's measurements: synchronized
// multi-origin ZMap+ZGrab scans over the synthetic Internet (the nine main
// scans: 3 trials × {HTTP, HTTPS, SSH}), the SSH retry sub-experiment
// (Figure 13), and the co-located Tier-1 follow-up (Table 4b, Figure 18).
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/world"
	"repro/internal/zgrab"
	"repro/internal/zmap"
)

// Config configures a study run.
type Config struct {
	// WorldSpec generates the synthetic Internet.
	WorldSpec world.Spec
	// Family selects the world's address family. The default (FamilyIPv4)
	// runs the paper's space sweep; FamilyIPv6 generates the seeded sparse
	// v6 world (V6Spec) and every scan walks a hitlist instead of sweeping
	// an address space — the scan strategy v6's 2^128 space forces.
	Family world.Family
	// V6Spec shapes the IPv6 world when Family is FamilyIPv6; the zero
	// value means world.DefaultV6Spec(WorldSpec.Seed).
	V6Spec world.V6Spec
	// Hitlist, when non-empty, replaces the v6 world's seeded hitlist as
	// the scan target list (cmd/originscan -hitlist). Ignored for IPv4.
	Hitlist []ip.Addr
	// Trials is the number of repetitions (the paper runs 3).
	Trials int
	// Origins scan in every trial.
	Origins origin.Set
	// Protocols to scan (default: all three).
	Protocols []proto.Protocol
	// Probes per target (the paper sends 2 back-to-back SYNs).
	Probes int
	// ProbeDelay spaces probes to the same target apart in time (§7's
	// recommended mitigation; 0 = back-to-back as in the main study).
	ProbeDelay time.Duration
	// Retries is the ZGrab connection retry budget (0 in the main study).
	Retries int
	// GrabWorkers sizes the L7 worker pool (default 16).
	GrabWorkers int
	// IncludeCarinet adds the Carinet origin in trial 0 only, as in the
	// paper.
	IncludeCarinet bool
	// Blocklist addresses are excluded from scanning from every origin
	// (the paper's synchronized opt-out list).
	Blocklist *ip.Set
	// Shard/Shards split each scan across cooperating scanner processes
	// (ZMap sharding); shard k of n probes a disjoint 1/n of the space.
	Shard, Shards int
	// FreshCensysIP models the follow-up experiment's Censys IP change:
	// Censys scans with a fresh, unblocked identity.
	FreshCensysIP bool
	// SinkWrapper, when set, wraps the packet sink of every scan — the
	// seam for packet capture (pcap tee) or custom instrumentation. A
	// wrapper must be safe for concurrent Sends when ScanShards > 1.
	SinkWrapper func(zmap.PacketSink) zmap.PacketSink
	// DialWrapper, when set, wraps the L7 dialer of every scan — the grab
	// counterpart of SinkWrapper. A wrapper must be safe for concurrent
	// Dials (the grab worker pool dials concurrently). Wrapped dialers
	// automatically take the reference grab path: the wrapper sees every
	// Dial.
	DialWrapper func(zgrab.Dialer) zgrab.Dialer
	// GrabReference forces the goroutine-per-connection reference grab
	// path even when the scan's dialer supports the batched fast path
	// (zgrab.FastDialer). The fast path is bit-identical — this knob
	// exists for the differential tests and benchmarks that prove it.
	GrabReference bool
	// Hooks observe lifecycle stage transitions of every scan and of
	// world generation (instrumentation, progress reporting, tests).
	Hooks pipeline.Hooks
	// Telemetry, when set, receives live metrics from every layer of the
	// run: sweep and grab counters labeled per (origin, proto, trial),
	// stage-duration spans, IDS activations, seal statistics, and the
	// worker-pool gauges the progress line reads. Telemetry is a pure
	// observer — a run with a registry produces a bit-identical dataset
	// to a run without one.
	Telemetry *telemetry.Registry
	// Parallelism is how many (origin, protocol, trial) scans run
	// concurrently (0 = GOMAXPROCS). The parallel engine precomputes IDS
	// detection schedules so results are bit-identical to a serial run;
	// set 1 to force the serial reference path.
	Parallelism int
	// ScanShards splits each scan's permutation sweep across N goroutine
	// shards (0 or 1 = unsharded). Deterministic: shard results merge
	// back into the serial emission order.
	ScanShards int
	// SpillDir, when set, backs every scan's result store with the
	// spill-to-disk strategy: records buffer up to a per-scan budget,
	// overflow flushes to sorted segment files under this directory, and
	// Seal externally merges them. Sealed datasets are byte-identical to
	// an in-memory run; only the memory profile changes. The directory
	// must exist.
	SpillDir string
	// MemBudget caps the study's total live result-store memory in
	// bytes, split evenly across the scans that can be in flight at once
	// (Parallelism): each scan's store spills once its share is
	// exceeded. <= 0 with SpillDir set leaves every store on
	// results.DefaultSpillBudget. Ignored without SpillDir.
	MemBudget int64
	// ScenarioConfig tweaks behaviour models (ablations).
	ScenarioConfig scenario.Config
}

// grabWindow is the windowed grab hand-off's batch size: workers claim
// indices inside one window, and each completed window appends through the
// ResultSink in reply order. Matches the sweep kernel's 4096-address batch
// — small enough that the in-flight record buffer is negligible, large
// enough that the per-window barrier is amortized away.
const grabWindow = 4096

func (c *Config) withDefaults() Config {
	out := *c
	if out.Trials == 0 {
		out.Trials = 3
	}
	if len(out.Origins) == 0 {
		out.Origins = origin.StudySet()
	}
	if len(out.Protocols) == 0 {
		out.Protocols = proto.All()
	}
	if out.Probes == 0 {
		out.Probes = 2
	}
	if out.GrabWorkers == 0 {
		out.GrabWorkers = 16
	}
	return out
}

// Study is a prepared experiment: world plus behaviour models.
type Study struct {
	Config   Config
	World    *world.World
	Scenario *scenario.Scenario
}

// NewStudy builds the world and scenario for a config. World generation
// runs as the lifecycle's Worldgen stage: cfg.Hooks observe it, generation
// failures are tagged pipeline.ErrWorldGen, and a canceled context aborts
// the build with pipeline.ErrCanceled.
func NewStudy(ctx context.Context, cfg Config) (*Study, error) {
	cfg = cfg.withDefaults()
	var w *world.World
	runner := pipeline.Runner{Hooks: telemetry.ScanHooks(cfg.Telemetry, cfg.Hooks)}
	err := runner.Run(ctx, pipeline.StageFunc{
		Stage: pipeline.StageWorldgen,
		Run: func(ctx context.Context) error {
			var err error
			if cfg.Family == world.FamilyIPv6 {
				spec := cfg.V6Spec
				if spec == (world.V6Spec{}) {
					spec = world.DefaultV6Spec(cfg.WorldSpec.Seed)
				}
				w, err = world.BuildV6(ctx, spec)
			} else {
				w, err = world.Build(ctx, cfg.WorldSpec)
			}
			if err != nil && !errors.Is(err, pipeline.ErrCanceled) {
				return pipeline.Tag(pipeline.ErrWorldGen, err)
			}
			return err
		},
	})
	if err != nil {
		return nil, err
	}
	scfg := cfg.ScenarioConfig
	scfg.Trials = cfg.Trials
	if scfg.NumOrigins == 0 {
		scfg.NumOrigins = len(cfg.Origins)
	}
	sc := scenario.New(w, scfg)
	return &Study{Config: cfg, World: w, Scenario: sc}, nil
}

// Run executes all trials and returns the dataset. With Parallelism > 1
// (or by default, GOMAXPROCS > 1) the scans run concurrently on a bounded
// worker pool; IDS detection schedules are precomputed so the dataset is
// bit-identical to a serial run.
//
// Cancellation and failure both return the partial dataset alongside the
// error: every scan that completed before the interruption is sealed and
// present, so callers can flush what was collected. A canceled run's error
// matches pipeline.ErrCanceled and carries the interrupted stage
// (pipeline.InterruptedStage); a failed run's error matches
// pipeline.ErrScanFailed and joins a *pipeline.ScanError per failed
// (origin, protocol, trial) tuple — all of them, not just the first.
func (st *Study) Run(ctx context.Context) (*results.Dataset, error) {
	// The study span is the trace tree's root: every scan span is its
	// child, so a flight-recorder journal reconstructs the whole run from
	// one root. Nil registry → nil span → the tree stays disabled.
	span := st.Config.Telemetry.StartSpan("study",
		telemetry.L("family", st.World.Family.String()))
	ds, err := st.run(ctx, span)
	span.End(err)
	return ds, err
}

// run is Study.Run's body, with the study-level trace span threaded to
// every scan.
func (st *Study) run(ctx context.Context, studySpan *telemetry.Span) (*results.Dataset, error) {
	cfg := st.Config
	origins := cfg.Origins
	dsOrigins := origins
	if cfg.IncludeCarinet && !origins.Contains(origin.CARINET) {
		dsOrigins = append(append(origin.Set{}, origins...), origin.CARINET)
	}
	ds := results.NewDataset(dsOrigins, cfg.Trials)

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	shards := cfg.ScanShards
	if shards <= 0 {
		shards = 1
	}
	// Orchestration metrics: totals for the progress line, the queue-depth
	// gauge, and per-worker utilization. All instruments are nil-safe, so a
	// run without a registry takes the same code path.
	reg := cfg.Telemetry
	numScans := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		for range cfg.Protocols {
			for _, o := range dsOrigins {
				if o == origin.CARINET && trial != 0 {
					continue
				}
				numScans++
			}
		}
	}
	reg.Gauge(telemetry.MetricScansTotal).Set(int64(numScans))
	scansDone := reg.Counter(telemetry.MetricScansDone)
	queueDepth := reg.Gauge(telemetry.MetricQueueDepth)

	var scanErrs []error
	if par == 1 && shards == 1 {
		// Serial reference path: the live stateful IDSes observe probes
		// in study order, exactly as the paper's scans unfolded. The
		// parallel engine below must match this bit-for-bit.
		queueDepth.Set(int64(numScans))
		for trial := 0; trial < cfg.Trials; trial++ {
			for _, p := range cfg.Protocols {
				for _, o := range dsOrigins {
					if o == origin.CARINET && trial != 0 {
						continue
					}
					queueDepth.Add(-1)
					res, err := st.scanOne(ctx, o, p, trial, policy.Detectors(st.Scenario.IDSes), 1, studySpan)
					if err != nil {
						serr := &pipeline.ScanError{Origin: o, Proto: p, Trial: trial, Err: err}
						if errors.Is(err, pipeline.ErrCanceled) {
							// The interrupted scan is discarded; the
							// dataset keeps every scan sealed before it.
							return ds, serr
						}
						scansDone.Inc()
						scanErrs = append(scanErrs, serr)
						continue
					}
					scansDone.Inc()
					if err := ds.Put(res); err != nil {
						scanErrs = append(scanErrs, &pipeline.ScanError{Origin: o, Proto: p, Trial: trial, Err: err})
					}
				}
			}
		}
		if len(scanErrs) > 0 {
			return ds, pipeline.Tag(pipeline.ErrScanFailed, errors.Join(scanErrs...))
		}
		return ds, nil
	}

	// Canonical task order: trial-major, then protocol, then origin — the
	// order the serial loop commits in.
	var tasks []scanKey
	for trial := 0; trial < cfg.Trials; trial++ {
		for _, p := range cfg.Protocols {
			for _, o := range dsOrigins {
				if o == origin.CARINET && trial != 0 {
					continue
				}
				tasks = append(tasks, scanKey{o: o, p: p, trial: trial})
			}
		}
	}

	plan, err := st.planIDS(ctx, dsOrigins)
	if err != nil {
		return ds, err
	}

	outs := make([]*results.ScanResult, len(tasks))
	errs := make([]error, len(tasks))
	idx := make(chan int)
	queueDepth.Set(int64(len(tasks)))
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wl := telemetry.L("worker", strconv.Itoa(w))
			busyNS := reg.Counter(telemetry.MetricWorkerBusyNS, wl)
			workerScans := reg.Counter(telemetry.MetricWorkerScans, wl)
			for i := range idx {
				queueDepth.Add(-1)
				if ctx.Err() != nil {
					continue // canceled: drain remaining indices
				}
				t := tasks[i]
				begin := time.Now()
				res, err := st.scanOne(ctx, t.o, t.p, t.trial, plan.detectors(t), shards, studySpan)
				busyNS.Add(uint64(time.Since(begin).Nanoseconds()))
				workerScans.Inc()
				if err != nil {
					if !errors.Is(err, pipeline.ErrCanceled) {
						scansDone.Inc()
					}
					errs[i] = err
					continue
				}
				scansDone.Inc()
				outs[i] = res
			}
		}(w)
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Seal every completed scan into the dataset before classifying the
	// outcome: partial results survive both cancellation and failure.
	for i, res := range outs {
		if res == nil {
			continue
		}
		if err := ds.Put(res); err != nil {
			errs[i] = errors.Join(errs[i], err)
		}
	}

	var canceledErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		t := tasks[i]
		serr := &pipeline.ScanError{Origin: t.o, Proto: t.p, Trial: t.trial, Err: err}
		if errors.Is(err, pipeline.ErrCanceled) {
			if canceledErr == nil {
				canceledErr = serr
			}
			continue
		}
		scanErrs = append(scanErrs, serr)
	}
	switch {
	case len(scanErrs) > 0:
		return ds, pipeline.Tag(pipeline.ErrScanFailed, errors.Join(scanErrs...))
	case canceledErr != nil:
		return ds, canceledErr
	case ctx.Err() != nil:
		// Canceled after the last scan completed but before commit.
		return ds, pipeline.Canceled(ctx.Err())
	}
	// Leave the live IDSes in the exact state a serial run would have:
	// sub-experiments (SSH retry, multi-probe sweeps) read it. Only a
	// fully successful run commits.
	plan.commit(st.Scenario.IDSes)
	return ds, nil
}

// scanLabels are the telemetry labels identifying one scan's metrics.
func scanLabels(f world.Family, o origin.ID, p proto.Protocol, trial int) []telemetry.Label {
	return []telemetry.Label{
		telemetry.L("family", f.String()),
		telemetry.L("origin", o.String()),
		telemetry.L("proto", p.String()),
		telemetry.L("trial", strconv.Itoa(trial)),
	}
}

// hitlist returns the scan target list: nil for IPv4 worlds (scans sweep
// the space), and the configured or world-seeded hitlist for IPv6.
func (st *Study) hitlist() []ip.Addr {
	if st.World.Family != world.FamilyIPv6 {
		return nil
	}
	if len(st.Config.Hitlist) > 0 {
		return st.Config.Hitlist
	}
	return st.World.Hitlist()
}

// newScanResult builds the result store for one scan: the in-memory
// columns by default, or a spill-backed store when cfg.SpillDir is set.
// The study-wide MemBudget is split across the scans that can run
// concurrently, so the study's total live column memory stays bounded
// regardless of parallelism; the store clamps the capacity hint by its
// share.
func (st *Study) newScanResult(o origin.ID, p proto.Protocol, trial, hint int) (*results.ScanResult, error) {
	cfg := st.Config
	if cfg.SpillDir == "" {
		return results.NewScanResultSized(o, p, trial, hint), nil
	}
	spill := results.SpillConfig{Dir: cfg.SpillDir}
	if cfg.MemBudget > 0 {
		par := cfg.Parallelism
		if par <= 0 {
			par = runtime.GOMAXPROCS(0)
		}
		spill.Budget = cfg.MemBudget / int64(par)
	}
	return results.NewSpilledScanResult(o, p, trial, hint, spill)
}

// originRecord resolves the origin, applying the follow-up Censys IP swap.
func (st *Study) originRecord(o origin.ID) *origin.Origin {
	org := st.World.Origins.Get(o)
	if o == origin.CEN && st.Config.FreshCensysIP {
		fresh := *org
		fresh.ScanReputation = origin.RepFresh
		// The reserved source block has spare addresses beyond the
		// directory's allocations; take the last one.
		fresh.SourceIPs = []ip.Addr{org.SourceIPs[0].Add(50)}
		return &fresh
	}
	return org
}

// ScanOne runs a single origin's ZMap+ZGrab scan of one protocol in one
// trial: the building block of the study. The live IDSes observe the scan's
// probes directly (the serial reference behaviour).
func (st *Study) ScanOne(ctx context.Context, o origin.ID, p proto.Protocol, trial int) (*results.ScanResult, error) {
	return st.scanOne(ctx, o, p, trial, policy.Detectors(st.Scenario.IDSes), 1, nil)
}

// spanUnder starts a child of parent, or a root span when the scan runs
// without a study-level parent (ScanOne, sub-experiments).
func spanUnder(reg *telemetry.Registry, parent *telemetry.Span, name string, labels ...telemetry.Label) *telemetry.Span {
	if parent != nil {
		return parent.StartChild(name, labels...)
	}
	return reg.StartSpan(name, labels...)
}

// scanOne runs one scan with the given IDS views (live or scheduled) and
// number of sweep shards. The scan is a three-stage pipeline — Sweep (L4
// probe sweep), Grab (L7 handshakes on the worker pool), Seal (commit the
// sorted columns and drain the fabric's connection goroutines) — run
// through a pipeline.Runner so cfg.Hooks observe the transitions and any
// interruption reports its stage. A canceled scan returns nil (the partial
// result is not well-defined mid-stage); the fabric is always drained
// before return so no connection goroutine outlives the scan.
func (st *Study) scanOne(ctx context.Context, o origin.ID, p proto.Protocol, trial int, detectors []policy.Detector, shards int, studySpan *telemetry.Span) (res *results.ScanResult, err error) {
	cfg := st.Config
	org := st.originRecord(o)
	// Per-scan telemetry: metric children are resolved once here, labeled
	// by the scan's identity, and the hot paths below touch only the
	// pre-resolved atomic counters. With no registry every bundle is nil
	// and the instruments no-op.
	labels := scanLabels(st.World.Family, o, p, trial)
	sweepM := telemetry.NewSweepMetrics(cfg.Telemetry, labels...)
	grabM := telemetry.NewGrabMetrics(cfg.Telemetry, labels...)
	poolM := telemetry.NewGrabPoolMetrics(cfg.Telemetry, cfg.GrabWorkers, labels...)
	sealM := telemetry.NewSealMetrics(cfg.Telemetry, labels...)
	var spillM *telemetry.SpillMetrics
	if cfg.SpillDir != "" {
		spillM = telemetry.NewSpillMetrics(cfg.Telemetry, labels...)
	}
	// One scan = one span under the study root; its children are the
	// stage spans, which in turn own the sweep-batch and grab-window
	// exemplars.
	scanSpan := spanUnder(cfg.Telemetry, studySpan, "scan", labels...)
	defer func() { scanSpan.End(err) }()
	fab := fabric.New(&fabric.Config{
		World:      st.World,
		Engine:     st.Scenario.Engine,
		IDSes:      detectors,
		Loss:       st.Scenario.Loss,
		Outages:    st.Scenario.Outages[p],
		Churn:      st.Scenario.Churn,
		NumOrigins: len(cfg.Origins),
		Hosts:      st.Scenario.Hosts,
	}, org, trial)
	// Teardown safety net: even when a stage fails or the run is
	// canceled, wait (bounded, off the canceled ctx) for the fabric's
	// per-connection goroutines so an aborted scan leaks nothing.
	defer func() {
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = fab.Drain(drainCtx)
	}()

	// All origins share the scan seed per (protocol, trial): the paper
	// starts every origin's ZMap with the same seed so scanners probe
	// the same addresses at approximately the same time.
	scanSeed := rng.NewKey(st.World.Spec.Seed).Derive("scan-seed").Uint64(uint64(p), uint64(trial))
	numHosts := len(st.World.Hosts())
	sc, err := zmap.NewScanner(zmap.Config{
		SourceIPs:       org.SourceIPs,
		TargetPort:      p.Port(),
		Probes:          cfg.Probes,
		ProbeDelay:      cfg.ProbeDelay,
		SpaceBits:       st.World.SpaceBits,
		Hitlist:         st.hitlist(),
		Seed:            scanSeed,
		Shard:           cfg.Shard,
		Shards:          cfg.Shards,
		ScanDuration:    scenario.ScanDuration,
		Blocklist:       cfg.Blocklist,
		ExpectedReplies: numHosts,
		Telemetry:       sweepM,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %v/%v/trial %d: %w", o, p, trial, err)
	}

	var sink zmap.PacketSink = fab
	if cfg.SinkWrapper != nil {
		sink = cfg.SinkWrapper(fab)
	}
	var dialer zgrab.Dialer = fab
	if cfg.DialWrapper != nil {
		dialer = cfg.DialWrapper(fab)
	}

	// State threaded between stages.
	replies := make([]zmap.Reply, 0, numHosts)
	var stats zmap.Stats

	tr := telemetry.NewStageTrace(cfg.Telemetry, scanSpan, labels...)
	runner := pipeline.Runner{Hooks: tr.Hooks(cfg.Hooks)}
	err = runner.Run(ctx,
		pipeline.StageFunc{Stage: pipeline.StageSweep, Run: func(ctx context.Context) error {
			// L4 sweep: collect replies. Only hosts reply, so the
			// world's host count bounds the reply slice. The stage span
			// receives the sweep's batch exemplars and target totals.
			sc.SetTraceSpan(tr.Span(pipeline.StageSweep))
			var err error
			stats, err = sc.RunSharded(ctx, sink, func(r zmap.Reply) { replies = append(replies, r) }, shards)
			return err
		}},
		pipeline.StageFunc{Stage: pipeline.StageGrab, Run: func(ctx context.Context) error {
			// Windowed grab hand-off through the ResultSink: workers
			// claim reply indices inside a bounded window, writing
			// records into matching slots — no channel per record — and
			// each window barrier appends its records through the sink
			// in reply order, so the columns build deterministically
			// (identical to the old whole-scan record buffer). Handing
			// records over per window instead of buffering the entire
			// scan is what lets a spill-backed store bound memory: the
			// sink may flush sorted runs to disk mid-scan. Workers
			// re-check ctx per claim (a pure read: uncancelled runs are
			// unaffected), so a canceled grab stops within one claim per
			// worker, and a partially grabbed window is never appended.
			var err error
			res, err = st.newScanResult(o, p, trial, len(replies))
			if err != nil {
				return err
			}
			var sink results.ResultSink = res
			grabber := &zgrab.Grabber{
				Dialer:    dialer,
				Retries:   cfg.Retries,
				Key:       rng.NewKey(st.World.Spec.Seed).Derive("grab").DeriveN("origin", uint64(o)),
				IOTimeout: 10 * time.Second,
				Metrics:   grabM,
			}
			gspan := tr.Span(pipeline.StageGrab)
			gspan.SetAttr("hosts", int64(len(replies)))
			if poolM != nil {
				poolM.Hosts.Set(int64(len(replies)))
			}
			// The window tracer records per-window exemplars (bounded
			// sampling) under the grab stage span; Hooks run the stage in
			// this goroutine, so the tracer's state is single-owner.
			wt := gspan.ChildTracer("grab_window")
			size := grabWindow
			if size > len(replies) {
				size = len(replies)
			}
			window := make([]results.HostRecord, size)
			// The fast path: a dialer that supports batched pre-dial
			// evaluation gets its verdicts computed per window, up
			// front, so the workers' grabs never touch connection setup
			// for L4 failures and serve accepted exchanges inline (zero
			// goroutines). Wrapped dialers (DialWrapper) don't satisfy
			// the interface and fall back to the reference path, as
			// does Config.GrabReference. preIdx maps a window slot to
			// its verdict (-1: no L4 response, never grabbed).
			fd, fastPath := dialer.(zgrab.FastDialer)
			if cfg.GrabReference {
				fastPath = false
			}
			var (
				preDst []ip.Addr
				preT   []time.Duration
				pre    []zgrab.DialVerdict
				preIdx []int32
			)
			if fastPath {
				preDst = make([]ip.Addr, size)
				preT = make([]time.Duration, size)
				pre = make([]zgrab.DialVerdict, size)
				preIdx = make([]int32, size)
			}
			var fastAttr int64
			if fastPath {
				fastAttr = 1
			}
			gspan.SetAttr("fast_path", fastAttr)
			for base := 0; base < len(replies); base += size {
				n := len(replies) - base
				if n > size {
					n = size
				}
				win := window[:n]
				if fastPath {
					m := 0
					for i := 0; i < n; i++ {
						r := &replies[base+i]
						if r.ProbeMask == 0 {
							preIdx[i] = -1
							continue
						}
						preDst[m] = r.Dst
						preT[m] = r.T
						preIdx[i] = int32(m)
						m++
					}
					var predialStart time.Time
					if poolM != nil {
						predialStart = time.Now()
					}
					fd.PredialBatch(preDst[:m], preT[:m], p.Port(), pre[:m])
					if poolM != nil {
						poolM.Predial.ObserveDuration(time.Since(predialStart))
					}
				}
				workers := cfg.GrabWorkers
				if workers > n {
					workers = n
				}
				wt.Begin()
				// windowStart anchors the queue-wait measurement: how long
				// a reply sat in the window before a worker claimed it.
				// Clock reads are gated on a live pool bundle, so disabled
				// telemetry costs one nil check per window and per claim.
				var windowStart time.Time
				if poolM != nil {
					windowStart = time.Now()
				}
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						var busyNS int64
						for ctx.Err() == nil {
							i := int(next.Add(1)) - 1
							if i >= n {
								break
							}
							var claimed time.Time
							if poolM != nil {
								claimed = time.Now()
								poolM.QueueWait.Observe(claimed.Sub(windowStart).Seconds())
							}
							r := replies[base+i]
							rec := results.HostRecord{
								Addr: r.Dst, ProbeMask: r.ProbeMask, RST: r.RST, T: r.T,
							}
							if r.ProbeMask != 0 {
								var g zgrab.Result
								if fastPath {
									g = grabber.GrabFast(ctx, p, r.Dst, r.T, pre[preIdx[i]])
								} else {
									g = grabber.Grab(ctx, p, r.Dst, r.T)
								}
								rec.L7 = g.Success
								rec.Fail = g.Fail
								rec.Attempts = g.Attempts
								rec.Banner = g.Banner
							}
							win[i] = rec
							if poolM != nil {
								service := time.Since(claimed)
								poolM.Service.Observe(service.Seconds())
								busyNS += service.Nanoseconds()
								poolM.HostsDone.Inc()
							}
						}
						if poolM != nil {
							poolM.WorkerBusyNS[w].Add(uint64(busyNS))
						}
					}(w)
				}
				wg.Wait()
				if err := ctx.Err(); err != nil {
					return err
				}
				// The window hand-off: AddBatch may sort, dedup, and spill
				// — WindowAppend is where result-store back-pressure on
				// the grab path becomes visible.
				var appendStart time.Time
				if poolM != nil {
					appendStart = time.Now()
				}
				sink.AddBatch(win)
				if poolM != nil {
					poolM.WindowAppend.ObserveDuration(time.Since(appendStart))
				}
				wt.End(telemetry.A("hosts", int64(n)), telemetry.A("workers", int64(workers)))
			}
			return ctx.Err()
		}},
		pipeline.StageFunc{Stage: pipeline.StageSeal, Run: func(ctx context.Context) error {
			// Records appended in deterministic (T, Dst) reply order;
			// Seal commits the sorted columns — one in-memory sort for
			// the fast path, or the keep-last external merge of on-disk
			// segments plus the live run for a spill-backed store (the
			// segments are deleted as the merge consumes them). Either
			// way the stored scan is an immutable sorted view before any
			// analysis touches it. The fabric drain guarantees every
			// per-connection goroutine exited before the scan commits.
			res.Targets = stats.Targets
			res.ProbesSent = stats.ProbesSent
			res.SynAcks = stats.SynAcks
			res.Rsts = stats.Rsts
			res.Invalid = stats.Invalid
			if err := res.SealErr(); err != nil {
				return err
			}
			sspan := tr.Span(pipeline.StageSeal)
			if sealM != nil {
				rows, deduped := res.SealStats()
				sealM.Rows.Add(uint64(rows))
				sealM.Deduped.Add(uint64(deduped))
			}
			if sspan != nil {
				rows, deduped := res.SealStats()
				sspan.SetAttr("rows", int64(rows))
				sspan.SetAttr("deduped", int64(deduped))
			}
			if spillM != nil {
				sst := res.SpillStats()
				spillM.Segments.Add(uint64(sst.Segments))
				spillM.Bytes.Add(uint64(sst.SpilledBytes))
				spillM.FanIn.Set(int64(sst.MergeFanIn))
				spillM.Passes.Set(int64(sst.MergePasses))
				spillM.Merge.ObserveDuration(sst.MergeDuration)
				spillM.Flush.ObserveDuration(sst.FlushDuration)
				if sspan != nil {
					sspan.SetAttr("spill_segments", int64(sst.Segments))
					sspan.SetAttr("spill_bytes", sst.SpilledBytes)
					sspan.SetAttr("merge_fanin", int64(sst.MergeFanIn))
					sspan.SetAttr("merge_passes", int64(sst.MergePasses))
					sspan.SetAttr("merge_ns", sst.MergeDuration.Nanoseconds())
					sspan.SetAttr("flush_ns", sst.FlushDuration.Nanoseconds())
				}
			}
			// Fabric connection totals land on the seal span (with the
			// still-active count before the drain): the routed/unrouted
			// split lives on the sweep span, the L7 connection volume here.
			if sspan != nil {
				sspan.SetAttr("conns_opened", int64(fab.ConnsOpened()))
				sspan.SetAttr("conns_active_predrain", int64(fab.ActiveConns()))
			}
			return fab.Drain(ctx)
		}},
	)
	if err != nil {
		// An interrupted or failed scan's partial store is abandoned:
		// delete any spilled segments so a canceled study leaks no disk.
		if res != nil {
			_ = res.Discard()
		}
		return nil, err
	}
	return res, nil
}
