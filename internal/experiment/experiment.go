// Package experiment orchestrates the paper's measurements: synchronized
// multi-origin ZMap+ZGrab scans over the synthetic Internet (the nine main
// scans: 3 trials × {HTTP, HTTPS, SSH}), the SSH retry sub-experiment
// (Figure 13), and the co-located Tier-1 follow-up (Table 4b, Figure 18).
package experiment

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/world"
	"repro/internal/zgrab"
	"repro/internal/zmap"
)

// Config configures a study run.
type Config struct {
	// WorldSpec generates the synthetic Internet.
	WorldSpec world.Spec
	// Trials is the number of repetitions (the paper runs 3).
	Trials int
	// Origins scan in every trial.
	Origins origin.Set
	// Protocols to scan (default: all three).
	Protocols []proto.Protocol
	// Probes per target (the paper sends 2 back-to-back SYNs).
	Probes int
	// ProbeDelay spaces probes to the same target apart in time (§7's
	// recommended mitigation; 0 = back-to-back as in the main study).
	ProbeDelay time.Duration
	// Retries is the ZGrab connection retry budget (0 in the main study).
	Retries int
	// GrabWorkers sizes the L7 worker pool (default 16).
	GrabWorkers int
	// IncludeCarinet adds the Carinet origin in trial 0 only, as in the
	// paper.
	IncludeCarinet bool
	// Blocklist addresses are excluded from scanning from every origin
	// (the paper's synchronized opt-out list).
	Blocklist *ip.Set
	// Shard/Shards split each scan across cooperating scanner processes
	// (ZMap sharding); shard k of n probes a disjoint 1/n of the space.
	Shard, Shards int
	// FreshCensysIP models the follow-up experiment's Censys IP change:
	// Censys scans with a fresh, unblocked identity.
	FreshCensysIP bool
	// SinkWrapper, when set, wraps the packet sink of every scan — the
	// seam for packet capture (pcap tee) or custom instrumentation.
	SinkWrapper func(zmap.PacketSink) zmap.PacketSink
	// ScenarioConfig tweaks behaviour models (ablations).
	ScenarioConfig scenario.Config
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Trials == 0 {
		out.Trials = 3
	}
	if len(out.Origins) == 0 {
		out.Origins = origin.StudySet()
	}
	if len(out.Protocols) == 0 {
		out.Protocols = proto.All()
	}
	if out.Probes == 0 {
		out.Probes = 2
	}
	if out.GrabWorkers == 0 {
		out.GrabWorkers = 16
	}
	return out
}

// Study is a prepared experiment: world plus behaviour models.
type Study struct {
	Config   Config
	World    *world.World
	Scenario *scenario.Scenario
}

// NewStudy builds the world and scenario for a config.
func NewStudy(cfg Config) (*Study, error) {
	cfg = cfg.withDefaults()
	w, err := world.Build(cfg.WorldSpec)
	if err != nil {
		return nil, err
	}
	scfg := cfg.ScenarioConfig
	scfg.Trials = cfg.Trials
	if scfg.NumOrigins == 0 {
		scfg.NumOrigins = len(cfg.Origins)
	}
	sc := scenario.New(w, scfg)
	return &Study{Config: cfg, World: w, Scenario: sc}, nil
}

// Run executes all trials and returns the dataset.
func (st *Study) Run() (*results.Dataset, error) {
	cfg := st.Config
	origins := cfg.Origins
	dsOrigins := origins
	if cfg.IncludeCarinet && !origins.Contains(origin.CARINET) {
		dsOrigins = append(append(origin.Set{}, origins...), origin.CARINET)
	}
	ds := results.NewDataset(dsOrigins, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		for _, p := range cfg.Protocols {
			for _, o := range dsOrigins {
				if o == origin.CARINET && trial != 0 {
					continue
				}
				res, err := st.ScanOne(o, p, trial)
				if err != nil {
					return nil, err
				}
				ds.Put(res)
			}
		}
	}
	return ds, nil
}

// originRecord resolves the origin, applying the follow-up Censys IP swap.
func (st *Study) originRecord(o origin.ID) *origin.Origin {
	org := st.World.Origins.Get(o)
	if o == origin.CEN && st.Config.FreshCensysIP {
		fresh := *org
		fresh.ScanReputation = origin.RepFresh
		// The reserved source block has spare addresses beyond the
		// directory's allocations; take the last one.
		fresh.SourceIPs = []ip.Addr{org.SourceIPs[0] + 50}
		return &fresh
	}
	return org
}

// ScanOne runs a single origin's ZMap+ZGrab scan of one protocol in one
// trial: the building block of the study.
func (st *Study) ScanOne(o origin.ID, p proto.Protocol, trial int) (*results.ScanResult, error) {
	cfg := st.Config
	org := st.originRecord(o)
	fab := fabric.New(&fabric.Config{
		World:      st.World,
		Engine:     st.Scenario.Engine,
		IDSes:      st.Scenario.IDSes,
		Loss:       st.Scenario.Loss,
		Outages:    st.Scenario.Outages[p],
		Churn:      st.Scenario.Churn,
		NumOrigins: len(cfg.Origins),
		Hosts:      st.Scenario.Hosts,
	}, org, trial)

	// All origins share the scan seed per (protocol, trial): the paper
	// starts every origin's ZMap with the same seed so scanners probe
	// the same addresses at approximately the same time.
	scanSeed := rng.NewKey(st.World.Spec.Seed).Derive("scan-seed").Uint64(uint64(p), uint64(trial))
	sc, err := zmap.NewScanner(zmap.Config{
		SourceIPs:    org.SourceIPs,
		TargetPort:   p.Port(),
		Probes:       cfg.Probes,
		ProbeDelay:   cfg.ProbeDelay,
		SpaceBits:    st.World.SpaceBits,
		Seed:         scanSeed,
		Shard:        cfg.Shard,
		Shards:       cfg.Shards,
		ScanDuration: scenario.ScanDuration,
		Blocklist:    cfg.Blocklist,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %v/%v/trial %d: %w", o, p, trial, err)
	}

	res := results.NewScanResult(o, p, trial)

	// L4 sweep: collect replies, then grab concurrently.
	var sink zmap.PacketSink = fab
	if cfg.SinkWrapper != nil {
		sink = cfg.SinkWrapper(fab)
	}
	var replies []zmap.Reply
	stats := sc.Run(sink, func(r zmap.Reply) { replies = append(replies, r) })
	res.Targets = stats.Targets
	res.ProbesSent = stats.ProbesSent
	res.SynAcks = stats.SynAcks
	res.Rsts = stats.Rsts
	res.Invalid = stats.Invalid

	grabber := &zgrab.Grabber{
		Dialer:    fab,
		Retries:   cfg.Retries,
		Key:       rng.NewKey(st.World.Spec.Seed).Derive("grab").DeriveN("origin", uint64(o)),
		IOTimeout: 10 * time.Second,
	}

	type grabOut struct {
		rec results.HostRecord
	}
	in := make(chan zmap.Reply, cfg.GrabWorkers)
	out := make(chan grabOut, cfg.GrabWorkers)
	var wg sync.WaitGroup
	for i := 0; i < cfg.GrabWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range in {
				rec := results.HostRecord{
					Addr: r.Dst, ProbeMask: r.ProbeMask, RST: r.RST, T: r.T,
				}
				if r.ProbeMask != 0 {
					g := grabber.Grab(p, r.Dst, r.T)
					rec.L7 = g.Success
					rec.Fail = g.Fail
					rec.Attempts = g.Attempts
					rec.Banner = g.Banner
				}
				out <- grabOut{rec: rec}
			}
		}()
	}
	go func() {
		for _, r := range replies {
			in <- r
		}
		close(in)
		wg.Wait()
		close(out)
	}()
	for g := range out {
		res.Add(g.rec)
	}
	return res, nil
}
