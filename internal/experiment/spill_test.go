package experiment

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/world"
	"repro/internal/zgrab"
)

// spillStudyBudget is the adversarially tiny study budget the differential
// runs under (every scan spills constantly); the CI spill job overrides it
// down to 1 byte via RESULTS_SPILL_BUDGET.
func spillStudyBudget(t *testing.T) int64 {
	if v := os.Getenv("RESULTS_SPILL_BUDGET"); v != "" {
		b, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("RESULTS_SPILL_BUDGET=%q: %v", v, err)
		}
		return b
	}
	return 8 << 10
}

// countSpillFiles counts regular files under the spill dir — nonzero after
// a run means leaked segments.
func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.Walk(dir, func(_ string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !fi.IsDir() {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return n
}

// TestSpillStudyMatchesMemStudy runs the same study three ways — in-memory,
// spill-backed serial under a tiny budget, and spill-backed parallel — and
// requires record-identical datasets and byte-identical JSON: the
// acceptance criterion that the store strategy is invisible in the sealed
// output.
func TestSpillStudyMatchesMemStudy(t *testing.T) {
	base := Config{
		WorldSpec: world.Spec{Seed: 9, Scale: 0.00005}, Trials: 2,
		Protocols: []proto.Protocol{proto.HTTP, proto.SSH},
		Origins:   origin.Set{origin.US1, origin.CEN},
	}
	run := func(t *testing.T, cfg Config) *results.Dataset {
		t.Helper()
		st, err := NewStudy(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := st.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	encode := func(t *testing.T, ds *results.Dataset) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := ds.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	memCfg := base
	memCfg.Parallelism = 1
	mem := run(t, memCfg)
	memJSON := encode(t, mem)

	budget := spillStudyBudget(t)
	for _, tc := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := base
			cfg.Parallelism = tc.par
			cfg.SpillDir = dir
			// MemBudget is the whole-study budget; split across tc.par
			// in-flight scans each store gets budget/par.
			cfg.MemBudget = budget * int64(tc.par)
			ds := run(t, cfg)
			if diff := mem.Diff(ds); diff != "" {
				t.Fatalf("spill dataset differs from memory dataset: %s", diff)
			}
			if got := encode(t, ds); !bytes.Equal(got, memJSON) {
				t.Fatalf("spill JSON differs from memory JSON (%d vs %d bytes)", len(got), len(memJSON))
			}
			if n := countSpillFiles(t, dir); n != 0 {
				t.Fatalf("%d segment files leaked after the study", n)
			}
		})
	}
}

// spillCancelDialer cancels the run after a fixed number of L7 dials once
// armed — the deterministic stand-in for SIGINT landing mid-grab.
type spillCancelDialer struct {
	inner  zgrab.Dialer
	armed  *atomic.Bool
	dials  *atomic.Int64
	after  int64
	cancel context.CancelFunc
}

func (c spillCancelDialer) Dial(ctx context.Context, dst ip.Addr, port uint16, t time.Duration, attempt int) (net.Conn, error) {
	if c.armed.Load() && c.dials.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Dial(ctx, dst, port, t, attempt)
}

// TestSpillCancelMidGrabSealsPartialDataset preserves PR 3's cancellation
// contract under the spill store: a cancellation landing mid-grab (after
// the first scan sealed — and spilled — normally) discards the interrupted
// scan's segments, keeps every previously sealed scan in the dataset, and
// the flushed partial dataset round-trips through the JSON codec. No
// segment file may outlive the run.
func TestSpillCancelMidGrabSealsPartialDataset(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	var armed atomic.Bool
	var dials atomic.Int64
	cfg := Config{
		WorldSpec: world.Spec{Seed: 6, Scale: 0.00005}, Trials: 1,
		Protocols:   []proto.Protocol{proto.HTTP},
		Origins:     origin.Set{origin.US1, origin.CEN},
		Parallelism: 1,
		SpillDir:    dir,
		MemBudget:   spillStudyBudget(t),
		Hooks: pipeline.Hooks{
			After: func(_ context.Context, stage pipeline.Stage, err error) {
				if stage == pipeline.StageSeal && err == nil {
					armed.Store(true) // first scan committed: cancel in the next grab
				}
			},
		},
		DialWrapper: func(inner zgrab.Dialer) zgrab.Dialer {
			return spillCancelDialer{inner: inner, armed: &armed, dials: &dials, after: 5, cancel: cancel}
		},
	}
	st, err := NewStudy(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := st.Run(ctx)
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if stage, ok := pipeline.InterruptedStage(err); !ok || stage != pipeline.StageGrab {
		t.Errorf("interrupted stage = %v (found=%v), want grab", stage, ok)
	}
	if ds == nil {
		t.Fatal("canceled run returned no dataset")
	}
	if ds.Len() != 1 {
		t.Fatalf("partial dataset has %d scans, want 1", ds.Len())
	}
	sealed := ds.Scan(origin.US1, proto.HTTP, 0)
	if sealed == nil {
		t.Fatal("the scan sealed before cancellation is missing from the dataset")
	}
	if sealed.SpillStats().Segments == 0 {
		t.Fatal("test did not exercise spilling: the sealed scan never flushed a segment")
	}
	// The partial dataset must be flushable and re-readable — the SIGINT
	// path in cmd/originscan writes exactly this.
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatalf("flushing partial dataset: %v", err)
	}
	back, err := results.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading partial dataset: %v", err)
	}
	if diff := ds.Diff(back); diff != "" {
		t.Fatalf("partial dataset did not round-trip: %s", diff)
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d segment files leaked (the interrupted scan's segments must be discarded)", n)
	}
}
