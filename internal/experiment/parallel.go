// Deterministic parallel execution support: precomputing IDS detection
// schedules so the study's scans can run concurrently yet produce a dataset
// bit-identical to the serial reference path.
//
// The IDSes are the only cross-scan mutable state in the simulation (every
// other behaviour is a pure keyed hash of the event coordinates). But their
// inputs are fully determined before any scan runs: all origins share the
// per-(protocol, trial) ZMap seed, so the exact sequence of probes each IDS
// sees — and therefore the exact probe at which each source IP crosses the
// detection threshold — can be computed up front by replaying the scan
// schedule against clones of the live IDS machines. Each scan then runs
// against a read-only ScheduledIDS view, and the clones' end states are
// merged back into the live IDSes afterwards so sub-experiments observe the
// same post-study state a serial run leaves. Source IPs are disjoint across
// origins (detection is per source IP), which is what makes the per-origin
// replays independent and the merge order-free.
package experiment

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/zmap"
)

// scanKey identifies one (origin, protocol, trial) scan of the study.
type scanKey struct {
	o     origin.ID
	p     proto.Protocol
	trial int
}

// idsPlan holds the precomputed per-scan IDS views and the per-origin
// simulated end states.
type idsPlan struct {
	views map[scanKey][]policy.Detector
	sims  [][]*policy.IDS // per origin, aligned with the live IDS slice
}

// detectors returns the scan's IDS views (nil when the scenario has none).
func (pl *idsPlan) detectors(k scanKey) []policy.Detector { return pl.views[k] }

// commit folds the simulated per-origin detection states into the live
// IDSes, leaving them exactly as a serial run would have.
func (pl *idsPlan) commit(live []*policy.IDS) {
	for i, d := range live {
		d.Reset()
		for _, sims := range pl.sims {
			if sims != nil {
				d.MergeStateFrom(sims[i])
			}
		}
	}
}

// walkEntry is one probe target inside an IDS-monitored AS, with the
// coordinates the IDS's match logic reads.
type walkEntry struct {
	dst     ip.Addr
	t       time.Duration
	as      asn.ASN
	country geo.Country
}

// planIDS replays every scan's probe schedule against clones of the live
// IDSes, in the serial study order, and returns per-scan ScheduledIDS views.
// The clones start empty, i.e. the plan assumes the live IDSes are in their
// initial state — Run is called once per Study (as everywhere in this repo);
// sub-experiments that continue from the post-Run state use the live path.
func (st *Study) planIDS(ctx context.Context, dsOrigins origin.Set) (*idsPlan, error) {
	cfg := st.Config
	live := st.Scenario.IDSes
	plan := &idsPlan{views: make(map[scanKey][]policy.Detector)}
	if len(live) == 0 {
		return plan, nil
	}

	monitored := make(map[asn.ASN]bool, len(live))
	for _, d := range live {
		monitored[d.AS] = true
	}

	// One walk per (protocol, trial), shared by every origin: the paper
	// starts all origins' scans from the same ZMap seed, so they probe
	// identical addresses at identical scan positions. Only targets that
	// reach an IDS (routed, inside a monitored AS, not churned offline —
	// the fabric's gates ahead of RecordProbe) are kept.
	type walkKey struct {
		p     proto.Protocol
		trial int
	}
	walks := make(map[walkKey][]walkEntry, len(cfg.Protocols)*cfg.Trials)
	walkErrs := make([]error, len(cfg.Protocols)*cfg.Trials)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wi := 0
	for _, p := range cfg.Protocols {
		for trial := 0; trial < cfg.Trials; trial++ {
			wg.Add(1)
			go func(p proto.Protocol, trial, wi int) {
				defer wg.Done()
				entries, err := st.monitoredTargets(ctx, p, trial, monitored)
				if err != nil {
					walkErrs[wi] = err
					return
				}
				mu.Lock()
				walks[walkKey{p, trial}] = entries
				mu.Unlock()
			}(p, trial, wi)
			wi++
		}
	}
	wg.Wait()
	for _, err := range walkErrs {
		if err != nil {
			return nil, err
		}
	}

	// Replay per origin: a fresh set of IDS clones walks this origin's
	// scans in serial study order (trial-major, then protocol — detection
	// state persists across trials for Persistent IDSes). Origins don't
	// share source IPs, so the replays are independent of each other.
	plan.sims = make([][]*policy.IDS, len(dsOrigins))
	locals := make([]map[scanKey][]policy.Detector, len(dsOrigins))
	for oi, o := range dsOrigins {
		wg.Add(1)
		go func(oi int, o origin.ID) {
			defer wg.Done()
			org := st.originRecord(o)
			sims := make([]*policy.IDS, len(live))
			for i, d := range live {
				sims[i] = d.CloneEmpty()
			}
			local := make(map[scanKey][]policy.Detector)
			for trial := 0; trial < cfg.Trials; trial++ {
				if o == origin.CARINET && trial != 0 {
					continue
				}
				if ctx.Err() != nil {
					return // canceled: the post-Wait check reports it
				}
				for _, p := range cfg.Protocols {
					schedules := st.replayScan(org, p, trial, sims, walks[walkKey{p, trial}])
					dets := make([]policy.Detector, len(live))
					labels := scanLabels(st.World.Family, o, p, trial)
					for i, d := range live {
						sids := policy.NewScheduledIDS(d, cfg.ProbeDelay, schedules[i])
						sids.Metrics = telemetry.NewIDSMetrics(cfg.Telemetry,
							append(labels, telemetry.L("ids", d.RuleName))...)
						dets[i] = sids
					}
					local[scanKey{o: o, p: p, trial: trial}] = dets
				}
			}
			plan.sims[oi] = sims
			locals[oi] = local
		}(oi, o)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, pipeline.Canceled(err)
	}
	for _, local := range locals {
		for k, v := range local {
			plan.views[k] = v
		}
	}
	return plan, nil
}

// monitoredTargets computes the scan-order schedule of probe targets inside
// monitored ASes for one (protocol, trial), using the scanner's own sweep
// so the planner cannot diverge from what the scan will actually send.
func (st *Study) monitoredTargets(ctx context.Context, p proto.Protocol, trial int, monitored map[asn.ASN]bool) ([]walkEntry, error) {
	cfg := st.Config
	scanSeed := rng.NewKey(st.World.Spec.Seed).Derive("scan-seed").Uint64(uint64(p), uint64(trial))
	sc, err := zmap.NewScanner(zmap.Config{
		SourceIPs:    []ip.Addr{ip.AddrFrom4(1)}, // unused: Targets never sends
		TargetPort:   p.Port(),
		Probes:       cfg.Probes,
		ProbeDelay:   cfg.ProbeDelay,
		SpaceBits:    st.World.SpaceBits,
		Hitlist:      st.hitlist(),
		Seed:         scanSeed,
		Shard:        cfg.Shard,
		Shards:       cfg.Shards,
		ScanDuration: scenario.ScanDuration,
		Blocklist:    cfg.Blocklist,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: ids plan %v/trial %d: %w", p, trial, err)
	}
	var entries []walkEntry
	err = sc.Targets(ctx, func(dst ip.Addr, t time.Duration) {
		as, routed := st.World.ASOf(dst)
		if !routed || !monitored[as.Number] {
			return
		}
		if _, isHost := st.World.Lookup(dst); isHost && st.Scenario.Churn.Offline(dst, trial) {
			return
		}
		country, _ := st.World.CountryOf(dst)
		entries = append(entries, walkEntry{dst: dst, t: t, as: as.Number, country: country})
	})
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// replayScan drives one scan's probes through the origin's IDS clones and
// returns, per IDS, the detection schedule of each source IP: blocked
// before the scan started, or first blocked at a specific (time, probe).
func (st *Study) replayScan(org *origin.Origin, p proto.Protocol, trial int, sims []*policy.IDS, entries []walkEntry) []map[ip.Addr]*policy.SrcSchedule {
	cfg := st.Config
	schedules := make([]map[ip.Addr]*policy.SrcSchedule, len(sims))
	for i, sim := range sims {
		schedules[i] = make(map[ip.Addr]*policy.SrcSchedule)
		for _, src := range org.SourceIPs {
			if sim.BlockedState(src, trial) {
				schedules[i][src] = &policy.SrcSchedule{BlockedAtStart: true}
			}
		}
	}
	q := policy.Query{
		Origin:            org.ID,
		SrcCountry:        org.Country,
		NumSrcIPs:         len(org.SourceIPs),
		Rep:               org.ScanReputation,
		Proto:             p,
		Trial:             trial,
		ConcurrentOrigins: len(cfg.Origins),
	}
	for _, e := range entries {
		src := origin.SourceFor(org.SourceIPs, e.dst)
		q.SrcIP = src
		q.Dst = e.dst
		q.DstAS = e.as
		q.DstCountry = e.country
		for probe := 0; probe < cfg.Probes; probe++ {
			q.Time = e.t + time.Duration(probe)*cfg.ProbeDelay
			q.Probe = probe
			for i, sim := range sims {
				if sim.RecordProbe(&q) {
					if schedules[i][src] == nil {
						schedules[i][src] = &policy.SrcSchedule{Detected: true, T: e.t, Probe: probe}
					}
					break // the fabric drops the probe at the first blocking IDS
				}
			}
		}
	}
	return schedules
}
