package experiment

import (
	"context"
	"time"

	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
)

// ProbeSweepPoint is one point of the multi-probe coverage curve.
type ProbeSweepPoint struct {
	Probes   int
	Delay    time.Duration
	Coverage float64
}

// MultiProbeSweep reproduces the single-origin multi-probe estimate of
// Durumeric et al. (2012) that the paper revisits in §7/§8: coverage of one
// origin as a function of probes per target, optionally with a delay
// between probes (the Bano et al. mitigation). Ground truth is the main
// dataset's union for the trial; each sweep point re-scans with the
// modified probe configuration.
func (st *Study) MultiProbeSweep(ctx context.Context, ds *results.Dataset, o origin.ID, p proto.Protocol, trial int, maxProbes int, delay time.Duration) ([]ProbeSweepPoint, error) {
	gt := ds.GroundTruth(p, trial)
	if len(gt) == 0 {
		return nil, nil
	}
	var points []ProbeSweepPoint
	saved := st.Config
	defer func() { st.Config = saved }()
	for n := 1; n <= maxProbes; n++ {
		st.Config.Probes = n
		st.Config.ProbeDelay = delay
		res, err := st.ScanOne(ctx, o, p, trial)
		if err != nil {
			return points, err
		}
		seen := 0
		for _, a := range gt {
			if res.Success(a, false) {
				seen++
			}
		}
		points = append(points, ProbeSweepPoint{
			Probes:   n,
			Delay:    delay,
			Coverage: float64(seen) / float64(len(gt)),
		})
	}
	return points, nil
}
