package geo

import (
	"testing"

	"repro/internal/ip"
)

func TestRegistryAssignLookup(t *testing.T) {
	r := NewRegistry(DefaultCountries())
	if err := r.Assign(ip.MustParsePrefix("1.0.0.0/16"), "JP"); err != nil {
		t.Fatal(err)
	}
	if err := r.Assign(ip.MustParsePrefix("1.0.128.0/17"), "US"); err != nil {
		t.Fatal(err)
	}
	if c, ok := r.Lookup(ip.MustParseAddr("1.0.0.1")); !ok || c != "JP" {
		t.Errorf("Lookup = %v,%v", c, ok)
	}
	// More specific assignment wins (anycast-style reassignment).
	if c, ok := r.Lookup(ip.MustParseAddr("1.0.200.1")); !ok || c != "US" {
		t.Errorf("Lookup = %v,%v", c, ok)
	}
	if _, ok := r.Lookup(ip.MustParseAddr("9.9.9.9")); ok {
		t.Error("Lookup found unassigned address")
	}
}

func TestRegistryRejectsUnknownCountry(t *testing.T) {
	r := NewRegistry(DefaultCountries())
	if err := r.Assign(ip.MustParsePrefix("10.0.0.0/8"), "XX"); err == nil {
		t.Error("Assign accepted unknown country")
	}
}

func TestDefaultCountriesContainPaperCountries(t *testing.T) {
	// Every country named in the paper's Table 2 / Table 5 must exist.
	paper := []Country{
		"HK", "US", "GB", "CN", "RU", "ZA", "AR", "IT", "AT", "VE",
		"BD", "EC", "AM", "EE", "AL", "BF", "LY", "MN", "MW", "SD",
		"KR", "PL", "AU", "PT", "CO", "PE", "ZW", "TN", "SN", "GU",
		"FR", "NL", "RO", "BO", "GR", "JP", "BR", "DE", "KZ", "UA",
	}
	r := NewRegistry(DefaultCountries())
	for _, c := range paper {
		if _, ok := r.Info(c); !ok {
			t.Errorf("paper country %s missing from DefaultCountries", c)
		}
	}
}

func TestDefaultCountryWeights(t *testing.T) {
	r := NewRegistry(DefaultCountries())
	total := r.TotalWeight()
	if total <= 0.5 || total > 1.2 {
		t.Errorf("total weight %v outside sane range", total)
	}
	us, _ := r.Info("US")
	mw, _ := r.Info("MW")
	if us.Weight <= mw.Weight {
		t.Error("US should vastly outweigh Malawi")
	}
	for _, c := range r.Countries() {
		if c.Weight <= 0 {
			t.Errorf("country %s has non-positive weight", c.Code)
		}
	}
}

func TestCountriesSortedAndCopied(t *testing.T) {
	r := NewRegistry(DefaultCountries())
	cs := r.Countries()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Code >= cs[i].Code {
			t.Fatal("Countries() not sorted by code")
		}
	}
	cs[0].Weight = 99
	if r.Countries()[0].Weight == 99 {
		t.Error("Countries() exposes internal slice")
	}
}
