// Package geo provides the country registry and an IP-geolocation database
// with longest-prefix-match lookup, shaped after the MaxMind GeoLite2
// database the paper uses for geolocation.
package geo

import (
	"fmt"
	"sort"

	"repro/internal/ip"
)

// Country is an ISO 3166-1 alpha-2 country code.
type Country string

// Countries that appear in the paper's tables and figures, plus enough
// additional codes to populate a realistic long tail. Weight is the
// country's rough share of global hosts used by the world generator.
type CountryInfo struct {
	Code   Country
	Name   string
	Weight float64
}

// Registry holds the set of countries in a world and the geolocation
// database mapping prefixes to countries.
type Registry struct {
	countries map[Country]CountryInfo
	ordered   []CountryInfo
	db        *ip.RadixTree[Country]
}

// NewRegistry returns a registry with the given countries.
func NewRegistry(countries []CountryInfo) *Registry {
	r := &Registry{
		countries: make(map[Country]CountryInfo, len(countries)),
		db:        ip.NewRadixTree[Country](),
	}
	for _, c := range countries {
		r.countries[c.Code] = c
		r.ordered = append(r.ordered, c)
	}
	sort.Slice(r.ordered, func(i, j int) bool { return r.ordered[i].Code < r.ordered[j].Code })
	return r
}

// DefaultCountries returns the country mix used by the default synthetic
// world: every country named in the paper's tables plus a long tail. The
// weights approximate relative host populations (US/CN dominate; paper
// Table 2 column groups: >1M, >100K, >10K, >1K hosts).
func DefaultCountries() []CountryInfo {
	return []CountryInfo{
		// >1M-host tier.
		{"US", "United States", 0.235},
		{"CN", "China", 0.140},
		{"HK", "Hong Kong", 0.045},
		{"GB", "United Kingdom", 0.040},
		{"DE", "Germany", 0.055},
		{"RU", "Russia", 0.038},
		{"JP", "Japan", 0.050},
		{"FR", "France", 0.032},
		{"NL", "Netherlands", 0.025},
		{"KR", "South Korea", 0.030},
		// >100K-host tier.
		{"ZA", "South Africa", 0.012},
		{"AR", "Argentina", 0.010},
		{"IT", "Italy", 0.022},
		{"AT", "Austria", 0.008},
		{"VE", "Venezuela", 0.006},
		{"BR", "Brazil", 0.020},
		{"AU", "Australia", 0.018},
		{"PL", "Poland", 0.012},
		{"CA", "Canada", 0.018},
		{"IN", "India", 0.016},
		{"RO", "Romania", 0.008},
		{"UA", "Ukraine", 0.008},
		{"KZ", "Kazakhstan", 0.004},
		// >10K-host tier.
		{"BD", "Bangladesh", 0.003},
		{"EC", "Ecuador", 0.003},
		{"AM", "Armenia", 0.002},
		{"EE", "Estonia", 0.002},
		{"AL", "Albania", 0.002},
		{"BO", "Bolivia", 0.002},
		{"GR", "Greece", 0.004},
		{"TN", "Tunisia", 0.002},
		{"PT", "Portugal", 0.004},
		{"CO", "Colombia", 0.004},
		{"PE", "Peru", 0.003},
		// >1K-host tier.
		{"BF", "Burkina Faso", 0.0006},
		{"LY", "Libya", 0.0006},
		{"MN", "Mongolia", 0.0006},
		{"MW", "Malawi", 0.0005},
		{"SD", "Sudan", 0.0006},
		{"ZW", "Zimbabwe", 0.0005},
		{"SN", "Senegal", 0.0005},
		{"GU", "Guam", 0.0004},
		{"SG", "Singapore", 0.008},
		{"ES", "Spain", 0.010},
		{"SE", "Sweden", 0.006},
		{"CH", "Switzerland", 0.006},
		{"TR", "Turkey", 0.008},
		{"MX", "Mexico", 0.008},
		{"ID", "Indonesia", 0.008},
		{"VN", "Vietnam", 0.008},
		{"TW", "Taiwan", 0.008},
		{"CZ", "Czechia", 0.005},
	}
}

// Lookup returns the country for an address per the geolocation database.
func (r *Registry) Lookup(a ip.Addr) (Country, bool) {
	return r.db.Lookup(a)
}

// Assign records that a prefix geolocates to a country. Countries must be
// registered; unknown codes are an error so world-building bugs surface
// early.
func (r *Registry) Assign(p ip.Prefix, c Country) error {
	if _, ok := r.countries[c]; !ok {
		return fmt.Errorf("geo: unknown country %q", c)
	}
	r.db.Insert(p, c)
	return nil
}

// Info returns the registered info for a country code.
func (r *Registry) Info(c Country) (CountryInfo, bool) {
	ci, ok := r.countries[c]
	return ci, ok
}

// Countries returns all registered countries sorted by code.
func (r *Registry) Countries() []CountryInfo {
	out := make([]CountryInfo, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// TotalWeight returns the sum of all country weights (the generator
// normalizes by this).
func (r *Registry) TotalWeight() float64 {
	var t float64
	for _, c := range r.ordered {
		t += c.Weight
	}
	return t
}
