// Package bufpool recycles bufio.Readers across the simulated L7
// connections. Every grab and every served connection used to allocate a
// fresh 4 KiB reader buffer for a conversation of a few hundred bytes; at
// study scale those buffers dominated allocation volume on the
// application-layer path. Pooling them keeps the hot path's allocation
// profile flat in the number of connections.
package bufpool

import (
	"bufio"
	"io"
	"sync"
)

var readers = sync.Pool{
	New: func() any { return bufio.NewReader(nil) },
}

// Reader returns a pooled bufio.Reader reading from r. Release it with
// PutReader when the conversation is over.
func Reader(r io.Reader) *bufio.Reader {
	br := readers.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutReader returns br to the pool. The caller must not touch br again;
// the underlying reader reference is dropped so pooled entries don't pin
// dead connections.
func PutReader(br *bufio.Reader) {
	br.Reset(nil)
	readers.Put(br)
}
