package scenario

// The IPv6 scenario. The v4 scenario reproduces the paper's calibrated,
// profile-by-profile destination behaviours; a v6 world has no such
// published calibration (the paper scanned IPv4 only), so the v6 study
// models the same CLASSES of origin bias — reputation-driven blocking,
// origin-set blocks, geographic fences, lossy paths — drawn deterministically
// per provider AS from the scenario key. Every behaviour is keyed on the AS
// number, so the same world always gets the same blockers, and the study
// still answers the paper's question: does WHERE you scan from change WHAT
// you see?

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/loss"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/rng"
)

// buildLoss6 configures the v6 loss matrix: the same origin-level factors
// as v4 (they model the origins' connectivity, not the destinations), plus
// keyed per-provider lossy paths standing in for the profile overrides.
func (s *Scenario) buildLoss6(key rng.Key, cfg Config) {
	lcfg := loss.Config{
		OriginFactor: map[origin.ID]float64{
			origin.AU: 2.6,
			origin.BR: 1.3,
		},
		TrialMultiplier: map[origin.ID][]float64{
			origin.AU:  {1.0, 2.75, 1.4},
			origin.CEN: {1.5, 1.4, 0.6},
		},
		SiteAlias: map[origin.ID]origin.ID{
			origin.HE: origin.HE, origin.NTTC: origin.HE, origin.TELIA: origin.HE,
		},
	}
	s.Loss = loss.NewMatrix(key, lcfg)
	if cfg.DisableLossOverrides {
		return
	}
	// About a third of providers sit behind persistently lossy transit,
	// with a stable per-(origin, AS) drop — the v6 analog of the China
	// and Russia path overrides.
	ases, _ := s.World.ASWeights()
	pkey := key.Derive("v6paths")
	dkey := pkey.Derive("drop")
	for _, as := range ases {
		if pkey.Float64(uint64(as)) >= 0.35 {
			continue
		}
		for _, o := range allOrigins() {
			q := 0.01 + 0.07*dkey.Float64(uint64(as), uint64(o))
			s.Loss.Override(o, as, loss.Params{PacketDrop: q})
		}
	}
}

// buildPolicies6 assembles the v6 rule set: each provider AS draws at most
// one destination-side behaviour from the paper's catalogue, plus the
// global reputation scatter. Moderate HostFractions (rather than full-AS
// blocks) keep every origin's coverage meaningful over a few dozen islands.
func (s *Scenario) buildPolicies6(key rng.Key, cfg Config) {
	w := s.World
	s.Engine = policy.NewEngine()
	if cfg.DisableBlocking {
		return
	}
	add := func(r policy.Rule) { s.Engine.Add(r) }
	censys := policy.OriginMatch{MinReputation: origin.RepHeavy}
	ases, _ := w.ASWeights()
	bkey := key.Derive("v6blocks")
	for _, as := range ases {
		r := bkey.Float64(uint64(as))
		switch {
		case r < 0.30:
			// Heavy-scanner blocking (§4.1's Censys blocks, matched by
			// reputation so a fresh IP would recover the hosts).
			add(&policy.StaticBlock{
				RuleName: fmt.Sprintf("v6-as%d-blocks-heavy", as),
				Origins:  censys,
				Dests:    policy.DestMatch{ASes: []asn.ASN{as}},
				Action:   policy.Silent, HostFraction: 0.90,
				Key: bkey.DeriveN("heavy", uint64(as)),
			})
		case r < 0.48:
			// Origin-set block (§4.2's Mirai-fallout shape: Brazil and
			// Japan carry regional blocklist baggage).
			add(&policy.StaticBlock{
				RuleName: fmt.Sprintf("v6-as%d-blocks-br-jp", as),
				Origins:  policy.OriginMatch{IDs: origin.Set{origin.BR, origin.JP}},
				Dests:    policy.DestMatch{ASes: []asn.ASN{as}},
				Action:   policy.Silent, HostFraction: 0.60,
				Key: bkey.DeriveN("set", uint64(as)),
			})
		case r < 0.60:
			// Geographic fence (§4.4). Fence to the provider's
			// registration country when a study origin lives there
			// (Bekkoame's JP-only shape); otherwise the fence models the
			// provider's main customer geography, drawn from the
			// single-origin countries so fenced hosts become exclusively
			// visible from one vantage point — the §4.4 result.
			c := geo.Country("")
			if a, ok := w.Routes.Get(as); ok {
				c = a.Country
			}
			if !singleOriginCountry(c) {
				pool := []geo.Country{"AU", "BR", "DE", "JP"}
				c = pool[bkey.DeriveN("fence-cc", uint64(as)).Uint64()%uint64(len(pool))]
			}
			add(&policy.GeoFence{
				RuleName: fmt.Sprintf("v6-as%d-fence-%s", as, c),
				Allowed:  policy.OriginMatch{Countries: []geo.Country{c}},
				Dests:    policy.DestMatch{ASes: []asn.ASN{as}},
				Action:   policy.Silent, HostFraction: 0.35,
				Key: bkey.DeriveN("fence", uint64(as)),
			})
		}
	}
	addScatter6(add, key)
}

// singleOriginCountry reports whether exactly one study origin scans from c
// (a fence to such a country yields exclusively accessible hosts).
func singleOriginCountry(c geo.Country) bool {
	switch c {
	case "AU", "BR", "DE", "JP":
		return true
	}
	return false
}

// addScatter6 adds the diffuse reputation-driven scatter shared with v4.
func addScatter6(add func(policy.Rule), key rng.Key) {
	add(&policy.ReputationScatter{
		RuleName: "v6-reputation-scatter",
		FracByRep: map[origin.Reputation]float64{
			origin.RepHeavy:  0.012,
			origin.RepFresh:  0.0035,
			origin.RepUsed:   0.0009,
			origin.RepSubnet: 0.0007,
		},
		Action: policy.Silent,
		Key:    key.Derive("scatter"),
	})
}
