// Package scenario wires the paper's destination-side behaviours onto a
// generated world: which networks block which origins (§4), which paths are
// pathologically lossy (§4.2, §5.2), which networks run scan-detecting
// IDSes (§4.3), Alibaba's temporal SSH blocking and OpenSSH MaxStartups
// (§6), and the burst-outage schedules (§5.3). The output is everything the
// simulation fabric needs for a study.
package scenario

import (
	"time"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/hostsim"
	"repro/internal/loss"
	"repro/internal/origin"
	"repro/internal/outage"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/rng"
	"repro/internal/world"
)

// ScanDuration is the virtual length of one trial, as in the paper.
const ScanDuration = 21 * time.Hour

// Scenario bundles the per-study behaviour models.
type Scenario struct {
	World  *world.World
	Engine *policy.Engine
	IDSes  []*policy.IDS
	Loss   *loss.Matrix
	// Outages holds one schedule per protocol (scans of different
	// protocols run on different days, so their outages differ).
	Outages map[proto.Protocol]*outage.Schedule
	Hosts   *hostsim.Server
	// Churn is the between-trial host availability model (§2's
	// "temporal churn": trials weeks apart see different live hosts).
	Churn *world.Churn
	// Alibaba is the temporal SSH blocker, exposed for the Figure 12
	// timeline analysis.
	Alibaba *policy.TemporalRST
	// MaxStartups rules, exposed for §6 cause attribution.
	MaxStartupsRules []*policy.MaxStartups
}

// Config tunes scenario construction; zero values take calibrated defaults.
type Config struct {
	// Trials is the number of trials the schedules must cover.
	Trials int
	// NumOrigins is how many origins scan simultaneously.
	NumOrigins int
	// ChurnRate overrides the per-trial host-offline probability
	// (default 0.015; negative disables churn).
	ChurnRate float64
	// DisableOutages/DisableBlocking/DisableLossOverrides support
	// ablation benchmarks.
	DisableOutages       bool
	DisableBlocking      bool
	DisableLossOverrides bool
}

// New builds the default calibrated scenario for a world.
func New(w *world.World, cfg Config) *Scenario {
	if cfg.Trials == 0 {
		cfg.Trials = 3
	}
	if cfg.NumOrigins == 0 {
		cfg.NumOrigins = len(origin.StudySet())
	}
	key := rng.NewKey(w.Spec.Seed).Derive("scenario")
	churnRate := cfg.ChurnRate
	if churnRate == 0 {
		// Calibrated so hosts live in only one of three trials make
		// up the paper's "unknown" share of missing hosts (~15%).
		churnRate = 0.08
	}
	if churnRate < 0 {
		churnRate = 0
	}
	s := &Scenario{
		World: w,
		Hosts: hostsim.NewServer(key.Derive("hosts")),
		Churn: world.NewChurn(key.Derive("churn"), churnRate, cfg.Trials),
	}
	if w.Family == world.FamilyIPv6 {
		// v6 worlds have no calibrated profile ASes; see scenario6.go.
		s.buildLoss6(key.Derive("loss"), cfg)
		s.buildPolicies6(key.Derive("policy"), cfg)
	} else {
		s.buildLoss(key.Derive("loss"), cfg)
		s.buildPolicies(key.Derive("policy"), cfg)
	}
	s.buildOutages(key.Derive("outage"), cfg)
	// All Overrides are in: cache every path's Params so the per-packet
	// hot path is lock-free. +1 trial covers the SSH retry sub-experiment,
	// which runs at trial index Trials.
	ases, _ := w.ASWeights()
	s.Loss.Precompute(allOrigins(), ases, cfg.Trials+1)
	return s
}

func asnOf(w *world.World, name string) asn.ASN { return w.MustProfileASN(name) }

// buildLoss configures the loss matrix: global defaults plus the named
// pathological paths.
func (s *Scenario) buildLoss(key rng.Key, cfg Config) {
	w := s.World
	lcfg := loss.Config{
		OriginFactor: map[origin.ID]float64{
			// Australia has the worst connectivity (§5.2: highest
			// global packet loss, 0.44–1.6% band's top).
			origin.AU: 2.6,
			origin.BR: 1.3,
		},
		TrialMultiplier: map[origin.ID][]float64{
			// Australia's transient loss jumps 2.75× between trials
			// 1 and 2 (§3).
			origin.AU: {1.0, 2.75, 1.4},
			// Censys flips from high host loss / low packet loss to
			// the reverse in trial 3 (§5.2).
			origin.CEN: {1.5, 1.4, 0.6},
		},
		// Follow-up co-located Tier-1s share a site.
		SiteAlias: map[origin.ID]origin.ID{
			origin.HE: origin.HE, origin.NTTC: origin.HE, origin.TELIA: origin.HE,
		},
	}
	s.Loss = loss.NewMatrix(key, lcfg)
	if cfg.DisableLossOverrides {
		return
	}

	ti := asnOf(w, world.ProfTelecomIT)
	sparkle := asnOf(w, world.ProfSparkle)
	for _, o := range origin.StudySet() {
		switch o {
		case origin.BR:
			// TIM Brasil is a Telecom Italia subsidiary: clean paths.
			s.Loss.Override(o, ti, loss.Params{PacketDrop: 0.003})
			s.Loss.Override(o, sparkle, loss.Params{PacketDrop: 0.004})
		case origin.DE:
			// Germany: persistent lack of connectivity to a large,
			// stable subset of both networks (40%+ loss there).
			s.Loss.Override(o, ti, loss.Params{PacketDrop: 0.16, BadPrefixFrac: 0.36, BadDrop: 0.55})
			s.Loss.Override(o, sparkle, loss.Params{PacketDrop: 0.20, BadPrefixFrac: 0.46, BadDrop: 0.60})
		default:
			// Everyone else: very lossy (µ=16%) but TCP completes;
			// shows up as ZMap probe loss, i.e. transient.
			s.Loss.Override(o, ti, loss.Params{PacketDrop: 0.16})
			s.Loss.Override(o, sparkle, loss.Params{PacketDrop: 0.20})
		}
	}

	// Paths into China are unusually lossy from everywhere (3–14%), and
	// proximity does not help Japan (§5.2). Stable per (origin, AS).
	cnASes := []asn.ASN{
		asnOf(w, world.ProfAlibabaHZ), asnOf(w, world.ProfAlibabaCN),
		asnOf(w, world.ProfTencent), asnOf(w, world.ProfChinaTel),
	}
	cnKey := key.Derive("china")
	for _, as := range cnASes {
		for _, o := range allOrigins() {
			q := 0.03 + 0.06*cnKey.Float64(uint64(o), uint64(as))
			s.Loss.Override(o, as, loss.Params{PacketDrop: q})
		}
	}

	// Australia's consistently-worst destinations: Russia and Kazakhstan
	// (§5.1: AU's drop is >10× the second-worst origin there).
	for _, as := range []asn.ASN{
		asnOf(w, world.ProfRostelecom), asnOf(w, world.ProfRUNet2), asnOf(w, world.ProfKazTel),
	} {
		s.Loss.Override(origin.AU, as, loss.Params{PacketDrop: 0.045})
	}

	// ABCDE Group: huge transient spread across origins (Table 3: Δ62%,
	// flip-prone). High stable drop from a couple of origins plus a large
	// volatile component handled by the generic model.
	abcde := asnOf(w, world.ProfABCDE)
	s.Loss.Override(origin.AU, abcde, loss.Params{PacketDrop: 0.06})
	s.Loss.Override(origin.DE, abcde, loss.Params{PacketDrop: 0.04})
}

// buildPolicies assembles the rule set in priority order.
func (s *Scenario) buildPolicies(key rng.Key, cfg Config) {
	w := s.World
	s.Engine = policy.NewEngine()
	if cfg.DisableBlocking {
		return
	}
	add := func(r policy.Rule) { s.Engine.Add(r) }

	censys := policy.OriginMatch{MinReputation: origin.RepHeavy}

	// --- §4.1: the heavy Censys blockers (match on reputation: the
	// blocks follow Censys's well-known IP ranges, which is why a fresh
	// IP recovered >5.5% coverage in the follow-up). ---
	add(&policy.StaticBlock{
		RuleName: "dxtl-blocks-censys", Origins: censys,
		Dests:  policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfDXTL)}},
		Action: policy.Silent,
	})
	add(&policy.StaticBlock{
		RuleName: "enzu-blocks-censys", Origins: censys,
		Dests:  policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfEnzu)}},
		Action: policy.Silent,
	})
	add(&policy.StaticBlock{
		RuleName: "egi-blocks-censys", Origins: censys,
		Dests:           policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfEGI)}},
		Action:          policy.Silent,
		HostFraction:    0.90,
		FractionByTrial: []float64{0.90, 0.97, 1.0},
		Key:             key.Derive("egi"),
	})

	// Government and consumer networks block Censys wholesale (§4.2:
	// 40% of Censys-blocked networks are government, 22% consumer).
	var censysASes []asn.ASN
	for _, name := range w.ProfileNames() {
		if world.IsUSGov(name) || world.IsUSConsumer(name) {
			censysASes = append(censysASes, asnOf(w, name))
		}
	}
	censysASes = append(censysASes, asnOf(w, world.ProfJackBox))
	add(&policy.StaticBlock{
		RuleName: "gov-consumer-block-censys", Origins: censys,
		Dests:  policy.DestMatch{ASes: censysASes},
		Action: policy.Silent,
	})

	// --- §4.2: ABCDE Group blocks a stable quarter of its network for
	// US, Brazil, and Censys. ---
	add(&policy.StaticBlock{
		RuleName: "abcde-blocks-us-br-cen",
		Origins:  policy.OriginMatch{IDs: origin.Set{origin.US1, origin.US64, origin.BR, origin.CEN}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfABCDE)}},
		Action:   policy.Silent, HostFraction: 0.25,
		Key: key.Derive("abcde"),
	})

	// Eastern-European hosting blocks Brazil and Japan (§4.2: 12.2% of
	// Estonia, 1.4% of Russia, 3% of Ukraine/Romania).
	add(&policy.StaticBlock{
		RuleName: "eastern-eu-blocks-br-jp",
		Origins:  policy.OriginMatch{IDs: origin.Set{origin.BR, origin.JP}},
		Dests: policy.DestMatch{ASes: []asn.ASN{
			asnOf(w, world.ProfSantaPlus), asnOf(w, world.ProfEEHost),
			asnOf(w, world.ProfUAHost), asnOf(w, world.ProfROHost),
		}},
		Action: policy.Silent, HostFraction: 0.85,
		Key: key.Derive("ee"),
	})

	// US financial/healthcare networks block Brazil entirely (§4.2:
	// about half of Brazil-only full-AS blocks; Mirai fallout).
	var brASes []asn.ASN
	for _, name := range w.ProfileNames() {
		if world.IsUSFinancial(name) || world.IsUSHealthcare(name) {
			brASes = append(brASes, asnOf(w, name))
		}
	}
	add(&policy.StaticBlock{
		RuleName: "us-fin-health-block-brazil",
		Origins:  policy.OriginMatch{IDs: origin.Set{origin.BR}},
		Dests:    policy.DestMatch{ASes: brASes},
		Action:   policy.Silent,
	})

	// Tegna blocks every non-US origin (§4.2).
	add(&policy.StaticBlock{
		RuleName: "tegna-blocks-non-us",
		Origins:  policy.OriginMatch{ExcludeCountries: []geo.Country{"US"}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfTegna)}},
		Action:   policy.Silent,
	})

	// --- §4.4: geographic fences. ---
	add(&policy.GeoFence{
		RuleName: "bekkoame-jp-only",
		Allowed:  policy.OriginMatch{Countries: []geo.Country{"JP"}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfBekkoame)}},
		Action:   policy.Silent, HostFraction: 0.025,
		Key: key.Derive("bekkoame"),
	})
	add(&policy.GeoFence{
		RuleName: "ntt-jp-only",
		Allowed:  policy.OriginMatch{Countries: []geo.Country{"JP"}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfNTTJP)}},
		Action:   policy.Silent, HostFraction: 0.03,
		Key: key.Derive("ntt"),
	})
	add(&policy.GeoFence{
		RuleName: "gateway-jp-only",
		Allowed:  policy.OriginMatch{Countries: []geo.Country{"JP"}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfGatewayInc)}},
		Action:   policy.Silent, HostFraction: 0.30,
		Key: key.Derive("gateway"),
	})
	add(&policy.GeoFence{
		RuleName: "webcentral-au-only",
		Allowed:  policy.OriginMatch{Countries: []geo.Country{"AU"}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfWebCentral)}},
		Action:   policy.Silent, HostFraction: 0.12,
		Key: key.Derive("webcentral"),
	})
	add(&policy.GeoFence{
		RuleName: "cloudflare-anycast-misconfig-au",
		Allowed:  policy.OriginMatch{Countries: []geo.Country{"AU"}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfCloudflare)}},
		Action:   policy.Silent, HostFraction: 0.004,
		Key: key.Derive("cloudflare"),
	})
	add(&policy.GeoFence{
		RuleName: "wa-k20-br-only",
		Allowed:  policy.OriginMatch{Countries: []geo.Country{"BR"}},
		Dests:    policy.DestMatch{ASes: []asn.ASN{asnOf(w, world.ProfWAK20)}},
		Action:   policy.Silent, HostFraction: 0.70,
		Key: key.Derive("wak20"),
	})

	// --- Diffuse reputation-driven blocking: Censys's remaining ~1%
	// spread thinly, plus the fresh-IP regional blocklists that hit
	// Brazil and Japan (§4.2). ---
	add(&policy.ReputationScatter{
		RuleName: "reputation-scatter",
		FracByRep: map[origin.Reputation]float64{
			origin.RepHeavy:  0.012,
			origin.RepFresh:  0.0035,
			origin.RepUsed:   0.0009,
			origin.RepSubnet: 0.0007,
		},
		Action: policy.Silent,
		Key:    key.Derive("scatter"),
	})

	// --- §4.3: rate-triggered IDSes, evaded by 64-IP scanning. ---
	ruhr := &policy.IDS{
		RuleName: "ruhr-uni-ids", AS: asnOf(w, world.ProfRuhrUni),
		Threshold:  thresholdFor(w, world.ProfRuhrUni, 0.10),
		Persistent: true, Action: policy.Silent,
	}
	// SK Broadband's detector watches SSH brute-force traffic; §4.3
	// finds it accounts for over half of the SSH hosts exclusively
	// visible to the 64-IP origin.
	sk := &policy.IDS{
		RuleName: "sk-broadband-ids", AS: asnOf(w, world.ProfSKBroadband),
		Threshold:  thresholdFor(w, world.ProfSKBroadband, 0.20),
		Protos:     policy.DestMatch{Protocols: proto.Bit(proto.SSH)},
		Persistent: true, Action: policy.Silent,
	}
	s.IDSes = []*policy.IDS{ruhr, sk}

	// --- §6: Alibaba's temporal network-wide SSH RSTs. ---
	s.Alibaba = &policy.TemporalRST{
		RuleName: "alibaba-ssh-temporal",
		ASes:     []asn.ASN{asnOf(w, world.ProfAlibabaHZ), asnOf(w, world.ProfAlibabaCN)},
		Proto:    proto.SSH, MaxSrcIPs: 8,
		ScanDuration: ScanDuration,
		DetectMin:    0.45, DetectMax: 0.85,
		BlockedWindow: 3 * time.Hour, ClearWindow: 90 * time.Minute,
		Key: key.Derive("alibaba"),
	}
	add(s.Alibaba)

	// --- §6: OpenSSH MaxStartups. Heavily loaded hosting providers
	// (EGI, Psychz) first, then a thinner global population. ---
	heavy := &policy.MaxStartups{
		RuleName:     "maxstartups-hosting",
		HostFraction: 0.55,
		Dests: policy.DestMatch{ASes: []asn.ASN{
			asnOf(w, world.ProfEGI), asnOf(w, world.ProfPsychz),
			asnOf(w, world.ProfDigitalOcn), asnOf(w, world.ProfOVH),
		}},
		Start: 6, Rate: 0.5, Full: 40, MeanLoad: 7,
		Key: key.Derive("ms-heavy"),
	}
	global := &policy.MaxStartups{
		RuleName:     "maxstartups-global",
		HostFraction: 0.055,
		Start:        8, Rate: 0.5, Full: 60, MeanLoad: 6,
		Key: key.Derive("ms-global"),
	}
	s.MaxStartupsRules = []*policy.MaxStartups{heavy, global}
	add(heavy)
	add(global)
}

// thresholdFor sizes an IDS trigger relative to the AS's announced space:
// frac of the probes a 2-probe single-IP scan sends its way. A 64-IP origin
// sends 1/64 per source and stays far below.
func thresholdFor(w *world.World, profile string, frac float64) int {
	a, _ := w.Routes.Get(w.MustProfileASN(profile))
	n := int(float64(a.NumAddrs()) * 2 * frac)
	if n < 8 {
		n = 8
	}
	return n
}

// buildOutages generates one burst schedule per protocol, including the
// Brazil HTTPS trial-3 wide event (§5.3).
func (s *Scenario) buildOutages(key rng.Key, cfg Config) {
	s.Outages = make(map[proto.Protocol]*outage.Schedule)
	if cfg.DisableOutages {
		return
	}
	ases, weights := s.World.ASWeights()
	for _, p := range proto.All() {
		ocfg := outage.Config{
			ScanDuration:   ScanDuration,
			EventsPerTrial: 6 + s.World.Routes.Len()/30,
		}
		if p == proto.HTTPS {
			ocfg.WideEvents = []outage.WideEvent{{
				Trial: 2, Origin: origin.BR,
				Start: 9 * time.Hour, Duration: time.Hour,
				ASFraction: 0.39, Severity: 0.5,
			}}
		}
		s.Outages[p] = outage.Generate(key.DeriveN("proto", uint64(p)), ocfg, cfg.Trials, allOrigins(), ases, weights)
	}
}

// allOrigins returns every origin the scenario must model, including the
// follow-up Tier-1s and Carinet.
func allOrigins() origin.Set {
	return origin.Set{
		origin.AU, origin.BR, origin.DE, origin.JP, origin.US1, origin.US64,
		origin.CEN, origin.CARINET, origin.HE, origin.NTTC, origin.TELIA,
	}
}
