package scenario

import (
	"context"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/policy"
	"repro/internal/proto"
	"repro/internal/world"
)

func testScenario(t *testing.T) (*Scenario, *world.World) {
	t.Helper()
	w, err := world.Build(context.Background(), world.TestSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	return New(w, Config{Trials: 3, NumOrigins: 7}), w
}

// queryFor builds a policy query targeting the first host of a profile AS.
func queryFor(t *testing.T, w *world.World, profile string, o origin.ID, p proto.Protocol) *policy.Query {
	t.Helper()
	n := w.MustProfileASN(profile)
	idxs := w.HostsInAS(n)
	if len(idxs) == 0 {
		t.Fatalf("profile %s has no hosts", profile)
	}
	host := w.Hosts()[idxs[0]].Addr
	org := w.Origins.Get(o)
	country, _ := w.CountryOf(host)
	return &policy.Query{
		Origin: o, SrcIP: org.SourceIPs[0], SrcCountry: org.Country,
		NumSrcIPs: len(org.SourceIPs), Rep: org.ScanReputation,
		Dst: host, DstAS: n, DstCountry: country, Proto: p,
		ConcurrentOrigins: 7,
	}
}

func TestCensysBlockedByDXTLAndEnzu(t *testing.T) {
	s, w := testScenario(t)
	for _, prof := range []string{world.ProfDXTL, world.ProfEnzu} {
		q := queryFor(t, w, prof, origin.CEN, proto.HTTP)
		v, rule := s.Engine.Evaluate(q)
		if v != policy.Silent {
			t.Errorf("%s: Censys verdict %v (rule %q), want Silent", prof, v, rule)
		}
		// Academic origins pass.
		q2 := queryFor(t, w, prof, origin.JP, proto.HTTP)
		if v, _ := s.Engine.Evaluate(q2); v != policy.Allow {
			t.Errorf("%s: JP verdict %v, want Allow", prof, v)
		}
	}
}

func TestFreshCensysIPEvadesBlocks(t *testing.T) {
	// The blocks key on reputation (Censys's known ranges); a fresh
	// identity passes — the follow-up experiment's +5.5%.
	s, w := testScenario(t)
	q := queryFor(t, w, world.ProfDXTL, origin.CEN, proto.HTTP)
	q.Rep = origin.RepFresh
	if v, rule := s.Engine.Evaluate(q); v != policy.Allow {
		t.Errorf("fresh Censys verdict %v (rule %q), want Allow", v, rule)
	}
}

func TestTegnaBlocksNonUS(t *testing.T) {
	s, w := testScenario(t)
	for _, o := range []origin.ID{origin.AU, origin.BR, origin.DE, origin.JP} {
		q := queryFor(t, w, world.ProfTegna, o, proto.HTTP)
		if v, _ := s.Engine.Evaluate(q); v != policy.Silent {
			t.Errorf("%v to Tegna: %v, want Silent", o, v)
		}
	}
	for _, o := range []origin.ID{origin.US1, origin.US64, origin.CEN} {
		q := queryFor(t, w, world.ProfTegna, o, proto.HTTP)
		if v, _ := s.Engine.Evaluate(q); v != policy.Allow {
			t.Errorf("%v (US) to Tegna: %v, want Allow", o, v)
		}
	}
}

func TestWebCentralFenceAllowsAustralia(t *testing.T) {
	s, w := testScenario(t)
	n := w.MustProfileASN(world.ProfWebCentral)
	// Find a fenced host: one blocked for US1 must be allowed for AU.
	fenced := 0
	for _, idx := range w.HostsInAS(n) {
		host := w.Hosts()[idx].Addr
		qUS := queryFor(t, w, world.ProfWebCentral, origin.US1, proto.HTTP)
		qUS.Dst = host
		vUS, _ := s.Engine.Evaluate(qUS)
		if vUS != policy.Silent {
			continue
		}
		fenced++
		qAU := queryFor(t, w, world.ProfWebCentral, origin.AU, proto.HTTP)
		qAU.Dst = host
		if vAU, _ := s.Engine.Evaluate(qAU); vAU != policy.Allow {
			t.Fatalf("AU blocked from its own fenced host: %v", vAU)
		}
	}
	if fenced == 0 {
		t.Error("WebCentral fence selected no hosts")
	}
}

func TestAlibabaTemporalSSHOnlyLate(t *testing.T) {
	s, w := testScenario(t)
	q := queryFor(t, w, world.ProfAlibabaHZ, origin.JP, proto.SSH)
	q.Time = time.Hour
	if v, _ := s.Engine.Evaluate(q); v != policy.Allow {
		t.Errorf("early SSH to Alibaba: %v, want Allow", v)
	}
	// Detection fires somewhere in [0.45, 0.85] of 21h; at 20h some
	// blocked windows must exist (intermittent, so scan a few hours).
	blocked := false
	for h := 18; h <= 20; h++ {
		q.Time = time.Duration(h) * time.Hour
		if v, _ := s.Engine.Evaluate(q); v == policy.ResetAfterAccept {
			blocked = true
		}
	}
	if !blocked {
		t.Error("late SSH to Alibaba never blocked")
	}
	// HTTP to the same network is never temporally blocked.
	qh := queryFor(t, w, world.ProfAlibabaHZ, origin.JP, proto.HTTP)
	qh.Time = 20 * time.Hour
	if v, _ := s.Engine.Evaluate(qh); v == policy.ResetAfterAccept {
		t.Error("temporal blocker leaked to HTTP")
	}
	// US64 evades.
	q64 := queryFor(t, w, world.ProfAlibabaHZ, origin.US64, proto.SSH)
	q64.Time = 20 * time.Hour
	if v, _ := s.Engine.Evaluate(q64); v == policy.ResetAfterAccept {
		t.Error("US64 should evade temporal blocking")
	}
}

func TestMaxStartupsCoversEGIHeavily(t *testing.T) {
	s, w := testScenario(t)
	heavy := s.MaxStartupsRules[0]
	n := w.MustProfileASN(world.ProfEGI)
	affected := 0
	total := 0
	for _, idx := range w.HostsInAS(n) {
		h := w.Hosts()[idx]
		if !h.Services.Has(proto.SSH) {
			continue
		}
		total++
		q := queryFor(t, w, world.ProfEGI, origin.US1, proto.SSH)
		q.Dst = h.Addr
		if heavy.Affected(q) {
			affected++
		}
	}
	if total == 0 {
		t.Skip("no SSH hosts in EGI at this scale")
	}
	if affected == 0 {
		t.Error("no EGI SSH hosts affected by MaxStartups")
	}
}

func TestLossOverridesDEtoTelecomItalia(t *testing.T) {
	s, w := testScenario(t)
	ti := w.MustProfileASN(world.ProfTelecomIT)
	de := s.Loss.Params(origin.DE, ti, 0)
	br := s.Loss.Params(origin.BR, ti, 0)
	us := s.Loss.Params(origin.US1, ti, 0)
	if de.BadPrefixFrac == 0 || de.BadDrop < 0.4 {
		t.Errorf("DE→TI should have pathological /24s: %+v", de)
	}
	if br.PacketDrop > 0.01 {
		t.Errorf("BR→TI should be clean (TIM Brasil): %v", br.PacketDrop)
	}
	if us.PacketDrop < 0.10 {
		t.Errorf("US→TI should be very lossy (µ=16%%): %v", us.PacketDrop)
	}
}

func TestChinaPathsLossyFromEverywhere(t *testing.T) {
	s, w := testScenario(t)
	ct := w.MustProfileASN(world.ProfChinaTel)
	for _, o := range origin.StudySet() {
		p := s.Loss.Params(o, ct, 0)
		if p.PacketDrop < 0.02 || p.PacketDrop > 0.15 {
			t.Errorf("%v→China Telecom drop %v outside the paper's 3-14%% band", o, p.PacketDrop)
		}
	}
}

func TestAustraliaWorstToRussia(t *testing.T) {
	s, w := testScenario(t)
	ru := w.MustProfileASN(world.ProfRostelecom)
	au := s.Loss.Params(origin.AU, ru, 0).PacketDrop
	for _, o := range []origin.ID{origin.BR, origin.DE, origin.JP, origin.US1} {
		if other := s.Loss.Params(o, ru, 0).PacketDrop; au < 3*other {
			t.Errorf("AU→Rostelecom drop %v should be ≫ %v→ (%v)", au, o, other)
		}
	}
}

func TestOutageSchedulesPerProtocol(t *testing.T) {
	s, _ := testScenario(t)
	for _, p := range proto.All() {
		if s.Outages[p] == nil {
			t.Fatalf("no outage schedule for %v", p)
		}
	}
	// The wide Brazil event lives in the HTTPS schedule, trial 3.
	affectedSomewhere := false
	nums, _ := s.World.ASWeights()
	for _, n := range nums {
		for dst := uint32(0); dst < 50; dst++ {
			if s.Outages[proto.HTTPS].Affected(2, origin.BR, n, ip.AddrFrom4(dst), 9*time.Hour+30*time.Minute) {
				affectedSomewhere = true
				break
			}
		}
		if affectedSomewhere {
			break
		}
	}
	if !affectedSomewhere {
		t.Error("Brazil HTTPS trial-3 wide event not present")
	}
}

func TestAblationsDisableBehaviours(t *testing.T) {
	w, err := world.Build(context.Background(), world.TestSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	s := New(w, Config{Trials: 3, NumOrigins: 7, DisableBlocking: true, DisableOutages: true, DisableLossOverrides: true})
	if len(s.Engine.Rules()) != 0 {
		t.Error("DisableBlocking left rules in place")
	}
	if len(s.Outages) != 0 {
		t.Error("DisableOutages left schedules")
	}
	ti := w.MustProfileASN(world.ProfTelecomIT)
	if p := s.Loss.Params(origin.DE, ti, 0); p.BadPrefixFrac != 0 {
		t.Error("DisableLossOverrides left overrides")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	s1, w := testScenario(t)
	s2 := New(w, Config{Trials: 3, NumOrigins: 7})
	for _, o := range origin.StudySet() {
		for _, name := range []string{world.ProfAkamai, world.ProfTencent} {
			n := w.MustProfileASN(name)
			if s1.Loss.Params(o, n, 1) != s2.Loss.Params(o, n, 1) {
				t.Fatal("scenario loss params not deterministic")
			}
		}
	}
}
