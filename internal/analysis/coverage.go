package analysis

import (
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/stats"
)

// CoverageCell is one (origin, trial) entry of Table 4a.
type CoverageCell struct {
	Origin   origin.ID
	Trial    int
	Coverage float64 // 2-probe
	Single   float64 // 1-probe simulation
}

// CoverageTable is Table 4a for one protocol: per-origin per-trial coverage
// plus the all-origin intersection and the ground-truth union size.
type CoverageTable struct {
	Proto proto.Protocol
	Cells []CoverageCell
	// Intersection[t] is the fraction of trial t's ground truth that
	// every origin saw; Union[t] is the ground-truth host count.
	Intersection []float64
	Union        []int
}

// Coverage computes Table 4a for one protocol.
func Coverage(ds *results.Dataset, p proto.Protocol) CoverageTable {
	t := CoverageTable{Proto: p}
	for trial := 0; trial < ds.Trials; trial++ {
		gt := ds.GroundTruth(p, trial)
		t.Union = append(t.Union, len(gt))
		inter := ds.Intersection(p, trial)
		if len(gt) > 0 {
			t.Intersection = append(t.Intersection, float64(inter)/float64(len(gt)))
		} else {
			t.Intersection = append(t.Intersection, 0)
		}
		for _, o := range ds.Origins {
			if ds.Scan(o, p, trial) == nil {
				continue
			}
			t.Cells = append(t.Cells, CoverageCell{
				Origin:   o,
				Trial:    trial,
				Coverage: ds.Coverage(o, p, trial, false),
				Single:   ds.Coverage(o, p, trial, true),
			})
		}
	}
	return t
}

// Mean returns the origin's mean coverage across its trials.
func (t *CoverageTable) Mean(o origin.ID, singleProbe bool) float64 {
	var vals []float64
	for _, c := range t.Cells {
		if c.Origin != o {
			continue
		}
		if singleProbe {
			vals = append(vals, c.Single)
		} else {
			vals = append(vals, c.Coverage)
		}
	}
	return stats.Mean(vals)
}

// PairwiseMcNemar runs McNemar's test between every pair of origins for
// one protocol and trial over the ground-truth hosts, Bonferroni-corrected
// for the number of pairs (§3).
type McNemarPair struct {
	OrigA, OrigB origin.ID
	stats.McNemarResult
	PAdjusted float64
}

// PairwiseMcNemar computes the §3 significance matrix.
func PairwiseMcNemar(ds *results.Dataset, p proto.Protocol, trial int) []McNemarPair {
	gt := ds.GroundTruth(p, trial)
	var origins origin.Set
	for _, o := range ds.Origins {
		if ds.Scan(o, p, trial) != nil {
			origins = append(origins, o)
		}
	}
	nPairs := len(origins) * (len(origins) - 1) / 2
	var out []McNemarPair
	for i := 0; i < len(origins); i++ {
		for j := i + 1; j < len(origins); j++ {
			a, b := origins[i], origins[j]
			sa, sb := ds.MustScan(a, p, trial), ds.MustScan(b, p, trial)
			aAddrs, bAddrs := sa.Addrs(), sb.Addrs()
			var onlyA, onlyB uint64
			ai, bi := 0, 0
			for _, h := range gt {
				for ai < len(aAddrs) && aAddrs[ai].Less(h) {
					ai++
				}
				for bi < len(bAddrs) && bAddrs[bi].Less(h) {
					bi++
				}
				va := ai < len(aAddrs) && aAddrs[ai] == h && sa.SuccessAt(ai, false)
				vb := bi < len(bAddrs) && bAddrs[bi] == h && sb.SuccessAt(bi, false)
				if va && !vb {
					onlyA++
				} else if vb && !va {
					onlyB++
				}
			}
			r := stats.McNemar(onlyA, onlyB)
			out = append(out, McNemarPair{
				OrigA: a, OrigB: b, McNemarResult: r,
				PAdjusted: stats.Bonferroni(r.P, nPairs),
			})
		}
	}
	return out
}

// CochranQ runs Cochran's Q across all origins for one protocol and trial
// (§3 notes why pairwise McNemar is preferred; provided for completeness).
func CochranQ(ds *results.Dataset, p proto.Protocol, trial int) (q float64, df int, pval float64) {
	gt := ds.GroundTruth(p, trial)
	var origins origin.Set
	for _, o := range ds.Origins {
		if ds.Scan(o, p, trial) != nil {
			origins = append(origins, o)
		}
	}
	scans := make([]*results.ScanResult, len(origins))
	addrs := make([]ip.AddrSlice, len(origins))
	cursors := make([]int, len(origins))
	for i, o := range origins {
		scans[i] = ds.MustScan(o, p, trial)
		addrs[i] = scans[i].Addrs()
	}
	rows := make([][]bool, 0, len(gt))
	for _, h := range gt {
		row := make([]bool, len(origins))
		for i := range origins {
			j, as := cursors[i], addrs[i]
			for j < len(as) && as[j].Less(h) {
				j++
			}
			cursors[i] = j
			row[i] = j < len(as) && as[j] == h && scans[i].SuccessAt(j, false)
		}
		rows = append(rows, row)
	}
	return stats.CochranQ(rows)
}

// ProbeStats quantifies the §7 probe-level findings for one origin,
// protocol, and trial: 1- vs 2-probe coverage and the both-probes-lost
// conditional probability (the paper finds ≥93%, i.e. loss is correlated).
type ProbeStats struct {
	Origin          origin.ID
	Trial           int
	Coverage2Probe  float64
	Coverage1Probe  float64
	LostAtLeastOne  int
	LostBoth        int
	BothLostPortion float64
}

// Probes computes ProbeStats over the trial's ground truth.
func Probes(ds *results.Dataset, p proto.Protocol, o origin.ID, trial int) ProbeStats {
	ps := ProbeStats{Origin: o, Trial: trial}
	ps.Coverage2Probe = ds.Coverage(o, p, trial, false)
	ps.Coverage1Probe = ds.Coverage(o, p, trial, true)
	s := ds.Scan(o, p, trial)
	if s == nil {
		return ps
	}
	addrs := s.Addrs()
	j := 0
	for _, h := range ds.GroundTruth(p, trial) {
		for j < len(addrs) && addrs[j].Less(h) {
			j++
		}
		mask := uint8(0)
		if j < len(addrs) && addrs[j] == h {
			mask = s.RecordAt(j).ProbeMask
		}
		switch {
		case mask == 0b11:
			// both probes answered
		case mask == 0:
			ps.LostAtLeastOne++
			ps.LostBoth++
		default:
			ps.LostAtLeastOne++
		}
	}
	if ps.LostAtLeastOne > 0 {
		ps.BothLostPortion = float64(ps.LostBoth) / float64(ps.LostAtLeastOne)
	}
	return ps
}
