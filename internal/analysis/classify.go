// Package analysis implements the paper's analyses over a study dataset:
// accessibility classification (transient vs long-term, host vs /24
// network), coverage tables, exclusivity, per-AS and per-country
// aggregation, packet-loss estimation, best/worst-origin stability, burst
// attribution, SSH cause breakdown, and multi-origin coverage.
package analysis

import (
	"math/bits"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
)

// Topology resolves hosts to networks and countries. *world.World
// satisfies it via WorldTopo; analyses of real scan data would plug a
// routing-table snapshot and geolocation database here instead.
type Topology interface {
	ASOf(a ip.Addr) (asn.ASN, bool)
	ASName(n asn.ASN) string
	CountryOf(a ip.Addr) (geo.Country, bool)
}

// Class is a host's accessibility classification from one origin (§3).
type Class uint8

const (
	// ClassAccessible: the origin completed a handshake in every trial
	// where the host was live.
	ClassAccessible Class = iota
	// ClassTransient: missed in some trials, seen in others.
	ClassTransient
	// ClassLongTerm: missed in every trial the host was live in (and it
	// was live in more than one).
	ClassLongTerm
	// ClassUnknown: the host appeared in only one trial, so transient
	// and long-term cannot be distinguished.
	ClassUnknown
)

var classNames = [...]string{"accessible", "transient", "long-term", "unknown"}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(?)"
}

// Classifier computes and caches per-host classifications for one protocol
// across all trials of a dataset.
//
// Its layout mirrors the columnar store: the sorted union of all live
// hosts is the spine, and presence bitmasks and per-origin classes are
// columns aligned with it. Downstream analyses iterate the spine by index
// (OfAt/PresentAt), which is a straight array walk — no hash lookups.
type Classifier struct {
	DS    *results.Dataset
	Proto proto.Protocol

	// union is every host live in at least one trial, sorted — the spine
	// all aligned columns index into.
	union ip.AddrSlice
	// presence[i] is a bitmask of trials union[i] was live in.
	presence []uint8
	// class[origin][i] is union[i]'s classification from the origin.
	class map[origin.ID][]Class
}

// NewClassifier classifies the dataset's hosts for one protocol. All
// per-host state is built with merge walks over the trials' sorted
// ground-truth and scan columns.
func NewClassifier(ds *results.Dataset, p proto.Protocol) *Classifier {
	gts := make([]ip.AddrSlice, ds.Trials)
	for t := range gts {
		gts[t] = ds.GroundTruth(p, t)
	}
	c := &Classifier{
		DS: ds, Proto: p,
		union: ip.Union(gts...),
		class: make(map[origin.ID][]Class, len(ds.Origins)),
	}
	c.presence = make([]uint8, len(c.union))
	for t, gt := range gts {
		ui := 0
		for _, a := range gt {
			for c.union[ui].Less(a) {
				ui++
			}
			c.presence[ui] |= 1 << t
		}
	}
	for _, o := range ds.Origins {
		c.class[o] = c.classifyOrigin(o, gts)
	}
	return c
}

// classifyOrigin walks each trial's ground truth against the origin's scan
// column, accumulating per-host present/missed counts along the union
// spine, then folds the counts into classes.
func (c *Classifier) classifyOrigin(o origin.ID, gts []ip.AddrSlice) []Class {
	present := make([]uint8, len(c.union))
	missed := make([]uint8, len(c.union))
	for t, gt := range gts {
		s := c.DS.Scan(o, c.Proto, t)
		if s == nil {
			// Origin did not scan this trial (Carinet): only its
			// scanned trials count.
			continue
		}
		addrs := s.Addrs()
		ui, j := 0, 0
		for _, a := range gt {
			for c.union[ui].Less(a) {
				ui++
			}
			for j < len(addrs) && addrs[j].Less(a) {
				j++
			}
			present[ui]++
			if !(j < len(addrs) && addrs[j] == a && s.SuccessAt(j, false)) {
				missed[ui]++
			}
		}
	}
	out := make([]Class, len(c.union))
	for i := range out {
		switch {
		case present[i] == 0:
			out[i] = ClassUnknown
		case missed[i] == 0:
			out[i] = ClassAccessible
		case present[i] == 1:
			out[i] = ClassUnknown
		case missed[i] == present[i]:
			out[i] = ClassLongTerm
		default:
			out[i] = ClassTransient
		}
	}
	return out
}

// Union returns every host live in at least one trial, sorted by address.
// Indices into it are valid for OfAt, PresentAt, and TrialsPresentAt.
func (c *Classifier) Union() []ip.Addr { return c.union }

// Index returns a host's position on the union spine.
func (c *Classifier) Index(a ip.Addr) (int, bool) {
	i := c.union.Search(a)
	if i < len(c.union) && c.union[i] == a {
		return i, true
	}
	return i, false
}

// PresentAt reports whether union[i] was live in the trial.
func (c *Classifier) PresentAt(i, trial int) bool {
	return c.presence[i]&(1<<trial) != 0
}

// PresentIn reports whether the host was live in the trial.
func (c *Classifier) PresentIn(a ip.Addr, trial int) bool {
	i, ok := c.Index(a)
	return ok && c.PresentAt(i, trial)
}

// TrialsPresentAt returns the number of trials union[i] was live in.
func (c *Classifier) TrialsPresentAt(i int) int {
	return bits.OnesCount8(c.presence[i])
}

// TrialsPresent returns the number of trials the host was live in.
func (c *Classifier) TrialsPresent(a ip.Addr) int {
	i, ok := c.Index(a)
	if !ok {
		return 0
	}
	return c.TrialsPresentAt(i)
}

// OfAt returns union[i]'s classification from the origin.
func (c *Classifier) OfAt(o origin.ID, i int) Class { return c.class[o][i] }

// Of returns the host's classification from the origin.
func (c *Classifier) Of(o origin.ID, a ip.Addr) Class {
	i, ok := c.Index(a)
	if !ok {
		return ClassUnknown
	}
	return c.class[o][i]
}

// HostsOfClass returns the hosts with the given class from the origin.
func (c *Classifier) HostsOfClass(o origin.ID, cl Class) []ip.Addr {
	var out []ip.Addr
	for i, a := range c.union {
		if c.class[o][i] == cl {
			out = append(out, a)
		}
	}
	return out
}

// MissedInTrial returns the hosts live in the trial that the origin failed
// to handshake with — a merge walk of the trial's ground truth against the
// origin's scan column.
func (c *Classifier) MissedInTrial(o origin.ID, trial int) []ip.Addr {
	s := c.DS.Scan(o, c.Proto, trial)
	if s == nil {
		return nil
	}
	addrs := ip.AddrSlice(s.Addrs())
	var out []ip.Addr
	j := 0
	for _, a := range c.DS.GroundTruth(c.Proto, trial) {
		for j < len(addrs) && addrs[j].Less(a) {
			j++
		}
		if !(j < len(addrs) && addrs[j] == a && s.SuccessAt(j, false)) {
			out = append(out, a)
		}
	}
	return out
}
