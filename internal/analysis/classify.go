// Package analysis implements the paper's analyses over a study dataset:
// accessibility classification (transient vs long-term, host vs /24
// network), coverage tables, exclusivity, per-AS and per-country
// aggregation, packet-loss estimation, best/worst-origin stability, burst
// attribution, SSH cause breakdown, and multi-origin coverage.
package analysis

import (
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
)

// Topology resolves hosts to networks and countries. *world.World
// satisfies it via WorldTopo; analyses of real scan data would plug a
// routing-table snapshot and geolocation database here instead.
type Topology interface {
	ASOf(a ip.Addr) (asn.ASN, bool)
	ASName(n asn.ASN) string
	CountryOf(a ip.Addr) (geo.Country, bool)
}

// Class is a host's accessibility classification from one origin (§3).
type Class uint8

const (
	// ClassAccessible: the origin completed a handshake in every trial
	// where the host was live.
	ClassAccessible Class = iota
	// ClassTransient: missed in some trials, seen in others.
	ClassTransient
	// ClassLongTerm: missed in every trial the host was live in (and it
	// was live in more than one).
	ClassLongTerm
	// ClassUnknown: the host appeared in only one trial, so transient
	// and long-term cannot be distinguished.
	ClassUnknown
)

var classNames = [...]string{"accessible", "transient", "long-term", "unknown"}

// String returns the class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(?)"
}

// Classifier computes and caches per-host classifications for one protocol
// across all trials of a dataset.
type Classifier struct {
	DS    *results.Dataset
	Proto proto.Protocol

	// union is every host live in at least one trial, sorted.
	union []ip.Addr
	// presence[h] is a bitmask of trials the host was live in.
	presence map[ip.Addr]uint8
	// class[origin][h] is the classification.
	class map[origin.ID]map[ip.Addr]Class
}

// NewClassifier classifies the dataset's hosts for one protocol.
func NewClassifier(ds *results.Dataset, p proto.Protocol) *Classifier {
	c := &Classifier{
		DS: ds, Proto: p,
		presence: make(map[ip.Addr]uint8),
		class:    make(map[origin.ID]map[ip.Addr]Class),
	}
	for t := 0; t < ds.Trials; t++ {
		for _, a := range ds.GroundTruth(p, t) {
			c.presence[a] |= 1 << t
		}
	}
	c.union = make([]ip.Addr, 0, len(c.presence))
	for a := range c.presence {
		c.union = append(c.union, a)
	}
	sort.Slice(c.union, func(i, j int) bool { return c.union[i] < c.union[j] })

	for _, o := range ds.Origins {
		m := make(map[ip.Addr]Class, len(c.union))
		for _, a := range c.union {
			m[a] = c.classify(o, a)
		}
		c.class[o] = m
	}
	return c
}

func (c *Classifier) classify(o origin.ID, a ip.Addr) Class {
	present := 0
	missed := 0
	for t := 0; t < c.DS.Trials; t++ {
		if c.presence[a]&(1<<t) == 0 {
			continue
		}
		s := c.DS.Scan(o, c.Proto, t)
		if s == nil {
			// Origin did not scan this trial (Carinet): only its
			// scanned trials count.
			continue
		}
		present++
		if !s.Success(a, false) {
			missed++
		}
	}
	switch {
	case present == 0:
		return ClassUnknown
	case missed == 0:
		return ClassAccessible
	case present == 1:
		return ClassUnknown
	case missed == present:
		return ClassLongTerm
	default:
		return ClassTransient
	}
}

// Union returns every host live in at least one trial, sorted by address.
func (c *Classifier) Union() []ip.Addr { return c.union }

// PresentIn reports whether the host was live in the trial.
func (c *Classifier) PresentIn(a ip.Addr, trial int) bool {
	return c.presence[a]&(1<<trial) != 0
}

// TrialsPresent returns the number of trials the host was live in.
func (c *Classifier) TrialsPresent(a ip.Addr) int {
	n := 0
	for t := 0; t < c.DS.Trials; t++ {
		if c.presence[a]&(1<<t) != 0 {
			n++
		}
	}
	return n
}

// Of returns the host's classification from the origin.
func (c *Classifier) Of(o origin.ID, a ip.Addr) Class { return c.class[o][a] }

// HostsOfClass returns the hosts with the given class from the origin.
func (c *Classifier) HostsOfClass(o origin.ID, cl Class) []ip.Addr {
	var out []ip.Addr
	for _, a := range c.union {
		if c.class[o][a] == cl {
			out = append(out, a)
		}
	}
	return out
}

// MissedInTrial returns the hosts live in the trial that the origin failed
// to handshake with.
func (c *Classifier) MissedInTrial(o origin.ID, trial int) []ip.Addr {
	s := c.DS.Scan(o, c.Proto, trial)
	if s == nil {
		return nil
	}
	var out []ip.Addr
	for _, a := range c.DS.GroundTruth(c.Proto, trial) {
		if !s.Success(a, false) {
			out = append(out, a)
		}
	}
	return out
}
