package analysis

import (
	"sort"

	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
)

// BannerCount is one entry of the banner census.
type BannerCount struct {
	Banner string
	Hosts  int
	Share  float64
}

// BannerCensus tallies application banners over a scan — the Censys-style
// view that ZGrab's handshakes exist to produce (HTTP Server headers, TLS
// cipher suites, SSH software versions). Returns the top-n banners by host
// count plus the total number of hosts with a banner.
func BannerCensus(ds *results.Dataset, p proto.Protocol, o origin.ID, trial, topN int) ([]BannerCount, int) {
	s := ds.Scan(o, p, trial)
	if s == nil {
		return nil, 0
	}
	counts := map[string]int{}
	total := 0
	s.Each(func(r results.HostRecord) {
		if !r.L7 || r.Banner == "" {
			return
		}
		counts[r.Banner]++
		total++
	})
	out := make([]BannerCount, 0, len(counts))
	for b, n := range counts {
		out = append(out, BannerCount{Banner: b, Hosts: n, Share: float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hosts != out[j].Hosts {
			return out[i].Hosts > out[j].Hosts
		}
		return out[i].Banner < out[j].Banner
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out, total
}

// BannerDisagreement counts ground-truth hosts whose banner differs between
// two origins in the same trial — a data-integrity check (synchronized
// scans of the same host should capture the same software).
func BannerDisagreement(ds *results.Dataset, p proto.Protocol, a, b origin.ID, trial int) (differ, both int) {
	sa, sb := ds.Scan(a, p, trial), ds.Scan(b, p, trial)
	if sa == nil || sb == nil {
		return 0, 0
	}
	aAddrs, bAddrs := sa.Addrs(), sb.Addrs()
	ai, bi := 0, 0
	for _, h := range ds.GroundTruth(p, trial) {
		for ai < len(aAddrs) && aAddrs[ai].Less(h) {
			ai++
		}
		for bi < len(bAddrs) && bAddrs[bi].Less(h) {
			bi++
		}
		if ai >= len(aAddrs) || aAddrs[ai] != h || bi >= len(bAddrs) || bAddrs[bi] != h {
			continue
		}
		ra, rb := sa.RecordAt(ai), sb.RecordAt(bi)
		if !ra.L7 || !rb.L7 || ra.Banner == "" || rb.Banner == "" {
			continue
		}
		both++
		if ra.Banner != rb.Banner {
			differ++
		}
	}
	return differ, both
}
