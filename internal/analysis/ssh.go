package analysis

import (
	"time"

	"repro/internal/asn"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/zgrab"
)

// SSHCause attributes why an SSH host was missed (§6, Figure 14).
type SSHCause uint8

const (
	// CauseAlibabaTemporal: the host is in a temporally-blocking network
	// and reset the connection after the TCP handshake.
	CauseAlibabaTemporal SSHCause = iota
	// CauseProbabilistic: MaxStartups-style — the host closed/reset on
	// this origin but completed an SSH handshake with another origin in
	// the same trial.
	CauseProbabilistic
	// CauseOther: transient path loss, blocking, or anything else.
	CauseOther
	numSSHCauses
)

var sshCauseNames = [...]string{"alibaba-temporal", "probabilistic-maxstartups", "other"}

// String returns the cause name.
func (c SSHCause) String() string {
	if int(c) < len(sshCauseNames) {
		return sshCauseNames[c]
	}
	return "cause(?)"
}

// SSHBreakdown is Figure 14 for one origin: missing SSH hosts by cause,
// summed over trials.
type SSHBreakdown struct {
	Origin origin.ID
	Counts [numSSHCauses]int
	// Missing is the total missing host-trials for the origin.
	Missing int
}

// SSHCauses computes Figure 14. temporalASes lists the Alibaba-style
// networks (from the scenario).
func SSHCauses(c *Classifier, topo Topology, temporalASes []asn.ASN) []SSHBreakdown {
	ds := c.DS
	isTemporal := map[asn.ASN]bool{}
	for _, a := range temporalASes {
		isTemporal[a] = true
	}
	var out []SSHBreakdown
	for _, o := range ds.Origins {
		b := SSHBreakdown{Origin: o}
		for t := 0; t < ds.Trials; t++ {
			s := ds.Scan(o, proto.SSH, t)
			if s == nil {
				continue
			}
			addrs := s.Addrs()
			j := 0
			for _, a := range c.MissedInTrial(o, t) {
				b.Missing++
				for j < len(addrs) && addrs[j].Less(a) {
					j++
				}
				ok := j < len(addrs) && addrs[j] == a
				var r results.HostRecord
				if ok {
					r = s.RecordAt(j)
				}
				as, _ := topo.ASOf(a)
				switch {
				case isTemporal[as] && ok && r.Fail == zgrab.FailReset:
					b.Counts[CauseAlibabaTemporal]++
				case ok && (r.Fail == zgrab.FailClosed || r.Fail == zgrab.FailReset) && seenByOther(ds, o, a, t):
					// §6: "any IP that closes the connection after a
					// TCP handshake with at least one origin and
					// successfully completes an SSH handshake with
					// another" is probabilistic temporary blocking.
					b.Counts[CauseProbabilistic]++
				default:
					b.Counts[CauseOther]++
				}
			}
		}
		out = append(out, b)
	}
	return out
}

func seenByOther(ds *results.Dataset, self origin.ID, a ip.Addr, trial int) bool {
	for _, o := range ds.Origins {
		if o == self {
			continue
		}
		if s := ds.Scan(o, proto.SSH, trial); s != nil && s.Success(a, false) {
			return true
		}
	}
	return false
}

// CloseVsDrop computes §6's observation that transiently missed SSH hosts
// explicitly close connections (RST/FIN after the TCP handshake) more often
// than HTTP(S) hosts, which mostly drop. Returns the fraction of
// transiently missed hosts (with an L4 response) that explicitly closed.
func CloseVsDrop(c *Classifier, excludeASes []asn.ASN, topo Topology) float64 {
	skip := map[asn.ASN]bool{}
	for _, a := range excludeASes {
		skip[a] = true
	}
	closed, total := 0, 0
	for _, o := range c.DS.Origins {
		for t := 0; t < c.DS.Trials; t++ {
			s := c.DS.Scan(o, c.Proto, t)
			if s == nil {
				continue
			}
			addrs := s.Addrs()
			union := c.union
			ui, j := 0, 0
			for _, a := range c.MissedInTrial(o, t) {
				for union[ui].Less(a) {
					ui++
				}
				if c.OfAt(o, ui) != ClassTransient {
					continue
				}
				if as, ok := topo.ASOf(a); ok && skip[as] {
					continue
				}
				for j < len(addrs) && addrs[j].Less(a) {
					j++
				}
				if j >= len(addrs) || addrs[j] != a {
					continue // no TCP handshake at all
				}
				r := s.RecordAt(j)
				if r.ProbeMask == 0 {
					continue // no TCP handshake at all
				}
				total++
				if r.Fail == zgrab.FailClosed || r.Fail == zgrab.FailReset {
					closed++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(closed) / float64(total)
}

// HourlyOutcome is one bucket of Figure 12's Alibaba timeline.
type HourlyOutcome struct {
	Hour int
	// Attempted is how many hosts in the network were grabbed this hour.
	Attempted int
	// Reset counts connections reset after the TCP handshake.
	Reset int
}

// TemporalTimeline builds Figure 12 for one origin and trial: the hourly
// fraction of hosts in the given ASes whose SSH connections were reset.
func TemporalTimeline(ds *results.Dataset, topo Topology, ases []asn.ASN, o origin.ID, trial int, scanHours int) []HourlyOutcome {
	if scanHours <= 0 {
		scanHours = 21
	}
	want := map[asn.ASN]bool{}
	for _, a := range ases {
		want[a] = true
	}
	out := make([]HourlyOutcome, scanHours)
	for i := range out {
		out[i].Hour = i
	}
	s := ds.Scan(o, proto.SSH, trial)
	if s == nil {
		return out
	}
	s.Each(func(r results.HostRecord) {
		as, ok := topo.ASOf(r.Addr)
		if !ok || !want[as] || r.ProbeMask == 0 {
			return
		}
		h := int(r.T / time.Hour)
		if h >= scanHours {
			h = scanHours - 1
		}
		out[h].Attempted++
		if r.Fail == zgrab.FailReset {
			out[h].Reset++
		}
	})
	return out
}
