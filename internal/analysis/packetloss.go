package analysis

import (
	"sort"

	"repro/internal/asn"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/stats"
)

// PacketLossEstimate is the §5.2 estimator output for one (origin, trial):
// the fraction of responsive hosts that answered exactly one of the two
// probes — a lower bound on random packet drop. RST-only hosts and
// duplicate responses are excluded, and the analysis is restricted to
// ground-truth (L7-confirmed) hosts, as in the paper.
type PacketLossEstimate struct {
	Origin origin.ID
	Trial  int
	// Global estimate.
	Rate float64
	// PerAS estimates (ASes with ≥ minHosts responsive hosts only).
	PerAS map[asn.ASN]float64
}

// PacketLoss computes the estimator for one (origin, protocol, trial).
func PacketLoss(ds *results.Dataset, topo Topology, p proto.Protocol, o origin.ID, trial int, minHosts int) PacketLossEstimate {
	if minHosts < 1 {
		minHosts = 5
	}
	est := PacketLossEstimate{Origin: o, Trial: trial, PerAS: map[asn.ASN]float64{}}
	s := ds.Scan(o, p, trial)
	if s == nil {
		return est
	}
	type counts struct{ one, responding int }
	perAS := map[asn.ASN]*counts{}
	var one, responding int
	addrs := s.Addrs()
	j := 0
	for _, h := range ds.GroundTruth(p, trial) {
		for j < len(addrs) && addrs[j].Less(h) {
			j++
		}
		if j >= len(addrs) || addrs[j] != h {
			continue
		}
		r := s.RecordAt(j)
		if r.ProbeMask == 0 || r.RST {
			continue // unresponsive or RST: excluded per §5.2
		}
		responding++
		isOne := r.ProbeMask != 0b11
		if isOne {
			one++
		}
		if as, okAS := topo.ASOf(h); okAS {
			c := perAS[as]
			if c == nil {
				c = &counts{}
				perAS[as] = c
			}
			c.responding++
			if isOne {
				c.one++
			}
		}
	}
	if responding > 0 {
		est.Rate = float64(one) / float64(responding)
	}
	for as, c := range perAS {
		if c.responding >= minHosts {
			est.PerAS[as] = float64(c.one) / float64(c.responding)
		}
	}
	return est
}

// DropVsTransient correlates, per AS, the origin's packet-loss estimate
// with its transient host-loss rate (§5.2 reports only weak correlation,
// ρ = 0.40–0.52: loss is not simply random drop).
func DropVsTransient(c *Classifier, topo Topology, minHosts int) map[origin.ID]stats.SpearmanResult {
	out := map[origin.ID]stats.SpearmanResult{}
	spreads := TransientLossSpread(c, topo, minHosts)
	for _, o := range c.DS.Origins {
		// Average the per-trial drop estimates per AS.
		acc := map[asn.ASN]float64{}
		n := 0
		for t := 0; t < c.DS.Trials; t++ {
			if c.DS.Scan(o, c.Proto, t) == nil {
				continue
			}
			est := PacketLoss(c.DS, topo, c.Proto, o, t, minHosts)
			for as, r := range est.PerAS {
				acc[as] += r
			}
			n++
		}
		if n == 0 {
			continue
		}
		var xs, ys []float64
		for _, sp := range spreads {
			drop, ok := acc[sp.AS]
			if !ok {
				continue
			}
			xs = append(xs, drop/float64(n))
			ys = append(ys, sp.Rate[o])
		}
		out[o] = stats.Spearman(xs, ys)
	}
	return out
}

// OriginASPoint is one point of Figure 10: one origin's view of one AS.
type OriginASPoint struct {
	Origin    origin.ID
	Transient float64 // transient host-loss rate in the AS
	Drop      float64 // mean packet-loss estimate across trials
}

// LossVsDropForAS extracts Figure 10's per-origin points for one AS.
func LossVsDropForAS(c *Classifier, topo Topology, as asn.ASN) []OriginASPoint {
	var hosts []int
	for i, a := range c.Union() {
		if n, ok := topo.ASOf(a); ok && n == as {
			hosts = append(hosts, i)
		}
	}
	if len(hosts) == 0 {
		return nil
	}
	var pts []OriginASPoint
	for _, o := range c.DS.Origins {
		tr := 0
		for _, i := range hosts {
			if c.OfAt(o, i) == ClassTransient {
				tr++
			}
		}
		var dropSum float64
		n := 0
		for t := 0; t < c.DS.Trials; t++ {
			if c.DS.Scan(o, c.Proto, t) == nil {
				continue
			}
			est := PacketLoss(c.DS, topo, c.Proto, o, t, 2)
			if r, ok := est.PerAS[as]; ok {
				dropSum += r
				n++
			}
		}
		pt := OriginASPoint{Origin: o, Transient: float64(tr) / float64(len(hosts))}
		if n > 0 {
			pt.Drop = dropSum / float64(n)
		}
		pts = append(pts, pt)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Origin < pts[j].Origin })
	return pts
}
