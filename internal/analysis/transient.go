package analysis

import (
	"math"
	"sort"

	"repro/internal/asn"
	"repro/internal/origin"
	"repro/internal/stats"
)

// ASLossSpread is one AS's row for Figure 9 / Table 3: the spread of
// per-origin transient loss rates.
type ASLossSpread struct {
	AS     asn.ASN
	ASName string
	Hosts  int // live hosts in the AS (union over trials)
	// Rate[o] is the origin's transient loss rate in the AS: transient
	// hosts / live hosts.
	Rate map[origin.ID]float64
	// Delta is the max pairwise difference (percentage points / 100).
	Delta float64
	// Diff is the host-count difference between the worst and best
	// origin (Table 3's "Diff" column).
	Diff int
	// Ratio is worst/best (Table 3's "Ratio"; +Inf collapses to a large
	// number when the best origin lost zero hosts).
	Ratio float64
}

// groupByAS buckets the union spine's indices by destination AS. Index
// lists inherit the spine's sorted order, so per-AS walks stay in address
// order and class lookups are direct array reads (OfAt).
func groupByAS(c *Classifier, topo Topology) map[asn.ASN][]int {
	asHosts := map[asn.ASN][]int{}
	for i, a := range c.Union() {
		if n, ok := topo.ASOf(a); ok {
			asHosts[n] = append(asHosts[n], i)
		}
	}
	return asHosts
}

// TransientLossSpread computes, for every AS with at least minHosts live
// hosts, the per-origin transient loss rates and their spread.
func TransientLossSpread(c *Classifier, topo Topology, minHosts int) []ASLossSpread {
	if minHosts < 1 {
		minHosts = 2
	}
	asHosts := groupByAS(c, topo)
	var out []ASLossSpread
	for as, hosts := range asHosts {
		if len(hosts) < minHosts {
			continue
		}
		row := ASLossSpread{
			AS: as, ASName: topo.ASName(as), Hosts: len(hosts),
			Rate: map[origin.ID]float64{},
		}
		minRate, maxRate := math.Inf(1), math.Inf(-1)
		var minN, maxN int
		for _, o := range c.DS.Origins {
			n := 0
			for _, i := range hosts {
				if c.OfAt(o, i) == ClassTransient {
					n++
				}
			}
			r := float64(n) / float64(len(hosts))
			row.Rate[o] = r
			if r < minRate {
				minRate, minN = r, n
			}
			if r > maxRate {
				maxRate, maxN = r, n
			}
		}
		row.Delta = maxRate - minRate
		row.Diff = maxN - minN
		if minN > 0 {
			row.Ratio = float64(maxN) / float64(minN)
		} else if maxN > 0 {
			row.Ratio = float64(maxN) // paper-style huge ratios for zero baselines
		} else {
			row.Ratio = 1
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Diff > out[j].Diff })
	return out
}

// SpreadCDF converts the spreads into Figure 9's two CDFs: plain (one point
// per AS) and weighted by AS size (the dashed line).
func SpreadCDF(spreads []ASLossSpread) (plain, weighted []stats.CDFPoint) {
	xs := make([]float64, len(spreads))
	ws := make([]float64, len(spreads))
	for i, s := range spreads {
		xs[i] = s.Delta
		ws[i] = float64(s.Hosts)
	}
	return stats.CDF(xs, nil), stats.CDF(xs, ws)
}

// StabilityReport is Figure 11 plus §5.1's flip statistic.
type StabilityReport struct {
	// ASesConsidered is the number of ASes with enough hosts analyzed.
	ASesConsidered int
	// ConsistentBest[o] counts ASes where o had strictly the best
	// coverage in every trial; ConsistentWorst likewise.
	ConsistentBest  map[origin.ID]int
	ConsistentWorst map[origin.ID]int
	// Flips counts ASes where some origin was strictly best in one
	// trial and strictly worst in another (§5.1: ~23% of ASes).
	Flips int
}

// BestWorstStability ranks origins per destination AS per trial by the
// number of live hosts they saw and measures rank stability across trials.
func BestWorstStability(c *Classifier, topo Topology, minHosts int) StabilityReport {
	if minHosts < 1 {
		minHosts = 5
	}
	rep := StabilityReport{
		ConsistentBest:  map[origin.ID]int{},
		ConsistentWorst: map[origin.ID]int{},
	}
	asHosts := groupByAS(c, topo)
	origins := c.DS.Origins
	for _, hosts := range asHosts {
		if len(hosts) < minHosts {
			continue
		}
		rep.ASesConsidered++
		// Per trial, compute each origin's host count and the
		// (possibly tied) best/worst sets. Consistency requires a
		// strict, untied winner in every trial; a flip happens when
		// an origin is among the best in one trial and among the
		// worst in another, with a real spread in both trials
		// (§5.1's "the worst scanning origin in one trial will
		// become the best scanning origin in another").
		bests := make([]origin.ID, 0, c.DS.Trials)
		worsts := make([]origin.ID, 0, c.DS.Trials)
		wasBest := map[origin.ID]bool{}
		wasWorst := map[origin.ID]bool{}
		for t := 0; t < c.DS.Trials; t++ {
			counts := map[origin.ID]int{}
			bestN, worstN := -1, math.MaxInt
			for _, o := range origins {
				s := c.DS.Scan(o, c.Proto, t)
				if s == nil {
					continue
				}
				n := 0
				union := c.Union()
				for _, i := range hosts {
					if c.PresentAt(i, t) && s.Success(union[i], false) {
						n++
					}
				}
				counts[o] = n
				if n > bestN {
					bestN = n
				}
				if n < worstN {
					worstN = n
				}
			}
			if bestN == worstN {
				continue // no spread this trial
			}
			var bestSet, worstSet origin.Set
			for o, n := range counts {
				if n == bestN {
					bestSet = append(bestSet, o)
				}
				if n == worstN {
					worstSet = append(worstSet, o)
				}
			}
			// Consistency uses strict (untied) winners: a tied "best"
			// origin says nothing about a stable ranking.
			if len(bestSet) == 1 {
				bests = append(bests, bestSet[0])
			}
			if len(worstSet) == 1 {
				worsts = append(worsts, worstSet[0])
			}
			// Flips tolerate ties but require a non-trivial spread
			// (≥2 hosts between best and worst), so a single lost
			// host cannot manufacture a best→worst reversal.
			if bestN-worstN >= 2 {
				for _, o := range bestSet {
					wasBest[o] = true
				}
				for _, o := range worstSet {
					wasWorst[o] = true
				}
			}
		}
		if len(bests) == c.DS.Trials && allSame(bests) {
			rep.ConsistentBest[bests[0]]++
		}
		if len(worsts) == c.DS.Trials && allSame(worsts) {
			rep.ConsistentWorst[worsts[0]]++
		}
		for o := range wasBest {
			if wasWorst[o] {
				rep.Flips++
				break
			}
		}
	}
	return rep
}

func allSame(os []origin.ID) bool {
	for _, o := range os[1:] {
		if o != os[0] {
			return false
		}
	}
	return true
}
