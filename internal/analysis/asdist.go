package analysis

import (
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/origin"
	"repro/internal/stats"
)

// ASConcentration is one origin's Figure 4 curve: how concentrated its
// long-term inaccessible hosts are across ASes.
type ASConcentration struct {
	Origin origin.ID
	// TopShares[i] is the cumulative share of the origin's long-term
	// inaccessible hosts held by the i+1 largest contributing ASes.
	TopShares []float64
	// TopASes names the largest contributors in order.
	TopASes []asn.ASN
	// Total is the origin's long-term inaccessible host count.
	Total int
}

// ASDistribution computes Figure 4 for one protocol: per origin, the
// distribution of long-term inaccessible hosts over ASes. The paper's
// headline: three ASes hold 67% of Censys's inaccessible HTTP hosts.
func ASDistribution(c *Classifier, topo Topology) []ASConcentration {
	var out []ASConcentration
	for _, o := range c.DS.Origins {
		hosts := c.HostsOfClass(o, ClassLongTerm)
		counts := map[asn.ASN]int{}
		for _, a := range hosts {
			if n, ok := topo.ASOf(a); ok {
				counts[n]++
			}
		}
		type kv struct {
			as asn.ASN
			n  int
		}
		kvs := make([]kv, 0, len(counts))
		for as, n := range counts {
			kvs = append(kvs, kv{as, n})
		}
		sort.Slice(kvs, func(i, j int) bool { return kvs[i].n > kvs[j].n })
		conc := ASConcentration{Origin: o, Total: len(hosts)}
		cum := 0
		for _, e := range kvs {
			cum += e.n
			conc.TopASes = append(conc.TopASes, e.as)
			if conc.Total > 0 {
				conc.TopShares = append(conc.TopShares, float64(cum)/float64(conc.Total))
			}
		}
		out = append(out, conc)
	}
	return out
}

// LostASRow is one origin's Figure 5 bar: how many ASes are at least
// 100%/75%/50% long-term inaccessible from it.
type LostASRow struct {
	Origin    origin.ID
	Full      int // 100% of the AS's live hosts long-term inaccessible
	AtLeast75 int
	AtLeast50 int
}

// InaccessibleASes computes Figure 5 for one protocol, considering only
// ASes with at least minHosts live hosts (avoids trivial one-host "ASes").
func InaccessibleASes(c *Classifier, topo Topology, minHosts int) []LostASRow {
	if minHosts < 1 {
		minHosts = 2
	}
	// AS -> live hosts.
	asHosts := map[asn.ASN]int{}
	for _, a := range c.Union() {
		if n, ok := topo.ASOf(a); ok {
			asHosts[n]++
		}
	}
	var out []LostASRow
	for _, o := range c.DS.Origins {
		lost := map[asn.ASN]int{}
		for _, a := range c.HostsOfClass(o, ClassLongTerm) {
			if n, ok := topo.ASOf(a); ok {
				lost[n]++
			}
		}
		row := LostASRow{Origin: o}
		for as, l := range lost {
			total := asHosts[as]
			if total < minHosts {
				continue
			}
			frac := float64(l) / float64(total)
			if frac >= 1 {
				row.Full++
			}
			if frac >= 0.75 {
				row.AtLeast75++
			}
			if frac >= 0.50 {
				row.AtLeast50++
			}
		}
		out = append(out, row)
	}
	return out
}

// CountryRow is one (origin, country) cell of Tables 2 and 5.
type CountryRow struct {
	Origin  origin.ID
	Country geo.Country
	// Pct is the percentage of the country's live hosts long-term
	// inaccessible from the origin.
	Pct float64
	// CountryHosts is the country's live host count.
	CountryHosts int
	// DominantASes is the smallest number of ASes that together hold
	// the majority of the origin's missing hosts in this country (the
	// tables' red/orange/yellow colour coding: 1, 2, or ≥3).
	DominantASes int
}

// CountryInaccessibility computes Table 2 (HTTP) / Table 5 (HTTPS, SSH):
// per origin and destination country, the share of the country long-term
// inaccessible, with AS-concentration annotation.
func CountryInaccessibility(c *Classifier, topo Topology) []CountryRow {
	countryHosts := map[geo.Country]int{}
	for _, a := range c.Union() {
		if cc, ok := topo.CountryOf(a); ok {
			countryHosts[cc]++
		}
	}
	var out []CountryRow
	for _, o := range c.DS.Origins {
		perCountry := map[geo.Country]map[asn.ASN]int{}
		for _, a := range c.HostsOfClass(o, ClassLongTerm) {
			cc, ok := topo.CountryOf(a)
			if !ok {
				continue
			}
			if perCountry[cc] == nil {
				perCountry[cc] = map[asn.ASN]int{}
			}
			as, _ := topo.ASOf(a)
			perCountry[cc][as]++
		}
		for cc, byAS := range perCountry {
			total := 0
			var counts []int
			for _, n := range byAS {
				total += n
				counts = append(counts, n)
			}
			sort.Sort(sort.Reverse(sort.IntSlice(counts)))
			dominant := 0
			cum := 0
			for _, n := range counts {
				dominant++
				cum += n
				if 2*cum > total {
					break
				}
			}
			row := CountryRow{
				Origin: o, Country: cc,
				CountryHosts: countryHosts[cc],
				DominantASes: dominant,
			}
			if row.CountryHosts > 0 {
				row.Pct = 100 * float64(total) / float64(row.CountryHosts)
			}
			out = append(out, row)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Pct > out[j].Pct
	})
	return out
}

// CountrySizeCorrelation computes §4.4's Spearman correlation between each
// country's host count and its long-term inaccessible host count (the paper
// reports ρ=0.92, p<0.001): big countries lose the most hosts simply
// because they have the most.
func CountrySizeCorrelation(c *Classifier, topo Topology) stats.SpearmanResult {
	hosts := map[geo.Country]float64{}
	missing := map[geo.Country]float64{}
	for i, a := range c.Union() {
		cc, ok := topo.CountryOf(a)
		if !ok {
			continue
		}
		hosts[cc]++
		for _, o := range c.DS.Origins {
			if c.OfAt(o, i) == ClassLongTerm {
				missing[cc]++
				break // count the host once, as "inaccessible from some origin"
			}
		}
	}
	var xs, ys []float64
	for cc, h := range hosts {
		xs = append(xs, h)
		ys = append(ys, missing[cc])
	}
	return stats.Spearman(xs, ys)
}
