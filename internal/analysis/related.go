package analysis

import (
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/proto"
	"repro/internal/results"
)

// Slash24Agreement reproduces the paper's §8 comparison with Heidemann et
// al. (2008): for each pair of origins, the fraction of /24 blocks whose
// response rates from the two origins agree within the tolerance. Heidemann
// found 96% of /24s within 5% between two U.S. origins; the paper finds 87%
// averaged over its more diverse origin pairs.
type Slash24Agreement struct {
	// PerPair[i] is one origin pair's agreement fraction.
	PerPair []PairAgreement
	// Mean is the average agreement across pairs.
	Mean float64
	// Blocks is the number of /24s with enough hosts to compare.
	Blocks int
}

// PairAgreement is one origin pair's agreement.
type PairAgreement struct {
	A, B      origin.ID
	Agreement float64
}

// AgreementWithin computes the /24 response-rate agreement for one protocol
// and trial. Blocks need at least minHosts live hosts; tolerance is the
// absolute response-rate difference treated as agreement (0.05 in both
// papers).
func AgreementWithin(ds *results.Dataset, p proto.Protocol, trial int, minHosts int, tolerance float64) Slash24Agreement {
	if minHosts < 1 {
		minHosts = 2
	}
	gt := ds.GroundTruth(p, trial)
	blocks := map[ip.Prefix][]ip.Addr{}
	for _, a := range gt {
		k := a.Slash24()
		blocks[k] = append(blocks[k], a)
	}
	var usable []([]ip.Addr)
	for _, hosts := range blocks {
		if len(hosts) >= minHosts {
			usable = append(usable, hosts)
		}
	}

	var origins origin.Set
	for _, o := range ds.Origins {
		if ds.Scan(o, p, trial) != nil {
			origins = append(origins, o)
		}
	}
	// Response rate per (origin, block).
	rate := func(o origin.ID, hosts []ip.Addr) float64 {
		s := ds.MustScan(o, p, trial)
		n := 0
		for _, a := range hosts {
			if s.Success(a, false) {
				n++
			}
		}
		return float64(n) / float64(len(hosts))
	}

	out := Slash24Agreement{Blocks: len(usable)}
	if len(usable) == 0 {
		return out
	}
	var sum float64
	for i := 0; i < len(origins); i++ {
		for j := i + 1; j < len(origins); j++ {
			agree := 0
			for _, hosts := range usable {
				ra, rb := rate(origins[i], hosts), rate(origins[j], hosts)
				d := ra - rb
				if d < 0 {
					d = -d
				}
				if d <= tolerance {
					agree++
				}
			}
			pa := PairAgreement{
				A: origins[i], B: origins[j],
				Agreement: float64(agree) / float64(len(usable)),
			}
			out.PerPair = append(out.PerPair, pa)
			sum += pa.Agreement
		}
	}
	out.Mean = sum / float64(len(out.PerPair))
	return out
}
