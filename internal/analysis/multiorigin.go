package analysis

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/stats"
)

// ComboCoverage is one origin-combination's coverage.
type ComboCoverage struct {
	Origins  origin.Set
	Coverage float64
}

// MultiOriginLevel summarizes all k-origin combinations for Figure 15/17:
// the box-plot statistics of coverage at each k.
type MultiOriginLevel struct {
	K      int
	Median float64
	Mean   float64
	Min    float64
	Max    float64
	Sigma  float64
	// Best is the combination with the highest coverage.
	Best ComboCoverage
	// Worst is the combination with the lowest coverage.
	Worst ComboCoverage
	// All lists every combination, sorted descending by coverage.
	All []ComboCoverage
}

// MultiOrigin computes coverage for every subset of origins of every size,
// averaged across trials, for one protocol (Figures 15, 17, 18).
// singleProbe selects the 1-probe simulation.
//
// The 2^n−1 combinations are evaluated on a worker pool (coverage of one
// combo is independent of every other), but the reduction into min/max/
// median/mean runs serially in lexicographic combination order, so the
// output — including first-wins ties and float summation order — is
// identical to a fully serial evaluation.
//
// Workers re-check ctx per combination claim; a canceled evaluation
// returns the levels completed so far with pipeline.ErrCanceled.
func MultiOrigin(ctx context.Context, ds *results.Dataset, p proto.Protocol, origins origin.Set, singleProbe bool) ([]MultiOriginLevel, error) {
	n := len(origins)
	// Ground truth is lazily computed and cached inside the dataset; warm
	// it serially so workers only read.
	for t := 0; t < ds.Trials; t++ {
		ds.GroundTruth(p, t)
	}
	var levels []MultiOriginLevel
	for k := 1; k <= n; k++ {
		// Materialize this level's combinations in lexicographic order.
		var combos []origin.Set
		forEachCombo(n, k, func(idx []int) {
			combo := make(origin.Set, k)
			for i, j := range idx {
				combo[i] = origins[j]
			}
			combos = append(combos, combo)
		})

		// Fan the coverage evaluations out; covs is indexed by combo.
		covs := make([]float64, len(combos))
		ok := make([]bool, len(combos))
		workers := runtime.GOMAXPROCS(0)
		if workers > len(combos) {
			workers = len(combos)
		}
		var wg sync.WaitGroup
		ci := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range ci {
					if ctx.Err() != nil {
						continue // canceled: drain remaining combos
					}
					combo := combos[i]
					var sum float64
					trials := 0
					for t := 0; t < ds.Trials; t++ {
						if ds.Scan(combo[0], p, t) == nil {
							continue
						}
						sum += ds.CoverageOfSet(combo, p, t, singleProbe)
						trials++
					}
					if trials == 0 {
						continue
					}
					covs[i] = sum / float64(trials)
					ok[i] = true
				}
			}()
		}
		for i := range combos {
			ci <- i
		}
		close(ci)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return levels, pipeline.Canceled(err)
		}

		// Serial reduction in combination order.
		lvl := MultiOriginLevel{K: k, Min: 2, Max: -1}
		var vals []float64
		for i, combo := range combos {
			if !ok[i] {
				continue
			}
			cc := ComboCoverage{Origins: combo, Coverage: covs[i]}
			lvl.All = append(lvl.All, cc)
			vals = append(vals, covs[i])
			if covs[i] < lvl.Min {
				lvl.Min, lvl.Worst = covs[i], cc
			}
			if covs[i] > lvl.Max {
				lvl.Max, lvl.Best = covs[i], cc
			}
		}
		lvl.Median = stats.Median(vals)
		lvl.Mean = stats.Mean(vals)
		lvl.Sigma = stats.StdDev(vals)
		sort.Slice(lvl.All, func(i, j int) bool { return lvl.All[i].Coverage > lvl.All[j].Coverage })
		levels = append(levels, lvl)
	}
	return levels, nil
}

// CoverageOfCombo returns the trial-averaged coverage of one specific
// origin combination (used to pull out named combos like HE-NTT-TELIA).
func CoverageOfCombo(ds *results.Dataset, p proto.Protocol, combo origin.Set, singleProbe bool) float64 {
	var sum float64
	trials := 0
	for t := 0; t < ds.Trials; t++ {
		if ds.Scan(combo[0], p, t) == nil {
			continue
		}
		sum += ds.CoverageOfSet(combo, p, t, singleProbe)
		trials++
	}
	if trials == 0 {
		return 0
	}
	return sum / float64(trials)
}

// forEachCombo enumerates k-subsets of [0, n) in lexicographic order.
func forEachCombo(n, k int, fn func(idx []int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
