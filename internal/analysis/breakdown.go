package analysis

import (
	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/world"
)

// WorldTopo adapts a synthetic world to the Topology interface.
type WorldTopo struct {
	W *world.World
}

// ASOf implements Topology.
func (t WorldTopo) ASOf(a ip.Addr) (asn.ASN, bool) {
	as, ok := t.W.ASOf(a)
	if !ok {
		return 0, false
	}
	return as.Number, true
}

// ASName implements Topology.
func (t WorldTopo) ASName(n asn.ASN) string {
	a, ok := t.W.Routes.Get(n)
	if !ok {
		return "AS?"
	}
	return a.Name
}

// CountryOf implements Topology.
func (t WorldTopo) CountryOf(a ip.Addr) (geo.Country, bool) {
	return t.W.CountryOf(a)
}

// Category is a bucket of Figure 2's missing-host breakdown.
type Category uint8

const (
	CatTransientHost Category = iota
	CatTransientNet
	CatLongTermHost
	CatLongTermNet
	CatUnknown
	numCategories
)

var categoryNames = [...]string{
	"transient-host", "transient-net", "long-term-host", "long-term-net", "unknown",
}

// String returns the category name.
func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "cat(?)"
}

// Breakdown is one origin-trial cell of Figure 2: missing hosts by
// category, as fractions of the trial's ground truth.
type Breakdown struct {
	Origin origin.ID
	Trial  int
	// Counts per category.
	Counts [numCategories]int
	// GroundTruth is the trial's live-host count.
	GroundTruth int
}

// Frac returns the category's share of ground truth.
func (b *Breakdown) Frac(c Category) float64 {
	if b.GroundTruth == 0 {
		return 0
	}
	return float64(b.Counts[c]) / float64(b.GroundTruth)
}

// TotalMissing returns all missing hosts in the cell.
func (b *Breakdown) TotalMissing() int {
	n := 0
	for _, c := range b.Counts {
		n += c
	}
	return n
}

// MissingBreakdown computes Figure 2 for one protocol: for each origin and
// trial, missing hosts split into transient/long-term/unknown, each at host
// or /24-network level. A /24 counts as a network-level unit when it has at
// least two live hosts and all of them share the class (§3's "consistent
// behavior" requirement).
func MissingBreakdown(c *Classifier) []Breakdown {
	ds := c.DS
	// Precompute /24 membership over the union of live hosts, as indices
	// into the sorted union spine.
	by24 := map[ip.Prefix][]int{}
	for i, a := range c.Union() {
		k := a.Slash24()
		by24[k] = append(by24[k], i)
	}

	// netClass[origin][/24] = class when the /24 behaves as one unit:
	// at least two hosts with a consistent classification (§3). Hosts
	// classified unknown (present in a single trial, usually churn)
	// carry no signal about the network's policy and are ignored when
	// judging consistency.
	netUnit := map[origin.ID]map[ip.Prefix]Class{}
	for _, o := range ds.Origins {
		m := map[ip.Prefix]Class{}
		for k, hosts := range by24 {
			informative := 0
			var cl Class
			same := true
			for _, h := range hosts {
				hc := c.OfAt(o, h)
				if hc == ClassUnknown {
					continue
				}
				if informative == 0 {
					cl = hc
				} else if hc != cl {
					same = false
					break
				}
				informative++
			}
			if same && informative >= 2 {
				m[k] = cl
			}
		}
		netUnit[o] = m
	}

	var out []Breakdown
	for _, o := range ds.Origins {
		for t := 0; t < ds.Trials; t++ {
			if ds.Scan(o, c.Proto, t) == nil {
				continue
			}
			b := Breakdown{Origin: o, Trial: t, GroundTruth: len(ds.GroundTruth(c.Proto, t))}
			// Missed hosts come back sorted, so a cursor on the
			// union spine resolves each class without searching.
			union := c.union
			ui := 0
			for _, a := range c.MissedInTrial(o, t) {
				for union[ui].Less(a) {
					ui++
				}
				cl := c.OfAt(o, ui)
				_, isNet := netUnit[o][a.Slash24()]
				switch cl {
				case ClassTransient:
					if isNet {
						b.Counts[CatTransientNet]++
					} else {
						b.Counts[CatTransientHost]++
					}
				case ClassLongTerm:
					if isNet {
						b.Counts[CatLongTermNet]++
					} else {
						b.Counts[CatLongTermHost]++
					}
				default:
					b.Counts[CatUnknown]++
				}
			}
			out = append(out, b)
		}
	}
	return out
}

// OverlapHistogram computes Figures 3 and 8: for hosts of the given class,
// how many origins share that classification of the host. Index i of the
// result counts hosts missed by exactly i+1 origins. The exclude set drops
// origins from the denominator (the paper excludes Censys in Figure 3's
// headline number).
func OverlapHistogram(c *Classifier, cl Class, exclude origin.Set) []int {
	n := len(c.DS.Origins)
	hist := make([]int, n)
	for i := range c.Union() {
		count := 0
		for _, o := range c.DS.Origins {
			if exclude.Contains(o) {
				continue
			}
			if c.OfAt(o, i) == cl {
				count++
			}
		}
		if count > 0 {
			hist[count-1]++
		}
	}
	return hist
}
