package analysis

import (
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
)

// Exclusivity captures §4's exclusive-access analysis: hosts reachable from
// only one origin (exclusively accessible) and hosts unreachable from only
// one origin (exclusively inaccessible), across all trials.
type Exclusivity struct {
	// Accessible[o] lists hosts only origin o could ever handshake with.
	Accessible map[origin.ID][]ip.Addr
	// Inaccessible[o] lists hosts only origin o persistently missed
	// (long-term inaccessible from o, accessible from every other).
	Inaccessible map[origin.ID][]ip.Addr
}

// Exclusive computes the exclusivity sets from a classifier. A host is
// exclusively accessible from o when o is the only origin that completed a
// handshake in any trial; exclusively inaccessible when o is the only
// origin classified long-term for it.
func Exclusive(c *Classifier) Exclusivity {
	ex := Exclusivity{
		Accessible:   map[origin.ID][]ip.Addr{},
		Inaccessible: map[origin.ID][]ip.Addr{},
	}
	for i, a := range c.Union() {
		var accessibleFrom, longTermFrom origin.Set
		for _, o := range c.DS.Origins {
			switch c.OfAt(o, i) {
			case ClassAccessible, ClassTransient:
				accessibleFrom = append(accessibleFrom, o)
			case ClassLongTerm:
				longTermFrom = append(longTermFrom, o)
			case ClassUnknown:
				// A host seen in one trial still counts as
				// accessible from origins that saw it then.
				if sawEver(c, o, a) {
					accessibleFrom = append(accessibleFrom, o)
				}
			}
		}
		if len(accessibleFrom) == 1 {
			o := accessibleFrom[0]
			ex.Accessible[o] = append(ex.Accessible[o], a)
		}
		if len(longTermFrom) == 1 && len(accessibleFrom) == len(c.DS.Origins)-1 {
			o := longTermFrom[0]
			ex.Inaccessible[o] = append(ex.Inaccessible[o], a)
		}
	}
	return ex
}

func sawEver(c *Classifier, o origin.ID, a ip.Addr) bool {
	for t := 0; t < c.DS.Trials; t++ {
		if s := c.DS.Scan(o, c.Proto, t); s != nil && s.Success(a, false) {
			return true
		}
	}
	return false
}

// ShareRow is one origin's column of Table 1: its share of all exclusively
// accessible and exclusively inaccessible hosts.
type ShareRow struct {
	Origin          origin.ID
	AccessibleN     int
	InaccessibleN   int
	AccessiblePct   float64
	InaccessiblePct float64
}

// ExclusiveShare computes Table 1's row pair for one protocol.
func ExclusiveShare(ex Exclusivity, origins origin.Set) []ShareRow {
	totalAcc, totalInacc := 0, 0
	for _, o := range origins {
		totalAcc += len(ex.Accessible[o])
		totalInacc += len(ex.Inaccessible[o])
	}
	rows := make([]ShareRow, 0, len(origins))
	for _, o := range origins {
		r := ShareRow{
			Origin:        o,
			AccessibleN:   len(ex.Accessible[o]),
			InaccessibleN: len(ex.Inaccessible[o]),
		}
		if totalAcc > 0 {
			r.AccessiblePct = 100 * float64(r.AccessibleN) / float64(totalAcc)
		}
		if totalInacc > 0 {
			r.InaccessiblePct = 100 * float64(r.InaccessibleN) / float64(totalInacc)
		}
		rows = append(rows, r)
	}
	return rows
}

// CountryCell is one cell of Figure 6/16: hosts in DestCountry exclusively
// accessible from Origin, with the same-country flag highlighted.
type CountryCell struct {
	Origin      origin.ID
	DestCountry geo.Country
	Hosts       int
	// InCountry marks the dark-green diagonal: origin scanning its own
	// country.
	InCountry bool
	// CountryFrac is Hosts as a fraction of the destination country's
	// live hosts.
	CountryFrac float64
}

// ExclusiveByCountry computes Figure 6/16 for one protocol. originCountry
// maps each origin to its location; countryHosts counts each country's
// ground-truth hosts.
func ExclusiveByCountry(c *Classifier, topo Topology, originCountry map[origin.ID]geo.Country) []CountryCell {
	ex := Exclusive(c)
	countryHosts := map[geo.Country]int{}
	for _, a := range c.Union() {
		if cc, ok := topo.CountryOf(a); ok {
			countryHosts[cc]++
		}
	}
	var cells []CountryCell
	for _, o := range c.DS.Origins {
		counts := map[geo.Country]int{}
		for _, a := range ex.Accessible[o] {
			if cc, ok := topo.CountryOf(a); ok {
				counts[cc]++
			}
		}
		for cc, n := range counts {
			cell := CountryCell{
				Origin: o, DestCountry: cc, Hosts: n,
				InCountry: originCountry[o] == cc,
			}
			if th := countryHosts[cc]; th > 0 {
				cell.CountryFrac = float64(n) / float64(th)
			}
			cells = append(cells, cell)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Origin != cells[j].Origin {
			return cells[i].Origin < cells[j].Origin
		}
		return cells[i].Hosts > cells[j].Hosts
	})
	return cells
}

// ASShare is one bar of Figure 7: an AS's share of the hosts exclusively
// accessible from one origin.
type ASShare struct {
	Origin origin.ID
	AS     asn.ASN
	ASName string
	Hosts  int
	Share  float64
}

// ExclusiveByAS computes Figure 7: the ASes holding the largest share of
// each origin's exclusively accessible hosts (top n per origin).
func ExclusiveByAS(c *Classifier, topo Topology, topN int) []ASShare {
	ex := Exclusive(c)
	var out []ASShare
	for _, o := range c.DS.Origins {
		hosts := ex.Accessible[o]
		if len(hosts) == 0 {
			continue
		}
		counts := map[asn.ASN]int{}
		for _, a := range hosts {
			if n, ok := topo.ASOf(a); ok {
				counts[n]++
			}
		}
		shares := make([]ASShare, 0, len(counts))
		for n, cnt := range counts {
			shares = append(shares, ASShare{
				Origin: o, AS: n, ASName: topo.ASName(n),
				Hosts: cnt, Share: float64(cnt) / float64(len(hosts)),
			})
		}
		sort.Slice(shares, func(i, j int) bool { return shares[i].Hosts > shares[j].Hosts })
		if len(shares) > topN {
			shares = shares[:topN]
		}
		out = append(out, shares...)
	}
	return out
}
