package analysis

import (
	"context"
	"errors"
	"testing"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/results"
	"repro/internal/zgrab"
)

// fakeTopo maps address high bytes to ASes and countries for handcrafted
// datasets: AS = first octet, country by table.
type fakeTopo struct {
	countries map[byte]geo.Country
}

func (f fakeTopo) ASOf(a ip.Addr) (asn.ASN, bool) { return asn.ASN(a.V4() >> 24), true }
func (f fakeTopo) ASName(n asn.ASN) string        { return "AS" + string(rune('A'+n%26)) }
func (f fakeTopo) CountryOf(a ip.Addr) (geo.Country, bool) {
	if f.countries == nil {
		return "US", true
	}
	c, ok := f.countries[byte(a.V4()>>24)]
	if !ok {
		return "US", true
	}
	return c, true
}

// mkDS builds a dataset where outcome[o][trial][addr] gives L7 success.
// Hosts not mentioned in a trial's map for ANY origin are absent from that
// trial's ground truth. ProbeMask is 0b11 for successes and for explicit
// l4only entries, 0 otherwise.
type outcomeSpec map[origin.ID][]map[ip.Addr]bool

func mkDS(t *testing.T, origins origin.Set, trials int, spec outcomeSpec) *results.Dataset {
	t.Helper()
	ds := results.NewDataset(origins, trials)
	for _, o := range origins {
		for tr := 0; tr < trials; tr++ {
			sr := results.NewScanResult(o, proto.HTTP, tr)
			if int(o) < 100 && spec[o] != nil && tr < len(spec[o]) {
				for a, ok := range spec[o][tr] {
					rec := results.HostRecord{Addr: a, ProbeMask: 0b11, L7: ok}
					if !ok {
						rec.ProbeMask = 0
						rec.Fail = zgrab.FailTimeout
					}
					sr.Add(rec)
				}
			}
			ds.Put(sr)
		}
	}
	return ds
}

var (
	h1 = ip.MustParseAddr("1.0.0.1")
	h2 = ip.MustParseAddr("1.0.0.2")
	h3 = ip.MustParseAddr("2.0.0.1")
	h4 = ip.MustParseAddr("2.0.0.2")
	h5 = ip.MustParseAddr("3.0.0.1")
)

// twoOriginDS: AU sees everything always; BR misses h1 in trial 0 only
// (transient), misses h3 in all trials (long-term), and h5 exists only in
// trial 1 where BR misses it (unknown).
func twoOriginDS(t *testing.T) *results.Dataset {
	all := map[ip.Addr]bool{h1: true, h2: true, h3: true, h4: true}
	allWith5 := map[ip.Addr]bool{h1: true, h2: true, h3: true, h4: true, h5: true}
	return mkDS(t, origin.Set{origin.AU, origin.BR}, 3, outcomeSpec{
		origin.AU: {all, allWith5, all},
		origin.BR: {
			{h1: false, h2: true, h3: false, h4: true},
			{h1: true, h2: true, h3: false, h4: true, h5: false},
			{h1: true, h2: true, h3: false, h4: true},
		},
	})
}

func TestClassifierBasics(t *testing.T) {
	ds := twoOriginDS(t)
	c := NewClassifier(ds, proto.HTTP)

	if got := len(c.Union()); got != 5 {
		t.Fatalf("union = %d, want 5", got)
	}
	cases := []struct {
		o    origin.ID
		a    ip.Addr
		want Class
	}{
		{origin.AU, h1, ClassAccessible},
		{origin.AU, h3, ClassAccessible},
		{origin.BR, h1, ClassTransient},
		{origin.BR, h2, ClassAccessible},
		{origin.BR, h3, ClassLongTerm},
		{origin.BR, h4, ClassAccessible},
		{origin.BR, h5, ClassUnknown},
		{origin.AU, h5, ClassAccessible}, // seen in its only trial
	}
	for _, cse := range cases {
		if got := c.Of(cse.o, cse.a); got != cse.want {
			t.Errorf("class(%v, %v) = %v, want %v", cse.o, cse.a, got, cse.want)
		}
	}
	if n := len(c.HostsOfClass(origin.BR, ClassLongTerm)); n != 1 {
		t.Errorf("BR long-term count = %d", n)
	}
	if !c.PresentIn(h5, 1) || c.PresentIn(h5, 0) {
		t.Error("presence wrong for h5")
	}
	if c.TrialsPresent(h1) != 3 || c.TrialsPresent(h5) != 1 {
		t.Error("TrialsPresent wrong")
	}
}

func TestMissedInTrial(t *testing.T) {
	ds := twoOriginDS(t)
	c := NewClassifier(ds, proto.HTTP)
	missed := c.MissedInTrial(origin.BR, 0)
	if len(missed) != 2 {
		t.Fatalf("BR missed %v in trial 0, want h1 and h3", missed)
	}
	if len(c.MissedInTrial(origin.AU, 0)) != 0 {
		t.Error("AU should miss nothing")
	}
}

func TestMissingBreakdown(t *testing.T) {
	ds := twoOriginDS(t)
	c := NewClassifier(ds, proto.HTTP)
	bds := MissingBreakdown(c)
	// Find BR trial 0: h1 transient (its /24 peer h2 is accessible →
	// host-level), h3 long-term (peer h4 accessible → host-level).
	var br0 *Breakdown
	for i := range bds {
		if bds[i].Origin == origin.BR && bds[i].Trial == 0 {
			br0 = &bds[i]
		}
	}
	if br0 == nil {
		t.Fatal("no BR trial-0 breakdown")
	}
	if br0.Counts[CatTransientHost] != 1 || br0.Counts[CatLongTermHost] != 1 {
		t.Errorf("BR trial 0 counts = %v", br0.Counts)
	}
	if br0.Counts[CatTransientNet] != 0 || br0.Counts[CatLongTermNet] != 0 {
		t.Errorf("unexpected network-level counts: %v", br0.Counts)
	}
	if br0.GroundTruth != 4 {
		t.Errorf("trial 0 ground truth = %d", br0.GroundTruth)
	}
	if br0.Frac(CatTransientHost) != 0.25 {
		t.Errorf("transient-host frac = %v", br0.Frac(CatTransientHost))
	}
	// BR trial 1: h5 unknown, h3 long-term.
	var br1 *Breakdown
	for i := range bds {
		if bds[i].Origin == origin.BR && bds[i].Trial == 1 {
			br1 = &bds[i]
		}
	}
	if br1.Counts[CatUnknown] != 1 {
		t.Errorf("BR trial 1 unknown = %d", br1.Counts[CatUnknown])
	}
}

func TestMissingBreakdownNetworkLevel(t *testing.T) {
	// Both hosts of a /24 long-term missed by BR: network-level.
	all := map[ip.Addr]bool{h1: true, h2: true, h3: true}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 2, outcomeSpec{
		origin.AU: {all, all},
		origin.BR: {
			{h1: false, h2: false, h3: true},
			{h1: false, h2: false, h3: true},
		},
	})
	c := NewClassifier(ds, proto.HTTP)
	bds := MissingBreakdown(c)
	for _, b := range bds {
		if b.Origin == origin.BR {
			if b.Counts[CatLongTermNet] != 2 || b.Counts[CatLongTermHost] != 0 {
				t.Errorf("trial %d counts = %v, want 2 long-term-net", b.Trial, b.Counts)
			}
		}
	}
}

func TestOverlapHistogram(t *testing.T) {
	// h3 long-term from BR only; with 2 origins histogram[0] counts it.
	ds := twoOriginDS(t)
	c := NewClassifier(ds, proto.HTTP)
	hist := OverlapHistogram(c, ClassLongTerm, nil)
	if hist[0] != 1 {
		t.Errorf("hist = %v, want one host missed by exactly 1 origin", hist)
	}
	// Exclusion removes BR's contribution entirely.
	hist = OverlapHistogram(c, ClassLongTerm, origin.Set{origin.BR})
	for _, n := range hist {
		if n != 0 {
			t.Errorf("hist with BR excluded = %v", hist)
		}
	}
}

func TestCoverageTable(t *testing.T) {
	ds := twoOriginDS(t)
	tab := Coverage(ds, proto.HTTP)
	if len(tab.Union) != 3 || tab.Union[0] != 4 || tab.Union[1] != 5 {
		t.Fatalf("unions = %v", tab.Union)
	}
	// Trial 0: AU 4/4, BR 2/4; intersection 2/4.
	if got := cellFor(tab, origin.AU, 0); got != 1.0 {
		t.Errorf("AU trial0 coverage = %v", got)
	}
	if got := cellFor(tab, origin.BR, 0); got != 0.5 {
		t.Errorf("BR trial0 coverage = %v", got)
	}
	if tab.Intersection[0] != 0.5 {
		t.Errorf("intersection = %v", tab.Intersection[0])
	}
	if m := tab.Mean(origin.BR, false); m < 0.5 || m > 0.81 {
		t.Errorf("BR mean = %v", m)
	}
}

func cellFor(tab CoverageTable, o origin.ID, trial int) float64 {
	for _, c := range tab.Cells {
		if c.Origin == o && c.Trial == trial {
			return c.Coverage
		}
	}
	return -1
}

func TestPairwiseMcNemar(t *testing.T) {
	// Build a dataset where BR misses 40 hosts AU sees: significant.
	auMap := map[ip.Addr]bool{}
	brMap := map[ip.Addr]bool{}
	for i := 0; i < 200; i++ {
		a := ip.AddrFrom4(0x01000000 + uint32(i))
		auMap[a] = true
		brMap[a] = i >= 40
	}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 1, outcomeSpec{
		origin.AU: {auMap},
		origin.BR: {brMap},
	})
	pairs := PairwiseMcNemar(ds, proto.HTTP, 0)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0].B != 40 || pairs[0].C != 0 {
		t.Errorf("discordant counts = %d,%d", pairs[0].B, pairs[0].C)
	}
	if pairs[0].PAdjusted > 0.001 {
		t.Errorf("adjusted p = %v, want significant", pairs[0].PAdjusted)
	}
}

func TestCochranQAnalysis(t *testing.T) {
	ds := twoOriginDS(t)
	_, df, p := CochranQ(ds, proto.HTTP, 0)
	if df != 1 {
		t.Errorf("df = %d", df)
	}
	if p < 0 || p > 1 {
		t.Errorf("p = %v", p)
	}
}

func TestExclusive(t *testing.T) {
	// h3: long-term from BR, accessible from AU only → exclusively
	// accessible from AU and exclusively inaccessible from BR.
	ds := twoOriginDS(t)
	c := NewClassifier(ds, proto.HTTP)
	ex := Exclusive(c)
	// h3 (long-term from BR) and h5 (present only in trial 1, unseen by
	// BR there) are both reachable from AU alone.
	if len(ex.Accessible[origin.AU]) != 2 || ex.Accessible[origin.AU][0] != h3 || ex.Accessible[origin.AU][1] != h5 {
		t.Errorf("AU exclusive access = %v", ex.Accessible[origin.AU])
	}
	if len(ex.Inaccessible[origin.BR]) != 1 || ex.Inaccessible[origin.BR][0] != h3 {
		t.Errorf("BR exclusive inaccess = %v", ex.Inaccessible[origin.BR])
	}
	rows := ExclusiveShare(ex, ds.Origins)
	for _, r := range rows {
		if r.Origin == origin.AU && r.AccessiblePct != 100 {
			t.Errorf("AU accessible share = %v", r.AccessiblePct)
		}
		if r.Origin == origin.BR && r.InaccessiblePct != 100 {
			t.Errorf("BR inaccessible share = %v", r.InaccessiblePct)
		}
	}
}

func TestExclusiveByCountryAndAS(t *testing.T) {
	ds := twoOriginDS(t)
	c := NewClassifier(ds, proto.HTTP)
	topo := fakeTopo{countries: map[byte]geo.Country{1: "US", 2: "JP", 3: "DE"}}
	cells := ExclusiveByCountry(c, topo, map[origin.ID]geo.Country{origin.AU: "AU", origin.BR: "BR"})
	// h3 is in AS 2 → country JP; exclusively accessible from AU.
	found := false
	for _, cell := range cells {
		if cell.Origin == origin.AU && cell.DestCountry == "JP" {
			found = true
			if cell.Hosts != 1 || cell.InCountry {
				t.Errorf("cell = %+v", cell)
			}
			if cell.CountryFrac <= 0 || cell.CountryFrac > 1 {
				t.Errorf("country frac = %v", cell.CountryFrac)
			}
		}
	}
	if !found {
		t.Fatalf("no AU/JP cell: %v", cells)
	}
	shares := ExclusiveByAS(c, topo, 5)
	if len(shares) != 2 || shares[0].Share != 0.5 {
		t.Errorf("AS shares = %+v", shares)
	}
}

func TestASDistributionAndLostASes(t *testing.T) {
	// BR long-term misses both hosts of AS 2 and nothing else.
	all := map[ip.Addr]bool{h1: true, h2: true, h3: true, h4: true}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 2, outcomeSpec{
		origin.AU: {all, all},
		origin.BR: {
			{h1: true, h2: true, h3: false, h4: false},
			{h1: true, h2: true, h3: false, h4: false},
		},
	})
	c := NewClassifier(ds, proto.HTTP)
	topo := fakeTopo{}
	dist := ASDistribution(c, topo)
	for _, d := range dist {
		if d.Origin == origin.BR {
			if d.Total != 2 || len(d.TopShares) != 1 || d.TopShares[0] != 1.0 {
				t.Errorf("BR concentration = %+v", d)
			}
			if d.TopASes[0] != 2 {
				t.Errorf("top AS = %v", d.TopASes[0])
			}
		}
		if d.Origin == origin.AU && d.Total != 0 {
			t.Errorf("AU should have no long-term hosts")
		}
	}
	rows := InaccessibleASes(c, topo, 2)
	for _, r := range rows {
		if r.Origin == origin.BR {
			if r.Full != 1 || r.AtLeast75 != 1 || r.AtLeast50 != 1 {
				t.Errorf("BR lost ASes = %+v", r)
			}
		}
	}
}

func TestCountryInaccessibility(t *testing.T) {
	all := map[ip.Addr]bool{h1: true, h2: true, h3: true, h4: true}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 2, outcomeSpec{
		origin.AU: {all, all},
		origin.BR: {
			{h1: true, h2: true, h3: false, h4: false},
			{h1: true, h2: true, h3: false, h4: false},
		},
	})
	c := NewClassifier(ds, proto.HTTP)
	topo := fakeTopo{countries: map[byte]geo.Country{1: "US", 2: "BD"}}
	rows := CountryInaccessibility(c, topo)
	found := false
	for _, r := range rows {
		if r.Origin == origin.BR && r.Country == "BD" {
			found = true
			if r.Pct != 100 || r.DominantASes != 1 {
				t.Errorf("row = %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("no BR/BD row")
	}
	corr := CountrySizeCorrelation(c, topo)
	if corr.N < 2 {
		t.Errorf("correlation over %d countries", corr.N)
	}
}

func TestTransientLossSpread(t *testing.T) {
	// AS1 has 4 hosts; BR transiently misses 2 of them, AU none.
	hs := []ip.Addr{
		ip.MustParseAddr("1.0.0.1"), ip.MustParseAddr("1.0.0.2"),
		ip.MustParseAddr("1.0.0.3"), ip.MustParseAddr("1.0.0.4"),
	}
	mk := func(miss ...ip.Addr) map[ip.Addr]bool {
		m := map[ip.Addr]bool{}
		for _, h := range hs {
			m[h] = true
		}
		for _, h := range miss {
			m[h] = false
		}
		return m
	}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 2, outcomeSpec{
		origin.AU: {mk(), mk()},
		origin.BR: {mk(hs[0], hs[1]), mk()},
	})
	c := NewClassifier(ds, proto.HTTP)
	spreads := TransientLossSpread(c, fakeTopo{}, 2)
	if len(spreads) != 1 {
		t.Fatalf("spreads = %+v", spreads)
	}
	sp := spreads[0]
	if sp.Rate[origin.BR] != 0.5 || sp.Rate[origin.AU] != 0 {
		t.Errorf("rates = %v", sp.Rate)
	}
	if sp.Delta != 0.5 || sp.Diff != 2 {
		t.Errorf("delta=%v diff=%d", sp.Delta, sp.Diff)
	}
	plain, weighted := SpreadCDF(spreads)
	if len(plain) != 1 || len(weighted) != 1 {
		t.Error("CDFs empty")
	}
}

func TestBestWorstStability(t *testing.T) {
	// AS1: AU always best (sees all), BR always worst.
	hs := []ip.Addr{
		ip.MustParseAddr("1.0.0.1"), ip.MustParseAddr("1.0.0.2"),
		ip.MustParseAddr("1.0.0.3"), ip.MustParseAddr("1.0.0.4"),
		ip.MustParseAddr("1.0.0.5"),
	}
	mk := func(missN int) map[ip.Addr]bool {
		m := map[ip.Addr]bool{}
		for i, h := range hs {
			m[h] = i >= missN
		}
		return m
	}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 3, outcomeSpec{
		origin.AU: {mk(0), mk(0), mk(0)},
		origin.BR: {mk(2), mk(1), mk(2)},
	})
	c := NewClassifier(ds, proto.HTTP)
	rep := BestWorstStability(c, fakeTopo{}, 5)
	if rep.ASesConsidered != 1 {
		t.Fatalf("considered = %d", rep.ASesConsidered)
	}
	if rep.ConsistentBest[origin.AU] != 1 || rep.ConsistentWorst[origin.BR] != 1 {
		t.Errorf("best/worst = %v / %v", rep.ConsistentBest, rep.ConsistentWorst)
	}
	if rep.Flips != 0 {
		t.Errorf("flips = %d", rep.Flips)
	}
}

func TestProbesBothLost(t *testing.T) {
	ds := results.NewDataset(origin.Set{origin.AU, origin.BR}, 1)
	sAU := results.NewScanResult(origin.AU, proto.HTTP, 0)
	sBR := results.NewScanResult(origin.BR, proto.HTTP, 0)
	// 10 hosts: AU sees all with both probes. BR: 6 both probes, 1 with
	// one probe, 3 with none (both lost, L7 fails).
	for i := 0; i < 10; i++ {
		a := ip.AddrFrom4(0x01000000 + uint32(i))
		sAU.Add(results.HostRecord{Addr: a, ProbeMask: 0b11, L7: true})
		rec := results.HostRecord{Addr: a}
		switch {
		case i < 6:
			rec.ProbeMask, rec.L7 = 0b11, true
		case i == 6:
			rec.ProbeMask, rec.L7 = 0b10, true
		default:
			rec.ProbeMask = 0
		}
		sBR.Add(rec)
	}
	ds.Put(sAU)
	ds.Put(sBR)
	ps := Probes(ds, proto.HTTP, origin.BR, 0)
	if ps.LostAtLeastOne != 4 || ps.LostBoth != 3 {
		t.Errorf("lost = %d/%d", ps.LostBoth, ps.LostAtLeastOne)
	}
	if ps.BothLostPortion != 0.75 {
		t.Errorf("portion = %v", ps.BothLostPortion)
	}
	if ps.Coverage2Probe != 0.7 {
		t.Errorf("2-probe coverage = %v", ps.Coverage2Probe)
	}
	// Single probe: host 6 has mask 0b10 (probe 0 lost) → excluded.
	if ps.Coverage1Probe != 0.6 {
		t.Errorf("1-probe coverage = %v", ps.Coverage1Probe)
	}
}

func TestPacketLossEstimator(t *testing.T) {
	ds := results.NewDataset(origin.Set{origin.AU}, 1)
	s := results.NewScanResult(origin.AU, proto.HTTP, 0)
	// 20 responding hosts, 2 with exactly one probe answered, 1 RST-only
	// (excluded), 1 unresponsive (excluded).
	for i := 0; i < 20; i++ {
		a := ip.AddrFrom4(0x01000000 + uint32(i))
		mask := uint8(0b11)
		if i < 2 {
			mask = 0b01
		}
		s.Add(results.HostRecord{Addr: a, ProbeMask: mask, L7: true})
	}
	s.Add(results.HostRecord{Addr: ip.AddrFrom4(0x01000100), RST: true, L7: false})
	ds.Put(s)
	est := PacketLoss(ds, fakeTopo{}, proto.HTTP, origin.AU, 0, 2)
	if est.Rate != 0.1 {
		t.Errorf("rate = %v, want 0.1", est.Rate)
	}
	if r, ok := est.PerAS[1]; !ok || r != 0.1 {
		t.Errorf("per-AS = %v", est.PerAS)
	}
}

func TestMultiOrigin(t *testing.T) {
	// AU sees 3/4, BR sees a different 3/4; union sees 4/4.
	hs := []ip.Addr{h1, h2, h3, h4}
	mk := func(miss ip.Addr) map[ip.Addr]bool {
		m := map[ip.Addr]bool{}
		for _, h := range hs {
			m[h] = h != miss
		}
		return m
	}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 1, outcomeSpec{
		origin.AU: {mk(h1)},
		origin.BR: {mk(h4)},
	})
	levels, err := MultiOrigin(context.Background(), ds, proto.HTTP, ds.Origins, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %d", len(levels))
	}
	if levels[0].K != 1 || levels[0].Median != 0.75 {
		t.Errorf("k=1: %+v", levels[0])
	}
	if levels[1].K != 2 || levels[1].Median != 1.0 {
		t.Errorf("k=2: %+v", levels[1])
	}
	if got := CoverageOfCombo(ds, proto.HTTP, origin.Set{origin.AU, origin.BR}, false); got != 1.0 {
		t.Errorf("combo coverage = %v", got)
	}
}

func TestMultiOriginCanceled(t *testing.T) {
	hs := []ip.Addr{h1, h2, h3, h4}
	alive := map[ip.Addr]bool{}
	for _, h := range hs {
		alive[h] = true
	}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 1, outcomeSpec{
		origin.AU: {alive},
		origin.BR: {alive},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MultiOrigin(ctx, ds, proto.HTTP, ds.Origins, false); !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestForEachCombo(t *testing.T) {
	var combos [][]int
	forEachCombo(4, 2, func(idx []int) {
		combos = append(combos, append([]int(nil), idx...))
	})
	if len(combos) != 6 {
		t.Fatalf("C(4,2) = %d", len(combos))
	}
	seen := map[[2]int]bool{}
	for _, c := range combos {
		k := [2]int{c[0], c[1]}
		if c[0] >= c[1] || seen[k] {
			t.Fatalf("bad combo %v", c)
		}
		seen[k] = true
	}
}

func TestSSHCausesAttribution(t *testing.T) {
	ds := results.NewDataset(origin.Set{origin.AU, origin.BR}, 2)
	alibaba := ip.MustParseAddr("9.0.0.1") // AS 9 = temporal
	maxst := ip.MustParseAddr("1.0.0.1")
	other := ip.MustParseAddr("2.0.0.1")
	for tr := 0; tr < 2; tr++ {
		sAU := results.NewScanResult(origin.AU, proto.SSH, tr)
		sAU.Add(results.HostRecord{Addr: alibaba, ProbeMask: 0b11, L7: true})
		sAU.Add(results.HostRecord{Addr: maxst, ProbeMask: 0b11, L7: true})
		sAU.Add(results.HostRecord{Addr: other, ProbeMask: 0b11, L7: true})
		ds.Put(sAU)
		sBR := results.NewScanResult(origin.BR, proto.SSH, tr)
		// BR: alibaba host resets; maxstartups host closes; other drops.
		sBR.Add(results.HostRecord{Addr: alibaba, ProbeMask: 0b11, Fail: zgrab.FailReset})
		sBR.Add(results.HostRecord{Addr: maxst, ProbeMask: 0b11, Fail: zgrab.FailClosed})
		sBR.Add(results.HostRecord{Addr: other, ProbeMask: 0, Fail: zgrab.FailTimeout})
		ds.Put(sBR)
	}
	c := NewClassifier(ds, proto.SSH)
	bks := SSHCauses(c, fakeTopo{}, []asn.ASN{9})
	for _, b := range bks {
		if b.Origin != origin.BR {
			continue
		}
		if b.Counts[CauseAlibabaTemporal] != 2 {
			t.Errorf("alibaba count = %d", b.Counts[CauseAlibabaTemporal])
		}
		if b.Counts[CauseProbabilistic] != 2 {
			t.Errorf("probabilistic count = %d", b.Counts[CauseProbabilistic])
		}
		if b.Counts[CauseOther] != 2 {
			t.Errorf("other count = %d", b.Counts[CauseOther])
		}
		if b.Missing != 6 {
			t.Errorf("missing = %d", b.Missing)
		}
	}
}

func TestAgreementWithin(t *testing.T) {
	// Two /24 blocks: in block 1 both origins agree (both see both
	// hosts); in block 2 BR misses both hosts while AU sees them —
	// disagreement beyond 5%.
	b1a, b1b := ip.MustParseAddr("1.0.0.1"), ip.MustParseAddr("1.0.0.2")
	b2a, b2b := ip.MustParseAddr("1.0.1.1"), ip.MustParseAddr("1.0.1.2")
	all := map[ip.Addr]bool{b1a: true, b1b: true, b2a: true, b2b: true}
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 1, outcomeSpec{
		origin.AU: {all},
		origin.BR: {{b1a: true, b1b: true, b2a: false, b2b: false}},
	})
	agg := AgreementWithin(ds, proto.HTTP, 0, 2, 0.05)
	if agg.Blocks != 2 {
		t.Fatalf("blocks = %d", agg.Blocks)
	}
	if len(agg.PerPair) != 1 || agg.PerPair[0].Agreement != 0.5 {
		t.Errorf("agreement = %+v", agg.PerPair)
	}
	if agg.Mean != 0.5 {
		t.Errorf("mean = %v", agg.Mean)
	}
}

func TestAgreementEmptyDataset(t *testing.T) {
	ds := mkDS(t, origin.Set{origin.AU, origin.BR}, 1, outcomeSpec{})
	agg := AgreementWithin(ds, proto.HTTP, 0, 2, 0.05)
	if agg.Blocks != 0 || len(agg.PerPair) != 0 {
		t.Errorf("empty dataset agreement = %+v", agg)
	}
}
