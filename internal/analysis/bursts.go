package analysis

import (
	"time"

	"repro/internal/asn"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/stats"
)

// BurstReport summarizes §5.3 for one protocol: how much transient loss
// coincides with hour-granularity burst outages.
type BurstReport struct {
	// PerOriginTrial[o][t] is the fraction of the origin's transiently
	// missed hosts in trial t that fall in burst hours (14–36% in the
	// paper).
	PerOriginTrial map[origin.ID][]float64
	// ASesWithBurst is the fraction of destination ASes (with ≥1
	// transient host) that show at least one detected burst (45%).
	ASesWithBurst float64
	// SingleOriginBursts is the fraction of (AS, hour) bursts affecting
	// exactly one origin (~60%); WithinThree within three (≥91%).
	SingleOriginBursts float64
	WithinThree        float64
	// SingleOriginByOrigin counts single-origin bursts per origin
	// (Australia accounts for 30–40%).
	SingleOriginByOrigin map[origin.ID]int
}

// hourOf buckets a virtual time into scan hours.
func hourOf(t time.Duration) int { return int(t / time.Hour) }

// Bursts runs the paper's §5.3 analysis: build hourly series of
// transiently missed hosts per (origin, destination AS, trial), detect
// outliers ≥2σ above the 4-hour rolling mean, and attribute loss.
func Bursts(c *Classifier, topo Topology, scanHours int) BurstReport {
	if scanHours <= 0 {
		scanHours = 21
	}
	ds := c.DS
	rep := BurstReport{
		PerOriginTrial:       map[origin.ID][]float64{},
		SingleOriginByOrigin: map[origin.ID]int{},
	}

	// series[o][as][trial][hour] = transiently missed hosts.
	type key struct {
		o     origin.ID
		as    asn.ASN
		trial int
	}
	series := map[key][]float64{}
	transientASes := map[asn.ASN]bool{}
	// missedAt[o][trial] total transient misses; inBurst counts later.
	missed := map[origin.ID][]int{}
	for _, o := range ds.Origins {
		missed[o] = make([]int, ds.Trials)
		rep.PerOriginTrial[o] = make([]float64, ds.Trials)
	}

	hostAS := map[ip.Addr]asn.ASN{}
	for _, a := range c.Union() {
		if n, ok := topo.ASOf(a); ok {
			hostAS[a] = n
		}
	}

	for _, o := range ds.Origins {
		for t := 0; t < ds.Trials; t++ {
			s := ds.Scan(o, c.Proto, t)
			if s == nil {
				continue
			}
			// Missed hosts are sorted, so one cursor pair over the
			// union spine and the scan's address column resolves class
			// and probe time without per-host searches.
			addrs := s.Addrs()
			union := c.union
			ui, j := 0, 0
			for _, a := range c.MissedInTrial(o, t) {
				for union[ui].Less(a) {
					ui++
				}
				if c.OfAt(o, ui) != ClassTransient {
					continue
				}
				as, ok := hostAS[a]
				if !ok {
					continue
				}
				transientASes[as] = true
				k := key{o, as, t}
				if series[k] == nil {
					series[k] = make([]float64, scanHours)
				}
				for j < len(addrs) && addrs[j].Less(a) {
					j++
				}
				h := 0
				if j < len(addrs) && addrs[j] == a {
					h = hourOf(s.RecordAt(j).T)
				} else if pt, okp := probeTime(c, a, t); okp {
					// Scans are synchronized: another origin's
					// record of the host gives the probe hour.
					h = hourOf(pt)
				}
				if h >= scanHours {
					h = scanHours - 1
				}
				series[k][h]++
				missed[o][t]++
			}
		}
	}

	// Detect bursts per series; aggregate.
	type burstKey struct {
		as    asn.ASN
		trial int
		hour  int
	}
	burstOrigins := map[burstKey]map[origin.ID]bool{}
	asesWithBurst := map[asn.ASN]bool{}
	inBurst := map[origin.ID][]int{}
	for _, o := range ds.Origins {
		inBurst[o] = make([]int, ds.Trials)
	}
	for k, ser := range series {
		idxs := stats.DetectBursts(ser, 4, 2)
		for _, h := range idxs {
			// Require a real burst, not one stray host poking above
			// a flat series: the paper chose hour granularity so an
			// average AS under random loss loses more than one host
			// per hour; demand at least 2 in the spike.
			if ser[h] < 2 {
				continue
			}
			bk := burstKey{k.as, k.trial, h}
			if burstOrigins[bk] == nil {
				burstOrigins[bk] = map[origin.ID]bool{}
			}
			burstOrigins[bk][k.o] = true
			asesWithBurst[k.as] = true
			inBurst[k.o][k.trial] += int(ser[h])
		}
	}

	for _, o := range ds.Origins {
		for t := 0; t < ds.Trials; t++ {
			if missed[o][t] > 0 {
				rep.PerOriginTrial[o][t] = float64(inBurst[o][t]) / float64(missed[o][t])
			}
		}
	}
	if len(transientASes) > 0 {
		rep.ASesWithBurst = float64(len(asesWithBurst)) / float64(len(transientASes))
	}
	single, within3 := 0, 0
	for _, os := range burstOrigins {
		if len(os) == 1 {
			single++
			for o := range os {
				rep.SingleOriginByOrigin[o]++
			}
		}
		if len(os) <= 3 {
			within3++
		}
	}
	if len(burstOrigins) > 0 {
		rep.SingleOriginBursts = float64(single) / float64(len(burstOrigins))
		rep.WithinThree = float64(within3) / float64(len(burstOrigins))
	}
	return rep
}

// probeTime finds when the host was probed in the trial from any origin
// that recorded it (scans are seed-synchronized, so all origins probe a
// target at the same virtual time).
func probeTime(c *Classifier, a ip.Addr, trial int) (time.Duration, bool) {
	for _, o := range c.DS.Origins {
		if s := c.DS.Scan(o, c.Proto, trial); s != nil {
			if r, ok := s.Get(a); ok {
				return r.T, true
			}
		}
	}
	return 0, false
}
