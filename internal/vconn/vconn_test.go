package vconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/ip"
)

func TestBasicExchange(t *testing.T) {
	c, s := PipeLabeled("client", "server")
	defer c.Close()
	defer s.Close()

	go func() {
		buf := make([]byte, 16)
		n, _ := s.Read(buf)
		s.Write(bytes.ToUpper(buf[:n]))
	}()

	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "HELLO" {
		t.Errorf("got %q", buf[:n])
	}
}

func TestCloseDeliversEOFAfterDrain(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	c.Write([]byte("tail"))
	c.Close()

	buf := make([]byte, 16)
	n, err := s.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("first read = %q, %v", buf[:n], err)
	}
	if _, err := s.Read(buf); err != io.EOF {
		t.Errorf("after drain err = %v, want EOF", err)
	}
}

func TestAbortDeliversReset(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	c.Write([]byte("data you never see"))
	c.Abort()

	buf := make([]byte, 64)
	if _, err := s.Read(buf); !errors.Is(err, ErrReset) {
		t.Errorf("read after abort = %v, want ErrReset", err)
	}
	if _, err := s.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Errorf("write after abort = %v, want ErrReset", err)
	}
}

func TestAbortUnblocksPendingRead(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	errCh := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, err := s.Read(buf)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Abort()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrReset) {
			t.Errorf("err = %v, want ErrReset", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending read not unblocked by abort")
	}
}

func TestReadDeadline(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	defer c.Close()
	defer s.Close()
	s.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 8)
	start := time.Now()
	_, err := s.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Error("deadline fired far too late")
	}
}

func TestWriteDeadlineOnFullWindow(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	defer c.Close()
	defer s.Close()
	c.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	// Fill beyond the window with no reader draining.
	big := make([]byte, defaultWindow+1)
	_, err := c.Write(big)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestExpiredDeadlineFailsImmediately(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	defer c.Close()
	defer s.Close()
	s.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := s.Read(make([]byte, 1)); err == nil {
		t.Fatal("read with expired deadline succeeded")
	}
}

func TestWriteAfterPeerCloseFails(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	s.Close()
	// The peer's reader is gone; our writes should fail (EPIPE/RST).
	// Note data may be accepted into the buffer before the close is
	// seen; loop until the error surfaces.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Write([]byte("x")); err != nil {
			return
		}
	}
	t.Fatal("write to closed peer never failed")
}

func TestCloseWriteHalfClose(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	defer c.Close()
	defer s.Close()
	s.Write([]byte("tail"))
	s.CloseWrite()
	// The peer's writes are still accepted after the half-close — the
	// guarantee the fabric's close-after-accept teardown relies on to
	// keep grab outcomes independent of write/close ordering.
	if _, err := c.Write([]byte("greeting")); err != nil {
		t.Fatalf("write after peer CloseWrite = %v", err)
	}
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "tail" {
		t.Fatalf("read buffered data = %q, %v", buf[:n], err)
	}
	if _, err := c.Read(buf); err != io.EOF {
		t.Errorf("read after drain = %v, want io.EOF", err)
	}
	if _, err := c.Write([]byte("more")); err != nil {
		t.Errorf("second write after peer CloseWrite = %v", err)
	}
}

func TestLocalCloseFailsLocalIO(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	defer s.Close()
	c.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Errorf("write after local close = %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Errorf("read after local close = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestAddrs(t *testing.T) {
	c, s := PipeLabeled("10.0.0.1:40000", "192.0.2.7:443")
	defer c.Close()
	defer s.Close()
	if c.LocalAddr().String() != "10.0.0.1:40000" || c.RemoteAddr().String() != "192.0.2.7:443" {
		t.Errorf("client addrs: %v -> %v", c.LocalAddr(), c.RemoteAddr())
	}
	if s.LocalAddr().String() != "192.0.2.7:443" || s.RemoteAddr().String() != "10.0.0.1:40000" {
		t.Errorf("server addrs: %v -> %v", s.LocalAddr(), s.RemoteAddr())
	}
	if c.LocalAddr().Network() != "vtcp" {
		t.Errorf("network = %q", c.LocalAddr().Network())
	}
}

func TestLargeTransfer(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	go func() {
		c.Write(payload)
		c.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("transfer corrupted: %d bytes vs %d", len(got), len(payload))
	}
}

func TestConcurrentBidirectional(t *testing.T) {
	c, s := PipeLabeled("c", "s")
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 1024)
		for i := 0; i < 100; i++ {
			s.Write(buf)
			if _, err := io.ReadFull(s, buf); err != nil {
				t.Errorf("server read: %v", err)
				return
			}
		}
	}()
	buf := make([]byte, 1024)
	for i := 0; i < 100; i++ {
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Fatalf("client read: %v", err)
		}
		c.Write(buf)
	}
	<-done
}

// TestAddrLazyFormatting pins the lazy-label contract: a Pipe built from
// ip.Addr endpoints formats addresses only when String is called (the grab
// fast path never calls it), and PipeLabeled labels win over addresses.
func TestAddrLazyFormatting(t *testing.T) {
	c, s := Pipe(ip.MustParseAddr("10.0.0.1"), ip.MustParseAddr("192.0.2.7"))
	defer c.Close()
	defer s.Close()
	if got := c.LocalAddr().String(); got != "10.0.0.1" {
		t.Errorf("client local = %q", got)
	}
	if got := c.RemoteAddr().String(); got != "192.0.2.7" {
		t.Errorf("client remote = %q", got)
	}
	if got := s.LocalAddr().String(); got != "192.0.2.7" {
		t.Errorf("server local = %q", got)
	}
	if got := c.LocalAddr().Network(); got != "vtcp" {
		t.Errorf("network = %q", got)
	}
	lc, ls := PipeLabeled("client", "server")
	defer lc.Close()
	defer ls.Close()
	if got := lc.RemoteAddr().String(); got != "server" {
		t.Errorf("labeled remote = %q", got)
	}
	if got := (Addr{IP: ip.MustParseAddr("10.0.0.1"), Label: "override"}).String(); got != "override" {
		t.Errorf("label should override IP, got %q", got)
	}
}
