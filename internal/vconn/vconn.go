// Package vconn provides an in-memory, full-duplex net.Conn pair with
// deadline support and TCP-style abort semantics (RST), used as the
// transport between ZGrab application-layer grabbers and simulated hosts.
// Unlike net.Pipe, writes are buffered (a small window, like a TCP send
// buffer), and either side can Abort the connection so the peer observes
// "connection reset by peer" — the behaviour the paper documents for
// Alibaba's SSH blocking and MaxStartups refusals.
package vconn

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/ip"
)

// Errors surfaced by aborted connections.
var (
	// ErrReset is returned from Read/Write after the peer aborts the
	// connection (TCP RST semantics).
	ErrReset = errors.New("vconn: connection reset by peer")
)

// Addr is the net.Addr implementation for virtual connections. It stores
// the endpoint's address value and formats it only when String is called:
// net.Conn requires addresses, but the grab path never reads them, so a
// dial must not pay for two ip.Addr → string conversions up front.
type Addr struct {
	// IP is the endpoint address; String formats it lazily.
	IP ip.Addr
	// Label, when non-empty, overrides IP as the displayed endpoint
	// (tests and tools that don't model addresses).
	Label string
}

// Network returns the virtual network name.
func (a Addr) Network() string { return "vtcp" }

// String returns the endpoint label, formatting the address on demand.
func (a Addr) String() string {
	if a.Label != "" {
		return a.Label
	}
	return a.IP.String()
}

const defaultWindow = 64 * 1024

// Pipe returns a connected pair of virtual connections between the two
// endpoint addresses. Data written to one side becomes readable on the
// other. Each direction buffers up to a window of bytes; writes beyond the
// window block until the reader drains. Endpoint labels are formatted
// lazily by Addr.String, so creating a pipe does no string work.
func Pipe(client, server ip.Addr) (clientConn, serverConn *Conn) {
	return pipe(Addr{IP: client}, Addr{IP: server})
}

// PipeLabeled is Pipe with explicit endpoint labels instead of addresses,
// for tests and tools that don't model IP endpoints.
func PipeLabeled(clientLabel, serverLabel string) (client, server *Conn) {
	return pipe(Addr{Label: clientLabel}, Addr{Label: serverLabel})
}

func pipe(clientAddr, serverAddr Addr) (client, server *Conn) {
	ab := newBuffer()
	ba := newBuffer()
	client = &Conn{
		read: ba, write: ab,
		local:  clientAddr,
		remote: serverAddr,
	}
	server = &Conn{
		read: ab, write: ba,
		local:  serverAddr,
		remote: clientAddr,
	}
	client.peer, server.peer = server, client
	return client, server
}

// Conn is one endpoint of a virtual connection. It implements net.Conn.
type Conn struct {
	read, write   *buffer
	local, remote Addr
	peer          *Conn

	mu       sync.Mutex
	closed   bool
	deadline struct {
		read, write time.Time
	}
}

var _ net.Conn = (*Conn)(nil)

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	dl := c.deadline.read
	c.mu.Unlock()
	return c.read.read(p, dl)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	dl := c.deadline.write
	c.mu.Unlock()
	return c.write.write(p, dl)
}

// Close performs an orderly shutdown (FIN semantics): the peer reads any
// buffered data, then io.EOF.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.write.closeWrite(io.EOF)
	c.read.closeRead()
	return nil
}

// CloseWrite performs a half-close (FIN semantics, like
// net.TCPConn.CloseWrite): the peer reads any buffered data, then io.EOF,
// while the peer's writes continue to be accepted. Unlike Close, the
// outcome the peer observes does not depend on whether its first write
// races the close.
func (c *Conn) CloseWrite() error {
	c.write.closeWrite(io.EOF)
	return nil
}

// Abort resets the connection (RST semantics): the peer's pending and
// future reads and writes fail with ErrReset, discarding buffered data.
func (c *Conn) Abort() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.write.abort(ErrReset)
	c.read.abort(ErrReset)
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline.read, c.deadline.write = t, t
	c.mu.Unlock()
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline.read = t
	c.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline.write = t
	c.mu.Unlock()
	return nil
}

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "vconn: deadline exceeded" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// buffer is one direction of the pipe.
type buffer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	data    []byte
	eofErr  error // set when writer closed (io.EOF) or aborted (ErrReset)
	rClosed bool  // reader side gone
	aborted bool
}

func newBuffer() *buffer {
	b := &buffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) read(p []byte, deadline time.Time) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	timer := b.watchDeadline(deadline)
	if timer != nil {
		defer timer.Stop()
	}
	for {
		if b.aborted {
			return 0, ErrReset
		}
		if len(b.data) > 0 {
			n := copy(p, b.data)
			b.data = b.data[n:]
			b.cond.Broadcast()
			return n, nil
		}
		if b.eofErr != nil {
			return 0, b.eofErr
		}
		if expired(deadline) {
			return 0, timeoutError{}
		}
		b.cond.Wait()
	}
}

func (b *buffer) write(p []byte, deadline time.Time) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	timer := b.watchDeadline(deadline)
	if timer != nil {
		defer timer.Stop()
	}
	written := 0
	for len(p) > 0 {
		if b.aborted {
			return written, ErrReset
		}
		if b.eofErr != nil {
			return written, net.ErrClosed
		}
		if b.rClosed {
			return written, ErrReset // writing to a closed reader: EPIPE/RST
		}
		if room := defaultWindow - len(b.data); room > 0 {
			n := min(room, len(p))
			b.data = append(b.data, p[:n]...)
			p = p[n:]
			written += n
			b.cond.Broadcast()
			continue
		}
		if expired(deadline) {
			return written, timeoutError{}
		}
		b.cond.Wait()
	}
	return written, nil
}

// watchDeadline arranges a wakeup at the deadline so blocked readers and
// writers re-check expiry.
func (b *buffer) watchDeadline(deadline time.Time) *time.Timer {
	if deadline.IsZero() {
		return nil
	}
	d := time.Until(deadline)
	if d < 0 {
		d = 0
	}
	return time.AfterFunc(d, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
}

func expired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

func (b *buffer) closeWrite(err error) {
	b.mu.Lock()
	if b.eofErr == nil {
		b.eofErr = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) closeRead() {
	b.mu.Lock()
	b.rClosed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) abort(err error) {
	b.mu.Lock()
	b.aborted = true
	b.data = nil
	if b.eofErr == nil {
		b.eofErr = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
