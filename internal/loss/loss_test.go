package loss

import (
	"math"
	"testing"

	"repro/internal/asn"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/rng"
)

func testMatrix() *Matrix {
	return NewMatrix(rng.NewKey(42).Derive("loss"), Config{
		OriginFactor: map[origin.ID]float64{origin.AU: 3.0},
	})
}

func TestParamsDeterministic(t *testing.T) {
	m1, m2 := testMatrix(), testMatrix()
	for as := asn.ASN(1); as < 50; as++ {
		for trial := 0; trial < 3; trial++ {
			if m1.Params(origin.DE, as, trial) != m2.Params(origin.DE, as, trial) {
				t.Fatalf("params differ for AS%d trial %d", as, trial)
			}
		}
	}
}

func TestParamsPositiveAndBounded(t *testing.T) {
	m := testMatrix()
	for as := asn.ASN(1); as < 200; as++ {
		for _, o := range origin.StudySet() {
			p := m.Params(o, as, 0)
			if p.PacketDrop <= 0 || p.PacketDrop > 0.25 {
				t.Fatalf("PacketDrop %v out of range for %v AS%d", p.PacketDrop, o, as)
			}
			if p.EpisodeRate <= 0 || p.EpisodeRate > 0.95 {
				t.Fatalf("EpisodeRate %v out of range", p.EpisodeRate)
			}
		}
	}
}

func TestOriginFactorRaisesDrop(t *testing.T) {
	m := testMatrix()
	var au, de float64
	for as := asn.ASN(1); as < 300; as++ {
		au += m.Params(origin.AU, as, 0).PacketDrop
		de += m.Params(origin.DE, as, 0).PacketDrop
	}
	if au < 2*de {
		t.Errorf("AU mean drop %v should be ~3x DE %v", au/300, de/300)
	}
}

func TestOverridePinsPath(t *testing.T) {
	m := testMatrix()
	m.Override(origin.DE, 3269, Params{PacketDrop: 0.40})
	p := m.Params(origin.DE, 3269, 1)
	if p.PacketDrop != 0.40 {
		t.Errorf("override drop = %v", p.PacketDrop)
	}
	// Stable episode component follows the override.
	if p.EpisodeRate < 0.40*1.0 {
		t.Errorf("episode rate %v should include stable alpha component", p.EpisodeRate)
	}
	// Other origins unaffected.
	if q := m.Params(origin.BR, 3269, 1); q.PacketDrop > 0.05 {
		t.Errorf("override leaked to other origin: %v", q.PacketDrop)
	}
}

func TestQuietASesHaveIdenticalRates(t *testing.T) {
	// For quiet ASes (no volatile spread class), every origin must see an
	// identical volatile component, producing zero pairwise difference —
	// the left half of the paper's Figure 9 CDF.
	m := NewMatrix(rng.NewKey(7).Derive("loss"), Config{})
	quiet := 0
	for as := asn.ASN(1); as < 500; as++ {
		rates := map[float64]bool{}
		for _, o := range origin.StudySet() {
			p := m.Params(o, as, 0)
			// Isolate the volatile part; round away fp residue from
			// the stable-component subtraction.
			v := math.Round((p.EpisodeRate-1.0*p.PacketDrop)*1e9) / 1e9
			rates[v] = true
		}
		if len(rates) == 1 {
			quiet++
		}
	}
	if quiet < 150 || quiet > 350 {
		t.Errorf("quiet AS count %d/499, want roughly half", quiet)
	}
}

func TestVolatileComponentChangesAcrossTrials(t *testing.T) {
	m := testMatrix()
	changed := 0
	for as := asn.ASN(1); as < 200; as++ {
		p0 := m.Params(origin.JP, as, 0)
		p1 := m.Params(origin.JP, as, 1)
		if p0.EpisodeRate != p1.EpisodeRate {
			changed++
		}
	}
	if changed == 0 {
		t.Error("episode rates never change across trials")
	}
}

func TestTrialMultiplier(t *testing.T) {
	key := rng.NewKey(9).Derive("loss")
	base := NewMatrix(key, Config{})
	boosted := NewMatrix(key, Config{
		TrialMultiplier: map[origin.ID][]float64{origin.AU: {1, 4, 1}},
	})
	var sumBase, sumBoost float64
	for as := asn.ASN(1); as < 400; as++ {
		sumBase += base.Params(origin.AU, as, 1).EpisodeRate
		sumBoost += boosted.Params(origin.AU, as, 1).EpisodeRate
	}
	if sumBoost <= sumBase*1.5 {
		t.Errorf("trial multiplier had no effect: %v vs %v", sumBoost, sumBase)
	}
	// Other trials unaffected.
	if base.Params(origin.AU, 5, 0) != boosted.Params(origin.AU, 5, 0) {
		t.Error("multiplier leaked into other trials")
	}
}

func TestEpisodeCorrelation(t *testing.T) {
	// An episode must affect every packet of the host's window: the same
	// (origin, dst, trial) always yields the same answer.
	m := testMatrix()
	dst := ip.MustParseAddr("10.0.0.1")
	first := m.EpisodeActive(origin.AU, dst, 77, 2)
	for i := 0; i < 10; i++ {
		if m.EpisodeActive(origin.AU, dst, 77, 2) != first {
			t.Fatal("EpisodeActive not stable within a trial")
		}
	}
}

func TestEpisodeRateEmpirical(t *testing.T) {
	m := NewMatrix(rng.NewKey(11).Derive("loss"), Config{})
	const as = asn.ASN(123)
	p := m.Params(origin.US1, as, 0)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if m.EpisodeActive(origin.US1, ip.AddrFrom4(uint32(i)), as, 0) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p.EpisodeRate) > 0.01+p.EpisodeRate {
		t.Errorf("empirical episode rate %v vs params %v", got, p.EpisodeRate)
	}
}

func TestPacketLossPairCorrelation(t *testing.T) {
	// With the default PairCorrelation, most probe-pair losses lose both
	// packets — the paper's >93%-both-lost finding.
	m := NewMatrix(rng.NewKey(13).Derive("loss"), Config{BasePacketDrop: 0.05})
	const as = asn.ASN(9)
	p := m.Params(origin.US1, as, 0)
	var lost0, either, both int
	const n = 200000
	for i := 0; i < n; i++ {
		dst := ip.AddrFrom4(uint32(i))
		l0 := m.PacketLost(origin.US1, dst, as, 0, 0, 0)
		l1 := m.PacketLost(origin.US1, dst, as, 0, 1, 0)
		if l0 {
			lost0++
		}
		if l0 || l1 {
			either++
		}
		if l0 && l1 {
			both++
		}
	}
	// Marginal drop rate still ≈ PacketDrop (micro-burst + residual).
	p0 := float64(lost0) / n
	expected := p.PacketDrop*0.85 + p.PacketDrop*0.15
	if math.Abs(p0-expected) > 0.012 {
		t.Errorf("empirical drop %v vs expected %v", p0, expected)
	}
	// Correlation: both-lost dominates loss events.
	if either == 0 {
		t.Fatal("no losses at all")
	}
	if frac := float64(both) / float64(either); frac < 0.70 {
		t.Errorf("both-lost fraction %v, want strongly correlated", frac)
	}
}

func TestPacketLossZeroCorrelationIndependent(t *testing.T) {
	// PairCorrelation can be effectively disabled for ablations.
	m := NewMatrix(rng.NewKey(14).Derive("loss"), Config{BasePacketDrop: 0.05, PairCorrelation: 1e-9})
	const as = asn.ASN(9)
	var both, either int
	const n = 200000
	for i := 0; i < n; i++ {
		dst := ip.AddrFrom4(uint32(i))
		l0 := m.PacketLost(origin.US1, dst, as, 0, 0, 0)
		l1 := m.PacketLost(origin.US1, dst, as, 0, 1, 0)
		if l0 || l1 {
			either++
		}
		if l0 && l1 {
			both++
		}
	}
	if either == 0 {
		t.Fatal("no losses")
	}
	if frac := float64(both) / float64(either); frac > 0.15 {
		t.Errorf("independent losses should rarely coincide: %v", frac)
	}
}

func TestConnFailProbShape(t *testing.T) {
	// Connections retransmit, so moderate loss rarely kills them, while
	// catastrophic loss almost always does.
	if f := ConnFailProb(0.0); f != 0 {
		t.Errorf("ConnFailProb(0) = %v", f)
	}
	if f := ConnFailProb(0.16); f > 0.20 {
		t.Errorf("ConnFailProb(0.16) = %v, want modest (<0.20)", f)
	}
	if f := ConnFailProb(0.55); f < 0.70 {
		t.Errorf("ConnFailProb(0.55) = %v, want near-certain failure", f)
	}
	for q := 0.0; q < 1.0; q += 0.05 {
		if ConnFailProb(q) < 0 || ConnFailProb(q) > 1 {
			t.Fatalf("ConnFailProb(%v) out of [0,1]", q)
		}
		if q > 0 && ConnFailProb(q) < ConnFailProb(q-0.05) {
			t.Fatalf("ConnFailProb not monotone at %v", q)
		}
	}
}

func TestBadPrefixOverride(t *testing.T) {
	m := testMatrix()
	m.Override(origin.DE, 3269, Params{PacketDrop: 0.16, BadPrefixFrac: 0.38, BadDrop: 0.55})
	bad, good := 0, 0
	for i := 0; i < 2000; i++ {
		dst := ip.AddrFrom4(uint32(i) << 8) // distinct /24s
		q := m.DropFor(origin.DE, dst, 3269, 0)
		switch q {
		case 0.55:
			bad++
		case 0.16:
			good++
		default:
			t.Fatalf("unexpected drop %v", q)
		}
	}
	frac := float64(bad) / float64(bad+good)
	if math.Abs(frac-0.38) > 0.05 {
		t.Errorf("bad-prefix fraction %v, want ~0.38", frac)
	}
	// All hosts within one /24 share the fate.
	q1 := m.DropFor(origin.DE, ip.MustParseAddr("10.1.1.1"), 3269, 0)
	q2 := m.DropFor(origin.DE, ip.MustParseAddr("10.1.1.200"), 3269, 0)
	if q1 != q2 {
		t.Error("bad-prefix decision must be /24-level")
	}
	// Other origins see the default path.
	if q := m.DropFor(origin.BR, ip.MustParseAddr("10.1.1.1"), 3269, 0); q == 0.55 || q == 0.16 {
		t.Errorf("override leaked to BR: %v", q)
	}
}

func TestSiteAliasCorrelatesLoss(t *testing.T) {
	key := rng.NewKey(31).Derive("loss")
	aliased := NewMatrix(key, Config{SiteAlias: map[origin.ID]origin.ID{
		origin.HE: origin.HE, origin.NTTC: origin.HE, origin.TELIA: origin.HE,
	}})
	free := NewMatrix(key, Config{})
	var dAliased, dFree float64
	for as := asn.ASN(1); as < 400; as++ {
		a := aliased.Params(origin.HE, as, 0).EpisodeRate
		b := aliased.Params(origin.NTTC, as, 0).EpisodeRate
		dAliased += abs(a - b)
		c := free.Params(origin.HE, as, 0).EpisodeRate
		d := free.Params(origin.NTTC, as, 0).EpisodeRate
		dFree += abs(c - d)
	}
	if dAliased >= dFree {
		t.Errorf("site alias should correlate losses: aliased diff %v vs free %v", dAliased, dFree)
	}
	if dAliased == 0 {
		t.Error("aliased origins should still differ slightly")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestDelayedProbesEscapeMicroBursts(t *testing.T) {
	// Two probes in the same micro-burst window share fate; a probe
	// delayed past the window draws an independent burst — the paper's
	// §7 delayed-probe recommendation.
	m := NewMatrix(rng.NewKey(77).Derive("loss"), Config{BasePacketDrop: 0.10})
	const as = asn.ASN(4)
	var bothBack, bothDelay, eitherBack, eitherDelay int
	const n = 100000
	for i := 0; i < n; i++ {
		dst := ip.AddrFrom4(uint32(i))
		b0 := m.PacketLost(origin.US1, dst, as, 0, 0, 0)
		b1 := m.PacketLost(origin.US1, dst, as, 0, 1, 0)
		d1 := m.PacketLost(origin.US1, dst, as, 0, 1, 10*MicroBurstWindow)
		if b0 || b1 {
			eitherBack++
		}
		if b0 && b1 {
			bothBack++
		}
		if b0 || d1 {
			eitherDelay++
		}
		if b0 && d1 {
			bothDelay++
		}
	}
	fracBack := float64(bothBack) / float64(eitherBack)
	fracDelay := float64(bothDelay) / float64(eitherDelay)
	if fracBack < 2*fracDelay {
		t.Errorf("delayed probes should decorrelate loss: back-to-back %v vs delayed %v", fracBack, fracDelay)
	}
}
