// Package loss models packet loss on origin→destination paths.
//
// The paper's central finding about transient loss is that it is *not*
// uniform random packet drop: in >93% of cases where one ZMap probe is lost,
// the second back-to-back probe is lost too, and the follow-up application
// handshake fails as well. We therefore model two distinct processes per
// (origin, destination-AS) path:
//
//   - a per-packet independent drop probability ("PacketDrop"), which
//     produces the hosts that answer exactly one of two probes — the signal
//     the paper's §5.2 estimator measures — and which, when extreme (40%+ on
//     Germany→Telecom Italia paths), makes hosts effectively unreachable
//     long-term; and
//
//   - a correlated loss *episode* probability ("EpisodeRate"): short windows
//     in which every packet between the origin and the host is dropped, so
//     both probes and any retry are lost together. Episodes are the dominant
//     cause of transiently missed hosts.
//
// Episode rates have a stable component proportional to the path's packet
// drop (this creates the paper's consistently-worst origins, e.g. Australia
// to Russia/Kazakhstan, where drop is 10× the second-worst origin) and a
// volatile component redrawn every trial (this makes the best origin in one
// trial the worst in the next for ~23% of ASes, as the paper observes even
// for Amazon and Google).
package loss

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asn"
	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/rng"
)

// Params are the loss parameters of one (origin, AS, trial) path.
type Params struct {
	// PacketDrop is the independent one-way per-packet drop probability.
	PacketDrop float64
	// EpisodeRate is the probability that a given host's probe window
	// falls inside a full-loss episode.
	EpisodeRate float64
	// BadPrefixFrac marks a stable fraction of the AS's /24s whose
	// paths from this origin are pathologically lossy (BadDrop replaces
	// PacketDrop there). This models Germany's persistent lack of
	// connectivity to 36–46% of Telecom Italia (Sparkle): loss so high
	// that even retransmitting TCP rarely completes a handshake.
	BadPrefixFrac float64
	BadDrop       float64
}

// Config tunes the loss matrix. Zero values take defaults.
type Config struct {
	// BasePacketDrop is the median per-packet one-way drop probability
	// for an ordinary path (default 0.004).
	BasePacketDrop float64
	// PairCorrelation is the fraction of per-packet drop realized as
	// micro-bursts spanning a host's whole probe window (both
	// back-to-back probes and their responses), the remainder being
	// independent per packet. The paper finds that when one probe is
	// lost, the second is lost too in >93% of cases — consecutive
	// probes share fate. Default 0.85.
	PairCorrelation float64
	// OriginFactor scales packet drop per origin (default 1.0).
	// Australia, with the worst connectivity in the paper, gets >1.
	OriginFactor map[origin.ID]float64
	// StableAlpha is the stable episode component as a multiple of the
	// path's packet drop (default 2.0).
	StableAlpha float64
	// VolatileSpreadFrac is the fraction of ASes whose per-origin
	// transient loss is volatile and widely spread (default 0.20; the
	// paper finds loss-rate differences >10% for 16–25% of ASes).
	VolatileSpreadFrac float64
	// VolatileModerateFrac is the fraction of ASes with moderate
	// volatile spread (default 0.30). The remainder (~half of ASes) see
	// near-identical loss from all origins, matching Figure 9.
	VolatileModerateFrac float64
	// VolatileMax is the maximum volatile episode rate for high-spread
	// ASes (default 0.30).
	VolatileMax float64
	// TrialMultiplier scales the volatile episode component per
	// (origin, trial); models Australia's +275% HTTPS swing between
	// trials. Default 1.0.
	TrialMultiplier map[origin.ID][]float64
	// SiteAlias maps co-located origins to a shared site identity: most
	// of their volatile loss is drawn from the site key, so transient
	// losses correlate strongly — the paper's follow-up finds three
	// Tier-1 transits in one data center form the worst triad because
	// their paths converge.
	SiteAlias map[origin.ID]origin.ID
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.BasePacketDrop == 0 {
		out.BasePacketDrop = 0.004
	}
	if out.PairCorrelation == 0 {
		out.PairCorrelation = 0.85
	}
	if out.StableAlpha == 0 {
		out.StableAlpha = 1.0
	}
	if out.VolatileSpreadFrac == 0 {
		out.VolatileSpreadFrac = 0.18
	}
	if out.VolatileModerateFrac == 0 {
		out.VolatileModerateFrac = 0.30
	}
	if out.VolatileMax == 0 {
		out.VolatileMax = 0.30
	}
	return out
}

// Matrix derives loss parameters for every (origin, AS, trial) path from a
// key, with explicit overrides for the pathological paths the paper names.
// All methods are safe for concurrent use.
type Matrix struct {
	key rng.Key
	cfg Config

	// Derived sub-keys, computed once: Derive hashes its label string on
	// every call, and PacketLost alone needs four of these per packet.
	packetKey   rng.Key
	classKey    rng.Key
	volatileKey rng.Key
	badnetKey   rng.Key
	microKey    rng.Key
	pktKey      rng.Key
	episodeKey  rng.Key
	hsKey       rng.Key

	mu        sync.RWMutex
	overrides map[pairKey]Params

	// cache holds precomputed Params per (origin, AS) and trial — the
	// per-packet hot path reads it lock-free. Override invalidates it;
	// lookups outside the precomputed set fall back to derivation.
	cache atomic.Pointer[paramsCache]
}

type pairKey struct {
	o  origin.ID
	as asn.ASN
}

type paramsCache struct {
	trials int
	params map[pairKey][]Params // indexed by trial
}

// NewMatrix returns a loss matrix deriving from key with the given config.
func NewMatrix(key rng.Key, cfg Config) *Matrix {
	return &Matrix{
		key:         key,
		cfg:         cfg.withDefaults(),
		packetKey:   key.Derive("packet"),
		classKey:    key.Derive("class"),
		volatileKey: key.Derive("volatile"),
		badnetKey:   key.Derive("badnet"),
		microKey:    key.Derive("micro"),
		pktKey:      key.Derive("pkt"),
		episodeKey:  key.Derive("episode"),
		hsKey:       key.Derive("hs"),
		overrides:   make(map[pairKey]Params),
	}
}

// Override pins the stable parameters of one path, e.g. Germany→Telecom
// Italia at 40% packet drop. Overridden paths still receive the volatile
// per-trial episode component.
func (m *Matrix) Override(o origin.ID, as asn.ASN, p Params) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.overrides[pairKey{o, as}] = p
	m.cache.Store(nil)
}

// Precompute derives and caches Params for every (origin, AS) pair and
// trial in [0, trials), so the per-packet hot path never takes the override
// lock or re-derives parameters. Call after all Overrides are installed;
// a later Override invalidates the cache.
func (m *Matrix) Precompute(origins []origin.ID, ases []asn.ASN, trials int) {
	c := &paramsCache{
		trials: trials,
		params: make(map[pairKey][]Params, len(origins)*len(ases)),
	}
	for _, o := range origins {
		for _, as := range ases {
			ps := make([]Params, trials)
			for trial := 0; trial < trials; trial++ {
				ps[trial] = m.deriveParams(o, as, trial)
			}
			c.params[pairKey{o, as}] = ps
		}
	}
	m.cache.Store(c)
}

// originFactor returns the per-origin packet-drop scale.
func (m *Matrix) originFactor(o origin.ID) float64 {
	if f, ok := m.cfg.OriginFactor[o]; ok {
		return f
	}
	return 1.0
}

func (m *Matrix) trialMultiplier(o origin.ID, trial int) float64 {
	if ms, ok := m.cfg.TrialMultiplier[o]; ok && trial >= 0 && trial < len(ms) && ms[trial] > 0 {
		return ms[trial]
	}
	return 1.0
}

// Params returns the loss parameters of the (origin, AS) path in a trial.
func (m *Matrix) Params(o origin.ID, as asn.ASN, trial int) Params {
	if c := m.cache.Load(); c != nil && trial >= 0 && trial < c.trials {
		if ps, ok := c.params[pairKey{o, as}]; ok {
			return ps[trial]
		}
	}
	return m.deriveParams(o, as, trial)
}

// deriveParams computes Params from scratch (the Precompute cache holds its
// results; the derivation itself is unchanged by caching).
func (m *Matrix) deriveParams(o origin.ID, as asn.ASN, trial int) Params {
	m.mu.RLock()
	ov, hasOverride := m.overrides[pairKey{o, as}]
	m.mu.RUnlock()

	var p Params
	if hasOverride {
		p = ov
	} else {
		// Stable per-path packet drop: lognormal-ish around the base,
		// scaled by the origin's connectivity factor.
		u := m.packetKey.Float64(uint64(o), uint64(as))
		// Map u through a heavy-ish tail: most paths near base, a few
		// paths several times worse.
		mult := 0.25 + 4*u*u*u
		p.PacketDrop = m.cfg.BasePacketDrop * mult * m.originFactor(o)
		if p.PacketDrop > 0.20 {
			p.PacketDrop = 0.20
		}
	}

	// Episode rate: stable component + volatile per-trial component.
	p.EpisodeRate += m.cfg.StableAlpha * p.PacketDrop
	p.EpisodeRate += m.volatileEpisode(o, as, trial) * m.trialMultiplier(o, trial)
	if p.EpisodeRate > 0.95 {
		p.EpisodeRate = 0.95
	}
	return p
}

// volatileEpisode draws the per-trial volatile episode component. The AS's
// spread class is stable; the per-origin rate within the class is redrawn
// each trial.
func (m *Matrix) volatileEpisode(o origin.ID, as asn.ASN, trial int) float64 {
	u := m.classKey.Float64(uint64(as))
	rateKey := m.volatileKey
	draw := rateKey.Float64(uint64(o), uint64(as), uint64(trial))
	if site, ok := m.cfg.SiteAlias[o]; ok {
		// Co-located origins share most of their volatile loss.
		siteDraw := rateKey.Float64(uint64(site)+1000, uint64(as), uint64(trial))
		draw = 0.85*siteDraw + 0.15*draw
	}
	switch {
	case u < m.cfg.VolatileSpreadFrac:
		// High-spread AS: a minority of origins see large episode
		// rates this trial; most see little. The fifth power
		// concentrates mass near zero with a heavy tail.
		d2 := draw * draw
		return m.cfg.VolatileMax * d2 * d2 * draw
	case u < m.cfg.VolatileSpreadFrac+m.cfg.VolatileModerateFrac:
		// Moderate-spread AS.
		return 0.015 * draw * draw
	default:
		// Quiet AS: all origins see the same negligible rate
		// (keyed only by AS and trial, not origin, so pairwise
		// differences are exactly zero — the left half of Fig 9).
		return 0.002 * rateKey.Float64(uint64(as), uint64(trial), 7)
	}
}

// DropFor returns the effective per-packet drop probability for a specific
// destination, accounting for pathological /24 subsets.
func (m *Matrix) DropFor(o origin.ID, dst ip.Addr, as asn.ASN, trial int) float64 {
	p := m.Params(o, as, trial)
	if p.BadPrefixFrac > 0 {
		s24 := dst.Slash24()
		if m.badnetKey.Bool(p.BadPrefixFrac, uint64(o), s24.Base.Word64()) {
			return p.BadDrop
		}
	}
	return p.PacketDrop
}

// MicroBurstWindow is the duration of a correlated micro-burst: packets to
// the same host within one window share fate. Back-to-back ZMap probes land
// in the same window; probes delayed beyond it draw independently — which
// is why the paper (§7, citing Bano et al.) recommends delaying the time
// between probes to the same host.
const MicroBurstWindow = 30 * time.Second

// alias returns the origin's loss-sharing site identity (itself unless
// co-located with others).
func (m *Matrix) alias(o origin.ID) origin.ID {
	if site, ok := m.cfg.SiteAlias[o]; ok {
		return site
	}
	return o
}

// PacketLost reports whether one specific packet is dropped, keyed by the
// full event coordinates (direction/sequence discriminator included by the
// caller via pktIdx; t locates the packet's micro-burst window). This
// applies to unretransmitted packets: ZMap probes and their responses. A
// PairCorrelation share of the drop probability is realized as micro-bursts
// covering whole windows, so consecutive probes are usually lost together.
// Micro-bursts are keyed by the origin's site: co-located origins share the
// paths that carry the burst.
func (m *Matrix) PacketLost(o origin.ID, dst ip.Addr, as asn.ASN, trial int, pktIdx uint64, t time.Duration) bool {
	q := m.DropFor(o, dst, as, trial)
	c := m.cfg.PairCorrelation
	window := uint64(t / MicroBurstWindow)
	if m.microKey.Bool(q*c, uint64(m.alias(o))+siteKeyOffset, dst.Word64(), uint64(trial), window) {
		return true
	}
	return m.pktKey.Bool(q*(1-c), uint64(o), dst.Word64(), uint64(trial), pktIdx)
}

// siteKeyOffset separates site-keyed draws from origin-keyed draws so a
// non-aliased origin's two loss components stay independent.
const siteKeyOffset = 4096

// EpisodeActive reports whether the (origin → dst) path is inside a
// full-loss episode during this host's probe window. The draw is keyed per
// host and trial: both probes and the follow-up connection share the window,
// which is what makes loss correlated. Most of the episode mass is keyed by
// the origin's site, so co-located origins miss largely the same hosts —
// the paper's follow-up finds the co-located Tier-1 triad recovers the
// least coverage of any three origins.
func (m *Matrix) EpisodeActive(o origin.ID, dst ip.Addr, as asn.ASN, trial int) bool {
	p := m.Params(o, as, trial)
	if m.episodeKey.Bool(p.EpisodeRate*0.85, uint64(m.alias(o))+siteKeyOffset, dst.Word64(), uint64(trial)) {
		return true
	}
	return m.episodeKey.Bool(p.EpisodeRate*0.15, uint64(o), dst.Word64(), uint64(trial))
}

// ConnFailProb returns the probability a full TCP connection plus
// application handshake fails under per-packet drop q. Unlike raw probes,
// connections retransmit: the kernel retries the SYN (~3 times within a
// grab timeout) and TCP retransmits lost segments, so moderate uniform loss
// (≤20%) rarely kills a handshake — which is why the paper's lossy
// Telecom Italia paths mostly show up as ZMap probe loss (transient), while
// only the catastrophic Germany paths (40%+) become long-term inaccessible.
//
//	failSYN  = (1-(1-q)²)³   — three SYN attempts, each a round trip
//	failData = (1-(1-q)²)²   — banner exchange with one retransmission
func ConnFailProb(q float64) float64 {
	rt := 1 - (1-q)*(1-q) // round-trip loss probability
	failSYN := rt * rt * rt
	failData := rt * rt
	return 1 - (1-failSYN)*(1-failData)
}

// HandshakeFailed reports whether a connection attempt fails due to
// per-packet loss (distinct from episodes), keyed per attempt so retries
// draw independently.
func (m *Matrix) HandshakeFailed(o origin.ID, dst ip.Addr, as asn.ASN, trial int, attempt int) bool {
	q := m.DropFor(o, dst, as, trial)
	return m.hsKey.Bool(ConnFailProb(q), uint64(o), dst.Word64(), uint64(trial), uint64(attempt))
}
