package asn

import (
	"testing"

	"repro/internal/ip"
)

func mkAS(n ASN, name string, prefixes ...string) *AS {
	a := &AS{Number: n, Name: name, Country: "US", Kind: KindHosting}
	for _, p := range prefixes {
		a.Prefixes = append(a.Prefixes, ip.MustParsePrefix(p))
	}
	return a
}

func TestTableRegisterLookup(t *testing.T) {
	tab := NewTable()
	if err := tab.Register(mkAS(100, "Alpha", "10.0.0.0/16", "10.2.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Register(mkAS(200, "Beta", "10.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	a, ok := tab.Lookup(ip.MustParseAddr("10.2.99.1"))
	if !ok || a.Number != 100 {
		t.Errorf("Lookup = %v,%v", a, ok)
	}
	b, ok := tab.Lookup(ip.MustParseAddr("10.1.0.1"))
	if !ok || b.Number != 200 {
		t.Errorf("Lookup = %v,%v", b, ok)
	}
	if _, ok := tab.Lookup(ip.MustParseAddr("11.0.0.1")); ok {
		t.Error("Lookup found unannounced space")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTableRejectsDuplicates(t *testing.T) {
	tab := NewTable()
	if err := tab.Register(mkAS(100, "Alpha", "10.0.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Register(mkAS(100, "AlphaAgain", "11.0.0.0/16")); err == nil {
		t.Error("Register accepted duplicate ASN")
	}
	if err := tab.Register(mkAS(300, "Nested", "10.0.5.0/24")); err == nil {
		t.Error("Register accepted overlapping prefix")
	}
}

func TestTableGetAndAll(t *testing.T) {
	tab := NewTable()
	for _, n := range []ASN{300, 100, 200} {
		if err := tab.Register(mkAS(n, "X", ip.MakePrefix(ip.MakeAddr(byte(n/100), 0, 0, 0), 16).String())); err != nil {
			t.Fatal(err)
		}
	}
	if a, ok := tab.Get(200); !ok || a.Number != 200 {
		t.Errorf("Get(200) = %v,%v", a, ok)
	}
	if _, ok := tab.Get(999); ok {
		t.Error("Get(999) found missing AS")
	}
	all := tab.All()
	if len(all) != 3 || all[0].Number != 100 || all[2].Number != 300 {
		t.Errorf("All() = %v", all)
	}
}

func TestASNumAddrs(t *testing.T) {
	a := mkAS(1, "A", "10.0.0.0/24", "10.1.0.0/23")
	if got := a.NumAddrs(); got != 256+512 {
		t.Errorf("NumAddrs = %d", got)
	}
}

func TestKindString(t *testing.T) {
	if KindHosting.String() != "hosting" || KindFinancial.String() != "financial" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind should still format")
	}
}
