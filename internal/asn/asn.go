// Package asn provides the autonomous-system registry and the announced-
// prefix routing table. The paper snapshots a routing table from the U.S.
// origin at the start of each trial to map destination IPs to origin ASes;
// Table here plays that role via longest-prefix match.
package asn

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/ip"
)

// ASN is an autonomous system number.
type ASN uint32

// Kind categorizes an AS; the paper's blocking analysis distinguishes
// hosting providers, ISPs, CDNs, cloud, government, and enterprise
// (financial/health/media) networks.
type Kind uint8

const (
	KindHosting Kind = iota
	KindISP
	KindCloud
	KindCDN
	KindAcademic
	KindGovernment
	KindFinancial
	KindHealthcare
	KindMedia
	KindConsumer
	KindUtility
)

var kindNames = [...]string{
	"hosting", "isp", "cloud", "cdn", "academic", "government",
	"financial", "healthcare", "media", "consumer", "utility",
}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// AS describes one autonomous system in the world.
type AS struct {
	Number   ASN
	Name     string
	Country  geo.Country
	Kind     Kind
	Prefixes []ip.Prefix
}

// NumAddrs returns the total announced address space of the AS.
func (a *AS) NumAddrs() uint64 {
	var n uint64
	for _, p := range a.Prefixes {
		n += p.NumAddrs()
	}
	return n
}

// Table is a routing-table snapshot: announced prefixes mapped to origin AS.
type Table struct {
	byNumber map[ASN]*AS
	ordered  []*AS
	routes   *ip.RadixTree[ASN]
}

// NewTable returns an empty routing table.
func NewTable() *Table {
	return &Table{
		byNumber: make(map[ASN]*AS),
		routes:   ip.NewRadixTree[ASN](),
	}
}

// Register adds an AS and announces its prefixes. Registering the same ASN
// twice or announcing an overlapping more-general route is an error: the
// synthetic world allocates disjoint prefixes, so overlap means a generator
// bug.
func (t *Table) Register(a *AS) error {
	if _, dup := t.byNumber[a.Number]; dup {
		return fmt.Errorf("asn: duplicate AS%d", a.Number)
	}
	for _, p := range a.Prefixes {
		if owner, ok := t.routes.Lookup(p.First()); ok {
			return fmt.Errorf("asn: AS%d prefix %v overlaps AS%d", a.Number, p, owner)
		}
	}
	t.byNumber[a.Number] = a
	t.ordered = append(t.ordered, a)
	for _, p := range a.Prefixes {
		t.routes.Insert(p, a.Number)
	}
	return nil
}

// Lookup returns the origin AS for an address.
func (t *Table) Lookup(a ip.Addr) (*AS, bool) {
	n, ok := t.routes.Lookup(a)
	if !ok {
		return nil, false
	}
	return t.byNumber[n], true
}

// Get returns the AS with the given number.
func (t *Table) Get(n ASN) (*AS, bool) {
	a, ok := t.byNumber[n]
	return a, ok
}

// All returns every registered AS sorted by number.
func (t *Table) All() []*AS {
	out := make([]*AS, len(t.ordered))
	copy(out, t.ordered)
	sort.Slice(out, func(i, j int) bool { return out[i].Number < out[j].Number })
	return out
}

// Len returns the number of registered ASes.
func (t *Table) Len() int { return len(t.byNumber) }
