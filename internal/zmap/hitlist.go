package zmap

import (
	"repro/internal/ip"
)

// HitlistIterator walks an explicit target list in the permutation's
// pseudorandom order: the scan strategy for address spaces where a full
// sweep is meaningless (IPv6's 2^128), implementing the same batched
// iterator seam the space sweep drives. The permutation is built over the
// list length (NewPermutationN), so every list entry is visited exactly
// once, order is seed-determined, and sharding/position-recovery work
// unchanged — a shard's walk values are list indices instead of v4
// addresses.
type HitlistIterator struct {
	it   *Iterator
	list []ip.Addr
}

// IterateHitlist returns an iterator over list in this permutation's walk
// order. The permutation's space must equal len(list) (NewPermutationN
// over the list length); the list is not copied.
func (pm *Permutation) IterateHitlist(list []ip.Addr) *HitlistIterator {
	if pm.space != uint64(len(list)) {
		panic("zmap: hitlist length does not match permutation space")
	}
	return &HitlistIterator{it: pm.Iterate(), list: list}
}

// NextBatch fills dsts with the next targets of the walk and returns how
// many it wrote (0 when exhausted). idxs is caller-owned scratch of the
// same length receiving the raw list indices.
func (h *HitlistIterator) NextBatch(dsts []ip.Addr, idxs []uint64) int {
	n := h.it.NextBatch64(idxs[:len(dsts)])
	for i := 0; i < n; i++ {
		dsts[i] = h.list[idxs[i]]
	}
	return n
}

// NextIndexedBatch is NextBatch also recording each target's element index
// within this shard's walk in elems — what sharded hitlist scans use to
// recover serial scan positions, exactly as the space sweep does.
func (h *HitlistIterator) NextIndexedBatch(dsts []ip.Addr, idxs, elems []uint64) int {
	n := h.it.NextIndexedBatch64(idxs[:len(dsts)], elems[:len(dsts)])
	for i := 0; i < n; i++ {
		dsts[i] = h.list[idxs[i]]
	}
	return n
}
