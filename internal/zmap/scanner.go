package zmap

import (
	"fmt"
	"time"

	"repro/internal/ip"
	"repro/internal/packet"
	"repro/internal/rng"
)

// PacketSink is the transport the scanner sends probes through. The
// simulation fabric implements it; a raw-socket implementation would attach
// at the same seam for scans of real networks. The simulated network is
// instantaneous, so Send synchronously returns the response packet bytes
// elicited by the probe (nil when the probe or its response was dropped).
type PacketSink interface {
	Send(src ip.Addr, pkt []byte, t time.Duration) []byte
}

// Config configures one scan.
type Config struct {
	// SourceIPs are the scanner's source addresses; probes rotate over
	// them by target (US64 scans with a /26, everyone else with one).
	SourceIPs []ip.Addr
	// SourcePortBase is the first source port; probe i of a target uses
	// SourcePortBase+i so responses attribute to the probe that
	// elicited them (ZMap uses its source-port range the same way).
	SourcePortBase uint16
	// TargetPort is the scanned TCP port.
	TargetPort uint16
	// Probes is the number of SYNs per target (the paper sends 2).
	Probes int
	// ProbeDelay spaces the probes to one target apart in time instead
	// of sending them back-to-back; the paper's §7 recommends this
	// (after Bano et al.) because consecutive probes share loss fate.
	ProbeDelay time.Duration
	// SpaceBits sizes the scanned address space (2^SpaceBits addresses).
	SpaceBits uint8
	// Seed drives the permutation and validation cookies. Synchronized
	// scans share the seed so all origins probe the same target at the
	// same scan position.
	Seed uint64
	// Shard / Shards split the scan across processes.
	Shard, Shards int
	// ScanDuration is the virtual wall-clock length of the scan; target
	// k is probed at k/targets × ScanDuration, modelling a constant
	// probe rate (the paper scans at 100Kpps for ~21 hours).
	ScanDuration time.Duration
	// Blocklist addresses are never probed (the paper excludes 17.8M
	// addresses by request); Allowlist, when non-nil, restricts the scan
	// to its prefixes.
	Blocklist *ip.Set
	Allowlist *ip.Set
}

func (c *Config) validate() error {
	if len(c.SourceIPs) == 0 {
		return fmt.Errorf("zmap: no source IPs")
	}
	if c.Probes <= 0 {
		return fmt.Errorf("zmap: probes must be positive")
	}
	if c.ScanDuration <= 0 {
		return fmt.Errorf("zmap: scan duration must be positive")
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.SourcePortBase == 0 {
		c.SourcePortBase = 40000
	}
	return nil
}

// Reply is one validated response from a live host.
type Reply struct {
	Dst ip.Addr
	// ProbeMask has bit i set when probe i elicited a valid SYN-ACK.
	ProbeMask uint8
	// RST is true when the host answered with RST (port closed or
	// administratively refused) instead of SYN-ACK.
	RST bool
	// T is the virtual time the host was probed.
	T time.Duration
}

// Stats summarizes a completed scan.
type Stats struct {
	Targets    uint64 // addresses probed (after lists)
	Blocked    uint64 // addresses skipped by blocklist/allowlist
	ProbesSent uint64
	SynAcks    uint64 // valid SYN-ACK packets received
	Rsts       uint64 // valid RST packets received
	Invalid    uint64 // responses failing cookie/port validation
	Duplicates uint64 // extra SYN-ACKs beyond the first per target
}

// Scanner performs one scan per Run call.
type Scanner struct {
	cfg  Config
	perm *Permutation
	key  rng.Key
}

// NewScanner validates the config and prepares the permutation.
func NewScanner(cfg Config) (*Scanner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	key := rng.NewKey(cfg.Seed).Derive("zmap")
	perm, err := NewPermutation(key, cfg.SpaceBits, cfg.Shard, cfg.Shards)
	if err != nil {
		return nil, err
	}
	return &Scanner{cfg: cfg, perm: perm, key: key}, nil
}

// cookie computes the validation value embedded in the probe's sequence
// number: a keyed hash of the flow 4-tuple, so responses can be validated
// statelessly (ZMap's core trick).
func (s *Scanner) cookie(src, dst ip.Addr, srcPort uint16) uint32 {
	return uint32(rng.SipHash24Words(s.key.Derive("validate").Sip(),
		uint64(src)<<32|uint64(dst), uint64(srcPort)<<16|uint64(s.cfg.TargetPort)))
}

// srcFor picks the source IP for a target (round-robin by address, so a
// 64-IP origin spreads load evenly and each IP touches 1/64 of targets).
func (s *Scanner) srcFor(dst ip.Addr) ip.Addr {
	return s.cfg.SourceIPs[uint32(dst)%uint32(len(s.cfg.SourceIPs))]
}

// Run executes the scan against sink, invoking handler for every target
// that sent at least one valid response. Probes for one target are sent
// back-to-back, as ZMap does; the virtual clock advances linearly with scan
// position.
func (s *Scanner) Run(sink PacketSink, handler func(Reply)) Stats {
	var st Stats
	it := s.perm.Iterate()
	totalTargets := s.perm.Space()
	var position uint64

	for {
		a, ok := it.Next()
		if !ok {
			break
		}
		position++
		dst := ip.Addr(a)
		if s.cfg.Allowlist != nil && !s.cfg.Allowlist.Contains(dst) {
			st.Blocked++
			continue
		}
		if s.cfg.Blocklist != nil && s.cfg.Blocklist.Contains(dst) {
			st.Blocked++
			continue
		}
		st.Targets++
		t := time.Duration(float64(position) / float64(totalTargets) * float64(s.cfg.ScanDuration))
		src := s.srcFor(dst)

		var reply Reply
		reply.Dst = dst
		reply.T = t
		for probe := 0; probe < s.cfg.Probes; probe++ {
			srcPort := s.cfg.SourcePortBase + uint16(probe)
			seq := s.cookie(src, dst, srcPort)
			syn := packet.MakeSYN(src, dst, srcPort, s.cfg.TargetPort, seq, uint16(probe))
			st.ProbesSent++
			resp := sink.Send(src, syn, t+time.Duration(probe)*s.cfg.ProbeDelay)
			if resp == nil {
				continue
			}
			ok, rst := s.validate(resp, src, dst, srcPort, seq)
			if !ok {
				st.Invalid++
				continue
			}
			if rst {
				st.Rsts++
				reply.RST = true
				continue
			}
			st.SynAcks++
			if reply.ProbeMask != 0 {
				st.Duplicates++
			}
			reply.ProbeMask |= 1 << probe
		}
		if reply.ProbeMask != 0 || reply.RST {
			handler(reply)
		}
	}
	return st
}

// validate checks a response packet against the probe's cookie, exactly as
// ZMap validates: correct 4-tuple and ack == seq+1 for SYN-ACKs; RSTs may
// ack either seq+0 or seq+1 (stacks differ).
func (s *Scanner) validate(resp []byte, src, dst ip.Addr, srcPort uint16, seq uint32) (ok, rst bool) {
	iph, tcph, _, err := packet.DecodeTCP4(resp)
	if err != nil {
		return false, false
	}
	if iph.Src != dst || iph.Dst != src {
		return false, false
	}
	if tcph.SrcPort != s.cfg.TargetPort || tcph.DstPort != srcPort {
		return false, false
	}
	if tcph.HasFlag(packet.FlagRST) {
		if tcph.Ack != seq && tcph.Ack != seq+1 {
			return false, false
		}
		return true, true
	}
	if !tcph.HasFlag(packet.FlagSYN | packet.FlagACK) {
		return false, false
	}
	if tcph.Ack != seq+1 {
		return false, false
	}
	return true, false
}
