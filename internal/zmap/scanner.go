package zmap

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/ip"
	"repro/internal/origin"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// sweepBatch is how many scan positions a sweep advances between context
// checks. Cancellation therefore lands within one batch per goroutine: a
// canceled sweep stops after at most sweepBatch further targets instead of
// walking the rest of the address space. The check is a pure read, so an
// uncancelled sweep emits a bit-identical schedule.
const sweepBatch = 4096

// PacketSink is the transport the scanner sends probes through. The
// simulation fabric implements it; a raw-socket implementation would attach
// at the same seam for scans of real networks. The simulated network is
// instantaneous, so Send synchronously returns the response packet bytes
// elicited by the probe (nil when the probe or its response was dropped).
//
// The probe buffer is reused between Send calls: pkt is only valid for the
// duration of the call, and implementations that keep packet bytes (pcap
// tees) must copy them. When a scan runs sharded (RunSharded), Send is
// called from multiple goroutines concurrently and implementations must be
// safe for concurrent use.
type PacketSink interface {
	Send(src ip.Addr, pkt []byte, t time.Duration) []byte
}

// Routability is an optional PacketSink capability: a sink that knows the
// announced address space ahead of time (the simulation fabric's sparse
// FIB; a real deployment's routing-table snapshot) exposes it so the sweep
// can skip the SYN encode and Send round trip for destinations that can
// never answer. The scanner still counts the skipped probes in Stats and
// telemetry exactly as if they had been sent and lost into the void, so
// statistics, metrics, and loss accounting are identical with or without
// the short-circuit. Routed must be safe for concurrent use and must agree
// with Send: an address reported unrouted must be one Send answers with
// silence before any observable side effect (IDS counting, pcap capture).
// Wrapper sinks that need to observe every probe (the pcap tee) simply do
// not implement Routability.
type Routability interface {
	Routed(dst ip.Addr) bool
}

// BatchRoutability is the batch form of Routability: fill routed[i] with
// Routed(dst[i]) for a whole sweep batch in one call, letting the sink reuse
// lookup state across consecutive addresses (the FIB keeps its last block
// decode hot). len(routed) == len(dst); both slices are caller-owned and
// only valid for the duration of the call. Implementations must be safe for
// concurrent use and must agree with Routed answer-for-answer — the sweep
// treats the two as interchangeable.
type BatchRoutability interface {
	RoutedBatch(dst []ip.Addr, routed []bool)
}

// Config configures one scan.
type Config struct {
	// SourceIPs are the scanner's source addresses; probes rotate over
	// them by target (US64 scans with a /26, everyone else with one).
	SourceIPs []ip.Addr
	// SourcePortBase is the first source port; probe i of a target uses
	// SourcePortBase+i so responses attribute to the probe that
	// elicited them (ZMap uses its source-port range the same way).
	SourcePortBase uint16
	// TargetPort is the scanned TCP port.
	TargetPort uint16
	// Probes is the number of SYNs per target (the paper sends 2).
	Probes int
	// ProbeDelay spaces the probes to one target apart in time instead
	// of sending them back-to-back; the paper's §7 recommends this
	// (after Bano et al.) because consecutive probes share loss fate.
	ProbeDelay time.Duration
	// SpaceBits sizes the scanned address space (2^SpaceBits addresses).
	// Ignored when Hitlist is set.
	SpaceBits uint8
	// Hitlist, when non-empty, switches the scan from a space sweep to a
	// hitlist scan: the targets are exactly the listed addresses (any
	// family), visited in a seed-determined permuted order, with the
	// virtual clock spread over the list instead of the space. This is
	// the IPv6 scan strategy — a 2^128 permutation sweep is meaningless,
	// so v6 scanning is driven by externally gathered target lists. The
	// slice is not copied; callers must not modify it during the scan.
	Hitlist []ip.Addr
	// Seed drives the permutation and validation cookies. Synchronized
	// scans share the seed so all origins probe the same target at the
	// same scan position.
	Seed uint64
	// Shard / Shards split the scan across processes.
	Shard, Shards int
	// ScanDuration is the virtual wall-clock length of the scan; target
	// k is probed at k/targets × ScanDuration, modelling a constant
	// probe rate (the paper scans at 100Kpps for ~21 hours).
	ScanDuration time.Duration
	// Blocklist addresses are never probed (the paper excludes 17.8M
	// addresses by request); Allowlist, when non-nil, restricts the scan
	// to its prefixes.
	Blocklist *ip.Set
	Allowlist *ip.Set
	// ExpectedReplies sizes reply buffers up front (0 = no hint).
	ExpectedReplies int
	// Telemetry, when set, receives live sweep counters. The sweep
	// accumulates into its private Stats as always and flushes deltas
	// into these counters once per sweepBatch positions (and once at
	// sweep end), so the per-probe hot path is unchanged and a nil
	// bundle costs one pointer check per batch. Counters are atomic:
	// sharded sweeps flush concurrently into the same bundle.
	Telemetry *telemetry.SweepMetrics
}

func (c *Config) validate() error {
	if len(c.SourceIPs) == 0 {
		return pipeline.Tag(pipeline.ErrBadConfig, fmt.Errorf("zmap: no source IPs"))
	}
	if c.Probes <= 0 {
		return pipeline.Tag(pipeline.ErrBadConfig, fmt.Errorf("zmap: probes must be positive"))
	}
	if c.ScanDuration <= 0 {
		return pipeline.Tag(pipeline.ErrBadConfig, fmt.Errorf("zmap: scan duration must be positive"))
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.SourcePortBase == 0 {
		c.SourcePortBase = 40000
	}
	return nil
}

// Reply is one validated response from a live host.
type Reply struct {
	Dst ip.Addr
	// ProbeMask has bit i set when probe i elicited a valid SYN-ACK.
	ProbeMask uint8
	// RST is true when the host answered with RST (port closed or
	// administratively refused) instead of SYN-ACK.
	RST bool
	// T is the virtual time the host was probed.
	T time.Duration
}

// Stats summarizes a completed scan.
type Stats struct {
	Targets    uint64 // addresses probed (after lists)
	Blocked    uint64 // addresses skipped by blocklist/allowlist
	ProbesSent uint64
	SynAcks    uint64 // valid SYN-ACK packets received
	Rsts       uint64 // valid RST packets received
	Invalid    uint64 // responses failing cookie/port validation
	Duplicates uint64 // extra SYN-ACKs beyond the first per target
}

// statsFlusher pushes Stats deltas into a scan's telemetry counters at
// sweep-batch granularity. Each sweep goroutine owns one flusher (the
// `last` snapshot is goroutine-local); the counters themselves are atomic,
// so concurrent shard flushes into one SweepMetrics bundle are safe. A nil
// flusher or bundle is a no-op, keeping the disabled-telemetry sweep free
// of per-event work.
type statsFlusher struct {
	m    *telemetry.SweepMetrics
	last Stats
}

// flush publishes the counters accumulated since the previous flush.
func (f *statsFlusher) flush(st *Stats) {
	if f == nil || f.m == nil {
		return
	}
	m, d := f.m, *st
	m.Targets.Add(d.Targets - f.last.Targets)
	m.Blocked.Add(d.Blocked - f.last.Blocked)
	m.ProbesSent.Add(d.ProbesSent - f.last.ProbesSent)
	m.SynAcks.Add(d.SynAcks - f.last.SynAcks)
	m.Rsts.Add(d.Rsts - f.last.Rsts)
	m.Invalid.Add(d.Invalid - f.last.Invalid)
	m.Duplicates.Add(d.Duplicates - f.last.Duplicates)
	// A probe whose response never arrived is the scanner-visible loss
	// class: sent minus every validated or invalid response.
	lost := d.ProbesSent - d.SynAcks - d.Rsts - d.Invalid
	lastLost := f.last.ProbesSent - f.last.SynAcks - f.last.Rsts - f.last.Invalid
	m.Lost.Add(lost - lastLost)
	f.last = d
}

// add accumulates another shard's counters.
func (s *Stats) add(o Stats) {
	s.Targets += o.Targets
	s.Blocked += o.Blocked
	s.ProbesSent += o.ProbesSent
	s.SynAcks += o.SynAcks
	s.Rsts += o.Rsts
	s.Invalid += o.Invalid
	s.Duplicates += o.Duplicates
}

// Scanner performs one scan per Run call.
type Scanner struct {
	cfg      Config
	perm     *Permutation
	hitlist  []ip.Addr // non-nil for hitlist scans
	key      rng.Key
	validate rng.SipKey // cookie key, derived once (hot path)
	trace    *telemetry.Span
}

// SetTraceSpan attaches the sweep-stage trace span the next Run/RunSharded
// reports into: per-batch "sweep_batch" exemplars become its children
// (bounded sampling) and the sweep's target/unrouted totals its
// attributes. A nil span (tracing off) keeps the sweep untraced at the
// cost of nil checks at batch granularity. Not safe to call mid-Run.
func (s *Scanner) SetTraceSpan(sp *telemetry.Span) { s.trace = sp }

// NewScanner validates the config and prepares the permutation.
func NewScanner(cfg Config) (*Scanner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	key := rng.NewKey(cfg.Seed).Derive("zmap")
	var perm *Permutation
	var err error
	if len(cfg.Hitlist) > 0 {
		perm, err = NewPermutationN(key, uint64(len(cfg.Hitlist)), cfg.Shard, cfg.Shards)
	} else {
		perm, err = NewPermutation(key, cfg.SpaceBits, cfg.Shard, cfg.Shards)
	}
	if err != nil {
		return nil, err
	}
	return &Scanner{cfg: cfg, perm: perm, hitlist: cfg.Hitlist, key: key,
		validate: key.Derive("validate").Sip()}, nil
}

// cookie computes the validation value embedded in the probe's sequence
// number: a keyed hash of the flow 4-tuple, so responses can be validated
// statelessly (ZMap's core trick).
func (s *Scanner) cookie(src, dst ip.Addr, srcPort uint16) uint32 {
	if dst.Is4() {
		// The v4 flow word is the historical layout; changing it would
		// change every probe's sequence number and break byte-identity.
		return uint32(rng.SipHash24Words(s.validate,
			uint64(src.V4())<<32|uint64(dst.V4()), uint64(srcPort)<<16|uint64(s.cfg.TargetPort)))
	}
	return uint32(rng.SipHash24Words(s.validate,
		src.Hi()^dst.Lo(), src.Lo()^dst.Hi(), dst.Lo(),
		uint64(srcPort)<<16|uint64(s.cfg.TargetPort)))
}

// srcFor picks the source IP for a target.
func (s *Scanner) srcFor(dst ip.Addr) ip.Addr {
	return origin.SourceFor(s.cfg.SourceIPs, dst)
}

// emitTarget applies the allow/blocklists and the virtual clock for the
// address at the given 1-based scan position, invoking emit for targets
// that will be probed. This is the reference definition of the scan
// schedule — one address, one position, one decision. The batched
// filterBatch must agree with it answer-for-answer (the differential tests
// replay sweeps through this function), and the virtual-clock expression
// here and in filterBatch must stay textually identical: float64 rounding
// is part of the schedule's bit-identity contract.
func (s *Scanner) emitTarget(a uint32, position uint64, st *Stats, emit func(ip.Addr, time.Duration)) {
	dst := ip.AddrFrom4(a)
	if s.cfg.Allowlist != nil && !s.cfg.Allowlist.Contains(dst) {
		st.Blocked++
		return
	}
	if s.cfg.Blocklist != nil && s.cfg.Blocklist.Contains(dst) {
		st.Blocked++
		return
	}
	st.Targets++
	t := time.Duration(float64(position) / float64(s.perm.Space()) * float64(s.cfg.ScanDuration))
	emit(dst, t)
}

// sweepKernel is the caller-owned batch state for one sweep goroutine: the
// permutation fills addrs (and, sharded, elems), filterBatch compacts the
// surviving targets into dsts/times via pos, and the routability pass fills
// routed. One kernel is a single ~130 KiB allocation reused for the whole
// sweep, so the per-address cost is array writes — no per-batch allocation,
// no interface calls inside the batch.
type sweepKernel struct {
	idxs   [sweepBatch]uint64
	raw    [sweepBatch]ip.Addr
	addrs  [sweepBatch]uint32
	elems  [sweepBatch]uint64
	pos    [sweepBatch]uint64
	dsts   [sweepBatch]ip.Addr
	times  [sweepBatch]time.Duration
	routed [sweepBatch]bool
}

// filterBatch is emitTarget over a batch: it applies the allow/blocklists
// to addrs, assigns each survivor its virtual probe time from the 1-based
// scan position in pos, and compacts survivors into k.dsts/k.times,
// returning how many survived. The list checks, counter updates, and clock
// expression are exactly emitTarget's, just unrolled across the batch so
// the Set lookups and float math run without closure dispatch per address.
func (s *Scanner) filterBatch(addrs []uint32, pos []uint64, st *Stats, k *sweepKernel) int {
	allow, block := s.cfg.Allowlist, s.cfg.Blocklist
	space, dur := float64(s.perm.Space()), float64(s.cfg.ScanDuration)
	kept := 0
	for i, a := range addrs {
		dst := ip.AddrFrom4(a)
		if allow != nil && !allow.Contains(dst) {
			st.Blocked++
			continue
		}
		if block != nil && block.Contains(dst) {
			st.Blocked++
			continue
		}
		st.Targets++
		k.dsts[kept] = dst
		k.times[kept] = time.Duration(float64(pos[i]) / space * dur)
		kept++
	}
	return kept
}

// filterAddrBatch is filterBatch over targets that are already full
// addresses — the hitlist path, where the iterator hands out list entries
// instead of v4 space offsets. Checks, counters, and the virtual-clock
// expression are exactly filterBatch's; for a hitlist scan perm.Space() is
// the list length, so the clock spreads the scan over the list.
func (s *Scanner) filterAddrBatch(dsts []ip.Addr, pos []uint64, st *Stats, k *sweepKernel) int {
	allow, block := s.cfg.Allowlist, s.cfg.Blocklist
	space, dur := float64(s.perm.Space()), float64(s.cfg.ScanDuration)
	kept := 0
	for i, dst := range dsts {
		if allow != nil && !allow.Contains(dst) {
			st.Blocked++
			continue
		}
		if block != nil && block.Contains(dst) {
			st.Blocked++
			continue
		}
		st.Targets++
		k.dsts[kept] = dst
		k.times[kept] = time.Duration(float64(pos[i]) / space * dur)
		kept++
	}
	return kept
}

// routedBatch fills k.routed for the first kept destinations from whatever
// routability the sink offers: the batch interface when available, the
// per-address one otherwise, all-routed when the sink has neither.
func routedBatch(brt BatchRoutability, rt Routability, k *sweepKernel, kept int) {
	switch {
	case brt != nil:
		brt.RoutedBatch(k.dsts[:kept], k.routed[:kept])
	case rt != nil:
		for i := 0; i < kept; i++ {
			k.routed[i] = rt.Routed(k.dsts[i])
		}
	default:
		for i := 0; i < kept; i++ {
			k.routed[i] = true
		}
	}
}

// sweep walks this scanner's whole shard through the batched kernel,
// invoking emit once per batch with the compacted targets and probe times.
// The permutation walk, context check, and telemetry flush all amortize to
// once per sweepBatch addresses; a canceled sweep returns
// pipeline.ErrCanceled with the walk stopped at a batch boundary — the same
// boundaries the old per-address loop checked at, so cancellation is
// observably identical.
func (s *Scanner) sweep(ctx context.Context, st *Stats, fl *statsFlusher, k *sweepKernel, emit func(dsts []ip.Addr, times []time.Duration)) error {
	if s.hitlist != nil {
		return s.sweepHitlist(ctx, st, fl, k, emit)
	}
	it := s.perm.Iterate()
	var position uint64
	for {
		if err := ctx.Err(); err != nil {
			fl.flush(st)
			return pipeline.Canceled(err)
		}
		fl.flush(st)
		n := it.NextBatch(k.addrs[:])
		if n == 0 {
			fl.flush(st)
			return nil
		}
		for i := 0; i < n; i++ {
			k.pos[i] = position + uint64(i) + 1
		}
		position += uint64(n)
		if kept := s.filterBatch(k.addrs[:n], k.pos[:n], st, k); kept > 0 {
			emit(k.dsts[:kept], k.times[:kept])
		}
		if n < sweepBatch {
			// Partial batch: the walk is exhausted. The per-address loop
			// only re-checked ctx at exact sweepBatch boundaries, so finish
			// without another check to keep cancellation bit-identical.
			fl.flush(st)
			return nil
		}
	}
}

// sweepHitlist is sweep over a hitlist: identical batching, positions,
// cancellation, and telemetry cadence, with the permutation walking list
// indices instead of space offsets.
func (s *Scanner) sweepHitlist(ctx context.Context, st *Stats, fl *statsFlusher, k *sweepKernel, emit func(dsts []ip.Addr, times []time.Duration)) error {
	it := s.perm.IterateHitlist(s.hitlist)
	var position uint64
	for {
		if err := ctx.Err(); err != nil {
			fl.flush(st)
			return pipeline.Canceled(err)
		}
		fl.flush(st)
		n := it.NextBatch(k.raw[:], k.idxs[:])
		if n == 0 {
			fl.flush(st)
			return nil
		}
		for i := 0; i < n; i++ {
			k.pos[i] = position + uint64(i) + 1
		}
		position += uint64(n)
		if kept := s.filterAddrBatch(k.raw[:n], k.pos[:n], st, k); kept > 0 {
			emit(k.dsts[:kept], k.times[:kept])
		}
		if n < sweepBatch {
			fl.flush(st)
			return nil
		}
	}
}

// Targets invokes fn for every address the scan will probe, in scan order,
// with its base virtual probe time — the scan's schedule without sending a
// packet. The deterministic parallel engine uses this to precompute IDS
// detection points before scans of the same seed run concurrently.
func (s *Scanner) Targets(ctx context.Context, fn func(dst ip.Addr, t time.Duration)) error {
	var st Stats
	k := new(sweepKernel)
	return s.sweep(ctx, &st, nil, k, func(dsts []ip.Addr, times []time.Duration) {
		for i := range dsts {
			fn(dsts[i], times[i])
		}
	})
}

// probeTarget sends the configured probes for one target, validates the
// responses, and reports the target's reply. synBuf is reused across calls
// to keep the per-probe hot path allocation-free. Routedness is evaluated
// per batch before this runs; callers count unrouted targets as
// sent-and-lost without calling it.
func (s *Scanner) probeTarget(sink PacketSink, dst ip.Addr, t time.Duration, st *Stats, synBuf *[]byte) (Reply, bool) {
	reply := Reply{Dst: dst, T: t}
	src := s.srcFor(dst)
	for probe := 0; probe < s.cfg.Probes; probe++ {
		srcPort := s.cfg.SourcePortBase + uint16(probe)
		seq := s.cookie(src, dst, srcPort)
		*synBuf = packet.MakeSYNInto(*synBuf, src, dst, srcPort, s.cfg.TargetPort, seq, uint16(probe))
		st.ProbesSent++
		resp := sink.Send(src, *synBuf, t+time.Duration(probe)*s.cfg.ProbeDelay)
		if resp == nil {
			continue
		}
		ok, rst := s.validateResp(resp, src, dst, srcPort, seq)
		if !ok {
			st.Invalid++
			continue
		}
		if rst {
			st.Rsts++
			reply.RST = true
			continue
		}
		st.SynAcks++
		if reply.ProbeMask != 0 {
			st.Duplicates++
		}
		reply.ProbeMask |= 1 << probe
	}
	return reply, reply.ProbeMask != 0 || reply.RST
}

// Run executes the scan against sink, invoking handler for every target
// that sent at least one valid response. Probes for one target are sent
// back-to-back, as ZMap does; the virtual clock advances linearly with scan
// position. Cancelling ctx stops the sweep within one batch; the returned
// statistics then cover only the probes actually sent, and the error
// matches pipeline.ErrCanceled.
func (s *Scanner) Run(ctx context.Context, sink PacketSink, handler func(Reply)) (Stats, error) {
	var st Stats
	var synBuf []byte
	var fl *statsFlusher
	if s.cfg.Telemetry != nil {
		fl = &statsFlusher{m: s.cfg.Telemetry}
	}
	rt, _ := sink.(Routability)
	brt, _ := sink.(BatchRoutability)
	k := new(sweepKernel)
	probes := uint64(s.cfg.Probes)
	var unrouted uint64
	bt := s.trace.ChildTracer("sweep_batch")
	err := s.sweep(ctx, &st, fl, k, func(dsts []ip.Addr, times []time.Duration) {
		bt.Begin()
		routedBatch(brt, rt, k, len(dsts))
		var u uint64
		for i := range dsts {
			if !k.routed[i] {
				// Unrouted space: count the probes as sent and lost
				// without the encode/Send round trip — exactly what
				// sending them would have produced.
				st.ProbesSent += probes
				u++
				continue
			}
			if r, ok := s.probeTarget(sink, dsts[i], times[i], &st, &synBuf); ok {
				handler(r)
			}
		}
		if u > 0 {
			unrouted += u
			if s.cfg.Telemetry != nil {
				s.cfg.Telemetry.Unrouted.Add(u)
			}
		}
		bt.End(telemetry.A("targets", int64(len(dsts))), telemetry.A("unrouted", int64(u)))
	})
	if s.trace != nil {
		s.trace.SetAttr("targets", int64(st.Targets))
		s.trace.SetAttr("unrouted", int64(unrouted))
	}
	return st, err
}

// RunSharded executes the scan as n concurrent goroutine shards over
// disjoint slices of the permutation, then merges the shards' statistics
// and replies deterministically. Each address receives the same probe time
// (and therefore the same loss, outage, and IDS treatment) as under Run:
// sub-shard j of n walks the cosets g^(shard + shards·j) with stride
// g^(shards·n), and each element's serial scan position is recovered from
// its walk index and the permutation's out-of-space skip table. handler is
// invoked sequentially, in the serial scan's emission order.
//
// Cancellation lands within one sweep batch per shard: each shard checks
// ctx every sweepBatch walk positions and stops; the merged handler pass is
// skipped and the error matches pipeline.ErrCanceled.
func (s *Scanner) RunSharded(ctx context.Context, sink PacketSink, handler func(Reply), n int) (Stats, error) {
	if n <= 1 {
		return s.Run(ctx, sink, handler)
	}
	skips := s.perm.SkipIndices()
	subs := make([]*Permutation, n)
	for j := range subs {
		sub, err := NewPermutationN(s.key, s.perm.Space(), s.cfg.Shard+s.cfg.Shards*j, s.cfg.Shards*n)
		if err != nil {
			return Stats{}, fmt.Errorf("zmap: sub-shard %d/%d: %w", j, n, err)
		}
		subs[j] = sub
	}
	type shardOut struct {
		st       Stats
		unrouted uint64
		replies  []Reply
	}
	outs := make([]shardOut, n)
	hint := s.cfg.ExpectedReplies/n + 64
	rt, _ := sink.(Routability)
	brt, _ := sink.(BatchRoutability)
	probes := uint64(s.cfg.Probes)
	var wg sync.WaitGroup
	for j := range subs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			o := &outs[j]
			o.replies = make([]Reply, 0, hint)
			var synBuf []byte
			var fl *statsFlusher
			if s.cfg.Telemetry != nil {
				// Per-shard flusher: the delta snapshot is goroutine-local,
				// the destination counters are atomic and shared.
				fl = &statsFlusher{m: s.cfg.Telemetry}
				defer func() { fl.flush(&o.st) }()
			}
			// Per-shard exemplar tracer (single-goroutine state, like the
			// flusher); the shard label keeps shard timelines apart.
			bt := s.trace.ChildTracer("sweep_batch", telemetry.L("shard", strconv.Itoa(j)))
			k := new(sweepKernel)
			it := subs[j].Iterate()
			var hit *HitlistIterator
			if s.hitlist != nil {
				hit = subs[j].IterateHitlist(s.hitlist)
			}
			// Parent walk indices increase strictly within a sub-shard, so
			// a linear cursor into the sorted skip table replaces the
			// per-address binary search of skipsBefore.
			skipCur := uint64(0)
			for {
				if ctx.Err() != nil {
					return
				}
				fl.flush(&o.st)
				var bn int
				if hit != nil {
					bn = hit.NextIndexedBatch(k.raw[:], k.idxs[:], k.elems[:])
				} else {
					bn = it.NextIndexedBatch(k.addrs[:], k.elems[:])
				}
				if bn == 0 {
					return
				}
				for i := 0; i < bn; i++ {
					// The element's index in the parent (unsplit) walk, and
					// from it the serial scan position: elements before it
					// minus those the serial walk would have skipped.
					parent := uint64(j) + uint64(n)*k.elems[i]
					for skipCur < uint64(len(skips)) && skips[skipCur] < parent {
						skipCur++
					}
					k.pos[i] = parent + 1 - skipCur
				}
				var kept int
				if hit != nil {
					kept = s.filterAddrBatch(k.raw[:bn], k.pos[:bn], &o.st, k)
				} else {
					kept = s.filterBatch(k.addrs[:bn], k.pos[:bn], &o.st, k)
				}
				bt.Begin()
				routedBatch(brt, rt, k, kept)
				var u uint64
				for i := 0; i < kept; i++ {
					if !k.routed[i] {
						o.st.ProbesSent += probes
						u++
						continue
					}
					if r, ok := s.probeTarget(sink, k.dsts[i], k.times[i], &o.st, &synBuf); ok {
						o.replies = append(o.replies, r)
					}
				}
				if u > 0 {
					o.unrouted += u
					if s.cfg.Telemetry != nil {
						s.cfg.Telemetry.Unrouted.Add(u)
					}
				}
				bt.End(telemetry.A("targets", int64(kept)), telemetry.A("unrouted", int64(u)))
				if bn < sweepBatch {
					// Partial batch: walk exhausted; match the per-address
					// loop, which only re-checked ctx at exact boundaries.
					return
				}
			}
		}(j)
	}
	wg.Wait()

	var st Stats
	total := 0
	var unrouted uint64
	for i := range outs {
		st.add(outs[i].st)
		unrouted += outs[i].unrouted
		total += len(outs[i].replies)
	}
	if s.trace != nil {
		s.trace.SetAttr("targets", int64(st.Targets))
		s.trace.SetAttr("unrouted", int64(unrouted))
		s.trace.SetAttr("shards", int64(n))
	}
	if err := ctx.Err(); err != nil {
		// The shards stopped at different positions; a partial merge would
		// not reproduce any serial prefix, so the canceled sweep reports
		// its statistics but hands the caller no replies.
		return st, pipeline.Canceled(err)
	}
	merged := make([]Reply, 0, total)
	for i := range outs {
		merged = append(merged, outs[i].replies...)
	}
	// Probe times increase strictly with scan position, so sorting by
	// (T, Dst) reproduces the serial emission order exactly.
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].T != merged[j].T {
			return merged[i].T < merged[j].T
		}
		return merged[i].Dst.Less(merged[j].Dst)
	})
	for _, r := range merged {
		handler(r)
	}
	return st, nil
}

// validateResp checks a response packet against the probe's cookie, exactly
// as ZMap validates: correct 4-tuple and ack == seq+1 for SYN-ACKs; RSTs
// may ack either seq+0 or seq+1 (stacks differ).
func (s *Scanner) validateResp(resp []byte, src, dst ip.Addr, srcPort uint16, seq uint32) (ok, rst bool) {
	if !dst.Is4() {
		return s.validateResp6(resp, src, dst, srcPort, seq)
	}
	iph, tcph, _, err := packet.DecodeTCP4(resp)
	if err != nil {
		return false, false
	}
	if iph.Src != dst || iph.Dst != src {
		return false, false
	}
	if tcph.SrcPort != s.cfg.TargetPort || tcph.DstPort != srcPort {
		return false, false
	}
	if tcph.HasFlag(packet.FlagRST) {
		if tcph.Ack != seq && tcph.Ack != seq+1 {
			return false, false
		}
		return true, true
	}
	if !tcph.HasFlag(packet.FlagSYN | packet.FlagACK) {
		return false, false
	}
	if tcph.Ack != seq+1 {
		return false, false
	}
	return true, false
}

// validateResp6 is validateResp for IPv6 probes: stack-decoded headers (the
// zero-alloc v6 decode path), then the same flow and cookie checks.
func (s *Scanner) validateResp6(resp []byte, src, dst ip.Addr, srcPort uint16, seq uint32) (ok, rst bool) {
	var iph packet.IPv6Header
	var tcph packet.TCPHeader
	if _, err := packet.DecodeTCP6Into(&iph, &tcph, resp); err != nil {
		return false, false
	}
	if iph.Src != dst || iph.Dst != src {
		return false, false
	}
	if tcph.SrcPort != s.cfg.TargetPort || tcph.DstPort != srcPort {
		return false, false
	}
	if tcph.HasFlag(packet.FlagRST) {
		if tcph.Ack != seq && tcph.Ack != seq+1 {
			return false, false
		}
		return true, true
	}
	if !tcph.HasFlag(packet.FlagSYN | packet.FlagACK) {
		return false, false
	}
	if tcph.Ack != seq+1 {
		return false, false
	}
	return true, false
}
