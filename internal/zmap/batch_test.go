package zmap

// Batched-vs-serial differential tests: the sweep kernel batches the
// permutation walk, list filtering, routability, and probe evaluation, and
// these tests pin its observable output — Stats, the reply stream, and
// cancellation behavior — byte-identical to a per-address reference that
// replays the pre-batching loop through emitTarget. CI runs them under
// -race (the fullspace job); they are the contract that lets the kernel
// change freely without moving the scan schedule.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/pipeline"
)

// referenceRun replays the pre-batching serial sweep: one address at a
// time through emitTarget, per-address Routability short-circuit, context
// checked at sweepBatch position boundaries. This is the semantics the
// batched kernel must reproduce exactly.
func referenceRun(ctx context.Context, s *Scanner, sink PacketSink, handler func(Reply)) (Stats, error) {
	var st Stats
	var synBuf []byte
	rt, _ := sink.(Routability)
	probe := func(dst ip.Addr, t time.Duration) {
		if rt != nil && !rt.Routed(dst) {
			st.ProbesSent += uint64(s.cfg.Probes)
			return
		}
		if r, ok := s.probeTarget(sink, dst, t, &st, &synBuf); ok {
			handler(r)
		}
	}
	it := s.perm.Iterate()
	var position uint64
	for {
		if position%sweepBatch == 0 {
			if err := ctx.Err(); err != nil {
				return st, pipeline.Canceled(err)
			}
		}
		a, ok := it.Next()
		if !ok {
			return st, nil
		}
		position++
		s.emitTarget(a, position, &st, probe)
	}
}

// batchDiffConfigs returns the sweep configurations the differential tests
// cover: plain, list-filtered, and a space large enough for several full
// batches plus a partial one.
func batchDiffConfigs() map[string]Config {
	plain := testConfig()

	listed := testConfig()
	al := ip.NewSet()
	al.Add(ip.MakePrefix(ip.AddrFrom4(0), 23)) // allow first two /24s...
	listed.Allowlist = al
	bl := ip.NewSet()
	bl.Add(ip.MakePrefix(ip.AddrFrom4(256), 25)) // ...but block half of the second
	listed.Blocklist = bl

	multi := testConfig()
	multi.SpaceBits = 14 // 4 full batches + skip-tail
	multi.ProbeDelay = time.Second

	return map[string]Config{"plain": plain, "listed": listed, "multibatch": multi}
}

func diffSink() *routedSink {
	return &routedSink{
		fakeSink: fakeSink{
			live:      map[ip.Addr]bool{a4(5): true, a4(100): true, a4(300): true, a4(700): true},
			closed:    map[ip.Addr]bool{a4(7): true},
			garbage:   map[ip.Addr]bool{a4(9): true},
			dropProbe: map[ip.Addr]uint8{a4(100): 1 << 1},
		},
		limit: a4(768), // upper quarter of the 2^10 space unrouted
	}
}

func compareRuns(t *testing.T, name string, stGot, stWant Stats, repGot, repWant []Reply) {
	t.Helper()
	if stGot != stWant {
		t.Errorf("%s: stats %+v, reference %+v", name, stGot, stWant)
	}
	if len(repGot) != len(repWant) {
		t.Fatalf("%s: %d replies, reference %d", name, len(repGot), len(repWant))
	}
	for i := range repGot {
		if repGot[i] != repWant[i] {
			t.Errorf("%s: reply %d = %+v, reference %+v", name, i, repGot[i], repWant[i])
		}
	}
}

func TestSweepBatchedMatchesSerialReference(t *testing.T) {
	for name, cfg := range batchDiffConfigs() {
		s, err := NewScanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var repRef []Reply
		stRef, err := referenceRun(context.Background(), s, diffSink(), func(r Reply) { repRef = append(repRef, r) })
		if err != nil {
			t.Fatal(err)
		}
		var repGot []Reply
		stGot, err := s.Run(context.Background(), diffSink(), func(r Reply) { repGot = append(repGot, r) })
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, name, stGot, stRef, repGot, repRef)
	}
}

// TestShardedBatchedMatchesSerialReference runs the batched RunSharded at
// several shard counts against the per-address serial reference: identical
// merged statistics and an identical, identically-ordered reply stream.
func TestShardedBatchedMatchesSerialReference(t *testing.T) {
	for name, cfg := range batchDiffConfigs() {
		s, err := NewScanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The concurrency-safe sharded sink answers SYN-ACKs for live hosts
		// only (no closed/garbage/drop modes), so the serial reference runs
		// against an equivalently-behaving single-goroutine sink.
		refSink := &routedSink{fakeSink: fakeSink{live: diffSink().live}, limit: a4(768)}
		var repRef []Reply
		stRef, err := referenceRun(context.Background(), s, refSink, func(r Reply) { repRef = append(repRef, r) })
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 4, 7} {
			sink := &shardedRoutedSink{live: diffSink().live, limit: a4(768)}
			var repGot []Reply
			stGot, err := s.RunSharded(context.Background(), sink, func(r Reply) { repGot = append(repGot, r) }, n)
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, name, stGot, stRef, repGot, repRef)
		}
	}
}

// cancelingCtx cancels itself after the sink has sent a given number of
// probes, so cancellation lands mid-sweep deterministically.
type cancelingSink struct {
	inner  PacketSink
	cancel context.CancelFunc
	after  int
	sent   int
}

func (c *cancelingSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	c.sent++
	if c.sent == c.after {
		c.cancel()
	}
	return c.inner.Send(src, pkt, t)
}

// TestCancelBatchedMatchesSerialReference cancels mid-sweep after a fixed
// probe count and checks the batched path stops at exactly the boundary the
// per-address loop stopped at: same error class, same Stats, same reply
// prefix. The batch boundaries ARE the old context-check boundaries, so a
// cancellation is observed at the identical point.
func TestCancelBatchedMatchesSerialReference(t *testing.T) {
	cfg := testConfig()
	cfg.SpaceBits = 13
	for _, after := range []int{1, 100, 5000} {
		run := func(exec func(ctx context.Context, s *Scanner, sink PacketSink, h func(Reply)) (Stats, error)) (Stats, []Reply, error) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			sink := &cancelingSink{inner: diffSink(), cancel: cancel, after: after}
			s, err := NewScanner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var replies []Reply
			st, err := exec(ctx, s, sink, func(r Reply) { replies = append(replies, r) })
			return st, replies, err
		}
		stRef, repRef, errRef := run(referenceRun)
		stGot, repGot, errGot := run(func(ctx context.Context, s *Scanner, sink PacketSink, h func(Reply)) (Stats, error) {
			return s.Run(ctx, sink, h)
		})
		if !errorsMatch(errRef, errGot) {
			t.Fatalf("after %d: reference err %v, batched err %v", after, errRef, errGot)
		}
		compareRuns(t, "cancel", stGot, stRef, repGot, repRef)
	}
}

func errorsMatch(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return errors.Is(a, pipeline.ErrCanceled) == errors.Is(b, pipeline.ErrCanceled)
}
