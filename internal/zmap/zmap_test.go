package zmap

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/packet"
	"repro/internal/pipeline"
	"repro/internal/rng"
)

// a4 abbreviates v4 test addresses.
func a4(v uint32) ip.Addr { return ip.AddrFrom4(v) }

func TestPermutationCoversSpaceExactlyOnce(t *testing.T) {
	key := rng.NewKey(42)
	pm, err := NewPermutation(key, 12, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 1<<12)
	it := pm.Iterate()
	count := 0
	for {
		a, ok := it.Next()
		if !ok {
			break
		}
		if seen[a] {
			t.Fatalf("address %d visited twice", a)
		}
		seen[a] = true
		count++
	}
	if count != 1<<12 {
		t.Fatalf("visited %d of %d addresses", count, 1<<12)
	}
}

func TestPermutationShardsPartitionSpace(t *testing.T) {
	key := rng.NewKey(7)
	const shards = 5
	seen := make(map[uint32]int)
	for s := 0; s < shards; s++ {
		pm, err := NewPermutation(key, 10, s, shards)
		if err != nil {
			t.Fatal(err)
		}
		it := pm.Iterate()
		for {
			a, ok := it.Next()
			if !ok {
				break
			}
			seen[a]++
		}
	}
	if len(seen) != 1<<10 {
		t.Fatalf("shards covered %d of %d addresses", len(seen), 1<<10)
	}
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("address %d visited %d times across shards", a, n)
		}
	}
}

func TestPermutationDeterministicAndSeedSensitive(t *testing.T) {
	collect := func(seed uint64) []uint32 {
		pm, err := NewPermutation(rng.NewKey(seed), 8, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		var out []uint32
		it := pm.Iterate()
		for {
			a, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, a)
		}
		return out
	}
	a, b, c := collect(1), collect(1), collect(2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced the same order")
	}
}

// TestPermutationNextBatchMatchesNext pins the batched walk to the serial
// one: for every shard of several shard counts, NextBatch (at an awkward
// batch size that never divides the shard length evenly) and
// NextIndexedBatch must emit byte-for-byte the sequence repeated
// Next/NextIndexed calls produce, including the final partial batch, and
// the element indices must agree with SkipIndices position recovery.
func TestPermutationNextBatchMatchesNext(t *testing.T) {
	key := rng.NewKey(11)
	for _, shards := range []int{1, 3, 7} {
		for shard := 0; shard < shards; shard++ {
			pm, err := NewPermutation(key, 10, shard, shards)
			if err != nil {
				t.Fatal(err)
			}
			var wantAddrs []uint32
			var wantElems []uint64
			it := pm.Iterate()
			for {
				a, e, ok := it.NextIndexed()
				if !ok {
					break
				}
				wantAddrs = append(wantAddrs, a)
				wantElems = append(wantElems, e)
			}

			const batch = 37 // awkward size: forces a partial final batch
			var gotAddrs []uint32
			buf := make([]uint32, batch)
			it = pm.Iterate()
			for {
				n := it.NextBatch(buf)
				if n == 0 {
					break
				}
				gotAddrs = append(gotAddrs, buf[:n]...)
			}
			if len(gotAddrs) != len(wantAddrs) {
				t.Fatalf("shard %d/%d: NextBatch emitted %d addrs, Next emitted %d",
					shard, shards, len(gotAddrs), len(wantAddrs))
			}
			for i := range gotAddrs {
				if gotAddrs[i] != wantAddrs[i] {
					t.Fatalf("shard %d/%d: NextBatch addr[%d] = %d, Next = %d",
						shard, shards, i, gotAddrs[i], wantAddrs[i])
				}
			}

			var gotAddrs2 []uint32
			var gotElems []uint64
			elems := make([]uint64, batch)
			it = pm.Iterate()
			for {
				n := it.NextIndexedBatch(buf, elems)
				if n == 0 {
					break
				}
				gotAddrs2 = append(gotAddrs2, buf[:n]...)
				gotElems = append(gotElems, elems[:n]...)
			}
			if len(gotElems) != len(wantElems) {
				t.Fatalf("shard %d/%d: NextIndexedBatch emitted %d, want %d",
					shard, shards, len(gotElems), len(wantElems))
			}
			skips := pm.SkipIndices()
			for i := range gotElems {
				if gotAddrs2[i] != wantAddrs[i] || gotElems[i] != wantElems[i] {
					t.Fatalf("shard %d/%d: NextIndexedBatch[%d] = (%d, %d), want (%d, %d)",
						shard, shards, i, gotAddrs2[i], gotElems[i], wantAddrs[i], wantElems[i])
				}
				// Position recovery: the in-space ordinal of this element is
				// its walk index minus the skips before it — for a full walk
				// that ordinal is exactly i.
				if shards == 1 {
					pos := gotElems[i] - skipsBefore(skips, gotElems[i])
					if pos != uint64(i) {
						t.Fatalf("elem %d: recovered position %d, want %d", gotElems[i], pos, i)
					}
				}
			}
		}
	}
}

// TestPermutationBatchResumable checks a batch walk interrupted and resumed
// with differently-sized buffers still matches the serial sequence: the
// iterator state the batch persists must be exact, not merely
// batch-boundary-aligned.
func TestPermutationBatchResumable(t *testing.T) {
	pm, err := NewPermutation(rng.NewKey(5), 9, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want []uint32
	it := pm.Iterate()
	for {
		a, ok := it.Next()
		if !ok {
			break
		}
		want = append(want, a)
	}
	var got []uint32
	it = pm.Iterate()
	sizes := []int{1, 5, 64, 2, 511, 3}
	for i := 0; ; i++ {
		buf := make([]uint32, sizes[i%len(sizes)])
		n := it.NextBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed batches emitted %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("addr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPermutationOrderIsScattered(t *testing.T) {
	// The order must not be sequential: adjacent emissions should rarely
	// be adjacent addresses (that is the whole point of the group walk).
	pm, err := NewPermutation(rng.NewKey(3), 14, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	it := pm.Iterate()
	prev, _ := it.Next()
	adjacent := 0
	total := 0
	for {
		a, ok := it.Next()
		if !ok {
			break
		}
		total++
		d := int64(a) - int64(prev)
		if d == 1 || d == -1 {
			adjacent++
		}
		prev = a
	}
	if adjacent > total/100 {
		t.Errorf("%d/%d adjacent emissions: order not scattered", adjacent, total)
	}
}

func TestPermutationModulusIsPrime(t *testing.T) {
	pm, err := NewPermutation(rng.NewKey(1), 16, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !isPrime(pm.Modulus()) {
		t.Fatalf("modulus %d not prime", pm.Modulus())
	}
	if pm.Modulus() <= pm.Space() {
		t.Fatalf("modulus %d must exceed space %d", pm.Modulus(), pm.Space())
	}
}

func TestPermutationBadArgs(t *testing.T) {
	if _, err := NewPermutation(rng.NewKey(1), 0, 0, 1); err == nil {
		t.Error("space 0 accepted")
	}
	if _, err := NewPermutation(rng.NewKey(1), 33, 0, 1); err == nil {
		t.Error("space 33 accepted")
	}
	if _, err := NewPermutation(rng.NewKey(1), 8, 1, 1); err == nil {
		t.Error("shard >= shards accepted")
	}
	if _, err := NewPermutation(rng.NewKey(1), 8, -1, 2); err == nil {
		t.Error("negative shard accepted")
	}
}

func TestMathHelpers(t *testing.T) {
	if mulmod(1<<40, 1<<40, 1000003) != mulmodNaive(1<<40, 1<<40, 1000003) {
		t.Error("mulmod wrong on large operands")
	}
	if mulmodPow(3, 0, 17) != 1 || mulmodPow(3, 4, 17) != 81%17 {
		t.Error("mulmodPow wrong")
	}
	if nextPrime(90) != 97 || nextPrime(97) != 97 || nextPrime(2) != 2 {
		t.Error("nextPrime wrong")
	}
	fs := factorize(360)
	want := []uint64{2, 3, 5}
	if len(fs) != 3 || fs[0] != want[0] || fs[1] != want[1] || fs[2] != want[2] {
		t.Errorf("factorize(360) = %v", fs)
	}
}

// mulmodNaive is an independent reference: schoolbook 32-bit-limb multiply
// plus bit-by-bit long division, sharing no code path with the production
// bits.Mul64/bits.Div64/Shoup implementations it checks.
func mulmodNaive(a, b, m uint64) uint64 {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo := t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += aHi * bHi
	rem := uint64(0)
	for i := 127; i >= 0; i-- {
		rem <<= 1
		var bit uint64
		if i >= 64 {
			bit = (hi >> uint(i-64)) & 1
		} else {
			bit = (lo >> uint(i)) & 1
		}
		rem |= bit
		if rem >= m {
			rem -= m
		}
	}
	return rem
}

// TestMulmodShoup checks the division-free fixed-multiplier path against
// the naive reference across moduli bracketing the SpaceBits=32 prime.
func TestMulmodShoup(t *testing.T) {
	moduli := []uint64{3, 17, 1000003, 1<<32 + 15, 1<<62 - 57}
	str := rng.NewKey(7).Derive("shouptest").Stream(0)
	for _, m := range moduli {
		for i := 0; i < 200; i++ {
			a := str.Uint64n(m)
			b := str.Uint64n(m)
			got := mulmodShoup(a, b, shoupFactor(b, m), m)
			if want := mulmodNaive(a, b, m); got != want {
				t.Fatalf("mulmodShoup(%d, %d, %d) = %d, want %d", a, b, m, got, want)
			}
		}
	}
}

// fakeSink answers SYNs for a configured set of live hosts, optionally
// dropping specific probes and sending RSTs or garbage.
type fakeSink struct {
	live      map[ip.Addr]bool
	closed    map[ip.Addr]bool  // live at L3 but port closed: RST
	dropProbe map[ip.Addr]uint8 // bitmask of probe indices to drop
	garbage   map[ip.Addr]bool  // respond with an invalid packet
	wrongAck  map[ip.Addr]bool  // respond with a bad cookie
	sent      int
}

func (f *fakeSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	f.sent++
	iph, tcph, _, err := packet.DecodeTCP4(pkt)
	if err != nil {
		return nil
	}
	dst := iph.Dst
	probe := uint8(iph.ID)
	if f.dropProbe[dst]&(1<<probe) != 0 {
		return nil
	}
	switch {
	case f.garbage[dst]:
		return []byte{1, 2, 3}
	case f.wrongAck[dst]:
		return packet.MakeSYNACK(dst, src, tcph.DstPort, tcph.SrcPort, 1, tcph.Seq+999)
	case f.closed[dst]:
		return packet.MakeRST(dst, src, tcph.DstPort, tcph.SrcPort, 0, tcph.Seq+1)
	case f.live[dst]:
		return packet.MakeSYNACK(dst, src, tcph.DstPort, tcph.SrcPort, 1000, tcph.Seq+1)
	}
	return nil
}

func testConfig() Config {
	return Config{
		SourceIPs:    []ip.Addr{ip.MustParseAddr("10.99.0.1")},
		TargetPort:   80,
		Probes:       2,
		SpaceBits:    10,
		Seed:         1,
		ScanDuration: time.Hour,
	}
}

func TestScannerFindsLiveHosts(t *testing.T) {
	sink := &fakeSink{
		live: map[ip.Addr]bool{a4(5): true, a4(100): true, a4(1023): true},
	}
	s, err := NewScanner(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := map[ip.Addr]uint8{}
	st, err := s.Run(context.Background(), sink, func(r Reply) { got[r.Dst] = r.ProbeMask })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("found %d hosts, want 3: %v", len(got), got)
	}
	for addr, mask := range got {
		if mask != 0b11 {
			t.Errorf("host %v probe mask %#b, want both probes answered", addr, mask)
		}
	}
	if st.Targets != 1<<10 {
		t.Errorf("targets = %d", st.Targets)
	}
	if st.ProbesSent != 2<<10 {
		t.Errorf("probes sent = %d", st.ProbesSent)
	}
	if st.SynAcks != 6 {
		t.Errorf("synacks = %d", st.SynAcks)
	}
}

func TestScannerDistinguishesProbeLoss(t *testing.T) {
	sink := &fakeSink{
		live:      map[ip.Addr]bool{a4(7): true, a4(8): true, a4(9): true},
		dropProbe: map[ip.Addr]uint8{a4(7): 0b01, a4(8): 0b10, a4(9): 0b11},
	}
	s, _ := NewScanner(testConfig())
	got := map[ip.Addr]uint8{}
	s.Run(context.Background(), sink, func(r Reply) { got[r.Dst] = r.ProbeMask })
	if got[a4(7)] != 0b10 {
		t.Errorf("host 7 mask %#b, want 0b10", got[a4(7)])
	}
	if got[a4(8)] != 0b01 {
		t.Errorf("host 8 mask %#b, want 0b01", got[a4(8)])
	}
	if _, ok := got[a4(9)]; ok {
		t.Error("host 9 reported despite both probes dropped")
	}
}

func TestScannerReportsRSTs(t *testing.T) {
	sink := &fakeSink{closed: map[ip.Addr]bool{a4(50): true}}
	s, _ := NewScanner(testConfig())
	var replies []Reply
	st, err := s.Run(context.Background(), sink, func(r Reply) { replies = append(replies, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 || !replies[0].RST || replies[0].ProbeMask != 0 {
		t.Fatalf("replies = %+v", replies)
	}
	if st.Rsts != 2 {
		t.Errorf("rsts = %d, want 2 (both probes answered)", st.Rsts)
	}
}

func TestScannerRejectsInvalidResponses(t *testing.T) {
	sink := &fakeSink{
		garbage:  map[ip.Addr]bool{a4(3): true},
		wrongAck: map[ip.Addr]bool{a4(4): true},
	}
	s, _ := NewScanner(testConfig())
	count := 0
	st, err := s.Run(context.Background(), sink, func(Reply) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("%d hosts accepted from invalid responses", count)
	}
	if st.Invalid < 2 {
		t.Errorf("invalid = %d, want >= 2", st.Invalid)
	}
}

func TestScannerBlocklist(t *testing.T) {
	bl := ip.NewSet()
	bl.Add(ip.MakePrefix(ip.AddrFrom4(0), 24)) // block first /24 of the space
	cfg := testConfig()
	cfg.Blocklist = bl
	sink := &fakeSink{live: map[ip.Addr]bool{a4(5): true, a4(300): true}}
	s, _ := NewScanner(cfg)
	got := map[ip.Addr]bool{}
	st, err := s.Run(context.Background(), sink, func(r Reply) { got[r.Dst] = true })
	if err != nil {
		t.Fatal(err)
	}
	if got[a4(5)] {
		t.Error("blocklisted host was probed")
	}
	if !got[a4(300)] {
		t.Error("unblocked host missed")
	}
	if st.Blocked != 256 {
		t.Errorf("blocked = %d, want 256", st.Blocked)
	}
}

func TestScannerAllowlist(t *testing.T) {
	al := ip.NewSet()
	al.Add(ip.MakePrefix(ip.AddrFrom4(256), 24)) // allow only second /24
	cfg := testConfig()
	cfg.Allowlist = al
	sink := &fakeSink{live: map[ip.Addr]bool{a4(5): true, a4(300): true}}
	s, _ := NewScanner(cfg)
	got := map[ip.Addr]bool{}
	st, err := s.Run(context.Background(), sink, func(r Reply) { got[r.Dst] = true })
	if err != nil {
		t.Fatal(err)
	}
	if got[a4(5)] || !got[a4(300)] {
		t.Errorf("allowlist: got %v", got)
	}
	if st.Targets != 256 {
		t.Errorf("targets = %d, want 256", st.Targets)
	}
}

func TestScannerMultiSourceRotation(t *testing.T) {
	cfg := testConfig()
	cfg.SourceIPs = nil
	for i := 0; i < 64; i++ {
		cfg.SourceIPs = append(cfg.SourceIPs, ip.AddrFrom4(0x63000000+uint32(i)))
	}
	srcSeen := map[ip.Addr]int{}
	sink := sinkFunc(func(src ip.Addr, pkt []byte, t time.Duration) []byte {
		srcSeen[src]++
		return nil
	})
	s, _ := NewScanner(cfg)
	s.Run(context.Background(), sink, func(Reply) {})
	if len(srcSeen) != 64 {
		t.Fatalf("used %d source IPs, want 64", len(srcSeen))
	}
	// Round-robin by address: each IP covers 1/64 of targets, exactly.
	for src, n := range srcSeen {
		if n != 2*(1<<10)/64 {
			t.Errorf("source %v sent %d probes, want %d", src, n, 2*(1<<10)/64)
		}
	}
}

type sinkFunc func(src ip.Addr, pkt []byte, t time.Duration) []byte

func (f sinkFunc) Send(src ip.Addr, pkt []byte, t time.Duration) []byte { return f(src, pkt, t) }

func TestScannerTimeAdvancesMonotonically(t *testing.T) {
	cfg := testConfig()
	var last time.Duration = -1
	mono := true
	sink := sinkFunc(func(src ip.Addr, pkt []byte, tm time.Duration) []byte {
		if tm < last {
			mono = false
		}
		last = tm
		return nil
	})
	s, _ := NewScanner(cfg)
	s.Run(context.Background(), sink, func(Reply) {})
	if !mono {
		t.Error("virtual time went backwards")
	}
	if last > cfg.ScanDuration || last < cfg.ScanDuration/2 {
		t.Errorf("final time %v, want close to %v", last, cfg.ScanDuration)
	}
}

func TestScannerSynchronizedOriginsShareSchedule(t *testing.T) {
	// Two scanners with the same seed must probe the same targets at the
	// same virtual times — the study's synchronization requirement.
	type probeRec struct {
		dst ip.Addr
		t   time.Duration
	}
	collect := func(srcIP string) []probeRec {
		cfg := testConfig()
		cfg.SourceIPs = []ip.Addr{ip.MustParseAddr(srcIP)}
		var recs []probeRec
		sink := sinkFunc(func(src ip.Addr, pkt []byte, tm time.Duration) []byte {
			iph, _, _, _ := packet.DecodeTCP4(pkt)
			recs = append(recs, probeRec{iph.Dst, tm})
			return nil
		})
		s, _ := NewScanner(cfg)
		s.Run(context.Background(), sink, func(Reply) {})
		return recs
	}
	a, b := collect("10.99.0.1"), collect("10.88.0.1")
	if len(a) != len(b) {
		t.Fatal("different probe counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestScannerRunCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &fakeSink{live: map[ip.Addr]bool{a4(5): true}}
	s, err := NewScanner(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(ctx, sink, func(Reply) {})
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if sink.sent != 0 {
		t.Errorf("%d probes sent after pre-canceled context", sink.sent)
	}
}

func TestScannerCancelMidSweepStopsWithinOneBatch(t *testing.T) {
	cfg := testConfig()
	cfg.SpaceBits = 14 // 16384 targets, 4 batches
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAfter = 100
	sent := 0
	sink := sinkFunc(func(src ip.Addr, pkt []byte, tm time.Duration) []byte {
		sent++
		if sent == cancelAfter {
			cancel()
		}
		return nil
	})
	s, err := NewScanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(ctx, sink, func(Reply) {})
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// The sweep only checks the context every sweepBatch positions, so at
	// most one more batch of probes goes out after cancellation.
	if max := cancelAfter + cfg.Probes*sweepBatch; sent > max {
		t.Errorf("%d probes sent after cancel, want <= %d", sent, max)
	}
	if total := cfg.Probes << cfg.SpaceBits; sent >= total {
		t.Errorf("sweep ran to completion (%d probes) despite cancellation", sent)
	}
}

func TestScannerRunShardedCanceled(t *testing.T) {
	cfg := testConfig()
	cfg.SpaceBits = 14
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &fakeSink{live: map[ip.Addr]bool{a4(5): true}}
	s, err := NewScanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	handled := 0
	_, err = s.RunSharded(ctx, sink, func(Reply) { handled++ }, 4)
	if !errors.Is(err, pipeline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if handled != 0 {
		t.Errorf("handler saw %d replies after cancellation", handled)
	}
}

// routedSink is a fakeSink that also knows which space is routed,
// implementing Routability. Every host lives in routed space (as in the
// fabric, where the FIB only places hosts inside announced prefixes), so
// answering unrouted probes with silence — which fakeSink does for any
// unknown address — is exactly what the fabric's Send would do.
type routedSink struct {
	fakeSink
	limit         ip.Addr // addresses below limit are routed
	unroutedSends int     // Sends the short-circuit should have skipped
}

func (r *routedSink) Routed(dst ip.Addr) bool { return dst.Less(r.limit) }

func (r *routedSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	if iph, _, _, err := packet.DecodeTCP4(pkt); err == nil && !r.Routed(iph.Dst) {
		r.unroutedSends++
	}
	return r.fakeSink.Send(src, pkt, t)
}

// TestScannerRoutabilityShortCircuit pins the routed-space fast path: a
// sink exposing Routability must yield bit-identical Stats and replies to
// an equivalent sink without it (unrouted probes still count as sent, so
// loss accounting is unchanged), while Send is never invoked for unrouted
// destinations.
func TestScannerRoutabilityShortCircuit(t *testing.T) {
	live := map[ip.Addr]bool{a4(5): true, a4(100): true, a4(499): true}
	closed := map[ip.Addr]bool{a4(50): true}
	const limit = 512 // half the 2^10 space is unrouted

	run := func(sink PacketSink) (Stats, map[ip.Addr]Reply) {
		s, err := NewScanner(testConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := map[ip.Addr]Reply{}
		st, err := s.Run(context.Background(), sink, func(r Reply) { got[r.Dst] = r })
		if err != nil {
			t.Fatal(err)
		}
		return st, got
	}

	plain := &fakeSink{live: live, closed: closed}
	plainStats, plainReplies := run(plain)

	fast := &routedSink{fakeSink: fakeSink{live: live, closed: closed}, limit: a4(limit)}
	fastStats, fastReplies := run(fast)

	if fastStats != plainStats {
		t.Errorf("stats diverge:\nfast  %+v\nplain %+v", fastStats, plainStats)
	}
	if len(fastReplies) != len(plainReplies) {
		t.Fatalf("reply counts diverge: %d vs %d", len(fastReplies), len(plainReplies))
	}
	for dst, r := range plainReplies {
		if fastReplies[dst] != r {
			t.Errorf("reply for %v diverges: %+v vs %+v", dst, fastReplies[dst], r)
		}
	}
	if fast.unroutedSends != 0 {
		t.Errorf("%d unrouted probes reached Send despite Routability", fast.unroutedSends)
	}
	// The skipped Sends are exactly the unrouted share of the sweep.
	skipped := plain.sent - fast.sent
	if want := 2 * ((1 << 10) - limit); skipped != int(want) {
		t.Errorf("short-circuit skipped %d Sends, want %d", skipped, want)
	}
}

// TestScannerRoutabilityShortCircuitSharded is the same invariant for the
// sharded sweep, where shard goroutines consult Routability concurrently.
func TestScannerRoutabilityShortCircuitSharded(t *testing.T) {
	live := map[ip.Addr]bool{a4(5): true, a4(100): true, a4(499): true}
	const limit = 512

	s, err := NewScanner(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	plain := &fakeSink{live: live}
	plainGot := map[ip.Addr]uint8{}
	plainStats, err := s.Run(context.Background(), plain, func(r Reply) { plainGot[r.Dst] = r.ProbeMask })
	if err != nil {
		t.Fatal(err)
	}

	fast := &shardedRoutedSink{live: live, limit: a4(limit)}
	fastGot := map[ip.Addr]uint8{}
	var mu sync.Mutex
	fastStats, err := s.RunSharded(context.Background(), fast, func(r Reply) {
		mu.Lock()
		fastGot[r.Dst] = r.ProbeMask
		mu.Unlock()
	}, 4)
	if err != nil {
		t.Fatal(err)
	}

	if fastStats != plainStats {
		t.Errorf("stats diverge:\nsharded %+v\nserial  %+v", fastStats, plainStats)
	}
	if len(fastGot) != len(plainGot) {
		t.Fatalf("reply counts diverge: %d vs %d", len(fastGot), len(plainGot))
	}
	for dst, mask := range plainGot {
		if fastGot[dst] != mask {
			t.Errorf("reply for %v diverges: %#b vs %#b", dst, fastGot[dst], mask)
		}
	}
	if n := fast.unroutedSends.Load(); n != 0 {
		t.Errorf("%d unrouted probes reached Send despite Routability", n)
	}
}

// shardedRoutedSink is a concurrency-safe Routability sink for RunSharded.
type shardedRoutedSink struct {
	live          map[ip.Addr]bool
	limit         ip.Addr
	unroutedSends atomic.Int64
}

func (r *shardedRoutedSink) Routed(dst ip.Addr) bool { return dst.Less(r.limit) }

func (r *shardedRoutedSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	iph, tcph, _, err := packet.DecodeTCP4(pkt)
	if err != nil {
		return nil
	}
	if !r.Routed(iph.Dst) {
		r.unroutedSends.Add(1)
	}
	if r.live[iph.Dst] {
		return packet.MakeSYNACK(iph.Dst, src, tcph.DstPort, tcph.SrcPort, 1000, tcph.Seq+1)
	}
	return nil
}

func TestScannerConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.SourceIPs = nil
	if _, err := NewScanner(bad); err == nil {
		t.Error("no source IPs accepted")
	}
	bad = testConfig()
	bad.Probes = 0
	if _, err := NewScanner(bad); err == nil {
		t.Error("zero probes accepted")
	}
	bad = testConfig()
	bad.ScanDuration = 0
	if _, err := NewScanner(bad); err == nil {
		t.Error("zero duration accepted")
	}
}

func BenchmarkPermutationIterate(b *testing.B) {
	pm, err := NewPermutation(rng.NewKey(1), 20, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	it := pm.Iterate()
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it = pm.Iterate()
		}
	}
}
