package zmap

import (
	"testing"

	"repro/internal/ip"
	"repro/internal/rng"
)

// testHitlist builds a deterministic mixed v6 target list of length n.
func testHitlist(n int) []ip.Addr {
	list := make([]ip.Addr, n)
	for i := range list {
		list[i] = ip.AddrFrom128(0x2a00_0000_0000_0000|uint64(i>>4), uint64(i&15)+1)
	}
	return list
}

// TestHitlistIteratorCoversList checks the walk visits every list entry
// exactly once, in an order that differs from list order.
func TestHitlistIteratorCoversList(t *testing.T) {
	const n = 1543 // deliberately not a power of two
	list := testHitlist(n)
	pm, err := NewPermutationN(rng.NewKey(7).Derive("scan"), uint64(n), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := pm.IterateHitlist(list)
	seen := map[ip.Addr]int{}
	var walk []ip.Addr
	dsts := make([]ip.Addr, 64)
	idxs := make([]uint64, 64)
	for {
		k := h.NextBatch(dsts, idxs)
		if k == 0 {
			break
		}
		for _, a := range dsts[:k] {
			seen[a]++
			walk = append(walk, a)
		}
	}
	if len(walk) != n {
		t.Fatalf("walk emitted %d targets, want %d", len(walk), n)
	}
	for _, a := range list {
		if seen[a] != 1 {
			t.Fatalf("target %v visited %d times, want exactly once", a, seen[a])
		}
	}
	inOrder := true
	for i := range walk {
		if walk[i] != list[i] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("walk visited the hitlist in list order; want a permuted order")
	}
}

// TestHitlistIteratorDeterministic pins that the walk order is a pure
// function of the key.
func TestHitlistIteratorDeterministic(t *testing.T) {
	const n = 257
	list := testHitlist(n)
	walk := func() []ip.Addr {
		pm, err := NewPermutationN(rng.NewKey(99), uint64(n), 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		h := pm.IterateHitlist(list)
		var out []ip.Addr
		dsts := make([]ip.Addr, 32)
		idxs := make([]uint64, 32)
		for {
			k := h.NextBatch(dsts, idxs)
			if k == 0 {
				break
			}
			out = append(out, dsts[:k]...)
		}
		return out
	}
	a, b := walk(), walk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("walk diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestHitlistShardsPartitionList checks sharded walks partition the list:
// disjoint shards whose union is the whole hitlist, with NextIndexedBatch
// element indices recovering each target's serial scan position.
func TestHitlistShardsPartitionList(t *testing.T) {
	const n, shards = 1111, 4
	list := testHitlist(n)
	key := rng.NewKey(3).Derive("scan")

	seen := map[ip.Addr]int{}
	total := 0
	for s := 0; s < shards; s++ {
		pm, err := NewPermutationN(key, uint64(n), s, shards)
		if err != nil {
			t.Fatal(err)
		}
		h := pm.IterateHitlist(list)
		dsts := make([]ip.Addr, 48)
		idxs := make([]uint64, 48)
		elems := make([]uint64, 48)
		last := -1
		for {
			k := h.NextIndexedBatch(dsts, idxs, elems)
			if k == 0 {
				break
			}
			for i := 0; i < k; i++ {
				seen[dsts[i]]++
				// Element indices count the shard's walk over the
				// group (skips included): strictly increasing.
				if int(elems[i]) <= last {
					t.Fatalf("shard %d element index %d not increasing (last %d)", s, elems[i], last)
				}
				last = int(elems[i])
			}
			total += k
		}
	}
	if total != n {
		t.Fatalf("shards emitted %d targets, want %d", total, n)
	}
	for _, a := range list {
		if seen[a] != 1 {
			t.Fatalf("target %v appeared in %d shards, want exactly one", a, seen[a])
		}
	}
}

// TestHitlistLengthMismatchPanics pins the guard against pairing a
// permutation with the wrong list.
func TestHitlistLengthMismatchPanics(t *testing.T) {
	pm, err := NewPermutationN(rng.NewKey(1), 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("IterateHitlist accepted a list shorter than the permutation space")
		}
	}()
	pm.IterateHitlist(testHitlist(9))
}
