package zmap

import (
	"testing"
	"time"
)

// fakeClock drives the bucket deterministically.
type fakeClock struct {
	t     time.Time
	slept time.Duration
}

func (c *fakeClock) now() time.Time        { return c.t }
func (c *fakeClock) sleep(d time.Duration) { c.slept += d; c.t = c.t.Add(d) }

func fakeBucket(rate float64, burst int) (*TokenBucket, *fakeClock) {
	tb := NewTokenBucket(rate, burst)
	c := &fakeClock{t: time.Unix(0, 0)}
	tb.now = c.now
	tb.sleep = c.sleep
	tb.last = c.t
	return tb, c
}

func TestTokenBucketBurstThenBlocks(t *testing.T) {
	tb, c := fakeBucket(10, 5)
	for i := 0; i < 5; i++ {
		if w := tb.Take(); w != 0 {
			t.Fatalf("take %d waited %v within burst", i, w)
		}
	}
	// Sixth take must wait 1/rate = 100ms.
	if w := tb.Take(); w != 100*time.Millisecond {
		t.Fatalf("post-burst wait = %v, want 100ms", w)
	}
	if c.slept != 100*time.Millisecond {
		t.Errorf("slept %v", c.slept)
	}
}

func TestTokenBucketSustainedRate(t *testing.T) {
	tb, c := fakeBucket(100, 1)
	start := c.t
	const n = 200
	for i := 0; i < n; i++ {
		tb.Take()
	}
	elapsed := c.t.Sub(start)
	// 200 packets at 100 pps (1 from the initial token) ≈ 1.99s.
	want := time.Duration(float64(n-1) / 100 * float64(time.Second))
	if elapsed < want-50*time.Millisecond || elapsed > want+50*time.Millisecond {
		t.Errorf("elapsed %v for %d takes at 100pps, want ≈%v", elapsed, n, want)
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	tb, c := fakeBucket(1000, 10)
	for i := 0; i < 10; i++ {
		tb.Take()
	}
	// A long idle period refills to burst, not beyond.
	c.t = c.t.Add(time.Hour)
	zeroWaits := 0
	for i := 0; i < 20; i++ {
		if tb.Take() == 0 {
			zeroWaits++
		}
	}
	if zeroWaits != 10 {
		t.Errorf("free takes after idle = %d, want burst (10)", zeroWaits)
	}
}

func TestTryTake(t *testing.T) {
	tb, c := fakeBucket(10, 2)
	if !tb.TryTake() || !tb.TryTake() {
		t.Fatal("burst TryTake failed")
	}
	if tb.TryTake() {
		t.Fatal("TryTake succeeded with empty bucket")
	}
	c.t = c.t.Add(time.Second)
	if !tb.TryTake() {
		t.Fatal("TryTake failed after refill")
	}
}

func TestNewTokenBucketPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for rate 0")
		}
	}()
	NewTokenBucket(0, 1)
}
