package zmap

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/ip"
	"repro/internal/telemetry"
)

// lockedSink serializes a fakeSink so RunSharded's concurrent shards can
// share it (the production fabric sink is internally synchronized;
// fakeSink is not).
type lockedSink struct {
	mu sync.Mutex
	s  *fakeSink
}

func (l *lockedSink) Send(src ip.Addr, pkt []byte, t time.Duration) []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.s.Send(src, pkt, t)
}

// sweepCounterValues reads the bundle back as a Stats for comparison.
func sweepCounterValues(m *telemetry.SweepMetrics) Stats {
	return Stats{
		Targets:    m.Targets.Value(),
		Blocked:    m.Blocked.Value(),
		ProbesSent: m.ProbesSent.Value(),
		SynAcks:    m.SynAcks.Value(),
		Rsts:       m.Rsts.Value(),
		Invalid:    m.Invalid.Value(),
		Duplicates: m.Duplicates.Value(),
	}
}

func TestSweepTelemetryCountersMatchStats(t *testing.T) {
	reg := telemetry.New()
	m := telemetry.NewSweepMetrics(reg, telemetry.L("origin", "test"))
	cfg := testConfig()
	cfg.Telemetry = m
	sink := &fakeSink{
		live:      map[ip.Addr]bool{a4(5): true, a4(100): true, a4(1023): true},
		closed:    map[ip.Addr]bool{a4(7): true},
		garbage:   map[ip.Addr]bool{a4(9): true},
		dropProbe: map[ip.Addr]uint8{a4(100): 1 << 1},
	}
	s, err := NewScanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run(context.Background(), sink, func(Reply) {})
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepCounterValues(m); got != st {
		t.Errorf("telemetry counters %+v, want final stats %+v", got, st)
	}
	wantLost := st.ProbesSent - st.SynAcks - st.Rsts - st.Invalid
	if got := m.Lost.Value(); got != wantLost {
		t.Errorf("Lost = %d, want %d", got, wantLost)
	}
}

func TestShardedSweepTelemetryCountersMatchStats(t *testing.T) {
	reg := telemetry.New()
	m := telemetry.NewSweepMetrics(reg)
	cfg := testConfig()
	cfg.SpaceBits = 14 // several batches per shard
	cfg.Telemetry = m
	sink := &lockedSink{s: &fakeSink{live: map[ip.Addr]bool{a4(5): true, a4(300): true, a4(9000): true}}}
	s, err := NewScanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunSharded(context.Background(), sink, func(Reply) {}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := sweepCounterValues(m); got != st {
		t.Errorf("telemetry counters %+v, want merged stats %+v", got, st)
	}
}

// TestTelemetryIsPureObserver proves enabling the sweep counters changes
// nothing the scan reports: identical Stats and an identical reply stream.
func TestTelemetryIsPureObserver(t *testing.T) {
	run := func(m *telemetry.SweepMetrics) (Stats, []Reply) {
		cfg := testConfig()
		cfg.Telemetry = m
		sink := &fakeSink{
			live:   map[ip.Addr]bool{a4(5): true, a4(100): true, a4(1023): true},
			closed: map[ip.Addr]bool{a4(7): true},
		}
		s, err := NewScanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var replies []Reply
		st, err := s.Run(context.Background(), sink, func(r Reply) { replies = append(replies, r) })
		if err != nil {
			t.Fatal(err)
		}
		return st, replies
	}
	stOff, repOff := run(nil)
	stOn, repOn := run(telemetry.NewSweepMetrics(telemetry.New()))
	if stOff != stOn {
		t.Errorf("stats differ: off %+v, on %+v", stOff, stOn)
	}
	if len(repOff) != len(repOn) {
		t.Fatalf("reply counts differ: %d vs %d", len(repOff), len(repOn))
	}
	for i := range repOff {
		if repOff[i] != repOn[i] {
			t.Errorf("reply %d differs: %+v vs %+v", i, repOff[i], repOn[i])
		}
	}
}

// TestSweepAllocations is the hot-path guard: the sweep inner loop must not
// allocate per probe, telemetry disabled or enabled. The whole-run budget
// covers the iterator, the reused SYN buffer's single growth, and (enabled
// only) the one statsFlusher — a handful of allocations for a 1024-address
// space, nothing proportional to probes sent.
func TestSweepAllocations(t *testing.T) {
	sink := sinkFunc(func(src ip.Addr, pkt []byte, tm time.Duration) []byte { return nil })
	mkRun := func(m *telemetry.SweepMetrics) func() {
		cfg := testConfig()
		cfg.Telemetry = m
		s, err := NewScanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return func() {
			if _, err := s.Run(context.Background(), sink, func(Reply) {}); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocsNil := testing.AllocsPerRun(5, mkRun(nil))
	allocsOn := testing.AllocsPerRun(5, mkRun(telemetry.NewSweepMetrics(telemetry.New())))
	const budget = 8 // per full 1024-address run, not per probe
	if allocsNil > budget {
		t.Errorf("nil-telemetry run allocates %.0f, budget %d", allocsNil, budget)
	}
	if allocsOn > allocsNil+2 {
		t.Errorf("enabled-telemetry run allocates %.0f vs %.0f disabled — telemetry leaked into the hot path",
			allocsOn, allocsNil)
	}
}

// benchSweep is the shared body of the telemetry overhead benchmarks: a
// full sweep against a null sink, so the scanner's own work dominates and
// the telemetry delta is visible.
func benchSweep(b *testing.B, m *telemetry.SweepMetrics) {
	sink := sinkFunc(func(src ip.Addr, pkt []byte, tm time.Duration) []byte { return nil })
	cfg := testConfig()
	cfg.SpaceBits = 14
	cfg.Telemetry = m
	s, err := NewScanner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(context.Background(), sink, func(Reply) {}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepTelemetryNil(b *testing.B) {
	benchSweep(b, nil)
}

func BenchmarkSweepTelemetryEnabled(b *testing.B) {
	benchSweep(b, telemetry.NewSweepMetrics(telemetry.New()))
}

// benchSweepTrace measures the hierarchical tracing overhead on top of the
// counters: scan span, batch exemplar sampling, and span commit. The
// Nil/Enabled pair feeds `make bench-trace`, whose gate fails the build
// when the enabled run costs more than 5% over nil — the contract that
// tracing stays off the sweep's hot path.
func benchSweepTrace(b *testing.B, enabled bool) {
	sink := sinkFunc(func(src ip.Addr, pkt []byte, tm time.Duration) []byte { return nil })
	cfg := testConfig()
	cfg.SpaceBits = 14
	var reg *telemetry.Registry
	if enabled {
		reg = telemetry.New()
		cfg.Telemetry = telemetry.NewSweepMetrics(reg)
	}
	s, err := NewScanner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := reg.StartSpan("scan") // nil (inert) in the disabled variant
		s.SetTraceSpan(sp)
		if _, err := s.Run(context.Background(), sink, func(Reply) {}); err != nil {
			b.Fatal(err)
		}
		sp.End(nil)
	}
}

func BenchmarkSweepTraceNil(b *testing.B) {
	benchSweepTrace(b, false)
}

func BenchmarkSweepTraceEnabled(b *testing.B) {
	benchSweepTrace(b, true)
}
