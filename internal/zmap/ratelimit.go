package zmap

import (
	"sync"
	"time"
)

// TokenBucket is the send-rate governor a real deployment of the scanner
// uses to hold a configured packets-per-second rate (the paper scans at
// 100K pps after confirming all origins sustain it without added drop).
// The simulation runs on a virtual clock and does not need it, but the
// component is part of the scanner core and usable against wall clocks.
//
// The zero value is unusable; create with NewTokenBucket. Safe for
// concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// NewTokenBucket returns a limiter sustaining rate packets/second with the
// given burst allowance (burst < 1 is raised to 1).
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if rate <= 0 {
		panic("zmap: non-positive rate")
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	tb := &TokenBucket{
		rate:  rate,
		burst: b,
		now:   time.Now,
		sleep: time.Sleep,
	}
	tb.tokens = b
	tb.last = tb.now()
	return tb
}

// Take blocks until a token is available and consumes it. Returns the time
// waited.
func (tb *TokenBucket) Take() time.Duration {
	tb.mu.Lock()
	now := tb.now()
	tb.refill(now)
	if tb.tokens >= 1 {
		tb.tokens--
		tb.mu.Unlock()
		return 0
	}
	need := (1 - tb.tokens) / tb.rate
	wait := time.Duration(need * float64(time.Second))
	tb.tokens = 0 // the arriving tokens pay for this take
	tb.last = now.Add(wait)
	sleep := tb.sleep
	tb.mu.Unlock()
	sleep(wait)
	return wait
}

// TryTake consumes a token if one is available without blocking.
func (tb *TokenBucket) TryTake() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.now())
	if tb.tokens >= 1 {
		tb.tokens--
		return true
	}
	return false
}

// refill adds tokens for elapsed time; callers hold the lock.
func (tb *TokenBucket) refill(now time.Time) {
	elapsed := now.Sub(tb.last)
	if elapsed <= 0 {
		return
	}
	tb.tokens += elapsed.Seconds() * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
}
