// Package zmap implements a ZMap-compatible scanner core: address iteration
// via a random cyclic multiplicative group permutation (so every scan emits
// targets in a pseudorandom order with O(1) state, exactly as ZMap does),
// sharding, SipHash validation cookies embedded in TCP sequence numbers,
// CIDR block/allowlists, and multi-probe transmission on a virtual clock.
//
// The scanner sends and receives real IPv4+TCP packet bytes through a
// PacketSink; the simulation fabric is one sink, and the seam is where a
// raw-socket/pcap sink would attach in a deployment against real networks.
package zmap

import (
	"fmt"

	"repro/internal/rng"
)

// Permutation iterates the multiplicative group of integers modulo a prime
// p just above the scan space, visiting every value in [1, p) exactly once
// in a seed-determined pseudorandom order. Values are mapped to addresses
// as value-1; values exceeding the space are skipped (ZMap's approach for
// the 2^32 space, generalized to any space size).
type Permutation struct {
	p        uint64 // group modulus (prime)
	g        uint64 // generator of the full group
	first    uint64 // starting element for this shard
	step     uint64 // g^shards: stride between this shard's elements
	space    uint64 // number of valid addresses [0, space)
	shardLen uint64 // group elements this shard owns
}

// NewPermutation builds the permutation for a space of 2^spaceBits
// addresses, seeded by key, for the given shard of shards total. All
// scanners in a synchronized study share the key, so they visit the same
// addresses at the same position in the order — the paper starts each scan
// with the same ZMap seed for exactly this reason.
func NewPermutation(key rng.Key, spaceBits uint8, shard, shards int) (*Permutation, error) {
	if spaceBits == 0 || spaceBits > 32 {
		return nil, fmt.Errorf("zmap: space bits %d out of range", spaceBits)
	}
	if shards <= 0 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("zmap: bad shard %d/%d", shard, shards)
	}
	space := uint64(1) << spaceBits
	p := nextPrime(space + 1)
	g, err := findGenerator(key, p)
	if err != nil {
		return nil, err
	}
	// Shard s visits g^(r+s), g^(r+s+shards), ... for a key-derived
	// offset r: disjoint cosets covering the whole group.
	r := key.Derive("offset").Uint64(0)%(p-1) + 1
	first := mulmodPow(g, r, p)
	first = mulmod(first, mulmodPow(g, uint64(shard), p), p)
	step := mulmodPow(g, uint64(shards), p)
	total := p - 1
	max := total / uint64(shards)
	if uint64(shard) < total%uint64(shards) {
		max++
	}
	return &Permutation{p: p, g: g, first: first, step: step, space: space, shardLen: max}, nil
}

// Space returns the number of addresses in the scan space.
func (pm *Permutation) Space() uint64 { return pm.space }

// Modulus returns the group modulus (for tests).
func (pm *Permutation) Modulus() uint64 { return pm.p }

// Iterator walks this shard's slice of the permutation.
type Iterator struct {
	pm      *Permutation
	current uint64
	emitted uint64
	max     uint64 // group elements this shard owns
}

// Iterate returns an iterator over this permutation's shard.
func (pm *Permutation) Iterate() *Iterator {
	return &Iterator{pm: pm, current: pm.first, max: pm.shardLen}
}

// Next returns the next address in the shard, or ok=false when exhausted.
// Group elements mapping outside the space are transparently skipped.
func (it *Iterator) Next() (addr uint32, ok bool) {
	for it.emitted < it.max {
		v := it.current
		it.current = mulmod(it.current, it.pm.step, it.pm.p)
		it.emitted++
		a := v - 1
		if a < it.pm.space {
			return uint32(a), true
		}
	}
	return 0, false
}

// mulmod computes a*b mod m without overflow (m < 2^33 here, but use
// 128-bit-safe math so any modulus works).
func mulmod(a, b, m uint64) uint64 {
	hi, lo := mul64(a, b)
	if hi == 0 {
		return lo % m
	}
	return mod128(hi, lo, m)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += aHi * bHi
	return hi, lo
}

// mod128 reduces a 128-bit value modulo m by long division.
func mod128(hi, lo, m uint64) uint64 {
	rem := uint64(0)
	for i := 127; i >= 0; i-- {
		rem <<= 1
		var bit uint64
		if i >= 64 {
			bit = (hi >> uint(i-64)) & 1
		} else {
			bit = (lo >> uint(i)) & 1
		}
		rem |= bit
		if rem >= m {
			rem -= m
		}
	}
	return rem
}

// mulmodPow computes g^e mod m by square-and-multiply.
func mulmodPow(g, e, m uint64) uint64 {
	result := uint64(1)
	base := g % m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, base, m)
		}
		base = mulmod(base, base, m)
		e >>= 1
	}
	return result
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for ; ; n += 2 {
		if isPrime(n) {
			return n
		}
	}
}

// isPrime is deterministic trial division; moduli here are < 2^33, so this
// is at most ~2^17 iterations and runs once per scan.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	for d := uint64(17); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// factorize returns the distinct prime factors of n.
func factorize(n uint64) []uint64 {
	var fs []uint64
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			fs = append(fs, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// findGenerator picks a seed-determined generator of the multiplicative
// group mod p: a candidate g is a generator iff g^((p-1)/q) != 1 for every
// prime factor q of p-1 (ZMap selects its generator the same way).
func findGenerator(key rng.Key, p uint64) (uint64, error) {
	factors := factorize(p - 1)
	stream := key.Derive("generator").Stream(p)
	for tries := 0; tries < 10000; tries++ {
		g := stream.Uint64n(p-3) + 2 // in [2, p-1)
		ok := true
		for _, q := range factors {
			if mulmodPow(g, (p-1)/q, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("zmap: no generator found for p=%d", p)
}
