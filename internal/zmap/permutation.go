// Package zmap implements a ZMap-compatible scanner core: address iteration
// via a random cyclic multiplicative group permutation (so every scan emits
// targets in a pseudorandom order with O(1) state, exactly as ZMap does),
// sharding, SipHash validation cookies embedded in TCP sequence numbers,
// CIDR block/allowlists, and multi-probe transmission on a virtual clock.
//
// The scanner sends and receives real IPv4+TCP packet bytes through a
// PacketSink; the simulation fabric is one sink, and the seam is where a
// raw-socket/pcap sink would attach in a deployment against real networks.
package zmap

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/rng"
)

// Permutation iterates the multiplicative group of integers modulo a prime
// p just above the scan space, visiting every value in [1, p) exactly once
// in a seed-determined pseudorandom order. Values are mapped to addresses
// as value-1; values exceeding the space are skipped (ZMap's approach for
// the 2^32 space, generalized to any space size).
type Permutation struct {
	p        uint64 // group modulus (prime)
	g        uint64 // generator of the full group
	r        uint64 // key-derived starting offset (first = g^(r+shard))
	first    uint64 // starting element for this shard
	step     uint64 // g^shards: stride between this shard's elements
	space    uint64 // number of valid addresses [0, space)
	shardLen uint64 // group elements this shard owns
	shard    uint64
	shards   uint64

	skipOnce sync.Once
	skips    []uint64 // sorted walk indices of out-of-space elements
}

// NewPermutation builds the permutation for a space of 2^spaceBits
// addresses, seeded by key, for the given shard of shards total. All
// scanners in a synchronized study share the key, so they visit the same
// addresses at the same position in the order — the paper starts each scan
// with the same ZMap seed for exactly this reason.
func NewPermutation(key rng.Key, spaceBits uint8, shard, shards int) (*Permutation, error) {
	if spaceBits == 0 || spaceBits > 32 {
		return nil, fmt.Errorf("zmap: space bits %d out of range", spaceBits)
	}
	if shards <= 0 || shard < 0 || shard >= shards {
		return nil, fmt.Errorf("zmap: bad shard %d/%d", shard, shards)
	}
	space := uint64(1) << spaceBits
	p := nextPrime(space + 1)
	g, err := findGenerator(key, p)
	if err != nil {
		return nil, err
	}
	// Shard s visits g^(r+s), g^(r+s+shards), ... for a key-derived
	// offset r: disjoint cosets covering the whole group.
	r := key.Derive("offset").Uint64(0)%(p-1) + 1
	first := mulmodPow(g, r, p)
	first = mulmod(first, mulmodPow(g, uint64(shard), p), p)
	step := mulmodPow(g, uint64(shards), p)
	total := p - 1
	max := total / uint64(shards)
	if uint64(shard) < total%uint64(shards) {
		max++
	}
	return &Permutation{
		p: p, g: g, r: r, first: first, step: step, space: space,
		shardLen: max, shard: uint64(shard), shards: uint64(shards),
	}, nil
}

// Space returns the number of addresses in the scan space.
func (pm *Permutation) Space() uint64 { return pm.space }

// Modulus returns the group modulus (for tests).
func (pm *Permutation) Modulus() uint64 { return pm.p }

// Iterator walks this shard's slice of the permutation.
type Iterator struct {
	pm      *Permutation
	current uint64
	emitted uint64
	max     uint64 // group elements this shard owns
}

// Iterate returns an iterator over this permutation's shard.
func (pm *Permutation) Iterate() *Iterator {
	return &Iterator{pm: pm, current: pm.first, max: pm.shardLen}
}

// Next returns the next address in the shard, or ok=false when exhausted.
// Group elements mapping outside the space are transparently skipped.
func (it *Iterator) Next() (addr uint32, ok bool) {
	a, _, ok := it.NextIndexed()
	return a, ok
}

// NextIndexed is Next also reporting the address's element index within
// this shard's walk, counting the transparently skipped out-of-space
// elements. Sub-shard iteration uses the index to recover the position a
// single full walk would have assigned the address (see SkipIndices).
func (it *Iterator) NextIndexed() (addr uint32, elem uint64, ok bool) {
	for it.emitted < it.max {
		v := it.current
		it.current = mulmod(it.current, it.pm.step, it.pm.p)
		e := it.emitted
		it.emitted++
		a := v - 1
		if a < it.pm.space {
			return uint32(a), e, true
		}
	}
	return 0, 0, false
}

// SkipIndices returns the sorted element indices within this shard's walk
// whose group value maps outside the address space (the values Next skips).
// A sub-shard walker combines these with its parent element index to
// reconstruct the exact scan position — and therefore the exact virtual
// probe time — the serial walk assigns each address, which is what keeps a
// sharded sweep bit-identical to a serial one.
//
// The out-of-space values are the few integers in [space+1, p), located in
// the walk by a baby-step/giant-step discrete log; the cost is
// O(√p + gap·√p) once per permutation, negligible next to the scan itself.
func (pm *Permutation) SkipIndices() []uint64 {
	pm.skipOnce.Do(func() {
		n := pm.p - 1
		if n == pm.space {
			return // p = space+1: every group value maps in-space
		}
		// Baby table: g^j -> j for j in [0, mb).
		mb := uint64(math.Sqrt(float64(n))) + 1
		baby := make(map[uint64]uint64, mb)
		acc := uint64(1)
		for j := uint64(0); j < mb; j++ {
			baby[acc] = j
			acc = mulmod(acc, pm.g, pm.p)
		}
		giant := mulmodPow(pm.g, n-mb, pm.p) // g^(-mb)
		dlog := func(v uint64) uint64 {
			gamma := v
			for i := uint64(0); i <= n/mb; i++ {
				if j, ok := baby[gamma]; ok {
					return i*mb + j
				}
				gamma = mulmod(gamma, giant, pm.p)
			}
			panic("zmap: discrete log not found (g is not a generator)")
		}
		for v := pm.space + 1; v < pm.p; v++ {
			// Global walk index m of value g^((r+m) mod n).
			e := dlog(v)
			m := (e + n - pm.r%n) % n
			if m%pm.shards == pm.shard {
				pm.skips = append(pm.skips, (m-pm.shard)/pm.shards)
			}
		}
		sort.Slice(pm.skips, func(i, j int) bool { return pm.skips[i] < pm.skips[j] })
	})
	return pm.skips
}

// skipsBefore returns how many of the sorted skip indices are < elem.
func skipsBefore(skips []uint64, elem uint64) uint64 {
	return uint64(sort.Search(len(skips), func(i int) bool { return skips[i] >= elem }))
}

// mulmod computes a*b mod m without overflow (m < 2^33 here, but use
// 128-bit-safe math so any modulus works).
func mulmod(a, b, m uint64) uint64 {
	hi, lo := mul64(a, b)
	if hi == 0 {
		return lo % m
	}
	return mod128(hi, lo, m)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask
	hi = t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask) << 32
	hi += t >> 32
	hi += aHi * bHi
	return hi, lo
}

// mod128 reduces a 128-bit value modulo m by long division.
func mod128(hi, lo, m uint64) uint64 {
	rem := uint64(0)
	for i := 127; i >= 0; i-- {
		rem <<= 1
		var bit uint64
		if i >= 64 {
			bit = (hi >> uint(i-64)) & 1
		} else {
			bit = (lo >> uint(i)) & 1
		}
		rem |= bit
		if rem >= m {
			rem -= m
		}
	}
	return rem
}

// mulmodPow computes g^e mod m by square-and-multiply.
func mulmodPow(g, e, m uint64) uint64 {
	result := uint64(1)
	base := g % m
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, base, m)
		}
		base = mulmod(base, base, m)
		e >>= 1
	}
	return result
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for ; ; n += 2 {
		if isPrime(n) {
			return n
		}
	}
}

// isPrime is deterministic trial division; moduli here are < 2^33, so this
// is at most ~2^17 iterations and runs once per scan.
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	for d := uint64(17); d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// factorize returns the distinct prime factors of n.
func factorize(n uint64) []uint64 {
	var fs []uint64
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			fs = append(fs, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// findGenerator picks a seed-determined generator of the multiplicative
// group mod p: a candidate g is a generator iff g^((p-1)/q) != 1 for every
// prime factor q of p-1 (ZMap selects its generator the same way).
func findGenerator(key rng.Key, p uint64) (uint64, error) {
	factors := factorize(p - 1)
	stream := key.Derive("generator").Stream(p)
	for tries := 0; tries < 10000; tries++ {
		g := stream.Uint64n(p-3) + 2 // in [2, p-1)
		ok := true
		for _, q := range factors {
			if mulmodPow(g, (p-1)/q, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("zmap: no generator found for p=%d", p)
}
